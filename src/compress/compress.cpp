#include "compress/compress.hpp"

#include <bit>
#include <cstring>

namespace renuca::compress {
namespace {

// Little-endian byte image of the eight words — the canonical stored
// layout for the raw scheme and the XOR baseline for everything else.
void wordsToBytes(const std::uint64_t words[kLineWords], std::uint8_t out[kLineBytes]) {
  for (std::uint32_t w = 0; w < kLineWords; ++w)
    for (std::uint32_t b = 0; b < 8; ++b)
      out[w * 8 + b] = static_cast<std::uint8_t>(words[w] >> (8 * b));
}

// Appends `nbits` of `value` (LSB first) to a bit cursor over out->bytes.
// CompressedLine zero-initializes its storage, so OR-ing suffices and the
// trailing bits of the last byte stay zero.
void putBits(CompressedLine* out, std::uint32_t* cursor, std::uint64_t value,
             std::uint32_t nbits) {
  for (std::uint32_t i = 0; i < nbits; ++i) {
    if ((value >> i) & 1) out->bytes[(*cursor + i) / 8] |= std::uint8_t(1u << ((*cursor + i) % 8));
  }
  *cursor += nbits;
}

// ---- BDI ----------------------------------------------------------------
//
// Base-delta-immediate (Pekhimenko et al., PACT'12) over the 64-byte line:
// one base of `baseBytes` plus 64/baseBytes deltas of `deltaBytes` each.
// A candidate applies when every value's signed delta from the first value
// fits `deltaBytes`.  Payload layout: base little-endian, then the deltas
// little-endian two's-complement — an exact byte image, so the
// differential-write model XORs real stored bits.

struct BdiCandidate {
  Scheme scheme;
  std::uint32_t baseBytes;
  std::uint32_t deltaBytes;
};

constexpr BdiCandidate kBdiCandidates[] = {
    {Scheme::Bdi81, 8, 1}, {Scheme::Bdi41, 4, 1}, {Scheme::Bdi21, 2, 1},
    {Scheme::Bdi82, 8, 2}, {Scheme::Bdi42, 4, 2}, {Scheme::Bdi84, 8, 4},
};

bool fitsSigned(std::int64_t v, std::uint32_t bytes) {
  const std::int64_t lim = std::int64_t(1) << (8 * bytes - 1);
  return v >= -lim && v < lim;
}

bool tryBdiCandidate(const std::uint64_t words[kLineWords], const BdiCandidate& c,
                     CompressedLine& out) {
  const std::uint32_t values = kLineBytes / c.baseBytes;
  const std::uint64_t mask =
      c.baseBytes == 8 ? ~std::uint64_t(0) : (std::uint64_t(1) << (8 * c.baseBytes)) - 1;
  std::uint64_t vals[32];
  for (std::uint32_t i = 0; i < values; ++i) {
    const std::uint64_t word = words[i * c.baseBytes / 8];
    const std::uint32_t shift = 8 * ((i * c.baseBytes) % 8);
    vals[i] = (word >> shift) & mask;
  }
  const std::uint64_t base = vals[0];
  for (std::uint32_t i = 0; i < values; ++i) {
    // Deltas are computed in the base's width (wrap-around two's
    // complement), then sign-checked against the delta width.
    std::int64_t delta;
    if (c.baseBytes == 8) {
      delta = static_cast<std::int64_t>(vals[i] - base);
    } else {
      const std::uint64_t raw = (vals[i] - base) & mask;
      const std::uint64_t sign = std::uint64_t(1) << (8 * c.baseBytes - 1);
      delta = static_cast<std::int64_t>((raw ^ sign)) - static_cast<std::int64_t>(sign);
    }
    if (!fitsSigned(delta, c.deltaBytes)) return false;
  }
  out = CompressedLine{};
  out.scheme = c.scheme;
  std::uint32_t cursor = 0;
  putBits(&out, &cursor, base, 8 * c.baseBytes);
  const std::uint64_t dmask = c.deltaBytes == 8
                                  ? ~std::uint64_t(0)
                                  : (std::uint64_t(1) << (8 * c.deltaBytes)) - 1;
  for (std::uint32_t i = 0; i < values; ++i)
    putBits(&out, &cursor, (vals[i] - base) & dmask, 8 * c.deltaBytes);
  out.sizeBits = static_cast<std::uint16_t>(cursor);
  return true;
}

bool compressBdi(const std::uint64_t words[kLineWords], CompressedLine& out) {
  bool allZero = true, allRep = true;
  for (std::uint32_t w = 0; w < kLineWords; ++w) {
    if (words[w] != 0) allZero = false;
    if (words[w] != words[0]) allRep = false;
  }
  if (allZero) {
    out = CompressedLine{};
    out.scheme = Scheme::BdiZero;
    out.sizeBits = 8;  // One marker byte of zeros.
    return true;
  }
  if (allRep) {
    out = CompressedLine{};
    out.scheme = Scheme::BdiRep;
    std::uint32_t cursor = 0;
    putBits(&out, &cursor, words[0], 64);
    out.sizeBits = 64;
    return true;
  }
  bool found = false;
  CompressedLine best;
  for (const BdiCandidate& c : kBdiCandidates) {
    CompressedLine cand;
    if (tryBdiCandidate(words, c, cand) && (!found || cand.sizeBits < best.sizeBits)) {
      best = cand;
      found = true;
    }
  }
  if (found) out = best;
  return found;
}

// ---- FPC ----------------------------------------------------------------
//
// Frequent-pattern compression (Alameldeen & Wood, TR-1500) over the
// sixteen 32-bit words: a 3-bit prefix per word selects the pattern, the
// data bits follow.  Simplified from the original: no zero-run merging and
// no dictionary, patterns checked most-specific first.

enum FpcPattern : std::uint32_t {
  kFpcZero = 0,       // 0 data bits
  kFpcSe4 = 1,        // 4-bit sign-extended
  kFpcSe8 = 2,        // 8-bit sign-extended
  kFpcSe16 = 3,       // 16-bit sign-extended
  kFpcHighZero = 4,   // low halfword zero, high halfword data (16 bits)
  kFpcRepByte = 5,    // one byte repeated four times (8 bits)
  kFpcUncomp = 7,     // raw 32 bits
};

bool seFits(std::uint32_t word, std::uint32_t bits) {
  const std::int32_t v = static_cast<std::int32_t>(word);
  const std::int32_t lim = std::int32_t(1) << (bits - 1);
  return v >= -lim && v < lim;
}

void compressFpc(const std::uint64_t words[kLineWords], CompressedLine& out) {
  out = CompressedLine{};
  out.scheme = Scheme::Fpc;
  std::uint32_t cursor = 0;
  for (std::uint32_t i = 0; i < 2 * kLineWords; ++i) {
    const std::uint32_t w =
        static_cast<std::uint32_t>(words[i / 2] >> (32 * (i % 2)));
    std::uint32_t pattern, dataBits;
    std::uint64_t data;
    const std::uint8_t b0 = static_cast<std::uint8_t>(w);
    if (w == 0) {
      pattern = kFpcZero, dataBits = 0, data = 0;
    } else if (seFits(w, 4)) {
      pattern = kFpcSe4, dataBits = 4, data = w & 0xF;
    } else if (seFits(w, 8)) {
      pattern = kFpcSe8, dataBits = 8, data = w & 0xFF;
    } else if (seFits(w, 16)) {
      pattern = kFpcSe16, dataBits = 16, data = w & 0xFFFF;
    } else if ((w & 0xFFFF) == 0) {
      pattern = kFpcHighZero, dataBits = 16, data = w >> 16;
    } else if (w == (0x01010101u * b0)) {
      pattern = kFpcRepByte, dataBits = 8, data = b0;
    } else {
      pattern = kFpcUncomp, dataBits = 32, data = w;
    }
    putBits(&out, &cursor, pattern, 3);
    putBits(&out, &cursor, data, dataBits);
  }
  out.sizeBits = static_cast<std::uint16_t>(cursor);
}

void storeRaw(const std::uint64_t words[kLineWords], CompressedLine& out) {
  out = CompressedLine{};
  out.scheme = Scheme::Raw;
  wordsToBytes(words, out.bytes);
  out.sizeBits = kLineBits;
}

std::uint32_t popcountBytes(const std::uint8_t* bytes, std::uint32_t n) {
  std::uint32_t bits = 0;
  for (std::uint32_t i = 0; i < n; ++i) bits += std::popcount(unsigned(bytes[i]));
  return bits;
}

}  // namespace

bool parseKind(const std::string& text, Kind& out) {
  if (text == "none") out = Kind::None;
  else if (text == "bdi") out = Kind::Bdi;
  else if (text == "fpc") out = Kind::Fpc;
  else if (text == "bdi+fpc") out = Kind::BdiFpc;
  else return false;
  return true;
}

const char* toString(Kind kind) {
  switch (kind) {
    case Kind::None: return "none";
    case Kind::Bdi: return "bdi";
    case Kind::Fpc: return "fpc";
    case Kind::BdiFpc: return "bdi+fpc";
  }
  return "?";
}

const char* toString(Scheme scheme) {
  switch (scheme) {
    case Scheme::Raw: return "raw";
    case Scheme::BdiZero: return "bdi-zero";
    case Scheme::BdiRep: return "bdi-rep";
    case Scheme::Bdi81: return "bdi-8-1";
    case Scheme::Bdi82: return "bdi-8-2";
    case Scheme::Bdi84: return "bdi-8-4";
    case Scheme::Bdi41: return "bdi-4-1";
    case Scheme::Bdi42: return "bdi-4-2";
    case Scheme::Bdi21: return "bdi-2-1";
    case Scheme::Fpc: return "fpc";
  }
  return "?";
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void synthesizeLine(const LineContent& content, std::uint64_t words[kLineWords]) {
  const std::uint64_t s = content.seed;
  switch (content.cls) {
    case LineClass::Zero:
      for (std::uint32_t w = 0; w < kLineWords; ++w) words[w] = 0;
      return;
    case LineClass::Rep: {
      const std::uint64_t v = mix64(s);
      for (std::uint32_t w = 0; w < kLineWords; ++w) words[w] = v;
      return;
    }
    case LineClass::Narrow: {
      // A pointer-array shape: large shared base, per-word deltas under
      // 2^7 so base8-d1 applies.
      const std::uint64_t base = mix64(s) | (std::uint64_t(1) << 40);
      for (std::uint32_t w = 0; w < kLineWords; ++w)
        words[w] = base + (mix64(s + 1 + w) & 0x7F);
      return;
    }
    case LineClass::Pattern: {
      // An int-array shape: small sign-extended 32-bit values (FPC's
      // bread and butter), a few of them zero.
      for (std::uint32_t w = 0; w < kLineWords; ++w) {
        std::uint64_t word = 0;
        for (std::uint32_t h = 0; h < 2; ++h) {
          const std::uint64_t r = mix64(s + 17 * w + h);
          std::uint32_t v;
          if ((r & 7) == 0) v = 0;
          else if (r & 1) v = static_cast<std::uint32_t>(std::int32_t(r & 0x7F) - 0x40);
          else v = static_cast<std::uint32_t>(std::int32_t(r & 0x7FFF) - 0x4000);
          word |= std::uint64_t(v) << (32 * h);
        }
        words[w] = word;
      }
      return;
    }
    case LineClass::Random:
    case LineClass::kCount:
      for (std::uint32_t w = 0; w < kLineWords; ++w) words[w] = mix64(s + w);
      return;
  }
}

void compressLine(Kind kind, const std::uint64_t words[kLineWords],
                  CompressedLine& out) {
  if (kind == Kind::None) {
    storeRaw(words, out);
    return;
  }
  CompressedLine bdi, fpc;
  bool haveBdi = false, haveFpc = false;
  if (kind == Kind::Bdi || kind == Kind::BdiFpc) haveBdi = compressBdi(words, bdi);
  if (kind == Kind::Fpc || kind == Kind::BdiFpc) {
    compressFpc(words, fpc);
    haveFpc = fpc.sizeBits < kLineBits;
  }
  if (haveBdi && (!haveFpc || bdi.sizeBits <= fpc.sizeBits)) out = bdi;
  else if (haveFpc) out = fpc;
  else storeRaw(words, out);
}

void compressContent(Kind kind, const LineContent& content, CompressedLine& out) {
  std::uint64_t words[kLineWords];
  synthesizeLine(content, words);
  compressLine(kind, words, out);
}

std::uint32_t bitsFlipped(const CompressedLine& prev, const CompressedLine& next) {
  const std::uint32_t prevBytes = prev.sizeBytes();
  const std::uint32_t nextBytes = next.sizeBytes();
  const std::uint32_t overlap = prevBytes < nextBytes ? prevBytes : nextBytes;
  std::uint32_t bits = 0;
  for (std::uint32_t i = 0; i < overlap; ++i)
    bits += std::popcount(unsigned(prev.bytes[i] ^ next.bytes[i]));
  // The longer payload's tail XORs against zero-modeled cells.
  if (nextBytes > overlap) bits += popcountBytes(next.bytes + overlap, nextBytes - overlap);
  if (prevBytes > overlap) bits += popcountBytes(prev.bytes + overlap, prevBytes - overlap);
  return bits;
}

std::uint32_t bitsFlipped(const CompressedLine& next) {
  return popcountBytes(next.bytes, next.sizeBytes());
}

LineClass drawClass(const Compressibility& profile, double u01) {
  double acc = profile.zeroFrac;
  if (u01 < acc) return LineClass::Zero;
  acc += profile.repFrac;
  if (u01 < acc) return LineClass::Rep;
  acc += profile.narrowFrac;
  if (u01 < acc) return LineClass::Narrow;
  acc += profile.patternFrac;
  if (u01 < acc) return LineClass::Pattern;
  return LineClass::Random;
}

}  // namespace renuca::compress
