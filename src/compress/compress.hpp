// Cache-line compression engine: BDI + FPC encoders and the bit-accurate
// write model they feed.
//
// The paper wear-levels by choosing *where* to write; compression attacks
// *how many bits* each write flips ("Forecasting lifetime and performance
// of a novel NVM last-level cache with compression", arXiv 2204.03512).
// The two compose: a compressed fill stores a short payload, and a ReRAM
// write only flips the cells whose value actually changes, so per-frame
// wear becomes popcount(old XOR new) over the stored payload instead of a
// worst-case 512 bits per line write.
//
// What lives here is deliberately self-contained and allocation-free on
// the hot path:
//  * synthesizeLine(): deterministic 64-byte line contents from a compact
//    (class, seed) pair.  The simulator never carries real data; the
//    workload layer assigns each block a *content class* drawn from its
//    app's compressibility profile, and this function expands the pair
//    into the same 8x64-bit words everywhere it is needed.
//  * Bdi / Fpc encoders behind one compress() entry point: real encoders
//    running over those words, producing an exact payload (bytes + bit
//    size) into caller-provided stack storage.  Incompressible lines fall
//    back to the raw 512-bit payload.
//  * bitsFlipped(): the differential-write model — XOR-popcount over the
//    overlap of old and new payloads, plus the population of any new tail
//    bits (cells past the old payload are modeled as holding zero).
//
// Everything is a pure function of its inputs, so jobs=N sweeps stay
// deterministic and snapshots only need the (class, seed, size) triple per
// frame, never the expanded bytes.
#pragma once

#include <cstdint>
#include <string>

namespace renuca::compress {

/// Compression scheme selected by the `compress=` config key.
enum class Kind : std::uint8_t { None, Bdi, Fpc, BdiFpc };

/// Parses "none|bdi|fpc|bdi+fpc"; returns false on anything else.
bool parseKind(const std::string& text, Kind& out);
const char* toString(Kind kind);

/// Content class of one cache line.  The class picks the *shape* of the
/// synthesized words (how compressible they are); the seed picks the
/// actual values within that shape.
enum class LineClass : std::uint8_t {
  Zero,     ///< All-zero line (best case for both encoders).
  Rep,      ///< One 64-bit value repeated (BDI delta-0).
  Narrow,   ///< Large shared base + small per-word deltas (BDI base8-d1/d2).
  Pattern,  ///< Small sign-extended 32-bit words (FPC prefix classes).
  Random,   ///< splitmix64 noise — incompressible, raw fallback.
  kCount,
};
inline constexpr std::uint32_t kNumLineClasses =
    static_cast<std::uint32_t>(LineClass::kCount);

/// Compact description of a line's contents: expands deterministically to
/// 64 bytes via synthesizeLine().  This is what flows through the memory
/// hierarchy and into snapshots.
struct LineContent {
  LineClass cls = LineClass::Zero;
  std::uint64_t seed = 0;

  bool operator==(const LineContent&) const = default;
};

inline constexpr std::uint32_t kLineBytes = 64;
inline constexpr std::uint32_t kLineWords = 8;  ///< 64-bit words per line.
inline constexpr std::uint32_t kLineBits = 512;

/// Expands (class, seed) into the line's eight 64-bit words.  Pure.
void synthesizeLine(const LineContent& content, std::uint64_t words[kLineWords]);

/// Which encoding won a compress() call (reported in histograms/tests).
enum class Scheme : std::uint8_t {
  Raw,      ///< Incompressible: stored uncompressed (512 bits).
  BdiZero,  ///< All-zero line.
  BdiRep,   ///< Repeated 64-bit value.
  Bdi81,    ///< 8-byte base + 1-byte deltas.
  Bdi82,    ///< 8-byte base + 2-byte deltas.
  Bdi84,    ///< 8-byte base + 4-byte deltas.
  Bdi41,    ///< 4-byte base + 1-byte deltas.
  Bdi42,    ///< 4-byte base + 2-byte deltas.
  Bdi21,    ///< 2-byte base + 1-byte deltas.
  Fpc,      ///< FPC prefix coding over 32-bit words.
};
const char* toString(Scheme scheme);

/// One compressed payload in caller-owned storage.  `bytes[0..sizeBytes())`
/// is the exact stored image the differential-write model XORs; trailing
/// bits of the last byte are zero.
struct CompressedLine {
  std::uint8_t bytes[kLineBytes] = {};
  std::uint16_t sizeBits = 0;
  Scheme scheme = Scheme::Raw;

  std::uint32_t sizeBytes() const {
    return (static_cast<std::uint32_t>(sizeBits) + 7) / 8;
  }
};

/// Compresses `words` under `kind` (BdiFpc tries both, keeps the smaller;
/// None stores raw).  Never exceeds the raw 512-bit fallback.
void compressLine(Kind kind, const std::uint64_t words[kLineWords],
                  CompressedLine& out);

/// Convenience: synthesize + compress in one step.
void compressContent(Kind kind, const LineContent& content, CompressedLine& out);

/// Bits a ReRAM write flips when `next` replaces `prev` in a frame:
/// XOR-popcount over the overlapping bytes plus the set bits of whichever
/// payload extends past the other (cells beyond a payload are modeled as
/// zero, so growth pays for the bits it sets and shrinkage for the bits it
/// clears).  Writing an identical payload flips zero bits.
std::uint32_t bitsFlipped(const CompressedLine& prev, const CompressedLine& next);

/// Bits flipped when `next` is written into a never-written (all-zero)
/// frame: just the payload's population count.
std::uint32_t bitsFlipped(const CompressedLine& next);

/// Per-application compressibility profile: the probability that a block's
/// contents fall in each line class (the remainder is Random).  Calibrated
/// per app in workload/app_profile.cpp.
struct Compressibility {
  double zeroFrac = 0.10;
  double repFrac = 0.10;
  double narrowFrac = 0.25;
  double patternFrac = 0.25;

  bool valid() const {
    return zeroFrac >= 0 && repFrac >= 0 && narrowFrac >= 0 && patternFrac >= 0 &&
           zeroFrac + repFrac + narrowFrac + patternFrac <= 1.0;
  }
};

/// Deterministically assigns a line class: `u01` in [0,1) walks the
/// profile's cumulative distribution.  Pure, so every rank of a jobs=N
/// sweep draws the same class for the same block.
LineClass drawClass(const Compressibility& profile, double u01);

/// SplitMix64 — the content hash used to derive seeds and class draws from
/// (block, version, salt).  Pure; also exposed for tests.
std::uint64_t mix64(std::uint64_t x);

}  // namespace renuca::compress
