// Directory-based MESI coherence protocol (paper Table I: MESI).
//
// A functional protocol engine: per-line directory state (Uncached /
// Shared / Owned) plus per-cache MESI states, with the full transition
// table for processor reads, writes and evictions.  Every transition
// returns the set of coherence actions it implies (invalidations, owner
// downgrades, write-backs, data source) so a timing layer can charge them.
//
// The paper's workloads are multi-programmed SPEC (disjoint address
// spaces), so coherence traffic does not shape its results; the system
// simulator therefore routes through the directory only when sharing is
// enabled (sim::SystemConfig::enableSharing).  The protocol itself is
// fully implemented and property-tested (tests/test_coherence.cpp), and
// the shared-memory example exercises it in-system.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace renuca::coherence {

enum class MesiState : std::uint8_t { I, S, E, M };

const char* toString(MesiState s);

/// Coherence actions implied by one processor-side event.
struct Outcome {
  /// Caches that received invalidations (write) or downgrades (read).
  std::vector<std::uint32_t> invalidated;
  /// True if a dirty owner copy was flushed to memory/LLC by this event.
  bool writebackToMemory = false;
  /// True if another cache supplied the data (cache-to-cache transfer);
  /// false means memory/LLC supplied it.
  bool cacheToCache = false;
  /// Requester's resulting MESI state.
  MesiState newState = MesiState::I;
};

class DirectoryMesi {
 public:
  explicit DirectoryMesi(std::uint32_t numCaches);

  /// Processor load at cache `c` (GetS).
  Outcome read(std::uint32_t c, BlockAddr block);
  /// Processor store at cache `c` (GetM / upgrade).
  Outcome write(std::uint32_t c, BlockAddr block);
  /// Cache `c` evicts the block (PutS / PutE / PutM).  Returns true if a
  /// dirty write-back to memory resulted.
  bool evict(std::uint32_t c, BlockAddr block);

  MesiState stateOf(std::uint32_t c, BlockAddr block) const;
  /// Caches currently holding the block in any valid state.
  std::vector<std::uint32_t> holders(BlockAddr block) const;

  /// Protocol invariants for one line:
  ///  * at most one cache in M or E;
  ///  * if some cache is M/E, no other cache is S;
  ///  * directory sharer set equals the caches in S/E/M.
  /// Returns an empty string if OK, else a description of the violation.
  std::string checkLine(BlockAddr block) const;
  /// Checks every line the directory has ever seen.
  std::string checkAll() const;

  const StatSet& stats() const { return stats_; }

 private:
  struct Entry {
    std::uint64_t sharers = 0;  ///< Bit per cache.
    bool owned = false;         ///< Exactly one holder in E or M.
    std::uint32_t owner = 0;
  };

  Entry& entry(BlockAddr block) { return dir_[block]; }
  MesiState& cacheState(std::uint32_t c, BlockAddr block);

  std::uint32_t numCaches_;
  std::unordered_map<BlockAddr, Entry> dir_;
  // Per-cache line states, keyed by (cache, block).
  std::unordered_map<std::uint64_t, MesiState> states_;
  StatSet stats_;
};

}  // namespace renuca::coherence
