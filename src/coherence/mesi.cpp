#include "coherence/mesi.hpp"

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace renuca::coherence {

namespace {
std::uint64_t stateKey(std::uint32_t c, BlockAddr block) {
  // Blocks in this simulator are < 2^58; fold the cache id into the top bits.
  return (static_cast<std::uint64_t>(c) << 58) | block;
}
}  // namespace

const char* toString(MesiState s) {
  switch (s) {
    case MesiState::I: return "I";
    case MesiState::S: return "S";
    case MesiState::E: return "E";
    case MesiState::M: return "M";
  }
  return "?";
}

DirectoryMesi::DirectoryMesi(std::uint32_t numCaches)
    : numCaches_(numCaches), stats_("mesi") {
  RENUCA_ASSERT(numCaches >= 1 && numCaches <= 64, "directory supports 1..64 caches");
}

MesiState& DirectoryMesi::cacheState(std::uint32_t c, BlockAddr block) {
  return states_[stateKey(c, block)];
}

MesiState DirectoryMesi::stateOf(std::uint32_t c, BlockAddr block) const {
  auto it = states_.find(stateKey(c, block));
  return it == states_.end() ? MesiState::I : it->second;
}

Outcome DirectoryMesi::read(std::uint32_t c, BlockAddr block) {
  RENUCA_ASSERT(c < numCaches_, "cache id out of range");
  Entry& e = entry(block);
  Outcome out;
  MesiState cur = stateOf(c, block);

  if (cur != MesiState::I) {
    // Local hit; no directory transition.
    out.newState = cur;
    stats_.inc("read_hits");
    return out;
  }

  stats_.inc("getS");
  if (e.owned) {
    // Owner holds E or M: downgrade to S; M flushes dirty data.
    std::uint32_t o = e.owner;
    MesiState& os = cacheState(o, block);
    if (os == MesiState::M) {
      out.writebackToMemory = true;
      stats_.inc("owner_flushes");
    }
    os = MesiState::S;
    out.cacheToCache = true;
    out.invalidated.push_back(o);  // downgrade notification
    e.owned = false;
    e.sharers |= (1ull << o);
    e.sharers |= (1ull << c);
    out.newState = MesiState::S;
  } else if (e.sharers != 0) {
    e.sharers |= (1ull << c);
    out.newState = MesiState::S;
  } else {
    // Uncached: grant Exclusive.
    e.owned = true;
    e.owner = c;
    e.sharers = (1ull << c);
    out.newState = MesiState::E;
  }
  cacheState(c, block) = out.newState;
  return out;
}

Outcome DirectoryMesi::write(std::uint32_t c, BlockAddr block) {
  RENUCA_ASSERT(c < numCaches_, "cache id out of range");
  Entry& e = entry(block);
  Outcome out;
  MesiState cur = stateOf(c, block);

  if (cur == MesiState::M) {
    out.newState = MesiState::M;
    stats_.inc("write_hits");
    return out;
  }
  if (cur == MesiState::E) {
    // Silent E->M upgrade.
    cacheState(c, block) = MesiState::M;
    out.newState = MesiState::M;
    stats_.inc("silent_upgrades");
    return out;
  }

  stats_.inc("getM");
  if (e.owned && e.owner != c) {
    std::uint32_t o = e.owner;
    MesiState& os = cacheState(o, block);
    if (os == MesiState::M) {
      out.writebackToMemory = true;
      stats_.inc("owner_flushes");
    }
    os = MesiState::I;
    out.invalidated.push_back(o);
    out.cacheToCache = true;
  } else {
    // Invalidate every sharer other than the requester.
    for (std::uint32_t s = 0; s < numCaches_; ++s) {
      if (s == c) continue;
      if (e.sharers & (1ull << s)) {
        cacheState(s, block) = MesiState::I;
        out.invalidated.push_back(s);
      }
    }
    if (!out.invalidated.empty()) stats_.inc("invalidation_bursts");
  }
  e.owned = true;
  e.owner = c;
  e.sharers = (1ull << c);
  cacheState(c, block) = MesiState::M;
  out.newState = MesiState::M;
  return out;
}

bool DirectoryMesi::evict(std::uint32_t c, BlockAddr block) {
  RENUCA_ASSERT(c < numCaches_, "cache id out of range");
  Entry& e = entry(block);
  MesiState cur = stateOf(c, block);
  if (cur == MesiState::I) return false;

  bool writeback = (cur == MesiState::M);
  cacheState(c, block) = MesiState::I;
  e.sharers &= ~(1ull << c);
  if (e.owned && e.owner == c) e.owned = false;
  stats_.inc(writeback ? "putM" : "putS");
  return writeback;
}

std::vector<std::uint32_t> DirectoryMesi::holders(BlockAddr block) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t c = 0; c < numCaches_; ++c) {
    if (stateOf(c, block) != MesiState::I) out.push_back(c);
  }
  return out;
}

std::string DirectoryMesi::checkLine(BlockAddr block) const {
  std::uint32_t owners = 0, sharersSeen = 0;
  std::uint64_t validMask = 0;
  for (std::uint32_t c = 0; c < numCaches_; ++c) {
    MesiState s = stateOf(c, block);
    if (s == MesiState::E || s == MesiState::M) ++owners;
    if (s == MesiState::S) ++sharersSeen;
    if (s != MesiState::I) validMask |= (1ull << c);
  }
  if (owners > 1) return "multiple owners for block " + std::to_string(block);
  if (owners == 1 && sharersSeen > 0) {
    return "owner coexists with sharers for block " + std::to_string(block);
  }
  auto it = dir_.find(block);
  std::uint64_t dirMask = it == dir_.end() ? 0 : it->second.sharers;
  if (dirMask != validMask) {
    return "directory sharer set mismatch for block " + std::to_string(block);
  }
  return {};
}

std::string DirectoryMesi::checkAll() const {
  for (const auto& [block, entry] : dir_) {
    (void)entry;
    std::string err = checkLine(block);
    if (!err.empty()) return err;
  }
  return {};
}

}  // namespace renuca::coherence
