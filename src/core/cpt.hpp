// Criticality Predictor Table (paper §IV.B).
//
// A PC-indexed table adapted from the Commit Block Predictor of Ghose et
// al. (ISCA'13), stripped down as the paper describes: per load PC it
// keeps only
//
//   numLoadsCount  — dynamic loads issued by this PC, and
//   robBlockCount  — how many of them blocked the ROB head,
//
// and predicts a load critical when
//
//   robBlockCount >= (threshold% ) * numLoadsCount.
//
// The paper sweeps the threshold over {3,5,10,20,25,33,50,75,100}% and
// settles on 3% (Fig 7).  No stall-duration state is kept — the predictor
// outputs a single criticality bit for the mapping logic.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "cpu/core.hpp"
#include "serial/checkpointable.hpp"

namespace renuca::core {

struct CptConfig {
  double thresholdPct = 3.0;     ///< Criticality threshold x (percent).
  std::uint32_t capacity = 4096; ///< Max tracked PCs; FIFO eviction beyond.
  /// Cold-lookup verdict.  The paper assumes a first-touch line is
  /// non-critical (placed with S-NUCA, lifetime first); flipping this is
  /// the first-touch ablation (bench_ablation_design).
  bool coldPredictsCritical = false;
};

class CriticalityPredictorTable final : public cpu::CriticalityPredictor,
                                        public serial::Checkpointable {
 public:
  explicit CriticalityPredictorTable(const CptConfig& config);

  // cpu::CriticalityPredictor
  bool predict(std::uint64_t pc) override;
  bool hasEntry(std::uint64_t pc) const override;
  bool train(std::uint64_t pc, bool stalledRobHead) override;

  /// Counters for a PC (tests / introspection); zeros if not tracked.
  struct Counters {
    std::uint64_t numLoadsCount = 0;
    std::uint64_t robBlockCount = 0;
  };
  Counters countersFor(std::uint64_t pc) const;

  std::size_t size() const { return count_; }
  const CptConfig& config() const { return cfg_; }
  const StatSet& stats() const { return stats_; }

  // Serializes the tracked PCs in FIFO (insertion) order so that eviction
  // order survives a save/load round trip; statistics are excluded.
  void saveState(serial::ArchiveWriter& ar) const override;
  bool loadState(serial::ArchiveReader& ar) override;

 private:
  // Open-addressed storage: predict()/hasEntry()/train() run for every
  // load the cores issue, so the table is a flat power-of-two slot array
  // with linear probing (load factor <= 1/2) instead of a node-based map.
  // Eviction order is an intrusive doubly-linked FIFO threaded through the
  // slots by index; backward-shift deletion keeps probe chains intact
  // without tombstones, re-linking the FIFO when a slot relocates.
  static constexpr std::uint64_t kEmptyPc = ~std::uint64_t{0};
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  struct Slot {
    std::uint64_t pc = kEmptyPc;
    Counters counters;
    std::uint32_t fifoPrev = kNil;
    std::uint32_t fifoNext = kNil;
  };

  bool verdictOf(const Counters& c) const;
  std::uint32_t homeOf(std::uint64_t pc) const {
    // Fibonacci mix: workload PCs are dense multiples of 4, which a plain
    // mask would pile into every fourth slot.
    return static_cast<std::uint32_t>((pc * 0x9E3779B97F4A7C15ull) >> 33) & mask_;
  }
  std::uint32_t findSlot(std::uint64_t pc) const;
  std::uint32_t insertSlot(std::uint64_t pc);
  void eraseSlot(std::uint32_t index);
  void resetTable();

  CptConfig cfg_;
  std::vector<Slot> slots_;
  std::uint32_t mask_ = 0;
  std::uint32_t count_ = 0;
  std::uint32_t fifoHead_ = kNil;  ///< Oldest insertion (next eviction).
  std::uint32_t fifoTail_ = kNil;  ///< Newest insertion.
  StatSet stats_;
  // Handles into stats_ for the per-lookup counters (hot path).
  std::uint64_t* coldLookups_ = nullptr;
  std::uint64_t* lookups_ = nullptr;
  std::uint64_t* predictCritical_ = nullptr;
  std::uint64_t* predictNonCritical_ = nullptr;
};

}  // namespace renuca::core
