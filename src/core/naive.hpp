// "Naive" perfect wear-leveling oracle (paper §III.A).
//
// A performance-agnostic scheme that places every fill into the bank with
// the fewest writes so far, using oracle knowledge of per-bank write
// counts, and a full line directory to find lines again.  The paper uses
// it purely as an upper bound on wear-leveling: the directory a real
// implementation would need is infeasible for a 32 MB LLC, and ignoring
// locality costs ~21 % IPC vs S-NUCA (fills funnel into whichever bank is
// currently coldest, regardless of distance, serializing on that bank and
// its mesh links).
#pragma once

#include <functional>
#include <unordered_map>

#include "core/mapping_policy.hpp"

namespace renuca::core {

class NaivePolicy final : public MappingPolicy {
 public:
  /// `bankWrites` reads a bank's cumulative write count (oracle input);
  /// supplied by the simulator from the LLC banks' ReRAM counters.
  NaivePolicy(std::uint32_t numBanks,
              std::function<std::uint64_t(BankId)> bankWrites);

  PolicyKind kind() const override { return PolicyKind::Naive; }
  BankId locate(BlockAddr block, CoreId requester, bool rnucaBit) const override;
  Fill placeFill(BlockAddr block, CoreId requester, bool critical) override;
  void onFill(BlockAddr block, BankId bank) override;
  void onEvict(BlockAddr block, BankId bank) override;

  std::size_t directorySize() const { return directory_.size(); }

  // Persists the oracle line directory (sorted by block for canonical
  // bytes); the bankWrites oracle is wiring, not state.
  void saveState(serial::ArchiveWriter& ar) const override;
  bool loadState(serial::ArchiveReader& ar) override;

 private:
  std::uint32_t numBanks_;
  std::function<std::uint64_t(BankId)> bankWrites_;
  /// Oracle line directory: resident block -> bank.
  std::unordered_map<BlockAddr, BankId> directory_;
};

}  // namespace renuca::core
