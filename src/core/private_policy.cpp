#include "core/private_policy.hpp"

#include "common/log.hpp"

namespace renuca::core {

PrivatePolicy::PrivatePolicy(std::uint32_t numBanks) : numBanks_(numBanks) {
  RENUCA_ASSERT(numBanks > 0, "private policy needs banks");
}

BankId PrivatePolicy::locate(BlockAddr, CoreId requester, bool) const {
  RENUCA_ASSERT(requester < numBanks_, "requester beyond bank count");
  return requester;
}

MappingPolicy::Fill PrivatePolicy::placeFill(BlockAddr, CoreId requester, bool) {
  RENUCA_ASSERT(requester < numBanks_, "requester beyond bank count");
  return Fill{requester, /*usedRnuca=*/false};
}

}  // namespace renuca::core
