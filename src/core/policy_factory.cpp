#include "core/policy_factory.hpp"

#include "common/log.hpp"
#include "core/naive.hpp"
#include "core/private_policy.hpp"
#include "core/renuca_policy.hpp"
#include "core/rnuca.hpp"
#include "core/snuca.hpp"

namespace renuca::core {

const char* toString(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::SNuca: return "S-NUCA";
    case PolicyKind::RNuca: return "R-NUCA";
    case PolicyKind::Private: return "Private";
    case PolicyKind::Naive: return "Naive";
    case PolicyKind::ReNuca: return "Re-NUCA";
  }
  return "?";
}

PolicyKind policyFromString(const std::string& name) {
  if (name == "snuca" || name == "S-NUCA") return PolicyKind::SNuca;
  if (name == "rnuca" || name == "R-NUCA") return PolicyKind::RNuca;
  if (name == "private" || name == "Private") return PolicyKind::Private;
  if (name == "naive" || name == "Naive") return PolicyKind::Naive;
  if (name == "renuca" || name == "Re-NUCA") return PolicyKind::ReNuca;
  RENUCA_ASSERT(false, "unknown policy name: " + name);
}

std::unique_ptr<MappingPolicy> makePolicy(PolicyKind kind, const noc::Topology& topo,
                                          const PolicyOptions& options) {
  switch (kind) {
    case PolicyKind::SNuca:
      return std::make_unique<SNucaPolicy>(topo.numBanks());
    case PolicyKind::RNuca:
      return std::make_unique<RNucaPolicy>(topo, options.clusterSize);
    case PolicyKind::Private:
      return std::make_unique<PrivatePolicy>(topo.numBanks());
    case PolicyKind::Naive:
      RENUCA_ASSERT(static_cast<bool>(options.bankWrites),
                    "Naive policy requires the bank-write oracle");
      return std::make_unique<NaivePolicy>(topo.numBanks(), options.bankWrites);
    case PolicyKind::ReNuca:
      return std::make_unique<ReNucaPolicy>(topo, options.clusterSize);
  }
  RENUCA_ASSERT(false, "unhandled policy kind");
}

}  // namespace renuca::core
