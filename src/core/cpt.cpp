#include "core/cpt.hpp"

#include "common/log.hpp"
#include "serial/archive.hpp"

namespace renuca::core {

namespace {

std::uint32_t slotCountFor(std::uint32_t capacity) {
  // Power of two >= 2 * capacity keeps the load factor at or below 1/2,
  // which bounds linear-probe runs and guarantees every probe terminates
  // at an empty slot.
  std::uint64_t want = std::uint64_t{capacity} * 2;
  std::uint64_t n = 8;
  while (n < want) n <<= 1;
  return static_cast<std::uint32_t>(n);
}

}  // namespace

CriticalityPredictorTable::CriticalityPredictorTable(const CptConfig& config)
    : cfg_(config), stats_("cpt") {
  RENUCA_ASSERT(cfg_.capacity > 0, "CPT capacity must be non-zero");
  RENUCA_ASSERT(cfg_.thresholdPct > 0.0 && cfg_.thresholdPct <= 100.0,
                "criticality threshold must be in (0, 100]");
  slots_.resize(slotCountFor(cfg_.capacity));
  mask_ = static_cast<std::uint32_t>(slots_.size()) - 1;
  coldLookups_ = stats_.counter("cold_lookups");
  lookups_ = stats_.counter("lookups");
  predictCritical_ = stats_.counter("predict_critical");
  predictNonCritical_ = stats_.counter("predict_noncritical");
}

bool CriticalityPredictorTable::verdictOf(const Counters& c) const {
  // robBlockCount >= x% of numLoadsCount  (integer-free comparison).
  return static_cast<double>(c.robBlockCount) * 100.0 >=
         cfg_.thresholdPct * static_cast<double>(c.numLoadsCount);
}

std::uint32_t CriticalityPredictorTable::findSlot(std::uint64_t pc) const {
  std::uint32_t i = homeOf(pc);
  while (slots_[i].pc != kEmptyPc) {
    if (slots_[i].pc == pc) return i;
    i = (i + 1) & mask_;
  }
  return kNil;
}

std::uint32_t CriticalityPredictorTable::insertSlot(std::uint64_t pc) {
  RENUCA_ASSERT(pc != kEmptyPc, "CPT cannot track the sentinel PC");
  RENUCA_ASSERT(count_ < slots_.size(), "CPT slot array full");
  std::uint32_t i = homeOf(pc);
  while (slots_[i].pc != kEmptyPc) i = (i + 1) & mask_;
  Slot& s = slots_[i];
  s.pc = pc;
  s.counters = Counters{};
  s.fifoPrev = fifoTail_;
  s.fifoNext = kNil;
  if (fifoTail_ != kNil) {
    slots_[fifoTail_].fifoNext = i;
  } else {
    fifoHead_ = i;
  }
  fifoTail_ = i;
  ++count_;
  return i;
}

void CriticalityPredictorTable::eraseSlot(std::uint32_t index) {
  // Unlink from the FIFO.
  Slot& victim = slots_[index];
  if (victim.fifoPrev != kNil) {
    slots_[victim.fifoPrev].fifoNext = victim.fifoNext;
  } else {
    fifoHead_ = victim.fifoNext;
  }
  if (victim.fifoNext != kNil) {
    slots_[victim.fifoNext].fifoPrev = victim.fifoPrev;
  } else {
    fifoTail_ = victim.fifoPrev;
  }
  // Backward-shift deletion: walk the probe chain after the hole and pull
  // back any slot the hole would cut off from its home position, so later
  // finds never stop at a premature empty.
  std::uint32_t hole = index;
  std::uint32_t j = (index + 1) & mask_;
  while (slots_[j].pc != kEmptyPc) {
    std::uint32_t home = homeOf(slots_[j].pc);
    if (((j - hole) & mask_) <= ((j - home) & mask_)) {
      slots_[hole] = slots_[j];
      // The slot moved; repoint its FIFO neighbours at the new index.
      Slot& moved = slots_[hole];
      if (moved.fifoPrev != kNil) {
        slots_[moved.fifoPrev].fifoNext = hole;
      } else {
        fifoHead_ = hole;
      }
      if (moved.fifoNext != kNil) {
        slots_[moved.fifoNext].fifoPrev = hole;
      } else {
        fifoTail_ = hole;
      }
      hole = j;
    }
    j = (j + 1) & mask_;
  }
  slots_[hole] = Slot{};
  --count_;
}

void CriticalityPredictorTable::resetTable() {
  for (Slot& s : slots_) s = Slot{};
  count_ = 0;
  fifoHead_ = kNil;
  fifoTail_ = kNil;
}

bool CriticalityPredictorTable::predict(std::uint64_t pc) {
  std::uint32_t i = findSlot(pc);
  if (i == kNil) {
    // First touch: the paper assumes a line non-critical until shown
    // otherwise (lifetime is prioritized over performance, §IV).
    ++*coldLookups_;
    return cfg_.coldPredictsCritical;
  }
  ++*lookups_;
  bool critical = verdictOf(slots_[i].counters);
  ++*(critical ? predictCritical_ : predictNonCritical_);
  return critical;
}

bool CriticalityPredictorTable::hasEntry(std::uint64_t pc) const {
  return findSlot(pc) != kNil;
}

bool CriticalityPredictorTable::train(std::uint64_t pc, bool stalledRobHead) {
  std::uint32_t i = findSlot(pc);
  if (i == kNil) {
    if (count_ >= cfg_.capacity) {
      // FIFO eviction of the oldest PC.
      eraseSlot(fifoHead_);
      stats_.inc("evictions");
    }
    i = insertSlot(pc);
    Counters& c = slots_[i].counters;
    c.numLoadsCount = 1;
    c.robBlockCount = stalledRobHead ? 1 : 0;
    stats_.inc("insertions");
    // A brand-new entry "flips" if its verdict differs from the cold
    // default the PC was predicted with until now.
    return verdictOf(c) != cfg_.coldPredictsCritical;
  }
  Counters& c = slots_[i].counters;
  bool before = verdictOf(c);
  ++c.numLoadsCount;
  if (stalledRobHead) ++c.robBlockCount;
  return verdictOf(c) != before;
}

void CriticalityPredictorTable::saveState(serial::ArchiveWriter& ar) const {
  ar.putU64(count_);
  for (std::uint32_t i = fifoHead_; i != kNil; i = slots_[i].fifoNext) {
    ar.putU64(slots_[i].pc);
    ar.putU64(slots_[i].counters.numLoadsCount);
    ar.putU64(slots_[i].counters.robBlockCount);
  }
}

bool CriticalityPredictorTable::loadState(serial::ArchiveReader& ar) {
  std::uint64_t count = ar.getU64();
  if (!ar.ok() || count > cfg_.capacity) {
    logMessage(LogLevel::Warn, "serial", "cpt: snapshot entry count exceeds capacity");
    return false;
  }
  resetTable();
  for (std::uint64_t i = 0; i < count && ar.ok(); ++i) {
    std::uint64_t pc = ar.getU64();
    std::uint64_t numLoads = ar.getU64();
    std::uint64_t robBlock = ar.getU64();
    if (pc == kEmptyPc || findSlot(pc) != kNil) {
      logMessage(LogLevel::Warn, "serial", "cpt: invalid or duplicate PC in snapshot");
      return false;
    }
    std::uint32_t slot = insertSlot(pc);
    slots_[slot].counters.numLoadsCount = numLoads;
    slots_[slot].counters.robBlockCount = robBlock;
  }
  return ar.ok() && ar.remaining() == 0;
}

CriticalityPredictorTable::Counters CriticalityPredictorTable::countersFor(
    std::uint64_t pc) const {
  std::uint32_t i = findSlot(pc);
  return i == kNil ? Counters{} : slots_[i].counters;
}

}  // namespace renuca::core
