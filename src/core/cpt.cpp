#include "core/cpt.hpp"

#include "common/log.hpp"

namespace renuca::core {

CriticalityPredictorTable::CriticalityPredictorTable(const CptConfig& config)
    : cfg_(config), stats_("cpt") {
  RENUCA_ASSERT(cfg_.capacity > 0, "CPT capacity must be non-zero");
  RENUCA_ASSERT(cfg_.thresholdPct > 0.0 && cfg_.thresholdPct <= 100.0,
                "criticality threshold must be in (0, 100]");
}

bool CriticalityPredictorTable::predict(std::uint64_t pc) {
  auto it = table_.find(pc);
  if (it == table_.end()) {
    // First touch: the paper assumes a line non-critical until shown
    // otherwise (lifetime is prioritized over performance, §IV).
    stats_.inc("cold_lookups");
    return cfg_.coldPredictsCritical;
  }
  const Counters& c = it->second.counters;
  stats_.inc("lookups");
  // robBlockCount >= x% of numLoadsCount  (integer-free comparison).
  bool critical =
      static_cast<double>(c.robBlockCount) * 100.0 >=
      cfg_.thresholdPct * static_cast<double>(c.numLoadsCount);
  stats_.inc(critical ? "predict_critical" : "predict_noncritical");
  return critical;
}

bool CriticalityPredictorTable::hasEntry(std::uint64_t pc) const {
  return table_.find(pc) != table_.end();
}

void CriticalityPredictorTable::train(std::uint64_t pc, bool stalledRobHead) {
  auto it = table_.find(pc);
  if (it == table_.end()) {
    if (table_.size() >= cfg_.capacity) {
      // FIFO eviction of the oldest PC.
      std::uint64_t victim = fifo_.front();
      fifo_.pop_front();
      table_.erase(victim);
      stats_.inc("evictions");
    }
    fifo_.push_back(pc);
    Entry e;
    e.counters.numLoadsCount = 1;
    e.counters.robBlockCount = stalledRobHead ? 1 : 0;
    e.fifoIt = std::prev(fifo_.end());
    table_.emplace(pc, e);
    stats_.inc("insertions");
    return;
  }
  Counters& c = it->second.counters;
  ++c.numLoadsCount;
  if (stalledRobHead) ++c.robBlockCount;
}

CriticalityPredictorTable::Counters CriticalityPredictorTable::countersFor(
    std::uint64_t pc) const {
  auto it = table_.find(pc);
  return it == table_.end() ? Counters{} : it->second.counters;
}

}  // namespace renuca::core
