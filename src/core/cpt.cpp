#include "core/cpt.hpp"

#include "common/log.hpp"
#include "serial/archive.hpp"

namespace renuca::core {

CriticalityPredictorTable::CriticalityPredictorTable(const CptConfig& config)
    : cfg_(config), stats_("cpt") {
  RENUCA_ASSERT(cfg_.capacity > 0, "CPT capacity must be non-zero");
  RENUCA_ASSERT(cfg_.thresholdPct > 0.0 && cfg_.thresholdPct <= 100.0,
                "criticality threshold must be in (0, 100]");
  coldLookups_ = stats_.counter("cold_lookups");
  lookups_ = stats_.counter("lookups");
  predictCritical_ = stats_.counter("predict_critical");
  predictNonCritical_ = stats_.counter("predict_noncritical");
}

bool CriticalityPredictorTable::verdictOf(const Counters& c) const {
  // robBlockCount >= x% of numLoadsCount  (integer-free comparison).
  return static_cast<double>(c.robBlockCount) * 100.0 >=
         cfg_.thresholdPct * static_cast<double>(c.numLoadsCount);
}

bool CriticalityPredictorTable::predict(std::uint64_t pc) {
  auto it = table_.find(pc);
  if (it == table_.end()) {
    // First touch: the paper assumes a line non-critical until shown
    // otherwise (lifetime is prioritized over performance, §IV).
    ++*coldLookups_;
    return cfg_.coldPredictsCritical;
  }
  ++*lookups_;
  bool critical = verdictOf(it->second.counters);
  ++*(critical ? predictCritical_ : predictNonCritical_);
  return critical;
}

bool CriticalityPredictorTable::hasEntry(std::uint64_t pc) const {
  return table_.find(pc) != table_.end();
}

bool CriticalityPredictorTable::train(std::uint64_t pc, bool stalledRobHead) {
  auto it = table_.find(pc);
  if (it == table_.end()) {
    if (table_.size() >= cfg_.capacity) {
      // FIFO eviction of the oldest PC.
      std::uint64_t victim = fifo_.front();
      fifo_.pop_front();
      table_.erase(victim);
      stats_.inc("evictions");
    }
    fifo_.push_back(pc);
    Entry e;
    e.counters.numLoadsCount = 1;
    e.counters.robBlockCount = stalledRobHead ? 1 : 0;
    e.fifoIt = std::prev(fifo_.end());
    table_.emplace(pc, e);
    stats_.inc("insertions");
    // A brand-new entry "flips" if its verdict differs from the cold
    // default the PC was predicted with until now.
    return verdictOf(e.counters) != cfg_.coldPredictsCritical;
  }
  Counters& c = it->second.counters;
  bool before = verdictOf(c);
  ++c.numLoadsCount;
  if (stalledRobHead) ++c.robBlockCount;
  return verdictOf(c) != before;
}

void CriticalityPredictorTable::saveState(serial::ArchiveWriter& ar) const {
  ar.putU64(fifo_.size());
  for (std::uint64_t pc : fifo_) {
    auto it = table_.find(pc);
    RENUCA_ASSERT(it != table_.end(), "CPT fifo/table out of sync");
    ar.putU64(pc);
    ar.putU64(it->second.counters.numLoadsCount);
    ar.putU64(it->second.counters.robBlockCount);
  }
}

bool CriticalityPredictorTable::loadState(serial::ArchiveReader& ar) {
  std::uint64_t count = ar.getU64();
  if (!ar.ok() || count > cfg_.capacity) {
    logMessage(LogLevel::Warn, "serial", "cpt: snapshot entry count exceeds capacity");
    return false;
  }
  table_.clear();
  fifo_.clear();
  for (std::uint64_t i = 0; i < count && ar.ok(); ++i) {
    std::uint64_t pc = ar.getU64();
    Entry e;
    e.counters.numLoadsCount = ar.getU64();
    e.counters.robBlockCount = ar.getU64();
    fifo_.push_back(pc);
    e.fifoIt = std::prev(fifo_.end());
    table_.emplace(pc, e);
  }
  return ar.ok() && ar.remaining() == 0;
}

CriticalityPredictorTable::Counters CriticalityPredictorTable::countersFor(
    std::uint64_t pc) const {
  auto it = table_.find(pc);
  return it == table_.end() ? Counters{} : it->second.counters;
}

}  // namespace renuca::core
