#include "core/naive.hpp"

#include <algorithm>
#include <vector>

#include "common/log.hpp"
#include "serial/archive.hpp"

namespace renuca::core {

NaivePolicy::NaivePolicy(std::uint32_t numBanks,
                         std::function<std::uint64_t(BankId)> bankWrites)
    : numBanks_(numBanks), bankWrites_(std::move(bankWrites)) {
  RENUCA_ASSERT(numBanks > 0, "naive policy needs banks");
  RENUCA_ASSERT(static_cast<bool>(bankWrites_), "naive policy needs the write oracle");
}

BankId NaivePolicy::locate(BlockAddr block, CoreId, bool) const {
  auto it = directory_.find(block);
  // Non-resident blocks have no home under Naive; report where the next
  // fill would go so the lookup misses in a well-defined bank.
  if (it == directory_.end()) {
    BankId best = 0;
    std::uint64_t bestWrites = bankWrites_(0);
    for (BankId b = 1; b < numBanks_; ++b) {
      std::uint64_t w = bankWrites_(b);
      if (w < bestWrites) {
        bestWrites = w;
        best = b;
      }
    }
    return best;
  }
  return it->second;
}

MappingPolicy::Fill NaivePolicy::placeFill(BlockAddr, CoreId, bool) {
  BankId best = 0;
  std::uint64_t bestWrites = bankWrites_(0);
  for (BankId b = 1; b < numBanks_; ++b) {
    std::uint64_t w = bankWrites_(b);
    if (w < bestWrites) {
      bestWrites = w;
      best = b;
    }
  }
  return Fill{best, /*usedRnuca=*/false};
}

void NaivePolicy::onFill(BlockAddr block, BankId bank) { directory_[block] = bank; }

void NaivePolicy::onEvict(BlockAddr block, BankId bank) {
  auto it = directory_.find(block);
  if (it != directory_.end() && it->second == bank) directory_.erase(it);
}

void NaivePolicy::saveState(serial::ArchiveWriter& ar) const {
  std::vector<std::pair<BlockAddr, BankId>> sorted(directory_.begin(),
                                                   directory_.end());
  std::sort(sorted.begin(), sorted.end());
  ar.putU64(sorted.size());
  for (const auto& [block, bank] : sorted) {
    ar.putU64(block);
    ar.putU32(bank);
  }
}

bool NaivePolicy::loadState(serial::ArchiveReader& ar) {
  std::uint64_t count = ar.getU64();
  directory_.clear();
  directory_.reserve(count);
  for (std::uint64_t i = 0; i < count && ar.ok(); ++i) {
    BlockAddr block = ar.getU64();
    BankId bank = ar.getU32();
    if (bank >= numBanks_) {
      logMessage(LogLevel::Warn, "serial", "naive: directory bank out of range");
      return false;
    }
    directory_.emplace(block, bank);
  }
  return ar.ok() && ar.remaining() == 0;
}

}  // namespace renuca::core
