// Private LLC: each core owns its local bank outright (paper's "Private"
// baseline: 16 private 2 MB L3 slices).
//
// Zero network distance and no inter-core interference, so the best IPC of
// the realizable schemes — but writes concentrate entirely in the local
// bank, giving the worst lifetime, and capacity cannot be shared.
#pragma once

#include "core/mapping_policy.hpp"

namespace renuca::core {

class PrivatePolicy final : public MappingPolicy {
 public:
  explicit PrivatePolicy(std::uint32_t numBanks);

  PolicyKind kind() const override { return PolicyKind::Private; }
  BankId locate(BlockAddr block, CoreId requester, bool rnucaBit) const override;
  Fill placeFill(BlockAddr block, CoreId requester, bool critical) override;

 private:
  std::uint32_t numBanks_;
};

}  // namespace renuca::core
