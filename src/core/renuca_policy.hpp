// Re-NUCA: the paper's contribution (§IV).
//
// A hybrid of R-NUCA and S-NUCA keyed on performance criticality:
//
//  * a fill whose triggering load the Criticality Predictor Table marks
//    *critical* is placed with the R-NUCA function — in the requesting
//    core's one-hop cluster, for low latency;
//  * everything else (non-critical loads, store-triggered fills) is placed
//    with S-NUCA — spread over all 16 banks, wear-leveling the ReRAM.
//
// The function used per line is remembered in the enhanced TLB's Mapping
// Bit Vector (tlb::EnhancedTlb); lookups pass that bit back in as
// `rnucaBit` so resident lines are always found.  A line keeps its mapping
// for its whole LLC residency and the bit resets on eviction.  First touch
// defaults to non-critical (the CPT predicts non-critical on a cold
// lookup — the paper's lifetime-first choice; CptConfig::coldPredictsCritical
// flips it for the first-touch ablation).
#pragma once

#include "core/mapping_policy.hpp"
#include "core/rnuca.hpp"
#include "core/snuca.hpp"

namespace renuca::core {

class ReNucaPolicy final : public MappingPolicy {
 public:
  ReNucaPolicy(const noc::Topology& topo, std::uint32_t clusterSize = 4);

  PolicyKind kind() const override { return PolicyKind::ReNuca; }
  BankId locate(BlockAddr block, CoreId requester, bool rnucaBit) const override;
  Fill placeFill(BlockAddr block, CoreId requester, bool critical) override;
  bool needsMbv() const override { return true; }
  bool needsPredictor() const override { return true; }

  const RNucaPolicy& rnuca() const { return rnuca_; }
  const SNucaPolicy& snuca() const { return snuca_; }

 private:
  SNucaPolicy snuca_;
  RNucaPolicy rnuca_;
};

}  // namespace renuca::core
