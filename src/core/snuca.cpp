#include "core/snuca.hpp"

#include "common/log.hpp"

namespace renuca::core {

SNucaPolicy::SNucaPolicy(std::uint32_t numBanks) : numBanks_(numBanks) {
  RENUCA_ASSERT(numBanks > 0, "S-NUCA needs at least one bank");
}

BankId SNucaPolicy::locate(BlockAddr block, CoreId, bool) const {
  return mapBank(block, numBanks_);
}

MappingPolicy::Fill SNucaPolicy::placeFill(BlockAddr block, CoreId, bool) {
  return Fill{mapBank(block, numBanks_), /*usedRnuca=*/false};
}

}  // namespace renuca::core
