// NUCA block-placement policy interface (the paper's design space).
//
// A policy answers two questions:
//
//  * locate()    — given a block and its requesting core, which bank must
//                  hold the block if it is resident?  Used on every LLC
//                  lookup and write-back.  For Re-NUCA the answer depends
//                  on the line's Mapping Bit Vector bit (rnucaBit); every
//                  other policy ignores it.
//  * placeFill() — which bank should a newly fetched block be allocated
//                  into?  For Re-NUCA this consults the criticality
//                  verdict; for Naive it consults per-bank write counts.
//
// Invariant (property-tested): a block placed by placeFill(...) must be
// found by locate(...) given the MBV bit placeFill reported — otherwise
// resident lines would be lost.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "serial/checkpointable.hpp"

namespace renuca::core {

enum class PolicyKind : std::uint8_t { SNuca, RNuca, Private, Naive, ReNuca };

const char* toString(PolicyKind kind);
PolicyKind policyFromString(const std::string& name);

class MappingPolicy : public serial::Checkpointable {
 public:
  virtual ~MappingPolicy() = default;

  virtual PolicyKind kind() const = 0;

  /// Bank holding the block if resident.  `rnucaBit` is the line's MBV bit
  /// (true = placed with the R-NUCA function); only Re-NUCA consults it.
  virtual BankId locate(BlockAddr block, CoreId requester, bool rnucaBit) const = 0;

  struct Fill {
    BankId bank = 0;
    /// True if the R-NUCA mapping function was used — the value to store
    /// into the Mapping Bit Vector.
    bool usedRnuca = false;
  };
  /// Bank to allocate a fill into; `critical` is the criticality
  /// predictor's verdict for the access that triggered the fill.
  virtual Fill placeFill(BlockAddr block, CoreId requester, bool critical) = 0;

  /// Fill/evict notifications for policies with placement state (Naive's
  /// line directory).  Default: stateless.
  virtual void onFill(BlockAddr block, BankId bank) { (void)block, (void)bank; }
  virtual void onEvict(BlockAddr block, BankId bank) { (void)block, (void)bank; }

  /// True if the policy stores placement decisions in the enhanced TLB's
  /// Mapping Bit Vector (only Re-NUCA).
  virtual bool needsMbv() const { return false; }
  /// True if the policy needs a criticality predictor.
  virtual bool needsPredictor() const { return false; }

  // Checkpointing.  Most policies are pure functions of the address and
  // carry no placement state, so the default round trip is empty; Naive
  // overrides to persist its line directory.
  void saveState(serial::ArchiveWriter& ar) const override { (void)ar; }
  bool loadState(serial::ArchiveReader& ar) override {
    (void)ar;
    return true;
  }
};

}  // namespace renuca::core
