// Static NUCA: the block address picks the bank (paper §II.B).
//
// Low-order block-address bits interleave lines across all banks, so every
// core's traffic — and every core's *writes* — spreads uniformly over the
// cache.  Best baseline wear-leveling among the realizable schemes, at the
// cost of average NoC distance on every access.
#pragma once

#include "core/mapping_policy.hpp"

namespace renuca::core {

class SNucaPolicy final : public MappingPolicy {
 public:
  explicit SNucaPolicy(std::uint32_t numBanks);

  PolicyKind kind() const override { return PolicyKind::SNuca; }
  BankId locate(BlockAddr block, CoreId requester, bool rnucaBit) const override;
  Fill placeFill(BlockAddr block, CoreId requester, bool critical) override;

  /// The pure mapping function, shared with Re-NUCA.
  static BankId mapBank(BlockAddr block, std::uint32_t numBanks) {
    return static_cast<BankId>(block % numBanks);
  }

 private:
  std::uint32_t numBanks_;
};

}  // namespace renuca::core
