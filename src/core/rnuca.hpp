// Reactive NUCA (Hardavellas et al., ISCA'09) as used by the paper.
//
// Each core owns a fixed-size cluster of n = 4 banks, all as close to the
// core's mesh node as the placement allows (at most one hop for interior
// cores; mesh edges fall back to the nearest available neighbours).
// Blocks map within the cluster by the paper's rotational function:
//
//     DestinationBank = cluster[(Addr + RID + 1) & (n - 1)]
//
// where RID is the core's rotational ID.  Clusters of neighbouring cores
// overlap, so a write-intensive core hammers its own neighbourhood — the
// wear-imbalance Re-NUCA fixes.
#pragma once

#include <vector>

#include "core/mapping_policy.hpp"
#include "noc/topology.hpp"

namespace renuca::core {

class RNucaPolicy final : public MappingPolicy {
 public:
  /// `clusterSize` must be a power of two (paper: 4); the topology supplies
  /// the geometry and the core/bank placement for cluster construction.
  RNucaPolicy(const noc::Topology& topo, std::uint32_t clusterSize = 4);

  PolicyKind kind() const override { return PolicyKind::RNuca; }
  BankId locate(BlockAddr block, CoreId requester, bool rnucaBit) const override;
  Fill placeFill(BlockAddr block, CoreId requester, bool critical) override;

  /// The cluster banks of a core, in rotational order (tests).
  const std::vector<BankId>& clusterOf(CoreId core) const;
  std::uint32_t rotationalId(CoreId core) const;
  std::uint32_t clusterSize() const { return clusterSize_; }

  /// The pure mapping function, shared with Re-NUCA.
  BankId mapBank(BlockAddr block, CoreId requester) const;

 private:
  void buildClusters(const noc::Topology& topo);

  std::uint32_t clusterSize_;
  std::uint32_t numBanks_;
  std::vector<std::vector<BankId>> clusters_;  // [core] -> banks
  std::vector<std::uint32_t> rid_;             // [core] -> rotational id
};

}  // namespace renuca::core
