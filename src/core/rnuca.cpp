#include "core/rnuca.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace renuca::core {

RNucaPolicy::RNucaPolicy(const noc::Topology& topo, std::uint32_t clusterSize)
    : clusterSize_(clusterSize), numBanks_(topo.numBanks()) {
  RENUCA_ASSERT(isPow2(clusterSize) && clusterSize >= 1,
                "R-NUCA cluster size must be a power of two");
  RENUCA_ASSERT(clusterSize <= numBanks_, "cluster larger than the mesh");
  buildClusters(topo);
}

void RNucaPolicy::buildClusters(const noc::Topology& topo) {
  clusters_.resize(topo.numCores());
  rid_.resize(topo.numCores());

  for (std::uint32_t c = 0; c < topo.numCores(); ++c) {
    const std::uint32_t node = topo.coreNode(c);
    const std::uint32_t x = topo.xOf(node), y = topo.yOf(node);
    // Rotational interleaving (R-NUCA §4): neighbours get different RIDs
    // so overlapping clusters rotate which member takes which address slot.
    // The x + 2y form assumes x varies between horizontal neighbours; on a
    // 1-wide mesh (x == 0 everywhere, so (2y) % n skips odd RIDs for even
    // n) the column index is the only axis, and y itself is the RID.
    rid_[c] = topo.width() == 1 ? y % clusterSize_ : (x + 2 * y) % clusterSize_;

    // Cluster members are the clusterSize banks nearest the core's node:
    // the co-located bank, then 1-hop neighbours, then (at mesh edges and
    // for larger clusters) the next ring out.  Ties break by bank id so
    // the construction is deterministic.
    std::vector<BankId> cand(numBanks_);
    for (BankId b = 0; b < numBanks_; ++b) cand[b] = b;
    std::stable_sort(cand.begin(), cand.end(), [&](BankId a, BankId b) {
      return topo.hopCount(node, topo.bankNode(a)) <
             topo.hopCount(node, topo.bankNode(b));
    });
    cand.resize(clusterSize_);
    clusters_[c] = std::move(cand);
  }
}

const std::vector<BankId>& RNucaPolicy::clusterOf(CoreId core) const {
  RENUCA_ASSERT(core < clusters_.size(), "core out of range");
  return clusters_[core];
}

std::uint32_t RNucaPolicy::rotationalId(CoreId core) const {
  RENUCA_ASSERT(core < rid_.size(), "core out of range");
  return rid_[core];
}

BankId RNucaPolicy::mapBank(BlockAddr block, CoreId requester) const {
  const std::vector<BankId>& cluster = clusters_[requester];
  std::uint32_t slot =
      static_cast<std::uint32_t>((block + rid_[requester] + 1) & (clusterSize_ - 1));
  return cluster[slot];
}

BankId RNucaPolicy::locate(BlockAddr block, CoreId requester, bool) const {
  return mapBank(block, requester);
}

MappingPolicy::Fill RNucaPolicy::placeFill(BlockAddr block, CoreId requester, bool) {
  return Fill{mapBank(block, requester), /*usedRnuca=*/true};
}

}  // namespace renuca::core
