#include "core/renuca_policy.hpp"

namespace renuca::core {

ReNucaPolicy::ReNucaPolicy(const noc::Topology& topo, std::uint32_t clusterSize)
    : snuca_(topo.numBanks()), rnuca_(topo, clusterSize) {}

BankId ReNucaPolicy::locate(BlockAddr block, CoreId requester, bool rnucaBit) const {
  return rnucaBit ? rnuca_.locate(block, requester, true)
                  : snuca_.locate(block, requester, false);
}

MappingPolicy::Fill ReNucaPolicy::placeFill(BlockAddr block, CoreId requester,
                                            bool critical) {
  if (critical) {
    return rnuca_.placeFill(block, requester, critical);  // usedRnuca = true
  }
  return snuca_.placeFill(block, requester, critical);  // usedRnuca = false
}

}  // namespace renuca::core
