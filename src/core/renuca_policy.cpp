#include "core/renuca_policy.hpp"

namespace renuca::core {

ReNucaPolicy::ReNucaPolicy(const noc::MeshNoc& mesh, std::uint32_t clusterSize)
    : snuca_(mesh.numNodes()), rnuca_(mesh, clusterSize) {}

BankId ReNucaPolicy::locate(BlockAddr block, CoreId requester, bool rnucaBit) const {
  return rnucaBit ? rnuca_.locate(block, requester, true)
                  : snuca_.locate(block, requester, false);
}

MappingPolicy::Fill ReNucaPolicy::placeFill(BlockAddr block, CoreId requester,
                                            bool critical) {
  if (critical) {
    return rnuca_.placeFill(block, requester, critical);  // usedRnuca = true
  }
  return snuca_.placeFill(block, requester, critical);  // usedRnuca = false
}

}  // namespace renuca::core
