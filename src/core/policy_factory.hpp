// Construction of mapping policies by kind.
#pragma once

#include <functional>
#include <memory>

#include "core/mapping_policy.hpp"
#include "noc/topology.hpp"

namespace renuca::core {

struct PolicyOptions {
  std::uint32_t clusterSize = 4;  ///< R-NUCA / Re-NUCA cluster size.
  /// Oracle per-bank write counts; required by Naive, ignored otherwise.
  std::function<std::uint64_t(BankId)> bankWrites;
};

/// Builds a policy over a placed topology of LLC banks.  Aborts if Naive
/// is requested without a write oracle.
std::unique_ptr<MappingPolicy> makePolicy(PolicyKind kind, const noc::Topology& topo,
                                          const PolicyOptions& options = {});

}  // namespace renuca::core
