#include "common/kvconfig.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

namespace renuca {

namespace {
std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}
}  // namespace

KvConfig KvConfig::fromArgs(int argc, const char* const* argv) {
  KvConfig cfg;
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    auto eq = tok.find('=');
    if (eq == std::string::npos) {
      cfg.positional_.push_back(tok);
    } else {
      cfg.set(trim(tok.substr(0, eq)), trim(tok.substr(eq + 1)));
    }
  }
  return cfg;
}

KvConfig KvConfig::fromString(const std::string& text) {
  KvConfig cfg;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    auto eq = line.find('=');
    if (eq == std::string::npos) {
      cfg.positional_.push_back(line);
    } else {
      cfg.set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
    }
  }
  return cfg;
}

void KvConfig::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool KvConfig::has(const std::string& key) const { return values_.count(key) != 0; }

std::optional<std::string> KvConfig::getString(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> KvConfig::getInt(const std::string& key) const {
  auto s = getString(key);
  if (!s) return std::nullopt;
  char* end = nullptr;
  long long v = std::strtoll(s->c_str(), &end, 0);
  if (end == s->c_str() || (end && *end != '\0')) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<double> KvConfig::getDouble(const std::string& key) const {
  auto s = getString(key);
  if (!s) return std::nullopt;
  char* end = nullptr;
  double v = std::strtod(s->c_str(), &end);
  if (end == s->c_str() || (end && *end != '\0')) return std::nullopt;
  return v;
}

std::optional<bool> KvConfig::getBool(const std::string& key) const {
  auto s = getString(key);
  if (!s) return std::nullopt;
  std::string v = *s;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return std::nullopt;
}

std::string KvConfig::getOr(const std::string& key, const std::string& dflt) const {
  return getString(key).value_or(dflt);
}
std::int64_t KvConfig::getOr(const std::string& key, std::int64_t dflt) const {
  return getInt(key).value_or(dflt);
}
double KvConfig::getOr(const std::string& key, double dflt) const {
  return getDouble(key).value_or(dflt);
}
bool KvConfig::getOr(const std::string& key, bool dflt) const {
  return getBool(key).value_or(dflt);
}

}  // namespace renuca
