#include "common/kvconfig.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace renuca {

namespace {
std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Levenshtein distance, for did-you-mean suggestions on unknown keys.
std::size_t editDistance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      std::size_t next = std::min({row[j] + 1, row[j - 1] + 1,
                                   diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = row[j];
      row[j] = next;
    }
  }
  return row[b.size()];
}

std::string formatRange(double min, double max) {
  std::ostringstream os;
  os << "[" << min << ", " << max << "]";
  return os.str();
}
}  // namespace

KeyRegistry& KeyRegistry::intKey(const std::string& name, std::int64_t min,
                                 std::int64_t max) {
  rules_[name] = Rule{Type::Int, static_cast<double>(min), static_cast<double>(max)};
  return *this;
}

KeyRegistry& KeyRegistry::doubleKey(const std::string& name, double min, double max) {
  rules_[name] = Rule{Type::Double, min, max};
  return *this;
}

KeyRegistry& KeyRegistry::boolKey(const std::string& name) {
  rules_[name] = Rule{Type::Bool, 0.0, 0.0};
  return *this;
}

KeyRegistry& KeyRegistry::stringKey(const std::string& name) {
  rules_[name] = Rule{Type::String, 0.0, 0.0};
  return *this;
}

std::vector<ConfigError> KeyRegistry::validate(const KvConfig& kv) const {
  std::vector<ConfigError> errors;
  for (const auto& [key, raw] : kv.all()) {
    auto it = rules_.find(key);
    if (it == rules_.end()) {
      std::string msg = "unknown key";
      // Suggest the closest registered key when the typo is a near miss.
      std::size_t best = 3;  // only suggest within edit distance 2
      for (const auto& [known, rule] : rules_) {
        (void)rule;
        std::size_t d = editDistance(key, known);
        if (d < best) {
          best = d;
          msg = "unknown key (did you mean '" + known + "'?)";
        }
      }
      errors.push_back({key, msg});
      continue;
    }
    const Rule& rule = it->second;
    switch (rule.type) {
      case Type::Int: {
        auto v = kv.getInt(key);
        if (!v) {
          errors.push_back({key, "'" + raw + "' is not a valid integer"});
        } else if (static_cast<double>(*v) < rule.min ||
                   static_cast<double>(*v) > rule.max) {
          errors.push_back({key, "value " + raw + " outside allowed range " +
                                     formatRange(rule.min, rule.max)});
        }
        break;
      }
      case Type::Double: {
        auto v = kv.getDouble(key);
        if (!v) {
          errors.push_back({key, "'" + raw + "' is not a finite number"});
        } else if (*v < rule.min || *v > rule.max) {
          errors.push_back({key, "value " + raw + " outside allowed range " +
                                     formatRange(rule.min, rule.max)});
        }
        break;
      }
      case Type::Bool:
        if (!kv.getBool(key)) {
          errors.push_back({key, "'" + raw + "' is not a boolean (true/false/1/0/yes/no)"});
        }
        break;
      case Type::String:
        break;  // any string goes
    }
  }
  return errors;
}

KvConfig KvConfig::fromArgs(int argc, const char* const* argv) {
  KvConfig cfg;
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    auto eq = tok.find('=');
    if (eq == std::string::npos) {
      cfg.positional_.push_back(tok);
    } else {
      cfg.set(trim(tok.substr(0, eq)), trim(tok.substr(eq + 1)));
    }
  }
  return cfg;
}

KvConfig KvConfig::fromString(const std::string& text) {
  KvConfig cfg;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    auto eq = line.find('=');
    if (eq == std::string::npos) {
      cfg.positional_.push_back(line);
    } else {
      cfg.set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
    }
  }
  return cfg;
}

void KvConfig::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool KvConfig::has(const std::string& key) const { return values_.count(key) != 0; }

std::optional<std::string> KvConfig::getString(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> KvConfig::getInt(const std::string& key) const {
  auto s = getString(key);
  if (!s) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(s->c_str(), &end, 0);
  if (end == s->c_str() || (end && *end != '\0')) return std::nullopt;
  if (errno == ERANGE) return std::nullopt;  // silent LLONG_MIN/MAX saturation
  return static_cast<std::int64_t>(v);
}

std::optional<double> KvConfig::getDouble(const std::string& key) const {
  auto s = getString(key);
  if (!s) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s->c_str(), &end);
  if (end == s->c_str() || (end && *end != '\0')) return std::nullopt;
  // Reject overflow-to-infinity and the literal inf/nan spellings: every
  // numeric config knob means a finite quantity.
  if (errno == ERANGE && std::isinf(v)) return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

std::optional<bool> KvConfig::getBool(const std::string& key) const {
  auto s = getString(key);
  if (!s) return std::nullopt;
  std::string v = *s;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return std::nullopt;
}

std::string KvConfig::getOr(const std::string& key, const std::string& dflt) const {
  return getString(key).value_or(dflt);
}
std::int64_t KvConfig::getOr(const std::string& key, std::int64_t dflt) const {
  return getInt(key).value_or(dflt);
}
double KvConfig::getOr(const std::string& key, double dflt) const {
  return getDouble(key).value_or(dflt);
}
bool KvConfig::getOr(const std::string& key, bool dflt) const {
  return getBool(key).value_or(dflt);
}

}  // namespace renuca
