#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace renuca {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::addRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::addSeparator() { rows_.emplace_back(); }

std::string TextTable::toString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emitSep = [&](std::ostringstream& os) {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emitRow = [&](std::ostringstream& os, const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  emitSep(os);
  emitRow(os, headers_);
  emitSep(os);
  for (const auto& row : rows_) {
    if (row.empty()) {
      emitSep(os);
    } else {
      emitRow(os, row);
    }
  }
  emitSep(os);
  return os.str();
}

std::string TextTable::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string TextTable::num(std::uint64_t v) { return std::to_string(v); }

std::string TextTable::pct(double fraction01, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", prec, fraction01 * 100.0);
  return buf;
}

}  // namespace renuca
