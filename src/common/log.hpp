// Minimal leveled logging and hard-assertion macro.
//
// Each simulation run is deterministic and single-threaded, but the sweep
// engine runs many Systems concurrently, so the level filter is atomic and
// the stderr sink takes a lock per line (whole lines never interleave).
// RENUCA_ASSERT stays active in release builds:
// a simulator that silently corrupts cache state produces plausible-looking
// wrong numbers, which is worse than an abort.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace renuca {

enum class LogLevel : std::uint8_t { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/// Global minimum level; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Parses "debug"/"info"/"warn"/"error" (case-insensitive; also 0-3);
/// returns nullopt for anything else.  Backs the `log_level=` kv-config key.
std::optional<LogLevel> logLevelFromString(const std::string& name);
const char* toString(LogLevel level);

/// Writes "[LEVEL] message\n" to stderr if `level` passes the filter.
void logMessage(LogLevel level, const std::string& message);

/// Component-tagged variant: "[LEVEL] component: message".
void logMessage(LogLevel level, const std::string& component, const std::string& message);

[[noreturn]] void assertFail(const char* expr, const char* file, int line,
                             const std::string& message);

}  // namespace renuca

#define RENUCA_ASSERT(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) ::renuca::assertFail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
