#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace renuca {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::clear() { *this = RunningStat{}; }

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double bucketWidth, std::size_t numBuckets)
    : width_(bucketWidth), buckets_(numBuckets, 0) {}

void Histogram::add(double x) {
  std::size_t i = 0;
  if (x > 0 && width_ > 0) {
    i = static_cast<std::size_t>(x / width_);
    if (i >= buckets_.size()) i = buckets_.size() - 1;
  }
  ++buckets_[i];
  ++total_;
  sum_ += x;
}

double Histogram::percentile(double q) const {
  if (total_ == 0 || buckets_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(total_);
  if (target <= 0.0) {
    // q = 0: the infimum of the sample range — the left edge of the first
    // non-empty bucket, not bucket 0 (which may hold no mass).
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i]) return static_cast<double>(i) * width_;
    }
    return 0.0;
  }
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    std::uint64_t c = buckets_[i];
    // target > 0 and acc < target here, so a bucket satisfies the bound
    // only when c > 0; interpolation never divides by zero.
    if (c && static_cast<double>(acc + c) >= target) {
      double within = (target - static_cast<double>(acc)) / static_cast<double>(c);
      return (static_cast<double>(i) + within) * width_;
    }
    acc += c;
  }
  // Float round-off (q ~ 1 with huge totals) can leave the loop short of
  // the target; answer with the right edge of the last non-empty bucket.
  for (std::size_t i = buckets_.size(); i-- > 0;) {
    if (buckets_[i]) return static_cast<double>(i + 1) * width_;
  }
  return width_ * static_cast<double>(buckets_.size());
}

std::uint64_t StatSet::get(const std::string& key) const {
  auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second;
}

void StatSet::zero() {
  for (auto& [k, v] : counters_) v = 0;
}

std::string StatSet::toString() const {
  std::ostringstream os;
  for (const auto& [k, v] : counters_) {
    if (!name_.empty()) os << name_ << '.';
    os << k << '=' << v << '\n';
  }
  return os.str();
}

double harmonicMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    acc += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / acc;
}

double arithmeticMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double geometricMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

double minOf(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

}  // namespace renuca
