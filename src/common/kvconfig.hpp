// Key=value configuration overlay.
//
// Bench binaries and examples accept "key=value" pairs on the command line
// (e.g. "instr_per_core=200000 policy=renuca") which are collected into a
// KvConfig and applied on top of the Table-I defaults.  Keeping parsing here
// means the sim layer only deals with typed values.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace renuca {

/// One problem found while validating a KvConfig against a KeyRegistry:
/// an unknown key (likely a typo) or a value that fails type/range checks.
struct ConfigError {
  std::string key;
  std::string message;  ///< Human-readable; includes a suggestion for typos.

  std::string toString() const { return key + ": " + message; }
};

class KvConfig;

/// Registry of the keys an experiment accepts, with per-key type and range
/// rules.  Drives strict-mode validation: a misspelled key stops the run
/// instead of silently falling back to the default value.
class KeyRegistry {
 public:
  enum class Type : std::uint8_t { Int, Double, Bool, String };

  KeyRegistry& intKey(const std::string& name, std::int64_t min, std::int64_t max);
  KeyRegistry& doubleKey(const std::string& name, double min, double max);
  KeyRegistry& boolKey(const std::string& name);
  KeyRegistry& stringKey(const std::string& name);

  bool known(const std::string& name) const { return rules_.count(name) != 0; }

  /// Checks every key/value pair of `kv`: unknown keys (with a
  /// nearest-known-key suggestion), unparsable values, and out-of-range
  /// numbers.  Returns an empty vector when the config is clean.
  std::vector<ConfigError> validate(const KvConfig& kv) const;

 private:
  struct Rule {
    Type type = Type::String;
    double min = 0.0;
    double max = 0.0;
  };
  std::map<std::string, Rule> rules_;
};

class KvConfig {
 public:
  KvConfig() = default;

  /// Parses argv-style "key=value" tokens; tokens without '=' are returned
  /// as positional arguments in insertion order.
  static KvConfig fromArgs(int argc, const char* const* argv);

  /// Parses "key=value" lines; '#' starts a comment; blank lines ignored.
  static KvConfig fromString(const std::string& text);

  void set(const std::string& key, const std::string& value);
  bool has(const std::string& key) const;

  std::optional<std::string> getString(const std::string& key) const;
  /// Parses a decimal/hex/octal integer.  Trailing garbage, overflow
  /// (ERANGE saturation), and empty values all return nullopt.
  std::optional<std::int64_t> getInt(const std::string& key) const;
  /// Parses a finite double.  "inf"/"nan" spellings, overflow to ±inf, and
  /// trailing garbage all return nullopt.
  std::optional<double> getDouble(const std::string& key) const;
  std::optional<bool> getBool(const std::string& key) const;  ///< true/false/1/0/yes/no

  std::string getOr(const std::string& key, const std::string& dflt) const;
  std::int64_t getOr(const std::string& key, std::int64_t dflt) const;
  double getOr(const std::string& key, double dflt) const;
  bool getOr(const std::string& key, bool dflt) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::map<std::string, std::string>& all() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace renuca
