// Key=value configuration overlay.
//
// Bench binaries and examples accept "key=value" pairs on the command line
// (e.g. "instr_per_core=200000 policy=renuca") which are collected into a
// KvConfig and applied on top of the Table-I defaults.  Keeping parsing here
// means the sim layer only deals with typed values.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace renuca {

class KvConfig {
 public:
  KvConfig() = default;

  /// Parses argv-style "key=value" tokens; tokens without '=' are returned
  /// as positional arguments in insertion order.
  static KvConfig fromArgs(int argc, const char* const* argv);

  /// Parses "key=value" lines; '#' starts a comment; blank lines ignored.
  static KvConfig fromString(const std::string& text);

  void set(const std::string& key, const std::string& value);
  bool has(const std::string& key) const;

  std::optional<std::string> getString(const std::string& key) const;
  std::optional<std::int64_t> getInt(const std::string& key) const;
  std::optional<double> getDouble(const std::string& key) const;
  std::optional<bool> getBool(const std::string& key) const;  ///< true/false/1/0/yes/no

  std::string getOr(const std::string& key, const std::string& dflt) const;
  std::int64_t getOr(const std::string& key, std::int64_t dflt) const;
  double getOr(const std::string& key, double dflt) const;
  bool getOr(const std::string& key, bool dflt) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::map<std::string, std::string>& all() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace renuca
