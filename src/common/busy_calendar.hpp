// Interval-based resource reservation.
//
// The simulator computes each request's full future path when the request
// issues, so a shared resource (LLC bank, mesh link, DRAM bank) receives
// reservations at *mixed* future offsets — a demand lookup at +7 cycles
// and the corresponding fill write at +150.  A single busy-until waterline
// would let the far-future reservation block every near-term one (head-of-
// line blocking that does not exist in hardware).  BusyCalendar instead
// keeps the set of busy intervals and books each reservation into the
// earliest gap at or after its arrival time.
//
// Intervals older than a sliding horizon behind the latest arrival are
// pruned, keeping the calendar small (tens of entries at realistic loads).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace renuca {

class BusyCalendar {
 public:
  /// `pruneHorizon`: intervals ending more than this many cycles before
  /// the most recent arrival are dropped (no later arrival can be earlier
  /// than maxArrival - horizon in a causally sane simulation).
  explicit BusyCalendar(Cycle pruneHorizon = 4096) : horizon_(pruneHorizon) {}

  /// Books `duration` busy cycles at the earliest time >= `arrive` with a
  /// free gap; returns the start of the booked interval.
  Cycle reserve(Cycle arrive, Cycle duration);

  /// Total cycles currently booked (tests).
  Cycle bookedCycles() const;
  std::size_t intervalCount() const { return intervals_.size() - begin_; }

 private:
  struct Interval {
    Cycle start;
    Cycle end;  // exclusive
  };
  void prune(Cycle arrive);

  /// Live intervals are intervals_[begin_..end): prune() advances begin_
  /// instead of erasing from the front (reserve runs for every bank, link,
  /// and DRAM reservation, and a front erase memmoves the whole calendar).
  /// The dead prefix is compacted away once it outgrows the live part.
  std::vector<Interval> intervals_;  // sorted by start, non-overlapping
  std::size_t begin_ = 0;
  Cycle horizon_;
  Cycle maxArrival_ = 0;
};

}  // namespace renuca
