// Fixed-width text table used by every bench binary to print the paper's
// rows/series in an aligned, diff-friendly format.
#pragma once

#include <string>
#include <vector>

namespace renuca {

/// Builds an aligned ASCII table.  Numeric cells are formatted by the caller
/// (see cell() helpers) so that each bench controls its precision.
class TextTable {
 public:
  /// Column headers define the column count; later rows are padded/truncated
  /// to match.
  explicit TextTable(std::vector<std::string> headers);

  void addRow(std::vector<std::string> cells);
  /// Adds a horizontal separator at the current position.
  void addSeparator();

  std::string toString() const;

  /// Formats a double with `prec` digits after the decimal point.
  static std::string num(double v, int prec = 2);
  /// Formats an integer count.
  static std::string num(std::uint64_t v);
  /// Formats a percentage ("12.3%").
  static std::string pct(double fraction01, int prec = 1);

 private:
  std::vector<std::string> headers_;
  // Separator rows are encoded as an empty vector.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace renuca
