// Deterministic PCG32 random number generator.
//
// All stochastic behaviour in the simulator (workload generation, workload
// mix sampling, replacement tie-breaking) draws from Pcg32 so that a run is
// exactly reproducible from its seed.  std::mt19937 is avoided because its
// state is large and its distributions are not bit-stable across standard
// library implementations.
#pragma once

#include <cstdint>
#include <vector>

namespace renuca {

/// PCG-XSH-RR 64/32 (O'Neill 2014).  Small state, excellent statistical
/// quality, and fully deterministic across platforms.
///
/// The draw methods are header-inline: the workload generators and
/// replacement policies call them tens of millions of times per simulated
/// second, so the call must inline and the per-draw divisions must be
/// hoistable (see BoundedDraw for the precomputed-divisor fast path).
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bull,
                 std::uint64_t stream = 0xda3e39cb94b95bdbull) {
    state_ = 0;
    inc_ = (stream << 1) | 1u;
    next();
    state_ += seed;
    next();
  }

  /// Next raw 32-bit output.
  std::uint32_t next() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ull + inc_;
    std::uint32_t xorshifted = static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
  }

  /// A fixed bound with its rejection threshold (and, for power-of-two
  /// bounds, the mask) computed once.  nextBelow(BoundedDraw) consumes the
  /// identical RNG stream as nextBelow(bound) — same rejection decisions,
  /// same results — while skipping the two per-draw divisions.
  struct BoundedDraw {
    std::uint32_t bound = 1;
    std::uint32_t threshold = 0;  ///< (2^32 - bound) % bound
    std::uint32_t mask = 0;       ///< bound - 1 when bound is a power of two, else 0

    BoundedDraw() = default;
    explicit BoundedDraw(std::uint32_t b) : bound(b) {
      if (bound > 1) {
        threshold = (~bound + 1u) % bound;
        if ((bound & (bound - 1)) == 0) mask = bound - 1;
      }
    }
  };

  /// Uniform in [0, bound) without modulo bias; bound must be > 0.
  std::uint32_t nextBelow(std::uint32_t bound) {
    if (bound <= 1) return 0;
    // Lemire-style rejection to remove modulo bias.
    std::uint32_t threshold = (~bound + 1u) % bound;
    for (;;) {
      std::uint32_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Same stream and results as nextBelow(d.bound), divisions precomputed.
  std::uint32_t nextBelow(const BoundedDraw& d) {
    if (d.bound <= 1) return 0;
    if (d.mask) return next() & d.mask;  // threshold is 0 for power-of-two bounds
    for (;;) {
      std::uint32_t r = next();
      if (r >= d.threshold) return r % d.bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    std::uint64_t span = hi - lo + 1;
    if (span == 0) {  // full 64-bit range
      return (static_cast<std::uint64_t>(next()) << 32) | next();
    }
    if (span <= 0xffffffffull) return lo + nextBelow(static_cast<std::uint32_t>(span));
    // Split into high and low halves; fine for the address ranges we use.
    std::uint64_t r = (static_cast<std::uint64_t>(next()) << 32) | next();
    return lo + (r % span);
  }

  /// Uniform double in [0, 1).
  double nextDouble() { return next() * (1.0 / 4294967296.0); }

  /// Bernoulli trial with success probability p.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return nextDouble() < p;
  }

  /// Pick an index in [0, weights.size()) with probability proportional to
  /// weights[i]; weights need not be normalized.  Returns 0 on empty/zero
  /// input.
  std::size_t weightedPick(const std::vector<double>& weights);

  /// Snapshot of the generator's full state; restoring it resumes the
  /// stream at exactly the same point (warm-state checkpoints).
  struct State {
    std::uint64_t state = 0;
    std::uint64_t inc = 0;
  };
  State saveState() const { return {state_, inc_}; }
  void restoreState(const State& s) {
    state_ = s.state;
    inc_ = s.inc;
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace renuca
