// Deterministic PCG32 random number generator.
//
// All stochastic behaviour in the simulator (workload generation, workload
// mix sampling, replacement tie-breaking) draws from Pcg32 so that a run is
// exactly reproducible from its seed.  std::mt19937 is avoided because its
// state is large and its distributions are not bit-stable across standard
// library implementations.
#pragma once

#include <cstdint>
#include <vector>

namespace renuca {

/// PCG-XSH-RR 64/32 (O'Neill 2014).  Small state, excellent statistical
/// quality, and fully deterministic across platforms.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bull,
                 std::uint64_t stream = 0xda3e39cb94b95bdbull);

  /// Next raw 32-bit output.
  std::uint32_t next();

  /// Uniform in [0, bound) without modulo bias; bound must be > 0.
  std::uint32_t nextBelow(std::uint32_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Pick an index in [0, weights.size()) with probability proportional to
  /// weights[i]; weights need not be normalized.  Returns 0 on empty/zero
  /// input.
  std::size_t weightedPick(const std::vector<double>& weights);

  /// Snapshot of the generator's full state; restoring it resumes the
  /// stream at exactly the same point (warm-state checkpoints).
  struct State {
    std::uint64_t state = 0;
    std::uint64_t inc = 0;
  };
  State saveState() const { return {state_, inc_}; }
  void restoreState(const State& s) {
    state_ = s.state;
    inc_ = s.inc;
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace renuca
