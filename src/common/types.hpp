// Core fixed-width types and address arithmetic shared by every module.
//
// The simulator models a 16-core CMP with 64-byte cache lines and 4 KB
// pages (paper Table I).  All address math in the code base goes through
// the helpers here so that line/page geometry is defined in exactly one
// place.
#pragma once

#include <cstdint>
#include <cstddef>
#include <limits>

namespace renuca {

using Addr = std::uint64_t;    ///< Byte address (virtual or physical).
using BlockAddr = std::uint64_t;  ///< Address >> kLineShift (one per cache line).
using Cycle = std::uint64_t;   ///< Global clock, in core cycles.
using CoreId = std::uint32_t;  ///< 0-based core index.
using BankId = std::uint32_t;  ///< 0-based LLC bank index.
using Asid = std::uint32_t;    ///< Address-space id (one per app in a mix).

inline constexpr std::uint32_t kLineBytes = 64;
inline constexpr std::uint32_t kLineShift = 6;  // log2(kLineBytes)
inline constexpr std::uint32_t kPageBytes = 4096;
inline constexpr std::uint32_t kPageShift = 12;  // log2(kPageBytes)
inline constexpr std::uint32_t kLinesPerPage = kPageBytes / kLineBytes;  // 64

inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();
inline constexpr BankId kNoBank = std::numeric_limits<BankId>::max();

/// Byte address -> cache-line (block) address.
constexpr BlockAddr lineOf(Addr a) { return a >> kLineShift; }
/// Cache-line address -> first byte address of the line.
constexpr Addr lineBase(BlockAddr b) { return b << kLineShift; }
/// Byte address -> virtual/physical page number.
constexpr Addr pageOf(Addr a) { return a >> kPageShift; }
/// Index of a line within its 4 KB page, in [0, kLinesPerPage).
constexpr std::uint32_t lineIndexInPage(Addr a) {
  return static_cast<std::uint32_t>((a >> kLineShift) & (kLinesPerPage - 1));
}
/// Byte offset within the cache line.
constexpr std::uint32_t lineOffset(Addr a) { return static_cast<std::uint32_t>(a & (kLineBytes - 1)); }

/// Kind of a dynamic instruction produced by the workload generator.
enum class InstrKind : std::uint8_t {
  Alu,    ///< Any non-memory instruction (1-cycle latency).
  Load,   ///< Demand load; may stall dependents and the ROB head.
  Store,  ///< Store; retires from a store buffer, never stalls commit.
};

/// Memory access type as seen by the cache hierarchy.
enum class AccessType : std::uint8_t { Read, Write };

}  // namespace renuca
