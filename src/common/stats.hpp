// Statistics primitives: counters, running summaries, histograms, and the
// mean helpers (harmonic mean in particular) that the paper's lifetime
// metrics are built on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace renuca {

/// Streaming min/max/mean/variance over doubles (Welford).
class RunningStat {
 public:
  void add(double x);
  void clear();

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bucket histogram over [0, bucketWidth * numBuckets); values beyond
/// the last bucket are clamped into it.  Used for latency distributions.
class Histogram {
 public:
  Histogram(double bucketWidth, std::size_t numBuckets);

  void add(double x);
  std::uint64_t bucketCount(std::size_t i) const { return buckets_.at(i); }
  std::size_t numBuckets() const { return buckets_.size(); }
  double bucketWidth() const { return width_; }
  std::uint64_t total() const { return total_; }
  double sum() const { return sum_; }  ///< Sum of raw samples (pre-clamp).
  /// Value below which `q` (clamped to [0,1]) of samples fall, linearly
  /// interpolated within a bucket.  Pinned edge behavior:
  ///  * empty histogram -> 0;
  ///  * q = 0 -> left edge of the first non-empty bucket;
  ///  * q = 1 -> right edge of the last non-empty bucket;
  ///  * mass clamped into the last bucket interpolates inside it, so the
  ///    result never exceeds bucketWidth * numBuckets even when samples do.
  double percentile(double q) const;

 private:
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

/// Named 64-bit counters grouped under a component; cheap to increment,
/// queryable by name for reporting.
///
/// Hot paths should not pay a string-keyed map lookup per event: resolve a
/// handle once with counter() and bump through the pointer.  Handles stay
/// valid across zero() (which keeps the keys) but not across clear().
class StatSet {
 public:
  explicit StatSet(std::string name = "") : name_(std::move(name)) {}

  void inc(const std::string& key, std::uint64_t by = 1) { counters_[key] += by; }
  std::uint64_t get(const std::string& key) const;

  /// Stable pointer to the counter value, creating it (at 0) if absent.
  /// std::map nodes do not move, so the pointer survives later insertions
  /// and zero(); it is invalidated only by clear().
  std::uint64_t* counter(const std::string& key) { return &counters_[key]; }

  /// Zeros every counter value while keeping the keys (and any handles).
  void zero();

  /// Drops all counters.  Invalidates counter() handles — prefer zero()
  /// once handles have been taken.
  void clear() { counters_.clear(); }

  const std::string& name() const { return name_; }
  const std::map<std::string, std::uint64_t>& all() const { return counters_; }
  /// "name.key=value" lines, one per counter, sorted by key.
  std::string toString() const;

 private:
  std::string name_;
  std::map<std::string, std::uint64_t> counters_;
};

/// Harmonic mean of strictly positive values; zero/negative entries make the
/// result 0 (a dead bank dominates, which is exactly the property the paper
/// wants from this mean).  Empty input -> 0.
double harmonicMean(const std::vector<double>& xs);

/// Arithmetic mean; empty input -> 0.
double arithmeticMean(const std::vector<double>& xs);

/// Geometric mean of positive values; empty input -> 0.
double geometricMean(const std::vector<double>& xs);

/// Minimum; empty input -> 0.
double minOf(const std::vector<double>& xs);

}  // namespace renuca
