#include "common/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "common/log.hpp"

namespace renuca {

unsigned ThreadPool::hardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned threads) {
  threads = std::max(1u, threads);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    stop_ = true;
  }
  workCv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    target = nextWorker_;
    nextWorker_ = (nextWorker_ + 1) % workers_.size();
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->tasks.push_back(std::move(task));
  }
  // The task must be in a deque *before* it is counted: a worker that
  // observes queued_ > 0 is guaranteed to find a task to take.
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    ++queued_;
  }
  workCv_.notify_one();
}

bool ThreadPool::takeTask(std::size_t self, std::function<void()>& out) {
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  for (std::size_t i = 1; i < workers_.size(); ++i) {
    Worker& victim = *workers_[(self + i) % workers_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(stateMutex_);
      workCv_.wait(lock, [this] { return stop_ || queued_ > 0; });
      if (stop_ && queued_ == 0) return;
      // Claim one unit of queued work before dropping the state lock; the
      // matching deque pop happens outside it.
      --queued_;
      ++running_;
    }
    if (!takeTask(self, task)) {
      // The claim's task landed in a deque this worker had already
      // scanned past (another worker took a different task meanwhile).
      // Return the claim and go around again.
      std::lock_guard<std::mutex> lock(stateMutex_);
      ++queued_;
      --running_;
      workCv_.notify_one();
      continue;
    }
    // A throwing task must not take the worker (or a blocked wait()) down
    // with it; the bookkeeping below runs either way.
    try {
      task();
    } catch (const std::exception& e) {
      logMessage(LogLevel::Error, "thread_pool",
                 std::string("task threw: ") + e.what());
    } catch (...) {
      logMessage(LogLevel::Error, "thread_pool", "task threw a non-exception");
    }
    {
      std::lock_guard<std::mutex> lock(stateMutex_);
      --running_;
      if (queued_ == 0 && running_ == 0) idleCv_.notify_all();
    }
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(stateMutex_);
  idleCv_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
}

}  // namespace renuca
