#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace renuca {

namespace {
LogLevel g_level = LogLevel::Info;

const char* levelName(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level = level; }
LogLevel logLevel() { return g_level; }

void logMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] %s\n", levelName(level), message.c_str());
}

void assertFail(const char* expr, const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "ASSERT FAILED: %s at %s:%d: %s\n", expr, file, line, message.c_str());
  std::abort();
}

}  // namespace renuca
