#include "common/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace renuca {

namespace {
// The level is read on every logMessage call from any sweep worker, so it
// is atomic; relaxed ordering suffices (a level change mid-sweep may miss
// a few in-flight lines, which is harmless).  The sink lock keeps whole
// lines atomic when parallel jobs log concurrently.
std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_sinkMutex;

const char* levelName(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}

/// Milliseconds since the first log line (monotonic, so lines correlate
/// with profiler/trace timestamps even when the wall clock steps).
std::int64_t monotonicMs() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Small stable id for the calling thread (1 = whoever logs first);
/// std::thread::id itself prints as an opaque long hash.
std::uint32_t threadTag() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tag = next.fetch_add(1, std::memory_order_relaxed);
  return tag;
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }

const char* toString(LogLevel level) { return levelName(level); }

std::optional<LogLevel> logLevelFromString(const std::string& name) {
  std::string v;
  v.reserve(name.size());
  for (char c : name) v.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (v == "debug" || v == "0") return LogLevel::Debug;
  if (v == "info" || v == "1") return LogLevel::Info;
  if (v == "warn" || v == "warning" || v == "2") return LogLevel::Warn;
  if (v == "error" || v == "3") return LogLevel::Error;
  return std::nullopt;
}

void logMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(logLevel())) return;
  const std::int64_t ms = monotonicMs();
  std::lock_guard<std::mutex> lock(g_sinkMutex);
  std::fprintf(stderr, "[%8lld.%03lld t%u %s] %s\n",
               static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), threadTag(), levelName(level),
               message.c_str());
}

void logMessage(LogLevel level, const std::string& component, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(logLevel())) return;
  const std::int64_t ms = monotonicMs();
  std::lock_guard<std::mutex> lock(g_sinkMutex);
  std::fprintf(stderr, "[%8lld.%03lld t%u %s] %s: %s\n",
               static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), threadTag(), levelName(level),
               component.c_str(), message.c_str());
}

void assertFail(const char* expr, const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "ASSERT FAILED: %s at %s:%d: %s\n", expr, file, line, message.c_str());
  std::abort();
}

}  // namespace renuca
