#include "common/rng.hpp"

namespace renuca {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1) | 1u) {
  next();
  state_ += seed;
  next();
}

std::uint32_t Pcg32::next() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ull + inc_;
  std::uint32_t xorshifted = static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
  std::uint32_t rot = static_cast<std::uint32_t>(old >> 59);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

std::uint32_t Pcg32::nextBelow(std::uint32_t bound) {
  if (bound <= 1) return 0;
  // Lemire-style rejection to remove modulo bias.
  std::uint32_t threshold = (~bound + 1u) % bound;
  for (;;) {
    std::uint32_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Pcg32::range(std::uint64_t lo, std::uint64_t hi) {
  std::uint64_t span = hi - lo + 1;
  if (span == 0) {  // full 64-bit range
    return (static_cast<std::uint64_t>(next()) << 32) | next();
  }
  if (span <= 0xffffffffull) return lo + nextBelow(static_cast<std::uint32_t>(span));
  // Split into high and low halves; fine for the address ranges we use.
  std::uint64_t r = (static_cast<std::uint64_t>(next()) << 32) | next();
  return lo + (r % span);
}

double Pcg32::nextDouble() {
  return next() * (1.0 / 4294967296.0);
}

bool Pcg32::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return nextDouble() < p;
}

std::size_t Pcg32::weightedPick(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double r = nextDouble() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0 ? weights[i] : 0.0);
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace renuca
