#include "common/rng.hpp"

namespace renuca {

std::size_t Pcg32::weightedPick(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double r = nextDouble() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0 ? weights[i] : 0.0);
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace renuca
