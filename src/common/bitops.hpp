// Small bit-manipulation helpers used by cache/TLB/DRAM indexing.
#pragma once

#include <bit>
#include <cstdint>

namespace renuca {

/// True iff v is a power of two (and non-zero).
constexpr bool isPow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Floor log2; requires v > 0.
constexpr std::uint32_t log2Floor(std::uint64_t v) {
  return 63u - static_cast<std::uint32_t>(std::countl_zero(v));
}

/// Extract `count` bits starting at bit `lo` of `v`.
constexpr std::uint64_t bits(std::uint64_t v, std::uint32_t lo, std::uint32_t count) {
  return (v >> lo) & ((count >= 64) ? ~0ull : ((1ull << count) - 1));
}

/// 64-bit mix (splitmix64 finalizer): used for deterministic address hashing
/// (e.g. page-table VPN->PPN assignment) where we want an avalanche effect
/// without carrying RNG state.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace renuca
