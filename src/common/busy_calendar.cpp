#include "common/busy_calendar.hpp"

#include <algorithm>

namespace renuca {

void BusyCalendar::prune(Cycle arrive) {
  maxArrival_ = std::max(maxArrival_, arrive);
  if (maxArrival_ < horizon_) return;
  Cycle cutoff = maxArrival_ - horizon_;
  std::size_t drop = 0;
  while (drop < intervals_.size() && intervals_[drop].end < cutoff) ++drop;
  if (drop > 0) intervals_.erase(intervals_.begin(), intervals_.begin() + drop);
}

Cycle BusyCalendar::reserve(Cycle arrive, Cycle duration) {
  if (duration == 0) return arrive;
  prune(arrive);

  // Find the first interval that could interfere (ends after `arrive`).
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), arrive,
      [](const Interval& iv, Cycle t) { return iv.end <= t; });

  Cycle start = arrive;
  while (it != intervals_.end()) {
    if (start + duration <= it->start) break;  // fits in the gap before *it
    start = std::max(start, it->end);
    ++it;
  }

  // Insert [start, start+duration), merging with adjacent intervals.
  Interval booked{start, start + duration};
  auto pos = std::lower_bound(
      intervals_.begin(), intervals_.end(), booked,
      [](const Interval& a, const Interval& b) { return a.start < b.start; });
  // Merge with predecessor if contiguous.
  if (pos != intervals_.begin()) {
    auto prev = pos - 1;
    if (prev->end == booked.start) {
      prev->end = booked.end;
      // Merge with successor too.
      if (pos != intervals_.end() && pos->start == prev->end) {
        prev->end = pos->end;
        intervals_.erase(pos);
      }
      return start;
    }
  }
  if (pos != intervals_.end() && pos->start == booked.end) {
    pos->start = booked.start;
    return start;
  }
  intervals_.insert(pos, booked);
  return start;
}

Cycle BusyCalendar::bookedCycles() const {
  Cycle total = 0;
  for (const Interval& iv : intervals_) total += iv.end - iv.start;
  return total;
}

}  // namespace renuca
