#include "common/busy_calendar.hpp"

#include <algorithm>

namespace renuca {

void BusyCalendar::prune(Cycle arrive) {
  maxArrival_ = std::max(maxArrival_, arrive);
  if (maxArrival_ < horizon_) return;
  Cycle cutoff = maxArrival_ - horizon_;
  while (begin_ < intervals_.size() && intervals_[begin_].end < cutoff) ++begin_;
  // Compact the dead prefix only once it dominates the storage, so the
  // memmove cost amortizes to O(1) per reservation.
  if (begin_ >= 64 && begin_ * 2 >= intervals_.size()) {
    intervals_.erase(intervals_.begin(),
                     intervals_.begin() + static_cast<std::ptrdiff_t>(begin_));
    begin_ = 0;
  }
}

Cycle BusyCalendar::reserve(Cycle arrive, Cycle duration) {
  if (duration == 0) return arrive;
  prune(arrive);

  // Find the first interval that could interfere (ends after `arrive`).
  auto it = std::lower_bound(
      intervals_.begin() + static_cast<std::ptrdiff_t>(begin_), intervals_.end(),
      arrive, [](const Interval& iv, Cycle t) { return iv.end <= t; });

  Cycle start = arrive;
  while (it != intervals_.end()) {
    if (start + duration <= it->start) break;  // fits in the gap before *it
    start = std::max(start, it->end);
    ++it;
  }

  // Insert [start, start+duration) at `it`, merging with neighbours.  The
  // gap walk already established the position: every interval before `it`
  // ends at or before `start`, and `it` (if any) starts at or after
  // `start + duration`, so no separate search is needed.
  Interval booked{start, start + duration};
  if (it != intervals_.begin() + static_cast<std::ptrdiff_t>(begin_)) {
    auto prev = it - 1;
    if (prev->end == booked.start) {
      prev->end = booked.end;
      // Merge with successor too.
      if (it != intervals_.end() && it->start == prev->end) {
        prev->end = it->end;
        intervals_.erase(it);
      }
      return start;
    }
  }
  if (it != intervals_.end() && it->start == booked.end) {
    it->start = booked.start;
    return start;
  }
  intervals_.insert(it, booked);
  return start;
}

Cycle BusyCalendar::bookedCycles() const {
  Cycle total = 0;
  for (std::size_t i = begin_; i < intervals_.size(); ++i) {
    total += intervals_[i].end - intervals_[i].start;
  }
  return total;
}

}  // namespace renuca
