// Work-stealing thread pool for coarse-grained simulation jobs.
//
// The sweep engine (sim/sweep.hpp) runs dozens of independent simulations
// per bench; each job is seconds of work, so the pool optimizes for
// simplicity and correctness over sub-microsecond dispatch.  Each worker
// owns a deque: it pops its own work LIFO (cache-warm) and steals FIFO
// from the other workers when its deque runs dry, which keeps every core
// busy even when job lengths vary by an order of magnitude (single-core
// characterization runs vs 16-core sweeps).
//
// The pool is deliberately *not* part of any simulated component: a
// System is single-threaded and deterministic; only whole Systems run
// concurrently.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace renuca {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);
  /// Waits for outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  A task that throws does not kill its worker or
  /// wedge wait(): the exception is caught at the worker loop, logged,
  /// and the task counts as finished.  Callers that need the error itself
  /// catch inside the task (the sweep engine records it in the job's
  /// result slot).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.  The pool is
  /// reusable after wait(); submit() may be called again.
  void wait();

  unsigned threadCount() const { return static_cast<unsigned>(workers_.size()); }

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to return 0 on exotic platforms).
  static unsigned hardwareThreads();

 private:
  /// One worker's deque.  The owner pops from the back, thieves take from
  /// the front; a plain mutex per deque is ample at job granularity.
  struct Worker {
    std::deque<std::function<void()>> tasks;
    std::mutex mutex;
  };

  void workerLoop(std::size_t self);
  /// Pops the owner's newest task, else steals the oldest task of another
  /// worker (scanning from `self + 1` so thieves spread out).
  bool takeTask(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex stateMutex_;
  std::condition_variable workCv_;   ///< Wakes workers on submit/stop.
  std::condition_variable idleCv_;   ///< Wakes wait() when all work is done.
  std::size_t queued_ = 0;           ///< Tasks sitting in deques.
  std::size_t running_ = 0;          ///< Tasks currently executing.
  std::size_t nextWorker_ = 0;       ///< Round-robin submit target.
  bool stop_ = false;
};

}  // namespace renuca
