#include "workload/app_profile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/log.hpp"

namespace renuca::workload {

namespace {

// Latency guesses used only for knob derivation (the real run uses the
// simulated hierarchy).  Roughly: LLC miss ~ NoC + bank + DRAM; LLC hit ~
// NoC + bank.
// Effective latencies of the simulated hierarchy (Table I parameters):
// LLC hit ~ bank access + mesh round trip; LLC miss additionally pays the
// DDR3 access after the (full-array) ReRAM read determines the miss.
constexpr double kMissLat = 210.0;
constexpr double kL3HitLat = 110.0;
// Miss-bound loads are emitted in bursts of this size (see
// SyntheticGenerator::buildLoop): a 128-entry ROB window can only overlap
// misses that are close together in program order, so the burst size *is*
// the unchained memory-level parallelism.
constexpr double kMissBurstMlp = 4.0;
constexpr double kStoreBufMlp = 16.0;  // store-buffer-provided overlap
constexpr double kBaseCyclesPerKi = 250.0;  // 4-wide ideal

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

WriteIntensity AppProfile::intensity() const {
  double s = writeScore();
  if (s > 10.0) return WriteIntensity::High;
  if (s >= 1.0) return WriteIntensity::Medium;
  return WriteIntensity::Low;
}

DerivedParams deriveParams(const TableIIRef& ref) {
  DerivedParams p;
  const double M = std::max(0.0, ref.mpki);
  const double W = std::max(0.0, ref.wpki);
  const double h = std::clamp(ref.hitrate, 0.0, 0.99);

  // --- Decompose LLC traffic ---------------------------------------------
  // Demand hits per KI implied by the hit rate:  h = Hd / (Hd + M).
  double hd = (h > 0.0 && M > 0.0) ? M * h / (1.0 - h) : 0.0;
  // Hit-rate apps with negligible misses (e.g. povray) still want some L3
  // reuse; give them a floor tied to WPKI so write-backs have a home.
  if (M < 0.05 && W > 0.0) hd = std::max(hd, W);
  hd = std::min(hd, 180.0);

  // Stores to the L3-resident region produce a demand hit now and a
  // write-back later; keep ~25 % of the hits for loads when possible.
  p.storeLargePki = std::min(W, hd * 0.75);
  p.loadLargePki = std::max(0.0, hd - p.storeLargePki);

  double remainingWb = std::max(0.0, W - p.storeLargePki);
  // Streaming stores: one LLC miss and one write-back per line.
  p.storeStreamPki = std::min(0.4 * M, remainingWb);
  p.loadStreamPki = std::max(0.0, M - p.storeStreamPki);
  // Remaining write-backs come from read-modify-write of streamed lines
  // (a store into a line a streaming load just fetched).
  double rmwWb = remainingWb - p.storeStreamPki;
  p.rmwProb = p.loadStreamPki > 1e-9 ? clamp01(rmwWb / p.loadStreamPki) : 0.0;

  // --- Fill the rest of the instruction mix with L1/L2 hits --------------
  double loadsUsed = p.loadStreamPki + p.loadLargePki;
  double storesUsed = p.storeStreamPki + p.storeLargePki + p.rmwProb * p.loadStreamPki;
  double loadsLeft = std::max(0.0, kLoadsPerKi - loadsUsed);
  double storesLeft = std::max(0.0, kStoresPerKi - storesUsed);
  p.loadWarmPki = 0.15 * loadsLeft;
  p.loadHotPki = loadsLeft - p.loadWarmPki;
  p.storeWarmPki = 0.10 * storesLeft;
  p.storeHotPki = storesLeft - p.storeWarmPki;

  // --- Solve dependence knobs from the IPC target ------------------------
  const double ipc = std::max(0.02, ref.ipc);
  const double cpKiTarget = 1000.0 / ipc;
  // Store misses/hits drain through the store buffer with high overlap.
  const double storeStall =
      (p.storeStreamPki * kMissLat + p.storeLargePki * kL3HitLat) / kStoreBufMlp;
  const double loadSerialCycles =
      p.loadStreamPki * kMissLat + p.loadLargePki * kL3HitLat;

  const double aluFrac = 1.0 - (kLoadsPerKi + kStoresPerKi) / 1000.0;
  if (p.loadStreamPki > 5.0) {
    // Memory bound: dependence chains among miss-bound loads set the MLP.
    p.aluDepShallowFrac = 0.2;
    double budget = cpKiTarget - kBaseCyclesPerKi - storeStall;
    double s = loadSerialCycles > 0 ? budget / loadSerialCycles : 0.0;
    // s = chained + (1-chained)/burstMlp  ->  solve for chained.
    double chained = (s - 1.0 / kMissBurstMlp) / (1.0 - 1.0 / kMissBurstMlp);
    p.depChainFrac = std::clamp(chained, 0.0, 0.95);
  } else {
    // Compute / hit-latency bound.  First let the rolling ALU chain carry
    // as much of the CPI as it can (one cycle per member, members drawn
    // from the ALU share of the mix)...
    double memCycles = storeStall + loadSerialCycles * 0.3;
    double targetChainCpi = (cpKiTarget - memCycles) / 1000.0;
    p.aluDepShallowFrac = std::clamp(targetChainCpi / aluFrac, 0.05, 1.0);
    // ...then serialize L3-hit loads (pointer-heavy apps like omnetpp and
    // xalancbmk chase through LLC-resident structures) to cover the rest.
    // Serialized hits are also what makes NUCA distance visible in IPC.
    double chainCycles = std::min(targetChainCpi, aluFrac) * 1000.0;
    double residual = cpKiTarget - chainCycles - storeStall;
    p.depChainFrac = loadSerialCycles > 1e-9
                         ? std::clamp(residual / loadSerialCycles, 0.1, 0.95)
                         : 0.3;
  }
  return p;
}

namespace {

AppProfile makeProfile(const std::string& name, double wpki, double mpki,
                       double hitrate, double ipc,
                       compress::Compressibility cmp) {
  AppProfile prof;
  prof.name = name;
  prof.ref = TableIIRef{wpki, mpki, hitrate, ipc};
  prof.params = deriveParams(prof.ref);
  prof.compressibility = cmp;
  return prof;
}

// Compressibility archetypes (zero/rep/narrow/pattern fractions; the
// remainder is incompressible Random).  Calibrated against the per-
// benchmark compression ratios reported for BDI (Pekhimenko et al.) and
// FPC: integer/pointer codes sit near 2x, floating-point field solvers
// near 1.2x, and a few zero-heavy apps beyond 3x.
constexpr compress::Compressibility kCmpInt{0.15, 0.10, 0.35, 0.25};   // ~2.5x
constexpr compress::Compressibility kCmpZeroes{0.40, 0.15, 0.20, 0.15};// ~4x
constexpr compress::Compressibility kCmpMixed{0.10, 0.05, 0.20, 0.25}; // ~1.8x
constexpr compress::Compressibility kCmpFloat{0.05, 0.02, 0.08, 0.10}; // ~1.2x

std::vector<AppProfile> buildProfiles() {
  // Table II of the paper, transcribed verbatim: name, WPKI, MPKI, hit
  // rate, single-core IPC — plus the app's compressibility archetype.
  std::vector<AppProfile> v;
  v.push_back(makeProfile("mcf", 68.67, 55.29, 0.20, 0.07, kCmpInt));
  v.push_back(makeProfile("streamL", 36.25, 36.25, 0.00, 0.37, kCmpMixed));
  v.push_back(makeProfile("lbm", 31.66, 31.46, 0.01, 0.53, kCmpFloat));
  v.push_back(makeProfile("zeusmp", 18.57, 17.13, 0.08, 0.54, kCmpFloat));
  v.push_back(makeProfile("bwaves", 14.01, 12.91, 0.08, 0.59, kCmpFloat));
  v.push_back(makeProfile("libquantum", 11.67, 11.64, 0.00, 0.34, kCmpZeroes));
  v.push_back(makeProfile("milc", 11.31, 11.28, 0.00, 0.71, kCmpFloat));
  v.push_back(makeProfile("omnetpp", 16.22, 0.61, 0.96, 0.78, kCmpInt));
  v.push_back(makeProfile("xalancbmk", 13.17, 0.76, 0.94, 0.89, kCmpInt));
  v.push_back(makeProfile("leslie3d", 5.24, 4.86, 0.07, 1.33, kCmpFloat));
  v.push_back(makeProfile("bzip2", 2.89, 0.69, 0.76, 1.63, kCmpMixed));
  v.push_back(makeProfile("gromacs", 1.85, 0.61, 0.67, 1.61, kCmpFloat));
  v.push_back(makeProfile("hmmer", 2.20, 0.13, 0.94, 2.61, kCmpInt));
  v.push_back(makeProfile("soplex", 1.27, 0.25, 0.80, 0.94, kCmpMixed));
  v.push_back(makeProfile("h264ref", 1.09, 0.08, 0.93, 2.00, kCmpMixed));
  v.push_back(makeProfile("sjeng", 0.52, 0.32, 0.41, 1.16, kCmpInt));
  v.push_back(makeProfile("sphinx3", 0.30, 0.30, 0.06, 1.96, kCmpFloat));
  v.push_back(makeProfile("dealII", 0.33, 0.12, 0.65, 2.27, kCmpMixed));
  v.push_back(makeProfile("astar", 0.24, 0.12, 0.54, 2.08, kCmpInt));
  v.push_back(makeProfile("povray", 0.18, 0.04, 0.79, 1.57, kCmpMixed));
  v.push_back(makeProfile("namd", 0.04, 0.05, 0.21, 2.34, kCmpFloat));
  v.push_back(makeProfile("GemsFDTD", 0.00, 0.01, 0.00, 1.81, kCmpZeroes));
  return v;
}

}  // namespace

const std::vector<AppProfile>& spec2006Profiles() {
  static const std::vector<AppProfile> profiles = buildProfiles();
  return profiles;
}

const AppProfile& profileByName(const std::string& name) {
  for (const AppProfile& p : spec2006Profiles()) {
    if (p.name == name) return p;
  }
  // An unknown app name is an *input* error, not a simulator invariant:
  // it must be catchable (the sweep engine turns it into the job's
  // RunResult::error; renucad rejects it at admission), so throw rather
  // than RENUCA_ASSERT.
  throw std::runtime_error("unknown application profile: " + name);
}

}  // namespace renuca::workload
