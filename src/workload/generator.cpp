#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "common/types.hpp"
#include "serial/archive.hpp"

namespace renuca::workload {

namespace {

// Virtual address layout per application (each app runs in its own address
// space; the page table assigns disjoint physical ranges per ASID).
constexpr std::uint64_t kHotBase = 0x10000000ull;
constexpr std::uint64_t kWarmBase = 0x20000000ull;
constexpr std::uint64_t kLargeBase = 0x30000000ull;
constexpr std::uint64_t kStreamBase = 0x40000000ull;
constexpr std::uint64_t kStreamSpacing = 0x01000000ull;  // 16 MB between streams
constexpr std::uint64_t kPcBase = 0x400000ull;
constexpr std::uint32_t kNumStreams = 4;

std::uint32_t countFor(double pki, std::uint32_t loopLen) {
  return static_cast<std::uint32_t>(std::lround(pki * loopLen / 1000.0));
}

}  // namespace

SyntheticGenerator::SyntheticGenerator(const AppProfile& profile, std::uint64_t seed)
    : profile_(profile), rng_(seed, 0x6b79636e2d67656eull) {
  streamCursor_.assign(kNumStreams, 0);
  Pcg32 buildRng(seed ^ 0x5eedb00cull, 0x1badb002ull);
  buildLoop(buildRng);
  auto regionDraw = [](std::uint64_t bytes) {
    RegionDraw rd;
    rd.lines = std::max<std::uint64_t>(1, bytes / kLineBytes);
    if (rd.lines <= 0xffffffffull) {
      rd.draw = Pcg32::BoundedDraw(static_cast<std::uint32_t>(rd.lines));
    }
    return rd;
  };
  hotDraw_ = regionDraw(profile_.hotBytes);
  warmDraw_ = regionDraw(profile_.warmBytes);
  largeDraw_ = regionDraw(profile_.largeBytes);
}

void SyntheticGenerator::buildLoop(Pcg32& rng) {
  const DerivedParams& p = profile_.params;
  const std::uint32_t len = profile_.loopLen;

  std::vector<Slot> slots;
  auto push = [&](InstrKind kind, Region region, std::uint32_t count, bool rmw = false) {
    for (std::uint32_t i = 0; i < count; ++i) {
      Slot s;
      s.kind = kind;
      s.region = region;
      s.rmwCandidate = rmw;
      if (region == Region::Stream) {
        s.streamIdx = static_cast<std::uint16_t>(slots.size() % kNumStreams);
      }
      slots.push_back(s);
    }
  };

  push(InstrKind::Load, Region::Stream, countFor(p.loadStreamPki, len), /*rmw=*/true);
  push(InstrKind::Store, Region::Stream, countFor(p.storeStreamPki, len));
  push(InstrKind::Load, Region::Large, countFor(p.loadLargePki, len));
  push(InstrKind::Store, Region::Large, countFor(p.storeLargePki, len));
  push(InstrKind::Load, Region::Warm, countFor(p.loadWarmPki, len));
  push(InstrKind::Store, Region::Warm, countFor(p.storeWarmPki, len));
  push(InstrKind::Load, Region::Hot, countFor(p.loadHotPki, len));
  push(InstrKind::Store, Region::Hot, countFor(p.storeHotPki, len));

  // Expected paired RMW stores inflate the dynamic instruction count; trim
  // the ALU filler so the loop still averages ~len instructions and the
  // per-kilo-instruction rates stay calibrated.
  std::uint32_t nStreamLoads = countFor(p.loadStreamPki, len);
  std::uint32_t expectedRmw =
      static_cast<std::uint32_t>(std::lround(p.rmwProb * nStreamLoads));
  std::uint32_t memCount = static_cast<std::uint32_t>(slots.size());
  RENUCA_ASSERT(memCount + expectedRmw < len,
                "profile " + profile_.name + " memory slots exceed loop length");
  std::uint32_t nAlu = len - memCount - expectedRmw;
  push(InstrKind::Alu, Region::Hot, nAlu);

  // Partition: miss-bound loads are kept aside and re-inserted in bursts
  // of kMissBurst consecutive slots.  Bursts matter: a 128-entry ROB can
  // only overlap misses that sit close together in program order, and
  // real applications' misses cluster spatially (unrolled loops, array
  // sweeps).  Everything else is spread by a deterministic shuffle.
  std::vector<Slot> missLoads, rest;
  for (const Slot& s : slots) {
    if (s.kind == InstrKind::Load &&
        (s.region == Region::Stream || s.region == Region::Large)) {
      missLoads.push_back(s);
    } else {
      rest.push_back(s);
    }
  }
  for (std::size_t i = rest.size(); i > 1; --i) {
    std::size_t j = rng.nextBelow(static_cast<std::uint32_t>(i));
    std::swap(rest[i - 1], rest[j]);
  }

  constexpr std::size_t kMissBurst = 4;
  std::vector<Slot> body;
  body.reserve(slots.size());
  std::size_t numBursts = (missLoads.size() + kMissBurst - 1) / kMissBurst;
  std::size_t restPerGap = numBursts ? rest.size() / numBursts : rest.size();
  std::size_t mi = 0, ri = 0;
  for (std::size_t burst = 0; burst < numBursts; ++burst) {
    for (std::size_t k = 0; k < kMissBurst && mi < missLoads.size(); ++k) {
      body.push_back(missLoads[mi++]);
    }
    std::size_t take = (burst + 1 == numBursts) ? rest.size() - ri : restPerGap;
    for (std::size_t k = 0; k < take && ri < rest.size(); ++k) {
      body.push_back(rest[ri++]);
    }
  }
  while (ri < rest.size()) body.push_back(rest[ri++]);
  loop_ = std::move(body);
}

std::uint64_t SyntheticGenerator::slotAddress(const Slot& slot, std::size_t slotIdx) {
  // Random-addressed regions draw through the precomputed RegionDraws:
  // the stream of RNG values (and therefore every address) is identical to
  // rng_.range(0, lines - 1), without recomputing the rejection threshold.
  switch (slot.region) {
    case Region::Hot:
      return kHotBase + (drawLine(hotDraw_) << kLineShift);
    case Region::Warm:
      return kWarmBase + (drawLine(warmDraw_) << kLineShift);
    case Region::Large:
      return kLargeBase + (drawLine(largeDraw_) << kLineShift);
    case Region::Stream: {
      std::uint64_t& cursor = streamCursor_[slot.streamIdx];
      // The per-stream skew of 13 lines keeps concurrent streams off the
      // same DRAM channel/bank (16 MB spacing alone is a multiple of the
      // channel-interleave stride, which would serialize every miss burst
      // on one bank).
      std::uint64_t addr = kStreamBase +
                           slot.streamIdx * (kStreamSpacing + 13 * kLineBytes) + cursor;
      cursor += kLineBytes;
      // Wrap well before colliding with the next stream's window; by then
      // the old lines are long gone from every cache level, so wrapped
      // accesses are still compulsory-miss-like.
      if (cursor >= kStreamSpacing) cursor = 0;
      return addr;
    }
  }
  RENUCA_ASSERT(false, "unreachable region in slotAddress");
  return 0;
  (void)slotIdx;
}

TraceRecord SyntheticGenerator::next() {
  TraceRecord rec;

  // Gap counters: instructions emitted since the last chain member /
  // miss-bound load (excluding the current one); depDist = gap + 1.
  if (pendingRmwStore_) {
    // Paired read-modify-write store to the line the previous streaming
    // load fetched.  Depends on that load (depDist = 1).
    pendingRmwStore_ = false;
    rec.kind = InstrKind::Store;
    rec.vaddr = pendingRmwAddr_;
    rec.pc = pendingRmwPc_;
    rec.depDist = 1;
    lastMissLoadGap_ += 1;
    lastChainGap_ += 1;
    ++emitted_;
    return rec;
  }

  const Slot& slot = loop_[slotIdx_];
  const DerivedParams& p = profile_.params;

  rec.kind = slot.kind;
  rec.pc = kPcBase + static_cast<std::uint64_t>(slotIdx_) * 4;

  bool chainMember = false;
  bool missBoundLoad = false;

  if (slot.kind == InstrKind::Alu) {
    // Rolling chain: aluDepShallowFrac of all ALU ops depend on the
    // previous chain member, giving a CPI floor equal to that fraction
    // (each member completes one cycle after its predecessor).
    chainAcc_ += p.aluDepShallowFrac;
    if (chainAcc_ >= 1.0) {
      chainAcc_ -= 1.0;
      chainMember = true;
      rec.depDist = static_cast<std::uint8_t>(std::min<std::uint64_t>(lastChainGap_ + 1, 255));
      lastChainGap_ = 0;
    }
  } else {
    rec.vaddr = slotAddress(slot, slotIdx_);
    bool missBound = slot.region == Region::Stream || slot.region == Region::Large;
    if (slot.kind == InstrKind::Load && missBound) {
      missBoundLoad = true;
      if (lastMissLoadGap_ + 1 <= 255 && rng_.chance(p.depChainFrac)) {
        // Pointer chase: the address register is produced by the previous
        // miss-bound load, serializing the two LLC misses.
        rec.depDist = static_cast<std::uint8_t>(lastMissLoadGap_ + 1);
      }
      lastMissLoadGap_ = 0;
    }
    if (slot.kind == InstrKind::Load && slot.rmwCandidate && rng_.chance(p.rmwProb)) {
      pendingRmwStore_ = true;
      pendingRmwAddr_ = rec.vaddr;
      // RMW store PCs live above the loop body's PC range.
      pendingRmwPc_ = kPcBase + (static_cast<std::uint64_t>(profile_.loopLen) +
                                 static_cast<std::uint64_t>(slotIdx_)) * 4;
    }
  }

  if (!missBoundLoad) lastMissLoadGap_ += 1;
  if (!chainMember) lastChainGap_ += 1;
  if (++slotIdx_ == loop_.size()) slotIdx_ = 0;
  ++emitted_;
  return rec;
}

void SyntheticGenerator::nextBatch(TraceRecord* out, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) out[i] = next();
}

void SyntheticGenerator::saveState(serial::ArchiveWriter& ar) const {
  auto rng = rng_.saveState();
  ar.putU64(rng.state);
  ar.putU64(rng.inc);
  ar.putU32(static_cast<std::uint32_t>(loop_.size()));
  ar.putU32(static_cast<std::uint32_t>(streamCursor_.size()));
  for (std::uint64_t cursor : streamCursor_) ar.putU64(cursor);
  ar.putU64(slotIdx_);
  ar.putU64(emitted_);
  ar.putU64(lastMissLoadGap_);
  ar.putDouble(chainAcc_);
  ar.putU64(lastChainGap_);
  ar.putBool(pendingRmwStore_);
  ar.putU64(pendingRmwAddr_);
  ar.putU64(pendingRmwPc_);
}

bool SyntheticGenerator::loadState(serial::ArchiveReader& ar) {
  Pcg32::State rng;
  rng.state = ar.getU64();
  rng.inc = ar.getU64();
  std::uint32_t loopLen = ar.getU32();
  std::uint32_t numStreams = ar.getU32();
  if (!ar.ok() || loopLen != loop_.size() || numStreams != streamCursor_.size()) {
    logMessage(LogLevel::Warn, "serial",
               "generator: snapshot loop shape mismatch");
    return false;
  }
  rng_.restoreState(rng);
  for (std::uint64_t& cursor : streamCursor_) cursor = ar.getU64();
  slotIdx_ = ar.getU64();
  emitted_ = ar.getU64();
  lastMissLoadGap_ = ar.getU64();
  chainAcc_ = ar.getDouble();
  lastChainGap_ = ar.getU64();
  pendingRmwStore_ = ar.getBool();
  pendingRmwAddr_ = ar.getU64();
  pendingRmwPc_ = ar.getU64();
  if (slotIdx_ >= loop_.size()) {
    logMessage(LogLevel::Warn, "serial", "generator: snapshot slot index out of range");
    return false;
  }
  return ar.ok() && ar.remaining() == 0;
}

SyntheticGenerator::LoopSummary SyntheticGenerator::loopSummary() const {
  LoopSummary s;
  for (const Slot& slot : loop_) {
    switch (slot.kind) {
      case InstrKind::Load:
        ++s.loads;
        if (slot.region == Region::Stream) ++s.streamLoads;
        if (slot.region == Region::Large) ++s.largeLoads;
        break;
      case InstrKind::Store:
        ++s.stores;
        if (slot.region == Region::Stream) ++s.streamStores;
        if (slot.region == Region::Large) ++s.largeStores;
        break;
      case InstrKind::Alu:
        ++s.alus;
        break;
    }
  }
  return s;
}

}  // namespace renuca::workload
