#include "workload/trace.hpp"

#include <cstdio>
#include <cstring>

#include "common/log.hpp"

namespace renuca::workload {

namespace {

constexpr std::size_t kRecordBytes = 18;  // 8 pc + 8 vaddr + 1 kind + 1 depDist
constexpr std::size_t kHeaderBytes = 24;  // magic + version + record size + count
constexpr char kMagic[8] = {'R', 'E', 'N', 'U', 'C', 'A', 'T', 'R'};
constexpr std::uint32_t kTraceVersion = 2;
constexpr unsigned char kMaxKind = static_cast<unsigned char>(InstrKind::Store);
constexpr long kCountOffset = 16;  // header offset of the record count

void encode(const TraceRecord& rec, unsigned char* buf) {
  std::memcpy(buf, &rec.pc, 8);
  std::memcpy(buf + 8, &rec.vaddr, 8);
  buf[16] = static_cast<unsigned char>(rec.kind);
  buf[17] = rec.depDist;
}

TraceRecord decode(const unsigned char* buf) {
  TraceRecord rec;
  std::memcpy(&rec.pc, buf, 8);
  std::memcpy(&rec.vaddr, buf + 8, 8);
  rec.kind = static_cast<InstrKind>(buf[16]);
  rec.depDist = buf[17];
  return rec;
}

void encodeHeader(std::uint64_t count, unsigned char* buf) {
  std::memcpy(buf, kMagic, 8);
  std::uint32_t version = kTraceVersion;
  std::uint32_t recordBytes = kRecordBytes;
  std::memcpy(buf + 8, &version, 4);
  std::memcpy(buf + 12, &recordBytes, 4);
  std::memcpy(buf + kCountOffset, &count, 8);
}

}  // namespace

std::string toString(TraceError err) {
  switch (err) {
    case TraceError::None: return "none";
    case TraceError::OpenFailed: return "open failed";
    case TraceError::BadHeader: return "unsupported header";
    case TraceError::TruncatedTail: return "truncated tail";
    case TraceError::CountMismatch: return "record count mismatch";
    case TraceError::BadKind: return "corrupt record (bad kind byte)";
    case TraceError::IoFailed: return "I/O failure";
  }
  return "unknown";
}

TraceWriter::TraceWriter(const std::string& path) : path_(path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    error_ = TraceError::OpenFailed;
    logMessage(LogLevel::Warn, "trace", "cannot open trace for writing: " + path);
    return;
  }
  unsigned char hdr[kHeaderBytes];
  encodeHeader(0, hdr);  // count patched on close
  if (std::fwrite(hdr, 1, kHeaderBytes, f) != kHeaderBytes) {
    error_ = TraceError::IoFailed;
    logMessage(LogLevel::Warn, "trace", "cannot write trace header: " + path);
    std::fclose(f);
    return;
  }
  file_ = f;
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::append(const TraceRecord& rec) {
  if (file_ == nullptr || error_ != TraceError::None) return;
  unsigned char buf[kRecordBytes];
  encode(rec, buf);
  if (std::fwrite(buf, 1, kRecordBytes, static_cast<std::FILE*>(file_)) !=
      kRecordBytes) {
    error_ = TraceError::IoFailed;
    logMessage(LogLevel::Warn, "trace",
               "short write to trace file (disk full?): " + path_);
    return;
  }
  ++count_;
}

void TraceWriter::flush() {
  if (file_ == nullptr) return;
  if (std::fflush(static_cast<std::FILE*>(file_)) != 0 &&
      error_ == TraceError::None) {
    error_ = TraceError::IoFailed;
    logMessage(LogLevel::Warn, "trace", "flush of trace file failed: " + path_);
  }
}

bool TraceWriter::close() {
  if (file_ == nullptr) return error_ == TraceError::None;
  std::FILE* f = static_cast<std::FILE*>(file_);
  file_ = nullptr;
  bool good = error_ == TraceError::None;

  // Patch the real record count into the header.
  if (good) {
    if (std::fseek(f, kCountOffset, SEEK_SET) == 0) {
      good = std::fwrite(&count_, 1, 8, f) == 8;
    } else {
      good = false;
    }
  }
  if (std::fflush(f) != 0) good = false;
  if (std::fclose(f) != 0) good = false;

  if (!good) {
    if (error_ == TraceError::None) error_ = TraceError::IoFailed;
    logMessage(LogLevel::Warn, "trace",
               "closing trace file failed (" + toString(error_) + "): " + path_);
  }
  return good;
}

void TraceReader::fail(TraceError err, const std::string& detail) {
  if (error_ == TraceError::None) error_ = err;
  logMessage(LogLevel::Warn, "trace", detail);
}

TraceReader::TraceReader(const std::string& path, bool wrapAround) : wrap_(wrapAround) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    exhausted_ = true;
    fail(TraceError::OpenFailed, "cannot open trace for reading: " + path);
    return;
  }
  file_ = f;

  std::uint64_t fileSize = 0;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    long size = std::ftell(f);
    if (size > 0) fileSize = static_cast<std::uint64_t>(size);
  }
  std::fseek(f, 0, SEEK_SET);

  // Header probe; headerless legacy files (raw records) are still accepted.
  std::uint64_t headerCount = 0;
  bool haveHeader = false;
  if (fileSize >= kHeaderBytes) {
    unsigned char hdr[kHeaderBytes];
    if (std::fread(hdr, 1, kHeaderBytes, f) == kHeaderBytes &&
        std::memcmp(hdr, kMagic, 8) == 0) {
      haveHeader = true;
      std::uint32_t version = 0;
      std::uint32_t recordBytes = 0;
      std::memcpy(&version, hdr + 8, 4);
      std::memcpy(&recordBytes, hdr + 12, 4);
      std::memcpy(&headerCount, hdr + kCountOffset, 8);
      if (version != kTraceVersion || recordBytes != kRecordBytes) {
        exhausted_ = true;
        fail(TraceError::BadHeader,
             "unsupported trace format in " + path + " (version " +
                 std::to_string(version) + ", record size " +
                 std::to_string(recordBytes) + ")");
        return;
      }
    }
    if (!haveHeader) std::fseek(f, 0, SEEK_SET);
  }
  headerBytes_ = haveHeader ? kHeaderBytes : 0;
  if (!haveHeader) {
    logMessage(LogLevel::Warn, "trace",
               "headerless legacy trace accepted: " + path);
  }

  const std::uint64_t payload = fileSize - headerBytes_;
  records_ = payload / kRecordBytes;
  strayTailBytes_ = payload % kRecordBytes;
  if (strayTailBytes_ != 0) {
    fail(TraceError::TruncatedTail,
         "trace " + path + " has " + std::to_string(strayTailBytes_) +
             " stray byte(s) past the last complete record (truncated write?); "
             "ignoring them");
  }
  if (haveHeader && headerCount != records_) {
    fail(TraceError::CountMismatch,
         "trace " + path + " header promises " + std::to_string(headerCount) +
             " record(s) but the file holds " + std::to_string(records_));
  }
  if (records_ == 0) exhausted_ = true;
}

TraceReader::~TraceReader() {
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
}

TraceRecord TraceReader::next() {
  if (exhausted_ || file_ == nullptr) {
    exhausted_ = true;
    return TraceRecord{};  // NOP filler after exhaustion
  }
  std::FILE* f = static_cast<std::FILE*>(file_);
  if (posInFile_ == records_) {
    // All complete records consumed (never reads into a stray tail).
    if (!wrap_) {
      exhausted_ = true;
      return TraceRecord{};
    }
    if (std::fseek(f, static_cast<long>(headerBytes_), SEEK_SET) != 0) {
      exhausted_ = true;
      fail(TraceError::IoFailed, "trace rewind failed");
      return TraceRecord{};
    }
    posInFile_ = 0;
  }
  unsigned char buf[kRecordBytes];
  if (std::fread(buf, 1, kRecordBytes, f) != kRecordBytes) {
    exhausted_ = true;
    fail(TraceError::IoFailed, "trace read failed mid-file");
    return TraceRecord{};
  }
  ++posInFile_;
  if (buf[16] > kMaxKind) {
    exhausted_ = true;
    fail(TraceError::BadKind,
         "corrupt trace record (kind byte " + std::to_string(buf[16]) +
             " out of range) at record " + std::to_string(posInFile_ - 1));
    return TraceRecord{};
  }
  ++count_;
  return decode(buf);
}

}  // namespace renuca::workload
