#include "workload/trace.hpp"

#include <cstdio>
#include <cstring>

#include "common/log.hpp"

namespace renuca::workload {

namespace {

constexpr std::size_t kRecordBytes = 18;  // 8 pc + 8 vaddr + 1 kind + 1 depDist

void encode(const TraceRecord& rec, unsigned char* buf) {
  std::memcpy(buf, &rec.pc, 8);
  std::memcpy(buf + 8, &rec.vaddr, 8);
  buf[16] = static_cast<unsigned char>(rec.kind);
  buf[17] = rec.depDist;
}

TraceRecord decode(const unsigned char* buf) {
  TraceRecord rec;
  std::memcpy(&rec.pc, buf, 8);
  std::memcpy(&rec.vaddr, buf + 8, 8);
  rec.kind = static_cast<InstrKind>(buf[16]);
  rec.depDist = buf[17];
  return rec;
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  RENUCA_ASSERT(f != nullptr, "cannot open trace for writing: " + path);
  file_ = f;
}

TraceWriter::~TraceWriter() {
  if (file_) std::fclose(static_cast<std::FILE*>(file_));
}

void TraceWriter::append(const TraceRecord& rec) {
  unsigned char buf[kRecordBytes];
  encode(rec, buf);
  std::size_t n = std::fwrite(buf, 1, kRecordBytes, static_cast<std::FILE*>(file_));
  RENUCA_ASSERT(n == kRecordBytes, "short write to trace file");
  ++count_;
}

void TraceWriter::flush() { std::fflush(static_cast<std::FILE*>(file_)); }

TraceReader::TraceReader(const std::string& path, bool wrapAround) : wrap_(wrapAround) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  RENUCA_ASSERT(f != nullptr, "cannot open trace for reading: " + path);
  file_ = f;
}

TraceReader::~TraceReader() {
  if (file_) std::fclose(static_cast<std::FILE*>(file_));
}

TraceRecord TraceReader::next() {
  unsigned char buf[kRecordBytes];
  std::FILE* f = static_cast<std::FILE*>(file_);
  std::size_t n = std::fread(buf, 1, kRecordBytes, f);
  if (n != kRecordBytes) {
    if (!wrap_) {
      exhausted_ = true;
      return TraceRecord{};  // NOP filler after exhaustion
    }
    std::rewind(f);
    n = std::fread(buf, 1, kRecordBytes, f);
    RENUCA_ASSERT(n == kRecordBytes, "trace file empty or truncated");
  }
  ++count_;
  return decode(buf);
}

}  // namespace renuca::workload
