// Synthetic SPEC-like instruction stream generator.
//
// Produces an infinite, deterministic (seeded) dynamic instruction stream
// whose LLC behaviour matches an AppProfile's Table II targets when run
// through the simulated hierarchy:
//
//  * The stream is loop-structured: a fixed "loop body" of `loopLen` slots
//    is replayed forever, so every static instruction (PC) has stable
//    behaviour across iterations.  PC-stability is essential — the paper's
//    criticality predictor is PC-indexed and only works because loads
//    behave consistently per PC.
//  * Each memory slot targets one region: Hot (L1-resident), Warm
//    (L2-resident), Large (L3-resident, evicts from L2), or Stream
//    (sequential, compulsory LLC misses).
//  * Stream-load slots are optionally followed by a read-modify-write
//    store to the same line (rmwProb), the main source of write-backs in
//    apps whose WPKI exceeds their store-miss rate (e.g. mcf).
//  * Dependence distances model MLP: chained miss-bound loads serialize
//    LLC misses (pointer chasing, mcf-style); shallow ALU chains set the
//    compute-bound CPI.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "serial/checkpointable.hpp"
#include "workload/app_profile.hpp"
#include "workload/trace.hpp"

namespace renuca::workload {

/// Region a memory slot accesses; layout documented in generator.cpp.
enum class Region : std::uint8_t { Hot, Warm, Large, Stream };

class SyntheticGenerator final : public InstructionSource,
                                 public serial::Checkpointable {
 public:
  SyntheticGenerator(const AppProfile& profile, std::uint64_t seed);

  TraceRecord next() override;

  /// Fills `out[0..n)` with the next `n` records — identical stream to n
  /// successive next() calls, but non-virtual and batch-inlined so the
  /// fast-forward's bulk generation skips the per-instruction call.
  void nextBatch(TraceRecord* out, std::uint64_t n);

  const AppProfile& profile() const { return profile_; }
  /// Number of instructions emitted so far.
  std::uint64_t emitted() const { return emitted_; }

  // Serializes the stream position (RNG state, cursors, emit counters).
  // The loop body itself is rebuilt deterministically at construction from
  // (profile, seed) and is not serialized; loadState validates that the
  // archive was produced by an identically shaped loop.
  void saveState(serial::ArchiveWriter& ar) const override;
  bool loadState(serial::ArchiveReader& ar) override;

  /// Static slot summary, exposed for tests (counts per loop iteration).
  struct LoopSummary {
    std::uint32_t loads = 0, stores = 0, alus = 0;
    std::uint32_t streamLoads = 0, streamStores = 0;
    std::uint32_t largeLoads = 0, largeStores = 0;
  };
  LoopSummary loopSummary() const;

 private:
  struct Slot {
    InstrKind kind = InstrKind::Alu;
    Region region = Region::Hot;
    std::uint16_t streamIdx = 0;  ///< Which stream cursor (Stream region only).
    bool rmwCandidate = false;    ///< Stream load that may trigger a paired store.
  };

  std::uint64_t slotAddress(const Slot& slot, std::size_t slotIdx);
  void buildLoop(Pcg32& rng);

  /// A random-addressed region's line count with the RNG draw divisors
  /// precomputed (same draw stream as rng_.range(0, lines-1)).
  struct RegionDraw {
    std::uint64_t lines = 1;
    Pcg32::BoundedDraw draw;
  };
  std::uint64_t drawLine(const RegionDraw& rd) {
    return rd.lines <= 0xffffffffull ? rng_.nextBelow(rd.draw)
                                     : rng_.range(0, rd.lines - 1);
  }

  AppProfile profile_;
  Pcg32 rng_;
  std::vector<Slot> loop_;
  RegionDraw hotDraw_, warmDraw_, largeDraw_;
  std::vector<std::uint64_t> streamCursor_;  ///< Per-stream byte offsets.
  std::size_t slotIdx_ = 0;
  std::uint64_t emitted_ = 0;
  /// Instructions since the last *miss-bound* (Stream/Large) load; pointer
  /// chains must link consecutive misses, not intervening L1 hits.
  std::uint64_t lastMissLoadGap_ = 0;
  /// Rolling ALU dependence chain: CPI floor equals the fraction of
  /// instructions that join the chain (each member completes one cycle
  /// after its predecessor).  chainAcc_ accumulates the join rate;
  /// lastChainGap_ is the distance to the previous member.
  double chainAcc_ = 0.0;
  std::uint64_t lastChainGap_ = 0;
  bool pendingRmwStore_ = false;
  std::uint64_t pendingRmwAddr_ = 0;
  std::uint64_t pendingRmwPc_ = 0;
};

}  // namespace renuca::workload
