// Dynamic-instruction trace records and a compact binary trace format.
//
// The simulator normally pulls instructions straight from the synthetic
// generator (no file involved), but traces can also be captured to disk and
// replayed, which is how one would plug in real program traces (e.g. from a
// PIN tool) instead of the synthetic SPEC models.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace renuca::workload {

/// One dynamic instruction as consumed by the OoO core model.
struct TraceRecord {
  std::uint64_t pc = 0;     ///< Program counter (stable per static instruction).
  std::uint64_t vaddr = 0;  ///< Virtual byte address; 0 and unused for Alu.
  InstrKind kind = InstrKind::Alu;
  /// Register dependence: this instruction's operand is produced by the
  /// instruction `depDist` positions earlier in program order (0 = none).
  std::uint8_t depDist = 0;

  bool operator==(const TraceRecord&) const = default;
};

/// Abstract instruction source consumed by cpu::OooCore.  Implemented by
/// the synthetic generator and by TraceReader.
class InstructionSource {
 public:
  virtual ~InstructionSource() = default;
  /// Produces the next dynamic instruction.  Sources are infinite unless
  /// exhausted() says otherwise (file replay wraps or ends).
  virtual TraceRecord next() = 0;
  virtual bool exhausted() const { return false; }
};

/// Streaming binary trace writer (fixed 18-byte little-endian records).
class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const TraceRecord& rec);
  void flush();
  std::uint64_t written() const { return count_; }

 private:
  void* file_;  // std::FILE*
  std::uint64_t count_ = 0;
};

/// Streaming binary trace reader; optionally wraps around at EOF so short
/// traces can drive long simulations.
class TraceReader : public InstructionSource {
 public:
  explicit TraceReader(const std::string& path, bool wrapAround = true);
  ~TraceReader() override;
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  TraceRecord next() override;
  bool exhausted() const override { return exhausted_; }
  std::uint64_t readCount() const { return count_; }

 private:
  void* file_;  // std::FILE*
  bool wrap_;
  bool exhausted_ = false;
  std::uint64_t count_ = 0;
};

}  // namespace renuca::workload
