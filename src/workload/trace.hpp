// Dynamic-instruction trace records and a compact binary trace format.
//
// The simulator normally pulls instructions straight from the synthetic
// generator (no file involved), but traces can also be captured to disk and
// replayed, which is how one would plug in real program traces (e.g. from a
// PIN tool) instead of the synthetic SPEC models.
//
// File format (v2): a 24-byte header — 8-byte magic "RENUCATR", uint32
// format version, uint32 record size, uint64 record count (patched on
// close) — followed by fixed 18-byte little-endian records.  Headerless v1
// files (raw records from older captures) are still accepted with a
// warning.  Corruption is recoverable: the reader never aborts — open
// failures, truncated tails, bad headers and out-of-range kind bytes all
// surface through ok()/error() and leave the reader exhausted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace renuca::workload {

/// One dynamic instruction as consumed by the OoO core model.
struct TraceRecord {
  std::uint64_t pc = 0;     ///< Program counter (stable per static instruction).
  std::uint64_t vaddr = 0;  ///< Virtual byte address; 0 and unused for Alu.
  InstrKind kind = InstrKind::Alu;
  /// Register dependence: this instruction's operand is produced by the
  /// instruction `depDist` positions earlier in program order (0 = none).
  std::uint8_t depDist = 0;

  bool operator==(const TraceRecord&) const = default;
};

/// Abstract instruction source consumed by cpu::OooCore.  Implemented by
/// the synthetic generator and by TraceReader.
class InstructionSource {
 public:
  virtual ~InstructionSource() = default;
  /// Produces the next dynamic instruction.  Sources are infinite unless
  /// exhausted() says otherwise (file replay wraps or ends).
  virtual TraceRecord next() = 0;
  virtual bool exhausted() const { return false; }
};

/// What went wrong with a trace file.  All conditions are recoverable —
/// the reader serves the records it can and then reports exhaustion.
enum class TraceError : std::uint8_t {
  None,
  OpenFailed,     ///< File could not be opened.
  BadHeader,      ///< Magic matched but version/record size is unsupported.
  TruncatedTail,  ///< Payload size not a multiple of the record size.
  CountMismatch,  ///< Header record count disagrees with the file contents.
  BadKind,        ///< Record with an out-of-range kind byte (corruption).
  IoFailed,       ///< Read/write/flush/close failure (e.g. disk full).
};
std::string toString(TraceError err);

/// Streaming binary trace writer.  Never aborts: a failed open or short
/// write (disk full) flips the error state; close() reports whether
/// everything — including the header patch, flush and fclose — succeeded.
class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const TraceRecord& rec);
  void flush();
  /// Patches the header's record count, flushes and closes the file.
  /// Returns false (and logs) if any write since open failed.  Idempotent;
  /// the destructor calls it.
  bool close();

  bool ok() const { return error_ == TraceError::None; }
  TraceError error() const { return error_; }
  std::uint64_t written() const { return count_; }

 private:
  void* file_ = nullptr;  // std::FILE*
  std::string path_;
  TraceError error_ = TraceError::None;
  std::uint64_t count_ = 0;
};

/// Streaming binary trace reader; optionally wraps around at EOF so short
/// traces can drive long simulations.  Corrupt or missing files leave the
/// reader exhausted with error() set instead of aborting.
class TraceReader : public InstructionSource {
 public:
  explicit TraceReader(const std::string& path, bool wrapAround = true);
  ~TraceReader() override;
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  TraceRecord next() override;
  bool exhausted() const override { return exhausted_; }

  bool ok() const { return error_ == TraceError::None; }
  TraceError error() const { return error_; }
  /// Complete records in the file (0 for unreadable files).
  std::uint64_t fileRecords() const { return records_; }
  /// Stray bytes past the last complete record (TruncatedTail).
  std::uint64_t strayTailBytes() const { return strayTailBytes_; }
  std::uint64_t readCount() const { return count_; }

 private:
  void fail(TraceError err, const std::string& detail);

  void* file_ = nullptr;  // std::FILE*
  bool wrap_;
  bool exhausted_ = false;
  TraceError error_ = TraceError::None;
  std::uint64_t headerBytes_ = 0;  ///< 0 for legacy headerless files.
  std::uint64_t records_ = 0;      ///< Complete records in the file.
  std::uint64_t posInFile_ = 0;    ///< Records consumed since last rewind.
  std::uint64_t strayTailBytes_ = 0;
  std::uint64_t count_ = 0;
};

}  // namespace renuca::workload
