#include "workload/mixes.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace renuca::workload {

namespace {

std::vector<std::string> namesByIntensity(WriteIntensity intensity) {
  std::vector<std::string> out;
  for (const AppProfile& p : spec2006Profiles()) {
    if (p.intensity() == intensity) out.push_back(p.name);
  }
  return out;
}

}  // namespace

WorkloadMix makeMix(const std::string& name, std::uint32_t cores,
                    std::uint32_t numHigh, std::uint32_t numMedium,
                    std::uint32_t numLow, std::uint64_t seed) {
  RENUCA_ASSERT(numHigh + numMedium + numLow == cores,
                "mix intensity counts must sum to the core count");
  static const std::vector<std::string> high = namesByIntensity(WriteIntensity::High);
  static const std::vector<std::string> medium = namesByIntensity(WriteIntensity::Medium);
  static const std::vector<std::string> low = namesByIntensity(WriteIntensity::Low);
  RENUCA_ASSERT(!high.empty() && !medium.empty() && !low.empty(),
                "intensity classes must be non-empty");

  Pcg32 rng(seed, 0x6d69786573ull);
  WorkloadMix mix;
  mix.name = name;
  auto sample = [&](const std::vector<std::string>& pool, std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      mix.appNames.push_back(pool[rng.nextBelow(static_cast<std::uint32_t>(pool.size()))]);
    }
  };
  sample(high, numHigh);
  sample(medium, numMedium);
  sample(low, numLow);

  // Shuffle core assignment so high-intensity apps land on varied mesh
  // positions across mixes (the wear imbalance moves around the chip).
  for (std::size_t i = mix.appNames.size(); i > 1; --i) {
    std::size_t j = rng.nextBelow(static_cast<std::uint32_t>(i));
    std::swap(mix.appNames[i - 1], mix.appNames[j]);
  }
  return mix;
}

WorkloadMix mixForCores(const std::string& name, std::uint32_t cores) {
  RENUCA_ASSERT(cores >= 1, "a mix needs at least one core");
  int index = -1;
  for (int i = 1; i <= 10; ++i) {
    if (name == "WL" + std::to_string(i)) index = i;
  }
  RENUCA_ASSERT(index > 0, "mixForCores wants a standard mix name (WL1..WL10)");
  if (cores == 16) return standardMixes()[static_cast<std::size_t>(index - 1)];

  // The paper's 5/5/6-of-16 ratio, scaled; low intensity absorbs rounding
  // so high apps never dominate small machines.
  std::uint32_t numHigh = cores * 5 / 16;
  std::uint32_t numMedium = cores * 5 / 16;
  std::uint32_t numLow = cores - numHigh - numMedium;
  return makeMix(name + "@" + std::to_string(cores), cores, numHigh, numMedium,
                 numLow,
                 /*seed=*/0x57000000ull + static_cast<std::uint64_t>(index) +
                     (static_cast<std::uint64_t>(cores) << 16));
}

const std::vector<WorkloadMix>& standardMixes() {
  static const std::vector<WorkloadMix> mixes = [] {
    std::vector<WorkloadMix> v;
    for (int i = 1; i <= 10; ++i) {
      v.push_back(makeMix("WL" + std::to_string(i), 16,
                          /*numHigh=*/5, /*numMedium=*/5, /*numLow=*/6,
                          /*seed=*/0x57000000ull + static_cast<std::uint64_t>(i)));
    }
    return v;
  }();
  return mixes;
}

}  // namespace renuca::workload
