// Multi-programmed 16-core workload mixes WL1..WL10.
//
// The paper (§V.A) forms 16-app workloads by randomly mixing high-,
// medium-, and low-write-intensity applications, always pairing high-
// intensity apps with low/medium ones (that imbalance is what wears out
// R-NUCA clusters unevenly).  The exact mixes are not published, so we
// generate them deterministically with the same recipe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/app_profile.hpp"

namespace renuca::workload {

struct WorkloadMix {
  std::string name;                    ///< "WL1".."WL10"
  std::vector<std::string> appNames;   ///< Exactly 16 entries, one per core.
};

/// The ten standard mixes used by all multi-core experiments.  Each mix has
/// ~5 high-, ~5 medium-, ~6 low-intensity apps, deterministically sampled.
const std::vector<WorkloadMix>& standardMixes();

/// Builds a custom mix with the given intensity counts (must sum to
/// `cores`).  Used by tests and the ablation benches.
WorkloadMix makeMix(const std::string& name, std::uint32_t cores,
                    std::uint32_t numHigh, std::uint32_t numMedium,
                    std::uint32_t numLow, std::uint64_t seed);

/// A standard mix scaled to `cores` apps: at 16 cores this IS the standard
/// mix (same object, byte-identical runs); at other core counts the same
/// recipe re-samples with the standard 5/5/6 intensity ratio and a seed
/// derived from the mix, named e.g. "WL1@64".  `name` must be "WL1".."WL10".
/// This is how parameterized-CMP runs (mesh=8x8 cores=64) get workloads.
WorkloadMix mixForCores(const std::string& name, std::uint32_t cores);

}  // namespace renuca::workload
