// SPEC CPU2006-like application profiles.
//
// The paper drives its evaluation with SPEC CPU2006 reference runs under
// gem5.  We do not have SPEC binaries or traces, so each application is
// modelled statistically: its Table II characteristics (last-level cache
// WPKI, MPKI, hit rate, and single-core IPC) are treated as *calibration
// targets*, and deriveParams() solves for generator knobs (per-kilo-
// instruction rates of streaming/large-region loads and stores, dependence
// chaining, read-modify-write rate) that reproduce those targets through
// the real simulated cache hierarchy.
//
// What matters for reproducing the paper is each app's LLC *write
// intensity* and *locality structure*, which these profiles carry
// app-by-app; see DESIGN.md §2 for the substitution argument.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compress/compress.hpp"

namespace renuca::workload {

/// Write-intensity class used to compose multi-programmed mixes
/// (paper §V.A: sum of WPKI+MPKI > 10 -> High, 1..10 -> Medium, < 1 -> Low).
enum class WriteIntensity : std::uint8_t { Low, Medium, High };

/// Reference characteristics from the paper's Table II.
struct TableIIRef {
  double wpki = 0.0;     ///< LLC write-backs per kilo-instruction.
  double mpki = 0.0;     ///< LLC misses per kilo-instruction.
  double hitrate = 0.0;  ///< LLC demand hit rate.
  double ipc = 0.0;      ///< Single-core IPC.
};

/// Generator knobs derived from the Table II reference values.
/// All *Pki values are events per 1000 committed instructions.
struct DerivedParams {
  double loadStreamPki = 0.0;  ///< Streaming loads (compulsory LLC misses).
  double storeStreamPki = 0.0; ///< Streaming stores (LLC miss + write-back).
  double loadLargePki = 0.0;   ///< Loads to the L3-resident (L2-evicting) region.
  double storeLargePki = 0.0;  ///< Stores to the L3-resident region (hit + write-back).
  double loadWarmPki = 0.0;    ///< Loads that hit in L2.
  double storeWarmPki = 0.0;   ///< Stores that hit in L2.
  double loadHotPki = 0.0;     ///< Loads that hit in L1.
  double storeHotPki = 0.0;    ///< Stores that hit in L1.
  double rmwProb = 0.0;        ///< P(streaming load is followed by a store to the same line).
  double depChainFrac = 0.0;   ///< P(miss-bound load depends on the previous miss-bound load).
  double aluDepShallowFrac = 0.2;  ///< P(ALU op depends on the immediately preceding op).
};

/// A complete application model: identity, reference targets, memory
/// region geometry, and derived generator knobs.
struct AppProfile {
  std::string name;
  TableIIRef ref;
  DerivedParams params;

  // Memory region sizes (bytes).  Defaults are chosen relative to the
  // paper's default hierarchy (32 KB L1 / 256 KB L2 / 2 MB L3 share) so
  // that the L2-128KB and L3-1MB sensitivity studies perturb them
  // naturally.  The "large" (L3-resident) region must exceed the L2 by
  // enough that its reuse always misses L2, but stay small enough to warm
  // within the fast-forward window — the steady-state L3 hit rate is set
  // by the touch-rate decomposition, not the region size.
  std::uint64_t hotBytes = 8 * 1024;
  std::uint64_t warmBytes = 160 * 1024;
  std::uint64_t largeBytes = 512 * 1024;

  std::uint32_t loopLen = 1000;  ///< Loop body length in instructions (PC variety).

  // Content compressibility: the distribution of line classes this app's
  // blocks draw from when `compress=` is enabled (compress/compress.hpp).
  // Calibrated per app in app_profile.cpp against the BDI/FPC literature's
  // per-benchmark compression ratios — integer/pointer codes (mcf, astar,
  // xalancbmk) compress well, floating-point field solvers (lbm, milc,
  // GemsFDTD) are mostly incompressible.  Ignored when compression is off.
  compress::Compressibility compressibility;

  WriteIntensity intensity() const;
  /// WPKI + MPKI, the paper's write-intensity score.
  double writeScore() const { return ref.wpki + ref.mpki; }
};

/// Solves generator knobs from Table II targets.  Exposed for tests: the
/// derived rates must be internally consistent (non-negative, loads/stores
/// per KI within the instruction mix budget, MPKI decomposition adds up).
DerivedParams deriveParams(const TableIIRef& ref);

/// All 22 SPEC CPU2006 applications from the paper's Table II, with
/// reference values transcribed verbatim and knobs derived.
const std::vector<AppProfile>& spec2006Profiles();

/// Look up a profile by name; throws std::runtime_error if unknown (the
/// sweep engine catches it into the job's result slot, and renucad rejects
/// unknown apps at admission).
const AppProfile& profileByName(const std::string& name);

/// Instruction-mix constants shared by derivation and generation.
inline constexpr double kLoadsPerKi = 250.0;   ///< 25 % loads.
inline constexpr double kStoresPerKi = 100.0;  ///< 10 % stores.

}  // namespace renuca::workload
