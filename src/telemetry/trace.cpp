#include "telemetry/trace.hpp"

#include <cstdio>

#include "common/log.hpp"
#include "telemetry/json.hpp"

namespace renuca::telemetry {

TraceWriter::TraceWriter(const std::string& path, std::uint32_t sampleEvery)
    : sampleEvery_(sampleEvery == 0 ? 1 : sampleEvery), path_(path) {
  os_.open(path, std::ios::out | std::ios::trunc);
  if (!os_) {
    logMessage(LogLevel::Error, "trace", "cannot open trace file: " + path);
    closed_ = true;
    return;
  }
  ok_ = true;
  // Hand-written header: events stream out one per line, so the document
  // cannot go through JsonWriter's single-root lifecycle.
  os_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  if (ok_) {
    os_ << "\n]}\n";
    os_.close();
    logMessage(LogLevel::Info, "trace",
               "wrote " + std::to_string(events_) + " trace events to " + path_);
  }
  ok_ = false;
}

void TraceWriter::eventCommon(const char* name, const char* cat, char ph,
                              std::uint32_t pid, std::uint32_t tid, Cycle ts) {
  if (events_ > 0) os_ << ',';
  os_ << "\n{\"name\":\"" << jsonEscape(name) << "\",\"cat\":\"" << jsonEscape(cat)
      << "\",\"ph\":\"" << ph << "\",\"pid\":" << pid << ",\"tid\":" << tid
      << ",\"ts\":" << ts;
  ++events_;
}

void TraceWriter::writeArgs(std::initializer_list<TraceArg> args) {
  os_ << ",\"args\":{";
  bool first = true;
  for (const TraceArg& a : args) {
    if (!first) os_ << ',';
    first = false;
    os_ << '"' << jsonEscape(a.first) << "\":" << a.second;
  }
  os_ << '}';
}

void TraceWriter::nameProcess(std::uint32_t pid, const std::string& name) {
  if (!ok_) return;
  eventCommon("process_name", "__metadata", 'M', pid, 0, 0);
  os_ << ",\"args\":{\"name\":\"" << jsonEscape(name) << "\"}}";
}

void TraceWriter::nameThread(std::uint32_t pid, std::uint32_t tid, const std::string& name) {
  if (!ok_) return;
  eventCommon("thread_name", "__metadata", 'M', pid, tid, 0);
  os_ << ",\"args\":{\"name\":\"" << jsonEscape(name) << "\"}}";
}

void TraceWriter::span(const char* name, const char* cat, std::uint32_t pid,
                       std::uint32_t tid, Cycle start, Cycle end,
                       std::initializer_list<TraceArg> args) {
  if (!ok_) return;
  Cycle dur = end >= start ? end - start : 0;
  eventCommon(name, cat, 'X', pid, tid, start);
  os_ << ",\"dur\":" << dur;
  writeArgs(args);
  os_ << '}';
}

void TraceWriter::instant(const char* name, const char* cat, std::uint32_t pid,
                          std::uint32_t tid, Cycle at,
                          std::initializer_list<TraceArg> args) {
  if (!ok_) return;
  eventCommon(name, cat, 'i', pid, tid, at);
  os_ << ",\"s\":\"t\"";
  writeArgs(args);
  os_ << '}';
}

void TraceWriter::counterEvent(const char* name, std::uint32_t pid, Cycle at,
                               const char* series, double value) {
  if (!ok_) return;
  eventCommon(name, "metrics", 'C', pid, 0, at);
  os_ << ",\"args\":{\"" << jsonEscape(series) << "\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  os_ << buf << "}}";
}

}  // namespace renuca::telemetry
