#include "telemetry/prometheus.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace renuca::telemetry {

namespace {

bool isNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Prometheus values are floats, but rendering integral counters as
/// integers keeps the document stable and diff-friendly.
std::string fmtValue(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.2e18) {
    std::snprintf(buf, sizeof buf, "%" PRId64, static_cast<std::int64_t>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

}  // namespace

std::string prometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) out.push_back(isNameChar(c) ? c : '_');
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string renderPrometheus(const MetricsRegistry& registry,
                             const std::vector<PrometheusHistogram>& histograms,
                             const std::string& prefix) {
  std::ostringstream os;
  const std::vector<std::string>& names = registry.names();
  const std::vector<double> row = registry.sample();
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string full = prefix + prometheusName(names[i]);
    os << "# TYPE " << full << (registry.isGauge(i) ? " gauge" : " counter")
       << '\n';
    os << full << ' ' << fmtValue(row[i]) << '\n';
  }
  for (const PrometheusHistogram& h : histograms) {
    if (!h.hist) continue;
    const std::string full = prefix + prometheusName(h.name);
    os << "# TYPE " << full << " histogram\n";
    std::uint64_t cum = 0;
    const std::size_t n = h.hist->numBuckets();
    for (std::size_t i = 0; i < n; ++i) {
      cum += h.hist->bucketCount(i);
      // The final bucket absorbs the clamped tail, so its honest upper
      // bound is +Inf (which Prometheus requires to exist anyway).
      if (i + 1 == n) {
        os << full << "_bucket{le=\"+Inf\"} " << cum << '\n';
      } else {
        const double le = h.hist->bucketWidth() * static_cast<double>(i + 1);
        os << full << "_bucket{le=\"" << fmtValue(le) << "\"} " << cum << '\n';
      }
    }
    if (n == 0) os << full << "_bucket{le=\"+Inf\"} 0\n";
    os << full << "_sum " << fmtValue(h.hist->sum()) << '\n';
    os << full << "_count " << h.hist->total() << '\n';
  }
  return os.str();
}

}  // namespace renuca::telemetry
