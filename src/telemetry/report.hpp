// Run-report helpers shared by every bench binary: host metadata for the
// report's provenance block and the JSON shape of an EpochSeries.  The
// full report writer lives in src/sim (it knows RunResult); this layer
// only knows telemetry types.
#pragma once

#include <cstdint>
#include <string>

#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace renuca::telemetry {

/// Best-effort host name ("unknown" when the platform call fails).
std::string hostName();

/// Seconds since the Unix epoch, from the system clock.
std::int64_t unixTime();

/// Emits an EpochSeries as {"metrics": [...names...], "cycles": [...],
/// "instrs": [...], "rows": [[...], ...]} at the writer's current position
/// (caller supplies the surrounding key).
void writeEpochSeries(JsonWriter& w, const EpochSeries& series);

}  // namespace renuca::telemetry
