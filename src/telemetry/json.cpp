#include "telemetry/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.hpp"

namespace renuca::telemetry {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);  // UTF-8 bytes pass through
        }
    }
  }
  return out;
}

void JsonWriter::indent() {
  if (!pretty_) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::separate() {
  if (pendingKey_) {
    pendingKey_ = false;
    return;  // value follows its key; no comma
  }
  if (stack_.empty()) return;  // document root
  Frame& f = stack_.back();
  if (!f.first) os_ << ',';
  f.first = false;
  indent();
}

void JsonWriter::beginObject() {
  separate();
  os_ << '{';
  stack_.push_back(Frame{/*array=*/false, /*first=*/true});
}

void JsonWriter::endObject() {
  RENUCA_ASSERT(!stack_.empty() && !stack_.back().array, "endObject without beginObject");
  bool wasEmpty = stack_.back().first;
  stack_.pop_back();
  if (!wasEmpty) indent();
  os_ << '}';
}

void JsonWriter::beginArray() {
  separate();
  os_ << '[';
  stack_.push_back(Frame{/*array=*/true, /*first=*/true});
}

void JsonWriter::endArray() {
  RENUCA_ASSERT(!stack_.empty() && stack_.back().array, "endArray without beginArray");
  bool wasEmpty = stack_.back().first;
  stack_.pop_back();
  if (!wasEmpty) indent();
  os_ << ']';
}

void JsonWriter::key(std::string_view k) {
  RENUCA_ASSERT(!stack_.empty() && !stack_.back().array, "key outside an object");
  separate();
  os_ << '"' << jsonEscape(k) << "\":";
  if (pretty_) os_ << ' ';
  pendingKey_ = true;
}

void JsonWriter::value(std::string_view s) {
  separate();
  os_ << '"' << jsonEscape(s) << '"';
}

void JsonWriter::value(double d) {
  separate();
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; report null rather than emit an invalid token.
    os_ << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  os_ << buf;
}

void JsonWriter::value(std::int64_t v) {
  separate();
  os_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  separate();
  os_ << v;
}

void JsonWriter::value(bool b) {
  separate();
  os_ << (b ? "true" : "false");
}

void JsonWriter::nullValue() {
  separate();
  os_ << "null";
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  std::optional<JsonValue> parse() {
    skipWs();
    JsonValue v;
    if (!parseValue(v)) return std::nullopt;
    skipWs();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const std::string& what) {
    if (error_ && error_->empty()) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  bool parseValue(JsonValue& out) {
    if (depth_ > kMaxDepth) {
      fail("nesting too deep");
      return false;
    }
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    char c = text_[pos_];
    if (c == '{') return parseObject(out);
    if (c == '[') return parseArray(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::String;
      return parseString(out.str);
    }
    if (literal("true")) {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = true;
      return true;
    }
    if (literal("false")) {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = false;
      return true;
    }
    if (literal("null")) {
      out.kind = JsonValue::Kind::Null;
      return true;
    }
    return parseNumber(out);
  }

  bool parseObject(JsonValue& out) {
    out.kind = JsonValue::Kind::Object;
    ++pos_;  // '{'
    ++depth_;
    skipWs();
    if (consume('}')) {
      --depth_;
      return true;
    }
    while (true) {
      skipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parseString(key)) {
        fail("expected object key");
        return false;
      }
      skipWs();
      if (!consume(':')) {
        fail("expected ':'");
        return false;
      }
      skipWs();
      JsonValue v;
      if (!parseValue(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skipWs();
      if (consume(',')) continue;
      if (consume('}')) {
        --depth_;
        return true;
      }
      fail("expected ',' or '}'");
      return false;
    }
  }

  bool parseArray(JsonValue& out) {
    out.kind = JsonValue::Kind::Array;
    ++pos_;  // '['
    ++depth_;
    skipWs();
    if (consume(']')) {
      --depth_;
      return true;
    }
    while (true) {
      skipWs();
      JsonValue v;
      if (!parseValue(v)) return false;
      out.array.push_back(std::move(v));
      skipWs();
      if (consume(',')) continue;
      if (consume(']')) {
        --depth_;
        return true;
      }
      fail("expected ',' or ']'");
      return false;
    }
  }

  bool parseString(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad \\u escape");
                return false;
              }
            }
            // Encode the BMP code point as UTF-8 (surrogate pairs are not
            // recombined — telemetry strings are ASCII in practice).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape");
            return false;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parseNumber(JsonValue& out) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto eatDigits = [&] {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eatDigits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eatDigits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      eatDigits();
    }
    if (!digits) {
      fail("expected a value");
      return false;
    }
    std::string num(text_.substr(start, pos_ - start));
    out.kind = JsonValue::Kind::Number;
    out.number = std::strtod(num.c_str(), nullptr);
    return true;
  }

  static constexpr int kMaxDepth = 200;
  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<JsonValue> parseJson(std::string_view text, std::string* error) {
  if (error) error->clear();
  return Parser(text, error).parse();
}

}  // namespace renuca::telemetry
