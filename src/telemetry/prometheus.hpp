// Prometheus text exposition (version 0.0.4) for the metrics registry and
// latency histograms.  This is what the server's METRICS request renders,
// making renucad scrape-ready: counters and gauges come straight from the
// MetricsRegistry the server already feeds, histograms get the cumulative
// `_bucket{le=...}` / `_sum` / `_count` triple Prometheus expects.
//
// Registry metric names use '/' separators ("server/accepted"); exposition
// names must match [a-zA-Z_:][a-zA-Z0-9_:]* so every other character maps
// to '_' and a configurable prefix ("renucad_") namespaces the daemon.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "telemetry/metrics.hpp"

namespace renuca::telemetry {

/// Maps an internal metric name onto the Prometheus grammar: every
/// character outside [a-zA-Z0-9_:] becomes '_', and a leading digit gets a
/// '_' prepended.  Empty input stays empty.
std::string prometheusName(const std::string& name);

/// One named histogram to expose alongside the registry.
struct PrometheusHistogram {
  std::string name;
  const Histogram* hist = nullptr;
};

/// Renders the full exposition document: one `# TYPE` line plus samples per
/// metric, counters/gauges from the registry (evaluated now, via sample()),
/// then each histogram as cumulative buckets + `_sum` + `_count`.  Every
/// name is prefixed (e.g. "renucad_") after sanitization.
std::string renderPrometheus(const MetricsRegistry& registry,
                             const std::vector<PrometheusHistogram>& histograms,
                             const std::string& prefix);

}  // namespace renuca::telemetry
