// Minimal JSON support for the telemetry subsystem: a streaming writer
// (used by run reports and the event tracer) and a small recursive-descent
// parser (used by trace_view and the tests that validate emitted files).
//
// No external dependency: the simulator must stay buildable from system
// packages only.  The writer never pretty-prints by default — telemetry
// files can hold millions of events and whitespace is pure size.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace renuca::telemetry {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string jsonEscape(std::string_view s);

/// Streaming JSON writer with automatic comma/nesting management.
/// Usage:
///   JsonWriter w(os);
///   w.beginObject();
///   w.key("answer"); w.value(42);
///   w.key("xs"); w.beginArray(); w.value(1.5); w.endArray();
///   w.endObject();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, bool pretty = false) : os_(os), pretty_(pretty) {}

  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(const std::string& s) { value(std::string_view(s)); }
  void value(double d);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(std::uint32_t v) { value(static_cast<std::uint64_t>(v)); }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool b);
  void nullValue();

  // key + value in one call.
  template <typename T>
  void kv(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

  /// Writes a whole numeric array under `k`.
  template <typename T>
  void kvArray(std::string_view k, const std::vector<T>& xs) {
    key(k);
    beginArray();
    for (const T& x : xs) value(x);
    endArray();
  }

  /// Depth of open containers (0 once the document is complete).
  std::size_t depth() const { return stack_.size(); }

 private:
  void separate();  ///< Emits the comma/newline before a new element.
  void indent();

  struct Frame {
    bool array = false;
    bool first = true;
  };
  std::ostream& os_;
  bool pretty_;
  std::vector<Frame> stack_;
  bool pendingKey_ = false;
};

/// Parsed JSON document node.
struct JsonValue {
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  bool isNull() const { return kind == Kind::Null; }
  bool isBool() const { return kind == Kind::Bool; }
  bool isNumber() const { return kind == Kind::Number; }
  bool isString() const { return kind == Kind::String; }
  bool isArray() const { return kind == Kind::Array; }
  bool isObject() const { return kind == Kind::Object; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Parses a complete JSON document.  On failure returns nullopt and, when
/// `error` is given, a short description with the byte offset.
std::optional<JsonValue> parseJson(std::string_view text, std::string* error = nullptr);

}  // namespace renuca::telemetry
