#include "telemetry/metrics.hpp"

#include "common/log.hpp"

namespace renuca::telemetry {

std::size_t EpochSeries::indexOf(const std::string& name) const {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  return npos;
}

std::vector<double> EpochSeries::column(const std::string& name) const {
  std::size_t idx = indexOf(name);
  if (idx == npos) return {};
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(row[idx]);
  return out;
}

Counter MetricsRegistry::counter(const std::string& name) {
  RENUCA_ASSERT(series_.empty(), "register metrics before the first snapshot");
  slots_.push_back(0);
  std::uint64_t* slot = &slots_.back();
  series_.names.push_back(name);
  metrics_.push_back(Metric{slot, nullptr});
  return Counter(slot);
}

void MetricsRegistry::expose(const std::string& name, const std::uint64_t* location) {
  RENUCA_ASSERT(series_.empty(), "register metrics before the first snapshot");
  RENUCA_ASSERT(location != nullptr, "expose() needs a counter location");
  series_.names.push_back(name);
  metrics_.push_back(Metric{location, nullptr});
}

void MetricsRegistry::gauge(const std::string& name, std::function<double()> fn) {
  RENUCA_ASSERT(series_.empty(), "register metrics before the first snapshot");
  RENUCA_ASSERT(static_cast<bool>(fn), "gauge() needs a callback");
  series_.names.push_back(name);
  metrics_.push_back(Metric{nullptr, std::move(fn)});
}

std::vector<double> MetricsRegistry::sample() const {
  std::vector<double> row;
  row.reserve(metrics_.size());
  for (const Metric& m : metrics_) {
    row.push_back(m.fn ? m.fn() : static_cast<double>(*m.location));
  }
  return row;
}

void MetricsRegistry::snapshot(Cycle cycle, std::uint64_t instr) {
  series_.cycles.push_back(cycle);
  series_.instrs.push_back(instr);
  series_.rows.push_back(sample());
}

void MetricsRegistry::clearSeries() {
  series_.cycles.clear();
  series_.instrs.clear();
  series_.rows.clear();
}

}  // namespace renuca::telemetry
