// Self-profiler: RAII scoped wall-time attribution for the simulator's own
// components (where does an instr/sec go?).
//
// The design mirrors the StatSet/MetricsRegistry handle pattern: a
// component resolves a ProfSection handle once (at construction / wiring
// time), then the hot path opens a ScopedProf on it.  A default-constructed
// handle is *detached*: opening a scope on it costs exactly one null-pointer
// test — that is the whole price of compiled-in instrumentation when
// `profile=` is off, and what the <2 %-overhead test in tests/test_telemetry
// holds.
//
// Attribution is *self time*: scopes may nest (the LLC region of a
// hierarchy walk contains NoC and DRAM scopes), and a parent's accumulated
// time excludes its children's, so the per-section times are disjoint and
// their sum can never exceed the run's wall time.  The profiler keeps an
// explicit scope stack to do this, which also means one Profiler instance
// is single-threaded by construction — exactly one System owns one
// Profiler, the same ownership discipline the tracer and metrics registry
// follow (sim/sweep.hpp's determinism contract).
//
// Honesty check: report() carries an overhead estimate — the measured cost
// of one enter/exit pair times the number of pairs taken — so a profile
// whose instrumentation cost rivals its sections is visibly untrustworthy.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace renuca::telemetry {

class Profiler;

/// Cheap section handle; trivially copyable, safe to default-construct (a
/// detached handle makes ScopedProf a no-op).
class ProfSection {
 public:
  ProfSection() = default;
  bool attached() const { return prof_ != nullptr; }

 private:
  friend class Profiler;
  friend class ScopedProf;
  ProfSection(Profiler* prof, std::size_t slot) : prof_(prof), slot_(slot) {}
  Profiler* prof_ = nullptr;
  std::size_t slot_ = 0;
};

/// One run's profile, ready for the run report ("profile" section of
/// renuca-run-report-v4) and for trace spans.
struct ProfileReport {
  bool enabled = false;
  double totalSeconds = 0.0;        ///< Wall time of the whole run.
  double overheadEstSeconds = 0.0;  ///< Estimated instrumentation cost.
  struct Section {
    std::string name;
    double seconds = 0.0;      ///< Self time (children excluded).
    double share = 0.0;        ///< seconds / totalSeconds.
    std::uint64_t count = 0;   ///< Scope entries.
  };
  std::vector<Section> sections;  ///< Registration order.

  /// Sum of the per-section shares (<= 1 by construction, modulo the
  /// instrumentation overhead the sections absorb).
  double shareSum() const;
};

class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Registers (or re-finds, by name) a section and returns its handle.
  /// Handles stay valid for the profiler's lifetime.
  ProfSection section(const std::string& name);

  std::size_t numSections() const { return slots_.size(); }
  const std::string& sectionName(std::size_t i) const { return slots_[i].name; }
  std::uint64_t sectionSelfNs(std::size_t i) const { return slots_[i].selfNs; }
  std::uint64_t sectionCount(std::size_t i) const { return slots_[i].count; }

  /// Total enter/exit pairs taken so far (the overhead-estimate multiplier).
  std::uint64_t hookCount() const { return hooks_; }

  /// Builds the report against the run's measured wall time.
  ProfileReport report(double totalSeconds) const;

  /// Monotonic nanoseconds (steady_clock).
  static std::uint64_t nowNs() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Measures the cost of one *attached* enter/exit pair (a calibration
  /// loop over a scratch section), in nanoseconds.
  static double measureScopeCostNs(std::size_t iters = 1 << 14);

  /// Measures the cost of one *detached* enter/exit pair — the price every
  /// hook site pays when profiling is off.  The <2 %-overhead test
  /// multiplies this by a run's hookCount().
  static double measureDetachedScopeCostNs(std::size_t iters = 1 << 18);

 private:
  friend class ScopedProf;
  void enter(std::size_t slot) {
    stack_.push_back(Active{slot, nowNs(), 0});
  }
  void exit() {
    const Active a = stack_.back();
    stack_.pop_back();
    const std::uint64_t delta = nowNs() - a.start;
    const std::uint64_t self = delta > a.childNs ? delta - a.childNs : 0;
    Slot& s = slots_[a.slot];
    s.selfNs += self;
    ++s.count;
    ++hooks_;
    if (!stack_.empty()) stack_.back().childNs += delta;
  }

  struct Slot {
    std::string name;
    std::uint64_t selfNs = 0;
    std::uint64_t count = 0;
  };
  struct Active {
    std::size_t slot;
    std::uint64_t start;
    std::uint64_t childNs;  ///< Wall time already claimed by nested scopes.
  };

  std::deque<Slot> slots_;  ///< Stable storage; handles index into it.
  std::vector<Active> stack_;
  std::uint64_t hooks_ = 0;
};

/// RAII scope: attributes the enclosed wall time to the handle's section.
/// On a detached handle both constructor and destructor are a single
/// null-pointer test.
class ScopedProf {
 public:
  explicit ScopedProf(const ProfSection& s) : prof_(s.prof_) {
    if (prof_) prof_->enter(s.slot_);
  }
  ~ScopedProf() {
    if (prof_) prof_->exit();
  }
  ScopedProf(const ScopedProf&) = delete;
  ScopedProf& operator=(const ScopedProf&) = delete;

 private:
  Profiler* prof_;
};

}  // namespace renuca::telemetry
