#include "telemetry/report.hpp"

#include <ctime>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace renuca::telemetry {

std::string hostName() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {};
  if (::gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') {
    return std::string(buf);
  }
#endif
  return "unknown";
}

std::int64_t unixTime() { return static_cast<std::int64_t>(std::time(nullptr)); }

void writeEpochSeries(JsonWriter& w, const EpochSeries& series) {
  w.beginObject();
  w.key("metrics");
  w.beginArray();
  for (const std::string& n : series.names) w.value(n);
  w.endArray();
  w.kvArray("cycles", series.cycles);
  w.kvArray("instrs", series.instrs);
  w.key("rows");
  w.beginArray();
  for (const auto& row : series.rows) {
    w.beginArray();
    for (double v : row) w.value(v);
    w.endArray();
  }
  w.endArray();
  w.endObject();
}

}  // namespace renuca::telemetry
