#include "telemetry/profiler.hpp"

namespace renuca::telemetry {

double ProfileReport::shareSum() const {
  double s = 0.0;
  for (const Section& sec : sections) s += sec.share;
  return s;
}

ProfSection Profiler::section(const std::string& name) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].name == name) return ProfSection(this, i);
  }
  slots_.push_back(Slot{name, 0, 0});
  return ProfSection(this, slots_.size() - 1);
}

ProfileReport Profiler::report(double totalSeconds) const {
  ProfileReport r;
  r.enabled = true;
  r.totalSeconds = totalSeconds;
  r.overheadEstSeconds =
      measureScopeCostNs() * static_cast<double>(hooks_) * 1e-9;
  r.sections.reserve(slots_.size());
  for (const Slot& s : slots_) {
    ProfileReport::Section sec;
    sec.name = s.name;
    sec.seconds = static_cast<double>(s.selfNs) * 1e-9;
    sec.share = totalSeconds > 0.0 ? sec.seconds / totalSeconds : 0.0;
    sec.count = s.count;
    r.sections.push_back(std::move(sec));
  }
  return r;
}

double Profiler::measureScopeCostNs(std::size_t iters) {
  Profiler p;
  ProfSection s = p.section("calibrate");
  const std::uint64_t t0 = nowNs();
  for (std::size_t i = 0; i < iters; ++i) {
    ScopedProf sp(s);
  }
  const std::uint64_t t1 = nowNs();
  return static_cast<double>(t1 - t0) / static_cast<double>(iters);
}

double Profiler::measureDetachedScopeCostNs(std::size_t iters) {
  ProfSection detached;
  const std::uint64_t t0 = nowNs();
  for (std::size_t i = 0; i < iters; ++i) {
    ScopedProf sp(detached);
  }
  const std::uint64_t t1 = nowNs();
  // The loop may optimize to nearly nothing — that is the honest answer for
  // a detached scope, so no attempt to defeat the optimizer here beyond the
  // volatile-free handle read the constructor performs.
  return static_cast<double>(t1 - t0) / static_cast<double>(iters);
}

}  // namespace renuca::telemetry
