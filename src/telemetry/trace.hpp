// Event tracer emitting Chrome trace_event JSON ("JSON Object Format":
// a {"traceEvents": [...]} document loadable in chrome://tracing and
// https://ui.perfetto.dev).
//
// Mapping of simulator concepts onto the format:
//  * ts is the simulated cycle (the viewer's "microseconds" are our
//    cycles; displayTimeUnit metadata says so);
//  * complete events (ph "X") are scoped spans — one per stage of a
//    memory-hierarchy walk (TLB, L1, L2, LLC bank, NoC legs, DRAM) nested
//    under the whole-walk span;
//  * instant events (ph "i") mark one-shot facts: LLC evictions, MBV
//    resets, criticality flips;
//  * counter events (ph "C") carry slow-moving series (per-bank writes).
//
// Tracing every access would slow full-length runs by an order of
// magnitude and produce multi-GB files, so walks are *sampled*: the caller
// asks sampleNext() once per walk and only traces when it returns true
// (every sampleEvery-th walk).  With tracing off (no TraceWriter), the hot
// path pays one null-pointer test.
#pragma once

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <string>
#include <utility>

#include "common/types.hpp"

namespace renuca::telemetry {

/// One "key": integer-valued argument attached to a trace event.
using TraceArg = std::pair<const char*, std::int64_t>;

class TraceWriter {
 public:
  /// Opens `path` and writes the document header.  `sampleEvery` controls
  /// sampleNext(): 1 traces everything, N traces every Nth walk.
  TraceWriter(const std::string& path, std::uint32_t sampleEvery);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  bool ok() const { return ok_; }
  std::uint32_t sampleEvery() const { return sampleEvery_; }
  std::uint64_t eventsWritten() const { return events_; }

  /// Sampling gate for the next unit of work; increments the counter.
  bool sampleNext() {
    return sampleEvery_ <= 1 || (sampleCounter_++ % sampleEvery_) == 0;
  }

  /// Metadata: names a process / thread lane in the viewer.
  void nameProcess(std::uint32_t pid, const std::string& name);
  void nameThread(std::uint32_t pid, std::uint32_t tid, const std::string& name);

  /// Complete event (ph "X") spanning [start, end] cycles.
  void span(const char* name, const char* cat, std::uint32_t pid, std::uint32_t tid,
            Cycle start, Cycle end, std::initializer_list<TraceArg> args = {});

  /// Instant event (ph "i", thread scope).
  void instant(const char* name, const char* cat, std::uint32_t pid, std::uint32_t tid,
               Cycle at, std::initializer_list<TraceArg> args = {});

  /// Counter event (ph "C"): one named series under `name`'s track.
  void counterEvent(const char* name, std::uint32_t pid, Cycle at, const char* series,
                    double value);

  /// Writes the footer and closes the file (also done by the destructor).
  void close();

 private:
  void eventCommon(const char* name, const char* cat, char ph, std::uint32_t pid,
                   std::uint32_t tid, Cycle ts);
  void writeArgs(std::initializer_list<TraceArg> args);

  std::ofstream os_;
  bool ok_ = false;
  bool closed_ = false;
  std::uint32_t sampleEvery_ = 64;
  std::uint64_t sampleCounter_ = 0;
  std::uint64_t events_ = 0;
  std::string path_;
};

}  // namespace renuca::telemetry
