// Metrics registry: the per-epoch sampling layer of the telemetry
// subsystem.
//
// Components register what they want observed once, at construction time —
// either an owned counter slot (a stable uint64 the component bumps through
// a cheap handle), an exposed pointer to a counter the component already
// maintains (e.g. a StatSet::counter() handle), or a gauge callback that is
// evaluated only when a snapshot is taken.  The experiment runner calls
// snapshot() at every epoch boundary, producing an EpochSeries: one row of
// metric values per epoch, with the cycle and committed-instruction
// coordinates alongside.  Nothing here is on the simulation hot path; the
// hot path is the handle bump, which is a single pointer-chase increment.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace renuca::telemetry {

/// Cheap counter handle; trivially copyable, safe to default-construct
/// (a detached handle ignores inc()).
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t by = 1) {
    if (v_) *v_ += by;
  }
  std::uint64_t value() const { return v_ ? *v_ : 0; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::uint64_t* v) : v_(v) {}
  std::uint64_t* v_ = nullptr;
};

/// Per-epoch time series of every registered metric.
struct EpochSeries {
  std::vector<std::string> names;          ///< Metric names, registration order.
  std::vector<Cycle> cycles;               ///< Measurement-window cycle per epoch.
  std::vector<std::uint64_t> instrs;       ///< Committed instr/core per epoch.
  std::vector<std::vector<double>> rows;   ///< rows[epoch][metric].

  std::size_t numEpochs() const { return rows.size(); }
  bool empty() const { return rows.empty(); }

  /// Index of a metric name, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t indexOf(const std::string& name) const;

  /// One metric's value at every epoch; empty when the name is unknown.
  std::vector<double> column(const std::string& name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers an owned counter slot; the handle stays valid for the
  /// registry's lifetime (slots live in a deque — no reallocation).
  Counter counter(const std::string& name);

  /// Exposes an existing counter location (e.g. a StatSet handle).  The
  /// pointee must outlive the registry's snapshots.
  void expose(const std::string& name, const std::uint64_t* location);

  /// Registers a gauge evaluated at snapshot time.
  void gauge(const std::string& name, std::function<double()> fn);

  std::size_t numMetrics() const { return metrics_.size(); }
  const std::vector<std::string>& names() const { return series_.names; }

  /// True when metric `i` (registration order, as in names()) is a gauge
  /// callback rather than a monotone counter — Prometheus exposition needs
  /// the distinction for its TYPE lines.
  bool isGauge(std::size_t i) const {
    return static_cast<bool>(metrics_[i].fn);
  }

  /// Evaluates every metric right now (without recording an epoch).
  std::vector<double> sample() const;

  /// Records one epoch row at the given coordinates.
  void snapshot(Cycle cycle, std::uint64_t instr);

  const EpochSeries& series() const { return series_; }
  void clearSeries();

 private:
  struct Metric {
    const std::uint64_t* location = nullptr;  ///< Owned slot or exposed pointer.
    std::function<double()> fn;               ///< Gauge callback (wins if set).
  };

  std::deque<std::uint64_t> slots_;  ///< Owned counter storage (stable addresses).
  std::vector<Metric> metrics_;
  EpochSeries series_;
};

}  // namespace renuca::telemetry
