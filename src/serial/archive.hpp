// Versioned binary state archive: the serialization layer behind warm-state
// snapshots (System::snapshot / restoreFrom) and the simulation service's
// wire frames (server/protocol.hpp).
//
// Format (v1): an 12-byte header — 8-byte magic "RENUCACP", uint32
// format version — followed by tagged sections:
//
//   [u32 nameLen][name bytes][u64 payloadLen][u64 checksum][payload]
//
// The checksum is FNV-1a 64 over the payload bytes.  The writer buffers one
// section at a time in memory, so a section's length and checksum are always
// consistent with its payload, and all integers are packed little-endian
// explicitly, so archives are byte-identical across platforms.
//
// Both ends work against a file *or* an in-memory byte buffer: snapshots use
// the file mode, the renucad protocol encodes each message payload as an
// in-memory archive blob so the wire format inherits the same magic/version/
// checksum discipline (and the same corruption story) as snapshots.
//
// Corruption handling follows the v2 trace format (workload/trace.hpp):
// nothing here ever aborts.  Open failures, bad magic, unsupported versions,
// truncated section frames, checksum mismatches and payload over-reads all
// surface through ok()/error(); the restore path treats any of them as "no
// usable snapshot" (and the protocol treats them as "reply with an error
// frame") and recovers.
//
// Determinism contract: components must serialize canonically (sort any
// unordered container by key) so that save -> load -> save reproduces the
// archive byte for byte.  test_serial checks this for every component.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace renuca::serial {

inline constexpr char kArchiveMagic[8] = {'R', 'E', 'N', 'U', 'C', 'A', 'C', 'P'};
inline constexpr std::uint32_t kArchiveVersion = 1;

/// FNV-1a 64-bit hash; also used for the warm-state config fingerprint.
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;
std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t h = kFnvOffset);

/// What went wrong with an archive.  All conditions are recoverable — the
/// caller abandons the snapshot and regenerates the state instead.
enum class ArchiveError : std::uint8_t {
  None,
  OpenFailed,        ///< File could not be opened.
  BadMagic,          ///< Not an archive (or a damaged header).
  BadVersion,        ///< Unsupported format version.
  TruncatedSection,  ///< A section frame runs past the end of the file.
  ChecksumMismatch,  ///< Section payload does not match its checksum.
  SectionMissing,    ///< A requested section is not in the file.
  ShortRead,         ///< A get*() ran past the open section's payload.
  IoFailed,          ///< Write/flush/close failure (e.g. disk full).
};
std::string toString(ArchiveError err);

/// Streaming archive writer.  beginSection()/endSection() bracket each
/// component's payload; put*() append to the open section.  Never aborts:
/// a failed open or short write flips the error state and close() reports
/// whether everything landed on disk.
class ArchiveWriter {
 public:
  explicit ArchiveWriter(const std::string& path);
  /// Memory mode: appends the archive bytes (header included) to `*sink`
  /// instead of a file.  The sink must outlive the writer; close() is a
  /// no-op beyond error reporting.
  explicit ArchiveWriter(std::vector<std::uint8_t>* sink);
  ~ArchiveWriter();
  ArchiveWriter(const ArchiveWriter&) = delete;
  ArchiveWriter& operator=(const ArchiveWriter&) = delete;

  void beginSection(const std::string& name);
  void endSection();

  void putU8(std::uint8_t v);
  void putU32(std::uint32_t v);
  void putU64(std::uint64_t v);
  void putBool(bool v) { putU8(v ? 1 : 0); }
  /// Bit-exact (the IEEE-754 pattern rides as a u64).
  void putDouble(double v);
  void putString(const std::string& s);
  void putBytes(const void* data, std::size_t size);

  /// Flushes and closes the file; returns false (and logs) if any write
  /// failed.  Idempotent; the destructor calls it.
  bool close();

  bool ok() const { return error_ == ArchiveError::None; }
  ArchiveError error() const { return error_; }

 private:
  /// Appends raw bytes to the file or the memory sink.
  bool writeOut(const void* data, std::size_t size);

  void* file_ = nullptr;                    // std::FILE* (file mode)
  std::vector<std::uint8_t>* sink_ = nullptr;  // memory mode
  std::string path_;
  std::string sectionName_;
  std::vector<std::uint8_t> buf_;  ///< Payload of the open section.
  bool inSection_ = false;
  ArchiveError error_ = ArchiveError::None;
};

/// Archive reader.  Loads the whole file, validates the header, and scans
/// the section table up front; openSection() then positions a cursor on one
/// payload (verifying its checksum) for the get*() calls.  A get*() past
/// the payload end sets ShortRead and returns zero — loadState
/// implementations finish and then check ok().
class ArchiveReader {
 public:
  explicit ArchiveReader(const std::string& path);
  /// Memory mode: parses an archive blob already in memory (a protocol
  /// frame payload).  The bytes are copied; `label` names the source in
  /// error messages.
  ArchiveReader(const std::uint8_t* data, std::size_t size,
                const std::string& label = "<memory>");

  struct SectionInfo {
    std::string name;
    std::uint64_t offset = 0;  ///< Payload offset within the file.
    std::uint64_t size = 0;    ///< Payload bytes.
    std::uint64_t checksum = 0;
  };

  /// Sections in file order (valid whenever the header and frames parsed).
  const std::vector<SectionInfo>& sections() const { return sections_; }
  bool hasSection(const std::string& name) const;

  /// Positions the cursor at the start of `name`'s payload, verifying the
  /// checksum.  Returns false (and sets error()) if the section is missing
  /// or corrupt.
  bool openSection(const std::string& name);

  std::uint8_t getU8();
  std::uint32_t getU32();
  std::uint64_t getU64();
  bool getBool() { return getU8() != 0; }
  double getDouble();
  std::string getString();

  /// Bytes left in the open section.
  std::uint64_t remaining() const { return end_ - cur_; }

  bool ok() const { return error_ == ArchiveError::None; }
  ArchiveError error() const { return error_; }
  std::uint32_t version() const { return version_; }

 private:
  /// Validates the header and scans the section table over data_.
  void parse();
  void fail(ArchiveError err, const std::string& detail);
  bool need(std::size_t bytes);

  std::string path_;
  std::vector<std::uint8_t> data_;
  std::vector<SectionInfo> sections_;
  std::uint32_t version_ = 0;
  std::size_t cur_ = 0;  ///< Cursor within data_ (open section only).
  std::size_t end_ = 0;
  ArchiveError error_ = ArchiveError::None;
};

}  // namespace renuca::serial
