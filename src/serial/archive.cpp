#include "serial/archive.hpp"

#include <cstdio>
#include <cstring>

#include "common/log.hpp"

namespace renuca::serial {

namespace {

void packU32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

void packU64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t unpackU32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) | (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

std::uint64_t unpackU64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t h) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::string toString(ArchiveError err) {
  switch (err) {
    case ArchiveError::None: return "none";
    case ArchiveError::OpenFailed: return "open failed";
    case ArchiveError::BadMagic: return "bad magic";
    case ArchiveError::BadVersion: return "unsupported version";
    case ArchiveError::TruncatedSection: return "truncated section";
    case ArchiveError::ChecksumMismatch: return "checksum mismatch";
    case ArchiveError::SectionMissing: return "section missing";
    case ArchiveError::ShortRead: return "short read";
    case ArchiveError::IoFailed: return "io failed";
  }
  return "unknown";
}

// --- ArchiveWriter -----------------------------------------------------------

ArchiveWriter::ArchiveWriter(const std::string& path) : path_(path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    error_ = ArchiveError::OpenFailed;
    logMessage(LogLevel::Warn, "serial", "cannot open '" + path + "' for writing");
    return;
  }
  file_ = f;
  std::uint8_t header[sizeof(kArchiveMagic) + 4];
  std::memcpy(header, kArchiveMagic, sizeof(kArchiveMagic));
  packU32(header + sizeof(kArchiveMagic), kArchiveVersion);
  if (!writeOut(header, sizeof(header))) error_ = ArchiveError::IoFailed;
}

ArchiveWriter::ArchiveWriter(std::vector<std::uint8_t>* sink)
    : sink_(sink), path_("<memory>") {
  std::uint8_t header[sizeof(kArchiveMagic) + 4];
  std::memcpy(header, kArchiveMagic, sizeof(kArchiveMagic));
  packU32(header + sizeof(kArchiveMagic), kArchiveVersion);
  writeOut(header, sizeof(header));
}

ArchiveWriter::~ArchiveWriter() { close(); }

bool ArchiveWriter::writeOut(const void* data, std::size_t size) {
  if (sink_ != nullptr) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    sink_->insert(sink_->end(), p, p + size);
    return true;
  }
  if (file_ == nullptr) return false;
  return std::fwrite(data, 1, size, static_cast<std::FILE*>(file_)) == size;
}

void ArchiveWriter::beginSection(const std::string& name) {
  RENUCA_ASSERT(!inSection_, "archive section '" + sectionName_ + "' still open");
  sectionName_ = name;
  buf_.clear();
  inSection_ = true;
}

void ArchiveWriter::endSection() {
  RENUCA_ASSERT(inSection_, "endSection without beginSection");
  inSection_ = false;
  if ((file_ == nullptr && sink_ == nullptr) || error_ == ArchiveError::IoFailed) {
    return;
  }

  std::uint8_t frame[4 + 8 + 8];
  packU32(frame, static_cast<std::uint32_t>(sectionName_.size()));
  bool good = writeOut(frame, 4) &&
              writeOut(sectionName_.data(), sectionName_.size());
  packU64(frame, buf_.size());
  packU64(frame + 8, fnv1a(buf_.data(), buf_.size()));
  good = good && writeOut(frame, 16);
  if (!buf_.empty()) {
    good = good && writeOut(buf_.data(), buf_.size());
  }
  if (!good) error_ = ArchiveError::IoFailed;
}

void ArchiveWriter::putU8(std::uint8_t v) { buf_.push_back(v); }

void ArchiveWriter::putU32(std::uint32_t v) {
  std::uint8_t b[4];
  packU32(b, v);
  buf_.insert(buf_.end(), b, b + 4);
}

void ArchiveWriter::putU64(std::uint64_t v) {
  std::uint8_t b[8];
  packU64(b, v);
  buf_.insert(buf_.end(), b, b + 8);
}

void ArchiveWriter::putDouble(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  putU64(bits);
}

void ArchiveWriter::putString(const std::string& s) {
  putU32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ArchiveWriter::putBytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + size);
}

bool ArchiveWriter::close() {
  if (sink_ != nullptr) {
    sink_ = nullptr;
    return error_ == ArchiveError::None;
  }
  if (file_ == nullptr) return error_ == ArchiveError::None;
  std::FILE* f = static_cast<std::FILE*>(file_);
  file_ = nullptr;
  bool good = std::fflush(f) == 0;
  good = std::fclose(f) == 0 && good;
  if (!good && error_ == ArchiveError::None) error_ = ArchiveError::IoFailed;
  if (error_ != ArchiveError::None) {
    logMessage(LogLevel::Warn, "serial",
               "archive write to '" + path_ + "' failed: " + toString(error_));
  }
  return error_ == ArchiveError::None;
}

// --- ArchiveReader -----------------------------------------------------------

ArchiveReader::ArchiveReader(const std::string& path) : path_(path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    fail(ArchiveError::OpenFailed, "cannot open '" + path + "'");
    return;
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size > 0) {
    data_.resize(static_cast<std::size_t>(size));
    if (std::fread(data_.data(), 1, data_.size(), f) != data_.size()) {
      data_.clear();
    }
  }
  std::fclose(f);
  parse();
}

ArchiveReader::ArchiveReader(const std::uint8_t* data, std::size_t size,
                             const std::string& label)
    : path_(label), data_(data, data + size) {
  parse();
}

void ArchiveReader::parse() {
  const std::string& path = path_;
  const std::size_t headerSize = sizeof(kArchiveMagic) + 4;
  if (data_.size() < headerSize ||
      std::memcmp(data_.data(), kArchiveMagic, sizeof(kArchiveMagic)) != 0) {
    fail(ArchiveError::BadMagic, "'" + path + "' is not a state archive");
    return;
  }
  version_ = unpackU32(data_.data() + sizeof(kArchiveMagic));
  if (version_ != kArchiveVersion) {
    fail(ArchiveError::BadVersion,
         "'" + path + "' has format version " + std::to_string(version_) +
             " (supported: " + std::to_string(kArchiveVersion) + ")");
    return;
  }

  // Scan the section table.  A frame running past the file (partial write,
  // truncation) invalidates the archive as a whole: any section after the
  // damage would be unlocatable, and a restore from half a snapshot would
  // be worse than a cold start.
  std::size_t pos = headerSize;
  while (pos < data_.size()) {
    if (data_.size() - pos < 4) {
      fail(ArchiveError::TruncatedSection, "'" + path + "' ends inside a frame");
      return;
    }
    std::uint32_t nameLen = unpackU32(data_.data() + pos);
    pos += 4;
    if (data_.size() - pos < static_cast<std::size_t>(nameLen) + 16) {
      fail(ArchiveError::TruncatedSection, "'" + path + "' ends inside a frame");
      return;
    }
    SectionInfo info;
    info.name.assign(reinterpret_cast<const char*>(data_.data() + pos), nameLen);
    pos += nameLen;
    info.size = unpackU64(data_.data() + pos);
    info.checksum = unpackU64(data_.data() + pos + 8);
    pos += 16;
    if (data_.size() - pos < info.size) {
      fail(ArchiveError::TruncatedSection,
           "'" + path + "' section '" + info.name + "' is truncated");
      return;
    }
    info.offset = pos;
    pos += info.size;
    sections_.push_back(std::move(info));
  }
}

void ArchiveReader::fail(ArchiveError err, const std::string& detail) {
  if (error_ == ArchiveError::None) {
    error_ = err;
    logMessage(LogLevel::Warn, "serial", detail);
  }
  cur_ = end_ = 0;
}

bool ArchiveReader::hasSection(const std::string& name) const {
  for (const SectionInfo& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

bool ArchiveReader::openSection(const std::string& name) {
  if (error_ != ArchiveError::None) return false;
  for (const SectionInfo& s : sections_) {
    if (s.name != name) continue;
    if (fnv1a(data_.data() + s.offset, s.size) != s.checksum) {
      fail(ArchiveError::ChecksumMismatch,
           "'" + path_ + "' section '" + name + "' failed its checksum");
      return false;
    }
    cur_ = static_cast<std::size_t>(s.offset);
    end_ = cur_ + static_cast<std::size_t>(s.size);
    return true;
  }
  fail(ArchiveError::SectionMissing, "'" + path_ + "' has no section '" + name + "'");
  return false;
}

bool ArchiveReader::need(std::size_t bytes) {
  if (end_ - cur_ >= bytes) return true;
  fail(ArchiveError::ShortRead, "'" + path_ + "' section payload over-read");
  return false;
}

std::uint8_t ArchiveReader::getU8() {
  if (!need(1)) return 0;
  return data_[cur_++];
}

std::uint32_t ArchiveReader::getU32() {
  if (!need(4)) return 0;
  std::uint32_t v = unpackU32(data_.data() + cur_);
  cur_ += 4;
  return v;
}

std::uint64_t ArchiveReader::getU64() {
  if (!need(8)) return 0;
  std::uint64_t v = unpackU64(data_.data() + cur_);
  cur_ += 8;
  return v;
}

double ArchiveReader::getDouble() {
  std::uint64_t bits = getU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ArchiveReader::getString() {
  std::uint32_t len = getU32();
  if (!need(len)) return {};
  std::string s(reinterpret_cast<const char*>(data_.data() + cur_), len);
  cur_ += len;
  return s;
}

}  // namespace renuca::serial
