#include "serial/checkpointable.hpp"

#include "common/log.hpp"

namespace renuca::serial {

void saveComponent(ArchiveWriter& ar, const std::string& name, const Checkpointable& c) {
  ar.beginSection(name);
  c.saveState(ar);
  ar.endSection();
}

bool loadComponent(ArchiveReader& ar, const std::string& name, Checkpointable& c) {
  if (!ar.openSection(name)) return false;
  if (!c.loadState(ar) || !ar.ok()) {
    logMessage(LogLevel::Warn, "serial", "section '" + name + "' rejected on restore");
    return false;
  }
  return true;
}

}  // namespace renuca::serial
