// The Checkpointable interface: what a component must do to ride in a
// warm-state snapshot.
//
// The dividing line (enforced by this refactor) is *checkpointable
// functional state* vs *transient timing state*:
//
//  * Functional state survives resetMeasurement() and shapes results —
//    cache tags and dirty bits, per-frame ReRAM write counts, TLB/page-table
//    entries and MBV bits, predictor counters, the Naive oracle's line
//    directory, workload RNG streams and generator cursors.  All of it
//    serializes.
//  * Timing state — busy-until calendars on banks, mesh links, DRAM banks
//    and buses — is deliberately *excluded*.  Snapshots are taken at the
//    end of the untimed functional fast-forward, where every calendar is
//    still pristine, so a restore into freshly constructed components
//    reproduces a cold run's continuation bit for bit.
//  * Statistics are also excluded: they are zeroed at the measurement
//    boundary, so nothing the run report contains depends on them at the
//    snapshot point.
//
// loadState() must validate geometry (set counts, way counts, entry counts)
// against the constructed component and return false on any mismatch or
// payload over-read — a snapshot from a different configuration must never
// half-apply.
#pragma once

#include <string>

#include "serial/archive.hpp"

namespace renuca::serial {

class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  /// Serializes functional state into the archive's open section.  Must be
  /// canonical (sort unordered containers) so save -> load -> save is
  /// byte-identical.
  virtual void saveState(ArchiveWriter& ar) const = 0;

  /// Restores from the archive's open section.  Returns false if the
  /// payload is malformed or does not match this component's geometry; the
  /// component may be partially overwritten afterwards, so a failed restore
  /// must discard the whole System.
  virtual bool loadState(ArchiveReader& ar) = 0;
};

/// Writes one component as the section `name`.
void saveComponent(ArchiveWriter& ar, const std::string& name, const Checkpointable& c);

/// Restores one component from the section `name`; false if the section is
/// missing, corrupt, or rejected by the component.
bool loadComponent(ArchiveReader& ar, const std::string& name, Checkpointable& c);

}  // namespace renuca::serial
