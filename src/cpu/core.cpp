#include "cpu/core.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace renuca::cpu {

OooCore::OooCore(const CoreConfig& config, CoreId id, workload::InstructionSource* source,
                 MemorySystem* mem, CriticalityPredictor* predictor,
                 std::uint64_t instrBudget)
    : cfg_(config), id_(id), source_(source), mem_(mem), predictor_(predictor),
      instrBudget_(instrBudget), mshr_(config.mshrEntries),
      storeBuffer_(config.storeBufferEntries), history_(kHistory, 0) {
  RENUCA_ASSERT(source_ != nullptr && mem_ != nullptr, "core needs a source and memory");
  RENUCA_ASSERT(cfg_.robEntries > 0 && cfg_.fetchWidth > 0 && cfg_.commitWidth > 0,
                "core widths must be non-zero");
  RENUCA_ASSERT(cfg_.robEntries <= kHistory, "ROB larger than the dependence history");
  robBuf_.resize(cfg_.robEntries);
  robCap_ = cfg_.robEntries;
}

OooCore::RobEntry* OooCore::entryFor(std::uint64_t seq) {
  if (seq < headSeq_) return nullptr;  // already committed
  std::uint64_t idx = seq - headSeq_;
  if (idx >= robCount_) return nullptr;
  return &robAt(static_cast<std::uint32_t>(idx));
}

void OooCore::resolve(std::uint64_t seq, Cycle completeAt) {
  // Worklist of (entry, known completion) pairs: marking one entry
  // resolved wakes its waiters — ALU waiters resolve immediately (their
  // latency is fixed), memory waiters move to the issue queue.  Iterative
  // so long ALU chains cannot overflow the stack.
  resolveWork_.emplace_back(seq, completeAt);
  while (!resolveWork_.empty()) {
    auto [s, t] = resolveWork_.back();
    resolveWork_.pop_back();
    RobEntry* e = entryFor(s);
    RENUCA_ASSERT(e != nullptr && !e->resolved, "resolve of missing/resolved entry");
    e->resolved = true;
    e->completeAt = t;
    history_[s % kHistory] = t;
    for (std::uint64_t w = e->firstWaiter; w != kNoSeq;) {
      RobEntry* we = entryFor(w);
      RENUCA_ASSERT(we != nullptr && !we->resolved, "waiter vanished before wakeup");
      std::uint64_t nextW = we->nextWaiter;
      we->nextWaiter = kNoSeq;
      Cycle ready = std::max(we->dispatchedAt, t);
      if (we->kind == InstrKind::Alu) {
        resolveWork_.emplace_back(w, ready + cfg_.aluLatency);
      } else {
        issueQueue_.push(ReadyOp{ready, w});
      }
      w = nextW;
    }
    e->firstWaiter = kNoSeq;
    e->lastWaiter = kNoSeq;
  }
}

void OooCore::commit(Cycle now) {
  std::uint32_t retired = 0;
  while (robCount_ != 0 && retired < cfg_.commitWidth) {
    RobEntry& head = robBuf_[robHead_];
    if (!head.resolved || head.completeAt > now) break;

    if (head.kind == InstrKind::Load) {
      ++stats_.loads;
      // Critical ground truth: the load blocked in-order commit for at
      // least headStallCycles cycles while at the ROB head.
      bool stalled = head.headBlockedSince != kNoCycle &&
                     head.completeAt >= head.headBlockedSince + cfg_.headStallCycles;
      if (stalled) {
        ++stats_.loadsStalledHead;
        if (head.predictedCritical) ++stats_.criticalLoadsCaught;
      }
      if (head.predictionValid) {
        ++stats_.cptPredictions;
        if (head.predictedCritical == stalled) ++stats_.cptCorrect;
      }
      if (head.predictedCritical) ++stats_.predictedCriticalLoads;
      if (predictor_) {
        bool flipped = predictor_->train(head.pc, stalled);
        if (flipped) {
          ++stats_.cptVerdictFlips;
          if (flipHook_) flipHook_(now, head.pc, stalled);
        }
      }
    } else if (head.kind == InstrKind::Store) {
      ++stats_.stores;
    }

    ++stats_.committed;
    if (stats_.committed == instrBudget_) stats_.doneCycle = now;
    if (++robHead_ == robCap_) robHead_ = 0;
    --robCount_;
    ++headSeq_;
    ++retired;
  }

  // Head-stall bookkeeping: if commit is now blocked on an incomplete
  // instruction, remember when the blocking began.
  if (robCount_ != 0) {
    RobEntry& head = robBuf_[robHead_];
    if (!head.resolved || head.completeAt > now) {
      if (head.headBlockedSince == kNoCycle) head.headBlockedSince = now;
      if (head.kind == InstrKind::Load) ++stats_.robHeadStallCycles;
    }
  }
}

bool OooCore::tryIssue(std::uint64_t seq, Cycle now) {
  RobEntry* e = entryFor(seq);
  RENUCA_ASSERT(e != nullptr && !e->resolved, "issue of missing/resolved mem op");

  if (e->kind == InstrKind::Load) {
    BlockAddr block = lineOf(e->vaddr);
    // Merge with an outstanding miss to the same block: the data arrives
    // with the first miss.
    if (auto pendingAt = mshr_.pendingCompletion(block, now)) {
      resolve(seq, std::max(*pendingAt, now + 1));
      return true;
    }
    Cycle free = mshr_.earliestFree(now);
    if (free > now) {
      issueQueue_.push(ReadyOp{free, seq});
      return false;
    }
    bool critical = false;
    if (predictor_) {
      e->predictionValid = predictor_->hasEntry(e->pc);
      critical = predictor_->predict(e->pc);
    }
    e->predictedCritical = critical;
    MemorySystem::LoadResult res = mem_->load(id_, e->vaddr, e->pc, now, critical);
    if (res.missedL1) mshr_.add(block, now, res.completeAt);
    resolve(seq, res.completeAt);
    return true;
  }

  // Store: needs a store-buffer entry; the ROB entry completes at issue
  // (stores retire via the buffer and never stall commit directly — a
  // full buffer back-pressures by delaying this issue).
  Cycle free = storeBuffer_.earliestFree(now);
  if (free > now) {
    issueQueue_.push(ReadyOp{free, seq});
    return false;
  }
  Cycle memDone = mem_->store(id_, e->vaddr, e->pc, now);
  storeBuffer_.add(lineOf(e->vaddr), now, memDone);
  resolve(seq, std::max(now, Cycle{1}));
  return true;
}

void OooCore::issueMemory(Cycle now) {
  std::uint32_t issued = 0;
  while (!issueQueue_.empty() && issued < cfg_.memIssueWidth) {
    ReadyOp top = issueQueue_.top();
    if (top.readyAt > now) break;
    issueQueue_.pop();
    // Structural-hazard re-queues come back with a strictly future
    // readyAt (MSHR/store-buffer earliestFree is > now when full), so the
    // loop cannot spin on one op.
    if (tryIssue(top.seq, now)) ++issued;
  }
}

void OooCore::dispatch(Cycle now) {
  for (std::uint32_t i = 0; i < cfg_.fetchWidth; ++i) {
    if (robCount_ >= robCap_) return;
    if (source_->exhausted()) return;

    workload::TraceRecord rec = source_->next();
    std::uint64_t seq = nextSeq_++;
    RobEntry& e = robAt(robCount_);
    ++robCount_;
    e = RobEntry{};
    e.pc = rec.pc;
    e.vaddr = rec.vaddr;
    e.kind = rec.kind;
    e.dispatchedAt = now;

    // Resolve the producer (single-dependence model).
    Cycle depReady = 0;
    bool depPending = false;
    std::uint64_t producer = 0;
    if (rec.depDist > 0 && rec.depDist <= seq) {
      producer = seq - rec.depDist;
      if (RobEntry* pe = entryFor(producer)) {
        if (pe->resolved) {
          depReady = pe->completeAt;
        } else {
          depPending = true;
        }
      } else {
        // Producer already committed; its completion is in the history
        // ring (kHistory >= robEntries + commit slack keeps it valid).
        if (seq - producer < kHistory) depReady = history_[producer % kHistory];
      }
    }

    if (depPending) {
      RobEntry* pe = entryFor(producer);
      if (pe->firstWaiter == kNoSeq) {
        pe->firstWaiter = seq;
      } else {
        entryFor(pe->lastWaiter)->nextWaiter = seq;
      }
      pe->lastWaiter = seq;
      continue;  // resolution happens at producer wakeup
    }

    Cycle ready = std::max(now, depReady);
    if (rec.kind == InstrKind::Alu) {
      e.resolved = true;
      e.completeAt = ready + cfg_.aluLatency;
      history_[seq % kHistory] = e.completeAt;
    } else {
      issueQueue_.push(ReadyOp{ready, seq});
    }
  }
}

void OooCore::tick(Cycle now) {
  commit(now);
  issueMemory(now);
  if (runPastBudget_ || !done()) {
    dispatch(now);
  }
}

Cycle OooCore::nextEventCycle(Cycle now) const {
  if (!runPastBudget_ && done() && robCount_ == 0) return kNoCycle;
  // Room to dispatch: the core acts next cycle.
  if (robCount_ < robCap_ && !source_->exhausted() &&
      (runPastBudget_ || !done())) {
    return now + 1;
  }
  Cycle next = kNoCycle;
  if (robCount_ != 0) {
    const RobEntry& head = robBuf_[robHead_];
    if (head.resolved) next = std::min(next, head.completeAt);
  }
  if (!issueQueue_.empty()) next = std::min(next, issueQueue_.top().readyAt);
  if (next == kNoCycle || next <= now) return now + 1;
  return next;
}

void OooCore::resetStats() { stats_ = CoreStats{}; }

}  // namespace renuca::cpu
