// Out-of-order core model (paper Table I: 16 OoO cores @ 2.4 GHz, 128-entry
// ROB, in-order commit).
//
// Execution is event-ordered: ALU operations resolve their completion time
// at dispatch (they use no shared resources), while memory operations wait
// in an issue queue until their operands are ready and only then walk the
// memory hierarchy — so every bank/link/DRAM reservation is made in global
// time order and contention composes correctly across cores.  Dependences
// are single-producer (depDist), with producer-to-consumer wakeup.
//
// The model preserves the two properties the paper's mechanism depends on:
//
//  * dependence-limited memory-level parallelism (chained loads serialize
//    their LLC misses; independent loads overlap up to the MSHR count and
//    the ROB window), and
//  * in-order commit with ROB-head stalls — the criticality ground truth.
//
// A load is *critical* ("blocks the head of the ROB", §IV.A) when it is
// the oldest instruction and commit has been waiting on it for at least
// `headStallCycles` cycles; the small threshold absorbs the pipeline slack
// a real machine hides (an L1 hit never blocks commit in practice).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/mshr.hpp"
#include "workload/trace.hpp"

namespace renuca::cpu {

/// Memory hierarchy as seen by a core.  Implemented by sim::MemorySystem;
/// tests use lightweight fakes.
class MemorySystem {
 public:
  virtual ~MemorySystem() = default;

  struct LoadResult {
    Cycle completeAt = 0;
    bool missedL1 = false;  ///< True if the request went past L1 (holds an MSHR).
  };

  /// Demand load issued at `issueAt`; `predictedCritical` is the CPT's
  /// verdict, which the LLC placement policy consumes on a fill.
  virtual LoadResult load(CoreId core, Addr vaddr, std::uint64_t pc, Cycle issueAt,
                          bool predictedCritical) = 0;

  /// Store issued (from the store buffer) at `issueAt`; returns the cycle
  /// the cache write completes, which holds the store-buffer entry.
  virtual Cycle store(CoreId core, Addr vaddr, std::uint64_t pc, Cycle issueAt) = 0;
};

/// Criticality predictor interface (implemented by core::CriticalityPredictorTable).
class CriticalityPredictor {
 public:
  virtual ~CriticalityPredictor() = default;
  /// CPT lookup at load issue; returns the criticality verdict.
  virtual bool predict(std::uint64_t pc) = 0;
  /// True if the CPT currently has an entry for this PC (predictions from
  /// cold entries do not count toward accuracy, mirroring the paper).
  virtual bool hasEntry(std::uint64_t pc) const = 0;
  /// Commit-time training with the observed ROB-head outcome.  Returns
  /// true when the sample flipped the PC's criticality verdict — the
  /// telemetry layer turns these flips into trace instants.
  virtual bool train(std::uint64_t pc, bool stalledRobHead) = 0;
};

struct CoreConfig {
  std::uint32_t robEntries = 128;
  std::uint32_t fetchWidth = 4;
  std::uint32_t commitWidth = 4;
  std::uint32_t memIssueWidth = 4;  ///< Memory ops issued per cycle.
  std::uint32_t aluLatency = 1;
  std::uint32_t mshrEntries = 16;
  std::uint32_t storeBufferEntries = 32;
  std::uint32_t headStallCycles = 3;  ///< Blocking >= this marks a load critical.
};

struct CoreStats {
  std::uint64_t committed = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t loadsStalledHead = 0;   ///< Critical loads (ground truth).
  std::uint64_t robHeadStallCycles = 0; ///< Cycles commit was blocked by a load.
  std::uint64_t cptPredictions = 0;     ///< Predictions made from warm CPT entries.
  std::uint64_t cptCorrect = 0;         ///< ... that matched the observed outcome.
  std::uint64_t predictedCriticalLoads = 0;
  /// Training samples that flipped a PC's criticality verdict (telemetry).
  std::uint64_t cptVerdictFlips = 0;
  /// Actually-critical loads the CPT flagged in time (recall numerator;
  /// the paper's Fig 7 "accuracy" is this recall — at the 100 % threshold
  /// it reports 14.5 %, impossible for plain accuracy when >80 % of loads
  /// are non-critical).
  std::uint64_t criticalLoadsCaught = 0;
  Cycle doneCycle = 0;  ///< Cycle the instruction budget was reached.

  double nonCriticalLoadFrac() const {
    return loads ? 1.0 - static_cast<double>(loadsStalledHead) / static_cast<double>(loads)
                 : 0.0;
  }
  double cptAccuracy() const {
    return cptPredictions ? static_cast<double>(cptCorrect) / static_cast<double>(cptPredictions)
                          : 0.0;
  }
  double cptCriticalRecall() const {
    return loadsStalledHead ? static_cast<double>(criticalLoadsCaught) /
                                  static_cast<double>(loadsStalledHead)
                            : 0.0;
  }
};

class OooCore {
 public:
  /// `predictor` may be null (no criticality prediction: every load is
  /// treated as non-critical, as S-NUCA/Private/Naive need no verdict).
  OooCore(const CoreConfig& config, CoreId id, workload::InstructionSource* source,
          MemorySystem* mem, CriticalityPredictor* predictor,
          std::uint64_t instrBudget);

  /// Advances the core by one cycle: commit, head-stall bookkeeping,
  /// memory issue, dispatch.
  void tick(Cycle now);

  /// True once `instrBudget` instructions have committed.
  bool done() const { return stats_.committed >= instrBudget_; }

  /// Earliest future cycle at which this core can make progress; used by
  /// the system loop to skip dead cycles.  Returns kNoCycle when idle
  /// forever (done and ROB empty).
  Cycle nextEventCycle(Cycle now) const;

  /// True when, at the end of a tick at `now`, commit is blocked on an
  /// incomplete load at the ROB head.  The system's wake-list loop caches
  /// this: while the core sleeps (every cycle before its next event), the
  /// head cannot change or complete, so this flag is exactly what the
  /// per-cycle stall bookkeeping in commit() would have observed — the
  /// loop multiplies it by the number of skipped loop iterations instead
  /// of ticking the core just to count them.
  bool headBlockedLoadAfterTick(Cycle now) const {
    if (robCount_ == 0) return false;
    const RobEntry& head = robBuf_[robHead_];
    return head.kind == InstrKind::Load &&
           (!head.resolved || head.completeAt > now);
  }

  /// Credits ROB-head stall cycles for loop iterations this core slept
  /// through (see headBlockedLoadAfterTick).
  void addSkippedHeadStallCycles(std::uint64_t n) {
    stats_.robHeadStallCycles += n;
  }

  const CoreStats& stats() const { return stats_; }
  CoreId id() const { return id_; }
  const CoreConfig& config() const { return cfg_; }
  std::uint64_t instrBudget() const { return instrBudget_; }

  /// Instantaneous ROB occupancy (tests).
  std::size_t robOccupancy() const { return robCount_; }

  /// Resets statistics (not microarchitectural state); used to discard the
  /// warm-up phase.  The instruction budget counts from this point.
  void resetStats();

  /// When set, the core keeps fetching and executing after its budget is
  /// reached (IPC is measured at doneCycle; event counters keep accruing,
  /// which leaves per-kilo-instruction rates unbiased).  The system enables
  /// this so early-finishing cores keep generating contention until every
  /// core has reached its budget — the paper's multi-programmed methodology.
  void setRunPastBudget(bool v) { runPastBudget_ = v; }

  /// Called with (cycle, pc, nowCritical) whenever a commit-time training
  /// sample flips the PC's criticality verdict; the telemetry layer hooks
  /// this to emit trace instants.  Unset costs one branch per flip.
  void setCriticalityFlipHook(std::function<void(Cycle, std::uint64_t, bool)> hook) {
    flipHook_ = std::move(hook);
  }

  /// Instantaneous in-flight L1-miss count (MSHR occupancy gauge).
  std::uint32_t mshrInFlight(Cycle now) { return mshr_.inFlight(now); }

 private:
  static constexpr std::uint64_t kNoSeq = ~std::uint64_t{0};

  struct RobEntry {
    std::uint64_t pc = 0;
    Addr vaddr = 0;
    InstrKind kind = InstrKind::Alu;
    Cycle dispatchedAt = 0;
    Cycle completeAt = kNoCycle;      ///< kNoCycle until resolved.
    Cycle headBlockedSince = kNoCycle;
    bool resolved = false;
    bool predictedCritical = false;
    bool predictionValid = false;     ///< CPT had a warm entry at issue.
    /// Consumers waiting on this instruction's completion time, as an
    /// intrusive singly-linked list threaded through the ROB (each entry
    /// waits on at most one producer, so one next link suffices).  Wakeup
    /// walks first -> next in insertion order, exactly as the former
    /// per-entry vector did, without a heap allocation per dependence.
    std::uint64_t firstWaiter = kNoSeq;
    std::uint64_t lastWaiter = kNoSeq;
    std::uint64_t nextWaiter = kNoSeq;
  };

  RobEntry* entryFor(std::uint64_t seq);
  void commit(Cycle now);
  void issueMemory(Cycle now);
  void dispatch(Cycle now);
  /// Marks `seq` complete at `completeAt` and recursively wakes waiters.
  void resolve(std::uint64_t seq, Cycle completeAt);
  /// Walks the hierarchy for a ready memory op; returns false if a
  /// structural hazard (MSHR/store buffer) deferred it.
  bool tryIssue(std::uint64_t seq, Cycle now);

  CoreConfig cfg_;
  CoreId id_;
  workload::InstructionSource* source_;
  MemorySystem* mem_;
  CriticalityPredictor* predictor_;
  std::uint64_t instrBudget_;

  /// The ROB as a fixed ring buffer of cfg_.robEntries slots: entryFor()
  /// runs several times per instruction, and a flat array with wrap-around
  /// indexing beats std::deque's block-map arithmetic there.  robHead_ is
  /// the slot of the oldest in-flight entry; slots are reinitialized on
  /// dispatch, never deallocated.
  RobEntry& robAt(std::uint32_t offset) {
    std::uint32_t pos = robHead_ + offset;
    if (pos >= robCap_) pos -= robCap_;
    return robBuf_[pos];
  }
  std::vector<RobEntry> robBuf_;
  std::uint32_t robCap_ = 0;
  std::uint32_t robHead_ = 0;
  std::uint32_t robCount_ = 0;
  std::uint64_t headSeq_ = 0;  ///< Sequence number of the oldest ROB entry.
  std::uint64_t nextSeq_ = 0;

  mem::MshrFile mshr_;
  mem::MshrFile storeBuffer_;  ///< Reused as a time-indexed semaphore.

  /// Ready-to-issue memory ops, keyed by operand-ready time.
  struct ReadyOp {
    Cycle readyAt;
    std::uint64_t seq;
    bool operator>(const ReadyOp& o) const { return readyAt > o.readyAt; }
  };
  std::priority_queue<ReadyOp, std::vector<ReadyOp>, std::greater<ReadyOp>> issueQueue_;

  /// Completion times of recently committed instructions, indexed by
  /// sequence number, for dependences that reach behind the ROB head.
  static constexpr std::size_t kHistory = 512;
  std::vector<Cycle> history_;

  /// Scratch worklist for resolve(); a member so the buffer's capacity is
  /// reused across calls (resolve runs once per memory op and drains the
  /// list before returning).
  std::vector<std::pair<std::uint64_t, Cycle>> resolveWork_;

  CoreStats stats_;
  bool runPastBudget_ = false;
  std::function<void(Cycle, std::uint64_t, bool)> flipHook_;
};

}  // namespace renuca::cpu
