#include "tlb/tlb.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "serial/archive.hpp"

namespace renuca::tlb {

namespace {

// Canonical (sorted-by-key) serialization of a u64->u64 map so that
// save -> load -> save produces byte-identical archives.
void putSortedMap(serial::ArchiveWriter& ar,
                  const std::unordered_map<std::uint64_t, std::uint64_t>& m) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(m.begin(), m.end());
  std::sort(sorted.begin(), sorted.end());
  ar.putU64(sorted.size());
  for (const auto& [k, v] : sorted) {
    ar.putU64(k);
    ar.putU64(v);
  }
}

bool getMap(serial::ArchiveReader& ar,
            std::unordered_map<std::uint64_t, std::uint64_t>& m) {
  std::uint64_t count = ar.getU64();
  m.clear();
  m.reserve(count);
  for (std::uint64_t i = 0; i < count && ar.ok(); ++i) {
    std::uint64_t k = ar.getU64();
    std::uint64_t v = ar.getU64();
    m.emplace(k, v);
  }
  return ar.ok();
}

}  // namespace

std::uint64_t PageTable::translate(Asid asid, std::uint64_t vpn) {
  std::uint64_t k = key(asid, vpn);
  auto it = map_.find(k);
  if (it != map_.end()) return it->second;
  std::uint64_t ppn = nextPpn_++;
  map_.emplace(k, ppn);
  reverse_.emplace(ppn, k);
  return ppn;
}

std::optional<std::pair<Asid, std::uint64_t>> PageTable::ownerOf(std::uint64_t ppn) const {
  auto it = reverse_.find(ppn);
  if (it == reverse_.end()) return std::nullopt;
  std::uint64_t k = it->second;
  return std::make_pair(static_cast<Asid>(k >> 40), k & ((1ull << 40) - 1));
}

std::uint64_t PageTable::loadMbv(Asid asid, std::uint64_t vpn) const {
  auto it = mbv_.find(key(asid, vpn));
  return it == mbv_.end() ? 0 : it->second;
}

void PageTable::storeMbv(Asid asid, std::uint64_t vpn, std::uint64_t mbv) {
  mbv_[key(asid, vpn)] = mbv;
}

void PageTable::saveState(serial::ArchiveWriter& ar) const {
  ar.putU64(nextPpn_);
  putSortedMap(ar, map_);
  putSortedMap(ar, mbv_);
}

bool PageTable::loadState(serial::ArchiveReader& ar) {
  std::uint64_t nextPpn = ar.getU64();
  if (!getMap(ar, map_)) return false;
  if (!getMap(ar, mbv_)) return false;
  nextPpn_ = nextPpn;
  reverse_.clear();
  reverse_.reserve(map_.size());
  for (const auto& [k, ppn] : map_) reverse_.emplace(ppn, k);
  return ar.ok() && ar.remaining() == 0;
}

EnhancedTlb::EnhancedTlb(const TlbConfig& config, PageTable* pageTable, Asid asid,
                         std::string name)
    : cfg_(config), pageTable_(pageTable), asid_(asid),
      numSets_(config.entries / config.ways), stats_(std::move(name)) {
  RENUCA_ASSERT(pageTable_ != nullptr, "EnhancedTlb needs a page table");
  RENUCA_ASSERT(cfg_.entries % cfg_.ways == 0, "TLB entries must divide by ways");
  RENUCA_ASSERT(numSets_ > 0, "TLB must have at least one set");
  if ((numSets_ & (numSets_ - 1)) == 0) setMask_ = numSets_ - 1;
  vpns_.assign(cfg_.entries, kInvalidVpn);
  ppns_.assign(cfg_.entries, 0);
  mbvs_.assign(cfg_.entries, 0);
  lastUse_.assign(cfg_.entries, 0);
}

void EnhancedTlb::flushHotStats() const {
  auto move = [this](std::uint64_t& pending, const char* key) {
    if (pending != 0) {
      stats_.inc(key, pending);
      pending = 0;
    }
  };
  move(hot_.hits, "hits");
  move(hot_.misses, "misses");
  move(hot_.evictions, "evictions");
  move(hot_.mbvUpdates, "mbv_updates");
  move(hot_.mbvResets, "mbv_resets");
}

std::uint32_t EnhancedTlb::find(std::uint64_t vpn) const {
  // Invalid entries hold kInvalidVpn, so the scan is a pure tag compare
  // over the dense vpns_ array.
  const std::uint32_t base = setOf(vpn) * cfg_.ways;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (vpns_[base + w] == vpn) return base + w;
  }
  return kNoEntry;
}

std::uint32_t EnhancedTlb::refill(std::uint64_t vpn) {
  const std::uint32_t base = setOf(vpn) * cfg_.ways;
  // LRU victim within the set; invalid entries first.
  std::uint32_t victim = base;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (vpns_[base + w] == kInvalidVpn) {
      victim = base + w;
      break;
    }
    if (lastUse_[base + w] < lastUse_[victim]) victim = base + w;
  }
  const bool victimValid = vpns_[victim] != kInvalidVpn;
  if (victimValid && cfg_.backMbvInPageTable) {
    pageTable_->storeMbv(asid_, vpns_[victim], mbvs_[victim]);
  }
  if (victimValid) ++hot_.evictions;

  vpns_[victim] = vpn;
  ppns_[victim] = pageTable_->translate(asid_, vpn);
  mbvs_[victim] = cfg_.backMbvInPageTable ? pageTable_->loadMbv(asid_, vpn) : 0;
  lastUse_[victim] = ++useTick_;
  // Repoint the memo: if the victim entry was memoized the old mapping is
  // gone, and the refilled page is the likeliest next lookup either way.
  memoVpn_ = vpn;
  memoEntry_ = victim;
  return victim;
}

Translation EnhancedTlb::translate(Addr vaddr) {
  std::uint64_t vpn = pageOf(vaddr);
  Translation t;
  if (std::uint32_t e = lookup(vpn); e != kNoEntry) {
    lastUse_[e] = ++useTick_;
    t.tlbHit = true;
    t.latency = 0;
    t.paddr = (ppns_[e] << kPageShift) | (vaddr & (kPageBytes - 1));
    ++hot_.hits;
    return t;
  }
  ++hot_.misses;
  std::uint32_t e = refill(vpn);
  t.tlbHit = false;
  t.latency = cfg_.missLatency;
  t.paddr = (ppns_[e] << kPageShift) | (vaddr & (kPageBytes - 1));
  return t;
}

bool EnhancedTlb::mappingBit(Addr vaddr) const {
  std::uint32_t e = lookup(pageOf(vaddr));
  RENUCA_ASSERT(e != kNoEntry, "mappingBit on non-resident TLB page");
  return (mbvs_[e] >> lineIndexInPage(vaddr)) & 1ull;
}

void EnhancedTlb::setMappingBit(Addr vaddr, bool rnuca) {
  std::uint64_t vpn = pageOf(vaddr);
  std::uint64_t bit = 1ull << lineIndexInPage(vaddr);
  std::uint32_t e = lookup(vpn);
  if (e != kNoEntry) {
    if (rnuca) {
      mbvs_[e] |= bit;
    } else {
      mbvs_[e] &= ~bit;
    }
  }
  if (cfg_.backMbvInPageTable) {
    std::uint64_t backed = pageTable_->loadMbv(asid_, vpn);
    backed = rnuca ? (backed | bit) : (backed & ~bit);
    pageTable_->storeMbv(asid_, vpn, backed);
  }
  ++hot_.mbvUpdates;
}

void EnhancedTlb::saveState(serial::ArchiveWriter& ar) const {
  // Interleaved per-entry records, the layout every existing .ckpt uses.
  ar.putU32(static_cast<std::uint32_t>(vpns_.size()));
  ar.putU64(useTick_);
  for (std::size_t i = 0; i < vpns_.size(); ++i) {
    ar.putU64(vpns_[i]);
    ar.putU64(ppns_[i]);
    ar.putU64(mbvs_[i]);
    ar.putBool(vpns_[i] != kInvalidVpn);
    ar.putU64(lastUse_[i]);
  }
}

bool EnhancedTlb::loadState(serial::ArchiveReader& ar) {
  std::uint32_t count = ar.getU32();
  if (!ar.ok() || count != vpns_.size()) {
    logMessage(LogLevel::Warn, "serial",
               stats_.name() + ": snapshot entry count mismatch");
    return false;
  }
  useTick_ = ar.getU64();
  for (std::size_t i = 0; i < vpns_.size(); ++i) {
    std::uint64_t vpn = ar.getU64();
    ppns_[i] = ar.getU64();
    mbvs_[i] = ar.getU64();
    // Pre-SoA checkpoints saved whatever stale vpn an invalid entry last
    // held; normalize to the sentinel so the valid-check-free scan cannot
    // false-hit on it.
    vpns_[i] = ar.getBool() ? vpn : kInvalidVpn;
    lastUse_[i] = ar.getU64();
  }
  memoVpn_ = kInvalidVpn;
  return ar.ok() && ar.remaining() == 0;
}

void EnhancedTlb::resetMappingBitPhys(Addr paddr) {
  auto owner = pageTable_->ownerOf(pageOf(paddr));
  if (!owner || owner->first != asid_) return;
  std::uint64_t vpn = owner->second;
  std::uint64_t bit = 1ull << lineIndexInPage(paddr);
  if (std::uint32_t e = lookup(vpn); e != kNoEntry) mbvs_[e] &= ~bit;
  if (cfg_.backMbvInPageTable) {
    pageTable_->storeMbv(asid_, vpn, pageTable_->loadMbv(asid_, vpn) & ~bit);
  }
  ++hot_.mbvResets;
}

}  // namespace renuca::tlb
