#include "tlb/tlb.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "serial/archive.hpp"

namespace renuca::tlb {

namespace {

// Canonical (sorted-by-key) serialization of a u64->u64 map so that
// save -> load -> save produces byte-identical archives.
void putSortedMap(serial::ArchiveWriter& ar,
                  const std::unordered_map<std::uint64_t, std::uint64_t>& m) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(m.begin(), m.end());
  std::sort(sorted.begin(), sorted.end());
  ar.putU64(sorted.size());
  for (const auto& [k, v] : sorted) {
    ar.putU64(k);
    ar.putU64(v);
  }
}

bool getMap(serial::ArchiveReader& ar,
            std::unordered_map<std::uint64_t, std::uint64_t>& m) {
  std::uint64_t count = ar.getU64();
  m.clear();
  m.reserve(count);
  for (std::uint64_t i = 0; i < count && ar.ok(); ++i) {
    std::uint64_t k = ar.getU64();
    std::uint64_t v = ar.getU64();
    m.emplace(k, v);
  }
  return ar.ok();
}

}  // namespace

std::uint64_t PageTable::translate(Asid asid, std::uint64_t vpn) {
  std::uint64_t k = key(asid, vpn);
  auto it = map_.find(k);
  if (it != map_.end()) return it->second;
  std::uint64_t ppn = nextPpn_++;
  map_.emplace(k, ppn);
  reverse_.emplace(ppn, k);
  return ppn;
}

std::optional<std::pair<Asid, std::uint64_t>> PageTable::ownerOf(std::uint64_t ppn) const {
  auto it = reverse_.find(ppn);
  if (it == reverse_.end()) return std::nullopt;
  std::uint64_t k = it->second;
  return std::make_pair(static_cast<Asid>(k >> 40), k & ((1ull << 40) - 1));
}

std::uint64_t PageTable::loadMbv(Asid asid, std::uint64_t vpn) const {
  auto it = mbv_.find(key(asid, vpn));
  return it == mbv_.end() ? 0 : it->second;
}

void PageTable::storeMbv(Asid asid, std::uint64_t vpn, std::uint64_t mbv) {
  mbv_[key(asid, vpn)] = mbv;
}

void PageTable::saveState(serial::ArchiveWriter& ar) const {
  ar.putU64(nextPpn_);
  putSortedMap(ar, map_);
  putSortedMap(ar, mbv_);
}

bool PageTable::loadState(serial::ArchiveReader& ar) {
  std::uint64_t nextPpn = ar.getU64();
  if (!getMap(ar, map_)) return false;
  if (!getMap(ar, mbv_)) return false;
  nextPpn_ = nextPpn;
  reverse_.clear();
  reverse_.reserve(map_.size());
  for (const auto& [k, ppn] : map_) reverse_.emplace(ppn, k);
  return ar.ok() && ar.remaining() == 0;
}

EnhancedTlb::EnhancedTlb(const TlbConfig& config, PageTable* pageTable, Asid asid,
                         std::string name)
    : cfg_(config), pageTable_(pageTable), asid_(asid),
      numSets_(config.entries / config.ways), stats_(std::move(name)) {
  RENUCA_ASSERT(pageTable_ != nullptr, "EnhancedTlb needs a page table");
  RENUCA_ASSERT(cfg_.entries % cfg_.ways == 0, "TLB entries must divide by ways");
  RENUCA_ASSERT(numSets_ > 0, "TLB must have at least one set");
  entries_.resize(cfg_.entries);
  hitCount_ = stats_.counter("hits");
  missCount_ = stats_.counter("misses");
}

EnhancedTlb::Entry* EnhancedTlb::find(std::uint64_t vpn) {
  std::uint32_t set = setOf(vpn);
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Entry& e = entries_[set * cfg_.ways + w];
    if (e.valid && e.vpn == vpn) return &e;
  }
  return nullptr;
}

const EnhancedTlb::Entry* EnhancedTlb::find(std::uint64_t vpn) const {
  return const_cast<EnhancedTlb*>(this)->find(vpn);
}

EnhancedTlb::Entry& EnhancedTlb::refill(std::uint64_t vpn) {
  std::uint32_t set = setOf(vpn);
  // LRU victim within the set; invalid entries first.
  Entry* victim = &entries_[set * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Entry& e = entries_[set * cfg_.ways + w];
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (e.lastUse < victim->lastUse) victim = &e;
  }
  if (victim->valid && cfg_.backMbvInPageTable) {
    pageTable_->storeMbv(asid_, victim->vpn, victim->mbv);
  }
  if (victim->valid) stats_.inc("evictions");

  victim->vpn = vpn;
  victim->ppn = pageTable_->translate(asid_, vpn);
  victim->mbv = cfg_.backMbvInPageTable ? pageTable_->loadMbv(asid_, vpn) : 0;
  victim->valid = true;
  victim->lastUse = ++useTick_;
  return *victim;
}

Translation EnhancedTlb::translate(Addr vaddr) {
  std::uint64_t vpn = pageOf(vaddr);
  Translation t;
  if (Entry* e = find(vpn)) {
    e->lastUse = ++useTick_;
    t.tlbHit = true;
    t.latency = 0;
    t.paddr = (e->ppn << kPageShift) | (vaddr & (kPageBytes - 1));
    ++*hitCount_;
    return t;
  }
  ++*missCount_;
  Entry& e = refill(vpn);
  t.tlbHit = false;
  t.latency = cfg_.missLatency;
  t.paddr = (e.ppn << kPageShift) | (vaddr & (kPageBytes - 1));
  return t;
}

bool EnhancedTlb::mappingBit(Addr vaddr) const {
  const Entry* e = find(pageOf(vaddr));
  RENUCA_ASSERT(e != nullptr, "mappingBit on non-resident TLB page");
  return (e->mbv >> lineIndexInPage(vaddr)) & 1ull;
}

void EnhancedTlb::setMappingBit(Addr vaddr, bool rnuca) {
  std::uint64_t vpn = pageOf(vaddr);
  std::uint64_t bit = 1ull << lineIndexInPage(vaddr);
  Entry* e = find(vpn);
  if (e) {
    if (rnuca) {
      e->mbv |= bit;
    } else {
      e->mbv &= ~bit;
    }
  }
  if (cfg_.backMbvInPageTable) {
    std::uint64_t backed = pageTable_->loadMbv(asid_, vpn);
    backed = rnuca ? (backed | bit) : (backed & ~bit);
    pageTable_->storeMbv(asid_, vpn, backed);
  }
  stats_.inc("mbv_updates");
}

void EnhancedTlb::saveState(serial::ArchiveWriter& ar) const {
  ar.putU32(static_cast<std::uint32_t>(entries_.size()));
  ar.putU64(useTick_);
  for (const Entry& e : entries_) {
    ar.putU64(e.vpn);
    ar.putU64(e.ppn);
    ar.putU64(e.mbv);
    ar.putBool(e.valid);
    ar.putU64(e.lastUse);
  }
}

bool EnhancedTlb::loadState(serial::ArchiveReader& ar) {
  std::uint32_t count = ar.getU32();
  if (!ar.ok() || count != entries_.size()) {
    logMessage(LogLevel::Warn, "serial",
               stats_.name() + ": snapshot entry count mismatch");
    return false;
  }
  useTick_ = ar.getU64();
  for (Entry& e : entries_) {
    e.vpn = ar.getU64();
    e.ppn = ar.getU64();
    e.mbv = ar.getU64();
    e.valid = ar.getBool();
    e.lastUse = ar.getU64();
  }
  return ar.ok() && ar.remaining() == 0;
}

void EnhancedTlb::resetMappingBitPhys(Addr paddr) {
  auto owner = pageTable_->ownerOf(pageOf(paddr));
  if (!owner || owner->first != asid_) return;
  std::uint64_t vpn = owner->second;
  std::uint64_t bit = 1ull << lineIndexInPage(paddr);
  if (Entry* e = find(vpn)) e->mbv &= ~bit;
  if (cfg_.backMbvInPageTable) {
    pageTable_->storeMbv(asid_, vpn, pageTable_->loadMbv(asid_, vpn) & ~bit);
  }
  stats_.inc("mbv_resets");
}

}  // namespace renuca::tlb
