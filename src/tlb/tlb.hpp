// Enhanced TLB with per-line Mapping Bit Vectors (paper §IV.C).
//
// Each TLB entry is a conventional VPN->PPN translation augmented with a
// 64-bit Mapping Bit Vector (MBV): one bit per 64 B line of the 4 KB page.
// Bit = 0 means the line is (or will be) placed with S-NUCA; bit = 1 means
// R-NUCA.  The LLC controller reads the bit *before* accessing the LLC
// (the TLB is consulted early in the memory pipeline), and the fill path
// writes it when a line is allocated.  A line's bit is reset to 0 when the
// line is evicted from the LLC.
//
// The paper does not specify what happens to MBV state across TLB
// evictions; since a resident LLC line must remain locatable, we back the
// MBV in the page table (write-through) and reload it on refill.  This
// costs no extra traffic in the model and is the conservative-correct
// choice; tlb tests cover both the backed and unbacked configurations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "serial/checkpointable.hpp"

namespace renuca::tlb {

struct TlbConfig {
  std::uint32_t entries = 64;
  std::uint32_t ways = 8;
  std::uint32_t missLatency = 20;  ///< Page-walk latency in cycles.
  bool backMbvInPageTable = true;  ///< Preserve MBV across TLB evictions.
};

/// First-touch physical page allocator with a reverse map.  Deterministic:
/// pages get consecutive PPNs in first-access order, so a seeded run is
/// exactly reproducible.  Also owns the MBV backing store.
class PageTable : public serial::Checkpointable {
 public:
  /// Translates (asid, vpn) -> ppn, allocating on first touch.
  std::uint64_t translate(Asid asid, std::uint64_t vpn);

  /// Reverse lookup: which (asid, vpn) owns this ppn?  Returns nullopt for
  /// never-allocated pages.
  std::optional<std::pair<Asid, std::uint64_t>> ownerOf(std::uint64_t ppn) const;

  std::uint64_t loadMbv(Asid asid, std::uint64_t vpn) const;
  void storeMbv(Asid asid, std::uint64_t vpn, std::uint64_t mbv);

  std::uint64_t allocatedPages() const { return nextPpn_; }

  // Serializes the allocation map (sorted by key for canonical bytes), the
  // MBV backing store, and the PPN allocator cursor; the reverse map is
  // rebuilt on load.
  void saveState(serial::ArchiveWriter& ar) const override;
  bool loadState(serial::ArchiveReader& ar) override;

 private:
  static std::uint64_t key(Asid asid, std::uint64_t vpn) {
    return (static_cast<std::uint64_t>(asid) << 40) | vpn;
  }
  std::unordered_map<std::uint64_t, std::uint64_t> map_;      // key -> ppn
  std::unordered_map<std::uint64_t, std::uint64_t> reverse_;  // ppn -> key
  std::unordered_map<std::uint64_t, std::uint64_t> mbv_;      // key -> MBV bits
  std::uint64_t nextPpn_ = 1;  // ppn 0 reserved
};

struct Translation {
  Addr paddr = 0;
  bool tlbHit = false;
  std::uint32_t latency = 0;  ///< 0 on hit, missLatency on miss.
};

class EnhancedTlb : public serial::Checkpointable {
 public:
  EnhancedTlb(const TlbConfig& config, PageTable* pageTable, Asid asid,
              std::string name);

  /// Translates a virtual address, refilling the TLB on a miss.
  Translation translate(Addr vaddr);

  /// Reads the MBV bit for the line containing `vaddr`.  The page must be
  /// TLB-resident (call translate first); enforced by assertion.
  bool mappingBit(Addr vaddr) const;

  /// Sets the MBV bit for the line containing `vaddr` (write-through to
  /// the page table when backing is enabled).
  void setMappingBit(Addr vaddr, bool rnuca);

  /// Clears the MBV bit for a line given its *physical* address — called
  /// by the LLC when it evicts the line.  Updates the TLB copy if the page
  /// is resident and always updates the backing store.
  void resetMappingBitPhys(Addr paddr);

  // Reading the stats first syncs the batched hot-path counters (hits,
  // misses, evictions, MBV traffic) into the string-keyed set.
  const StatSet& stats() const {
    flushHotStats();
    return stats_;
  }
  const TlbConfig& config() const { return cfg_; }

  // Serializes the translation entries (VPN/PPN/MBV/valid/recency) and the
  // recency tick; statistics are excluded (see serial/checkpointable.hpp).
  void saveState(serial::ArchiveWriter& ar) const override;
  bool loadState(serial::ArchiveReader& ar) override;

 private:
  // Entry metadata in struct-of-arrays layout: translate()'s way scan walks
  // the dense vpns_ array only.  Invalid entries hold kInvalidVpn (a value
  // outside the 52-bit VPN space), so the scan needs no valid check; an
  // entry is valid iff its vpn differs from the sentinel.
  static constexpr std::uint64_t kInvalidVpn = ~std::uint64_t{0};
  static constexpr std::uint32_t kNoEntry = ~std::uint32_t{0};

  std::uint32_t setOf(std::uint64_t vpn) const {
    // Power-of-two set counts (every real TLB geometry) index with a mask
    // instead of a division — translate() runs once per memory access.
    return static_cast<std::uint32_t>(setMask_ != 0 || numSets_ == 1 ? vpn & setMask_
                                                                     : vpn % numSets_);
  }
  /// Index of `vpn`'s entry, or kNoEntry.
  std::uint32_t find(std::uint64_t vpn) const;
  /// find() behind a one-entry memo: consecutive accesses to the same 4 KB
  /// page (the common case for any striding access stream) skip the way
  /// scan.  Purely an index cache — hit bookkeeping (recency, counters)
  /// still happens at every call site, so behavior is identical.  refill()
  /// repoints the memo and loadState() drops it, the only two places an
  /// entry's VPN changes.
  std::uint32_t lookup(std::uint64_t vpn) const {
    if (vpn == memoVpn_) return memoEntry_;
    const std::uint32_t e = find(vpn);
    if (e != kNoEntry) {
      memoVpn_ = vpn;
      memoEntry_ = e;
    }
    return e;
  }
  /// Installs `vpn` over the set's LRU victim; returns the entry index.
  std::uint32_t refill(std::uint64_t vpn);

  TlbConfig cfg_;
  PageTable* pageTable_;
  Asid asid_;
  std::uint32_t numSets_;
  /// numSets_ - 1 when numSets_ is a power of two, else 0 (modulo fallback).
  std::uint32_t setMask_ = 0;
  std::vector<std::uint64_t> vpns_;     // kInvalidVpn = entry invalid
  std::vector<std::uint64_t> ppns_;
  std::vector<std::uint64_t> mbvs_;
  std::vector<std::uint64_t> lastUse_;
  /// lookup() memo; mutable so const readers (mappingBit) can refresh it.
  mutable std::uint64_t memoVpn_ = kInvalidVpn;
  mutable std::uint32_t memoEntry_ = 0;
  std::uint64_t useTick_ = 0;
  /// Per-access counters batched as plain members (translate runs once per
  /// memory access); stats() flushes the pending deltas into stats_.
  struct HotCounters {
    std::uint64_t hits = 0, misses = 0, evictions = 0;
    std::uint64_t mbvUpdates = 0, mbvResets = 0;
  };
  void flushHotStats() const;
  mutable HotCounters hot_;
  mutable StatSet stats_;
};

}  // namespace renuca::tlb
