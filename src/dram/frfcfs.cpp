#include "dram/frfcfs.hpp"

#include <algorithm>
#include <limits>

#include "common/log.hpp"

namespace renuca::dram {

FrFcfsQueue::FrFcfsQueue(const DramConfig& config) : cfg_(config) {}

void FrFcfsQueue::push(const MemRequest& request) { queue_.push_back(request); }

std::vector<ServicedRequest> FrFcfsQueue::drainAll() {
  std::vector<ServicedRequest> out;
  out.reserve(queue_.size());

  std::vector<BankState> banks(cfg_.totalBanks());
  std::vector<Cycle> busBusy(cfg_.channels, 0);
  std::vector<bool> done(queue_.size(), false);
  std::size_t remaining = queue_.size();
  Cycle now = 0;

  while (remaining > 0) {
    // Scheduling epoch: the earliest instant any pending request could
    // begin service (its arrival, or its bank freeing up — whichever is
    // later).  FR-FCFS then chooses among everything that has *arrived*
    // by that epoch: row hits first, then oldest.
    Cycle epoch = std::numeric_limits<Cycle>::max();
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (done[i]) continue;
      const MemRequest& r = queue_[i];
      DramAddr a = mapAddress(r.paddr, cfg_);
      Cycle start = std::max(r.arrival, banks[a.flatBank(cfg_)].busyUntil);
      epoch = std::min(epoch, start);
    }
    RENUCA_ASSERT(epoch != std::numeric_limits<Cycle>::max(),
                  "drainAll stuck with no candidates");
    now = std::max(now, epoch);

    std::size_t bestHit = queue_.size(), bestAny = queue_.size();
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (done[i]) continue;
      const MemRequest& r = queue_[i];
      if (r.arrival > now) continue;
      DramAddr a = mapAddress(r.paddr, cfg_);
      const BankState& b = banks[a.flatBank(cfg_)];
      bool hit = b.rowOpen && b.openRow == a.row;
      if (hit && (bestHit == queue_.size() || r.arrival < queue_[bestHit].arrival)) {
        bestHit = i;
      }
      if (bestAny == queue_.size() || r.arrival < queue_[bestAny].arrival) {
        bestAny = i;
      }
    }
    std::size_t pick = bestHit != queue_.size() ? bestHit : bestAny;
    RENUCA_ASSERT(pick != queue_.size(), "no arrived candidate at epoch");

    const MemRequest& r = queue_[pick];
    DramAddr a = mapAddress(r.paddr, cfg_);
    BankState& bank = banks[a.flatBank(cfg_)];

    Cycle start = std::max(now, bank.busyUntil);
    bool rowHit = bank.rowOpen && bank.openRow == a.row;
    Cycle columnReady;
    if (rowHit) {
      columnReady = start + cfg_.tCl;
    } else if (!bank.rowOpen) {
      columnReady = start + cfg_.tRcd + cfg_.tCl;
    } else {
      columnReady = start + cfg_.tRp + cfg_.tRcd + cfg_.tCl;
    }
    bank.rowOpen = true;
    bank.openRow = a.row;

    Cycle busStart = std::max(columnReady, busBusy[a.channel]);
    Cycle finish = busStart + cfg_.tBurst;
    busBusy[a.channel] = finish;
    bank.busyUntil = finish;

    out.push_back(ServicedRequest{r, start, finish, rowHit});
    done[pick] = true;
    --remaining;
    // Time only moves forward as requests are dispatched; concurrent banks
    // are captured by per-bank busyUntil.
    now = std::max(now, start);
  }

  queue_.clear();
  return out;
}

}  // namespace renuca::dram
