// Queue-based First-Ready, First-Come-First-Served memory scheduler.
//
// This is the reference implementation of the paper's FR-FCFS policy: at
// every scheduling decision the controller picks, among queued requests,
// first a row-buffer *hit* for a bank that is ready (oldest such request),
// otherwise the oldest request overall.  The system simulator uses the
// faster occupancy model in dram.hpp; this component exists so the policy
// itself is implemented, testable, and benchmarkable (see
// tests/test_dram.cpp and bench_micro_components).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "dram/dram.hpp"

namespace renuca::dram {

struct MemRequest {
  Addr paddr = 0;
  AccessType type = AccessType::Read;
  Cycle arrival = 0;
  std::uint64_t id = 0;  ///< Caller-chosen tag, preserved in the result.
};

struct ServicedRequest {
  MemRequest request;
  Cycle serviceStart = 0;
  Cycle done = 0;
  bool rowHit = false;
};

class FrFcfsQueue {
 public:
  explicit FrFcfsQueue(const DramConfig& config);

  void push(const MemRequest& request);
  std::size_t pending() const { return queue_.size(); }

  /// Services every queued request, honouring arrival times and the
  /// FR-FCFS priority rule; returns the requests in service order.
  std::vector<ServicedRequest> drainAll();

 private:
  struct BankState {
    bool rowOpen = false;
    std::uint64_t openRow = 0;
    Cycle busyUntil = 0;
  };

  DramConfig cfg_;
  std::vector<MemRequest> queue_;
};

}  // namespace renuca::dram
