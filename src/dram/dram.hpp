// DDR3-style main memory model (paper Table I: JEDEC-DDR3, 16 GB, 4
// channels, 2 ranks/channel, 8 banks/rank, FR-FCFS scheduling).
//
// Two models share the address mapping and bank-timing parameters:
//
//  * DramController — the fast "occupancy" model used inside the system
//    simulator.  Requests are serviced in arrival order; per-bank open-row
//    state gives row hits/misses/conflicts their DDR3 latencies, and
//    per-bank plus per-channel-bus busy-until reservations provide
//    queueing.  FR-FCFS's row-hit-first reordering is approximated by the
//    open-page policy (arrival order is already row-batched for streams).
//
//  * FrFcfsQueue (frfcfs.hpp) — a faithful queue-based First-Ready
//    FCFS scheduler, used by unit tests and micro-benchmarks to validate
//    the scheduling policy itself.
//
// All timings are expressed in CPU cycles at 2.4 GHz.
#pragma once

#include <cstdint>
#include <vector>

#include "common/busy_calendar.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "serial/checkpointable.hpp"

namespace renuca::dram {

enum class PagePolicy : std::uint8_t {
  Open,    ///< Rows stay open after an access (row-buffer hits possible).
  Closed,  ///< Auto-precharge after every access (uniform latency).
};

struct DramConfig {
  std::uint32_t channels = 4;
  std::uint32_t ranksPerChannel = 2;
  std::uint32_t banksPerRank = 8;
  std::uint32_t rowBytes = 8192;
  // DDR3-1600-ish timings converted to 2.4 GHz CPU cycles (~13.75 ns each).
  std::uint32_t tRcd = 33;   ///< Activate -> column command.
  std::uint32_t tRp = 33;    ///< Precharge.
  std::uint32_t tCl = 33;    ///< Column access (CAS) latency.
  std::uint32_t tBurst = 12; ///< 64 B burst on the data bus.
  PagePolicy pagePolicy = PagePolicy::Open;
  /// Refresh: every tRefi cycles each bank is unavailable for tRfc cycles
  /// (DDR3: tREFI 7.8 us ~ 18720 cycles, tRFC ~ 260 ns ~ 624 cycles at
  /// 2.4 GHz).  0 disables refresh (the default model, matching the fast
  /// occupancy abstraction).
  std::uint32_t tRefi = 0;
  std::uint32_t tRfc = 624;

  std::uint32_t totalBanks() const { return channels * ranksPerChannel * banksPerRank; }
};

/// Decomposed DRAM coordinates for one cache-line address.
struct DramAddr {
  std::uint32_t channel = 0;
  std::uint32_t rank = 0;
  std::uint32_t bank = 0;
  std::uint64_t row = 0;
  /// Flat bank index across channels/ranks.
  std::uint32_t flatBank(const DramConfig& cfg) const {
    return (channel * cfg.ranksPerChannel + rank) * cfg.banksPerRank + bank;
  }
};

/// Line-interleaved address mapping with a column-in-row window so that
/// streams enjoy row-buffer hits: [offset 6][ch 2][col 5][bank 3][rank 1][row ...].
DramAddr mapAddress(Addr paddr, const DramConfig& cfg);

class DramController : public serial::Checkpointable {
 public:
  explicit DramController(const DramConfig& config);

  /// Services one 64 B request arriving at `now`; returns the completion
  /// cycle (data fully transferred).  Writes are modelled with the same
  /// bank/bus occupancy as reads.
  Cycle access(Addr paddr, AccessType type, Cycle now);

  const DramConfig& config() const { return cfg_; }
  const StatSet& stats() const { return stats_; }
  double rowHitRate() const;

  // Checkpointing: only per-bank open-row registers ride along.  Busy-until
  // calendars and statistics are transient timing state, excluded by the
  // serialization contract (they are pristine at the snapshot point — the
  // untimed warm-up never reserves a bank or a bus).
  void saveState(serial::ArchiveWriter& ar) const override;
  bool loadState(serial::ArchiveReader& ar) override;

 private:
  struct BankState {
    bool rowOpen = false;
    std::uint64_t openRow = 0;
    BusyCalendar busy;
  };

  DramConfig cfg_;
  std::vector<BankState> banks_;   // flat bank index
  std::vector<BusyCalendar> busBusy_;  // per channel
  StatSet stats_;
  // Handles into stats_ for the per-access counters (hot path).
  std::uint64_t* rowHits_ = nullptr;
  std::uint64_t* rowMisses_ = nullptr;
  std::uint64_t* rowConflicts_ = nullptr;
  std::uint64_t* readCount_ = nullptr;
  std::uint64_t* writeCount_ = nullptr;
};

}  // namespace renuca::dram
