#include "dram/dram.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "serial/archive.hpp"

namespace renuca::dram {

DramAddr mapAddress(Addr paddr, const DramConfig& cfg) {
  std::uint64_t b = lineOf(paddr);
  DramAddr a;
  a.channel = static_cast<std::uint32_t>(b % cfg.channels);
  b /= cfg.channels;
  std::uint64_t colLines = std::max<std::uint64_t>(1, (cfg.rowBytes / kLineBytes) / 4);
  b /= colLines;  // column-within-row window (consecutive lines share a row)
  a.bank = static_cast<std::uint32_t>(b % cfg.banksPerRank);
  b /= cfg.banksPerRank;
  a.rank = static_cast<std::uint32_t>(b % cfg.ranksPerChannel);
  b /= cfg.ranksPerChannel;
  a.row = b;
  // Bank-permutation hash (Zhang et al., MICRO'00): fold several row-bit
  // groups into the bank index so that power-of-two strides — e.g. an LLC
  // fill and the eviction it triggers, always one cache-capacity apart —
  // do not ping-pong two rows in one bank.  Bijective per row, so the
  // mapping stays 1:1.
  std::uint64_t fold = a.row ^ (a.row >> 3) ^ (a.row >> 6) ^ (a.row >> 9);
  a.bank = static_cast<std::uint32_t>((a.bank ^ fold) % cfg.banksPerRank);
  return a;
}

DramController::DramController(const DramConfig& config)
    : cfg_(config), banks_(config.totalBanks()), busBusy_(config.channels),
      stats_("dram") {
  RENUCA_ASSERT(cfg_.channels > 0 && cfg_.ranksPerChannel > 0 && cfg_.banksPerRank > 0,
                "DRAM geometry must be non-zero");
  rowHits_ = stats_.counter("row_hits");
  rowMisses_ = stats_.counter("row_misses");
  rowConflicts_ = stats_.counter("row_conflicts");
  readCount_ = stats_.counter("reads");
  writeCount_ = stats_.counter("writes");
}

Cycle DramController::access(Addr paddr, AccessType type, Cycle now) {
  DramAddr a = mapAddress(paddr, cfg_);
  BankState& bank = banks_[a.flatBank(cfg_)];

  // Refresh: delay requests that land inside a bank's refresh window.
  if (cfg_.tRefi > 0) {
    Cycle intoPeriod = now % cfg_.tRefi;
    if (intoPeriod < cfg_.tRfc) {
      now += cfg_.tRfc - intoPeriod;
      stats_.inc("refresh_stalls");
    }
  }

  // Row-buffer state is sequenced in processing order (an approximation;
  // the reservation calendar handles the timing overlap exactly).
  Cycle bankCycles;
  if (cfg_.pagePolicy == PagePolicy::Closed) {
    // Auto-precharge: every access activates a closed row; the precharge
    // overlaps the next gap, so the visible cost is tRCD + tCL.
    ++*rowMisses_;
    bankCycles = cfg_.tRcd + cfg_.tCl;
    bank.rowOpen = false;
  } else if (bank.rowOpen && bank.openRow == a.row) {
    ++*rowHits_;
    bankCycles = cfg_.tCl;
  } else if (!bank.rowOpen) {
    ++*rowMisses_;
    bankCycles = cfg_.tRcd + cfg_.tCl;
  } else {
    ++*rowConflicts_;
    bankCycles = cfg_.tRp + cfg_.tRcd + cfg_.tCl;
  }
  if (cfg_.pagePolicy == PagePolicy::Open) {
    bank.rowOpen = true;
    bank.openRow = a.row;
  }

  Cycle start = bank.busy.reserve(now, bankCycles + cfg_.tBurst);
  Cycle columnReady = start + bankCycles;
  Cycle busStart = busBusy_[a.channel].reserve(columnReady, cfg_.tBurst);
  Cycle done = busStart + cfg_.tBurst;

  ++*(type == AccessType::Read ? readCount_ : writeCount_);
  return done;
}

void DramController::saveState(serial::ArchiveWriter& ar) const {
  ar.putU32(static_cast<std::uint32_t>(banks_.size()));
  for (const BankState& b : banks_) {
    ar.putBool(b.rowOpen);
    ar.putU64(b.openRow);
  }
}

bool DramController::loadState(serial::ArchiveReader& ar) {
  std::uint32_t count = ar.getU32();
  if (!ar.ok() || count != banks_.size()) {
    logMessage(LogLevel::Warn, "serial", "dram: snapshot bank count mismatch");
    return false;
  }
  for (BankState& b : banks_) {
    b.rowOpen = ar.getBool();
    b.openRow = ar.getU64();
  }
  return ar.ok() && ar.remaining() == 0;
}

double DramController::rowHitRate() const {
  std::uint64_t hits = stats_.get("row_hits");
  std::uint64_t total = hits + stats_.get("row_misses") + stats_.get("row_conflicts");
  return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
}

}  // namespace renuca::dram
