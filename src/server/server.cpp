#include "server/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/log.hpp"
#include "server/client.hpp"
#include "server/jobspec.hpp"
#include "sim/report.hpp"
#include "telemetry/prometheus.hpp"

namespace renuca::server {

namespace {

constexpr int kPollMs = 200;

bool setNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string errnoString() { return std::strerror(errno); }

/// Splits "host:port"; empty or "*" host means any interface.
bool splitHostPort(const std::string& s, std::string& host, std::uint16_t& port) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos) return false;
  host = s.substr(0, colon);
  const std::string portStr = s.substr(colon + 1);
  if (portStr.empty()) return false;
  unsigned long p = 0;
  for (char c : portStr) {
    if (c < '0' || c > '9') return false;
    p = p * 10 + static_cast<unsigned long>(c - '0');
    if (p > 65535) return false;
  }
  port = static_cast<std::uint16_t>(p);
  return true;
}

void histogramJson(std::ostringstream& os, const Histogram& h) {
  os << "{\"count\": " << h.total() << ", \"p50\": " << h.percentile(0.50)
     << ", \"p90\": " << h.percentile(0.90) << ", \"p99\": " << h.percentile(0.99)
     << "}";
}

}  // namespace

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      pool_(std::make_unique<ThreadPool>(sim::resolveJobs(cfg_.jobs))),
      queueDepthHist_(1.0, cfg_.maxQueue + 2),
      latencyHist_(/*bucketWidth=*/25.0, /*numBuckets=*/4096),
      queueWaitHist_(/*bucketWidth=*/25.0, /*numBuckets=*/4096),
      execHist_(/*bucketWidth=*/25.0, /*numBuckets=*/4096),
      startTime_(std::chrono::steady_clock::now()) {
  if (cfg_.workerName.empty()) {
    cfg_.workerName = "w" + std::to_string(static_cast<long>(::getpid()));
  }
  if (!cfg_.traceJsonPath.empty()) {
    jobTracer_ =
        std::make_unique<telemetry::TraceWriter>(cfg_.traceJsonPath, 1);
    if (jobTracer_->ok()) {
      jobTracer_->nameProcess(1, "jobs");
    } else {
      jobTracer_.reset();
    }
  }
  if (pipe(wakePipe_) != 0) {
    logMessage(LogLevel::Error, "server", "pipe() failed: " + errnoString());
    wakePipe_[0] = wakePipe_[1] = -1;
  } else {
    setNonBlocking(wakePipe_[0]);
    setNonBlocking(wakePipe_[1]);
  }
  accepted_ = metrics_.counter("server/accepted");
  rejected_ = metrics_.counter("server/rejected");
  protocolErrors_ = metrics_.counter("server/protocol_errors");
  metrics_.gauge("server/inflight",
                 [this] { return static_cast<double>(inflightA_.load()); });
  metrics_.gauge("server/completed",
                 [this] { return static_cast<double>(completedA_.load()); });
  metrics_.gauge("server/failed",
                 [this] { return static_cast<double>(failedA_.load()); });
  metrics_.gauge("server/queue_depth",
                 [this] { return static_cast<double>(queueDepthA_.load()); });
  metrics_.gauge("server/sessions",
                 [this] { return static_cast<double>(sessionsA_.load()); });
}

Server::~Server() {
  for (auto& [id, s] : sessions_) {
    if (s.fd >= 0) ::close(s.fd);
  }
  for (int fd : listenFds_) ::close(fd);
  {
    std::lock_guard<std::mutex> lk(adoptMutex_);
    for (int fd : adopted_) ::close(fd);
    for (int fd : adoptedCoord_) ::close(fd);
  }
  if (wakePipe_[0] >= 0) ::close(wakePipe_[0]);
  if (wakePipe_[1] >= 0) ::close(wakePipe_[1]);
}

bool Server::listen() {
  if (!cfg_.socketPath.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.socketPath.size() >= sizeof(addr.sun_path)) {
      logMessage(LogLevel::Error, "server",
                 "socket path too long: " + cfg_.socketPath);
      return false;
    }
    std::memcpy(addr.sun_path, cfg_.socketPath.c_str(), cfg_.socketPath.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      logMessage(LogLevel::Error, "server", "socket(AF_UNIX): " + errnoString());
      return false;
    }
    ::unlink(cfg_.socketPath.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 128) != 0 || !setNonBlocking(fd)) {
      logMessage(LogLevel::Error, "server",
                 "bind/listen " + cfg_.socketPath + ": " + errnoString());
      ::close(fd);
      return false;
    }
    listenFds_.push_back(fd);
    logMessage(LogLevel::Info, "server", "listening on " + cfg_.socketPath);
  }
  if (!cfg_.listenHostPort.empty()) {
    std::string host;
    std::uint16_t port = 0;
    if (!splitHostPort(cfg_.listenHostPort, host, port)) {
      logMessage(LogLevel::Error, "server",
                 "bad listen address '" + cfg_.listenHostPort + "' (want host:port)");
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (host.empty() || host == "*") {
      addr.sin_addr.s_addr = htonl(INADDR_ANY);
    } else if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      logMessage(LogLevel::Error, "server", "bad listen host '" + host + "'");
      return false;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      logMessage(LogLevel::Error, "server", "socket(AF_INET): " + errnoString());
      return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 128) != 0 || !setNonBlocking(fd)) {
      logMessage(LogLevel::Error, "server",
                 "bind/listen " + cfg_.listenHostPort + ": " + errnoString());
      ::close(fd);
      return false;
    }
    listenFds_.push_back(fd);
    logMessage(LogLevel::Info, "server", "listening on " + cfg_.listenHostPort);
  }
  if (listenFds_.empty()) {
    logMessage(LogLevel::Error, "server", "no listeners configured");
    return false;
  }
  return true;
}

void Server::adoptConnection(int fd) {
  setNonBlocking(fd);
  {
    std::lock_guard<std::mutex> lk(adoptMutex_);
    adopted_.push_back(fd);
  }
  wake();
}

void Server::adoptCoordinator(int fd) {
  setNonBlocking(fd);
  {
    std::lock_guard<std::mutex> lk(adoptMutex_);
    adoptedCoord_.push_back(fd);
  }
  wake();
}

void Server::requestStop() {
  stopFlag_.store(true, std::memory_order_relaxed);
  // write() is on the async-signal-safe list; the byte's only job is to
  // interrupt poll().
  if (wakePipe_[1] >= 0) {
    const char b = 's';
    [[maybe_unused]] ssize_t n = ::write(wakePipe_[1], &b, 1);
  }
}

void Server::wake() {
  if (wakePipe_[1] >= 0) {
    const char b = 'w';
    [[maybe_unused]] ssize_t n = ::write(wakePipe_[1], &b, 1);
  }
}

void Server::postOutgoing(std::uint64_t sessionId, Message m) {
  {
    std::lock_guard<std::mutex> lk(outgoingMutex_);
    outgoing_.push_back(Outgoing{sessionId, std::move(m)});
  }
  wake();
}

void Server::drainAdopted() {
  std::vector<int> fds;
  std::vector<int> coordFds;
  {
    std::lock_guard<std::mutex> lk(adoptMutex_);
    fds.swap(adopted_);
    coordFds.swap(adoptedCoord_);
  }
  for (int fd : fds) addSession(fd);
  for (int fd : coordFds) {
    Session& s = addSession(fd);
    s.coordinator = true;
    coordSessionId_ = s.id;
    lastHeartbeat_ = std::chrono::steady_clock::now();
    registerWithCoordinator(s);
  }
}

void Server::drainOutgoing() {
  std::deque<Outgoing> batch;
  {
    std::lock_guard<std::mutex> lk(outgoingMutex_);
    batch.swap(outgoing_);
  }
  for (Outgoing& o : batch) {
    auto it = sessions_.find(o.sessionId);
    if (it == sessions_.end()) continue;  // Client left; drop its events.
    if (o.msg.op == Op::Report && it->second.inflight > 0) --it->second.inflight;
    sendMessage(it->second, o.msg);
  }
}

Server::Session& Server::addSession(int fd) {
  Session s;
  s.fd = fd;
  s.id = nextSessionId_++;
  s.lastActive = std::chrono::steady_clock::now();
  auto [it, inserted] = sessions_.emplace(s.id, std::move(s));
  sessionsA_.store(sessions_.size(), std::memory_order_relaxed);
  return it->second;
}

void Server::acceptPending(int listenFd) {
  for (;;) {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (drained) or a transient error; poll will retry.
    }
    setNonBlocking(fd);
    addSession(fd);
  }
}

void Server::sendMessage(Session& s, const Message& m) {
  if (s.dead) return;
  const std::vector<std::uint8_t> frame = encodeFrame(m);
  s.out.insert(s.out.end(), frame.begin(), frame.end());
  if (s.out.size() - s.outOff > cfg_.maxWriteBuffer) {
    logMessage(LogLevel::Warn, "server",
               "session " + std::to_string(s.id) + ": write backlog over " +
                   std::to_string(cfg_.maxWriteBuffer) + " bytes, dropping client");
    s.dead = true;
  }
}

bool Server::flushSession(Session& s) {
  while (s.outOff < s.out.size()) {
    const std::size_t chunk = s.out.size() - s.outOff;
    const ssize_t n =
        ::send(s.fd, s.out.data() + s.outOff, chunk, MSG_NOSIGNAL);
    if (n > 0) {
      s.outOff += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    return false;  // Peer gone.
  }
  if (s.outOff == s.out.size()) {
    s.out.clear();
    s.outOff = 0;
  } else if (s.outOff > (1u << 20)) {
    s.out.erase(s.out.begin(), s.out.begin() + static_cast<std::ptrdiff_t>(s.outOff));
    s.outOff = 0;
  }
  return true;
}

bool Server::readSession(Session& s) {
  for (;;) {
    std::uint8_t tmp[65536];
    const ssize_t n = ::recv(s.fd, tmp, sizeof(tmp), 0);
    if (n > 0) {
      s.in.insert(s.in.end(), tmp, tmp + n);
      s.lastActive = std::chrono::steady_clock::now();
      if (static_cast<std::size_t>(n) < sizeof(tmp)) break;
      continue;
    }
    if (n == 0) return false;  // EOF.
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  for (;;) {
    Message m;
    std::string err;
    switch (decodeFrame(s.in, cfg_.maxFrameBytes, m, err)) {
      case DecodeStatus::NeedMore:
        return true;
      case DecodeStatus::Frame:
        handleMessage(s, m);
        break;
      case DecodeStatus::BadPayload: {
        // The frame boundary was sound, only the payload is damaged: tell
        // the client and keep the session — the next frame decodes fine.
        protocolErrors_.inc();
        Message reply;
        reply.op = Op::Error;
        reply.requestId = m.requestId;  // Best effort; 0 if the head died.
        reply.text = err;
        sendMessage(s, reply);
        logMessage(LogLevel::Warn, "server",
                   "session " + std::to_string(s.id) + ": " + err);
        break;
      }
      case DecodeStatus::Fatal:
        protocolErrors_.inc();
        logMessage(LogLevel::Warn, "server",
                   "session " + std::to_string(s.id) + ": " + err + "; closing");
        return false;
    }
    if (s.dead) return true;  // Flagged mid-loop; let the main loop close it.
  }
}

void Server::handleSubmit(Session& s, const Message& m, bool lease) {
  // A LEASE is a SUBMIT whose job id the coordinator owns: every reply
  // echoes m.jobId (the fleet-global id) so the coordinator can route the
  // result, and rejections carry an ErrCode it can act on (BUSY = try
  // another worker, SIM = the spec itself is bad — don't retry).
  Message reply;
  reply.requestId = m.requestId;
  if (lease) reply.jobId = m.jobId;
  if (draining_) {
    reply.op = Op::Busy;
    reply.errorCode = ErrCode::Busy;
    reply.text = "server is draining";
    rejected_.inc();
    sendMessage(s, reply);
    return;
  }
  sim::Job job;
  std::string err;
  if (!parseJobSpec(m.text, job, err)) {
    reply.op = Op::Error;
    reply.errorCode = ErrCode::Sim;
    reply.text = err;
    rejected_.inc();
    sendMessage(s, reply);
    return;
  }
  std::size_t depth = 0;
  const std::uint64_t jobId = nextJobId_;
  const std::uint64_t wireJobId = lease ? m.jobId : jobId;
  {
    std::lock_guard<std::mutex> lk(queueMutex_);
    if (pending_.size() >= cfg_.maxQueue) {
      reply.op = Op::Busy;
      reply.errorCode = ErrCode::Busy;
      reply.text = "job queue full (" + std::to_string(cfg_.maxQueue) + ")";
      rejected_.inc();
      sendMessage(s, reply);
      return;
    }
    QueuedJob q;
    q.jobId = jobId;
    q.wireJobId = wireJobId;
    q.sessionId = s.id;
    q.requestId = m.requestId;
    q.submitted = std::chrono::steady_clock::now();
    q.job = std::move(job);
    pending_.push_back(std::move(q));
    depth = pending_.size();
  }
  nextJobId_++;
  queueCv_.notify_one();
  queueDepthA_.store(depth, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(statsMutex_);
    queueDepthHist_.add(static_cast<double>(depth));
  }
  accepted_.inc();
  s.inflight++;
  reply.op = Op::Accepted;
  reply.jobId = wireJobId;
  sendMessage(s, reply);
  Message status;
  status.op = Op::Status;
  status.requestId = m.requestId;
  status.jobId = wireJobId;
  status.state = JobState::Queued;
  sendMessage(s, status);
}

void Server::handleMessage(Session& s, const Message& m) {
  switch (m.op) {
    case Op::Submit:
      handleSubmit(s, m, /*lease=*/false);
      return;
    case Op::Lease: {
      if (!s.coordinator) {
        protocolErrors_.inc();
        Message reply;
        reply.op = Op::Error;
        reply.requestId = m.requestId;
        reply.jobId = m.jobId;
        reply.errorCode = ErrCode::Sim;
        reply.text = "LEASE on a non-coordinator session";
        sendMessage(s, reply);
        return;
      }
      handleSubmit(s, m, /*lease=*/true);
      return;
    }
    case Op::Pong:
      return;  // Keepalive reply; nothing to do.
    case Op::Stats: {
      Message reply;
      reply.op = Op::StatsReply;
      reply.requestId = m.requestId;
      reply.text = statsJson();
      sendMessage(s, reply);
      return;
    }
    case Op::Shutdown: {
      Message reply;
      reply.op = Op::Accepted;
      reply.requestId = m.requestId;
      reply.text = "draining";
      sendMessage(s, reply);
      logMessage(LogLevel::Info, "server",
                 "shutdown requested by session " + std::to_string(s.id));
      requestStop();
      return;
    }
    case Op::Ping: {
      Message reply;
      reply.op = Op::Pong;
      reply.requestId = m.requestId;
      reply.text = m.text;
      sendMessage(s, reply);
      return;
    }
    case Op::Metrics: {
      Message reply;
      reply.op = Op::MetricsReply;
      reply.requestId = m.requestId;
      reply.text = metricsText();
      sendMessage(s, reply);
      return;
    }
    default: {
      protocolErrors_.inc();
      Message reply;
      reply.op = Op::Error;
      reply.requestId = m.requestId;
      reply.text = std::string("unexpected opcode ") + toString(m.op) +
                   " from a client";
      sendMessage(s, reply);
      return;
    }
  }
}

std::string Server::statsJson() {
  std::ostringstream os;
  os << "{\"server\": {";
  const std::vector<std::string>& names = metrics_.names();
  const std::vector<double> values = metrics_.sample();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) os << ", ";
    os << '"' << names[i] << "\": " << values[i];
  }
  os << "}, \"workers\": " << pool_->threadCount();
  {
    std::lock_guard<std::mutex> lk(statsMutex_);
    os << ", \"queue_depth_hist\": ";
    histogramJson(os, queueDepthHist_);
    os << ", \"job_latency_ms\": ";
    histogramJson(os, latencyHist_);
    os << ", \"queue_wait_ms\": ";
    histogramJson(os, queueWaitHist_);
    os << ", \"exec_ms\": ";
    histogramJson(os, execHist_);
  }
  os << "}\n";
  return os.str();
}

std::string Server::metricsText() {
  std::lock_guard<std::mutex> lk(statsMutex_);
  return telemetry::renderPrometheus(metrics_,
                                     {{"queue_depth", &queueDepthHist_},
                                      {"job_latency_ms", &latencyHist_},
                                      {"queue_wait_ms", &queueWaitHist_},
                                      {"exec_ms", &execHist_}},
                                     "renucad_");
}

Cycle Server::traceNowUs() const {
  return static_cast<Cycle>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - startTime_)
          .count());
}

void Server::jobSpan(const char* stage, const QueuedJob& q, Cycle start, Cycle end) {
  if (!jobTracer_) return;
  std::lock_guard<std::mutex> lk(jobTracerMutex_);
  jobTracer_->span(stage, "job", /*pid=*/1,
                   static_cast<std::uint32_t>(q.jobId), start, end,
                   {{"job_id", static_cast<std::int64_t>(q.jobId)},
                    {"request_id", static_cast<std::int64_t>(q.requestId)},
                    {"session", static_cast<std::int64_t>(q.sessionId)}});
}

void Server::closeSession(Session& s) {
  if (s.coordinator && s.id == coordSessionId_) {
    coordSessionId_ = 0;  // maintainCoordinatorLink() reconnects.
    logMessage(LogLevel::Warn, "server", "coordinator link lost");
  }
  if (s.fd >= 0) {
    ::close(s.fd);
    s.fd = -1;
  }
}

std::size_t Server::queueDepthNow() {
  std::lock_guard<std::mutex> lk(queueMutex_);
  return pending_.size();
}

void Server::registerWithCoordinator(Session& s) {
  Message m;
  m.op = Op::Register;
  m.text = "name=" + cfg_.workerName + "\nthreads=" +
           std::to_string(pool_->threadCount()) + "\ncapacity=" +
           std::to_string(pool_->threadCount()) + "\n";
  sendMessage(s, m);
  logMessage(LogLevel::Info, "server",
             "registering with coordinator as " + cfg_.workerName);
}

void Server::maintainCoordinatorLink(std::chrono::steady_clock::time_point now) {
  // Heartbeats apply to any live coordinator link, including adopted
  // in-process ones; reconnecting needs a dial address.
  if (draining_) return;
  if (coordSessionId_ != 0) {
    auto it = sessions_.find(coordSessionId_);
    if (it != sessions_.end() && !it->second.dead) {
      if (now - lastHeartbeat_ >= std::chrono::milliseconds(cfg_.heartbeatMs)) {
        lastHeartbeat_ = now;
        double p50 = 0.0;
        {
          std::lock_guard<std::mutex> lk(statsMutex_);
          p50 = queueWaitHist_.percentile(0.50);
        }
        Message hb;
        hb.op = Op::Heartbeat;
        hb.text = "queue_depth=" + std::to_string(queueDepthNow()) +
                  "\ninflight=" +
                  std::to_string(inflightA_.load(std::memory_order_relaxed)) +
                  "\nqueue_wait_p50_ms=" + std::to_string(p50) + "\n";
        sendMessage(it->second, hb);
      }
      return;
    }
    coordSessionId_ = 0;
  }
  if (cfg_.coordinatorAddr.empty()) return;
  if (now < nextCoordAttempt_) return;
  // One pass over the address list per attempt; backoff between attempts
  // happens here in the loop (never a blocking sleep), so live sessions
  // keep being served while the coordinator is down.
  Client c;
  std::string err;
  bool connected = false;
  for (const std::string& addr : Client::splitAddressList(cfg_.coordinatorAddr)) {
    if (c.connectAddress(addr, &err, /*timeoutMs=*/1000)) {
      connected = true;
      break;
    }
  }
  if (!connected) {
    coordBackoffMs_ = coordBackoffMs_ == 0
                          ? 500
                          : std::min(coordBackoffMs_ * 2, cfg_.reconnectMaxMs);
    nextCoordAttempt_ = now + std::chrono::milliseconds(coordBackoffMs_);
    logMessage(LogLevel::Warn, "server",
               "coordinator unreachable (" + err + "); next attempt in " +
                   std::to_string(coordBackoffMs_) + " ms");
    return;
  }
  const int fd = c.releaseFd();
  setNonBlocking(fd);
  Session& s = addSession(fd);
  s.coordinator = true;
  coordSessionId_ = s.id;
  coordBackoffMs_ = 0;
  lastHeartbeat_ = now;
  registerWithCoordinator(s);
}

void Server::executorLoop() {
  for (;;) {
    std::vector<QueuedJob> batch;
    {
      std::unique_lock<std::mutex> lk(queueMutex_);
      queueCv_.wait(lk, [&] { return drainRequested_ || !pending_.empty(); });
      if (pending_.empty()) break;  // Drain requested and nothing left.
      batch.insert(batch.end(), std::make_move_iterator(pending_.begin()),
                   std::make_move_iterator(pending_.end()));
      pending_.clear();
    }
    queueDepthA_.store(0, std::memory_order_relaxed);
    inflightA_.fetch_add(batch.size(), std::memory_order_relaxed);

    const auto usOf = [this](std::chrono::steady_clock::time_point tp) {
      return static_cast<Cycle>(
          std::chrono::duration_cast<std::chrono::microseconds>(tp - startTime_)
              .count());
    };

    sim::SweepPlan plan;
    for (QueuedJob& q : batch) {
      q.admitted = std::chrono::steady_clock::now();
      jobSpan("queued", q, usOf(q.submitted), usOf(q.admitted));
      Message running;
      running.op = Op::Status;
      running.requestId = q.requestId;
      running.jobId = q.wireJobId;
      running.state = JobState::Running;
      postOutgoing(q.sessionId, std::move(running));
      plan.add(q.job);
    }

    sim::SweepOptions opts;
    opts.pool = pool_.get();
    opts.warmStartDir = cfg_.snapshotDir;
    opts.onJobStart = [this, &batch, usOf](std::size_t i) {
      QueuedJob& q = batch[i];
      q.execStart = std::chrono::steady_clock::now();
      jobSpan("admitted", q, usOf(q.admitted), usOf(q.execStart));
      {
        std::lock_guard<std::mutex> lk(statsMutex_);
        queueWaitHist_.add(
            std::chrono::duration<double>(q.execStart - q.submitted).count() *
            1000.0);
      }
    };
    opts.onJobDone = [this, &batch, usOf](std::size_t i, const sim::RunResult& r) {
      const QueuedJob& q = batch[i];
      const auto done = std::chrono::steady_clock::now();
      const double wallSec =
          std::chrono::duration<double>(done - q.submitted).count();
      jobSpan("executing", q, usOf(q.execStart), usOf(done));
      if (jobTracer_) {
        std::lock_guard<std::mutex> lk(jobTracerMutex_);
        jobTracer_->instant("completed", "job", /*pid=*/1,
                            static_cast<std::uint32_t>(q.jobId), usOf(done),
                            {{"failed", r.error.empty() ? 0 : 1}});
      }
      {
        std::lock_guard<std::mutex> lk(statsMutex_);
        latencyHist_.add(wallSec * 1000.0);
        execHist_.add(
            std::chrono::duration<double>(done - q.execStart).count() * 1000.0);
      }
      const bool ok = r.error.empty();
      (ok ? completedA_ : failedA_).fetch_add(1, std::memory_order_relaxed);
      const ErrCode ec =
          ok ? ErrCode::None : (r.errorCode == "io" ? ErrCode::Io : ErrCode::Sim);

      Message status;
      status.op = Op::Status;
      status.requestId = q.requestId;
      status.jobId = q.wireJobId;
      status.state = ok ? JobState::Done : JobState::Failed;
      status.errorCode = ec;
      status.text = ok ? "" : r.error;
      postOutgoing(q.sessionId, std::move(status));

      Message report;
      report.op = Op::Report;
      report.requestId = q.requestId;
      report.jobId = q.wireJobId;
      report.state = ok ? JobState::Done : JobState::Failed;
      report.errorCode = ec;
      report.text = sim::runReportJson("renucad", q.job.config,
                                       {{q.job.label, r}}, wallSec,
                                       pool_->threadCount(), q.job.clientJobId);
      postOutgoing(q.sessionId, std::move(report));
      inflightA_.fetch_sub(1, std::memory_order_relaxed);
    };
    sim::runPlan(plan, opts);
  }
  executorDone_.store(true, std::memory_order_relaxed);
  wake();
}

int Server::run() {
  executor_ = std::thread(&Server::executorLoop, this);
  const auto idleTimeout = std::chrono::milliseconds(cfg_.idleTimeoutMs);

  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fdSession;  // Parallel to fds; 0 = not a session.
  for (;;) {
    drainAdopted();
    drainOutgoing();
    maintainCoordinatorLink(std::chrono::steady_clock::now());

    if (stopFlag_.load(std::memory_order_relaxed) && !draining_) {
      draining_ = true;
      logMessage(LogLevel::Info, "server", "draining: finishing admitted jobs");
      for (int fd : listenFds_) ::close(fd);
      listenFds_.clear();
      {
        std::lock_guard<std::mutex> lk(queueMutex_);
        drainRequested_ = true;
      }
      queueCv_.notify_all();
    }

    if (draining_ && executorDone_.load(std::memory_order_relaxed)) {
      // Everything produced; exit once it is also delivered (or undeliverable).
      bool flushed;
      {
        std::lock_guard<std::mutex> lk(outgoingMutex_);
        flushed = outgoing_.empty();
      }
      if (flushed) {
        for (auto& [id, s] : sessions_) {
          if (s.outOff < s.out.size() && !s.dead) {
            flushed = false;
            break;
          }
        }
      }
      if (flushed) break;
    }

    fds.clear();
    fdSession.clear();
    if (wakePipe_[0] >= 0) {
      fds.push_back({wakePipe_[0], POLLIN, 0});
      fdSession.push_back(0);
    }
    for (int fd : listenFds_) {
      fds.push_back({fd, POLLIN, 0});
      fdSession.push_back(0);
    }
    for (auto& [id, s] : sessions_) {
      short events = 0;
      // Backpressure: a session with a deep unsent backlog stops being
      // read until its buffer drains — it cannot pump more jobs in.
      if (!s.dead && s.out.size() - s.outOff < cfg_.softWriteBuffer)
        events |= POLLIN;
      if (s.outOff < s.out.size()) events |= POLLOUT;
      if (events == 0 && !s.dead) events = POLLIN;
      fds.push_back({s.fd, events, 0});
      fdSession.push_back(id);
    }

    const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), kPollMs);
    if (n < 0 && errno != EINTR) {
      logMessage(LogLevel::Error, "server", "poll: " + errnoString());
      break;
    }

    std::vector<std::uint64_t> toClose;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      const pollfd& p = fds[i];
      if (p.revents == 0) continue;
      if (p.fd == wakePipe_[0]) {
        char buf[256];
        while (::read(wakePipe_[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (fdSession[i] == 0) {
        acceptPending(p.fd);
        continue;
      }
      auto it = sessions_.find(fdSession[i]);
      if (it == sessions_.end()) continue;
      Session& s = it->second;
      bool alive = true;
      if (p.revents & (POLLERR | POLLNVAL)) alive = false;
      if (alive && (p.revents & POLLOUT)) alive = flushSession(s);
      if (alive && (p.revents & (POLLIN | POLLHUP))) alive = readSession(s);
      // One more flush so small replies leave without waiting a poll round.
      if (alive && s.outOff < s.out.size()) alive = flushSession(s);
      if (!alive) {
        s.dead = true;
        toClose.push_back(s.id);
      } else if (s.dead) {
        toClose.push_back(s.id);
      }
    }

    // Idle reaping and deferred closes.
    const auto now = std::chrono::steady_clock::now();
    for (auto& [id, s] : sessions_) {
      if (s.dead || s.coordinator) continue;  // The fleet link never idles out.
      if (cfg_.idleTimeoutMs > 0 && s.inflight == 0 &&
          s.out.size() == s.outOff && now - s.lastActive > idleTimeout) {
        logMessage(LogLevel::Info, "server",
                   "session " + std::to_string(id) + ": idle timeout");
        s.dead = true;
        toClose.push_back(id);
      }
    }
    for (std::uint64_t id : toClose) {
      auto it = sessions_.find(id);
      if (it == sessions_.end()) continue;
      flushSession(it->second);  // Best effort for already-queued replies.
      closeSession(it->second);
      sessions_.erase(it);
    }
    sessionsA_.store(sessions_.size(), std::memory_order_relaxed);
  }

  // The executor may still be waiting on the cv if stop arrived with an
  // empty queue; drainRequested_ is already set, so this only wakes it.
  {
    std::lock_guard<std::mutex> lk(queueMutex_);
    drainRequested_ = true;
  }
  queueCv_.notify_all();
  executor_.join();
  drainOutgoing();
  for (auto& [id, s] : sessions_) {
    flushSession(s);
    closeSession(s);
  }
  sessions_.clear();
  sessionsA_.store(0, std::memory_order_relaxed);
  if (jobTracer_) {
    std::lock_guard<std::mutex> lk(jobTracerMutex_);
    jobTracer_->close();
  }
  if (!cfg_.socketPath.empty()) ::unlink(cfg_.socketPath.c_str());
  logMessage(LogLevel::Info, "server", "drained; exiting");
  return 0;
}

}  // namespace renuca::server
