#include "server/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/rng.hpp"

namespace renuca::server {

namespace {

void setError(std::string* error, const std::string& what) {
  if (error) *error = what;
}

bool setBlocking(int fd, bool blocking) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = blocking ? (flags & ~O_NONBLOCK) : (flags | O_NONBLOCK);
  return flags == want || fcntl(fd, F_SETFL, want) == 0;
}

/// Milliseconds left until `deadline`, floored at 0; -1 for "no deadline".
int remainingMs(std::chrono::steady_clock::time_point deadline, bool bounded) {
  if (!bounded) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

/// Completes a (possibly in-progress) connect on a socket.  With
/// timeoutMs > 0 the socket is non-blocking and the connect is bounded;
/// otherwise plain blocking connect.  Leaves the socket blocking.
bool finishConnect(int fd, const sockaddr* addr, socklen_t len, int timeoutMs,
                   std::string& error) {
  if (timeoutMs <= 0) {
    if (::connect(fd, addr, len) != 0) {
      error = std::strerror(errno);
      return false;
    }
    return true;
  }
  if (!setBlocking(fd, false)) {
    error = std::string("fcntl: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd, addr, len) != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      error = std::strerror(errno);
      return false;
    }
    pollfd p{fd, POLLOUT, 0};
    const int n = ::poll(&p, 1, timeoutMs);
    if (n == 0) {
      error = "timeout after " + std::to_string(timeoutMs) + " ms";
      return false;
    }
    if (n < 0) {
      error = std::string("poll: ") + std::strerror(errno);
      return false;
    }
    int soErr = 0;
    socklen_t soLen = sizeof(soErr);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &soErr, &soLen) != 0 || soErr != 0) {
      error = std::strerror(soErr != 0 ? soErr : errno);
      return false;
    }
  }
  setBlocking(fd, true);
  return true;
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      ioTimeoutMs_(other.ioTimeoutMs_),
      buf_(std::move(other.buf_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    ioTimeoutMs_ = other.ioTimeoutMs_;
    buf_ = std::move(other.buf_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

void Client::adoptFd(int fd) {
  close();
  fd_ = fd;
  applyBlockingMode();
}

int Client::releaseFd() {
  buf_.clear();
  if (fd_ >= 0) setBlocking(fd_, true);
  return std::exchange(fd_, -1);
}

void Client::setIoTimeout(int ms) {
  ioTimeoutMs_ = ms > 0 ? ms : 0;
  applyBlockingMode();
}

void Client::applyBlockingMode() {
  if (fd_ >= 0) setBlocking(fd_, ioTimeoutMs_ <= 0);
}

bool Client::connectUnix(const std::string& path, std::string* error,
                         int timeoutMs) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    setError(error, "socket path too long: " + path);
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    setError(error, std::string("socket: ") + std::strerror(errno));
    return false;
  }
  std::string err;
  if (!finishConnect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
                     timeoutMs, err)) {
    setError(error, path + ": " + err);
    close();
    return false;
  }
  applyBlockingMode();
  return true;
}

bool Client::connectTcp(const std::string& hostPort, std::string* error,
                        int timeoutMs) {
  close();
  const std::size_t colon = hostPort.rfind(':');
  if (colon == std::string::npos) {
    setError(error, "bad address '" + hostPort + "' (want host:port)");
    return false;
  }
  std::string host = hostPort.substr(0, colon);
  if (host.empty()) host = "127.0.0.1";
  unsigned long port = 0;
  for (char c : hostPort.substr(colon + 1)) {
    if (c < '0' || c > '9' || (port = port * 10 + static_cast<unsigned long>(c - '0')) > 65535) {
      setError(error, "bad port in '" + hostPort + "'");
      return false;
    }
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    setError(error, "bad host '" + host + "'");
    return false;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    setError(error, std::string("socket: ") + std::strerror(errno));
    return false;
  }
  std::string err;
  if (!finishConnect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
                     timeoutMs, err)) {
    setError(error, hostPort + ": " + err);
    close();
    return false;
  }
  applyBlockingMode();
  return true;
}

bool Client::connectAddress(const std::string& addr, std::string* error,
                            int timeoutMs) {
  if (addr.rfind("unix:", 0) == 0)
    return connectUnix(addr.substr(5), error, timeoutMs);
  if (addr.find('/') != std::string::npos)
    return connectUnix(addr, error, timeoutMs);
  return connectTcp(addr, error, timeoutMs);
}

bool Client::connectAny(const std::vector<std::string>& addrs,
                        const RetryPolicy& policy, std::string* error) {
  if (addrs.empty()) {
    setError(error, "no addresses to connect to");
    return false;
  }
  Pcg32 rng(policy.jitterSeed, /*stream=*/0x636f6e6e);
  std::string last;
  for (int round = 0; round <= policy.retries; ++round) {
    if (round > 0) {
      // base * 2^(round-1), capped, then jittered to 50..150%.
      std::int64_t backoff = policy.backoffBaseMs;
      for (int r = 1; r < round; ++r) backoff *= 2;
      if (backoff > policy.backoffMaxMs) backoff = policy.backoffMaxMs;
      if (backoff > 0) {
        backoff = backoff / 2 + static_cast<std::int64_t>(
                                    rng.nextBelow(static_cast<std::uint32_t>(backoff) + 1));
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      }
    }
    for (const std::string& addr : addrs) {
      if (connectAddress(addr, &last, policy.connectTimeoutMs)) return true;
    }
  }
  setError(error, "all addresses failed after " +
                      std::to_string(policy.retries + 1) + " round(s); last: " + last);
  return false;
}

std::vector<std::string> Client::splitAddressList(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool Client::send(const Message& m, std::string* error) {
  if (fd_ < 0) {
    setError(error, "not connected");
    return false;
  }
  const std::vector<std::uint8_t> frame = encodeFrame(m);
  const bool bounded = ioTimeoutMs_ > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(ioTimeoutMs_);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) && bounded) {
      const int left = remainingMs(deadline, bounded);
      if (left == 0) {
        setError(error, "timeout sending frame after " +
                            std::to_string(ioTimeoutMs_) + " ms");
        return false;
      }
      pollfd p{fd_, POLLOUT, 0};
      if (::poll(&p, 1, left) < 0 && errno != EINTR) {
        setError(error, std::string("poll: ") + std::strerror(errno));
        return false;
      }
      continue;
    }
    setError(error, std::string("send: ") + std::strerror(errno));
    return false;
  }
  return true;
}

std::string Client::submit(const std::string& spec, std::uint64_t requestId,
                           std::string* error) {
  static std::atomic<std::uint64_t> seq{0};
  const std::string id = "c" + std::to_string(static_cast<long>(::getpid())) +
                         "-" + std::to_string(seq.fetch_add(1) + 1);
  Message m;
  m.op = Op::Submit;
  m.requestId = requestId;
  m.text = spec;
  if (!m.text.empty() && m.text.back() != '\n') m.text += '\n';
  m.text += "job_id=" + id + "\n";
  if (!send(m, error)) return std::string();
  return id;
}

bool Client::receive(Message& m, std::string* error) {
  if (fd_ < 0) {
    setError(error, "not connected");
    return false;
  }
  const bool bounded = ioTimeoutMs_ > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(ioTimeoutMs_);
  for (;;) {
    std::string err;
    switch (decodeFrame(buf_, kDefaultMaxFrameBytes, m, err)) {
      case DecodeStatus::Frame:
        return true;
      case DecodeStatus::BadPayload:
      case DecodeStatus::Fatal:
        setError(error, err);
        return false;
      case DecodeStatus::NeedMore:
        break;
    }
    std::uint8_t tmp[65536];
    const ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
    if (n > 0) {
      buf_.insert(buf_.end(), tmp, tmp + n);
      continue;
    }
    if (n == 0) {
      setError(error, "connection closed by server");
      return false;
    }
    if (errno == EINTR) continue;
    if ((errno == EAGAIN || errno == EWOULDBLOCK) && bounded) {
      const int left = remainingMs(deadline, bounded);
      if (left == 0) {
        setError(error, "timeout waiting for a frame after " +
                            std::to_string(ioTimeoutMs_) + " ms");
        return false;
      }
      pollfd p{fd_, POLLIN, 0};
      if (::poll(&p, 1, left) < 0 && errno != EINTR) {
        setError(error, std::string("poll: ") + std::strerror(errno));
        return false;
      }
      continue;
    }
    setError(error, std::string("recv: ") + std::strerror(errno));
    return false;
  }
}

}  // namespace renuca::server
