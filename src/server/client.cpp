#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

namespace renuca::server {

namespace {

void setError(std::string* error, const std::string& what) {
  if (error) *error = what;
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buf_(std::move(other.buf_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buf_ = std::move(other.buf_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

void Client::adoptFd(int fd) {
  close();
  fd_ = fd;
}

bool Client::connectUnix(const std::string& path, std::string* error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    setError(error, "socket path too long: " + path);
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    setError(error, std::string("socket: ") + std::strerror(errno));
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    setError(error, path + ": " + std::strerror(errno));
    close();
    return false;
  }
  return true;
}

bool Client::connectTcp(const std::string& hostPort, std::string* error) {
  close();
  const std::size_t colon = hostPort.rfind(':');
  if (colon == std::string::npos) {
    setError(error, "bad address '" + hostPort + "' (want host:port)");
    return false;
  }
  std::string host = hostPort.substr(0, colon);
  if (host.empty()) host = "127.0.0.1";
  unsigned long port = 0;
  for (char c : hostPort.substr(colon + 1)) {
    if (c < '0' || c > '9' || (port = port * 10 + static_cast<unsigned long>(c - '0')) > 65535) {
      setError(error, "bad port in '" + hostPort + "'");
      return false;
    }
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    setError(error, "bad host '" + host + "'");
    return false;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    setError(error, std::string("socket: ") + std::strerror(errno));
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    setError(error, hostPort + ": " + std::strerror(errno));
    close();
    return false;
  }
  return true;
}

bool Client::send(const Message& m, std::string* error) {
  if (fd_ < 0) {
    setError(error, "not connected");
    return false;
  }
  const std::vector<std::uint8_t> frame = encodeFrame(m);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    setError(error, std::string("send: ") + std::strerror(errno));
    return false;
  }
  return true;
}

std::string Client::submit(const std::string& spec, std::uint64_t requestId,
                           std::string* error) {
  static std::atomic<std::uint64_t> seq{0};
  const std::string id = "c" + std::to_string(static_cast<long>(::getpid())) +
                         "-" + std::to_string(seq.fetch_add(1) + 1);
  Message m;
  m.op = Op::Submit;
  m.requestId = requestId;
  m.text = spec;
  if (!m.text.empty() && m.text.back() != '\n') m.text += '\n';
  m.text += "job_id=" + id + "\n";
  if (!send(m, error)) return std::string();
  return id;
}

bool Client::receive(Message& m, std::string* error) {
  if (fd_ < 0) {
    setError(error, "not connected");
    return false;
  }
  for (;;) {
    std::string err;
    switch (decodeFrame(buf_, kDefaultMaxFrameBytes, m, err)) {
      case DecodeStatus::Frame:
        return true;
      case DecodeStatus::BadPayload:
      case DecodeStatus::Fatal:
        setError(error, err);
        return false;
      case DecodeStatus::NeedMore:
        break;
    }
    std::uint8_t tmp[65536];
    const ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
    if (n > 0) {
      buf_.insert(buf_.end(), tmp, tmp + n);
      continue;
    }
    if (n == 0) {
      setError(error, "connection closed by server");
      return false;
    }
    if (errno == EINTR) continue;
    setError(error, std::string("recv: ") + std::strerror(errno));
    return false;
  }
}

}  // namespace renuca::server
