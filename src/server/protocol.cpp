#include "server/protocol.hpp"

#include "serial/archive.hpp"

namespace renuca::server {

const char* toString(Op op) {
  switch (op) {
    case Op::Submit: return "SUBMIT";
    case Op::Stats: return "STATS";
    case Op::Shutdown: return "SHUTDOWN";
    case Op::Ping: return "PING";
    case Op::Metrics: return "METRICS";
    case Op::Register: return "REGISTER";
    case Op::Heartbeat: return "HEARTBEAT";
    case Op::Accepted: return "ACCEPTED";
    case Op::Busy: return "BUSY";
    case Op::Error: return "ERROR";
    case Op::Status: return "STATUS";
    case Op::Report: return "REPORT";
    case Op::StatsReply: return "STATS_REPLY";
    case Op::Pong: return "PONG";
    case Op::MetricsReply: return "METRICS_REPLY";
    case Op::Lease: return "LEASE";
  }
  return "UNKNOWN";
}

bool knownOp(std::uint32_t raw) {
  switch (static_cast<Op>(raw)) {
    case Op::Submit:
    case Op::Stats:
    case Op::Shutdown:
    case Op::Ping:
    case Op::Metrics:
    case Op::Register:
    case Op::Heartbeat:
    case Op::Accepted:
    case Op::Busy:
    case Op::Error:
    case Op::Status:
    case Op::Report:
    case Op::StatsReply:
    case Op::Pong:
    case Op::MetricsReply:
    case Op::Lease:
      return true;
  }
  return false;
}

const char* toString(ErrCode c) {
  switch (c) {
    case ErrCode::None: return "none";
    case ErrCode::Sim: return "sim";
    case ErrCode::Io: return "io";
    case ErrCode::Busy: return "busy";
    case ErrCode::WorkerLost: return "worker_lost";
    case ErrCode::Canceled: return "canceled";
  }
  return "unknown";
}

bool retryable(ErrCode c) {
  switch (c) {
    case ErrCode::Io:
    case ErrCode::Busy:
    case ErrCode::WorkerLost:
      return true;
    case ErrCode::None:
    case ErrCode::Sim:
    case ErrCode::Canceled:
      return false;
  }
  return false;
}

const char* toString(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
  }
  return "unknown";
}

std::vector<std::uint8_t> encodeFrame(const Message& m) {
  std::vector<std::uint8_t> payload;
  {
    serial::ArchiveWriter w(&payload);
    w.beginSection("head");
    w.putU32(static_cast<std::uint32_t>(m.op));
    w.putU64(m.requestId);
    w.putU64(m.jobId);
    w.putU32(static_cast<std::uint32_t>(m.state));
    w.putU32(static_cast<std::uint32_t>(m.errorCode));
    w.endSection();
    w.beginSection("body");
    w.putString(m.text);
    w.endSection();
    w.close();
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  frame.push_back(static_cast<std::uint8_t>(len));
  frame.push_back(static_cast<std::uint8_t>(len >> 8));
  frame.push_back(static_cast<std::uint8_t>(len >> 16));
  frame.push_back(static_cast<std::uint8_t>(len >> 24));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

DecodeStatus decodeFrame(std::vector<std::uint8_t>& buf, std::size_t maxFrameBytes,
                         Message& out, std::string& error) {
  if (buf.size() < 4) return DecodeStatus::NeedMore;
  const std::uint64_t len = static_cast<std::uint64_t>(buf[0]) |
                            (static_cast<std::uint64_t>(buf[1]) << 8) |
                            (static_cast<std::uint64_t>(buf[2]) << 16) |
                            (static_cast<std::uint64_t>(buf[3]) << 24);
  if (len == 0 || len > maxFrameBytes) {
    error = "implausible frame length " + std::to_string(len);
    return DecodeStatus::Fatal;
  }
  if (buf.size() < 4 + len) return DecodeStatus::NeedMore;

  serial::ArchiveReader r(buf.data() + 4, static_cast<std::size_t>(len), "<frame>");
  buf.erase(buf.begin(), buf.begin() + 4 + static_cast<std::size_t>(len));
  if (!r.ok()) {
    error = "corrupt frame payload: " + serial::toString(r.error());
    return DecodeStatus::BadPayload;
  }
  if (!r.openSection("head")) {
    error = "corrupt frame head: " + serial::toString(r.error());
    return DecodeStatus::BadPayload;
  }
  const std::uint32_t rawOp = r.getU32();
  out.requestId = r.getU64();
  out.jobId = r.getU64();
  const std::uint32_t rawState = r.getU32();
  const std::uint32_t rawErr = r.getU32();
  if (!r.ok()) {
    error = "corrupt frame head: " + serial::toString(r.error());
    return DecodeStatus::BadPayload;
  }
  if (!knownOp(rawOp)) {
    error = "unknown opcode " + std::to_string(rawOp);
    return DecodeStatus::BadPayload;
  }
  out.op = static_cast<Op>(rawOp);
  out.state = rawState <= static_cast<std::uint32_t>(JobState::Failed)
                  ? static_cast<JobState>(rawState)
                  : JobState::Queued;
  out.errorCode = rawErr <= static_cast<std::uint32_t>(ErrCode::Canceled)
                      ? static_cast<ErrCode>(rawErr)
                      : ErrCode::None;
  if (!r.openSection("body")) {
    error = "corrupt frame body: " + serial::toString(r.error());
    return DecodeStatus::BadPayload;
  }
  out.text = r.getString();
  if (!r.ok()) {
    error = "corrupt frame body: " + serial::toString(r.error());
    return DecodeStatus::BadPayload;
  }
  return DecodeStatus::Frame;
}

}  // namespace renuca::server
