// Blocking protocol client for renucad — the library behind
// tools/renuca_client and the in-process test harness.
//
// Deliberately simple: one connected stream socket, blocking send/receive,
// an internal decode buffer.  Multiplexing many in-flight submissions over
// one connection works by requestId (protocol.hpp); the caller matches
// replies itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.hpp"

namespace renuca::server {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a Unix-domain socket path / a "host:port" TCP address.
  /// False (with `error` filled when given) on failure.
  bool connectUnix(const std::string& path, std::string* error = nullptr);
  bool connectTcp(const std::string& hostPort, std::string* error = nullptr);

  /// Takes ownership of an already-connected socket (tests pass one end of
  /// a socketpair()).
  void adoptFd(int fd);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Writes one frame; blocks until it is fully sent.
  bool send(const Message& m, std::string* error = nullptr);

  /// Submits a job spec, stamping it with a client-generated job id
  /// ("c<pid>-<seq>", appended as a job_id= line) that the server echoes in
  /// the report's provenance and its lifecycle trace.  Returns the id, or
  /// "" when the send fails (`error` says why).
  std::string submit(const std::string& spec, std::uint64_t requestId,
                     std::string* error = nullptr);

  /// Blocks until the next complete message arrives.  False on EOF, a
  /// socket error, or a corrupt frame (`error` says which).
  bool receive(Message& m, std::string* error = nullptr);

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> buf_;
};

}  // namespace renuca::server
