// Protocol client for renucad / renuca-coord — the library behind
// tools/renuca_client, the fleet worker's coordinator link, and the
// in-process test harness.
//
// One connected stream socket, an internal decode buffer, and optional
// deadlines: with an I/O timeout configured the socket runs non-blocking
// and every send()/receive() is bounded by a poll() deadline (a timeout
// surfaces as an error beginning "timeout"); without one the calls block
// exactly like the original client.  connectAny() adds fleet-grade
// robustness on top: it walks an address list ("unix:/path", a bare
// socket path, or "host:port") with exponential backoff and deterministic
// jitter, so a client survives a coordinator restart or fails over to a
// standby address without the caller writing a retry loop.
//
// Multiplexing many in-flight submissions over one connection works by
// requestId (protocol.hpp); the caller matches replies itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.hpp"

namespace renuca::server {

/// Reconnect discipline for connectAny(): per-attempt connect deadline,
/// extra rounds over the whole address list, and exponential backoff with
/// deterministic jitter between rounds (so a thundering herd of clients
/// spreads out, reproducibly per seed).
struct RetryPolicy {
  int connectTimeoutMs = 5000;  ///< Per-address connect deadline (<=0 = blocking).
  int retries = 3;              ///< Extra rounds after the first pass fails.
  int backoffBaseMs = 100;      ///< Round r sleeps ~ base * 2^r, capped below.
  int backoffMaxMs = 2000;
  std::uint64_t jitterSeed = 1;  ///< Stream for the +/-50% jitter.
};

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a Unix-domain socket path / a "host:port" TCP address.
  /// False (with `error` filled when given) on failure.  `timeoutMs` > 0
  /// bounds the connect() itself (non-blocking + poll); <= 0 blocks.
  bool connectUnix(const std::string& path, std::string* error = nullptr,
                   int timeoutMs = 0);
  bool connectTcp(const std::string& hostPort, std::string* error = nullptr,
                  int timeoutMs = 0);

  /// Dispatches on the address form: "unix:PATH" or anything containing a
  /// '/' is a Unix-domain path, otherwise "host:port" TCP.
  bool connectAddress(const std::string& addr, std::string* error = nullptr,
                      int timeoutMs = 0);

  /// Tries every address in order, then backs off (exponential + jitter)
  /// and retries the whole list, `policy.retries` extra rounds.  On
  /// success the client is connected to the first address that answered.
  bool connectAny(const std::vector<std::string>& addrs, const RetryPolicy& policy,
                  std::string* error = nullptr);

  /// Splits a comma-separated address list ("a.sock,host:9901").
  static std::vector<std::string> splitAddressList(const std::string& csv);

  /// Takes ownership of an already-connected socket (tests pass one end of
  /// a socketpair()).
  void adoptFd(int fd);
  /// Releases ownership of the connected socket to the caller (the fleet
  /// worker hands the fd to its event loop).  Returns -1 when unconnected.
  int releaseFd();

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Deadline for each subsequent send()/receive(), in ms; 0 restores the
  /// unbounded blocking behaviour.  A deadline that expires fails the call
  /// with an error starting "timeout" — the connection itself stays usable.
  void setIoTimeout(int ms);
  int ioTimeout() const { return ioTimeoutMs_; }

  /// Writes one frame; blocks until it is fully sent (or the deadline hits).
  bool send(const Message& m, std::string* error = nullptr);

  /// Submits a job spec, stamping it with a client-generated job id
  /// ("c<pid>-<seq>", appended as a job_id= line) that the server echoes in
  /// the report's provenance and its lifecycle trace.  Returns the id, or
  /// "" when the send fails (`error` says why).
  std::string submit(const std::string& spec, std::uint64_t requestId,
                     std::string* error = nullptr);

  /// Blocks until the next complete message arrives (or the deadline
  /// hits).  False on EOF, a socket error, a corrupt frame, or a timeout
  /// (`error` says which).
  bool receive(Message& m, std::string* error = nullptr);

 private:
  /// Applies the blocking mode implied by ioTimeoutMs_ to fd_.
  void applyBlockingMode();

  int fd_ = -1;
  int ioTimeoutMs_ = 0;
  std::vector<std::uint8_t> buf_;
};

}  // namespace renuca::server
