// Job specs: the text a client submits to renucad, validated server-side
// against the strict config key registry before a Job is built.
//
// A spec is "key=value" lines ('#' comments, blank lines ignored — the
// KvConfig::fromString grammar).  It accepts every SystemConfig override
// key (sim/config.hpp's configKeyRegistry) plus:
//
//   rig=default|single_core|l2_small|l3_small|rob_large   base preset
//   app=<name>    run one application alone (requires a 1-core rig;
//                 implies rig=single_core when rig is absent)
//   mix=WL1..WL10 run a standard 16-core workload mix (default: WL1)
//   label=<text>  report label (defaults to the app/mix name)
//
// Keys the *server* owns are rejected, not ignored: report_json, jobs,
// mixes, strict, snapshot_save/load, snapshot_dir (the daemon manages the
// snapshot directory), trace_json (a server-side file path), and log_level
// (process-global).  Unknown keys, unparsable values, and out-of-range
// numbers are rejected with the registry's did-you-mean diagnostics —
// admission is always strict, a typo never silently becomes a default.
#pragma once

#include <string>

#include "sim/sweep.hpp"

namespace renuca::server {

/// Parses and validates one job spec.  On success fills `job` (label,
/// fully-resolved SystemConfig, workload) and returns true; on failure
/// returns false with a human-readable reason in `error`.
bool parseJobSpec(const std::string& text, sim::Job& job, std::string& error);

}  // namespace renuca::server
