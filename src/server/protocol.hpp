// renucad wire protocol: length-prefixed frames whose payloads are
// in-memory serial::Archive blobs.
//
// A frame is
//
//   [u32 payloadLen (LE)][payload]
//
// and the payload is a complete archive (magic "RENUCACP", version, tagged
// FNV-1a-checksummed sections — serial/archive.hpp), with two sections:
//
//   "head"  u32 opcode, u64 requestId, u64 jobId, u32 jobState
//   "body"  string text (job spec / report JSON / stats JSON / error text)
//
// Reusing the archive format means the wire inherits the snapshot layer's
// corruption discipline for free: a flipped bit anywhere in a payload fails
// the section checksum and decodes as BadPayload — the server replies with
// an Error frame and keeps the session; it never crashes and never trusts
// half a message.  Only the outer framing itself going implausible (a
// length of zero or beyond the configured cap) is Fatal, because the byte
// stream can no longer be resynchronized; the connection is closed.
//
// Opcode semantics (client -> server):
//   Submit    body = job spec ("key=value" lines, server/jobspec.hpp).
//             Reply: Accepted (jobId assigned) | Busy (queue full or
//             draining) | Error (spec rejected).  An accepted job then
//             streams Status frames (Queued/Running/Done|Failed) and one
//             Report frame carrying the renuca-run-report JSON.
//   Stats     Reply: StatsReply, body = server health JSON (the telemetry
//             metrics registry's counters/gauges plus queue-depth and
//             latency histograms).
//   Shutdown  Begin a graceful drain (same as SIGTERM).  Reply: Accepted.
//   Ping      Reply: Pong.  Liveness probe.
//   Metrics   Reply: MetricsReply, body = the same registry rendered as
//             Prometheus text exposition (telemetry/prometheus.hpp), for
//             scrapers.
//
// Fleet opcodes (renucad worker <-> renuca-coord coordinator):
//   Register  Worker -> coordinator, once per connection: body is
//             "key=value" worker info (name=, threads=, capacity=).  The
//             connection then carries leases toward the worker and
//             status/report traffic back.
//   Heartbeat Worker -> coordinator, periodic liveness + load
//             ("queue_depth=", "inflight=", "queue_wait_p50_ms=").  No
//             reply; a worker silent past the heartbeat timeout is dead.
//   Lease     Coordinator -> worker: one job grant.  jobId is the fleet-
//             global job id and the lease key; the worker echoes it on the
//             Accepted/Busy/Error admission reply and on every Status /
//             Report frame, so the coordinator can commit results
//             at-most-once and discard a zombie's late duplicates.
//
// errorCode classifies Failed results so the coordinator can tell
// retryable failures (I/O, a BUSY worker, a lost worker) from fatal ones
// (a deterministic simulation error, which would fail identically on any
// worker) — see retryable().
//
// requestId is chosen by the client and echoed verbatim on every frame the
// server sends about that request (including job status/report frames), so
// one connection can multiplex many in-flight submissions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace renuca::server {

inline constexpr std::size_t kDefaultMaxFrameBytes = 16u << 20;

enum class Op : std::uint32_t {
  // Client -> server.
  Submit = 1,
  Stats = 2,
  Shutdown = 3,
  Ping = 4,
  Metrics = 5,
  // Worker -> coordinator.
  Register = 6,
  Heartbeat = 7,
  // Server -> client.
  Accepted = 10,
  Busy = 11,
  Error = 12,
  Status = 13,
  Report = 14,
  StatsReply = 15,
  Pong = 16,
  MetricsReply = 17,
  // Coordinator -> worker.
  Lease = 18,
};
const char* toString(Op op);
bool knownOp(std::uint32_t raw);

enum class JobState : std::uint32_t { Queued = 0, Running = 1, Done = 2, Failed = 3 };
const char* toString(JobState s);

/// Why a job failed, coarse enough to decide whether another attempt can
/// succeed.  Travels in the frame head next to JobState and mirrors
/// RunResult::errorCode ("sim" / "io") for simulation failures.
enum class ErrCode : std::uint32_t {
  None = 0,        ///< No error.
  Sim = 1,         ///< Deterministic simulation failure — fatal, never retry.
  Io = 2,          ///< I/O or resource failure — may succeed elsewhere.
  Busy = 3,        ///< Worker admission queue full — retry later.
  WorkerLost = 4,  ///< Lease holder died or its lease expired.
  Canceled = 5,    ///< Abandoned (client gone, coordinator draining).
};
const char* toString(ErrCode c);
/// True when a fresh attempt on a (different) worker could succeed.
bool retryable(ErrCode c);

/// One decoded protocol message (either direction).
struct Message {
  Op op = Op::Ping;
  std::uint64_t requestId = 0;  ///< Client-chosen; echoed on replies/events.
  std::uint64_t jobId = 0;      ///< Server-assigned (0 before admission).
  JobState state = JobState::Queued;  ///< Meaningful on Status frames.
  ErrCode errorCode = ErrCode::None;  ///< Failure class on Failed frames.
  std::string text;             ///< Spec / report / stats JSON / error text.
};

/// Encodes a message as one complete frame (length prefix included).
std::vector<std::uint8_t> encodeFrame(const Message& m);

enum class DecodeStatus : std::uint8_t {
  NeedMore,    ///< The buffer does not yet hold a complete frame.
  Frame,       ///< One message decoded; its bytes were consumed.
  BadPayload,  ///< A complete frame was consumed but its payload is corrupt.
  Fatal,       ///< Framing implausible; the stream cannot be resynced.
};

/// Attempts to decode one frame from the front of `buf`.  On Frame and
/// BadPayload the frame's bytes are removed from `buf`; on BadPayload and
/// Fatal `error` describes the damage.
DecodeStatus decodeFrame(std::vector<std::uint8_t>& buf, std::size_t maxFrameBytes,
                         Message& out, std::string& error);

}  // namespace renuca::server
