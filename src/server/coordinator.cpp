#include "server/coordinator.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/log.hpp"
#include "server/jobspec.hpp"
#include "telemetry/prometheus.hpp"

namespace renuca::server {

namespace {

constexpr int kPollMs = 100;

bool setNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string errnoString() { return std::strerror(errno); }

/// Splits "host:port"; empty or "*" host means any interface.
bool splitHostPort(const std::string& s, std::string& host, std::uint16_t& port) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos) return false;
  host = s.substr(0, colon);
  const std::string portStr = s.substr(colon + 1);
  if (portStr.empty()) return false;
  unsigned long p = 0;
  for (char c : portStr) {
    if (c < '0' || c > '9') return false;
    p = p * 10 + static_cast<unsigned long>(c - '0');
    if (p > 65535) return false;
  }
  port = static_cast<std::uint16_t>(p);
  return true;
}

/// Parses "key=value" lines (REGISTER / HEARTBEAT bodies) into a map.
std::map<std::string, std::string> parseKvLines(const std::string& text) {
  std::map<std::string, std::string> kv;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t eq = line.find('=');
    if (eq != std::string::npos && eq > 0) {
      kv[line.substr(0, eq)] = line.substr(eq + 1);
    }
  }
  return kv;
}

double kvDouble(const std::map<std::string, std::string>& kv,
                const std::string& key) {
  auto it = kv.find(key);
  if (it == kv.end()) return 0.0;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return end != it->second.c_str() ? v : 0.0;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The synthetic report body for a job the fleet itself failed (attempts
/// exhausted, drain with no workers) — same "error" / "error_code" keys a
/// worker-produced failure report carries.
std::string failReportJson(const std::string& why, ErrCode code) {
  return std::string("{\"error\": \"") + jsonEscape(why) +
         "\", \"error_code\": \"" + toString(code) + "\"}\n";
}

void histogramJson(std::ostringstream& os, const Histogram& h) {
  os << "{\"count\": " << h.total() << ", \"p50\": " << h.percentile(0.50)
     << ", \"p90\": " << h.percentile(0.90) << ", \"p99\": " << h.percentile(0.99)
     << "}";
}

double msSince(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count() * 1000.0;
}

}  // namespace

Coordinator::Coordinator(CoordinatorConfig cfg)
    : cfg_(std::move(cfg)),
      leaseWaitHist_(/*bucketWidth=*/25.0, /*numBuckets=*/4096),
      latencyHist_(/*bucketWidth=*/25.0, /*numBuckets=*/4096) {
  if (pipe(wakePipe_) != 0) {
    logMessage(LogLevel::Error, "coord", "pipe() failed: " + errnoString());
    wakePipe_[0] = wakePipe_[1] = -1;
  } else {
    setNonBlocking(wakePipe_[0]);
    setNonBlocking(wakePipe_[1]);
  }
  submitted_ = metrics_.counter("coord/submitted");
  rejected_ = metrics_.counter("coord/rejected");
  protocolErrors_ = metrics_.counter("coord/protocol_errors");
  redispatched_ = metrics_.counter("coord/redispatched");
  duplicatesDiscarded_ = metrics_.counter("coord/duplicates_discarded");
  workersLost_ = metrics_.counter("coord/workers_lost");
  canceled_ = metrics_.counter("coord/canceled");
  // Gauges are sampled only from the loop thread (STATS/METRICS replies),
  // so they may walk the job table directly.
  metrics_.gauge("coord/pending", [this] {
    double n = 0;
    for (const auto& [id, j] : jobs_) n += j.phase == FleetJob::Phase::Pending;
    return n;
  });
  metrics_.gauge("coord/leased", [this] {
    double n = 0;
    for (const auto& [id, j] : jobs_) n += j.phase == FleetJob::Phase::Leased;
    return n;
  });
  metrics_.gauge("coord/completed",
                 [this] { return static_cast<double>(completed_); });
  metrics_.gauge("coord/failed", [this] { return static_cast<double>(failed_); });
  metrics_.gauge("coord/workers_live",
                 [this] { return static_cast<double>(liveWorkers()); });
  metrics_.gauge("coord/sessions",
                 [this] { return static_cast<double>(sessions_.size()); });
}

Coordinator::~Coordinator() {
  for (auto& [id, s] : sessions_) {
    if (s.fd >= 0) ::close(s.fd);
  }
  for (int fd : listenFds_) ::close(fd);
  {
    std::lock_guard<std::mutex> lk(adoptMutex_);
    for (int fd : adopted_) ::close(fd);
  }
  if (wakePipe_[0] >= 0) ::close(wakePipe_[0]);
  if (wakePipe_[1] >= 0) ::close(wakePipe_[1]);
}

bool Coordinator::listen() {
  if (!cfg_.socketPath.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.socketPath.size() >= sizeof(addr.sun_path)) {
      logMessage(LogLevel::Error, "coord",
                 "socket path too long: " + cfg_.socketPath);
      return false;
    }
    std::memcpy(addr.sun_path, cfg_.socketPath.c_str(), cfg_.socketPath.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      logMessage(LogLevel::Error, "coord", "socket(AF_UNIX): " + errnoString());
      return false;
    }
    ::unlink(cfg_.socketPath.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 128) != 0 || !setNonBlocking(fd)) {
      logMessage(LogLevel::Error, "coord",
                 "bind/listen " + cfg_.socketPath + ": " + errnoString());
      ::close(fd);
      return false;
    }
    listenFds_.push_back(fd);
    logMessage(LogLevel::Info, "coord", "listening on " + cfg_.socketPath);
  }
  if (!cfg_.listenHostPort.empty()) {
    std::string host;
    std::uint16_t port = 0;
    if (!splitHostPort(cfg_.listenHostPort, host, port)) {
      logMessage(LogLevel::Error, "coord",
                 "bad listen address '" + cfg_.listenHostPort + "' (want host:port)");
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (host.empty() || host == "*") {
      addr.sin_addr.s_addr = htonl(INADDR_ANY);
    } else if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      logMessage(LogLevel::Error, "coord", "bad listen host '" + host + "'");
      return false;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      logMessage(LogLevel::Error, "coord", "socket(AF_INET): " + errnoString());
      return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 128) != 0 || !setNonBlocking(fd)) {
      logMessage(LogLevel::Error, "coord",
                 "bind/listen " + cfg_.listenHostPort + ": " + errnoString());
      ::close(fd);
      return false;
    }
    listenFds_.push_back(fd);
    logMessage(LogLevel::Info, "coord", "listening on " + cfg_.listenHostPort);
  }
  if (listenFds_.empty()) {
    logMessage(LogLevel::Error, "coord", "no listeners configured");
    return false;
  }
  return true;
}

void Coordinator::adoptConnection(int fd) {
  setNonBlocking(fd);
  {
    std::lock_guard<std::mutex> lk(adoptMutex_);
    adopted_.push_back(fd);
  }
  wake();
}

void Coordinator::requestStop() {
  stopFlag_.store(true, std::memory_order_relaxed);
  if (wakePipe_[1] >= 0) {
    const char b = 's';
    [[maybe_unused]] ssize_t n = ::write(wakePipe_[1], &b, 1);
  }
}

void Coordinator::wake() {
  if (wakePipe_[1] >= 0) {
    const char b = 'w';
    [[maybe_unused]] ssize_t n = ::write(wakePipe_[1], &b, 1);
  }
}

void Coordinator::drainAdopted() {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lk(adoptMutex_);
    fds.swap(adopted_);
  }
  for (int fd : fds) addSession(fd);
}

Coordinator::Session& Coordinator::addSession(int fd) {
  Session s;
  s.fd = fd;
  s.id = nextSessionId_++;
  s.lastActive = s.lastSeen = std::chrono::steady_clock::now();
  auto [it, inserted] = sessions_.emplace(s.id, std::move(s));
  return it->second;
}

void Coordinator::acceptPending(int listenFd) {
  for (;;) {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    setNonBlocking(fd);
    addSession(fd);
  }
}

void Coordinator::sendMessage(Session& s, const Message& m) {
  if (s.dead) return;
  const std::vector<std::uint8_t> frame = encodeFrame(m);
  s.out.insert(s.out.end(), frame.begin(), frame.end());
  if (s.out.size() - s.outOff > cfg_.maxWriteBuffer) {
    logMessage(LogLevel::Warn, "coord",
               "session " + std::to_string(s.id) + ": write backlog over " +
                   std::to_string(cfg_.maxWriteBuffer) + " bytes, dropping peer");
    s.dead = true;
  }
}

bool Coordinator::flushSession(Session& s) {
  while (s.outOff < s.out.size()) {
    const std::size_t chunk = s.out.size() - s.outOff;
    const ssize_t n = ::send(s.fd, s.out.data() + s.outOff, chunk, MSG_NOSIGNAL);
    if (n > 0) {
      s.outOff += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    return false;
  }
  if (s.outOff == s.out.size()) {
    s.out.clear();
    s.outOff = 0;
  } else if (s.outOff > (1u << 20)) {
    s.out.erase(s.out.begin(), s.out.begin() + static_cast<std::ptrdiff_t>(s.outOff));
    s.outOff = 0;
  }
  return true;
}

bool Coordinator::readSession(Session& s) {
  for (;;) {
    std::uint8_t tmp[65536];
    const ssize_t n = ::recv(s.fd, tmp, sizeof(tmp), 0);
    if (n > 0) {
      s.in.insert(s.in.end(), tmp, tmp + n);
      s.lastActive = std::chrono::steady_clock::now();
      if (static_cast<std::size_t>(n) < sizeof(tmp)) break;
      continue;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  for (;;) {
    Message m;
    std::string err;
    switch (decodeFrame(s.in, cfg_.maxFrameBytes, m, err)) {
      case DecodeStatus::NeedMore:
        return true;
      case DecodeStatus::Frame:
        handleMessage(s, m);
        break;
      case DecodeStatus::BadPayload: {
        protocolErrors_.inc();
        Message reply;
        reply.op = Op::Error;
        reply.requestId = m.requestId;
        reply.text = err;
        sendMessage(s, reply);
        logMessage(LogLevel::Warn, "coord",
                   "session " + std::to_string(s.id) + ": " + err);
        break;
      }
      case DecodeStatus::Fatal:
        protocolErrors_.inc();
        logMessage(LogLevel::Warn, "coord",
                   "session " + std::to_string(s.id) + ": " + err + "; closing");
        return false;
    }
    if (s.dead) return true;
  }
}

void Coordinator::handleMessage(Session& s, const Message& m) {
  switch (m.op) {
    case Op::Submit:
      handleSubmit(s, m);
      return;
    case Op::Register:
      handleRegister(s, m);
      return;
    case Op::Heartbeat:
      handleHeartbeat(s, m);
      return;
    case Op::Accepted:
    case Op::Busy:
    case Op::Error:
    case Op::Status:
    case Op::Report:
      if (s.worker) {
        handleWorkerResult(s, m);
        return;
      }
      protocolErrors_.inc();
      logMessage(LogLevel::Warn, "coord",
                 "session " + std::to_string(s.id) + ": " + toString(m.op) +
                     " from a non-worker peer");
      return;
    case Op::Stats: {
      Message reply;
      reply.op = Op::StatsReply;
      reply.requestId = m.requestId;
      reply.text = statsJson();
      sendMessage(s, reply);
      return;
    }
    case Op::Metrics: {
      Message reply;
      reply.op = Op::MetricsReply;
      reply.requestId = m.requestId;
      reply.text = metricsText();
      sendMessage(s, reply);
      return;
    }
    case Op::Ping: {
      Message reply;
      reply.op = Op::Pong;
      reply.requestId = m.requestId;
      reply.text = m.text;
      sendMessage(s, reply);
      return;
    }
    case Op::Shutdown: {
      Message reply;
      reply.op = Op::Accepted;
      reply.requestId = m.requestId;
      reply.text = "draining";
      sendMessage(s, reply);
      logMessage(LogLevel::Info, "coord",
                 "shutdown requested by session " + std::to_string(s.id));
      requestStop();
      return;
    }
    default: {
      protocolErrors_.inc();
      Message reply;
      reply.op = Op::Error;
      reply.requestId = m.requestId;
      reply.text = std::string("unexpected opcode ") + toString(m.op) +
                   " at the coordinator";
      sendMessage(s, reply);
      return;
    }
  }
}

void Coordinator::handleSubmit(Session& s, const Message& m) {
  Message reply;
  reply.requestId = m.requestId;
  if (draining_) {
    reply.op = Op::Busy;
    reply.errorCode = ErrCode::Busy;
    reply.text = "coordinator is draining";
    rejected_.inc();
    sendMessage(s, reply);
    return;
  }
  // Validate the spec here so a typo costs one Error frame, not a lease.
  sim::Job job;
  std::string err;
  if (!parseJobSpec(m.text, job, err)) {
    reply.op = Op::Error;
    reply.errorCode = ErrCode::Sim;
    reply.text = err;
    rejected_.inc();
    sendMessage(s, reply);
    return;
  }
  if (pendingQ_.size() >= cfg_.maxQueue) {
    reply.op = Op::Busy;
    reply.errorCode = ErrCode::Busy;
    reply.text = "fleet backlog full (" + std::to_string(cfg_.maxQueue) + ")";
    rejected_.inc();
    sendMessage(s, reply);
    return;
  }
  FleetJob j;
  j.id = nextJobId_++;
  j.clientSession = s.id;
  j.clientRequest = m.requestId;
  j.spec = m.text;
  j.submitted = std::chrono::steady_clock::now();
  const std::uint64_t id = j.id;
  jobs_.emplace(id, std::move(j));
  pendingQ_.push_back(id);
  s.order.push_back(id);
  s.undelivered++;
  submitted_.inc();
  reply.op = Op::Accepted;
  reply.jobId = id;
  sendMessage(s, reply);
  Message status;
  status.op = Op::Status;
  status.requestId = m.requestId;
  status.jobId = id;
  status.state = JobState::Queued;
  sendMessage(s, status);
}

void Coordinator::handleRegister(Session& s, const Message& m) {
  const auto kv = parseKvLines(m.text);
  s.worker = true;
  auto nameIt = kv.find("name");
  s.workerName = (nameIt != kv.end() && !nameIt->second.empty())
                     ? nameIt->second
                     : "worker-" + std::to_string(s.id);
  const double cap = kvDouble(kv, "capacity");
  s.capacity = cap >= 1.0 ? static_cast<std::size_t>(cap) : 1;
  s.lastSeen = std::chrono::steady_clock::now();
  noteWorkerStats(s.workerName);
  workerLoad_[s.workerName].live = 1;
  logMessage(LogLevel::Info, "coord",
             "worker " + s.workerName + " registered (session " +
                 std::to_string(s.id) + ", capacity " +
                 std::to_string(s.capacity) + ")");
}

void Coordinator::handleHeartbeat(Session& s, const Message& m) {
  if (!s.worker) {
    protocolErrors_.inc();
    logMessage(LogLevel::Warn, "coord",
               "session " + std::to_string(s.id) + ": HEARTBEAT before REGISTER");
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  s.lastSeen = now;
  const auto kv = parseKvLines(m.text);
  WorkerLoad& load = workerLoad_[s.workerName];
  load.queueDepth = kvDouble(kv, "queue_depth");
  load.inflight = kvDouble(kv, "inflight");
  load.queueWaitP50Ms = kvDouble(kv, "queue_wait_p50_ms");
  load.live = 1;
  // A breathing worker renews its leases: expiry exists to catch dead or
  // partitioned holders, not long jobs on a healthy one.
  for (std::uint64_t id : s.leases) {
    auto it = jobs_.find(id);
    if (it != jobs_.end()) {
      it->second.deadline = now + std::chrono::milliseconds(cfg_.leaseTimeoutMs);
    }
  }
}

void Coordinator::handleWorkerResult(Session& s, const Message& m) {
  if (m.jobId == 0) return;  // Admission ack for nothing we track.
  auto it = jobs_.find(m.jobId);
  if (it == jobs_.end()) {
    // Already committed and delivered — a zombie's late duplicate.
    if (m.op == Op::Report) duplicatesDiscarded_.inc();
    return;
  }
  FleetJob& job = it->second;
  switch (m.op) {
    case Op::Accepted:
      return;  // The worker admitted the lease; nothing to record.
    case Op::Busy: {
      // Saturation, not failure: refund the attempt, put the job back, and
      // skip this worker for a beat so the next dispatch spreads out.
      if (job.phase == FleetJob::Phase::Leased && job.worker == s.id) {
        job.attempts = job.attempts > 0 ? job.attempts - 1 : 0;
        s.backoffUntil = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(cfg_.busyBackoffMs);
        requeue(job, "worker busy");
      }
      return;
    }
    case Op::Error: {
      // Only the current lease holder's verdict counts; a stale holder's
      // error is superseded by the re-dispatch already in motion.
      if (job.phase != FleetJob::Phase::Leased || job.worker != s.id) return;
      if (retryable(m.errorCode)) {
        requeue(job, "worker error");
      } else {
        // The worker rejected the spec deterministically (parse failure):
        // any retry would bounce identically.
        failJob(job, m.errorCode == ErrCode::None ? ErrCode::Sim : m.errorCode,
                m.text);
      }
      return;
    }
    case Op::Status: {
      if (job.phase == FleetJob::Phase::Done) return;
      if (m.state == JobState::Running && !job.canceled) {
        auto cit = sessions_.find(job.clientSession);
        if (cit != sessions_.end()) {
          Message fwd = m;
          fwd.requestId = job.clientRequest;
          sendMessage(cit->second, fwd);
        }
      } else if (m.state == JobState::Done || m.state == JobState::Failed) {
        // Stash the final status; the Report that follows on the same
        // stream commits both in order.
        job.finalStatus = m;
      }
      return;
    }
    case Op::Report: {
      if (job.phase == FleetJob::Phase::Done) {
        duplicatesDiscarded_.inc();
        return;
      }
      if (m.state == JobState::Failed && retryable(m.errorCode) &&
          job.attempts < cfg_.maxAttempts) {
        requeue(job, std::string("retryable failure (" +
                                 std::string(toString(m.errorCode)) + ")")
                         .c_str());
        return;
      }
      Message status = job.finalStatus;
      if (status.op != Op::Status) {  // Worker's Status frame got lost.
        status.op = Op::Status;
        status.jobId = m.jobId;
        status.state = m.state;
        status.errorCode = m.errorCode;
      }
      commit(job, status, m);
      return;
    }
    default:
      return;
  }
}

void Coordinator::dispatch(std::chrono::steady_clock::time_point now) {
  while (!pendingQ_.empty()) {
    // Least-loaded healthy worker with lease capacity to spare.
    Session* best = nullptr;
    for (auto& [sid, s] : sessions_) {
      if (!s.worker || s.dead || s.leases.size() >= s.capacity) continue;
      if (s.backoffUntil > now) continue;
      if (!best || s.leases.size() < best->leases.size()) best = &s;
    }
    if (!best) return;
    const std::uint64_t id = pendingQ_.front();
    pendingQ_.pop_front();
    auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.phase != FleetJob::Phase::Pending) {
      continue;  // Canceled or committed while queued; stale entry.
    }
    FleetJob& job = it->second;
    job.phase = FleetJob::Phase::Leased;
    job.worker = best->id;
    job.attempts++;
    job.deadline = now + std::chrono::milliseconds(cfg_.leaseTimeoutMs);
    if (job.firstLease == std::chrono::steady_clock::time_point{}) {
      job.firstLease = now;
      leaseWaitHist_.add(msSince(job.submitted, now));
    }
    best->leases.insert(id);
    Message lease;
    lease.op = Op::Lease;
    lease.requestId = id;
    lease.jobId = id;
    lease.text = job.spec;
    sendMessage(*best, lease);
  }
}

void Coordinator::expireLeases(std::chrono::steady_clock::time_point now) {
  // Workers silent past the heartbeat window are dead; their sessions get
  // flagged and the close path re-queues their leases.
  for (auto& [sid, s] : sessions_) {
    if (s.worker && !s.dead &&
        now - s.lastSeen > std::chrono::milliseconds(cfg_.heartbeatTimeoutMs)) {
      logMessage(LogLevel::Warn, "coord",
                 "worker " + s.workerName + " missed heartbeats; dropping");
      s.dead = true;
    }
  }
  std::vector<std::uint64_t> expired;
  for (auto& [id, j] : jobs_) {
    if (j.phase == FleetJob::Phase::Leased && now > j.deadline) {
      expired.push_back(id);
    }
  }
  for (std::uint64_t id : expired) {
    auto it = jobs_.find(id);
    if (it == jobs_.end()) continue;
    logMessage(LogLevel::Warn, "coord",
               "lease for job " + std::to_string(id) + " expired");
    // Deprioritize the stalled holder so the redispatch prefers a
    // different worker; a lone worker becomes eligible again after the
    // backoff window.
    auto wit = sessions_.find(it->second.worker);
    if (wit != sessions_.end())
      wit->second.backoffUntil =
          now + std::chrono::milliseconds(cfg_.busyBackoffMs);
    requeue(it->second, "lease expired");
  }
}

void Coordinator::requeue(FleetJob& job, const char* why) {
  if (job.phase == FleetJob::Phase::Leased) {
    auto wit = sessions_.find(job.worker);
    if (wit != sessions_.end()) wit->second.leases.erase(job.id);
  }
  job.phase = FleetJob::Phase::Pending;
  job.worker = 0;
  if (job.attempts >= cfg_.maxAttempts) {
    failJob(job, ErrCode::WorkerLost,
            "gave up after " + std::to_string(job.attempts) + " attempts (" +
                why + ")");
    return;
  }
  redispatched_.inc();
  pendingQ_.push_back(job.id);
  logMessage(LogLevel::Info, "coord",
             "job " + std::to_string(job.id) + " re-queued (" + why +
                 "), attempt " + std::to_string(job.attempts) + "/" +
                 std::to_string(cfg_.maxAttempts));
}

void Coordinator::failJob(FleetJob& job, ErrCode code, const std::string& why) {
  Message status;
  status.op = Op::Status;
  status.jobId = job.id;
  status.state = JobState::Failed;
  status.errorCode = code;
  status.text = why;
  Message report;
  report.op = Op::Report;
  report.jobId = job.id;
  report.state = JobState::Failed;
  report.errorCode = code;
  report.text = failReportJson(why, code);
  commit(job, std::move(status), std::move(report));
}

void Coordinator::commit(FleetJob& job, Message status, Message report) {
  // First result wins; callers already filtered Phase::Done duplicates.
  if (job.phase == FleetJob::Phase::Leased) {
    auto wit = sessions_.find(job.worker);
    if (wit != sessions_.end()) wit->second.leases.erase(job.id);
  }
  job.phase = FleetJob::Phase::Done;
  job.worker = 0;
  (report.state == JobState::Failed ? failed_ : completed_)++;
  latencyHist_.add(msSince(job.submitted, std::chrono::steady_clock::now()));
  if (job.canceled) {
    jobs_.erase(job.id);  // Nobody is waiting; drop the result.
    return;
  }
  status.requestId = job.clientRequest;
  status.jobId = job.id;
  report.requestId = job.clientRequest;
  report.jobId = job.id;
  job.finalStatus = std::move(status);
  job.finalReport = std::move(report);
  deliverReady(job.clientSession);
}

void Coordinator::deliverReady(std::uint64_t clientSessionId) {
  auto sit = sessions_.find(clientSessionId);
  if (sit == sessions_.end()) return;
  Session& cs = sit->second;
  // Plan-order streaming: a finished job's report leaves only when every
  // job this client submitted before it has left too.
  while (!cs.order.empty()) {
    auto jit = jobs_.find(cs.order.front());
    if (jit == jobs_.end()) {
      cs.order.pop_front();
      continue;
    }
    FleetJob& j = jit->second;
    if (j.phase != FleetJob::Phase::Done) break;
    sendMessage(cs, j.finalStatus);
    sendMessage(cs, j.finalReport);
    if (cs.undelivered > 0) --cs.undelivered;
    cs.order.pop_front();
    jobs_.erase(jit);
  }
}

void Coordinator::cancelClientJobs(std::uint64_t clientSessionId) {
  std::vector<std::uint64_t> mine;
  for (auto& [id, j] : jobs_) {
    if (j.clientSession == clientSessionId) mine.push_back(id);
  }
  for (std::uint64_t id : mine) {
    auto it = jobs_.find(id);
    if (it == jobs_.end()) continue;
    FleetJob& j = it->second;
    switch (j.phase) {
      case FleetJob::Phase::Pending:
        canceled_.inc();
        jobs_.erase(it);  // pendingQ_ entry goes stale; dispatch skips it.
        break;
      case FleetJob::Phase::Leased:
        // The worker finishes anyway; the result is discarded at commit.
        canceled_.inc();
        j.canceled = true;
        break;
      case FleetJob::Phase::Done:
        jobs_.erase(it);  // Buffered but never deliverable now.
        break;
    }
  }
}

void Coordinator::closeSession(Session& s) {
  if (s.worker) {
    workersLost_.inc();
    workerLoad_[s.workerName].live = 0;
    if (!s.leases.empty()) {
      logMessage(LogLevel::Warn, "coord",
                 "worker " + s.workerName + " lost with " +
                     std::to_string(s.leases.size()) + " lease(s); re-queueing");
    }
    const std::vector<std::uint64_t> held(s.leases.begin(), s.leases.end());
    for (std::uint64_t id : held) {
      auto it = jobs_.find(id);
      if (it != jobs_.end()) requeue(it->second, "worker lost");
    }
    s.leases.clear();
  } else {
    cancelClientJobs(s.id);
  }
  if (s.fd >= 0) {
    ::close(s.fd);
    s.fd = -1;
  }
}

std::size_t Coordinator::liveWorkers() const {
  std::size_t n = 0;
  for (const auto& [id, s] : sessions_) {
    if (s.worker && !s.dead) ++n;
  }
  return n;
}

void Coordinator::noteWorkerStats(const std::string& name) {
  // One gauge set per worker *name*, registered on first sight; the map
  // node is stable, so reconnects under the same name reuse it.
  if (workerLoad_.count(name)) return;
  WorkerLoad& load = workerLoad_[name];
  const std::string base = "coord/worker/" + name + "/";
  metrics_.gauge(base + "live", [&load] { return load.live; });
  metrics_.gauge(base + "queue_depth", [&load] { return load.queueDepth; });
  metrics_.gauge(base + "inflight", [&load] { return load.inflight; });
  metrics_.gauge(base + "queue_wait_p50_ms",
                 [&load] { return load.queueWaitP50Ms; });
}

std::string Coordinator::statsJson() {
  std::ostringstream os;
  os << "{\"coordinator\": {";
  const std::vector<std::string>& names = metrics_.names();
  const std::vector<double> values = metrics_.sample();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) os << ", ";
    os << '"' << names[i] << "\": " << values[i];
  }
  os << "}, \"workers\": {";
  bool first = true;
  for (const auto& [name, load] : workerLoad_) {
    if (!first) os << ", ";
    first = false;
    os << '"' << jsonEscape(name) << "\": {\"live\": " << load.live
       << ", \"queue_depth\": " << load.queueDepth
       << ", \"inflight\": " << load.inflight
       << ", \"queue_wait_p50_ms\": " << load.queueWaitP50Ms << "}";
  }
  os << "}, \"lease_wait_ms\": ";
  histogramJson(os, leaseWaitHist_);
  os << ", \"job_latency_ms\": ";
  histogramJson(os, latencyHist_);
  os << "}\n";
  return os.str();
}

std::string Coordinator::metricsText() {
  // Registry names already start with "coord/", so the prefix is just the
  // product family: coord/submitted -> renuca_coord_submitted.
  return telemetry::renderPrometheus(metrics_,
                                     {{"coord/lease_wait_ms", &leaseWaitHist_},
                                      {"coord/job_latency_ms", &latencyHist_}},
                                     "renuca_");
}

int Coordinator::run() {
  const auto idleTimeout = std::chrono::milliseconds(cfg_.idleTimeoutMs);
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fdSession;
  for (;;) {
    drainAdopted();
    const auto now = std::chrono::steady_clock::now();

    if (stopFlag_.load(std::memory_order_relaxed) && !draining_) {
      draining_ = true;
      logMessage(LogLevel::Info, "coord", "draining: finishing leased work");
      for (int fd : listenFds_) ::close(fd);
      listenFds_.clear();
    }

    expireLeases(now);
    dispatch(now);

    if (draining_) {
      if (liveWorkers() == 0 && !jobs_.empty()) {
        // Nothing left to run the work; fail it rather than hang the drain.
        std::vector<std::uint64_t> ids;
        for (auto& [id, j] : jobs_) {
          if (j.phase != FleetJob::Phase::Done) ids.push_back(id);
        }
        for (std::uint64_t id : ids) {
          auto it = jobs_.find(id);
          if (it == jobs_.end()) continue;
          if (it->second.phase == FleetJob::Phase::Leased) {
            auto wit = sessions_.find(it->second.worker);
            if (wit != sessions_.end()) wit->second.leases.erase(id);
            it->second.worker = 0;
            it->second.phase = FleetJob::Phase::Pending;
          }
          failJob(it->second, ErrCode::Canceled, "no workers left during drain");
        }
        pendingQ_.clear();
      }
      bool flushed = jobs_.empty();
      if (flushed) {
        for (auto& [id, s] : sessions_) {
          if (s.outOff < s.out.size() && !s.dead) {
            flushed = false;
            break;
          }
        }
      }
      if (flushed) break;
    }

    fds.clear();
    fdSession.clear();
    if (wakePipe_[0] >= 0) {
      fds.push_back({wakePipe_[0], POLLIN, 0});
      fdSession.push_back(0);
    }
    for (int fd : listenFds_) {
      fds.push_back({fd, POLLIN, 0});
      fdSession.push_back(0);
    }
    for (auto& [id, s] : sessions_) {
      short events = 0;
      if (!s.dead && s.out.size() - s.outOff < cfg_.softWriteBuffer)
        events |= POLLIN;
      if (s.outOff < s.out.size()) events |= POLLOUT;
      if (events == 0 && !s.dead) events = POLLIN;
      fds.push_back({s.fd, events, 0});
      fdSession.push_back(id);
    }

    const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), kPollMs);
    if (n < 0 && errno != EINTR) {
      logMessage(LogLevel::Error, "coord", "poll: " + errnoString());
      break;
    }

    std::vector<std::uint64_t> toClose;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      const pollfd& p = fds[i];
      if (p.revents == 0) continue;
      if (p.fd == wakePipe_[0]) {
        char buf[256];
        while (::read(wakePipe_[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (fdSession[i] == 0) {
        acceptPending(p.fd);
        continue;
      }
      auto it = sessions_.find(fdSession[i]);
      if (it == sessions_.end()) continue;
      Session& s = it->second;
      bool alive = true;
      if (p.revents & (POLLERR | POLLNVAL)) alive = false;
      if (alive && (p.revents & POLLOUT)) alive = flushSession(s);
      if (alive && (p.revents & (POLLIN | POLLHUP))) alive = readSession(s);
      if (alive && s.outOff < s.out.size()) alive = flushSession(s);
      if (!alive) {
        s.dead = true;
        toClose.push_back(s.id);
      } else if (s.dead) {
        toClose.push_back(s.id);
      }
    }

    const auto sweep = std::chrono::steady_clock::now();
    for (auto& [id, s] : sessions_) {
      if (s.dead) {
        // Heartbeat expiry flags sessions outside the event sweep above;
        // make sure every dead session is reaped this round.
        toClose.push_back(id);
        continue;
      }
      if (!s.worker && cfg_.idleTimeoutMs > 0 && s.undelivered == 0 &&
          s.out.size() == s.outOff && sweep - s.lastActive > idleTimeout) {
        logMessage(LogLevel::Info, "coord",
                   "session " + std::to_string(id) + ": idle timeout");
        s.dead = true;
        toClose.push_back(id);
      }
    }
    for (std::uint64_t id : toClose) {
      auto it = sessions_.find(id);
      if (it == sessions_.end()) continue;
      flushSession(it->second);
      closeSession(it->second);
      sessions_.erase(it);
    }
  }

  for (auto& [id, s] : sessions_) {
    flushSession(s);
    if (s.fd >= 0) {
      ::close(s.fd);
      s.fd = -1;
    }
  }
  sessions_.clear();
  if (!cfg_.socketPath.empty()) ::unlink(cfg_.socketPath.c_str());
  logMessage(LogLevel::Info, "coord", "drained; exiting");
  return 0;
}

}  // namespace renuca::server
