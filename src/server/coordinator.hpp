// renuca-coord: the fleet coordinator for sharded simulation service.
//
// One coordinator fronts N renucad workers.  Workers dial in and REGISTER
// (server.hpp's fleet worker mode); clients connect exactly as they would
// to a single renucad and SUBMIT job specs.  The coordinator shards the
// incoming work into per-job *leases* with deadlines, re-dispatches the
// leases of workers that die, stall, or answer BUSY, and streams each
// client's reports back in submission order — so a client cannot tell a
// fleet from one big server, except that killing any single worker no
// longer loses work.
//
// The reliability rules, in one place:
//
//  * Lease lifecycle: Pending -> Leased (deadline = now + leaseTimeoutMs,
//    renewed by the holder's heartbeats) -> Done.  An expired lease or a
//    dead holder re-queues the job; every dispatch consumes one of
//    maxAttempts, except a BUSY bounce (saturation is not failure — the
//    worker gets a short dispatch backoff instead).
//  * At-most-once commit: the first Done/Failed result for a fleet job id
//    wins; anything later — typically a zombie worker's late duplicate
//    after its lease was re-dispatched — is counted and discarded.
//    Results are deterministic (a job's report depends only on its spec),
//    so "first wins" never changes the answer.
//  * Failure classification: a Failed result whose ErrCode is retryable
//    (Io / Busy / WorkerLost) re-queues until maxAttempts; a fatal one
//    (Sim — deterministic, would fail identically anywhere) commits
//    immediately.  Attempts exhausted => a synthetic Failed report.
//  * Ordered delivery: final Status + Report frames are buffered per
//    client session and released in submission order, matching what a
//    single renucad running the same plan would stream.
//  * Cancellation: a client that disconnects abandons its unfinished
//    jobs — pending ones are dropped, leased ones finish on the worker
//    and their results are discarded at commit.
//  * Drain: Shutdown/SIGTERM stops admission (BUSY), lets leased work
//    finish, and fails whatever cannot run if no worker is left alive.
//
// Like renucad, the loop is single-threaded poll(): every socket, lease
// table, and buffer belongs to the loop thread; requestStop() is the only
// cross-thread entry point (async-signal-safe).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "server/protocol.hpp"
#include "telemetry/metrics.hpp"

namespace renuca::server {

struct CoordinatorConfig {
  /// Unix-domain listen path; empty = no Unix listener (tests adopt
  /// socketpair ends instead).
  std::string socketPath;
  /// Optional TCP listener, "host:port" ("" or "*" host = any interface).
  std::string listenHostPort;
  /// Admission bound across all clients; a full backlog answers BUSY.
  std::size_t maxQueue = 4096;
  /// A lease not renewed (by its holder's heartbeats) within this window
  /// is presumed lost and re-dispatched.
  int leaseTimeoutMs = 10000;
  /// A worker silent for this long is dead; its leases re-dispatch.
  int heartbeatTimeoutMs = 5000;
  /// Dispatches (including the first) a job may consume before the
  /// coordinator gives up and fails it.  BUSY bounces do not count.
  int maxAttempts = 5;
  /// A worker that answered BUSY is skipped for this long.
  int busyBackoffMs = 300;
  /// Client sessions with no traffic and no jobs in flight are closed
  /// after this long (<= 0 = never).  Never applies to workers.
  int idleTimeoutMs = 0;
  /// Frames larger than this are a fatal protocol violation.
  std::size_t maxFrameBytes = kDefaultMaxFrameBytes;
  /// Reading pauses for a session whose unsent backlog passes this...
  std::size_t softWriteBuffer = 1u << 20;
  /// ...and the session is dropped outright past this.
  std::size_t maxWriteBuffer = 64u << 20;
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorConfig cfg);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds the configured listeners.  Optional: a coordinator can run
  /// purely on adopted connections (the in-process fleet tests do).
  bool listen();

  /// Hands the coordinator one end of an already-connected stream socket.
  /// Whether the peer is a client or a worker emerges from its first
  /// frames (a worker REGISTERs).  Thread-safe.
  void adoptConnection(int fd);

  /// Runs the event loop until a stop request drains.  Returns 0 on a
  /// clean drain.
  int run();

  /// Begins a graceful drain.  Async-signal-safe.
  void requestStop();

 private:
  struct Session {
    int fd = -1;
    std::uint64_t id = 0;
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;  ///< Bytes [outOff, end) are unsent.
    std::size_t outOff = 0;
    bool dead = false;
    // Worker half (set by REGISTER).
    bool worker = false;
    std::string workerName;
    std::size_t capacity = 1;           ///< Max concurrent leases.
    std::set<std::uint64_t> leases;     ///< Fleet job ids held right now.
    std::chrono::steady_clock::time_point lastSeen;
    std::chrono::steady_clock::time_point backoffUntil{};
    // Client half.
    std::deque<std::uint64_t> order;  ///< Submission order for delivery.
    std::size_t undelivered = 0;      ///< Jobs admitted, report not yet sent.
    std::chrono::steady_clock::time_point lastActive;
  };

  /// One sharded job, from admission to ordered delivery.
  struct FleetJob {
    enum class Phase : std::uint8_t { Pending, Leased, Done };
    std::uint64_t id = 0;
    std::uint64_t clientSession = 0;
    std::uint64_t clientRequest = 0;
    std::string spec;
    Phase phase = Phase::Pending;
    int attempts = 0;               ///< Dispatches consumed.
    std::uint64_t worker = 0;       ///< Lease holder's session id (Leased).
    bool canceled = false;          ///< Client left; discard the result.
    bool delivered = false;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point firstLease{};
    std::chrono::steady_clock::time_point deadline{};
    Message finalStatus;  ///< Buffered for in-order delivery once Done.
    Message finalReport;
  };

  // Event-loop internals (loop thread only).
  void drainAdopted();
  void acceptPending(int listenFd);
  Session& addSession(int fd);
  bool readSession(Session& s);
  bool flushSession(Session& s);
  void sendMessage(Session& s, const Message& m);
  void handleMessage(Session& s, const Message& m);
  void handleSubmit(Session& s, const Message& m);
  void handleRegister(Session& s, const Message& m);
  void handleHeartbeat(Session& s, const Message& m);
  void handleWorkerResult(Session& s, const Message& m);
  void closeSession(Session& s);

  /// Grants pending jobs to healthy workers with free capacity.
  void dispatch(std::chrono::steady_clock::time_point now);
  /// Re-queues expired leases; kills workers silent past the heartbeat
  /// timeout (their sessions are flagged dead and reaped by run()).
  void expireLeases(std::chrono::steady_clock::time_point now);
  /// Re-queues one leased job (lease lost / retryable failure).
  void requeue(FleetJob& job, const char* why);
  /// Commits the final result for a job (first writer wins) and releases
  /// any in-order deliveries it unblocks.
  void commit(FleetJob& job, Message status, Message report);
  /// Fails a job synthetically (attempts exhausted, no workers on drain).
  void failJob(FleetJob& job, ErrCode code, const std::string& why);
  /// Sends every buffered result at the front of the session's order
  /// queue whose job is Done.
  void deliverReady(std::uint64_t clientSessionId);
  /// Drops a departed client's unfinished jobs.
  void cancelClientJobs(std::uint64_t clientSessionId);

  std::string statsJson();
  std::string metricsText();
  std::size_t liveWorkers() const;
  void noteWorkerStats(const std::string& name);
  void wake();

  CoordinatorConfig cfg_;
  std::vector<int> listenFds_;
  int wakePipe_[2] = {-1, -1};
  std::map<std::uint64_t, Session> sessions_;
  std::uint64_t nextSessionId_ = 1;
  std::uint64_t nextJobId_ = 1;
  bool draining_ = false;

  std::atomic<bool> stopFlag_{false};
  std::mutex adoptMutex_;
  std::vector<int> adopted_;

  std::map<std::uint64_t, FleetJob> jobs_;  ///< Every unfinished job.
  std::deque<std::uint64_t> pendingQ_;      ///< Awaiting dispatch (FIFO).

  /// Last heartbeat-reported load per worker *name* (stable storage for
  /// the per-worker gauges; a name's entry survives reconnects).
  struct WorkerLoad {
    double queueDepth = 0;
    double inflight = 0;
    double queueWaitP50Ms = 0;
    double live = 0;
  };
  std::map<std::string, WorkerLoad> workerLoad_;

  telemetry::MetricsRegistry metrics_;
  telemetry::Counter submitted_;
  telemetry::Counter rejected_;
  telemetry::Counter protocolErrors_;
  telemetry::Counter redispatched_;
  telemetry::Counter duplicatesDiscarded_;
  telemetry::Counter workersLost_;
  telemetry::Counter canceled_;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;

  Histogram leaseWaitHist_;   ///< Submit -> first lease, per job (ms).
  Histogram latencyHist_;     ///< Submit -> commit, per job (ms).
};

}  // namespace renuca::server
