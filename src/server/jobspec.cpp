#include "server/jobspec.hpp"

#include <algorithm>

#include "workload/app_profile.hpp"
#include "workload/mixes.hpp"

namespace renuca::server {

namespace {

/// Keys the daemon manages itself; accepting them from a client would let
/// one job write server-side files or flip process-global state.
const char* kServerOwnedKeys[] = {
    "report_json", "jobs",          "mixes",        "strict",
    "trace_json",  "snapshot_save", "snapshot_load", "snapshot_dir",
    "log_level",
};

bool rigByName(const std::string& name, sim::SystemConfig& cfg) {
  if (name == "default") {
    cfg = sim::defaultConfig();
  } else if (name == "single_core") {
    cfg = sim::singleCore();
  } else if (name == "l2_small") {
    cfg = sim::l2Small();
  } else if (name == "l3_small") {
    cfg = sim::l3Small();
  } else if (name == "rob_large") {
    cfg = sim::robLarge();
  } else {
    return false;
  }
  return true;
}

bool knownApp(const std::string& name) {
  for (const workload::AppProfile& p : workload::spec2006Profiles()) {
    if (p.name == name) return true;
  }
  return false;
}

}  // namespace

bool parseJobSpec(const std::string& text, sim::Job& job, std::string& error) {
  KvConfig kv = KvConfig::fromString(text);
  if (!kv.positional().empty()) {
    error = "spec token '" + kv.positional()[0] + "' is not key=value";
    return false;
  }
  for (const char* key : kServerOwnedKeys) {
    if (kv.has(key)) {
      error = std::string(key) + ": server-managed key, not accepted in job specs";
      return false;
    }
  }
  std::vector<ConfigError> errs =
      sim::validateConfigKeys(kv, {"rig", "app", "mix", "label", "job_id"});
  if (!errs.empty()) {
    error.clear();
    for (std::size_t i = 0; i < errs.size(); ++i) {
      if (i) error += "; ";
      error += errs[i].toString();
    }
    return false;
  }

  const auto app = kv.getString("app");
  const auto mixName = kv.getString("mix");
  if (app && mixName) {
    error = "app= and mix= are mutually exclusive";
    return false;
  }

  sim::SystemConfig cfg;
  const std::string rig = kv.getOr("rig", app ? std::string("single_core")
                                              : std::string("default"));
  if (!rigByName(rig, cfg)) {
    error = "rig: unknown preset '" + rig +
            "' (default, single_core, l2_small, l3_small, rob_large)";
    return false;
  }
  cfg.applyOverrides(kv);

  workload::WorkloadMix mix;
  if (app) {
    if (!knownApp(*app)) {
      error = "app: unknown application '" + *app + "'";
      return false;
    }
    if (cfg.numCores != 1) {
      error = "app= needs a 1-core rig (got cores=" +
              std::to_string(cfg.numCores) + "); use rig=single_core";
      return false;
    }
    mix.name = *app;
    mix.appNames = {*app};
  } else {
    const std::string wanted = mixName.value_or("WL1");
    const auto& all = workload::standardMixes();
    auto it = std::find_if(all.begin(), all.end(),
                           [&](const workload::WorkloadMix& m) { return m.name == wanted; });
    if (it == all.end()) {
      error = "mix: unknown workload '" + wanted + "' (WL1..WL" +
              std::to_string(all.size()) + ")";
      return false;
    }
    // Non-16-core configs (mesh=8x8 cores=64 fleet sweeps) get the same
    // recipe re-sampled at the config's core count ("WL1@64").
    mix = cfg.numCores == it->appNames.size()
              ? *it
              : workload::mixForCores(wanted, cfg.numCores);
  }

  job.label = kv.getOr("label", mix.name);
  job.clientJobId = kv.getOr("job_id", std::string());
  job.config = cfg;
  job.mix = std::move(mix);
  return true;
}

}  // namespace renuca::server
