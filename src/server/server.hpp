// renucad: the resident simulation service.
//
// One daemon holds what every cold CLI invocation pays for again and again
// — the warm thread pool, the on-disk warm-state snapshot cache, the
// telemetry sinks — and clients stream jobs at it over a Unix-domain
// socket (TCP optional).  Three threads of control:
//
//  * the event loop (run(), the caller's thread): poll()-driven, owns every
//    socket.  Accepts connections, decodes frames (server/protocol.hpp),
//    validates job specs with the strict key registry, admits jobs into a
//    *bounded* queue (full -> explicit BUSY reply, never unbounded memory),
//    answers STATS/PING, flushes per-session write buffers with
//    slow-reader backpressure, and closes idle sessions;
//  * the executor thread: drains the queue in batches into a SweepPlan and
//    runs it on the resident pool via the existing runPlan() — so queued
//    jobs from *different clients* are grouped by warm-state fingerprint
//    and share post-fast-forward snapshots exactly like a local
//    snapshot_dir= sweep.  Per-job completion streams Status + Report
//    frames back through the loop;
//  * the pool workers inside runPlan (common/thread_pool.hpp).
//
// Fleet worker mode: with coordinatorAddr set, the server additionally
// dials a renuca-coord coordinator (reconnecting with exponential backoff
// whenever the link drops), REGISTERs itself (name, threads, lease
// capacity), answers LEASE grants exactly like SUBMITs — the lease's
// fleet-global job id rides every Status/Report frame back so the
// coordinator can commit results at-most-once — and HEARTBEATs its queue
// depth and queue-wait p50 every heartbeatMs.  A worker needs no listener
// of its own in this mode; killing it mid-job simply drops the link and
// the coordinator re-dispatches its leases.
//
// Determinism: a job's result depends only on its spec (each System seeds
// itself from its config), so a report served over the wire is
// byte-identical — modulo the provenance fields — to the same job run via
// a local runPlan.  tests/test_server holds this against 8 concurrent
// clients.
//
// Shutdown: requestStop() is async-signal-safe (renucad calls it from the
// SIGINT/SIGTERM handlers).  The server stops listening, rejects new
// submissions with BUSY, finishes every admitted job, flushes every
// report, and run() returns 0.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "server/protocol.hpp"
#include "sim/sweep.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace renuca::server {

struct ServerConfig {
  /// Unix-domain listen path; empty = no Unix listener (tests adopt
  /// socketpair ends instead).
  std::string socketPath;
  /// Optional TCP listener, "host:port" ("" or "*" host = any interface).
  std::string listenHostPort;
  /// Resident sweep workers (0 = one per hardware thread).
  unsigned jobs = 0;
  /// Admission bound: jobs waiting for the executor.  A full queue makes
  /// SUBMIT answer BUSY.
  std::size_t maxQueue = 64;
  /// Warm-start snapshot directory shared across all clients' jobs
  /// (sim/sweep.hpp's warmStartDir); empty = cold runs.
  std::string snapshotDir;
  /// Sessions with no traffic and no jobs in flight are closed after this
  /// long (<= 0 = never).
  int idleTimeoutMs = 0;
  /// Job-lifecycle trace output (trace_json= on renucad): one span per
  /// queued/admitted/executing stage per job, tid = job id, timestamps in
  /// microseconds since server start.  Empty = no tracing.
  std::string traceJsonPath;
  /// Frames larger than this are a fatal protocol violation.
  std::size_t maxFrameBytes = kDefaultMaxFrameBytes;
  /// Reading pauses for a session whose unsent backlog passes this...
  std::size_t softWriteBuffer = 1u << 20;
  /// ...and the session is dropped outright past this (a reader this slow
  /// would otherwise grow the buffer without bound).
  std::size_t maxWriteBuffer = 64u << 20;

  // Fleet worker mode (all optional).
  /// Coordinator address list ("unix:/path", a bare socket path, or
  /// "host:port"; comma-separated for failover).  Empty = standalone.
  std::string coordinatorAddr;
  /// Name this worker registers under (default "w<pid>").
  std::string workerName;
  /// Heartbeat cadence toward the coordinator.
  int heartbeatMs = 1000;
  /// Reconnect backoff cap after the coordinator link drops.
  int reconnectMaxMs = 10000;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners.  False (with a log line) when a
  /// socket cannot be set up.  Optional: a server can also run purely on
  /// adopted connections.
  bool listen();

  /// Hands the server one end of an already-connected stream socket (the
  /// in-process test harness uses socketpair()).  Thread-safe; callable
  /// before or during run().
  void adoptConnection(int fd);

  /// Like adoptConnection, but the peer is a coordinator: the server sends
  /// a REGISTER frame and serves LEASE grants on it (the in-process fleet
  /// tests wire worker and coordinator with socketpair()).  At most one
  /// coordinator session is live at a time.
  void adoptCoordinator(int fd);

  /// Runs the event loop until a stop request drains.  Returns 0 on a
  /// clean drain.
  int run();

  /// Begins a graceful drain.  Async-signal-safe (an atomic store and a
  /// pipe write), so signal handlers may call it directly.
  void requestStop();

  unsigned workerCount() const { return pool_->threadCount(); }

 private:
  struct Session {
    int fd = -1;
    std::uint64_t id = 0;
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;  ///< Bytes [outOff, end) are unsent.
    std::size_t outOff = 0;
    std::size_t inflight = 0;  ///< Jobs admitted and not yet reported.
    bool dead = false;         ///< Close once flagged (after flush attempt).
    bool coordinator = false;  ///< Fleet link: exempt from idle reaping.
    std::chrono::steady_clock::time_point lastActive;
  };

  /// One admitted job, with everything needed to route its results back.
  struct QueuedJob {
    std::uint64_t jobId = 0;
    /// Id carried on the wire: the local jobId for direct submissions, the
    /// coordinator's fleet-global id for leases.
    std::uint64_t wireJobId = 0;
    std::uint64_t sessionId = 0;
    std::uint64_t requestId = 0;
    std::chrono::steady_clock::time_point submitted;
    /// Executor drained it from the queue into a plan (loop -> executor
    /// handoff publishes it; only the executor/workers read it).
    std::chrono::steady_clock::time_point admitted;
    /// Simulation started (written by onJobStart and read by onJobDone on
    /// the same worker thread, so no lock is needed).
    std::chrono::steady_clock::time_point execStart;
    sim::Job job;
  };

  struct Outgoing {
    std::uint64_t sessionId = 0;
    Message msg;
  };

  // Event-loop internals (loop thread only).
  void drainAdopted();
  void drainOutgoing();
  void acceptPending(int listenFd);
  Session& addSession(int fd);
  bool readSession(Session& s);
  bool flushSession(Session& s);
  void sendMessage(Session& s, const Message& m);
  void handleMessage(Session& s, const Message& m);
  void handleSubmit(Session& s, const Message& m, bool lease);
  void closeSession(Session& s);
  std::string statsJson();
  std::string metricsText();

  // Fleet link (loop thread only).
  void registerWithCoordinator(Session& s);
  void maintainCoordinatorLink(std::chrono::steady_clock::time_point now);
  std::size_t queueDepthNow();

  /// Microseconds since server construction (the lifecycle trace's clock).
  Cycle traceNowUs() const;
  /// Emits one job-lifecycle span; serialized — callable from any thread.
  void jobSpan(const char* stage, const QueuedJob& q, Cycle start, Cycle end);

  // Cross-thread plumbing.
  void executorLoop();
  void postOutgoing(std::uint64_t sessionId, Message m);
  void wake();

  ServerConfig cfg_;
  std::unique_ptr<ThreadPool> pool_;

  std::vector<int> listenFds_;
  int wakePipe_[2] = {-1, -1};
  std::map<std::uint64_t, Session> sessions_;
  std::uint64_t nextSessionId_ = 1;
  std::uint64_t nextJobId_ = 1;
  bool draining_ = false;  ///< Loop-thread view of the stop request.

  std::atomic<bool> stopFlag_{false};
  std::atomic<bool> executorDone_{false};
  std::thread executor_;

  std::mutex queueMutex_;
  std::condition_variable queueCv_;
  std::deque<QueuedJob> pending_;
  bool drainRequested_ = false;  ///< Guarded by queueMutex_.

  std::mutex outgoingMutex_;
  std::deque<Outgoing> outgoing_;
  std::mutex adoptMutex_;
  std::vector<int> adopted_;
  std::vector<int> adoptedCoord_;  ///< Guarded by adoptMutex_ too.

  // Fleet link state (loop thread only).
  std::uint64_t coordSessionId_ = 0;
  std::chrono::steady_clock::time_point nextCoordAttempt_{};
  std::chrono::steady_clock::time_point lastHeartbeat_{};
  int coordBackoffMs_ = 0;

  // Health.  Counters live in the metrics registry and are bumped only by
  // the loop thread; values the executor/workers touch are atomics read
  // through gauges, so STATS (answered on the loop thread) never races.
  telemetry::MetricsRegistry metrics_;
  telemetry::Counter accepted_;
  telemetry::Counter rejected_;
  telemetry::Counter protocolErrors_;
  std::atomic<std::uint64_t> inflightA_{0};
  std::atomic<std::uint64_t> completedA_{0};
  std::atomic<std::uint64_t> failedA_{0};
  std::atomic<std::uint64_t> queueDepthA_{0};
  std::atomic<std::uint64_t> sessionsA_{0};

  std::mutex statsMutex_;      ///< Histograms (executor writes, loop reads).
  Histogram queueDepthHist_;
  Histogram latencyHist_;     ///< Submit -> report, per job (ms).
  Histogram queueWaitHist_;   ///< Submit -> simulation start, per job (ms).
  Histogram execHist_;        ///< Simulation start -> done, per job (ms).

  /// Job-lifecycle tracer (cfg_.traceJsonPath); TraceWriter is not
  /// thread-safe and spans come from the executor and pool workers, so
  /// every emission goes through jobSpan()'s lock.
  std::unique_ptr<telemetry::TraceWriter> jobTracer_;
  std::mutex jobTracerMutex_;
  std::chrono::steady_clock::time_point startTime_;
};

}  // namespace renuca::server
