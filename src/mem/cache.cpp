#include "mem/cache.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace renuca::mem {

CacheBank::CacheBank(const CacheConfig& config, std::string name, std::uint64_t seed)
    : cfg_(config), name_(std::move(name)), numSets_(config.numSets()),
      rng_(seed ^ 0xcac4ebacull, 0xbadc0ffeull), stats_(name_) {
  RENUCA_ASSERT(cfg_.ways > 0 && numSets_ > 0, "cache " + name_ + " has zero geometry");
  if (isPow2(numSets_)) setMask_ = numSets_ - 1;
  RENUCA_ASSERT(cfg_.sizeBytes % (static_cast<std::uint64_t>(cfg_.lineBytes) * cfg_.ways) == 0,
                "cache " + name_ + " size not divisible by line*ways");
  const std::size_t frames = static_cast<std::size_t>(numSets_) * cfg_.ways;
  tags_.assign(frames, kInvalidTag);
  flags_.assign(frames, 0);
  lastUse_.assign(frames, 0);
  if (cfg_.replacement == ReplacementKind::TreePlru) {
    RENUCA_ASSERT(isPow2(cfg_.ways), "tree-PLRU requires power-of-two ways");
    plruBits_.assign(numSets_, 0);
  }
  if (cfg_.trackFrameWrites) {
    frameWrites_.assign(frames, 0);
  }
  RENUCA_ASSERT(cfg_.equalChanceEvery == 0 || cfg_.trackFrameWrites,
                "EqualChance needs frame write counters");
  if (cfg_.compress != compress::Kind::None) {
    RENUCA_ASSERT(cfg_.trackFrameWrites, "compression needs frame write counters");
    contentSeed_.assign(frames, 0);
    contentCls_.assign(frames, 0);
    storedBits_.assign(frames, 0);
    frameBits_.assign(frames, 0);
  }
}

void CacheBank::flushHotStats() const {
  auto move = [this](std::uint64_t& pending, const char* key) {
    if (pending != 0) {
      stats_.inc(key, pending);
      pending = 0;
    }
  };
  move(hot_.readHits, "read_hits");
  move(hot_.readMisses, "read_misses");
  move(hot_.writeHits, "write_hits");
  move(hot_.writeMisses, "write_misses");
  move(hot_.fills, "fills");
  move(hot_.evictions, "evictions");
  move(hot_.dirtyEvictions, "dirty_evictions");
  move(hot_.invalidations, "invalidations");
  move(hot_.writebackHits, "writeback_hits");
  move(hot_.equalChanceRedirects, "equalchance_redirects");
  move(hot_.frameDeaths, "frame_deaths");
}

std::optional<std::uint32_t> CacheBank::findWay(std::uint32_t set, BlockAddr block) const {
  // Invalid frames hold kInvalidTag, so tag equality alone decides: the scan
  // touches only the dense tag array.
  const BlockAddr* base = &tags_[frameIndex(set, 0)];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w] == block) return w;
  }
  return std::nullopt;
}

bool CacheBank::contains(BlockAddr block) const {
  return block == memoBlock_ || findWay(setOf(block), block).has_value();
}

void CacheBank::touch(std::uint32_t set, std::uint32_t way) {
  lastUse_[frameIndex(set, way)] = ++useTick_;
  if (cfg_.replacement == ReplacementKind::TreePlru) {
    // Walk root->leaf, pointing each node away from the touched way.
    std::uint32_t bitsv = plruBits_[set];
    std::uint32_t node = 0;
    std::uint32_t span = cfg_.ways;
    std::uint32_t lo = 0;
    while (span > 1) {
      std::uint32_t half = span / 2;
      bool right = way >= lo + half;
      if (right) {
        bitsv &= ~(1u << node);  // point left (away from touched)
        lo += half;
        node = 2 * node + 2;
      } else {
        bitsv |= (1u << node);  // point right
        node = 2 * node + 1;
      }
      span = half;
    }
    plruBits_[set] = bitsv;
  }
}

std::uint32_t CacheBank::liveLruWay(std::uint32_t set) const {
  const std::uint64_t* use = &lastUse_[frameIndex(set, 0)];
  const std::uint8_t* dead = &frameDead_[frameIndex(set, 0)];
  std::uint32_t victim = cfg_.ways;
  std::uint64_t best = 0;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (dead[w]) continue;
    if (victim == cfg_.ways || use[w] < best) {
      best = use[w];
      victim = w;
    }
  }
  RENUCA_ASSERT(victim < cfg_.ways, "victim lookup in fully dead set of " + name_);
  return victim;
}

std::uint32_t CacheBank::victimWay(std::uint32_t set) {
  const std::uint32_t base = frameIndex(set, 0);
  const std::uint8_t* dead = frameDead_.empty() ? nullptr : &frameDead_[base];
  // Invalid frames first, for every policy.
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (!(flags_[base + w] & kFlagValid) && !(dead && dead[w])) return w;
  }
  if (dead) {
    // Degraded set: tree-PLRU/random pointers may land on a dead way, so
    // fall back to LRU over the surviving ways (timestamps are maintained
    // for every replacement policy).
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
      if (dead[w]) return liveLruWay(set);
    }
  }
  switch (cfg_.replacement) {
    case ReplacementKind::Lru: {
      const std::uint64_t* use = &lastUse_[base];
      std::uint32_t victim = 0;
      std::uint64_t best = use[0];
      for (std::uint32_t w = 1; w < cfg_.ways; ++w) {
        if (use[w] < best) {
          best = use[w];
          victim = w;
        }
      }
      return victim;
    }
    case ReplacementKind::TreePlru: {
      std::uint32_t bitsv = plruBits_[set];
      std::uint32_t node = 0;
      std::uint32_t span = cfg_.ways;
      std::uint32_t lo = 0;
      while (span > 1) {
        std::uint32_t half = span / 2;
        bool right = (bitsv >> node) & 1u;
        if (right) {
          lo += half;
          node = 2 * node + 2;
        } else {
          node = 2 * node + 1;
        }
        span = half;
      }
      return lo;
    }
    case ReplacementKind::Random:
      return rng_.nextBelow(cfg_.ways);
  }
  return 0;
}

bool CacheBank::access(BlockAddr block, AccessType type) {
  if (block != memoBlock_) {
    std::uint32_t set = setOf(block);
    auto way = findWay(set, block);
    if (!way) {
      ++(type == AccessType::Read ? hot_.readMisses : hot_.writeMisses);
      return false;
    }
    memoBlock_ = block;
    memoSet_ = set;
    memoWay_ = *way;
  }
  // Copy before recordFrameWrite: a wear-out death in there resets the
  // memo, but this access still completes against the frame it hit.
  const std::uint32_t set = memoSet_;
  const std::uint32_t way = memoWay_;
  ++(type == AccessType::Read ? hot_.readHits : hot_.writeHits);
  if (type == AccessType::Write) {
    flags_[frameIndex(set, way)] |= kFlagDirty;
    // Demand writes never reach compressed (LLC) banks — the hierarchy
    // write-allocates into L1 — so the full-line charge is the only case.
    recordFrameWrite(set, way, compress::kLineBits);
  }
  touch(set, way);
  return true;
}

bool CacheBank::lineCritical(BlockAddr block) const {
  std::uint32_t set = setOf(block);
  auto way = findWay(set, block);
  return way.has_value() && (flags_[frameIndex(set, *way)] & kFlagCritical) != 0;
}

Eviction CacheBank::insert(BlockAddr block, bool dirty, bool critical,
                           const compress::LineContent* content) {
  std::uint32_t set = setOf(block);
  RENUCA_ASSERT(block != kInvalidTag, "insert of sentinel block address in " + name_);
  RENUCA_ASSERT(!findWay(set, block).has_value(),
                "insert of already-resident block in " + name_);
  std::uint32_t way;
  if (cfg_.equalChanceEvery != 0 && ++fillTick_ % cfg_.equalChanceEvery == 0) {
    // Intra-set wear leveling: victimize the coldest live frame of the set.
    way = cfg_.ways;
    std::uint64_t best = 0;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
      if (frameDead(set, w)) continue;
      std::uint64_t fw = frameWrites_[frameIndex(set, w)];
      if (way == cfg_.ways || fw < best) {
        best = fw;
        way = w;
      }
    }
    RENUCA_ASSERT(way < cfg_.ways, "insert into fully dead set of " + name_);
    ++hot_.equalChanceRedirects;
  } else {
    way = victimWay(set);
  }
  RENUCA_ASSERT(!frameDead(set, way), "victim selection chose a dead frame in " + name_);
  const std::uint32_t idx = frameIndex(set, way);

  Eviction ev;
  if (flags_[idx] & kFlagValid) {
    ev.valid = true;
    ev.block = tags_[idx];
    ev.dirty = (flags_[idx] & kFlagDirty) != 0;
    ++hot_.evictions;
    if (ev.dirty) ++hot_.dirtyEvictions;
  }
  tags_[idx] = block;
  flags_[idx] = static_cast<std::uint8_t>(kFlagValid | (dirty ? kFlagDirty : 0) |
                                          (critical ? kFlagCritical : 0));
  // Repoint the memo: the victim's mapping (possibly memoized) is gone and
  // the filled line is the likeliest next access.
  memoBlock_ = block;
  memoSet_ = set;
  memoWay_ = way;
  const std::uint32_t bits = cfg_.compress != compress::Kind::None
                                 ? storeContent(idx, content)
                                 : compress::kLineBits;
  recordFrameWrite(set, way, bits);
  touch(set, way);
  ++hot_.fills;
  return ev;
}

std::optional<bool> CacheBank::invalidate(BlockAddr block) {
  std::uint32_t set = setOf(block);
  auto way = findWay(set, block);
  if (!way) return std::nullopt;
  const std::uint32_t idx = frameIndex(set, *way);
  bool dirty = (flags_[idx] & kFlagDirty) != 0;
  tags_[idx] = kInvalidTag;
  flags_[idx] = 0;
  if (block == memoBlock_) memoBlock_ = kInvalidTag;
  ++hot_.invalidations;
  return dirty;
}

bool CacheBank::writebackHit(BlockAddr block, const compress::LineContent* content) {
  std::uint32_t set = setOf(block);
  auto way = findWay(set, block);
  if (!way) return false;
  const std::uint32_t idx = frameIndex(set, *way);
  flags_[idx] |= kFlagDirty;
  const std::uint32_t bits = cfg_.compress != compress::Kind::None
                                 ? storeContent(idx, content)
                                 : compress::kLineBits;
  recordFrameWrite(set, *way, bits);
  ++hot_.writebackHits;
  return true;
}

Cycle CacheBank::reserve(Cycle now) {
  return busy_.reserve(now, cfg_.occupancy);
}

void CacheBank::recordFrameWrite(std::uint32_t set, std::uint32_t way,
                                 std::uint32_t bits) {
  ++totalWrites_;
  if (!cfg_.trackFrameWrites) return;
  std::uint32_t idx = frameIndex(set, way);
  std::uint64_t writes = ++frameWrites_[idx];
  if (cfg_.compress != compress::Kind::None) frameBits_[idx] += bits;
  // Natural wear-out: the write that exhausts the frame's budget leaves it
  // stuck-at.  The death is queued (not handled inline) so the caller can
  // finish its fill bookkeeping before doing eviction-style cleanup.
  // Compressed banks consume budget at bit granularity: the frame dies
  // when its *effective* writes (bits flipped / 512) reach the limit, so a
  // half-size payload spends half a write — the fractional frame budget.
  if (faultArmed_ && !frameDead_[idx]) {
    const std::uint64_t limit = fault_->writeLimit(idx);
    bool exhausted;
    if (cfg_.compress != compress::Kind::None) {
      exhausted = limit < rram::BankFaultModel::kNoLimit / compress::kLineBits &&
                  frameBits_[idx] >= limit * compress::kLineBits;
    } else {
      exhausted = writes >= limit;
    }
    if (exhausted) pendingDeaths_.push_back(retireFrame(set, way));
  }
}

std::uint32_t CacheBank::storeContent(std::uint32_t idx,
                                      const compress::LineContent* content) {
  telemetry::ScopedProf prof(cmpProf_);
  // Callers that carry no content (direct bank tests, non-LLC paths) are
  // charged an incompressible line whose values derive from the frame's
  // tag — deterministic and worst-case.
  compress::LineContent next;
  if (content != nullptr) {
    next = *content;
  } else {
    next.cls = compress::LineClass::Random;
    next.seed = compress::mix64(tags_[idx]);
  }
  compress::CompressedLine enc;
  compress::compressContent(cfg_.compress, next, enc);
  std::uint32_t flipped;
  if (storedBits_[idx] == 0) {
    flipped = compress::bitsFlipped(enc);  // virgin cells hold zero
  } else {
    compress::LineContent prevContent{static_cast<compress::LineClass>(contentCls_[idx]),
                                      contentSeed_[idx]};
    compress::CompressedLine prev;
    compress::compressContent(cfg_.compress, prevContent, prev);
    flipped = compress::bitsFlipped(prev, enc);
    if (flipped == 0) ++cmp_.zeroDeltaWrites;
  }
  contentSeed_[idx] = next.seed;
  contentCls_[idx] = static_cast<std::uint8_t>(next.cls);
  storedBits_[idx] = enc.sizeBits;
  ++cmp_.writes;
  cmp_.bitsFlipped += flipped;
  if (enc.scheme == compress::Scheme::Raw) ++cmp_.rawFallbacks;
  ++cmp_.sizeHist[std::min(7u, (static_cast<std::uint32_t>(enc.sizeBits) - 1) / 64)];
  return flipped;
}

void CacheBank::setFaultModel(const rram::BankFaultModel* model) {
  RENUCA_ASSERT(cfg_.trackFrameWrites, "fault model needs frame write counters");
  RENUCA_ASSERT(model == nullptr || (model->numFrames() == tags_.size() &&
                                     model->ways() == cfg_.ways),
                "fault model geometry mismatch for " + name_);
  fault_ = model;
  if (model != nullptr && frameDead_.empty()) {
    frameDead_.assign(tags_.size(), 0);
  }
}

CacheBank::FrameDeath CacheBank::retireFrame(std::uint32_t set, std::uint32_t way) {
  if (frameDead_.empty()) frameDead_.assign(tags_.size(), 0);
  std::uint32_t idx = frameIndex(set, way);
  RENUCA_ASSERT(!frameDead_[idx], "retiring an already-dead frame in " + name_);
  FrameDeath death;
  death.set = set;
  death.way = way;
  death.hadLine = (flags_[idx] & kFlagValid) != 0;
  death.block = tags_[idx];
  death.dirty = (flags_[idx] & kFlagDirty) != 0;
  death.writes = cfg_.trackFrameWrites ? frameWrites_[idx] : 0;
  tags_[idx] = kInvalidTag;
  flags_[idx] = 0;
  frameDead_[idx] = 1;
  if (memoBlock_ == death.block) memoBlock_ = kInvalidTag;
  ++deadFrames_;
  ++hot_.frameDeaths;
  return death;
}

std::optional<CacheBank::FrameDeath> CacheBank::injectFault(std::uint32_t set,
                                                            std::uint32_t way) {
  RENUCA_ASSERT(set < numSets_ && way < cfg_.ways,
                "fault injection outside geometry of " + name_);
  if (frameDead(set, way)) return std::nullopt;
  return retireFrame(set, way);
}

std::vector<CacheBank::FrameDeath> CacheBank::harvestFrameDeaths() {
  std::vector<FrameDeath> out;
  out.swap(pendingDeaths_);
  return out;
}

double CacheBank::liveFrameFrac() const {
  return 1.0 - static_cast<double>(deadFrames_) / static_cast<double>(tags_.size());
}

std::uint32_t CacheBank::liveWaysFor(BlockAddr block) const {
  if (frameDead_.empty()) return cfg_.ways;
  const std::uint8_t* dead = &frameDead_[frameIndex(setOf(block), 0)];
  std::uint32_t live = 0;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) live += dead[w] ? 0 : 1;
  return live;
}

std::uint64_t CacheBank::maxFrameWrites() const {
  if (frameWrites_.empty()) return 0;
  return *std::max_element(frameWrites_.begin(), frameWrites_.end());
}

std::uint64_t CacheBank::maxFrameBits() const {
  if (frameBits_.empty()) return 0;
  return *std::max_element(frameBits_.begin(), frameBits_.end());
}

std::optional<compress::LineContent> CacheBank::lineContent(BlockAddr block) const {
  if (cfg_.compress == compress::Kind::None) return std::nullopt;
  const std::uint32_t set = setOf(block);
  auto way = findWay(set, block);
  if (!way) return std::nullopt;
  const std::uint32_t idx = frameIndex(set, *way);
  if (storedBits_[idx] == 0) return std::nullopt;
  return compress::LineContent{static_cast<compress::LineClass>(contentCls_[idx]),
                               contentSeed_[idx]};
}

std::uint64_t CacheBank::validLines() const {
  std::uint64_t n = 0;
  for (std::uint8_t f : flags_) n += f & kFlagValid;
  return n;
}

void CacheBank::resetMeasurement() {
  std::fill(frameWrites_.begin(), frameWrites_.end(), 0ull);
  // Bit-wear counters are window-scoped like frameWrites_; the content
  // descriptors persist (cells keep their data across the reset).
  std::fill(frameBits_.begin(), frameBits_.end(), 0ull);
  cmp_ = CompressionStats{};
  totalWrites_ = 0;
  hot_ = HotCounters{};  // discard the warm-up window's pending deltas too
  stats_.zero();
  // Natural wear-out arms with the measurement window: budgets compare
  // against the zeroed counters, so every policy faces the same write
  // volume regardless of how many warm-up phases it needed.
  armFaultBudgets();
}

void CacheBank::flushAll() {
  memoBlock_ = kInvalidTag;
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  std::fill(flags_.begin(), flags_.end(), std::uint8_t{0});
  if (!plruBits_.empty()) std::fill(plruBits_.begin(), plruBits_.end(), 0u);
}

void CacheBank::saveState(serial::ArchiveWriter& ar) const {
  // Geometry and wear totals lead the payload so tools/ckpt_inspect can
  // report per-bank write totals without constructing banks.
  ar.putU32(numSets_);
  ar.putU32(cfg_.ways);
  ar.putU64(totalWrites_);
  ar.putU32(deadFrames_);
  ar.putBool(!frameWrites_.empty());
  for (std::uint64_t w : frameWrites_) ar.putU64(w);
  // Interleaved per-frame records, the layout every existing .ckpt uses.
  // The in-memory flag byte already matches the serialized bit assignment.
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    ar.putU64(tags_[i]);
    ar.putU8(flags_[i]);
    ar.putU64(lastUse_[i]);
  }
  ar.putU32(static_cast<std::uint32_t>(plruBits_.size()));
  for (std::uint32_t b : plruBits_) ar.putU32(b);
  ar.putBool(!frameDead_.empty());
  if (!frameDead_.empty()) ar.putBytes(frameDead_.data(), frameDead_.size());
  ar.putU64(useTick_);
  ar.putU64(fillTick_);
  Pcg32::State rng = rng_.saveState();
  ar.putU64(rng.state);
  ar.putU64(rng.inc);
}

bool CacheBank::loadState(serial::ArchiveReader& ar) {
  if (ar.getU32() != numSets_ || ar.getU32() != cfg_.ways) return false;
  memoBlock_ = kInvalidTag;
  totalWrites_ = ar.getU64();
  deadFrames_ = ar.getU32();
  bool hasWrites = ar.getBool();
  if (hasWrites != !frameWrites_.empty()) return false;
  for (std::uint64_t& w : frameWrites_) w = ar.getU64();
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    BlockAddr tag = ar.getU64();
    std::uint8_t flags = ar.getU8() & (kFlagValid | kFlagDirty | kFlagCritical);
    // Pre-SoA checkpoints saved whatever stale tag an invalid frame last
    // held; normalize to the sentinel so the valid-check-free way scan
    // cannot false-hit on it.  Re-saving then round-trips exactly.
    tags_[i] = (flags & kFlagValid) ? tag : kInvalidTag;
    flags_[i] = flags;
    lastUse_[i] = ar.getU64();
  }
  std::uint32_t plruCount = ar.getU32();
  if (plruCount != plruBits_.size()) return false;
  for (std::uint32_t& b : plruBits_) b = ar.getU32();
  if (ar.getBool()) {
    // A saved dead-frame map restores even if this bank has none allocated
    // yet (fault model attached but no deaths at snapshot time is the
    // common case — the map exists but is all-zero).
    if (frameDead_.empty()) frameDead_.assign(tags_.size(), 0);
    for (std::uint8_t& d : frameDead_) d = ar.getU8();
  } else if (!frameDead_.empty()) {
    std::fill(frameDead_.begin(), frameDead_.end(), std::uint8_t{0});
  }
  useTick_ = ar.getU64();
  fillTick_ = ar.getU64();
  Pcg32::State rng;
  rng.state = ar.getU64();
  rng.inc = ar.getU64();
  rng_.restoreState(rng);
  pendingDeaths_.clear();
  return ar.ok() && ar.remaining() == 0;
}

void CacheBank::saveCompressState(serial::ArchiveWriter& ar) const {
  ar.putU32(static_cast<std::uint32_t>(storedBits_.size()));
  for (std::size_t i = 0; i < storedBits_.size(); ++i) {
    ar.putU8(contentCls_[i]);
    ar.putU64(contentSeed_[i]);
    ar.putU32(storedBits_[i]);
    ar.putU64(frameBits_[i]);
  }
  ar.putU64(cmp_.writes);
  ar.putU64(cmp_.bitsFlipped);
  ar.putU64(cmp_.rawFallbacks);
  ar.putU64(cmp_.zeroDeltaWrites);
  for (std::uint64_t h : cmp_.sizeHist) ar.putU64(h);
}

bool CacheBank::loadCompressState(serial::ArchiveReader& ar) {
  if (ar.getU32() != storedBits_.size()) return false;
  for (std::size_t i = 0; i < storedBits_.size(); ++i) {
    const std::uint8_t cls = ar.getU8();
    if (cls >= compress::kNumLineClasses) return false;
    contentCls_[i] = cls;
    contentSeed_[i] = ar.getU64();
    const std::uint32_t bits = ar.getU32();
    if (bits > compress::kLineBits) return false;
    storedBits_[i] = static_cast<std::uint16_t>(bits);
    frameBits_[i] = ar.getU64();
  }
  cmp_.writes = ar.getU64();
  cmp_.bitsFlipped = ar.getU64();
  cmp_.rawFallbacks = ar.getU64();
  cmp_.zeroDeltaWrites = ar.getU64();
  for (std::uint64_t& h : cmp_.sizeHist) h = ar.getU64();
  return ar.ok() && ar.remaining() == 0;
}

}  // namespace renuca::mem
