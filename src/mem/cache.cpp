#include "mem/cache.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace renuca::mem {

CacheBank::CacheBank(const CacheConfig& config, std::string name, std::uint64_t seed)
    : cfg_(config), name_(std::move(name)), numSets_(config.numSets()),
      rng_(seed ^ 0xcac4ebacull, 0xbadc0ffeull), stats_(name_) {
  RENUCA_ASSERT(cfg_.ways > 0 && numSets_ > 0, "cache " + name_ + " has zero geometry");
  RENUCA_ASSERT(cfg_.sizeBytes % (static_cast<std::uint64_t>(cfg_.lineBytes) * cfg_.ways) == 0,
                "cache " + name_ + " size not divisible by line*ways");
  frames_.resize(static_cast<std::size_t>(numSets_) * cfg_.ways);
  if (cfg_.replacement == ReplacementKind::TreePlru) {
    RENUCA_ASSERT(isPow2(cfg_.ways), "tree-PLRU requires power-of-two ways");
    plruBits_.assign(numSets_, 0);
  }
  if (cfg_.trackFrameWrites) {
    frameWrites_.assign(frames_.size(), 0);
  }
  RENUCA_ASSERT(cfg_.equalChanceEvery == 0 || cfg_.trackFrameWrites,
                "EqualChance needs frame write counters");

  hot_.readHits = stats_.counter("read_hits");
  hot_.readMisses = stats_.counter("read_misses");
  hot_.writeHits = stats_.counter("write_hits");
  hot_.writeMisses = stats_.counter("write_misses");
  hot_.fills = stats_.counter("fills");
  hot_.evictions = stats_.counter("evictions");
  hot_.dirtyEvictions = stats_.counter("dirty_evictions");
  hot_.invalidations = stats_.counter("invalidations");
  hot_.writebackHits = stats_.counter("writeback_hits");
}

std::optional<std::uint32_t> CacheBank::findWay(std::uint32_t set, BlockAddr block) const {
  const Frame* base = &frames_[frameIndex(set, 0)];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == block) return w;
  }
  return std::nullopt;
}

bool CacheBank::contains(BlockAddr block) const {
  return findWay(setOf(block), block).has_value();
}

void CacheBank::touch(std::uint32_t set, std::uint32_t way) {
  frames_[frameIndex(set, way)].lastUse = ++useTick_;
  if (cfg_.replacement == ReplacementKind::TreePlru) {
    // Walk root->leaf, pointing each node away from the touched way.
    std::uint32_t bitsv = plruBits_[set];
    std::uint32_t node = 0;
    std::uint32_t span = cfg_.ways;
    std::uint32_t lo = 0;
    while (span > 1) {
      std::uint32_t half = span / 2;
      bool right = way >= lo + half;
      if (right) {
        bitsv &= ~(1u << node);  // point left (away from touched)
        lo += half;
        node = 2 * node + 2;
      } else {
        bitsv |= (1u << node);  // point right
        node = 2 * node + 1;
      }
      span = half;
    }
    plruBits_[set] = bitsv;
  }
}

std::uint32_t CacheBank::liveLruWay(std::uint32_t set) const {
  const Frame* base = &frames_[frameIndex(set, 0)];
  const std::uint8_t* dead = &frameDead_[frameIndex(set, 0)];
  std::uint32_t victim = cfg_.ways;
  std::uint64_t best = 0;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (dead[w]) continue;
    if (victim == cfg_.ways || base[w].lastUse < best) {
      best = base[w].lastUse;
      victim = w;
    }
  }
  RENUCA_ASSERT(victim < cfg_.ways, "victim lookup in fully dead set of " + name_);
  return victim;
}

std::uint32_t CacheBank::victimWay(std::uint32_t set) {
  const Frame* base = &frames_[frameIndex(set, 0)];
  const std::uint8_t* dead = frameDead_.empty() ? nullptr : &frameDead_[frameIndex(set, 0)];
  // Invalid frames first, for every policy.
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (!base[w].valid && !(dead && dead[w])) return w;
  }
  if (dead) {
    // Degraded set: tree-PLRU/random pointers may land on a dead way, so
    // fall back to LRU over the surviving ways (timestamps are maintained
    // for every replacement policy).
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
      if (dead[w]) return liveLruWay(set);
    }
  }
  switch (cfg_.replacement) {
    case ReplacementKind::Lru: {
      std::uint32_t victim = 0;
      std::uint64_t best = base[0].lastUse;
      for (std::uint32_t w = 1; w < cfg_.ways; ++w) {
        if (base[w].lastUse < best) {
          best = base[w].lastUse;
          victim = w;
        }
      }
      return victim;
    }
    case ReplacementKind::TreePlru: {
      std::uint32_t bitsv = plruBits_[set];
      std::uint32_t node = 0;
      std::uint32_t span = cfg_.ways;
      std::uint32_t lo = 0;
      while (span > 1) {
        std::uint32_t half = span / 2;
        bool right = (bitsv >> node) & 1u;
        if (right) {
          lo += half;
          node = 2 * node + 2;
        } else {
          node = 2 * node + 1;
        }
        span = half;
      }
      return lo;
    }
    case ReplacementKind::Random:
      return rng_.nextBelow(cfg_.ways);
  }
  return 0;
}

bool CacheBank::access(BlockAddr block, AccessType type) {
  std::uint32_t set = setOf(block);
  auto way = findWay(set, block);
  if (!way) {
    ++*(type == AccessType::Read ? hot_.readMisses : hot_.writeMisses);
    return false;
  }
  ++*(type == AccessType::Read ? hot_.readHits : hot_.writeHits);
  Frame& f = frames_[frameIndex(set, *way)];
  if (type == AccessType::Write) {
    f.dirty = true;
    recordFrameWrite(set, *way);
  }
  touch(set, *way);
  return true;
}

bool CacheBank::lineCritical(BlockAddr block) const {
  std::uint32_t set = setOf(block);
  auto way = findWay(set, block);
  return way.has_value() && frames_[frameIndex(set, *way)].critical;
}

Eviction CacheBank::insert(BlockAddr block, bool dirty, bool critical) {
  std::uint32_t set = setOf(block);
  RENUCA_ASSERT(!findWay(set, block).has_value(),
                "insert of already-resident block in " + name_);
  std::uint32_t way;
  if (cfg_.equalChanceEvery != 0 && ++fillTick_ % cfg_.equalChanceEvery == 0) {
    // Intra-set wear leveling: victimize the coldest live frame of the set.
    way = cfg_.ways;
    std::uint64_t best = 0;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
      if (frameDead(set, w)) continue;
      std::uint64_t fw = frameWrites_[frameIndex(set, w)];
      if (way == cfg_.ways || fw < best) {
        best = fw;
        way = w;
      }
    }
    RENUCA_ASSERT(way < cfg_.ways, "insert into fully dead set of " + name_);
    stats_.inc("equalchance_redirects");
  } else {
    way = victimWay(set);
  }
  RENUCA_ASSERT(!frameDead(set, way), "victim selection chose a dead frame in " + name_);
  Frame& f = frames_[frameIndex(set, way)];

  Eviction ev;
  if (f.valid) {
    ev.valid = true;
    ev.block = f.tag;
    ev.dirty = f.dirty;
    ++*hot_.evictions;
    if (f.dirty) ++*hot_.dirtyEvictions;
  }
  f.tag = block;
  f.valid = true;
  f.dirty = dirty;
  f.critical = critical;
  recordFrameWrite(set, way);
  touch(set, way);
  ++*hot_.fills;
  return ev;
}

std::optional<bool> CacheBank::invalidate(BlockAddr block) {
  std::uint32_t set = setOf(block);
  auto way = findWay(set, block);
  if (!way) return std::nullopt;
  Frame& f = frames_[frameIndex(set, *way)];
  bool dirty = f.dirty;
  f.valid = false;
  f.dirty = false;
  f.critical = false;
  ++*hot_.invalidations;
  return dirty;
}

bool CacheBank::writebackHit(BlockAddr block) {
  std::uint32_t set = setOf(block);
  auto way = findWay(set, block);
  if (!way) return false;
  Frame& f = frames_[frameIndex(set, *way)];
  f.dirty = true;
  recordFrameWrite(set, *way);
  ++*hot_.writebackHits;
  return true;
}

Cycle CacheBank::reserve(Cycle now) {
  return busy_.reserve(now, cfg_.occupancy);
}

void CacheBank::recordFrameWrite(std::uint32_t set, std::uint32_t way) {
  ++totalWrites_;
  if (!cfg_.trackFrameWrites) return;
  std::uint32_t idx = frameIndex(set, way);
  std::uint64_t writes = ++frameWrites_[idx];
  // Natural wear-out: the write that exhausts the frame's budget leaves it
  // stuck-at.  The death is queued (not handled inline) so the caller can
  // finish its fill bookkeeping before doing eviction-style cleanup.
  if (faultArmed_ && !frameDead_[idx] && writes >= fault_->writeLimit(idx)) {
    pendingDeaths_.push_back(retireFrame(set, way));
  }
}

void CacheBank::setFaultModel(const rram::BankFaultModel* model) {
  RENUCA_ASSERT(cfg_.trackFrameWrites, "fault model needs frame write counters");
  RENUCA_ASSERT(model == nullptr || (model->numFrames() == frames_.size() &&
                                     model->ways() == cfg_.ways),
                "fault model geometry mismatch for " + name_);
  fault_ = model;
  if (model != nullptr && frameDead_.empty()) {
    frameDead_.assign(frames_.size(), 0);
  }
}

CacheBank::FrameDeath CacheBank::retireFrame(std::uint32_t set, std::uint32_t way) {
  if (frameDead_.empty()) frameDead_.assign(frames_.size(), 0);
  std::uint32_t idx = frameIndex(set, way);
  RENUCA_ASSERT(!frameDead_[idx], "retiring an already-dead frame in " + name_);
  Frame& f = frames_[idx];
  FrameDeath death;
  death.set = set;
  death.way = way;
  death.hadLine = f.valid;
  death.block = f.tag;
  death.dirty = f.dirty;
  death.writes = cfg_.trackFrameWrites ? frameWrites_[idx] : 0;
  f.valid = false;
  f.dirty = false;
  f.critical = false;
  frameDead_[idx] = 1;
  ++deadFrames_;
  stats_.inc("frame_deaths");
  return death;
}

std::optional<CacheBank::FrameDeath> CacheBank::injectFault(std::uint32_t set,
                                                            std::uint32_t way) {
  RENUCA_ASSERT(set < numSets_ && way < cfg_.ways,
                "fault injection outside geometry of " + name_);
  if (frameDead(set, way)) return std::nullopt;
  return retireFrame(set, way);
}

std::vector<CacheBank::FrameDeath> CacheBank::harvestFrameDeaths() {
  std::vector<FrameDeath> out;
  out.swap(pendingDeaths_);
  return out;
}

double CacheBank::liveFrameFrac() const {
  return 1.0 - static_cast<double>(deadFrames_) / static_cast<double>(frames_.size());
}

std::uint32_t CacheBank::liveWaysFor(BlockAddr block) const {
  if (frameDead_.empty()) return cfg_.ways;
  const std::uint8_t* dead = &frameDead_[frameIndex(setOf(block), 0)];
  std::uint32_t live = 0;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) live += dead[w] ? 0 : 1;
  return live;
}

std::uint64_t CacheBank::maxFrameWrites() const {
  if (frameWrites_.empty()) return 0;
  return *std::max_element(frameWrites_.begin(), frameWrites_.end());
}

std::uint64_t CacheBank::validLines() const {
  std::uint64_t n = 0;
  for (const Frame& f : frames_) n += f.valid ? 1 : 0;
  return n;
}

void CacheBank::resetMeasurement() {
  std::fill(frameWrites_.begin(), frameWrites_.end(), 0ull);
  totalWrites_ = 0;
  stats_.zero();  // keep keys: hot_ handles stay valid
  // Natural wear-out arms with the measurement window: budgets compare
  // against the zeroed counters, so every policy faces the same write
  // volume regardless of how many warm-up phases it needed.
  armFaultBudgets();
}

void CacheBank::flushAll() {
  for (Frame& f : frames_) {
    f.valid = false;
    f.dirty = false;
    f.critical = false;
  }
  if (!plruBits_.empty()) std::fill(plruBits_.begin(), plruBits_.end(), 0u);
}

void CacheBank::saveState(serial::ArchiveWriter& ar) const {
  // Geometry and wear totals lead the payload so tools/ckpt_inspect can
  // report per-bank write totals without constructing banks.
  ar.putU32(numSets_);
  ar.putU32(cfg_.ways);
  ar.putU64(totalWrites_);
  ar.putU32(deadFrames_);
  ar.putBool(!frameWrites_.empty());
  for (std::uint64_t w : frameWrites_) ar.putU64(w);
  for (const Frame& f : frames_) {
    ar.putU64(f.tag);
    std::uint8_t flags = (f.valid ? 1u : 0u) | (f.dirty ? 2u : 0u) |
                         (f.critical ? 4u : 0u);
    ar.putU8(flags);
    ar.putU64(f.lastUse);
  }
  ar.putU32(static_cast<std::uint32_t>(plruBits_.size()));
  for (std::uint32_t b : plruBits_) ar.putU32(b);
  ar.putBool(!frameDead_.empty());
  if (!frameDead_.empty()) ar.putBytes(frameDead_.data(), frameDead_.size());
  ar.putU64(useTick_);
  ar.putU64(fillTick_);
  Pcg32::State rng = rng_.saveState();
  ar.putU64(rng.state);
  ar.putU64(rng.inc);
}

bool CacheBank::loadState(serial::ArchiveReader& ar) {
  if (ar.getU32() != numSets_ || ar.getU32() != cfg_.ways) return false;
  totalWrites_ = ar.getU64();
  deadFrames_ = ar.getU32();
  bool hasWrites = ar.getBool();
  if (hasWrites != !frameWrites_.empty()) return false;
  for (std::uint64_t& w : frameWrites_) w = ar.getU64();
  for (Frame& f : frames_) {
    f.tag = ar.getU64();
    std::uint8_t flags = ar.getU8();
    f.valid = (flags & 1u) != 0;
    f.dirty = (flags & 2u) != 0;
    f.critical = (flags & 4u) != 0;
    f.lastUse = ar.getU64();
  }
  std::uint32_t plruCount = ar.getU32();
  if (plruCount != plruBits_.size()) return false;
  for (std::uint32_t& b : plruBits_) b = ar.getU32();
  if (ar.getBool()) {
    // A saved dead-frame map restores even if this bank has none allocated
    // yet (fault model attached but no deaths at snapshot time is the
    // common case — the map exists but is all-zero).
    if (frameDead_.empty()) frameDead_.assign(frames_.size(), 0);
    for (std::uint8_t& d : frameDead_) d = ar.getU8();
  } else if (!frameDead_.empty()) {
    std::fill(frameDead_.begin(), frameDead_.end(), std::uint8_t{0});
  }
  useTick_ = ar.getU64();
  fillTick_ = ar.getU64();
  Pcg32::State rng;
  rng.state = ar.getU64();
  rng.inc = ar.getU64();
  rng_.restoreState(rng);
  pendingDeaths_.clear();
  return ar.ok() && ar.remaining() == 0;
}

}  // namespace renuca::mem
