// Generic set-associative cache bank.
//
// Used for the private L1/L2 caches and for each of the 16 ReRAM LLC banks.
// The bank is *functional* (it tracks real tags, so hit rates emerge from
// the access stream) plus lightly *temporal*: a busy-until reservation
// models bank occupancy so that concurrent requests to one bank serialize —
// the effect that makes the paper's Naive policy slow.
//
// For ReRAM banks, every data write into a frame (a miss fill or a
// write-back landing in the bank) bumps a per-frame write counter; the
// rram module turns the counters into bank lifetimes (a frame dies when it
// exceeds the cell endurance, and the hottest frame bounds the bank).
//
// Graceful degradation: with a rram::BankFaultModel attached, a frame
// whose write count reaches its (process-varied) budget becomes stuck-at
// and is permanently disabled — its line is discarded (callers relocate
// dirty data), fill/victim selection skips it, and the bank keeps serving
// the set's surviving ways.  A fully dead set makes canAllocate() false;
// the memory system then bypasses the bank straight to DRAM.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/busy_calendar.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "compress/compress.hpp"
#include "rram/fault_model.hpp"
#include "serial/checkpointable.hpp"
#include "telemetry/profiler.hpp"

namespace renuca::mem {

enum class ReplacementKind : std::uint8_t { Lru, TreePlru, Random };

struct CacheConfig {
  std::uint64_t sizeBytes = 32 * 1024;
  std::uint32_t ways = 4;
  std::uint32_t lineBytes = kLineBytes;
  std::uint32_t latency = 2;    ///< Access latency in cycles.
  std::uint32_t occupancy = 1;  ///< Cycles the bank stays busy per access.
  ReplacementKind replacement = ReplacementKind::Lru;
  bool trackFrameWrites = false;  ///< Enable ReRAM endurance accounting.
  /// Low block-address bits skipped before set indexing.  NUCA banks must
  /// set this to log2(numBanks): the low bits select the bank (S-NUCA) or
  /// the cluster slot (R-NUCA), so using them for the set index would
  /// leave most sets of each bank unreachable — a 16x effective-capacity
  /// collapse.
  std::uint32_t setIndexShift = 0;
  /// EqualChance-style intra-set wear leveling (Mittal & Vetter, INFLOW'14
  /// — the paper's §VI names it complementary to Re-NUCA): every Nth fill
  /// victimizes the least-written frame of the set instead of the
  /// replacement policy's choice, spreading writes across ways.  0 = off.
  /// Requires trackFrameWrites.
  std::uint32_t equalChanceEvery = 0;
  /// Line compression (compress/compress.hpp).  When enabled the bank
  /// stores each frame's (class, seed, size) content descriptor and
  /// charges writes at bit granularity: a fill or write-back flips
  /// popcount(oldPayload XOR newPayload) cells instead of a worst-case
  /// full line, and wear-out budgets compare against *effective* writes
  /// (bits flipped / 512) — a half-size payload consumes half a write of
  /// frame budget.  Requires trackFrameWrites when != None.
  compress::Kind compress = compress::Kind::None;

  std::uint32_t numSets() const {
    return static_cast<std::uint32_t>(sizeBytes / lineBytes / ways);
  }
  std::uint32_t numFrames() const { return numSets() * ways; }
};

/// Result of inserting a line: the victim, if a valid line was displaced.
struct Eviction {
  bool valid = false;
  BlockAddr block = 0;
  bool dirty = false;
};

class CacheBank : public serial::Checkpointable {
 public:
  CacheBank(const CacheConfig& config, std::string name, std::uint64_t seed = 0);

  // --- Functional interface ----------------------------------------------

  /// True iff the block is resident (no replacement-state side effects).
  bool contains(BlockAddr block) const;

  /// Demand access: updates recency and, for writes, the dirty bit and the
  /// frame write counter.  Returns true on hit.  Misses have no side
  /// effects (callers decide whether to allocate via insert()).
  bool access(BlockAddr block, AccessType type);

  /// Allocates a frame for `block` (which must not be resident), evicting
  /// the replacement victim if the set is full.  Counts one frame write
  /// (the fill).  `dirty` marks the line dirty on arrival (write-allocate
  /// store or dirty write-back from an upper level).  `critical` records
  /// the criticality verdict of the access that triggered the fill; it is
  /// line metadata, fixed until the line is evicted (the Fig 9
  /// write-criticality accounting), and LLC banks are its only consumer.
  /// `content` is the line's content descriptor for compressed banks
  /// (ignored when compression is off; a compressed bank without content
  /// charges a worst-case incompressible write).
  Eviction insert(BlockAddr block, bool dirty, bool critical = false,
                  const compress::LineContent* content = nullptr);

  /// The criticality verdict recorded when the block was filled; false if
  /// the block is not resident.
  bool lineCritical(BlockAddr block) const;

  /// Removes the block if present; returns its dirty state.
  std::optional<bool> invalidate(BlockAddr block);

  /// Marks a resident block dirty without a timing event (used when an
  /// upper-level write-back lands on a resident LLC line).  Counts a frame
  /// write.  Returns false if the block is not resident.  `content` as in
  /// insert(): the written-back line's new contents for compressed banks.
  bool writebackHit(BlockAddr block,
                    const compress::LineContent* content = nullptr);

  // --- Timing helper ------------------------------------------------------

  /// Reserves the bank at or after `now`; returns the cycle service starts.
  /// The bank stays busy for `occupancy` cycles from the start.  Interval-
  /// based (BusyCalendar), so a far-future reservation (an LLC fill write)
  /// does not block near-term demand lookups.
  Cycle reserve(Cycle now);

  // --- Introspection ------------------------------------------------------

  const CacheConfig& config() const { return cfg_; }
  const std::string& name() const { return name_; }
  // Reading the stats first syncs the batched hot-path counters into the
  // string-keyed set, so callers always see up-to-date values (and zero()
  // through the non-const accessor discards a consistent window).
  const StatSet& stats() const {
    flushHotStats();
    return stats_;
  }
  StatSet& stats() {
    flushHotStats();
    return stats_;
  }

  /// Per-frame write counts (numFrames entries); only meaningful when
  /// trackFrameWrites is set.
  const std::vector<std::uint64_t>& frameWrites() const { return frameWrites_; }
  std::uint64_t totalWrites() const { return totalWrites_; }
  std::uint64_t maxFrameWrites() const;

  // --- Compression / bit-accurate wear (cfg.compress != None only) --------

  /// Aggregate compression counters for the measurement window.
  struct CompressionStats {
    std::uint64_t writes = 0;          ///< Compressed frame writes.
    std::uint64_t bitsFlipped = 0;     ///< Sum of per-write flipped bits.
    std::uint64_t rawFallbacks = 0;    ///< Writes stored uncompressed.
    std::uint64_t zeroDeltaWrites = 0; ///< Rewrites of identical payloads.
    /// Stored-size histogram: bucket i counts payloads of
    /// (i*64, (i+1)*64] bits — bucket 7 is the raw 512-bit fallback.
    std::uint64_t sizeHist[8] = {};
  };
  const CompressionStats& compressionStats() const { return cmp_; }
  /// Per-frame bits flipped this window (empty when compression is off).
  const std::vector<std::uint64_t>& frameBits() const { return frameBits_; }
  std::uint64_t maxFrameBits() const;
  /// The content descriptor currently stored in `block`'s frame, if the
  /// block is resident in a compressed bank (warm migrations carry it).
  std::optional<compress::LineContent> lineContent(BlockAddr block) const;
  /// Profiler section for the encode work (detached handle = free).
  void setCompressProf(telemetry::ProfSection section) { cmpProf_ = section; }

  // Compression state travels in its own archive section (written by the
  // memory system as "cmp<b>"), NOT inside saveState's payload: the legacy
  // "l3b<b>" layout is pinned by committed pre-compression checkpoints and
  // its loader requires exact payload consumption.
  void saveCompressState(serial::ArchiveWriter& ar) const;
  bool loadCompressState(serial::ArchiveReader& ar);

  /// Number of valid lines (for tests / utilization reporting).
  std::uint64_t validLines() const;

  /// Invokes `fn(block, dirty)` for every valid line (inclusion checks).
  template <typename Fn>
  void forEachValidLine(Fn&& fn) const {
    for (std::size_t i = 0; i < tags_.size(); ++i) {
      if (flags_[i] & kFlagValid) fn(tags_[i], (flags_[i] & kFlagDirty) != 0);
    }
  }

  /// Drops all lines and replacement state; keeps statistics, write
  /// counters, and dead frames (used between warm-up phases only by tests).
  void flushAll();

  /// Zeros the endurance write counters and statistics while keeping cache
  /// contents — called at the end of warm-up so lifetimes measure only the
  /// steady-state window.  Dead frames stay dead (wear-out is permanent),
  /// and in-window write budgets restart with the zeroed counters.
  void resetMeasurement();

  // --- Checkpointing ------------------------------------------------------
  // Serializes the functional state: frames (tags, dirty/critical bits,
  // recency), replacement state, per-frame write counters, dead-frame map,
  // and the replacement RNG stream.  The busy-until calendar (timing) and
  // statistics are excluded — see serial/checkpointable.hpp.
  void saveState(serial::ArchiveWriter& ar) const override;
  bool loadState(serial::ArchiveReader& ar) override;

  // --- Wear-out faults and graceful degradation ---------------------------

  /// A frame death: natural wear-out (write budget exceeded) or injection.
  /// `hadLine`/`block`/`dirty` describe the line the frame held when it
  /// died, so the caller can do eviction bookkeeping (policy notice, dirty
  /// write-back to memory).
  struct FrameDeath {
    std::uint32_t set = 0;
    std::uint32_t way = 0;
    bool hadLine = false;
    BlockAddr block = 0;
    bool dirty = false;
    std::uint64_t writes = 0;  ///< Frame write count at death.
  };

  /// Attaches the wear-out model (caller-owned; frames indexed identically).
  /// Requires trackFrameWrites and matching geometry.
  void setFaultModel(const rram::BankFaultModel* model);

  /// Deterministic injection: disables the frame immediately.  Returns
  /// nullopt if it is already dead.
  std::optional<FrameDeath> injectFault(std::uint32_t set, std::uint32_t way);

  /// Drains deaths caused by writes since the last call (natural wear-out
  /// is detected on the write path but surfaced here so callers finish
  /// their fill bookkeeping before handling the death).
  std::vector<FrameDeath> harvestFrameDeaths();

  /// Arms natural wear-out: budgets start comparing against the frame
  /// write counters.  resetMeasurement() arms automatically (so warm-up
  /// traffic never consumes budget); injection works armed or not.
  void armFaultBudgets() { faultArmed_ = fault_ != nullptr; }
  bool faultArmed() const { return faultArmed_; }

  bool frameDead(std::uint32_t set, std::uint32_t way) const {
    return !frameDead_.empty() && frameDead_[frameIndex(set, way)] != 0;
  }
  std::uint32_t deadFrames() const { return deadFrames_; }
  /// Fraction of frames still usable (1.0 with no faults).
  double liveFrameFrac() const;
  /// Live (non-dead) ways in the set `block` maps to; 0 means inserts must
  /// bypass this bank.
  std::uint32_t liveWaysFor(BlockAddr block) const;
  bool canAllocate(BlockAddr block) const { return liveWaysFor(block) != 0; }

 private:
  std::uint32_t setOf(BlockAddr block) const {
    // numSets is a power of two for every real geometry; the mask saves an
    // integer division on the hottest path in the simulator.
    const BlockAddr idx = block >> cfg_.setIndexShift;
    return static_cast<std::uint32_t>(setMask_ != 0 || numSets_ == 1 ? idx & setMask_
                                                                     : idx % numSets_);
  }
  std::uint32_t frameIndex(std::uint32_t set, std::uint32_t way) const {
    return set * cfg_.ways + way;
  }
  /// Way of `block` within its set, or nullopt.
  std::optional<std::uint32_t> findWay(std::uint32_t set, BlockAddr block) const;
  /// One-entry residency memo: memoBlock_ != kInvalidTag implies
  /// tags_[frameIndex(memoSet_, memoWay_)] == memoBlock_, so back-to-back
  /// accesses to one line (word-granular striding streams) skip the way
  /// scan.  Purely a location cache — recency, dirty bits, and counters
  /// are still updated per call, so behavior is identical.  Every tag
  /// mutation repoints or drops it: insert() repoints to the filled line,
  /// invalidate()/retireFrame()/flushAll()/loadState() reset it.
  std::uint32_t victimWay(std::uint32_t set);
  /// LRU victim among the set's live ways (degraded-set fallback).
  std::uint32_t liveLruWay(std::uint32_t set) const;
  void touch(std::uint32_t set, std::uint32_t way);
  /// `bits` is the flipped-cell count of this write under compression;
  /// compress=None callers pass compress::kLineBits (full-line model).
  void recordFrameWrite(std::uint32_t set, std::uint32_t way, std::uint32_t bits);
  /// Compresses `content` (worst case when null), charges the differential
  /// write against the frame's stored payload, stores the new descriptor,
  /// and returns the flipped-bit count.  Compression-enabled banks only.
  std::uint32_t storeContent(std::uint32_t idx, const compress::LineContent* content);
  /// Marks the frame dead, discards its line, and returns the death record.
  FrameDeath retireFrame(std::uint32_t set, std::uint32_t way);

  CacheConfig cfg_;
  std::string name_;
  std::uint32_t numSets_;
  /// numSets_ - 1 when numSets_ is a power of two, else 0 (modulo fallback).
  std::uint32_t setMask_ = 0;

  /// Hot-path counters batched in one contiguous in-object block: the
  /// access path pays a plain member increment on memory the bank already
  /// has in cache, instead of chasing a std::map node per event.  The
  /// string-keyed StatSet is synced lazily — stats() flushes the pending
  /// deltas — so map writes happen at reporting boundaries, never per
  /// access.  Mutable because flushing is a const-observable no-op.
  struct HotCounters {
    std::uint64_t readHits = 0, readMisses = 0;
    std::uint64_t writeHits = 0, writeMisses = 0;
    std::uint64_t fills = 0, evictions = 0, dirtyEvictions = 0;
    std::uint64_t invalidations = 0, writebackHits = 0;
    std::uint64_t equalChanceRedirects = 0, frameDeaths = 0;
  };
  /// Moves every pending HotCounters delta into stats_ and zeros them.
  void flushHotStats() const;
  mutable HotCounters hot_;

  // Frame metadata in struct-of-arrays layout: the way-scan on every lookup
  // walks the dense tags_ array (8 bytes per way) instead of striding
  // through an array-of-structs.  Invalid frames hold kInvalidTag, a value
  // no real block can take (block addresses are byte addresses >> 6, so the
  // top bits are always clear), which lets findWay skip the valid check
  // entirely.  The flag byte uses the same bit layout the Archive format
  // has always serialized (valid=1, dirty=2, critical=4), so saveState
  // emits flags_[i] verbatim and old .ckpt files keep restoring.
  static constexpr BlockAddr kInvalidTag = ~BlockAddr{0};
  static constexpr std::uint8_t kFlagValid = 1;
  static constexpr std::uint8_t kFlagDirty = 2;
  static constexpr std::uint8_t kFlagCritical = 4;
  std::vector<BlockAddr> tags_;          // numSets * ways
  std::vector<std::uint8_t> flags_;      // numSets * ways, kFlag* bits
  std::vector<std::uint64_t> lastUse_;   // numSets * ways, LRU timestamps
  /// Residency memo (see findWay); mutable so const probes can refresh it.
  mutable BlockAddr memoBlock_ = kInvalidTag;
  mutable std::uint32_t memoSet_ = 0;
  mutable std::uint32_t memoWay_ = 0;
  std::vector<std::uint32_t> plruBits_;  // numSets entries, tree bits packed
  std::vector<std::uint64_t> frameWrites_;
  // Compression state (allocated only when cfg_.compress != None).  The
  // per-frame content descriptor is the frame's *cell* contents: it
  // persists across evictions and frame deaths (cells keep their last
  // value), so the next fill XORs against what the cells really hold.
  // frameBits_ is the measurement window's wear; descriptors are not
  // zeroed by resetMeasurement().
  std::vector<std::uint64_t> contentSeed_;   // numFrames
  std::vector<std::uint8_t> contentCls_;     // numFrames, LineClass
  std::vector<std::uint16_t> storedBits_;    // numFrames, 0 = never written
  std::vector<std::uint64_t> frameBits_;     // numFrames, bits flipped
  CompressionStats cmp_;
  telemetry::ProfSection cmpProf_;
  /// Dead-frame map (sized with the fault model; empty = no faults ever).
  std::vector<std::uint8_t> frameDead_;
  std::vector<FrameDeath> pendingDeaths_;
  const rram::BankFaultModel* fault_ = nullptr;
  bool faultArmed_ = false;
  std::uint32_t deadFrames_ = 0;
  std::uint64_t totalWrites_ = 0;
  std::uint64_t useTick_ = 0;
  std::uint64_t fillTick_ = 0;
  BusyCalendar busy_;
  Pcg32 rng_;
  mutable StatSet stats_;
};

}  // namespace renuca::mem
