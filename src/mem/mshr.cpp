#include "mem/mshr.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace renuca::mem {

MshrFile::MshrFile(std::uint32_t entries) : capacity_(entries) {
  RENUCA_ASSERT(entries > 0, "MSHR file needs at least one entry");
  entries_.reserve(entries);
}

void MshrFile::cleanup(Cycle now) {
  std::erase_if(entries_, [now](const Entry& e) { return e.completeAt <= now; });
}

Cycle MshrFile::earliestFree(Cycle now) {
  cleanup(now);
  if (entries_.size() < capacity_) return now;
  Cycle best = kNoCycle;
  for (const Entry& e : entries_) best = std::min(best, e.completeAt);
  return best;
}

std::optional<Cycle> MshrFile::pendingCompletion(BlockAddr block, Cycle now) {
  cleanup(now);
  for (const Entry& e : entries_) {
    if (e.block == block) return e.completeAt;
  }
  return std::nullopt;
}

void MshrFile::add(BlockAddr block, Cycle issueAt, Cycle completeAt) {
  cleanup(issueAt);
  RENUCA_ASSERT(entries_.size() < capacity_, "MSHR overflow; check earliestFree first");
  entries_.push_back(Entry{block, completeAt});
}

std::uint32_t MshrFile::inFlight(Cycle now) {
  cleanup(now);
  return static_cast<std::uint32_t>(entries_.size());
}

}  // namespace renuca::mem
