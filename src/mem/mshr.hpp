// Miss Status Holding Register file.
//
// The core precomputes each memory request's completion cycle when it
// dispatches (see cpu::OooCore); the MSHR file therefore acts as a
// time-indexed counting semaphore: it bounds how many block misses may be
// outstanding at any instant, and merges requests to a block that already
// has a miss in flight (the second request completes with the first).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace renuca::mem {

class MshrFile {
 public:
  explicit MshrFile(std::uint32_t entries);

  /// Earliest cycle at or after `now` at which a free entry exists.
  Cycle earliestFree(Cycle now);

  /// If `block` already has an outstanding miss at `now`, the cycle that
  /// miss completes (the new request piggybacks on it).
  std::optional<Cycle> pendingCompletion(BlockAddr block, Cycle now);

  /// Registers a new outstanding miss; the caller must have checked
  /// earliestFree().  `completeAt` is the precomputed fill time.
  void add(BlockAddr block, Cycle issueAt, Cycle completeAt);

  std::uint32_t capacity() const { return capacity_; }
  /// Entries still in flight at `now` (after lazy cleanup).
  std::uint32_t inFlight(Cycle now);

 private:
  void cleanup(Cycle now);

  struct Entry {
    BlockAddr block;
    Cycle completeAt;
  };
  std::uint32_t capacity_;
  std::vector<Entry> entries_;
};

}  // namespace renuca::mem
