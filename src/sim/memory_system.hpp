// The simulated memory hierarchy: per-core enhanced TLBs and private
// L1D/L2 caches, the ReRAM NUCA LLC (one bank per mesh node; paper
// default 16 banks on a 4x4 mesh), and the DDR3 controller — glued
// together by the active mapping policy.  All NoC endpoints (core, bank,
// memory-controller) are resolved through the noc::Topology placement
// layer, so arbitrary meshes and placements share this one code path.
//
// Timing model: each request's completion cycle is computed as it walks
// the hierarchy, with contention carried by busy-until reservations on L3
// banks, mesh links, and DRAM banks/buses (see DESIGN.md §6).  Functional
// state (tags, dirty bits, MBV bits, per-frame ReRAM write counts) is
// updated in program order per core, so hit rates and write distributions
// are real, not sampled.
//
// Inclusion invariants maintained here (and checked by integration tests):
//   L1 ⊆ L2 ⊆ LLC.  An LLC eviction back-invalidates the owner core's
//   L1/L2 (dirty upper copies are flushed to DRAM with the victim), resets
//   the line's MBV bit, and notifies the policy (Naive's directory).
//
// ReRAM write accounting (what the lifetime figures are made of): every
// LLC fill and every write-back landing in a bank increments that frame's
// write counter.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "coherence/mesi.hpp"
#include "compress/compress.hpp"
#include "core/mapping_policy.hpp"
#include "cpu/core.hpp"
#include "dram/dram.hpp"
#include "mem/cache.hpp"
#include "noc/mesh.hpp"
#include "noc/topology.hpp"
#include "serial/archive.hpp"
#include "sim/config.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"
#include "tlb/tlb.hpp"

namespace renuca::sim {

/// Trace-event process lanes (see telemetry::TraceWriter): walk spans live
/// under the cores process (tid = core id); LLC instants under the llc
/// process (tid = bank id).
inline constexpr std::uint32_t kTracePidCores = 1;
inline constexpr std::uint32_t kTracePidLlc = 2;
/// Self-profile lane (System::run emits one span per profiler section).
inline constexpr std::uint32_t kTracePidProfile = 3;

/// Per-core demand/traffic counters for WPKI / MPKI / hit-rate reporting.
struct CoreMemCounters {
  std::uint64_t llcDemandAccesses = 0;
  std::uint64_t llcDemandMisses = 0;
  std::uint64_t llcWritebacks = 0;  ///< Dirty L2 evictions sent to the LLC.
};

/// One LLC frame death (wear-out or injection), for the run report.
struct FaultEvent {
  Cycle cycle = 0;  ///< Absolute cycle (System rebases to the measurement window).
  BankId bank = 0;
  std::uint32_t set = 0;
  std::uint32_t way = 0;
  std::uint64_t writes = 0;   ///< Frame write count at death.
  bool injected = false;      ///< true = injectFault, false = natural wear-out.
};

class MemorySystem final : public cpu::MemorySystem {
 public:
  explicit MemorySystem(const SystemConfig& config);

  // cpu::MemorySystem
  LoadResult load(CoreId core, Addr vaddr, std::uint64_t pc, Cycle issueAt,
                  bool predictedCritical) override;
  Cycle store(CoreId core, Addr vaddr, std::uint64_t pc, Cycle issueAt) override;

  // --- Introspection -------------------------------------------------------
  const SystemConfig& config() const { return cfg_; }
  core::MappingPolicy& policy() { return *policy_; }
  const noc::MeshNoc& mesh() const { return mesh_; }
  const noc::Topology& topology() const { return topo_; }
  const dram::DramController& dram() const { return dram_; }
  const mem::CacheBank& llcBank(BankId b) const { return *llc_[b]; }
  std::uint32_t numBanks() const { return static_cast<std::uint32_t>(llc_.size()); }
  const CoreMemCounters& coreCounters(CoreId c) const { return coreCounters_[c]; }
  tlb::EnhancedTlb& tlbOf(CoreId c) { return *tlbs_[c]; }
  tlb::PageTable& pageTable() { return pageTable_; }
  // Reading the stats first syncs the batched hot-path counters into the
  // string-keyed set (see HotCounters below).
  const StatSet& stats() const {
    flushHotStats();
    return stats_;
  }
  const coherence::DirectoryMesi* directory() const { return directory_.get(); }

  /// Per-bank cumulative ReRAM writes (the Naive policy's oracle).
  std::uint64_t bankWrites(BankId b) const { return llc_[b]->totalWrites(); }

  // --- Wear-out faults -----------------------------------------------------

  /// Per-bank fault model; nullptr when the fault model is disabled.
  const rram::BankFaultModel* faultModel(BankId b) const {
    return faultModels_.empty() ? nullptr : faultModels_[b].get();
  }
  /// Deterministic injection: kills the frame now (eviction-style cleanup
  /// included).  Returns false if the frame was already dead.
  bool injectFault(BankId bank, std::uint32_t set, std::uint32_t way, Cycle now);
  /// Frame deaths recorded since the last resetMeasurement().
  const std::vector<FaultEvent>& faultEvents() const { return faultEvents_; }
  /// Fraction of LLC frames still alive, over all banks.
  double llcLiveFrameFrac() const;

  /// Fraction of LLC fills whose triggering access was predicted
  /// non-critical (Fig 8), and of LLC writes landing on non-critical
  /// blocks (Fig 9).
  double nonCriticalFillFrac() const;
  double nonCriticalWriteFrac() const;

  // --- Compression (cfg.compress != None) ----------------------------------

  /// Per-core content compressibility profiles (System wires the workload
  /// mix's per-app profiles in; the default profile applies to any core
  /// not covered).  Only consulted when compression is on.
  void setCompressibility(std::vector<compress::Compressibility> perCore) {
    compressibility_ = std::move(perCore);
  }
  bool compressionEnabled() const {
    return cfg_.compress != compress::Kind::None;
  }
  /// Totals over all banks (0 when compression is off).
  std::uint64_t totalBitsFlipped() const;

  /// Ends the warm-up window: zeros every statistic and ReRAM write
  /// counter while keeping cache/TLB/predictor contents.
  void resetMeasurement();

  /// Warm-up mode: functional-only accesses — tags, MBV bits, policy and
  /// endurance state all update, but no bank/link/DRAM time is reserved.
  /// Used for the untimed fast-forward phase (the analogue of the paper's
  /// 2 B-instruction fast-forward + cache warm-up before measurement).
  void setWarmupMode(bool on) { warmupMode_ = on; }
  bool warmupMode() const { return warmupMode_; }

  /// Checks the L1 ⊆ L2 ⊆ LLC inclusion invariants by sampling resident
  /// lines; returns an empty string or a violation description (tests).
  std::string checkInclusion() const;

  /// Attaches an event tracer (owned by the caller; may be null).  Walk
  /// spans and eviction/MBV instants are emitted for sampled walks only.
  void setTracer(telemetry::TraceWriter* tracer) { tracer_ = tracer; }

  /// Attaches the self-profiler (owned by the caller; may be null):
  /// resolves the per-component section handles.  With no profiler every
  /// handle stays detached and the hooks cost one null test each.
  void setProfiler(telemetry::Profiler* profiler);

  /// Registers the hierarchy's epoch-sampled metrics: whole-system LLC and
  /// DRAM traffic, NoC load, and per-bank cumulative ReRAM writes
  /// ("l3.b<N>.writes" — the per-bank write time series behind the
  /// lifetime figures).
  void registerMetrics(telemetry::MetricsRegistry& reg);

  // --- Checkpointing -------------------------------------------------------
  // Saves / restores the hierarchy's functional state as one tagged section
  // per component (pagetable, tlb<c>, l1d<c>, l2<c>, l3b<b>, fault<b>,
  // policy, dram, noc).  Timing state and statistics are excluded; see
  // serial/checkpointable.hpp for the contract.  loadCheckpoint returns
  // false (leaving the hierarchy in an unspecified warm state the caller
  // must discard) if any section is missing, corrupt, or shaped for a
  // different configuration.
  void saveCheckpoint(serial::ArchiveWriter& ar) const;
  bool loadCheckpoint(serial::ArchiveReader& ar);

 private:
  struct WalkResult {
    Cycle completeAt = 0;
    bool missedL1 = false;
  };
  WalkResult walk(CoreId core, Addr vaddr, Cycle issueAt, AccessType type,
                  bool critical);

  /// Sends a dirty L2 victim to the LLC (the WPKI event).
  void writebackToLlc(CoreId owner, BlockAddr block, Cycle now);
  /// Handles an L2 fill's victim: back-invalidates L1, forwards dirty data.
  void evictFromL2(CoreId core, const mem::Eviction& ev, Cycle now);
  /// Handles an LLC fill's victim: back-invalidation, MBV reset, policy
  /// notice, DRAM write-back.
  void evictFromLlc(BankId bank, const mem::Eviction& ev, Cycle now);
  /// Drains and handles wear-out deaths queued by the bank's write path:
  /// policy/MBV cleanup for the lost line, dirty-data rescue to DRAM, the
  /// fault log, and tracer instants.  Call after any LLC write.
  void processFrameDeaths(BankId bank, Cycle now);
  void handleFrameDeath(BankId bank, const mem::CacheBank::FrameDeath& death,
                        Cycle now, bool injected);
  /// Writes a dirty L1 victim into the L2 (repairing inclusion if needed).
  void writebackL1VictimToL2(CoreId core, BlockAddr block, Cycle now);
  /// Next-line prefetch: brings `vaddr`'s line into the L2 (and the LLC if
  /// absent) without stalling the core.  Fills are tagged non-critical.
  void prefetchIntoL2(CoreId core, Addr vaddr, Cycle now);

  /// The line's MBV bit, fetched via the page-table backing store (used
  /// for write-backs, where only the physical address is at hand).
  bool mbvBitPhys(BlockAddr block) const;
  /// Owning core (== ASID) of a physical block; multi-programmed runs have
  /// exactly one.
  CoreId ownerOf(BlockAddr block) const;
  /// Mesh node hosting a DRAM channel's memory controller.
  std::uint32_t memNode(std::uint32_t channel) const;
  /// MESI directory actions on the demand path (enableSharing only).
  void coherenceActions(CoreId core, BlockAddr block, AccessType type, Cycle now);

  // Timing wrappers that become no-ops in warm-up mode.
  Cycle nocTraverse(std::uint32_t src, std::uint32_t dst, Cycle at, std::uint32_t flits);
  Cycle bankReserve(BankId bank, Cycle at);
  Cycle dramAccess(Addr paddr, AccessType type, Cycle at);

  /// Synthetic content descriptor for `block` at its current write version
  /// (compression on only).  The line's class is a pure function of the
  /// block address and the owner's compressibility profile — a given line
  /// holds the same *kind* of data for its whole life — while the payload
  /// seed advances with the write version so rewrites actually flip cells.
  compress::LineContent currentContent(CoreId owner, BlockAddr block) const;

  SystemConfig cfg_;
  noc::Topology topo_;
  tlb::PageTable pageTable_;
  std::vector<std::unique_ptr<tlb::EnhancedTlb>> tlbs_;
  std::vector<std::unique_ptr<mem::CacheBank>> l1_;
  std::vector<std::unique_ptr<mem::CacheBank>> l2_;
  noc::MeshNoc mesh_;
  std::vector<std::unique_ptr<mem::CacheBank>> llc_;
  std::vector<std::unique_ptr<rram::BankFaultModel>> faultModels_;
  std::vector<FaultEvent> faultEvents_;
  dram::DramController dram_;
  std::unique_ptr<core::MappingPolicy> policy_;
  std::unique_ptr<coherence::DirectoryMesi> directory_;

  std::vector<CoreMemCounters> coreCounters_;
  mutable StatSet stats_;

  /// Walk-path counters batched as plain members so the hot loop touches
  /// one contiguous struct instead of scattered std::map nodes.  These are
  /// the authoritative running totals: stats() *assigns* them into stats_
  /// on read, which is safe because the cold keys inc'd directly into the
  /// map (dead_set_bypasses, frame_deaths, injected_faults, ...) are
  /// disjoint from the hot keys.  registerMetrics() exposes the member
  /// addresses, so epoch snapshots always see fresh values with no flush.
  struct HotCounters {
    std::uint64_t llcWritebacks = 0;
    std::uint64_t llcWritesCritical = 0;
    std::uint64_t llcWritesNonCritical = 0;
    std::uint64_t llcWbAllocates = 0;
    std::uint64_t llcEvictions = 0;
    std::uint64_t llcBackInvalidations = 0;
    std::uint64_t dramWritebacks = 0;
    std::uint64_t llcFills = 0;
    std::uint64_t llcFillsNonCritical = 0;
    std::uint64_t naiveDirectoryLookups = 0;
    std::uint64_t warmMigrations = 0;
    std::uint64_t l2Prefetches = 0;
    std::uint64_t l2PrefetchLlcMisses = 0;
    std::uint64_t l1WbOrphans = 0;
    std::uint64_t coherenceInvalidations = 0;
    std::uint64_t llcMissLatencySum = 0;
    std::uint64_t llcMissLatencyCount = 0;
    std::uint64_t llcMissPreBankSum = 0;
    std::uint64_t dbgTlbSum = 0;
    std::uint64_t dbgL1qSum = 0;
    std::uint64_t dbgL2qSum = 0;
    std::uint64_t dbgBankqSum = 0;
    std::uint64_t llcMissDramSum = 0;
    std::uint64_t llcMissPostDramSum = 0;
  };
  void flushHotStats() const;
  mutable HotCounters hot_;

  telemetry::TraceWriter* tracer_ = nullptr;
  /// Whether the walk in progress was sampled for tracing; lets the
  /// eviction/write-back paths it triggers emit their instants.
  bool traceThisWalk_ = false;
  bool warmupMode_ = false;

  // Self-profiler sections (detached when no profiler is attached).  The
  // llc section wraps the whole LLC region of a walk, with noc/dram scopes
  // nested inside it — self-time attribution (telemetry/profiler.hpp)
  // keeps the three disjoint.
  telemetry::ProfSection secTlb_;
  telemetry::ProfSection secL1_;
  telemetry::ProfSection secL2_;
  telemetry::ProfSection secLlc_;
  telemetry::ProfSection secNoc_;
  telemetry::ProfSection secDram_;

  // --- Content model (compress != None only; all empty otherwise) ----------
  /// Per-core compressibility profile from the workload mix; cores past the
  /// end use the default profile.
  std::vector<compress::Compressibility> compressibility_;
  /// Per-block write version: bumped on every dirty L2→LLC write-back, so
  /// a line's compressed payload changes when its data does.  Like the
  /// frames' cell contents, versions persist across resetMeasurement()
  /// (they are content identity, not a statistic) and ride in snapshots
  /// (the "cmpmeta" section, canonically sorted).
  std::unordered_map<BlockAddr, std::uint32_t> contentVersion_;
};

}  // namespace renuca::sim
