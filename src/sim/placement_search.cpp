#include "sim/placement_search.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace renuca::sim {

std::vector<PlacementCandidate> mcEdgeCandidates(std::uint32_t numMcs) {
  std::vector<PlacementCandidate> out;
  for (noc::McEdge edge : {noc::McEdge::Corners, noc::McEdge::Top,
                           noc::McEdge::Bottom, noc::McEdge::Left,
                           noc::McEdge::Right, noc::McEdge::Ring,
                           noc::McEdge::Diagonal, noc::McEdge::Center}) {
    PlacementCandidate c;
    c.name = noc::toString(edge);
    c.placement.numMcs = numMcs;
    c.placement.mcEdge = edge;
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<PlacementCandidate> randomBankCandidates(const noc::NocConfig& geom,
                                                     std::uint32_t count,
                                                     std::uint64_t seed) {
  const std::uint32_t n = geom.width * geom.height;
  std::vector<PlacementCandidate> out;
  Pcg32 rng(seed, 0x706c616365ull);  // "place"
  for (std::uint32_t i = 0; i < count; ++i) {
    PlacementCandidate c;
    c.name = "shuffle" + std::to_string(i);
    c.placement.bankNodes.resize(n);
    for (std::uint32_t b = 0; b < n; ++b) c.placement.bankNodes[b] = b;
    // Fisher-Yates over one shared stream: candidate i's permutation is a
    // pure function of (seed, i).
    for (std::uint32_t k = n; k > 1; --k) {
      std::uint32_t j = rng.nextBelow(k);
      std::swap(c.placement.bankNodes[k - 1], c.placement.bankNodes[j]);
    }
    out.push_back(std::move(c));
  }
  return out;
}

SweepPlan placementSearchPlan(const SystemConfig& base,
                              const workload::WorkloadMix& mix,
                              const std::vector<PlacementCandidate>& candidates) {
  SweepPlan plan;
  for (const PlacementCandidate& cand : candidates) {
    Job job;
    job.label = "place/" + cand.name;
    job.config = base;
    job.config.placement = cand.placement;
    job.mix = mix;
    plan.add(std::move(job));
  }
  return plan;
}

std::vector<PlacementScore> rankPlacements(
    const std::vector<PlacementCandidate>& candidates,
    const std::vector<RunResult>& results) {
  std::vector<PlacementScore> scores;
  for (std::size_t i = 0; i < candidates.size() && i < results.size(); ++i) {
    PlacementScore s;
    s.name = candidates[i].name;
    if (results[i].error.empty()) {
      s.systemIpc = results[i].systemIpc;
      s.avgNocLatencyCycles = results[i].avgNocLatencyCycles;
      s.minLifetimeYears = results[i].minBankLifetime();
      s.score = s.systemIpc * s.minLifetimeYears;
    }
    scores.push_back(std::move(s));
  }
  std::stable_sort(scores.begin(), scores.end(),
                   [](const PlacementScore& a, const PlacementScore& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.name < b.name;
                   });
  return scores;
}

}  // namespace renuca::sim
