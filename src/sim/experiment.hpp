// Experiment runner: the sweeps behind every table and figure.
//
// Benches compose three things: a SystemConfig preset (Table I or a
// sensitivity variant), a set of policies, and the ten standard workload
// mixes.  This module runs the cross product, aggregates lifetimes the way
// the paper does (harmonic mean per bank across workloads; raw minimum
// over everything), and normalizes IPC improvements against S-NUCA.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "rram/endurance.hpp"
#include "sim/config.hpp"
#include "sim/sweep.hpp"
#include "sim/system.hpp"
#include "workload/mixes.hpp"

namespace renuca::sim {

/// Runs one workload mix under one configuration.
RunResult runWorkload(const SystemConfig& config, const workload::WorkloadMix& mix);

/// Runs a single application alone on the single-core rig (Table II and
/// the per-app criticality figures).  `instrPerCore`/`warmup` come from
/// the config.
RunResult runSingleApp(const SystemConfig& singleCoreConfig, const std::string& appName);

/// Results of policy x mix sweep.
struct PolicySweep {
  std::vector<core::PolicyKind> policies;
  std::vector<workload::WorkloadMix> mixes;
  /// results[p][m] is policy `policies[p]` on mix `mixes[m]`.
  std::vector<std::vector<RunResult>> results;

  const RunResult& at(std::size_t policyIdx, std::size_t mixIdx) const {
    return results[policyIdx][mixIdx];
  }

  /// Per-bank harmonic-mean lifetimes across mixes for one policy
  /// (Fig 3 / Fig 12 bars).
  std::vector<double> harmonicLifetimesPerBank(std::size_t policyIdx) const;
  /// Raw minimum lifetime over all banks and mixes (Table III).
  double rawMinLifetime(std::size_t policyIdx) const;
  /// Mean system IPC across mixes.
  double meanSystemIpc(std::size_t policyIdx) const;
  /// Per-mix IPC improvement (%) of `policyIdx` over the sweep's S-NUCA
  /// entry (must be present) — the paper's system-IPC metric.
  std::vector<double> ipcImprovementVsSnuca(std::size_t policyIdx) const;
  /// Secondary: mean per-core normalized IPC improvement (%), weighting
  /// every application equally.
  std::vector<double> perCoreNormalizedImprovement(std::size_t policyIdx) const;
  /// Average of ipcImprovementVsSnuca.
  double meanIpcImprovementVsSnuca(std::size_t policyIdx) const;

  std::size_t indexOf(core::PolicyKind kind) const;
};

/// Builds the (policy x mix) plan behind sweepPolicies: job p*mixes+m is
/// policy `policies[p]` on `mixes[m]` under `base` with the policy field
/// overridden.  Exposed so drivers can compose larger plans.
SweepPlan policySweepPlan(const SystemConfig& base,
                          const std::vector<core::PolicyKind>& policies,
                          const std::vector<workload::WorkloadMix>& mixes);

/// Reshapes plan-ordered results of policySweepPlan back into a
/// PolicySweep.
PolicySweep assemblePolicySweep(const std::vector<core::PolicyKind>& policies,
                                const std::vector<workload::WorkloadMix>& mixes,
                                std::vector<RunResult> results);

/// Runs every (policy, mix) pair under `base` (whose policy field is
/// overridden per run) on the sweep engine.  Deterministic given
/// base.seed: `opts.jobs` changes wall-clock time, never results.
PolicySweep sweepPolicies(const SystemConfig& base,
                          const std::vector<core::PolicyKind>& policies,
                          const std::vector<workload::WorkloadMix>& mixes,
                          const SweepOptions& opts = {});

/// The paper's five schemes, in its presentation order.
const std::vector<core::PolicyKind>& allPolicies();
/// The four baselines of Fig 3 (no Re-NUCA).
const std::vector<core::PolicyKind>& baselinePolicies();

}  // namespace renuca::sim
