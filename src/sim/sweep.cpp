#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>

#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "sim/experiment.hpp"

namespace renuca::sim {

std::size_t SweepPlan::add(Job job) {
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

std::size_t SweepPlan::addSingleApp(std::string label,
                                    const SystemConfig& singleCoreConfig,
                                    const std::string& appName) {
  RENUCA_ASSERT(singleCoreConfig.numCores == 1,
                "addSingleApp needs the single-core rig");
  workload::WorkloadMix mix;
  mix.name = appName;
  mix.appNames = {appName};
  return add(Job{std::move(label), singleCoreConfig, std::move(mix)});
}

unsigned resolveJobs(unsigned jobs) {
  return jobs == 0 ? ThreadPool::hardwareThreads() : jobs;
}

namespace {

/// Splices the job index into a trace path ("t.json" -> "t.j3.json") so
/// concurrent jobs never share a trace file.  Applied whenever the plan
/// has more than one traced job, independent of the worker count, so the
/// set of files a plan writes does not depend on jobs=.
std::string perJobTracePath(const std::string& path, std::size_t index) {
  std::size_t dot = path.rfind('.');
  std::size_t slash = path.find_last_of("/\\");
  std::string suffix = ".j" + std::to_string(index);
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + suffix;
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

void narrateDone(const Job& job, std::size_t finished, std::size_t total) {
  logMessage(LogLevel::Info, "sweep",
             std::to_string(finished) + "/" + std::to_string(total) + " " +
                 job.label);
}

}  // namespace

std::vector<RunResult> runPlan(const SweepPlan& plan, const SweepOptions& opts) {
  const std::vector<Job>& jobs = plan.jobs();
  std::vector<RunResult> results(jobs.size());
  if (jobs.empty()) return results;

  // Per-job trace files when several jobs would collide on one path.
  std::vector<const Job*> order;
  std::vector<Job> patched;
  std::size_t traced = 0;
  for (const Job& j : jobs) {
    if (!j.config.traceJsonPath.empty()) ++traced;
  }
  if (traced > 1) {
    patched.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      patched.push_back(jobs[i]);
      if (!patched.back().config.traceJsonPath.empty()) {
        patched.back().config.traceJsonPath =
            perJobTracePath(patched.back().config.traceJsonPath, i);
      }
    }
    for (const Job& j : patched) order.push_back(&j);
  } else {
    for (const Job& j : jobs) order.push_back(&j);
  }

  unsigned workers = std::min<std::size_t>(resolveJobs(opts.jobs), jobs.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      results[i] = runWorkload(order[i]->config, order[i]->mix);
      if (opts.narrate) narrateDone(*order[i], i + 1, order.size());
    }
    return results;
  }

  if (opts.narrate) {
    logMessage(LogLevel::Info, "sweep",
               "running " + std::to_string(jobs.size()) + " jobs on " +
                   std::to_string(workers) + " threads");
  }
  ThreadPool pool(workers);
  std::atomic<std::size_t> finished{0};
  const bool narrate = opts.narrate;
  const std::size_t total = order.size();
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Job* job = order[i];
    RunResult* slot = &results[i];
    pool.submit([job, slot, &finished, narrate, total] {
      *slot = runWorkload(job->config, job->mix);
      std::size_t done = finished.fetch_add(1, std::memory_order_relaxed) + 1;
      if (narrate) narrateDone(*job, done, total);
    });
  }
  pool.wait();
  return results;
}

}  // namespace renuca::sim
