#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <new>
#include <sstream>
#include <system_error>
#include <unordered_map>

#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "sim/experiment.hpp"
#include "sim/fingerprint.hpp"

namespace renuca::sim {

std::size_t SweepPlan::add(Job job) {
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

std::size_t SweepPlan::addSingleApp(std::string label,
                                    const SystemConfig& singleCoreConfig,
                                    const std::string& appName) {
  RENUCA_ASSERT(singleCoreConfig.numCores == 1,
                "addSingleApp needs the single-core rig");
  workload::WorkloadMix mix;
  mix.name = appName;
  mix.appNames = {appName};
  return add(Job{std::move(label), singleCoreConfig, std::move(mix)});
}

unsigned resolveJobs(unsigned jobs) {
  return jobs == 0 ? ThreadPool::hardwareThreads() : jobs;
}

namespace {

/// Splices the job index into a trace path ("t.json" -> "t.j3.json") so
/// concurrent jobs never share a trace file.  Applied whenever the plan
/// has more than one traced job, independent of the worker count, so the
/// set of files a plan writes does not depend on jobs=.
std::string perJobTracePath(const std::string& path, std::size_t index) {
  std::size_t dot = path.rfind('.');
  std::size_t slash = path.find_last_of("/\\");
  std::string suffix = ".j" + std::to_string(index);
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + suffix;
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

void narrateDone(const Job& job, std::size_t finished, std::size_t total) {
  logMessage(LogLevel::Info, "sweep",
             std::to_string(finished) + "/" + std::to_string(total) + " " +
                 job.label);
}

/// Runs one job, converting any exception into RunResult::error so a bad
/// job spec (unknown app profile, malformed trace) costs one result slot,
/// never a worker thread or the whole plan.  The error is classified:
/// I/O and resource failures ("io") are environment-specific and worth
/// retrying elsewhere; everything else is a deterministic simulation
/// failure ("sim") that any retry would reproduce.
RunResult runJobGuarded(const Job& job) {
  RunResult r;
  try {
    return runWorkload(job.config, job.mix);
  } catch (const std::system_error& e) {  // Covers filesystem_error, ios failures.
    r.error = e.what();
    r.errorCode = "io";
  } catch (const std::bad_alloc& e) {
    r.error = e.what();
    r.errorCode = "io";
  } catch (const std::exception& e) {
    r.error = e.what();
    r.errorCode = "sim";
  }
  logMessage(LogLevel::Warn, "sweep",
             job.label + " failed (" + r.errorCode + "): " + r.error);
  r.mixName = job.mix.name;
  r.policy = job.config.policy;
  return r;
}

std::string warmSnapshotPath(const std::string& dir, std::uint64_t fingerprint) {
  std::ostringstream os;
  os << dir << "/warm-" << std::hex << fingerprint << ".ckpt";
  return os.str();
}

/// Warm-start wiring: groups jobs by warm-state fingerprint and patches
/// snapshot paths into their configs.  Returns a follower mask — follower
/// jobs restore a snapshot some phase-1 job (or an earlier plan) wrote, so
/// they must not start before phase 1 completes.
std::vector<char> wireWarmStarts(std::vector<Job>& jobs, const std::string& dir) {
  std::vector<char> follower(jobs.size(), 0);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    logMessage(LogLevel::Warn, "sweep",
               "cannot create snapshot dir " + dir + "; warm starts disabled");
    return follower;
  }
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const SystemConfig& cfg = jobs[i].config;
    // Jobs that manage snapshots themselves, and coherence runs (whose
    // directory state is not checkpointable), stay cold.
    if (!cfg.snapshotSavePath.empty() || !cfg.snapshotLoadPath.empty() ||
        cfg.enableSharing) {
      continue;
    }
    groups[warmStateFingerprint(cfg, jobs[i].mix)].push_back(i);
  }
  for (const auto& [fingerprint, members] : groups) {
    const std::string path = warmSnapshotPath(dir, fingerprint);
    const bool exists = std::filesystem::exists(path);
    // A singleton group only benefits when an earlier plan already left
    // the snapshot behind; saving one nobody will read wastes disk.
    if (!exists && members.size() < 2) continue;
    std::size_t firstFollower = 0;
    if (!exists) {
      jobs[members[0]].config.snapshotSavePath = path;
      firstFollower = 1;
    }
    for (std::size_t m = firstFollower; m < members.size(); ++m) {
      jobs[members[m]].config.snapshotLoadPath = path;
      follower[members[m]] = 1;
    }
  }
  return follower;
}

}  // namespace

std::vector<RunResult> runPlan(const SweepPlan& plan, const SweepOptions& opts) {
  std::vector<Job> jobs(plan.jobs());
  std::vector<RunResult> results(jobs.size());
  if (jobs.empty()) return results;

  // Per-job trace files when several jobs would collide on one path.
  std::size_t traced = 0;
  for (const Job& j : jobs) {
    if (!j.config.traceJsonPath.empty()) ++traced;
  }
  if (traced > 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (!jobs[i].config.traceJsonPath.empty()) {
        jobs[i].config.traceJsonPath =
            perJobTracePath(jobs[i].config.traceJsonPath, i);
      }
    }
  }

  // Warm-start snapshot sharing.  Followers restore a snapshot that a
  // phase-1 job writes (or that an earlier plan left behind), so they run
  // in a second phase after every leader has finished.  Results stay in
  // plan order; a follower whose restore fails falls back to the cold
  // fast-forward inside System::run(), so results never depend on snapshot
  // availability.
  std::vector<char> follower(jobs.size(), 0);
  if (!opts.warmStartDir.empty()) {
    follower = wireWarmStarts(jobs, opts.warmStartDir);
  }
  std::vector<std::size_t> phase1, phase2;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    (follower[i] ? phase2 : phase1).push_back(i);
  }
  if (opts.narrate && !phase2.empty()) {
    logMessage(LogLevel::Info, "sweep",
               std::to_string(phase2.size()) + "/" + std::to_string(jobs.size()) +
                   " jobs warm-start from shared snapshots");
  }

  unsigned workers = std::min<std::size_t>(resolveJobs(opts.jobs), jobs.size());
  if (opts.pool == nullptr && workers <= 1) {
    std::size_t done = 0;
    for (const std::vector<std::size_t>* phase : {&phase1, &phase2}) {
      for (std::size_t i : *phase) {
        if (opts.onJobStart) opts.onJobStart(i);
        results[i] = runJobGuarded(jobs[i]);
        if (opts.onJobDone) opts.onJobDone(i, results[i]);
        if (opts.narrate) narrateDone(jobs[i], ++done, jobs.size());
      }
    }
    return results;
  }

  // An external pool (the daemon's resident one) is used as-is; otherwise
  // the plan owns a pool for its own duration.
  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = opts.pool;
  if (pool == nullptr) {
    owned = std::make_unique<ThreadPool>(workers);
    pool = owned.get();
  }
  if (opts.narrate) {
    logMessage(LogLevel::Info, "sweep",
               "running " + std::to_string(jobs.size()) + " jobs on " +
                   std::to_string(pool->threadCount()) + " threads");
  }
  std::atomic<std::size_t> finished{0};
  const bool narrate = opts.narrate;
  const std::size_t total = jobs.size();
  for (const std::vector<std::size_t>* phase : {&phase1, &phase2}) {
    for (std::size_t i : *phase) {
      const Job* job = &jobs[i];
      RunResult* slot = &results[i];
      const auto* o = &opts;
      pool->submit([job, slot, i, o, &finished, narrate, total] {
        if (o->onJobStart) o->onJobStart(i);
        *slot = runJobGuarded(*job);
        if (o->onJobDone) o->onJobDone(i, *slot);
        std::size_t done = finished.fetch_add(1, std::memory_order_relaxed) + 1;
        if (narrate) narrateDone(*job, done, total);
      });
    }
    pool->wait();  // phase barrier: followers need the leaders' snapshots
  }
  return results;
}

}  // namespace renuca::sim
