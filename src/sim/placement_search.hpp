// Placement exploration: which bank/MC arrangement should a big mesh use?
//
// Following "Optimal Placement of Cores, Caches and Memory Controllers in
// NoC" (arXiv 1607.04298), MC and cache placement dominates NoC latency at
// 8x8 scale — and on a ReRAM LLC it also shifts *wear*, because placement
// changes which banks absorb the write-heavy cores' clusters.  This module
// enumerates candidate placements as ordinary SweepPlan jobs (so jobs=,
// snapshot_dir=, renucad, and the sharded fleet all work unchanged) and
// ranks the results by a combined latency x lifetime score.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "noc/topology.hpp"
#include "sim/config.hpp"
#include "sim/sweep.hpp"

namespace renuca::sim {

/// One candidate placement, named for reports ("corners", "ring",
/// "shuffle3", ...).
struct PlacementCandidate {
  std::string name;
  noc::PlacementConfig placement;
};

/// The eight nameable MC-edge schemes, each with `numMcs` controllers.
std::vector<PlacementCandidate> mcEdgeCandidates(std::uint32_t numMcs);

/// `count` deterministic pseudo-random bank permutations ("shuffle0"...),
/// on top of the default MC placement.  Explores whether scattering banks
/// away from the identity map helps wear at the cost of latency.
std::vector<PlacementCandidate> randomBankCandidates(const noc::NocConfig& geom,
                                                     std::uint32_t count,
                                                     std::uint64_t seed);

/// One job per candidate: `base` with the candidate's placement applied,
/// labelled "place/<name>".  Results come back in candidate order.
SweepPlan placementSearchPlan(const SystemConfig& base,
                              const workload::WorkloadMix& mix,
                              const std::vector<PlacementCandidate>& candidates);

/// A candidate's figure of merit.  score = systemIpc x minLifetimeYears:
/// a placement only wins by being fast AND wearing its weakest bank slowly
/// (either factor at zero zeroes the score).
struct PlacementScore {
  std::string name;
  double systemIpc = 0.0;
  double avgNocLatencyCycles = 0.0;
  double minLifetimeYears = 0.0;
  double score = 0.0;
};

/// Pairs candidates with their plan-ordered results and sorts by score,
/// best first (ties by name for determinism).  Failed runs score zero and
/// sink to the bottom.
std::vector<PlacementScore> rankPlacements(
    const std::vector<PlacementCandidate>& candidates,
    const std::vector<RunResult>& results);

}  // namespace renuca::sim
