#include "sim/system.hpp"

#include <algorithm>
#include <cstdio>

#include "common/log.hpp"
#include "serial/archive.hpp"
#include "serial/checkpointable.hpp"
#include "sim/fingerprint.hpp"

namespace renuca::sim {

double RunResult::minBankLifetime() const {
  if (bankLifetimeYears.empty()) return 0.0;
  return *std::min_element(bankLifetimeYears.begin(), bankLifetimeYears.end());
}

double RunResult::minBankLifetimeBits() const {
  if (bankLifetimeYearsBits.empty()) return 0.0;
  return *std::min_element(bankLifetimeYearsBits.begin(), bankLifetimeYearsBits.end());
}

double RunResult::avgWpki() const { return arithmeticMean(wpki); }
double RunResult::avgMpki() const { return arithmeticMean(mpki); }

System::System(const SystemConfig& config, const workload::WorkloadMix& mix)
    : cfg_(config), mix_(mix) {
  RENUCA_ASSERT(mix.appNames.size() == cfg_.numCores,
                "workload mix size must equal the core count");
  mem_ = std::make_unique<MemorySystem>(cfg_);

  bool wantPredictor = mem_->policy().needsPredictor() || cfg_.forcePredictor;
  for (CoreId c = 0; c < cfg_.numCores; ++c) {
    const workload::AppProfile& prof = workload::profileByName(mix.appNames[c]);
    gens_.push_back(std::make_unique<workload::SyntheticGenerator>(
        prof, cfg_.seed * 1000003ull + c));
    cpts_.push_back(wantPredictor
                        ? std::make_unique<core::CriticalityPredictorTable>(cfg_.cpt)
                        : nullptr);
    cores_.push_back(std::make_unique<cpu::OooCore>(
        cfg_.coreCfg, c, gens_.back().get(), mem_.get(), cpts_.back().get(),
        cfg_.instrPerCore));
    cores_.back()->setRunPastBudget(true);
  }

  if (cfg_.compress != compress::Kind::None) {
    // Each core's synthetic line contents follow its app's compressibility
    // profile (workload/app_profile.cpp archetypes).
    std::vector<compress::Compressibility> perCore;
    perCore.reserve(cfg_.numCores);
    for (CoreId c = 0; c < cfg_.numCores; ++c) {
      perCore.push_back(workload::profileByName(mix.appNames[c]).compressibility);
    }
    mem_->setCompressibility(std::move(perCore));
  }

  wake_.assign(cfg_.numCores, 0);  // 0 = due at the first visited cycle
  lastTickIter_.assign(cfg_.numCores, 0);
  headBlockedLoad_.assign(cfg_.numCores, 0);

  registerMetrics();

  if (cfg_.profileEnabled) {
    profiler_ = std::make_unique<telemetry::Profiler>();
    secCores_ = profiler_->section("cores");
    secFf_ = profiler_->section("fastforward");
    secWorkload_ = profiler_->section("workload_gen");
    secPredictor_ = profiler_->section("predictor");
    secTelemetry_ = profiler_->section("telemetry");
    mem_->setProfiler(profiler_.get());
  }

  if (!cfg_.traceJsonPath.empty()) {
    tracer_ = std::make_unique<telemetry::TraceWriter>(cfg_.traceJsonPath,
                                                       cfg_.traceSampleEvery);
    if (tracer_->ok()) {
      tracer_->nameProcess(kTracePidCores, "cores");
      tracer_->nameProcess(kTracePidLlc, "llc");
      for (CoreId c = 0; c < cfg_.numCores; ++c) {
        tracer_->nameThread(kTracePidCores, c, "core" + std::to_string(c));
      }
      for (BankId b = 0; b < mem_->numBanks(); ++b) {
        tracer_->nameThread(kTracePidLlc, b, "bank" + std::to_string(b));
      }
      mem_->setTracer(tracer_.get());
      for (CoreId c = 0; c < cfg_.numCores; ++c) {
        telemetry::TraceWriter* t = tracer_.get();
        MemorySystem* mem = mem_.get();
        cores_[c]->setCriticalityFlipHook(
            [t, mem, c](Cycle at, std::uint64_t pc, bool stalled) {
              if (mem->warmupMode()) return;
              t->instant("criticality_flip", "cpt", kTracePidCores, c, at,
                         {{"pc", static_cast<std::int64_t>(pc)},
                          {"now_critical", stalled ? 1 : 0}});
            });
      }
    } else {
      tracer_.reset();
    }
  }
}

void System::registerMetrics() {
  mem_->registerMetrics(metrics_);
  for (CoreId c = 0; c < cfg_.numCores; ++c) {
    const std::string prefix = "core" + std::to_string(c) + ".";
    const cpu::CoreStats& cs = cores_[c]->stats();
    metrics_.expose(prefix + "committed", &cs.committed);
    metrics_.expose(prefix + "rob_stall_cycles", &cs.robHeadStallCycles);
    metrics_.expose(prefix + "cpt_flips", &cs.cptVerdictFlips);
    cpu::OooCore* core = cores_[c].get();
    metrics_.gauge(prefix + "mshr_inflight", [this, core] {
      return static_cast<double>(core->mshrInFlight(epochNow_));
    });
  }
}

void System::tickAll(Cycle now) {
  for (auto& core : cores_) core->tick(now);
}

Cycle System::stepCores(Cycle now) {
  if (cfg_.bruteForceTick) {
    // Reference loop: tick every core at every visited cycle and rescan
    // for the minimum.  Kept as the oracle for test_system_equivalence.
    tickAll(now);
    return nextCycle(now);
  }
  ++loopIter_;
  for (CoreId c = 0; c < cfg_.numCores; ++c) {
    if (wake_[c] > now) continue;  // asleep: settled lazily
    cpu::OooCore& core = *cores_[c];
    // Iterations this core slept through since its last tick: the head was
    // a blocked load for every one of them (or none), per the cached flag.
    std::uint64_t skipped = loopIter_ - lastTickIter_[c] - 1;
    if (skipped != 0 && headBlockedLoad_[c] != 0) {
      core.addSkippedHeadStallCycles(skipped);
    }
    core.tick(now);
    lastTickIter_[c] = loopIter_;
    wake_[c] = core.nextEventCycle(now);
    headBlockedLoad_[c] = core.headBlockedLoadAfterTick(now) ? 1 : 0;
  }
  Cycle next = kNoCycle;
  for (Cycle w : wake_) next = std::min(next, w);
  if (next == kNoCycle || next <= now) return now + 1;
  return next;
}

void System::settleSkippedStats() {
  if (cfg_.bruteForceTick) return;
  for (CoreId c = 0; c < cfg_.numCores; ++c) {
    std::uint64_t skipped = loopIter_ - lastTickIter_[c];
    if (skipped != 0 && headBlockedLoad_[c] != 0) {
      cores_[c]->addSkippedHeadStallCycles(skipped);
    }
    lastTickIter_[c] = loopIter_;
  }
}

void System::fastForward(std::uint64_t instrPerCore) {
  if (instrPerCore == 0) return;
  telemetry::ScopedProf ff(secFf_);
  mem_->setWarmupMode(true);
  constexpr std::uint64_t kChunk = 4096;  // interleave so cores warm the LLC together
  // Per-core chunks run as three batched passes — generate, predict,
  // execute — so the profiler can attribute each phase with one scope per
  // chunk instead of one per instruction.  Behavior-identical to the
  // interleaved loop: predict() never mutates the table (training happens
  // in the timed core), so each load sees the same verdict either way, and
  // the memory-op order per core is unchanged.
  std::vector<workload::TraceRecord> recs(kChunk);
  std::vector<unsigned char> crit(kChunk);
  for (std::uint64_t done = 0; done < instrPerCore; done += kChunk) {
    std::uint64_t n = std::min(kChunk, instrPerCore - done);
    for (CoreId c = 0; c < cfg_.numCores; ++c) {
      {
        telemetry::ScopedProf sp(secWorkload_);
        gens_[c]->nextBatch(recs.data(), n);
      }
      if (cpts_[c]) {
        telemetry::ScopedProf sp(secPredictor_);
        for (std::size_t i = 0; i < n; ++i) {
          crit[i] = recs[i].kind == InstrKind::Load && cpts_[c]->predict(recs[i].pc);
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        const workload::TraceRecord& rec = recs[i];
        if (rec.kind == InstrKind::Load) {
          mem_->load(c, rec.vaddr, rec.pc, 0, cpts_[c] != nullptr && crit[i] != 0);
        } else if (rec.kind == InstrKind::Store) {
          mem_->store(c, rec.vaddr, rec.pc, 0);
        }
      }
    }
  }
  mem_->setWarmupMode(false);
}

bool System::snapshot(const std::string& path) const {
  if (cfg_.enableSharing) {
    logMessage(LogLevel::Warn, "serial",
               "snapshot refused: coherence directory state (enable_sharing) "
               "is not checkpointable");
    return false;
  }
  const std::string tmp = path + ".tmp";
  serial::ArchiveWriter ar(tmp);
  if (!ar.ok()) {
    logMessage(LogLevel::Warn, "serial", "cannot open snapshot file " + tmp);
    return false;
  }
  ar.beginSection("meta");
  ar.putU64(warmStateFingerprint(cfg_, mix_));
  ar.putString(warmStateKey(cfg_, mix_));
  ar.putU32(cfg_.numCores);
  ar.putBool(cpts_[0] != nullptr);
  ar.endSection();
  mem_->saveCheckpoint(ar);
  for (CoreId c = 0; c < cfg_.numCores; ++c) {
    serial::saveComponent(ar, "gen" + std::to_string(c), *gens_[c]);
    if (cpts_[c]) serial::saveComponent(ar, "cpt" + std::to_string(c), *cpts_[c]);
  }
  if (!ar.close()) {
    std::remove(tmp.c_str());
    logMessage(LogLevel::Warn, "serial", "snapshot write to " + tmp + " failed");
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    logMessage(LogLevel::Warn, "serial", "cannot move snapshot into " + path);
    return false;
  }
  logMessage(LogLevel::Info, "serial", "warm-state snapshot written: " + path);
  return true;
}

bool System::restoreFrom(const std::string& path) {
  serial::ArchiveReader ar(path);
  if (!ar.ok()) {
    logMessage(LogLevel::Warn, "serial",
               "snapshot " + path + " unusable: " + serial::toString(ar.error()));
    return false;
  }
  // Verify every section's checksum before mutating anything, so a corrupt
  // payload can never leave the hierarchy half-restored.
  for (const serial::ArchiveReader::SectionInfo& s : ar.sections()) {
    if (!ar.openSection(s.name)) {
      logMessage(LogLevel::Warn, "serial",
                 "snapshot " + path + " section '" + s.name + "' corrupt");
      return false;
    }
  }
  if (!ar.openSection("meta")) {
    logMessage(LogLevel::Warn, "serial", "snapshot " + path + " has no meta section");
    return false;
  }
  std::uint64_t fp = ar.getU64();
  ar.getString();  // human-readable key, for ckpt_inspect
  std::uint32_t cores = ar.getU32();
  bool hasCpt = ar.getBool();
  if (!ar.ok() || fp != warmStateFingerprint(cfg_, mix_) ||
      cores != cfg_.numCores || hasCpt != (cpts_[0] != nullptr)) {
    logMessage(LogLevel::Warn, "serial",
               "snapshot " + path + " was taken under a different configuration");
    return false;
  }
  if (!mem_->loadCheckpoint(ar)) return false;
  for (CoreId c = 0; c < cfg_.numCores; ++c) {
    if (!serial::loadComponent(ar, "gen" + std::to_string(c), *gens_[c])) return false;
    if (cpts_[c] &&
        !serial::loadComponent(ar, "cpt" + std::to_string(c), *cpts_[c])) {
      return false;
    }
  }
  logMessage(LogLevel::Info, "serial", "warm state restored from " + path);
  return true;
}

bool System::allReached(std::uint64_t committed) const {
  for (const auto& core : cores_) {
    if (core->stats().committed < committed) return false;
  }
  return true;
}

Cycle System::nextCycle(Cycle now) const {
  Cycle next = kNoCycle;
  for (const auto& core : cores_) {
    next = std::min(next, core->nextEventCycle(now));
  }
  if (next == kNoCycle || next <= now) return now + 1;
  return next;
}

RunResult System::run() {
  // Wall clock for the profile's total; read only when profiling so the
  // default path stays untouched.
  const std::uint64_t wallStartNs = profiler_ ? telemetry::Profiler::nowNs() : 0;
  Cycle now = 0;

  // ---- Functional fast-forward: bring the hierarchy to steady state. ----
  // Untimed (no contention reservations); interleaved in chunks so cores
  // warm the shared LLC together, as they would live.  The instruction
  // stream simply advances — the analogue of the paper's fast-forward.
  // A warm-state snapshot replaces this phase entirely: the restored
  // functional state is bit-identical to what the fast-forward produces,
  // so the rest of the run (and its report) is byte-identical too.
  bool restored = false;
  if (!cfg_.snapshotLoadPath.empty()) {
    restored = restoreFrom(cfg_.snapshotLoadPath);
    if (!restored) {
      logMessage(LogLevel::Warn, "serial",
                 "snapshot restore failed; running the cold fast-forward");
    }
  }
  if (!restored) {
    fastForward(cfg_.prewarmInstrPerCore);
    if (!cfg_.snapshotSavePath.empty()) snapshot(cfg_.snapshotSavePath);
  }

  // ---- Warm-up: fill caches, train predictors; statistics discarded. ----
  {
    // One coarse "cores" scope around the whole timed loop (two clock
    // reads, not two per cycle); the memory system's nested sections
    // subtract their own share from it.
    telemetry::ScopedProf sp(secCores_);
    while (!allReached(cfg_.warmupInstrPerCore) && now < cfg_.maxCycles) {
      now = stepCores(now);
    }
  }

  // ---- Placement refresh (policies with a predictor only): now that the
  // CPT is trained, re-place churned lines with real verdicts so the
  // measurement window sees steady-state placement, not the cold-start
  // all-S-NUCA layout the functional fast-forward produced.
  if (cpts_[0] != nullptr) {
    fastForward(cfg_.placementRefreshInstrPerCore);
  }

  settleSkippedStats();  // flush pending warm-up stall credit before zeroing
  for (auto& core : cores_) core->resetStats();
  mem_->resetMeasurement();
  metrics_.clearSeries();
  const Cycle measureStart = now;

  // ---- Scheduled fault injection. ----
  // Immediate faults land at the start of the window; AtCycle faults are
  // polled against window-relative time inside the loop.  (AtWrites faults
  // live in the BankFaultModel's per-frame limits.)
  std::vector<rram::ScheduledFault> atCycle;
  if (cfg_.fault.enabled) {
    const mem::CacheConfig& bankCfg = mem_->llcBank(0).config();
    for (const rram::ScheduledFault& sf : cfg_.fault.schedule) {
      if (sf.trigger == rram::ScheduledFault::Trigger::AtWrites) continue;
      if (sf.bank >= mem_->numBanks() || sf.set >= bankCfg.numSets() ||
          sf.way >= bankCfg.ways) {
        logMessage(LogLevel::Warn, "fault",
                   "scheduled fault outside LLC geometry ignored (bank " +
                       std::to_string(sf.bank) + " set " + std::to_string(sf.set) +
                       " way " + std::to_string(sf.way) + ")");
        continue;
      }
      if (sf.trigger == rram::ScheduledFault::Trigger::Immediate) {
        mem_->injectFault(sf.bank, sf.set, sf.way, now);
      } else {
        atCycle.push_back(sf);
      }
    }
    std::sort(atCycle.begin(), atCycle.end(),
              [](const rram::ScheduledFault& a, const rram::ScheduledFault& b) {
                return a.value < b.value;
              });
  }
  std::size_t nextFault = 0;

  // ---- Measurement window. ----
  // With epochInstrs set, every registered metric is snapshotted each time
  // all cores pass the next epoch boundary, building the run's time series
  // (per-bank writes, per-core progress, substrate load).
  bool hitCap = false;
  std::uint64_t nextEpoch = cfg_.epochInstrs;
  {
    telemetry::ScopedProf sp(secCores_);
    while (!allReached(cfg_.instrPerCore)) {
      if (now - measureStart >= cfg_.maxCycles) {
        hitCap = true;
        break;
      }
      now = stepCores(now);
      while (nextFault < atCycle.size() &&
             now - measureStart >= atCycle[nextFault].value) {
        const rram::ScheduledFault& sf = atCycle[nextFault];
        mem_->injectFault(sf.bank, sf.set, sf.way, now);
        ++nextFault;
      }
      if (nextEpoch != 0 && nextEpoch <= cfg_.instrPerCore && allReached(nextEpoch)) {
        telemetry::ScopedProf tp(secTelemetry_);
        settleSkippedStats();  // snapshot reads per-core stall counters
        epochNow_ = now;
        metrics_.snapshot(now - measureStart, nextEpoch);
        nextEpoch += cfg_.epochInstrs;
      }
    }
  }
  settleSkippedStats();  // result collection reads every core counter
  const Cycle measuredCycles = now - measureStart;
  if (cfg_.epochInstrs != 0 &&
      (metrics_.series().empty() || metrics_.series().cycles.back() < measuredCycles)) {
    // Terminal snapshot so the series always ends at the window's edge
    // (skipped when the last boundary already landed there).
    telemetry::ScopedProf tp(secTelemetry_);
    epochNow_ = now;
    metrics_.snapshot(measuredCycles, cfg_.instrPerCore);
  }

  // ---- Collect results. ----
  RunResult r;
  r.mixName = mix_.name;
  r.policy = cfg_.policy;
  r.measuredCycles = measuredCycles;
  r.hitMaxCycles = hitCap;

  std::uint64_t totalLoads = 0, stalledLoads = 0, cptPred = 0, cptCorrect = 0,
                caught = 0;
  for (CoreId c = 0; c < cfg_.numCores; ++c) {
    const cpu::CoreStats& cs = cores_[c]->stats();
    std::uint64_t committed = std::min<std::uint64_t>(cs.committed, cfg_.instrPerCore);
    Cycle coreCycles = cs.doneCycle > measureStart ? cs.doneCycle - measureStart
                                                   : measuredCycles;
    if (coreCycles == 0) coreCycles = 1;
    double ipc = static_cast<double>(committed) / static_cast<double>(coreCycles);
    r.coreIpc.push_back(ipc);
    r.coreCommitted.push_back(cs.committed);
    r.systemIpc += ipc;

    const CoreMemCounters& mc = mem_->coreCounters(c);
    double kilo = static_cast<double>(std::max<std::uint64_t>(cs.committed, 1)) / 1000.0;
    r.wpki.push_back(static_cast<double>(mc.llcWritebacks) / kilo);
    r.mpki.push_back(static_cast<double>(mc.llcDemandMisses) / kilo);
    r.llcHitRate.push_back(
        mc.llcDemandAccesses
            ? 1.0 - static_cast<double>(mc.llcDemandMisses) /
                        static_cast<double>(mc.llcDemandAccesses)
            : 0.0);

    totalLoads += cs.loads;
    stalledLoads += cs.loadsStalledHead;
    cptPred += cs.cptPredictions;
    cptCorrect += cs.cptCorrect;
    caught += cs.criticalLoadsCaught;
  }
  r.nonCriticalLoadFrac =
      totalLoads ? 1.0 - static_cast<double>(stalledLoads) / static_cast<double>(totalLoads)
                 : 0.0;
  r.cptAccuracy =
      cptPred ? static_cast<double>(cptCorrect) / static_cast<double>(cptPred) : 0.0;
  r.cptCriticalRecall =
      stalledLoads ? static_cast<double>(caught) / static_cast<double>(stalledLoads) : 0.0;
  r.nonCriticalFillFrac = mem_->nonCriticalFillFrac();
  r.nonCriticalWriteFrac = mem_->nonCriticalWriteFrac();

  for (BankId b = 0; b < mem_->numBanks(); ++b) {
    const mem::CacheBank& bank = mem_->llcBank(b);
    r.bankWrites.push_back(bank.totalWrites());
    r.bankMaxFrameWrites.push_back(bank.maxFrameWrites());
    r.bankLifetimeYears.push_back(rram::bankLifetimeYearsIdeal(
        bank.totalWrites(), bank.config().numFrames(), measuredCycles, cfg_.endurance));
    r.bankLifetimeYearsHotFrame.push_back(
        rram::bankLifetimeYears(bank.maxFrameWrites(), measuredCycles, cfg_.endurance));
  }

  r.compressKind = cfg_.compress;
  if (cfg_.compress != compress::Kind::None) {
    for (BankId b = 0; b < mem_->numBanks(); ++b) {
      const mem::CacheBank& bank = mem_->llcBank(b);
      const mem::CacheBank::CompressionStats& cs = bank.compressionStats();
      r.bankBitsFlipped.push_back(cs.bitsFlipped);
      r.bankMaxFrameBits.push_back(bank.maxFrameBits());
      r.bankLifetimeYearsBits.push_back(rram::bankLifetimeYearsBitsIdeal(
          cs.bitsFlipped, bank.config().numFrames(), measuredCycles, cfg_.endurance));
      r.bankLifetimeYearsBitsHotFrame.push_back(rram::bankLifetimeYearsBits(
          bank.maxFrameBits(), measuredCycles, cfg_.endurance));
      r.cmpWrites += cs.writes;
      r.cmpRawFallbacks += cs.rawFallbacks;
      r.cmpZeroDeltaWrites += cs.zeroDeltaWrites;
      for (int i = 0; i < 8; ++i) r.cmpSizeHist[i] += cs.sizeHist[i];
    }
  }

  if (cfg_.fault.enabled) {
    std::vector<std::uint64_t> allWrites;
    std::vector<double> allVariations;
    for (BankId b = 0; b < mem_->numBanks(); ++b) {
      const mem::CacheBank& bank = mem_->llcBank(b);
      const rram::BankFaultModel* fm = mem_->faultModel(b);
      r.bankDeadFrames.push_back(bank.deadFrames());
      r.bankDegradedLifetimeYears.push_back(rram::degradedCapacityLifetimeYears(
          bank.frameWrites(), fm->variations(), measuredCycles, cfg_.fault.deadFrac,
          cfg_.endurance));
      allWrites.insert(allWrites.end(), bank.frameWrites().begin(),
                       bank.frameWrites().end());
      allVariations.insert(allVariations.end(), fm->variations().begin(),
                           fm->variations().end());
    }
    r.degradedCapacityLifetimeYears = rram::degradedCapacityLifetimeYears(
        allWrites, allVariations, measuredCycles, cfg_.fault.deadFrac, cfg_.endurance);
    r.liveCapacityFrac = mem_->llcLiveFrameFrac();
    r.faultEvents = mem_->faultEvents();
    for (FaultEvent& ev : r.faultEvents) {
      ev.cycle = ev.cycle > measureStart ? ev.cycle - measureStart : 0;
    }
  }

  r.avgNocLatencyCycles = mem_->mesh().avgPacketLatency();
  r.dramRowHitRate = mem_->dram().rowHitRate();
  r.epochs = metrics_.series();

  if (profiler_) {
    const double wallSec =
        static_cast<double>(telemetry::Profiler::nowNs() - wallStartNs) * 1e-9;
    r.profile = profiler_->report(wallSec);
    if (tracer_) {
      // Profile lane: one span per section, laid out end-to-end so the
      // shares read directly off the viewer.  ts is nominally cycles
      // elsewhere in the file; this lane's unit is microseconds of the
      // simulator's own wall time (the args carry the exact numbers).
      tracer_->nameProcess(kTracePidProfile, "self-profile");
      Cycle at = 0;
      for (const telemetry::ProfileReport::Section& sec : r.profile.sections) {
        const Cycle dur = static_cast<Cycle>(sec.seconds * 1e6);
        tracer_->span(sec.name.c_str(), "profile", kTracePidProfile, 0, at,
                      at + dur,
                      {{"count", static_cast<std::int64_t>(sec.count)},
                       {"share_permille",
                        static_cast<std::int64_t>(sec.share * 1000.0)}});
        at += dur;
      }
    }
  }

  if (tracer_) tracer_->close();
  return r;
}

}  // namespace renuca::sim
