#include "sim/experiment.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace renuca::sim {

RunResult runWorkload(const SystemConfig& config, const workload::WorkloadMix& mix) {
  logMessage(LogLevel::Debug, "experiment",
             "run " + mix.name + " policy=" + core::toString(config.policy));
  System system(config, mix);
  RunResult r = system.run();
  if (r.hitMaxCycles) {
    logMessage(LogLevel::Warn, "experiment",
               mix.name + " hit the max-cycles cap; results are truncated");
  }
  return r;
}

RunResult runSingleApp(const SystemConfig& singleCoreConfig, const std::string& appName) {
  SweepPlan plan;
  plan.addSingleApp(appName, singleCoreConfig, appName);
  return std::move(runPlan(plan)[0]);
}

std::vector<double> PolicySweep::harmonicLifetimesPerBank(std::size_t policyIdx) const {
  const auto& runs = results[policyIdx];
  RENUCA_ASSERT(!runs.empty(), "empty sweep");
  rram::LifetimeAggregator agg(static_cast<std::uint32_t>(runs[0].bankLifetimeYears.size()));
  for (const RunResult& r : runs) agg.addRun(r.bankLifetimeYears);
  return agg.harmonicPerBank();
}

double PolicySweep::rawMinLifetime(std::size_t policyIdx) const {
  const auto& runs = results[policyIdx];
  RENUCA_ASSERT(!runs.empty(), "empty sweep");
  rram::LifetimeAggregator agg(static_cast<std::uint32_t>(runs[0].bankLifetimeYears.size()));
  for (const RunResult& r : runs) agg.addRun(r.bankLifetimeYears);
  return agg.rawMinimum();
}

double PolicySweep::meanSystemIpc(std::size_t policyIdx) const {
  std::vector<double> ipcs;
  for (const RunResult& r : results[policyIdx]) ipcs.push_back(r.systemIpc);
  return arithmeticMean(ipcs);
}

std::size_t PolicySweep::indexOf(core::PolicyKind kind) const {
  for (std::size_t i = 0; i < policies.size(); ++i) {
    if (policies[i] == kind) return i;
  }
  RENUCA_ASSERT(false, "policy not present in sweep");
}

std::vector<double> PolicySweep::ipcImprovementVsSnuca(std::size_t policyIdx) const {
  // The paper's metric (§V.B): system IPC — the sum of per-core IPCs, the
  // throughput of the multi-programmed machine — normalized to S-NUCA.
  std::size_t base = indexOf(core::PolicyKind::SNuca);
  std::vector<double> out;
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    double ref = results[base][m].systemIpc;
    double val = results[policyIdx][m].systemIpc;
    out.push_back(ref > 0 ? (val / ref - 1.0) * 100.0 : 0.0);
  }
  return out;
}

std::vector<double> PolicySweep::perCoreNormalizedImprovement(std::size_t policyIdx) const {
  // Secondary metric: mean of per-core normalized IPCs, which weights every
  // application equally regardless of its absolute IPC.
  std::size_t base = indexOf(core::PolicyKind::SNuca);
  std::vector<double> out;
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    const RunResult& ref = results[base][m];
    const RunResult& val = results[policyIdx][m];
    std::vector<double> ratios;
    for (std::size_t c = 0; c < ref.coreIpc.size(); ++c) {
      if (ref.coreIpc[c] > 0) ratios.push_back(val.coreIpc[c] / ref.coreIpc[c]);
    }
    out.push_back((arithmeticMean(ratios) - 1.0) * 100.0);
  }
  return out;
}

double PolicySweep::meanIpcImprovementVsSnuca(std::size_t policyIdx) const {
  return arithmeticMean(ipcImprovementVsSnuca(policyIdx));
}

SweepPlan policySweepPlan(const SystemConfig& base,
                          const std::vector<core::PolicyKind>& policies,
                          const std::vector<workload::WorkloadMix>& mixes) {
  SweepPlan plan;
  for (core::PolicyKind policy : policies) {
    SystemConfig cfg = base;
    cfg.policy = policy;
    for (const workload::WorkloadMix& mix : mixes) {
      plan.add(Job{std::string(core::toString(policy)) + "/" + mix.name, cfg, mix});
    }
  }
  return plan;
}

PolicySweep assemblePolicySweep(const std::vector<core::PolicyKind>& policies,
                                const std::vector<workload::WorkloadMix>& mixes,
                                std::vector<RunResult> results) {
  RENUCA_ASSERT(results.size() == policies.size() * mixes.size(),
                "result count does not match the (policy x mix) grid");
  PolicySweep sweep;
  sweep.policies = policies;
  sweep.mixes = mixes;
  sweep.results.resize(policies.size());
  std::size_t i = 0;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    sweep.results[p].reserve(mixes.size());
    for (std::size_t m = 0; m < mixes.size(); ++m) {
      sweep.results[p].push_back(std::move(results[i++]));
    }
  }
  return sweep;
}

PolicySweep sweepPolicies(const SystemConfig& base,
                          const std::vector<core::PolicyKind>& policies,
                          const std::vector<workload::WorkloadMix>& mixes,
                          const SweepOptions& opts) {
  return assemblePolicySweep(policies, mixes,
                             runPlan(policySweepPlan(base, policies, mixes), opts));
}

const std::vector<core::PolicyKind>& allPolicies() {
  static const std::vector<core::PolicyKind> v = {
      core::PolicyKind::Naive, core::PolicyKind::SNuca, core::PolicyKind::ReNuca,
      core::PolicyKind::RNuca, core::PolicyKind::Private};
  return v;
}

const std::vector<core::PolicyKind>& baselinePolicies() {
  static const std::vector<core::PolicyKind> v = {
      core::PolicyKind::SNuca, core::PolicyKind::RNuca, core::PolicyKind::Private,
      core::PolicyKind::Naive};
  return v;
}

}  // namespace renuca::sim
