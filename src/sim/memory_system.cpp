#include "sim/memory_system.hpp"

#include <algorithm>
#include <optional>

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "core/policy_factory.hpp"

namespace renuca::sim {

MemorySystem::MemorySystem(const SystemConfig& config)
    : cfg_(config), topo_(config.nocCfg, config.numCores, config.placement),
      mesh_(config.nocCfg), dram_(config.dramCfg),
      coreCounters_(config.numCores), stats_("memsys") {
  RENUCA_ASSERT(cfg_.numCores <= cfg_.l3.banks,
                "more cores than LLC banks (every core needs a mesh node)");
  RENUCA_ASSERT(cfg_.l3.banks == mesh_.numNodes(), "one LLC bank per mesh node");

  for (CoreId c = 0; c < cfg_.numCores; ++c) {
    tlbs_.push_back(std::make_unique<tlb::EnhancedTlb>(
        cfg_.tlbCfg, &pageTable_, /*asid=*/c, "tlb" + std::to_string(c)));
    l1_.push_back(std::make_unique<mem::CacheBank>(cfg_.l1d, "l1d" + std::to_string(c),
                                                   cfg_.seed * 131 + c));
    l2_.push_back(std::make_unique<mem::CacheBank>(cfg_.l2, "l2" + std::to_string(c),
                                                   cfg_.seed * 137 + c));
  }

  mem::CacheConfig llcCfg;
  llcCfg.sizeBytes = cfg_.l3.bankBytes;
  llcCfg.ways = cfg_.l3.ways;
  llcCfg.latency = cfg_.l3.latency;
  llcCfg.occupancy = cfg_.l3.occupancy;
  llcCfg.trackFrameWrites = true;
  llcCfg.compress = cfg_.compress;
  // Skip the bank-select bits when indexing sets (see CacheConfig docs).
  llcCfg.setIndexShift = cfg_.l3.banks > 1 ? log2Floor(cfg_.l3.banks) : 0;
  llcCfg.equalChanceEvery = cfg_.l3.equalChanceEvery;
  for (BankId b = 0; b < cfg_.l3.banks; ++b) {
    llc_.push_back(std::make_unique<mem::CacheBank>(llcCfg, "l3b" + std::to_string(b),
                                                    cfg_.seed * 139 + b));
  }
  if (cfg_.fault.enabled) {
    for (BankId b = 0; b < cfg_.l3.banks; ++b) {
      faultModels_.push_back(std::make_unique<rram::BankFaultModel>(
          cfg_.fault, b, llcCfg.numSets(), llcCfg.ways));
      llc_[b]->setFaultModel(faultModels_[b].get());
    }
  }

  core::PolicyOptions opts;
  opts.clusterSize = cfg_.clusterSize;
  opts.bankWrites = [this](BankId b) { return llc_[b]->totalWrites(); };
  policy_ = core::makePolicy(cfg_.policy, topo_, opts);

  if (cfg_.enableSharing) {
    directory_ = std::make_unique<coherence::DirectoryMesi>(cfg_.numCores);
  }

}

void MemorySystem::flushHotStats() const {
  *stats_.counter("llc_writebacks") = hot_.llcWritebacks;
  *stats_.counter("llc_writes_critical") = hot_.llcWritesCritical;
  *stats_.counter("llc_writes_noncritical") = hot_.llcWritesNonCritical;
  *stats_.counter("llc_wb_allocates") = hot_.llcWbAllocates;
  *stats_.counter("llc_evictions") = hot_.llcEvictions;
  *stats_.counter("llc_back_invalidations") = hot_.llcBackInvalidations;
  *stats_.counter("dram_writebacks") = hot_.dramWritebacks;
  *stats_.counter("llc_fills") = hot_.llcFills;
  *stats_.counter("llc_fills_noncritical") = hot_.llcFillsNonCritical;
  *stats_.counter("naive_directory_lookups") = hot_.naiveDirectoryLookups;
  *stats_.counter("warm_migrations") = hot_.warmMigrations;
  *stats_.counter("l2_prefetches") = hot_.l2Prefetches;
  *stats_.counter("l2_prefetch_llc_misses") = hot_.l2PrefetchLlcMisses;
  *stats_.counter("l1_wb_orphans") = hot_.l1WbOrphans;
  *stats_.counter("coherence_invalidations") = hot_.coherenceInvalidations;
  *stats_.counter("llc_miss_latency_sum") = hot_.llcMissLatencySum;
  *stats_.counter("llc_miss_latency_count") = hot_.llcMissLatencyCount;
  *stats_.counter("llc_miss_pre_bank_sum") = hot_.llcMissPreBankSum;
  *stats_.counter("dbg_tlb_sum") = hot_.dbgTlbSum;
  *stats_.counter("dbg_l1q_sum") = hot_.dbgL1qSum;
  *stats_.counter("dbg_l2q_sum") = hot_.dbgL2qSum;
  *stats_.counter("dbg_bankq_sum") = hot_.dbgBankqSum;
  *stats_.counter("llc_miss_dram_sum") = hot_.llcMissDramSum;
  *stats_.counter("llc_miss_post_dram_sum") = hot_.llcMissPostDramSum;
}

void MemorySystem::registerMetrics(telemetry::MetricsRegistry& reg) {
  reg.expose("memsys.llc_fills", &hot_.llcFills);
  reg.expose("memsys.llc_writebacks", &hot_.llcWritebacks);
  reg.expose("memsys.llc_evictions", &hot_.llcEvictions);
  reg.expose("memsys.llc_writes_critical", &hot_.llcWritesCritical);
  reg.expose("memsys.llc_writes_noncritical", &hot_.llcWritesNonCritical);
  reg.expose("memsys.dram_writebacks", &hot_.dramWritebacks);
  for (BankId b = 0; b < numBanks(); ++b) {
    const mem::CacheBank* bank = llc_[b].get();
    reg.gauge("l3.b" + std::to_string(b) + ".writes",
              [bank] { return static_cast<double>(bank->totalWrites()); });
  }
  reg.gauge("l3.live_frac", [this] { return llcLiveFrameFrac(); });
  if (compressionEnabled()) {
    for (BankId b = 0; b < numBanks(); ++b) {
      const mem::CacheBank* bank = llc_[b].get();
      reg.gauge("l3.b" + std::to_string(b) + ".bits_flipped", [bank] {
        return static_cast<double>(bank->compressionStats().bitsFlipped);
      });
    }
  }
  if (!faultModels_.empty()) {
    for (BankId b = 0; b < numBanks(); ++b) {
      const mem::CacheBank* bank = llc_[b].get();
      reg.gauge("l3.b" + std::to_string(b) + ".dead_frames",
                [bank] { return static_cast<double>(bank->deadFrames()); });
    }
  }
  reg.gauge("noc.packets",
            [this] { return static_cast<double>(mesh_.stats().get("packets")); });
  reg.gauge("noc.flit_hops",
            [this] { return static_cast<double>(mesh_.stats().get("flit_hops")); });
  reg.gauge("noc.avg_packet_latency", [this] { return mesh_.avgPacketLatency(); });
  reg.gauge("dram.reads",
            [this] { return static_cast<double>(dram_.stats().get("reads")); });
  reg.gauge("dram.writes",
            [this] { return static_cast<double>(dram_.stats().get("writes")); });
  reg.gauge("dram.row_hit_rate", [this] { return dram_.rowHitRate(); });
}

void MemorySystem::setProfiler(telemetry::Profiler* profiler) {
  if (!profiler) {
    secTlb_ = secL1_ = secL2_ = secLlc_ = secNoc_ = secDram_ = {};
    for (auto& bank : llc_) bank->setCompressProf({});
    return;
  }
  secTlb_ = profiler->section("tlb");
  secL1_ = profiler->section("l1");
  secL2_ = profiler->section("l2");
  secLlc_ = profiler->section("llc");
  secNoc_ = profiler->section("noc");
  secDram_ = profiler->section("dram");
  // The compression section only exists when the engine can run — an
  // always-zero "compress" row would otherwise dirty every uncompressed
  // profile (and the compress=none byte-identity contract).
  if (compressionEnabled()) {
    telemetry::ProfSection sec = profiler->section("compress");
    for (auto& bank : llc_) bank->setCompressProf(sec);
  }
}

Cycle MemorySystem::nocTraverse(std::uint32_t src, std::uint32_t dst, Cycle at,
                                std::uint32_t flits) {
  if (warmupMode_) return at;
  telemetry::ScopedProf sp(secNoc_);
  return mesh_.traverse(src, dst, at, flits);
}

Cycle MemorySystem::bankReserve(BankId bank, Cycle at) {
  if (warmupMode_) return at;
  return llc_[bank]->reserve(at);
}

Cycle MemorySystem::dramAccess(Addr paddr, AccessType type, Cycle at) {
  if (warmupMode_) return at;
  telemetry::ScopedProf sp(secDram_);
  return dram_.access(paddr, type, at);
}

compress::LineContent MemorySystem::currentContent(CoreId owner, BlockAddr block) const {
  static const compress::Compressibility kDefaultProfile{};
  const compress::Compressibility& prof =
      owner < compressibility_.size() ? compressibility_[owner] : kDefaultProfile;
  const std::uint64_t salt = cfg_.seed * 1000003ull;
  compress::LineContent c;
  // Class draw: one uniform per block, stable across versions.
  const std::uint64_t h = compress::mix64(block ^ salt);
  c.cls = compress::drawClass(prof, static_cast<double>(h >> 11) * 0x1.0p-53);
  auto it = contentVersion_.find(block);
  const std::uint64_t version = it != contentVersion_.end() ? it->second : 0;
  c.seed = compress::mix64(block ^ salt ^ (0x9e3779b97f4a7c15ull * (version + 1)));
  return c;
}

std::uint64_t MemorySystem::totalBitsFlipped() const {
  std::uint64_t total = 0;
  for (const auto& bank : llc_) total += bank->compressionStats().bitsFlipped;
  return total;
}

CoreId MemorySystem::ownerOf(BlockAddr block) const {
  auto owner = pageTable_.ownerOf(pageOf(lineBase(block)));
  RENUCA_ASSERT(owner.has_value(), "physical block without a page owner");
  return owner->first;
}

bool MemorySystem::mbvBitPhys(BlockAddr block) const {
  Addr paddr = lineBase(block);
  auto owner = pageTable_.ownerOf(pageOf(paddr));
  RENUCA_ASSERT(owner.has_value(), "MBV lookup for unallocated page");
  std::uint64_t mbv = pageTable_.loadMbv(owner->first, owner->second);
  return (mbv >> lineIndexInPage(paddr)) & 1ull;
}

std::uint32_t MemorySystem::memNode(std::uint32_t channel) const {
  return topo_.mcNodeOfChannel(channel);
}

void MemorySystem::writebackL1VictimToL2(CoreId core, BlockAddr block, Cycle now) {
  if (l2_[core]->access(block, AccessType::Write)) return;
  // Inclusion means this should not happen; repair by allocating.
  ++hot_.l1WbOrphans;
  mem::Eviction ev = l2_[core]->insert(block, /*dirty=*/true);
  evictFromL2(core, ev, now);
}

void MemorySystem::evictFromL2(CoreId core, const mem::Eviction& ev, Cycle now) {
  if (!ev.valid) return;
  // Maintain L1 ⊆ L2.
  auto l1Dirty = l1_[core]->invalidate(ev.block);
  bool dirty = ev.dirty || (l1Dirty.has_value() && *l1Dirty);
  if (directory_) {
    bool dirFlush = directory_->evict(core, ev.block);
    dirty = dirty || dirFlush;
  }
  if (dirty) writebackToLlc(core, ev.block, now);
}

void MemorySystem::writebackToLlc(CoreId owner, BlockAddr block, Cycle now) {
  telemetry::ScopedProf sp(secLlc_);
  ++coreCounters_[owner].llcWritebacks;
  ++hot_.llcWritebacks;

  // Dirty data arriving at the LLC is a new version of the line: advance
  // the content version so the compressed payload actually changes, then
  // fix the descriptor the bank will store.
  compress::LineContent content{};
  const bool cmp = compressionEnabled();
  if (cmp) {
    ++contentVersion_[block];
    content = currentContent(owner, block);
  }

  bool bit = policy_->needsMbv() ? mbvBitPhys(block) : false;
  BankId bank = policy_->locate(block, owner, bit);
  Cycle arrive = nocTraverse(topo_.coreNode(owner), topo_.bankNode(bank), now,
                             mesh_.config().dataFlits);
  bankReserve(bank, arrive);

  // Criticality attribution for Fig 9: the block's verdict was fixed at
  // fill time and lives in the line's frame metadata.
  bool critical = llc_[bank]->lineCritical(block);
  ++(critical ? hot_.llcWritesCritical : hot_.llcWritesNonCritical);

  if (traceThisWalk_ && tracer_) {
    tracer_->instant("llc_writeback", "llc", kTracePidLlc, bank, arrive,
                     {{"block", static_cast<std::int64_t>(block)},
                      {"critical", critical ? 1 : 0}});
  }

  if (llc_[bank]->writebackHit(block, cmp ? &content : nullptr)) {
    processFrameDeaths(bank, arrive);
  } else if (!llc_[bank]->canAllocate(block)) {
    // The set this block maps to has no live frames left: the write-back
    // bypasses the dead set straight to DRAM.
    stats_.inc("dead_set_bypasses");
    Addr paddr = lineBase(block);
    std::uint32_t ch = dram::mapAddress(paddr, cfg_.dramCfg).channel;
    Cycle memArrive = nocTraverse(topo_.bankNode(bank), memNode(ch), arrive,
                                  mesh_.config().dataFlits);
    dramAccess(paddr, AccessType::Write, memArrive);
    ++hot_.dramWritebacks;
  } else {
    // Non-inclusive LLC: the victim was dropped from the LLC while the L2
    // still held it; the write-back (re-)allocates (writeback-allocate).
    ++hot_.llcWbAllocates;
    mem::Eviction ev = llc_[bank]->insert(block, /*dirty=*/true, /*critical=*/false,
                                          cmp ? &content : nullptr);
    policy_->onFill(block, bank);
    evictFromLlc(bank, ev, arrive);
    processFrameDeaths(bank, arrive);
  }
}

void MemorySystem::processFrameDeaths(BankId bank, Cycle now) {
  if (faultModels_.empty()) return;
  for (const mem::CacheBank::FrameDeath& death : llc_[bank]->harvestFrameDeaths()) {
    handleFrameDeath(bank, death, now, /*injected=*/false);
  }
}

void MemorySystem::handleFrameDeath(BankId bank, const mem::CacheBank::FrameDeath& death,
                                    Cycle now, bool injected) {
  stats_.inc("frame_deaths");
  if (injected) stats_.inc("injected_faults");
  if (death.hadLine) {
    // The frame's resident line is lost (stuck-at cell): run the normal
    // eviction bookkeeping so the policy/MBV state forgets it, and rescue
    // dirty data to DRAM (detected by verify-after-write, re-homed by the
    // controller before the frame is fenced off).
    stats_.inc("fault_lines_lost");
    if (death.dirty) stats_.inc("fault_dirty_rescues");
    mem::Eviction ev;
    ev.valid = true;
    ev.block = death.block;
    ev.dirty = death.dirty;
    evictFromLlc(bank, ev, now);
  }
  if (tracer_ != nullptr && !warmupMode_) {
    tracer_->instant("frame_death", "llc", kTracePidLlc, bank, now,
                     {{"set", static_cast<std::int64_t>(death.set)},
                      {"way", static_cast<std::int64_t>(death.way)},
                      {"writes", static_cast<std::int64_t>(death.writes)},
                      {"injected", injected ? 1 : 0}});
  }
  FaultEvent ev;
  ev.cycle = now;
  ev.bank = bank;
  ev.set = death.set;
  ev.way = death.way;
  ev.writes = death.writes;
  ev.injected = injected;
  faultEvents_.push_back(ev);
}

bool MemorySystem::injectFault(BankId bank, std::uint32_t set, std::uint32_t way,
                               Cycle now) {
  RENUCA_ASSERT(bank < llc_.size(), "injectFault: bank out of range");
  RENUCA_ASSERT(!faultModels_.empty(), "injectFault requires fault.enabled");
  auto death = llc_[bank]->injectFault(set, way);
  if (!death) return false;
  handleFrameDeath(bank, *death, now, /*injected=*/true);
  return true;
}

double MemorySystem::llcLiveFrameFrac() const {
  std::uint64_t total = 0;
  std::uint64_t dead = 0;
  for (const auto& bank : llc_) {
    total += bank->config().numFrames();
    dead += bank->deadFrames();
  }
  return total != 0 ? 1.0 - static_cast<double>(dead) / static_cast<double>(total) : 1.0;
}

void MemorySystem::evictFromLlc(BankId bank, const mem::Eviction& ev, Cycle now) {
  if (!ev.valid) return;
  ++hot_.llcEvictions;
  BlockAddr block = ev.block;
  CoreId owner = ownerOf(block);

  bool dirty = ev.dirty;
  if (cfg_.inclusiveLlc) {
    // Back-invalidate the owner's upper levels (strict inclusion).  Dirty
    // upper copies ride to memory with the victim.
    auto l1Dirty = l1_[owner]->invalidate(block);
    auto l2Dirty = l2_[owner]->invalidate(block);
    if (directory_) directory_->evict(owner, block);
    dirty = dirty || l1Dirty.value_or(false) || l2Dirty.value_or(false);
    if (l1Dirty.has_value() || l2Dirty.has_value()) ++hot_.llcBackInvalidations;
  }

  if (traceThisWalk_ && tracer_) {
    tracer_->instant("llc_evict", "llc", kTracePidLlc, bank, now,
                     {{"block", static_cast<std::int64_t>(block)},
                      {"dirty", dirty ? 1 : 0}});
    if (policy_->needsMbv()) {
      tracer_->instant("mbv_reset", "llc", kTracePidLlc, bank, now,
                       {{"block", static_cast<std::int64_t>(block)},
                        {"owner", static_cast<std::int64_t>(owner)}});
    }
  }

  // Placement bookkeeping: the policy forgets the line, and its MBV bit
  // resets to the S-NUCA default (paper §IV.C).
  policy_->onEvict(block, bank);
  if (policy_->needsMbv()) tlbs_[owner]->resetMappingBitPhys(lineBase(block));

  if (dirty) {
    Addr paddr = lineBase(block);
    std::uint32_t ch = dram::mapAddress(paddr, cfg_.dramCfg).channel;
    Cycle arrive = nocTraverse(topo_.bankNode(bank), memNode(ch), now,
                               mesh_.config().dataFlits);
    dramAccess(paddr, AccessType::Write, arrive);
    ++hot_.dramWritebacks;
  }
}

void MemorySystem::prefetchIntoL2(CoreId core, Addr vaddr, Cycle now) {
  telemetry::ScopedProf sp(secLlc_);
  tlb::Translation tr = tlbs_[core]->translate(vaddr);
  BlockAddr block = lineOf(tr.paddr);
  if (l2_[core]->contains(block) || l1_[core]->contains(block)) return;
  ++hot_.l2Prefetches;

  // Fetch from the LLC (or memory) along the normal path, reserving the
  // same resources demand traffic would, but off the core's critical path.
  bool bit = policy_->needsMbv() ? tlbs_[core]->mappingBit(vaddr) : false;
  BankId bank = policy_->locate(block, core, bit);
  Cycle arrive = nocTraverse(topo_.coreNode(core), topo_.bankNode(bank), now,
                             mesh_.config().controlFlits);
  Cycle bankStart = bankReserve(bank, arrive);
  if (!llc_[bank]->access(block, AccessType::Read)) {
    ++hot_.l2PrefetchLlcMisses;
    Addr paddr = lineBase(block);
    std::uint32_t ch = dram::mapAddress(paddr, cfg_.dramCfg).channel;
    Cycle memArrive = nocTraverse(topo_.bankNode(bank), memNode(ch),
                                  bankStart + cfg_.l3.tagLatency,
                                  mesh_.config().controlFlits);
    Cycle dramDone = dramAccess(paddr, AccessType::Read, memArrive);
    core::MappingPolicy::Fill fill = policy_->placeFill(block, core, false);
    if (llc_[fill.bank]->canAllocate(block)) {
      ++hot_.llcFills;
      ++hot_.llcFillsNonCritical;
      ++hot_.llcWritesNonCritical;
      Cycle fillArrive = nocTraverse(memNode(ch), topo_.bankNode(fill.bank), dramDone,
                                     mesh_.config().dataFlits);
      Cycle fillStart = bankReserve(fill.bank, fillArrive);
      compress::LineContent content{};
      const bool cmp = compressionEnabled();
      if (cmp) content = currentContent(core, block);
      mem::Eviction llcEv = llc_[fill.bank]->insert(block, /*dirty=*/false,
                                                    /*critical=*/false,
                                                    cmp ? &content : nullptr);
      policy_->onFill(block, fill.bank);
      if (policy_->needsMbv()) tlbs_[core]->setMappingBit(vaddr, fill.usedRnuca);
      evictFromLlc(fill.bank, llcEv, fillStart);
      processFrameDeaths(fill.bank, fillStart);
    } else {
      // Dead set in the chosen bank: prefetch straight into the L2 only.
      stats_.inc("dead_set_bypasses");
    }
  }
  mem::Eviction l2Ev = l2_[core]->insert(block, /*dirty=*/false);
  evictFromL2(core, l2Ev, now);
}

void MemorySystem::coherenceActions(CoreId core, BlockAddr block, AccessType type,
                                    Cycle now) {
  if (!directory_) return;
  coherence::Outcome out = type == AccessType::Read ? directory_->read(core, block)
                                                    : directory_->write(core, block);
  for (std::uint32_t other : out.invalidated) {
    if (other == core) continue;
    // Invalidate/downgrade the remote private caches; dirty data is
    // flushed into the LLC (which backs all L2s).
    Cycle arrive = nocTraverse(topo_.coreNode(core), topo_.coreNode(other), now,
                               mesh_.config().controlFlits);
    (void)arrive;
    if (type == AccessType::Write) {
      auto d1 = l1_[other]->invalidate(block);
      auto d2 = l2_[other]->invalidate(block);
      if (d1.value_or(false) || d2.value_or(false) || out.writebackToMemory) {
        writebackToLlc(other, block, now);
      }
    }
    ++hot_.coherenceInvalidations;
  }
}

MemorySystem::WalkResult MemorySystem::walk(CoreId core, Addr vaddr, Cycle issueAt,
                                            AccessType type, bool critical) {
  // Sampling decision made once per walk; the eviction/write-back paths the
  // walk triggers consult traceThisWalk_.
  const bool traceWalk = tracer_ != nullptr && !warmupMode_ && tracer_->sampleNext();
  traceThisWalk_ = traceWalk;
  const char* walkName = type == AccessType::Read ? "load" : "store";

  const tlb::Translation tr = [&] {
    telemetry::ScopedProf sp(secTlb_);
    return tlbs_[core]->translate(vaddr);
  }();
  Cycle t = issueAt + tr.latency;
  BlockAddr block = lineOf(tr.paddr);
  if (traceWalk && tr.latency > 0) {
    tracer_->span("tlb_walk", "mem", kTracePidCores, core, issueAt, t, {});
  }

  // ---- L1D ----------------------------------------------------------------
  Cycle l1Start;
  bool l1Hit;
  {
    telemetry::ScopedProf sp(secL1_);
    l1Start = warmupMode_ ? t : l1_[core]->reserve(t);
    l1Hit = l1_[core]->access(block, type);
  }
  if (l1Hit) {
    Cycle doneAt = l1Start + cfg_.l1d.latency;
    if (traceWalk) {
      tracer_->span("l1d", "mem", kTracePidCores, core, l1Start, doneAt, {{"hit", 1}});
      tracer_->span(walkName, "mem", kTracePidCores, core, issueAt, doneAt,
                    {{"vaddr", static_cast<std::int64_t>(vaddr)}});
    }
    return WalkResult{doneAt, /*missedL1=*/false};
  }
  Cycle t2 = l1Start + cfg_.l1d.latency;  // miss known after the L1 probe
  if (traceWalk) {
    tracer_->span("l1d", "mem", kTracePidCores, core, l1Start, t2, {{"hit", 0}});
  }

  // ---- L2 (private) ---------------------------------------------------------
  Cycle l2Start;
  bool l2Hit;
  {
    telemetry::ScopedProf sp(secL2_);
    l2Start = warmupMode_ ? t2 : l2_[core]->reserve(t2);
    // Demand fetch into L1 is a read at L2 even for stores (write-allocate:
    // the dirtiness lands in L1).
    l2Hit = l2_[core]->access(block, AccessType::Read);
  }
  Cycle afterL2 = l2Start + cfg_.l2.latency;
  if (traceWalk) {
    tracer_->span("l2", "mem", kTracePidCores, core, l2Start, afterL2,
                  {{"hit", l2Hit ? 1 : 0}});
  }
  if (l2Hit) {
    mem::Eviction l1Ev = l1_[core]->insert(block, /*dirty=*/type == AccessType::Write);
    if (l1Ev.valid && l1Ev.dirty) writebackL1VictimToL2(core, l1Ev.block, afterL2);
    if (traceWalk) {
      tracer_->span(walkName, "mem", kTracePidCores, core, issueAt, afterL2,
                    {{"vaddr", static_cast<std::int64_t>(vaddr)}});
    }
    return WalkResult{afterL2, /*missedL1=*/true};
  }

  // ---- LLC (NUCA) -----------------------------------------------------------
  if (directory_) coherenceActions(core, block, type, afterL2);

  // The whole NUCA region — lookup, bank access, fill, DRAM round trip —
  // profiles as "llc"; the nested nocTraverse/dramAccess scopes claim
  // their own share out of it (self-time attribution).  An optional keeps
  // the scope closeable before the prefetch/private-fill tail without
  // re-nesting 100 lines.
  std::optional<telemetry::ScopedProf> llcProf;
  llcProf.emplace(secLlc_);

  ++coreCounters_[core].llcDemandAccesses;
  bool bit = policy_->needsMbv() ? tlbs_[core]->mappingBit(vaddr) : false;
  BankId lookupBank = policy_->locate(block, core, bit);

  // The Naive oracle must consult its centralized line directory before it
  // knows which bank to address (paper §III.A): request detours to the
  // directory node and pays the lookup latency.
  Cycle llcIssueAt = afterL2;
  if (cfg_.policy == core::PolicyKind::Naive) {
    std::uint32_t dirNode = topo_.centerNode();
    Cycle atDir = nocTraverse(topo_.coreNode(core), dirNode, afterL2,
                              mesh_.config().controlFlits);
    llcIssueAt = atDir + cfg_.l3.naiveDirectoryLatency;
    Cycle reqFromDir = nocTraverse(dirNode, topo_.bankNode(lookupBank), llcIssueAt,
                                   mesh_.config().controlFlits);
    llcIssueAt = reqFromDir;
    ++hot_.naiveDirectoryLookups;
  }

  Cycle reqArrive = cfg_.policy == core::PolicyKind::Naive
                        ? llcIssueAt
                        : nocTraverse(topo_.coreNode(core), topo_.bankNode(lookupBank),
                                      afterL2, mesh_.config().controlFlits);
  if (traceWalk && reqArrive > afterL2) {
    tracer_->span("noc_req", "noc", kTracePidCores, core, afterL2, reqArrive,
                  {{"bank", static_cast<std::int64_t>(lookupBank)}});
  }
  Cycle bankStart = bankReserve(lookupBank, reqArrive);

  Cycle dataAtCore;
  if (llc_[lookupBank]->access(block, AccessType::Read)) {
    // LLC hit: full ReRAM array read, data packet back to the core.  With
    // compression on, the decompressor sits on the read path (the IPC cost
    // that the lifetime gain is traded against).
    Cycle dataReady = bankStart + cfg_.l3.latency;
    if (cfg_.compress != compress::Kind::None) dataReady += cfg_.compressLatency;
    dataAtCore = nocTraverse(topo_.bankNode(lookupBank), topo_.coreNode(core),
                             dataReady, mesh_.config().dataFlits);
    if (traceWalk) {
      tracer_->span("l3", "mem", kTracePidCores, core, bankStart, dataReady,
                    {{"bank", static_cast<std::int64_t>(lookupBank)}, {"hit", 1}});
    }

    // Warm-up placement refresh: a critical load hitting a line that is
    // still S-mapped re-homes it to the R-NUCA cluster.  This is not a
    // runtime mechanism — it fast-forwards the steady state the paper's
    // 100 M-instruction windows reach through natural LLC turnover (every
    // line is eventually evicted and refetched by its then-critical load).
    bool fillCritical = type == AccessType::Read && critical;
    if (warmupMode_ && policy_->needsMbv() && fillCritical && !bit) {
      // Migration moves the line's *current* data: capture the source
      // frame's content descriptor before the invalidate drops the line.
      std::optional<compress::LineContent> migContent =
          compressionEnabled() ? llc_[lookupBank]->lineContent(block) : std::nullopt;
      if (compressionEnabled() && !migContent) {
        migContent = currentContent(core, block);
      }
      auto dirty = llc_[lookupBank]->invalidate(block);
      policy_->onEvict(block, lookupBank);
      core::MappingPolicy::Fill fill = policy_->placeFill(block, core, true);
      if (!llc_[fill.bank]->canAllocate(block)) {
        // Migration target set is fully dead: the line leaves the LLC (it
        // was already dropped from the source bank); dirty data goes home.
        stats_.inc("dead_set_bypasses");
        if (dirty.value_or(false)) {
          dramAccess(lineBase(block), AccessType::Write, bankStart);
          ++hot_.dramWritebacks;
        }
      } else if (!llc_[fill.bank]->contains(block)) {
        mem::Eviction mev = llc_[fill.bank]->insert(block, dirty.value_or(false),
                                                    /*critical=*/true,
                                                    migContent ? &*migContent : nullptr);
        policy_->onFill(block, fill.bank);
        tlbs_[core]->setMappingBit(vaddr, fill.usedRnuca);
        evictFromLlc(fill.bank, mev, bankStart);
        processFrameDeaths(fill.bank, bankStart);
        ++hot_.warmMigrations;
      }
    }
  } else {
    // LLC miss: fetch from DRAM, fill a (policy-chosen) bank, forward.
    ++coreCounters_[core].llcDemandMisses;
    Cycle missKnown = bankStart + cfg_.l3.tagLatency;
    if (traceWalk) {
      tracer_->span("l3", "mem", kTracePidCores, core, bankStart, missKnown,
                    {{"bank", static_cast<std::int64_t>(lookupBank)}, {"hit", 0}});
    }

    Addr paddr = lineBase(block);
    std::uint32_t ch = dram::mapAddress(paddr, cfg_.dramCfg).channel;
    Cycle memArrive = nocTraverse(topo_.bankNode(lookupBank), memNode(ch), missKnown,
                                  mesh_.config().controlFlits);
    Cycle dramDone = dramAccess(paddr, AccessType::Read, memArrive);
    if (traceWalk) {
      tracer_->span("dram", "mem", kTracePidCores, core, memArrive, dramDone,
                    {{"channel", static_cast<std::int64_t>(ch)}});
    }

    // Stores never fetch critically (they retire via the store buffer and
    // cannot stall the ROB head), so their fills always spread (paper §IV).
    bool fillCritical = type == AccessType::Read && critical;
    core::MappingPolicy::Fill fill = policy_->placeFill(block, core, fillCritical);
    if (llc_[fill.bank]->canAllocate(block)) {
      ++hot_.llcFills;
      if (!fillCritical) ++hot_.llcFillsNonCritical;
      ++(fillCritical ? hot_.llcWritesCritical : hot_.llcWritesNonCritical);

      Cycle fillArrive = nocTraverse(memNode(ch), topo_.bankNode(fill.bank), dramDone,
                                     mesh_.config().dataFlits);
      Cycle fillStart = bankReserve(fill.bank, fillArrive);
      compress::LineContent fillContent{};
      const bool cmp = compressionEnabled();
      if (cmp) fillContent = currentContent(core, block);
      mem::Eviction llcEv = llc_[fill.bank]->insert(block, /*dirty=*/false,
                                                    fillCritical,
                                                    cmp ? &fillContent : nullptr);
      policy_->onFill(block, fill.bank);
      if (policy_->needsMbv()) tlbs_[core]->setMappingBit(vaddr, fill.usedRnuca);
      evictFromLlc(fill.bank, llcEv, fillStart);
      processFrameDeaths(fill.bank, fillStart);

      // Fill-forward: the data packet continues to the core as the ReRAM
      // write proceeds in the background.
      dataAtCore = nocTraverse(topo_.bankNode(fill.bank), topo_.coreNode(core),
                               fillArrive, mesh_.config().dataFlits);
    } else {
      // The chosen bank's set is fully dead: no LLC fill — DRAM serves the
      // core directly (degraded-capacity bypass).
      stats_.inc("dead_set_bypasses");
      dataAtCore = nocTraverse(memNode(ch), topo_.coreNode(core), dramDone,
                               mesh_.config().dataFlits);
    }
    hot_.llcMissLatencySum += dataAtCore - issueAt;
    ++hot_.llcMissLatencyCount;
    hot_.llcMissPreBankSum += bankStart - issueAt;
    hot_.dbgTlbSum += t - issueAt;
    hot_.dbgL1qSum += l1Start - t;
    hot_.dbgL2qSum += l2Start - t2;
    hot_.dbgBankqSum += bankStart - reqArrive;
    hot_.llcMissDramSum += dramDone - memArrive;
    hot_.llcMissPostDramSum += dataAtCore - dramDone;
  }
  llcProf.reset();

  // ---- Next-line prefetch (optional) ----------------------------------------
  // Issued on the demand miss path, after the demand line's fate is known;
  // prefetches run the same LLC/DRAM path untimed for the core (they only
  // occupy resources) and fill the L2 directly.
  for (std::uint32_t d = 1; d <= cfg_.l2PrefetchDegree; ++d) {
    prefetchIntoL2(core, vaddr + static_cast<Addr>(d) * kLineBytes, afterL2);
  }

  // ---- Fill the private levels ------------------------------------------------
  // Victim write-backs are timestamped at miss detection (afterL2), not at
  // data return: every reservation on the LLC banks then happens at a
  // near-constant offset from issue, which keeps the busy-until waterlines
  // time-ordered (a +300-cycle future reservation would otherwise block
  // all near-term demand behind it).
  mem::Eviction l2Ev = l2_[core]->insert(block, /*dirty=*/false);
  evictFromL2(core, l2Ev, afterL2);
  mem::Eviction l1Ev = l1_[core]->insert(block, /*dirty=*/type == AccessType::Write);
  if (l1Ev.valid && l1Ev.dirty) writebackL1VictimToL2(core, l1Ev.block, afterL2);

  if (traceWalk) {
    tracer_->span(walkName, "mem", kTracePidCores, core, issueAt, dataAtCore,
                  {{"vaddr", static_cast<std::int64_t>(vaddr)},
                   {"critical", critical ? 1 : 0}});
  }
  traceThisWalk_ = false;

  return WalkResult{dataAtCore, /*missedL1=*/true};
}

cpu::MemorySystem::LoadResult MemorySystem::load(CoreId core, Addr vaddr, std::uint64_t,
                                                 Cycle issueAt, bool predictedCritical) {
  WalkResult r = walk(core, vaddr, issueAt, AccessType::Read, predictedCritical);
  return LoadResult{r.completeAt, r.missedL1};
}

Cycle MemorySystem::store(CoreId core, Addr vaddr, std::uint64_t, Cycle issueAt) {
  WalkResult r = walk(core, vaddr, issueAt, AccessType::Write, /*critical=*/false);
  return r.completeAt;
}

double MemorySystem::nonCriticalFillFrac() const {
  std::uint64_t fills = hot_.llcFills;
  return fills ? static_cast<double>(hot_.llcFillsNonCritical) /
                     static_cast<double>(fills)
               : 0.0;
}

double MemorySystem::nonCriticalWriteFrac() const {
  std::uint64_t nc = hot_.llcWritesNonCritical;
  std::uint64_t total = nc + hot_.llcWritesCritical;
  return total ? static_cast<double>(nc) / static_cast<double>(total) : 0.0;
}

void MemorySystem::resetMeasurement() {
  for (auto& bank : llc_) bank->resetMeasurement();
  // zero() keeps the keys, so counter() handles into the banks' sets
  // survive the warm-up/measurement boundary.
  for (auto& c : l1_) c->stats().zero();
  for (auto& c : l2_) c->stats().zero();
  std::fill(coreCounters_.begin(), coreCounters_.end(), CoreMemCounters{});
  hot_ = HotCounters{};
  stats_.zero();
  // Fault events restart with the measurement window (dead frames persist
  // inside the banks; only the log is windowed).
  faultEvents_.clear();
}

void MemorySystem::saveCheckpoint(serial::ArchiveWriter& ar) const {
  serial::saveComponent(ar, "pagetable", pageTable_);
  for (CoreId c = 0; c < cfg_.numCores; ++c) {
    serial::saveComponent(ar, "tlb" + std::to_string(c), *tlbs_[c]);
    serial::saveComponent(ar, "l1d" + std::to_string(c), *l1_[c]);
    serial::saveComponent(ar, "l2" + std::to_string(c), *l2_[c]);
  }
  for (BankId b = 0; b < numBanks(); ++b) {
    serial::saveComponent(ar, "l3b" + std::to_string(b), *llc_[b]);
    if (!faultModels_.empty()) {
      serial::saveComponent(ar, "fault" + std::to_string(b), *faultModels_[b]);
    }
  }
  serial::saveComponent(ar, "policy", *policy_);
  serial::saveComponent(ar, "dram", dram_);
  serial::saveComponent(ar, "noc", mesh_);
  // Compression state travels in its own sections so the legacy l3b/...
  // payload layout (pinned by committed fixture checkpoints) is untouched.
  // Only written when compression is on: the warm-state fingerprint already
  // refuses cross-config restores, and uncompressed archives stay
  // byte-identical to pre-compression ones.
  if (compressionEnabled()) {
    for (BankId b = 0; b < numBanks(); ++b) {
      ar.beginSection("cmp" + std::to_string(b));
      llc_[b]->saveCompressState(ar);
      ar.endSection();
    }
    ar.beginSection("cmpmeta");
    std::vector<std::pair<BlockAddr, std::uint32_t>> versions(contentVersion_.begin(),
                                                              contentVersion_.end());
    std::sort(versions.begin(), versions.end());
    ar.putU64(versions.size());
    for (const auto& [block, version] : versions) {
      ar.putU64(block);
      ar.putU32(version);
    }
    ar.endSection();
  }
}

bool MemorySystem::loadCheckpoint(serial::ArchiveReader& ar) {
  if (!serial::loadComponent(ar, "pagetable", pageTable_)) return false;
  for (CoreId c = 0; c < cfg_.numCores; ++c) {
    if (!serial::loadComponent(ar, "tlb" + std::to_string(c), *tlbs_[c])) return false;
    if (!serial::loadComponent(ar, "l1d" + std::to_string(c), *l1_[c])) return false;
    if (!serial::loadComponent(ar, "l2" + std::to_string(c), *l2_[c])) return false;
  }
  for (BankId b = 0; b < numBanks(); ++b) {
    if (!serial::loadComponent(ar, "l3b" + std::to_string(b), *llc_[b])) return false;
    if (!faultModels_.empty() &&
        !serial::loadComponent(ar, "fault" + std::to_string(b), *faultModels_[b])) {
      return false;
    }
  }
  if (!serial::loadComponent(ar, "policy", *policy_)) return false;
  if (!serial::loadComponent(ar, "dram", dram_)) return false;
  if (!serial::loadComponent(ar, "noc", mesh_)) return false;
  if (compressionEnabled()) {
    for (BankId b = 0; b < numBanks(); ++b) {
      if (!ar.openSection("cmp" + std::to_string(b))) return false;
      if (!llc_[b]->loadCompressState(ar)) return false;
    }
    if (!ar.openSection("cmpmeta")) return false;
    contentVersion_.clear();
    const std::uint64_t count = ar.getU64();
    for (std::uint64_t i = 0; i < count && ar.ok(); ++i) {
      const BlockAddr block = ar.getU64();
      contentVersion_[block] = ar.getU32();
    }
    if (!ar.ok() || ar.remaining() != 0) return false;
  }
  return true;
}

std::string MemorySystem::checkInclusion() const {
  std::string err;
  for (CoreId c = 0; c < cfg_.numCores && err.empty(); ++c) {
    // L1 ⊆ L2.
    l1_[c]->forEachValidLine([&](BlockAddr block, bool) {
      if (!err.empty()) return;
      if (!l2_[c]->contains(block)) {
        err = "L1 line of core " + std::to_string(c) + " missing from L2";
      }
    });
    if (!err.empty()) break;
    // L2 ⊆ LLC only when the LLC is inclusive.
    if (cfg_.inclusiveLlc) {
      l2_[c]->forEachValidLine([&](BlockAddr block, bool) {
        if (!err.empty()) return;
        bool bit = policy_->needsMbv() ? mbvBitPhys(block) : false;
        BankId bank = policy_->locate(block, c, bit);
        if (!llc_[bank]->contains(block)) {
          err = "L2 line of core " + std::to_string(c) + " missing from LLC bank " +
                std::to_string(bank);
        }
      });
    }
  }
  return err;
}

}  // namespace renuca::sim
