// Job-graph sweep engine: the parallel experiment layer.
//
// Every figure/table in the paper is a cross product — (policy x mix),
// (app x threshold), (config x policy x mix) — of *independent*
// simulations.  This module makes that structure explicit: a Job is one
// fully-specified simulation (a SystemConfig with the policy/threshold/
// seed baked in, plus a workload and a label), a SweepPlan is the ordered
// list of jobs behind one figure, and runPlan() executes the plan on a
// work-stealing thread pool (common/thread_pool.hpp).
//
// Determinism contract: results come back indexed by *plan order*, and
// each System is seeded purely from its own config, so a parallel run
// produces bit-identical RunResults — and byte-identical run reports,
// modulo provenance (timestamps, wall seconds, jobs) — to a serial run of
// the same plan.  Scheduling can reorder execution, never results.
//
// What had to be true of the simulator for this to be safe:
//  * a System owns all of its mutable state (memory system, RNG streams,
//    MetricsRegistry, TraceWriter) — nothing hangs off globals;
//  * RNG is per-System Pcg32, seeded from SystemConfig::seed (workload
//    streams) and FaultConfig::seed (fault schedules, pure in (seed,
//    bank)) — there are no hidden static generators;
//  * logging is thread-safe (atomic level, per-line sink lock);
//  * trace files: a plan with more than one traced job writes one file
//    per job (the job index is spliced into the path), never a shared one.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/system.hpp"
#include "workload/mixes.hpp"

namespace renuca {
class ThreadPool;
}

namespace renuca::sim {

/// One fully-specified simulation: config (policy, seed, budgets all baked
/// in) + workload + a label for reports and narration.
struct Job {
  std::string label;
  SystemConfig config;
  workload::WorkloadMix mix;
  /// Client-assigned job id (service runs; empty elsewhere).  Pure
  /// provenance: echoed in the job's report and lifecycle spans, never
  /// read by the simulation.
  std::string clientJobId;
};

/// An ordered list of independent jobs.  Order is the determinism anchor:
/// runPlan() returns results[i] for jobs()[i] no matter how execution is
/// scheduled.
class SweepPlan {
 public:
  /// Appends a job and returns its plan index.
  std::size_t add(Job job);
  /// Convenience: label + config + a single-app mix named after the app
  /// (the single-core characterization rigs).
  std::size_t addSingleApp(std::string label, const SystemConfig& singleCoreConfig,
                           const std::string& appName);

  const std::vector<Job>& jobs() const { return jobs_; }
  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }

 private:
  std::vector<Job> jobs_;
};

struct SweepOptions {
  /// Worker threads: 1 = serial (in the calling thread, exactly today's
  /// behaviour), 0 = one per hardware thread, N = N workers.
  unsigned jobs = 1;
  /// Info-level progress narration ("sweep: 12/50 ...") as jobs finish.
  bool narrate = false;
  /// Warm-start snapshot reuse (snapshot_dir= in benches).  When set, jobs
  /// whose warm-up-relevant configuration matches (sim/fingerprint.hpp)
  /// share one post-fast-forward snapshot stored here: the first such job
  /// saves it, the rest restore it instead of re-running the fast-forward.
  /// Snapshots persist across plans, so later benches with matching jobs
  /// reuse them too.  Jobs with explicit snapshot paths or enableSharing
  /// are left cold.  Results stay byte-identical to a cold sweep — the
  /// snapshot replays the exact functional state the fast-forward builds.
  std::string warmStartDir;
  /// Run on an externally owned pool instead of constructing one per plan
  /// (the renucad daemon keeps a resident pool across batches).  The
  /// caller must be the pool's only submitter while the plan runs — the
  /// phase barrier is pool->wait().  Overrides `jobs`.
  ThreadPool* pool = nullptr;
  /// Called once per job right before its simulation starts, on the thread
  /// that will run it (plan index).  Lets the service timestamp the
  /// queued->executing transition; same concurrency caveats as onJobDone.
  std::function<void(std::size_t)> onJobStart;
  /// Called once per job right after its result slot is written (plan
  /// index, result).  On a parallel run this fires on worker threads,
  /// concurrently — the callee synchronizes.  Jobs whose simulation threw
  /// still fire, with result.error set.
  std::function<void(std::size_t, const RunResult&)> onJobDone;
};

/// Resolves a `jobs=` setting to a worker count (0 -> hardware threads).
unsigned resolveJobs(unsigned jobs);

/// Runs every job of the plan and returns results in plan order.
std::vector<RunResult> runPlan(const SweepPlan& plan, const SweepOptions& opts = {});

}  // namespace renuca::sim
