// Machine-readable run reports ("renuca-run-report-v4").
//
// Every bench binary (and runWorkload, via BenchSession) can write one JSON
// document per invocation: provenance (host, wall-clock, generation time),
// a config echo, and one entry per simulated run carrying the full
// RunResult — per-core IPC/WPKI/MPKI, per-bank writes and lifetimes, the
// criticality statistics, and (when epoch sampling was on) the epoch time
// series plus a derived per-bank lifetime-projection series.
//
// This layer lives in src/sim rather than src/telemetry because it knows
// RunResult and SystemConfig; the generic JSON/series machinery it uses is
// telemetry's.
#pragma once

#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/system.hpp"

namespace renuca::sim {

/// One labeled run inside a report (label example: "mix04/ReNuca").
struct ReportEntry {
  std::string label;
  RunResult result;
};

/// Writes the report document to `path`.  Returns false (after logging a
/// warning) when the file cannot be opened; the simulation's results are
/// never at risk from a failed report.  `jobs` is provenance: the sweep
/// worker count the run used (it changes wall_seconds, never results —
/// both live in the provenance fields excluded from the determinism
/// contract).
bool writeRunReport(const std::string& path, const std::string& benchName,
                    const SystemConfig& cfg, const std::vector<ReportEntry>& entries,
                    double wallSeconds, unsigned jobs = 1);

/// The same document as a string (newline-terminated) — what renucad
/// streams back to clients, and what writeRunReport puts on disk.  The
/// provenance fields (generated_unix, host, wall_seconds, jobs, and the
/// optional client-assigned job_id) all come before the "config" key, so
/// "modulo provenance" comparisons can simply compare everything from
/// `"config"` on.
std::string runReportJson(const std::string& benchName, const SystemConfig& cfg,
                          const std::vector<ReportEntry>& entries,
                          double wallSeconds, unsigned jobs = 1,
                          const std::string& jobId = std::string());

}  // namespace renuca::sim
