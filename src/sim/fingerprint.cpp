#include "sim/fingerprint.hpp"

#include <sstream>

#include "serial/archive.hpp"

namespace renuca::sim {

namespace {

void appendCache(std::ostringstream& os, const char* tag,
                 const mem::CacheConfig& c) {
  os << tag << ".size=" << c.sizeBytes << ';' << tag << ".ways=" << c.ways << ';'
     << tag << ".line=" << c.lineBytes << ';' << tag
     << ".repl=" << static_cast<int>(c.replacement) << ';' << tag
     << ".shift=" << c.setIndexShift << ';' << tag << ".eq=" << c.equalChanceEvery
     << ';' << tag << ".track=" << (c.trackFrameWrites ? 1 : 0) << ';';
}

}  // namespace

std::string warmStateKey(const SystemConfig& cfg, const workload::WorkloadMix& mix) {
  std::ostringstream os;
  os << "cores=" << cfg.numCores << ';' << "seed=" << cfg.seed << ';'
     << "prewarm=" << cfg.prewarmInstrPerCore << ';'
     << "policy=" << core::toString(cfg.policy) << ';'
     << "cluster=" << cfg.clusterSize << ';'
     << "cold_crit=" << (cfg.cpt.coldPredictsCritical ? 1 : 0) << ';'
     << "force_pred=" << (cfg.forcePredictor ? 1 : 0) << ';';
  appendCache(os, "l1", cfg.l1d);
  appendCache(os, "l2", cfg.l2);
  os << "l3.banks=" << cfg.l3.banks << ';' << "l3.bytes=" << cfg.l3.bankBytes << ';'
     << "l3.ways=" << cfg.l3.ways << ';' << "l3.eq=" << cfg.l3.equalChanceEvery << ';'
     << "tlb.entries=" << cfg.tlbCfg.entries << ';'
     << "tlb.ways=" << cfg.tlbCfg.ways << ';'
     << "tlb.back=" << (cfg.tlbCfg.backMbvInPageTable ? 1 : 0) << ';'
     << "inclusive=" << (cfg.inclusiveLlc ? 1 : 0) << ';'
     << "sharing=" << (cfg.enableSharing ? 1 : 0) << ';'
     << "prefetch=" << cfg.l2PrefetchDegree << ';'
     << "noc=" << cfg.nocCfg.width << 'x' << cfg.nocCfg.height << ';';
  // The placement suffix only appears when non-default, so every snapshot
  // taken before the placement layer existed (all default-placed) keeps its
  // fingerprint; a custom placement refuses to restore a default-placed
  // snapshot and vice versa.
  if (!noc::isDefaultPlacement(cfg.placement)) {
    os << "placement="
       << noc::Topology(cfg.nocCfg, cfg.numCores, cfg.placement).placementKey()
       << ';';
  }
  // Compression, like placement, only stamps when non-default: every
  // pre-compression snapshot keeps its fingerprint, and a compressed run
  // refuses to restore an uncompressed snapshot (whose frames carry no
  // content descriptors) and vice versa.  The decompression latency is a
  // measurement-window knob and deliberately excluded.
  if (cfg.compress != compress::Kind::None) {
    os << "compress=" << compress::toString(cfg.compress) << ';';
  }
  // The fault model rides along: its per-frame budgets are serialized into
  // the snapshot, so runs may only share one when the whole fault config
  // matches (budgets are unarmed during the fast-forward — no frame can
  // die before the snapshot point — but the budgets themselves differ).
  os << "fault=" << (cfg.fault.enabled ? 1 : 0) << ';';
  if (cfg.fault.enabled) {
    os << "fault.seed=" << cfg.fault.seed << ';'
       << "fault.budget=" << cfg.fault.budgetWrites << ';'
       << "fault.sigma=" << cfg.fault.sigma << ';'
       << "fault.deadfrac=" << cfg.fault.deadFrac << ';';
    for (const rram::ScheduledFault& sf : cfg.fault.schedule) {
      os << "fault.s=" << static_cast<int>(sf.trigger) << ',' << sf.bank << ','
         << sf.set << ',' << sf.way << ',' << sf.value << ';';
    }
  }
  os << "mix=" << mix.name << ';';
  for (const std::string& app : mix.appNames) os << "app=" << app << ';';
  return os.str();
}

std::uint64_t warmStateFingerprint(const SystemConfig& cfg,
                                   const workload::WorkloadMix& mix) {
  std::string key = warmStateKey(cfg, mix);
  return serial::fnv1a(key.data(), key.size());
}

}  // namespace renuca::sim
