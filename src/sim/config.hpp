// Whole-system configuration (paper Table I) and the named presets used by
// the sensitivity studies.
#pragma once

#include <cstdint>
#include <string>

#include "common/kvconfig.hpp"
#include "core/cpt.hpp"
#include "core/mapping_policy.hpp"
#include "cpu/core.hpp"
#include "dram/dram.hpp"
#include "mem/cache.hpp"
#include "noc/mesh.hpp"
#include "noc/topology.hpp"
#include "rram/endurance.hpp"
#include "rram/fault_model.hpp"
#include "tlb/tlb.hpp"

namespace renuca::sim {

struct LlcConfig {
  std::uint32_t banks = 16;
  std::uint64_t bankBytes = 2ull * 1024 * 1024;  ///< 2 MB/bank, 32 MB total.
  std::uint32_t ways = 16;
  std::uint32_t latency = 100;     ///< Full bank access (Table I: 100 cycles).
  /// Cycles until a miss is known.  ReRAM banks read tag and data arrays
  /// together, so miss determination costs the full access latency.
  std::uint32_t tagLatency = 100;
  /// Latency of the Naive oracle's centralized line directory, paid on
  /// every LLC access before the bank can be addressed (the paper's §III.A
  /// names this directory as what makes Naive infeasible, and charges it:
  /// Naive loses ~21 % IPC against S-NUCA).
  std::uint32_t naiveDirectoryLatency = 60;
  /// EqualChance-style intra-set wear leveling period (paper §VI:
  /// complementary to Re-NUCA); 0 = off.
  std::uint32_t equalChanceEvery = 0;
  std::uint32_t occupancy = 4;     ///< Bank busy cycles per access.
};

struct SystemConfig {
  std::uint32_t numCores = 16;

  cpu::CoreConfig coreCfg;           // 128-entry ROB, 4-wide (Table I)
  mem::CacheConfig l1d;              // 32 KB, 4-way, 2 cycles
  mem::CacheConfig l2;               // 256 KB, 8-way, 5 cycles (private)
  LlcConfig l3;                      // 16 x 2 MB, 16-way, 100 cycles
  tlb::TlbConfig tlbCfg;             // 64-entry, 8-way, + MBV
  noc::NocConfig nocCfg;             // 4x4 mesh
  /// Who sits where on the mesh (mc=/mc_edge=/placement= keys).  The
  /// default — four corner MCs, identity core/bank maps — reproduces the
  /// pre-placement layout exactly.
  noc::PlacementConfig placement;
  dram::DramConfig dramCfg;          // DDR3, 4ch x 2rk x 8bk, FR-FCFS
  rram::EnduranceConfig endurance;   // 1e11 writes/cell @ 2.4 GHz

  core::PolicyKind policy = core::PolicyKind::SNuca;
  core::CptConfig cpt;
  /// Wear-out fault model (fault_*= keys); off by default.
  rram::FaultConfig fault;
  /// LLC line compression (compress= key): the orthogonal policy axis of
  /// DESIGN.md §18.  None keeps the classic full-line write accounting
  /// byte-identical to pre-compression builds; Bdi/Fpc/BdiFpc store
  /// compressed payloads and charge wear per bit actually flipped.
  compress::Kind compress = compress::Kind::None;
  /// Decompression latency added to every LLC read hit when compression is
  /// on (compress_latency= key) — the IPC cost side of the lifetime × IPC
  /// trade-off.  Ignored when compress == None.
  std::uint32_t compressLatency = 2;
  /// R-NUCA / Re-NUCA cluster size n (paper: 4); power of two.
  std::uint32_t clusterSize = 4;
  /// Attach a CPT even when the policy does not need one (criticality
  /// measurement runs: Figs 5, 7, 8, 9).
  bool forcePredictor = false;

  std::uint64_t instrPerCore = 60000;
  std::uint64_t warmupInstrPerCore = 15000;
  /// Untimed functional fast-forward before the timed warm-up: fills the
  /// cache hierarchy to steady state (the analogue of the paper's 2 B
  /// instruction fast-forward).  Needs to cover at least one L2 turnover
  /// for low-miss-rate apps.
  std::uint64_t prewarmInstrPerCore = 800000;
  /// Second functional fast-forward after the timed warm-up, for policies
  /// with a criticality predictor: re-places LLC lines using the trained
  /// CPT so measurement sees steady-state placement.
  std::uint64_t placementRefreshInstrPerCore = 400000;
  std::uint64_t seed = 1;
  std::uint64_t maxCycles = 400'000'000;

  /// Run the timed loop with the reference tick-every-core-every-cycle
  /// implementation instead of the event-calendar wake list.  The two are
  /// result-identical (test_system_equivalence); the reference loop exists
  /// as the oracle for that proof and as a bisection aid, not for normal
  /// use.  Overridable as brute_force_tick=1.
  bool bruteForceTick = false;

  /// Next-line prefetch into the L2 on L2 demand misses (degree = how many
  /// sequential lines).  Off by default — the paper's Table I lists no
  /// prefetcher — but implemented because streaming SPEC workloads are
  /// exactly where one matters; bench_ablation_design measures its effect
  /// on both IPC and ReRAM wear (prefetch fills are LLC writes too).
  std::uint32_t l2PrefetchDegree = 0;

  /// Inclusive LLC: evictions back-invalidate the owner's L1/L2.  The
  /// paper's substrate (gem5 Ruby MESI, as in the R-NUCA work) behaves
  /// non-inclusively, so that is the default; the inclusive mode is kept
  /// for the design-choice ablation.
  bool inclusiveLlc = false;

  /// Route demand traffic through the MESI directory.  Off for the
  /// paper's multi-programmed runs (disjoint address spaces); on for the
  /// shared-memory example/integration tests.
  bool enableSharing = false;

  // --- Telemetry -----------------------------------------------------------
  /// Epoch length, in committed instructions per core, at which the
  /// measurement window snapshots every registered metric into the run's
  /// time series (RunResult::epochs).  0 disables epoch sampling.
  std::uint64_t epochInstrs = 0;
  /// Chrome trace_event output path (chrome://tracing / Perfetto); empty
  /// disables event tracing.
  std::string traceJsonPath;
  /// Trace every Nth hierarchy walk (1 = every walk).  Sampling keeps full
  /// runs fast and trace files loadable.
  std::uint32_t traceSampleEvery = 64;
  /// Self-profiler (profile= key): attribute the run's own wall time to
  /// simulator components and emit a "profile" section in the run report
  /// (and spans in the trace, when trace_json= is also set).  Off by
  /// default: the instrumentation then costs one null-pointer test per
  /// hook site (telemetry/profiler.hpp).
  bool profileEnabled = false;

  // --- Warm-state snapshots (snapshot_save= / snapshot_load=) --------------
  /// Write a warm-state snapshot here right after the untimed fast-forward
  /// (skipped when the state was itself restored from a snapshot).  Empty
  /// disables.  See serial/archive.hpp for the format.
  std::string snapshotSavePath;
  /// Restore the post-fast-forward state from this snapshot instead of
  /// re-running the fast-forward.  A missing/corrupt/mismatched snapshot
  /// logs a warning and falls back to the cold fast-forward.
  std::string snapshotLoadPath;

  SystemConfig();

  /// Applies "key=value" overrides (instr_per_core, warmup, policy, seed,
  /// threshold_pct, rob_entries, l2_kb, l3_bank_kb, cluster_size, cores,
  /// epoch_instrs, trace_json, trace_sample, log_level, fault_*).
  void applyOverrides(const KvConfig& kv);

  /// Human-readable Table-I-style summary printed by bench headers.
  std::string summary() const;
};

/// Registry of every key applyOverrides understands plus the standard
/// bench/example keys (report_json, mixes, strict), with range rules.
/// Drives validateConfigKeys.
const KeyRegistry& configKeyRegistry();

/// Validates `kv` against configKeyRegistry() plus any `extraKeys` a
/// binary accepts on top (registered as free-form strings).  Unknown keys,
/// unparsable values, and out-of-range numbers are all reported; callers
/// decide whether to warn or abort (strict mode).
std::vector<ConfigError> validateConfigKeys(const KvConfig& kv,
                                            const std::vector<std::string>& extraKeys = {});

/// Named presets from the paper's evaluation:
SystemConfig defaultConfig();   ///< Table I ("Actual Results").
SystemConfig l2Small();         ///< L2 = 128 KB sensitivity (Figs 13/14).
SystemConfig l3Small();         ///< L3 bank = 1 MB sensitivity (Figs 15/16).
SystemConfig robLarge();        ///< ROB = 168 entries sensitivity (Figs 17/18).
/// Single-core rig used for per-app characterization (Table II, Figs 2,
/// 5, 7, 8, 9): one core, one 2 MB LLC bank, 1x1 mesh.
SystemConfig singleCore();

}  // namespace renuca::sim
