// Whole-system assembly and the simulation loop.
//
// A System wires up N cores (each with its own synthetic SPEC-like
// instruction generator and, when the policy wants one, a private
// Criticality Predictor Table) to the shared MemorySystem, then runs the
// paper's two-phase methodology: a cache warm-up window whose statistics
// are discarded, followed by a measurement window that ends when every
// core has committed its instruction budget.  Cores that finish early keep
// executing so the memory system stays contended (their IPC is measured at
// the cycle their budget completed).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/cpt.hpp"
#include "cpu/core.hpp"
#include "rram/endurance.hpp"
#include "sim/config.hpp"
#include "sim/memory_system.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"
#include "workload/generator.hpp"
#include "workload/mixes.hpp"

namespace renuca::sim {

/// Everything a bench needs from one simulation run.
struct RunResult {
  /// Empty on success.  The sweep engine catches exceptions a job throws
  /// (e.g. an unknown application profile) and records the message here
  /// instead of killing the worker; every numeric field is then
  /// default-valued.
  std::string error;
  /// Failure class when `error` is set: "sim" for a deterministic
  /// simulation failure (retrying reproduces it — bad config, unknown
  /// profile), "io" for an I/O or resource failure (disk full, bad_alloc)
  /// that may succeed on another host.  The fleet coordinator keys its
  /// retry decision on this.
  std::string errorCode;

  std::string mixName;
  core::PolicyKind policy = core::PolicyKind::SNuca;
  Cycle measuredCycles = 0;
  bool hitMaxCycles = false;

  // Per-core performance.
  std::vector<double> coreIpc;
  std::vector<std::uint64_t> coreCommitted;
  double systemIpc = 0.0;  ///< Sum of per-core IPCs (multi-programmed throughput).

  // Per-core LLC traffic (paper Table II metrics).
  std::vector<double> wpki;
  std::vector<double> mpki;
  std::vector<double> llcHitRate;

  // Per-bank ReRAM wear.  The paper's lifetime metric is bank-level: each
  // bank's write *rate* spread over its frames against the 1e11 per-cell
  // endurance (its Naive oracle wear-levels with bank-granularity counters,
  // which only makes sense under that accounting).  The hottest-frame
  // bound is kept for the endurance-accounting ablation.
  std::vector<std::uint64_t> bankWrites;
  std::vector<std::uint64_t> bankMaxFrameWrites;
  std::vector<double> bankLifetimeYears;          ///< Bank-level accounting (paper).
  std::vector<double> bankLifetimeYearsHotFrame;  ///< Hottest-frame bound (ablation).

  // Compression and bit-accurate wear (compress != none runs only; empty /
  // zero otherwise).  Lifetimes here count effective writes = bits / 512
  // (DESIGN.md §18); the writes-based vectors above are what an
  // uncompressed LLC would charge and stay filled either way.
  compress::Kind compressKind = compress::Kind::None;
  std::vector<std::uint64_t> bankBitsFlipped;
  std::vector<std::uint64_t> bankMaxFrameBits;
  std::vector<double> bankLifetimeYearsBits;          ///< Bank-level, bit-accurate.
  std::vector<double> bankLifetimeYearsBitsHotFrame;  ///< Hottest-frame bound.
  std::uint64_t cmpWrites = 0;          ///< Compressed LLC frame writes.
  std::uint64_t cmpRawFallbacks = 0;    ///< Stored uncompressed (512 bits).
  std::uint64_t cmpZeroDeltaWrites = 0; ///< Rewrites flipping zero cells.
  /// Stored-size histogram, bucket i = (i*64, (i+1)*64] bits.
  std::uint64_t cmpSizeHist[8] = {};

  // Wear-out faults and graceful degradation (fault model runs; empty /
  // 1.0 / 0 otherwise).  Fault-event cycles are measurement-relative.
  std::vector<std::uint32_t> bankDeadFrames;
  double liveCapacityFrac = 1.0;        ///< Frames still usable at run end.
  /// Degraded-capacity lifetime: time until fault.deadFrac of the frames
  /// have exceeded their process-varied full-scale budgets, per bank and
  /// pooled over the whole LLC.
  std::vector<double> bankDegradedLifetimeYears;
  double degradedCapacityLifetimeYears = 0.0;
  std::vector<FaultEvent> faultEvents;

  // Criticality statistics.
  double nonCriticalLoadFrac = 0.0;  ///< Ground truth (Fig 5).
  double cptAccuracy = 0.0;          ///< Prediction-vs-outcome agreement.
  double cptCriticalRecall = 0.0;    ///< Fig 7 (critical loads caught).
  double nonCriticalFillFrac = 0.0;  ///< Fig 8.
  double nonCriticalWriteFrac = 0.0; ///< Fig 9.

  // Substrate health.
  double avgNocLatencyCycles = 0.0;
  double dramRowHitRate = 0.0;

  /// Per-epoch metric time series (empty unless SystemConfig::epochInstrs
  /// was set).  Includes per-bank cumulative writes ("l3.b<N>.writes"),
  /// per-core commit/stall counters, and NoC/DRAM occupancy.
  telemetry::EpochSeries epochs;

  /// Self-profile of the run's own wall time (enabled=false unless
  /// SystemConfig::profileEnabled was set).  Nondeterministic by nature —
  /// the report layer emits it only when enabled, keeping served-vs-local
  /// byte comparisons intact.
  telemetry::ProfileReport profile;

  double minBankLifetime() const;
  /// Minimum bit-accurate bank lifetime (0 when compression was off).
  double minBankLifetimeBits() const;
  double avgWpki() const;
  double avgMpki() const;
};

class System {
 public:
  System(const SystemConfig& config, const workload::WorkloadMix& mix);

  /// Runs warm-up + measurement and returns the collected results.
  RunResult run();

  // --- Warm-state snapshots ------------------------------------------------
  // A snapshot captures the post-fast-forward *functional* state of every
  // component (memory hierarchy, generators, predictors) plus a fingerprint
  // of the warm-up-relevant configuration (sim/fingerprint.hpp).  Restoring
  // it replaces the fast-forward entirely: a restored run's report is
  // byte-identical (modulo provenance) to the cold run's.

  /// Writes a snapshot of the current state to `path` (atomically, via a
  /// .tmp rename).  Refuses — returns false with a warning — when
  /// enableSharing is set: coherence directory state is not serialized.
  bool snapshot(const std::string& path) const;

  /// Restores state from `path`.  Returns false (without touching any
  /// component state) when the file is missing/corrupt/truncated, the
  /// version is unknown, or the fingerprint does not match this System's
  /// configuration; the caller then falls back to the cold fast-forward.
  bool restoreFrom(const std::string& path);

  // Introspection for tests.
  MemorySystem& memory() { return *mem_; }
  cpu::OooCore& core(CoreId c) { return *cores_[c]; }
  core::CriticalityPredictorTable* predictor(CoreId c) { return cpts_[c].get(); }
  const SystemConfig& config() const { return cfg_; }
  const telemetry::MetricsRegistry& metrics() const { return metrics_; }
  telemetry::TraceWriter* tracer() { return tracer_.get(); }
  const telemetry::Profiler* profiler() const { return profiler_.get(); }

 private:
  void tickAll(Cycle now);
  /// Untimed functional fast-forward of `instrPerCore` instructions per
  /// core (warm-up mode in the memory system).
  void fastForward(std::uint64_t instrPerCore);
  bool allReached(std::uint64_t committed) const;
  Cycle nextCycle(Cycle now) const;

  // --- Event-calendar timed loop -------------------------------------------
  // The timed loop visits the cycle sequence now' = min_c nextEventCycle_c
  // (falling back to now+1).  The reference implementation ticks every core
  // at every visited cycle and rescans all cores for the minimum; stepCores
  // instead caches each core's wake cycle (recomputed only when the core is
  // ticked) and skips cores that are not due.  A sleeping core's tick would
  // be a no-op — its ROB is full, nothing can commit before its cached wake
  // cycle, and no queued memory op is ready — except for the per-cycle
  // ROB-head stall counter, which is reconstructed exactly from the cached
  // headBlockedLoadAfterTick flag times the number of skipped loop
  // iterations (see cpu/core.hpp).  The visited cycle sequence, every
  // microarchitectural event, and every statistic are identical to the
  // reference loop; test_system_equivalence proves it per seed.

  /// Ticks every due core at `now`, settles their skipped stall cycles,
  /// refreshes their wake entries, and returns the next cycle to visit.
  Cycle stepCores(Cycle now);
  /// Credits pending skipped-iteration stall cycles on every core (called
  /// before anything reads core stats: epoch snapshots, phase boundaries,
  /// result collection).
  void settleSkippedStats();

  /// Registers every component's metrics with metrics_ (construction time).
  void registerMetrics();

  SystemConfig cfg_;
  workload::WorkloadMix mix_;
  std::unique_ptr<MemorySystem> mem_;
  std::vector<std::unique_ptr<workload::SyntheticGenerator>> gens_;
  std::vector<std::unique_ptr<core::CriticalityPredictorTable>> cpts_;
  std::vector<std::unique_ptr<cpu::OooCore>> cores_;

  telemetry::MetricsRegistry metrics_;
  std::unique_ptr<telemetry::TraceWriter> tracer_;
  /// Self-profiler (profile= key); null when off, and every section handle
  /// below is then detached.  The simulation loops are attributed to
  /// "cores" as coarse outer scopes; the memory system's nested sections
  /// (tlb/l1/l2/llc/noc/dram) claim their share out of them.  Timed-mode
  /// predictor lookups run inside OooCore and are part of "cores"; the
  /// "predictor" section covers the fast-forward's batched lookups.
  std::unique_ptr<telemetry::Profiler> profiler_;
  telemetry::ProfSection secCores_;
  telemetry::ProfSection secFf_;
  telemetry::ProfSection secWorkload_;
  telemetry::ProfSection secPredictor_;
  telemetry::ProfSection secTelemetry_;
  /// Cycle of the snapshot being taken; gauges that need "now" (MSHR
  /// occupancy) read it.
  Cycle epochNow_ = 0;

  // Wake list state (stepCores).  wake_[c] is c's cached nextEventCycle;
  // lastTickIter_[c] / headBlockedLoad_[c] reconstruct the per-cycle stall
  // counter over skipped iterations; loopIter_ counts visited cycles across
  // both timed phases.
  std::vector<Cycle> wake_;
  std::vector<std::uint64_t> lastTickIter_;
  std::vector<unsigned char> headBlockedLoad_;
  std::uint64_t loopIter_ = 0;
};

}  // namespace renuca::sim
