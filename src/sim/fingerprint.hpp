// Warm-state fingerprint: which runs can share a warm-up snapshot.
//
// A snapshot taken after the untimed functional fast-forward captures only
// *functional* state (tags, MBV bits, page table, RNG streams, endurance
// counters — see serial/checkpointable.hpp).  Two configurations produce
// bit-identical functional warm state whenever every knob that the
// fast-forward path reads is equal; everything else (timing latencies,
// measurement-window lengths, the CPT threshold, telemetry) can differ
// freely and the restored run is still byte-identical to a cold one.
//
// warmStateKey() renders that equivalence class as a canonical "k=v;"
// string; warmStateFingerprint() hashes it (FNV-1a 64) for use as a
// filename / archive tag.  The key deliberately EXCLUDES:
//
//  * cpt.thresholdPct and cpt.capacity — the CPT trains only at commit in
//    timed mode, so it is empty at the snapshot point and predict() on an
//    empty table returns coldPredictsCritical regardless of the threshold.
//    This is what lets a threshold sweep (Fig 7: 9 thresholds x 8 apps)
//    share one snapshot per app.
//  * instrPerCore / warmupInstrPerCore / placementRefreshInstrPerCore /
//    maxCycles / epochInstrs / robEntries — measurement-window knobs; the
//    snapshot predates the first timed cycle.
//  * All latencies, occupancies, and the DRAM config — during the
//    fast-forward every timing call is a warm-up-mode no-op, and the
//    DRAM open-row registers are only touched by timed accesses.
//
// If a new config knob ever changes what the fast-forward path *does*
// (not just how long it takes), it must be added here — test_serial's
// cold-vs-restored byte-compare is the regression net for that.
#pragma once

#include <cstdint>
#include <string>

#include "sim/config.hpp"
#include "workload/mixes.hpp"

namespace renuca::sim {

/// Canonical description of the warm-state equivalence class.
std::string warmStateKey(const SystemConfig& cfg, const workload::WorkloadMix& mix);

/// FNV-1a 64 hash of warmStateKey() — the snapshot's identity tag.
std::uint64_t warmStateFingerprint(const SystemConfig& cfg,
                                   const workload::WorkloadMix& mix);

}  // namespace renuca::sim
