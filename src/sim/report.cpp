#include "sim/report.hpp"

#include <fstream>
#include <sstream>

#include "common/log.hpp"
#include "rram/endurance.hpp"
#include "telemetry/json.hpp"
#include "telemetry/report.hpp"

namespace renuca::sim {

namespace {

void writeConfigEcho(telemetry::JsonWriter& w, const SystemConfig& cfg) {
  w.beginObject();
  w.kv("summary", cfg.summary());
  w.kv("cores", cfg.numCores);
  w.kv("policy", core::toString(cfg.policy));
  w.kv("threshold_pct", cfg.cpt.thresholdPct);
  w.kv("cluster_size", cfg.clusterSize);
  w.kv("rob_entries", cfg.coreCfg.robEntries);
  w.kv("l1d_bytes", cfg.l1d.sizeBytes);
  w.kv("l2_bytes", cfg.l2.sizeBytes);
  w.kv("l3_banks", cfg.l3.banks);
  w.kv("l3_bank_bytes", cfg.l3.bankBytes);
  w.kv("instr_per_core", cfg.instrPerCore);
  w.kv("warmup_instr_per_core", cfg.warmupInstrPerCore);
  w.kv("prewarm_instr_per_core", cfg.prewarmInstrPerCore);
  w.kv("seed", cfg.seed);
  w.kv("epoch_instrs", cfg.epochInstrs);
  w.kv("trace_json", cfg.traceJsonPath);
  w.kv("fault_enabled", cfg.fault.enabled);
  if (cfg.fault.enabled) {
    w.kv("fault_seed", cfg.fault.seed);
    w.kv("fault_budget_writes", cfg.fault.budgetWrites);
    w.kv("fault_sigma", cfg.fault.sigma);
    w.kv("fault_dead_frac", cfg.fault.deadFrac);
    w.kv("fault_scheduled", static_cast<std::uint64_t>(cfg.fault.schedule.size()));
  }
  // Like the fault keys: only emitted when the feature is on, so
  // compress=none reports stay byte-identical (from "config" on) to
  // pre-compression ones.
  if (cfg.compress != compress::Kind::None) {
    w.kv("compress", compress::toString(cfg.compress));
    w.kv("compress_latency", cfg.compressLatency);
  }
  w.endObject();
}

void writeRun(telemetry::JsonWriter& w, const ReportEntry& entry,
              const SystemConfig& cfg) {
  const RunResult& r = entry.result;
  w.beginObject();
  w.kv("label", entry.label);
  // Only failed jobs carry the keys, so the overwhelmingly common success
  // case keeps the pre-error report bytes.  error_code is the structured
  // failure class ("sim" / "io") the fleet coordinator retries on.
  if (!r.error.empty()) {
    w.kv("error", r.error);
    w.kv("error_code", r.errorCode.empty() ? std::string("sim") : r.errorCode);
  }
  w.kv("mix", r.mixName);
  w.kv("policy", core::toString(r.policy));
  w.kv("measured_cycles", static_cast<std::uint64_t>(r.measuredCycles));
  w.kv("hit_max_cycles", r.hitMaxCycles);
  w.kv("system_ipc", r.systemIpc);
  w.kvArray("core_ipc", r.coreIpc);
  w.kvArray("core_committed", r.coreCommitted);
  w.kvArray("wpki", r.wpki);
  w.kvArray("mpki", r.mpki);
  w.kvArray("llc_hit_rate", r.llcHitRate);
  w.kvArray("bank_writes", r.bankWrites);
  w.kvArray("bank_max_frame_writes", r.bankMaxFrameWrites);
  w.kvArray("bank_lifetime_years", r.bankLifetimeYears);
  w.kvArray("bank_lifetime_years_hot_frame", r.bankLifetimeYearsHotFrame);
  w.kv("min_bank_lifetime_years", r.minBankLifetime());
  w.kv("non_critical_load_frac", r.nonCriticalLoadFrac);
  w.kv("cpt_accuracy", r.cptAccuracy);
  w.kv("cpt_critical_recall", r.cptCriticalRecall);
  w.kv("non_critical_fill_frac", r.nonCriticalFillFrac);
  w.kv("non_critical_write_frac", r.nonCriticalWriteFrac);
  w.kv("avg_noc_latency_cycles", r.avgNocLatencyCycles);
  w.kv("dram_row_hit_rate", r.dramRowHitRate);

  // v2 additions: graceful-degradation results (trivial when the fault
  // model is off — no dead frames, full live capacity).
  w.kvArray("bank_dead_frames", r.bankDeadFrames);
  w.kv("live_capacity_frac", r.liveCapacityFrac);
  w.kvArray("bank_degraded_lifetime_years", r.bankDegradedLifetimeYears);
  w.kv("degraded_capacity_lifetime_years", r.degradedCapacityLifetimeYears);
  w.key("fault_events");
  w.beginArray();
  for (const FaultEvent& ev : r.faultEvents) {
    w.beginObject();
    w.kv("cycle", static_cast<std::uint64_t>(ev.cycle));
    w.kv("bank", static_cast<std::uint64_t>(ev.bank));
    w.kv("set", static_cast<std::uint64_t>(ev.set));
    w.kv("way", static_cast<std::uint64_t>(ev.way));
    w.kv("writes", ev.writes);
    w.kv("injected", ev.injected);
    w.endObject();
  }
  w.endArray();

  // v4 addition: compression and bit-accurate wear, present only when the
  // engine ran.  Lifetimes here count effective writes = bits / 512; the
  // writes-based vectors above are the uncompressed charge for comparison.
  if (r.compressKind != compress::Kind::None) {
    w.key("compression");
    w.beginObject();
    w.kv("kind", compress::toString(r.compressKind));
    w.kv("writes", r.cmpWrites);
    w.kv("raw_fallbacks", r.cmpRawFallbacks);
    w.kv("zero_delta_writes", r.cmpZeroDeltaWrites);
    w.kvArray("size_hist_64bit_buckets",
              std::vector<std::uint64_t>(r.cmpSizeHist, r.cmpSizeHist + 8));
    w.kvArray("bank_bits_flipped", r.bankBitsFlipped);
    w.kvArray("bank_max_frame_bits", r.bankMaxFrameBits);
    w.kvArray("bank_lifetime_years_bits", r.bankLifetimeYearsBits);
    w.kvArray("bank_lifetime_years_bits_hot_frame", r.bankLifetimeYearsBitsHotFrame);
    w.kv("min_bank_lifetime_years_bits", r.minBankLifetimeBits());
    w.endObject();
  }

  if (!r.epochs.empty()) {
    w.key("epochs");
    telemetry::writeEpochSeries(w, r.epochs);

    // Per-bank lifetime projection over the epoch series, derived from the
    // cumulative "l3.b<N>.writes" columns (bank-level accounting, like
    // RunResult::bankLifetimeYears).
    const std::uint64_t numFrames = cfg.l3.bankBytes / kLineBytes;
    w.key("bank_lifetime_series");
    w.beginObject();
    for (std::uint32_t b = 0; b < cfg.l3.banks; ++b) {
      const std::string name = "l3.b" + std::to_string(b) + ".writes";
      std::vector<double> writes = r.epochs.column(name);
      if (writes.empty()) continue;
      w.kvArray("b" + std::to_string(b),
                rram::lifetimeSeriesYears(writes, r.epochs.cycles, numFrames,
                                          cfg.endurance));
    }
    w.endObject();
  }

  // v3 addition: the run's self-profile (profile= key).  Wall times are
  // nondeterministic, so the section exists only when profiling was on —
  // default-config reports keep their byte-for-byte comparability.
  if (r.profile.enabled) {
    w.key("profile");
    w.beginObject();
    w.kv("total_seconds", r.profile.totalSeconds);
    w.kv("overhead_est_seconds", r.profile.overheadEstSeconds);
    w.kv("share_sum", r.profile.shareSum());
    w.key("sections");
    w.beginArray();
    for (const telemetry::ProfileReport::Section& sec : r.profile.sections) {
      w.beginObject();
      w.kv("name", sec.name);
      w.kv("seconds", sec.seconds);
      w.kv("share", sec.share);
      w.kv("count", sec.count);
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
  w.endObject();
}

}  // namespace

std::string runReportJson(const std::string& benchName, const SystemConfig& cfg,
                          const std::vector<ReportEntry>& entries,
                          double wallSeconds, unsigned jobs,
                          const std::string& jobId) {
  std::ostringstream os;
  telemetry::JsonWriter w(os);
  w.beginObject();
  w.kv("schema", "renuca-run-report-v4");
  w.kv("bench", benchName);
  w.kv("generated_unix", telemetry::unixTime());
  w.kv("host", telemetry::hostName());
  w.kv("wall_seconds", wallSeconds);
  w.kv("jobs", static_cast<std::uint64_t>(jobs));
  // Client-assigned job id (service runs only).  Provenance like the
  // fields above — emitted before "config" and only when present, so
  // direct-vs-served comparisons from "config" on stay byte-identical.
  if (!jobId.empty()) w.kv("job_id", jobId);
  w.key("config");
  writeConfigEcho(w, cfg);
  w.key("runs");
  w.beginArray();
  for (const ReportEntry& entry : entries) writeRun(w, entry, cfg);
  w.endArray();
  w.endObject();
  os << '\n';
  return os.str();
}

bool writeRunReport(const std::string& path, const std::string& benchName,
                    const SystemConfig& cfg, const std::vector<ReportEntry>& entries,
                    double wallSeconds, unsigned jobs) {
  std::ofstream os(path);
  if (!os) {
    logMessage(LogLevel::Warn, "report", "cannot open '" + path + "' for writing");
    return false;
  }
  os << runReportJson(benchName, cfg, entries, wallSeconds, jobs);

  bool good = os.good();
  os.close();
  if (good) {
    logMessage(LogLevel::Info, "report",
               "wrote " + std::to_string(entries.size()) + " run(s) to " + path);
  } else {
    logMessage(LogLevel::Warn, "report", "write to '" + path + "' failed");
  }
  return good;
}

}  // namespace renuca::sim
