#include "sim/config.hpp"

#include <algorithm>
#include <sstream>

#include "common/log.hpp"

namespace renuca::sim {

SystemConfig::SystemConfig() {
  // Table I defaults.
  l1d.sizeBytes = 32 * 1024;
  l1d.ways = 4;
  l1d.latency = 2;
  l1d.occupancy = 1;

  l2.sizeBytes = 256 * 1024;
  l2.ways = 8;
  l2.latency = 5;
  l2.occupancy = 2;
}

void SystemConfig::applyOverrides(const KvConfig& kv) {
  instrPerCore = static_cast<std::uint64_t>(kv.getOr("instr_per_core",
                                                     static_cast<std::int64_t>(instrPerCore)));
  warmupInstrPerCore = static_cast<std::uint64_t>(
      kv.getOr("warmup", static_cast<std::int64_t>(warmupInstrPerCore)));
  prewarmInstrPerCore = static_cast<std::uint64_t>(
      kv.getOr("prewarm", static_cast<std::int64_t>(prewarmInstrPerCore)));
  seed = static_cast<std::uint64_t>(kv.getOr("seed", static_cast<std::int64_t>(seed)));
  if (auto p = kv.getString("policy")) policy = core::policyFromString(*p);
  cpt.thresholdPct = kv.getOr("threshold_pct", cpt.thresholdPct);
  coreCfg.robEntries =
      static_cast<std::uint32_t>(kv.getOr("rob_entries", static_cast<std::int64_t>(coreCfg.robEntries)));
  if (auto v = kv.getInt("l2_kb")) l2.sizeBytes = static_cast<std::uint64_t>(*v) * 1024;
  if (auto v = kv.getInt("l3_bank_kb")) l3.bankBytes = static_cast<std::uint64_t>(*v) * 1024;
  if (auto v = kv.getInt("cores")) numCores = static_cast<std::uint32_t>(*v);
  if (auto v = kv.getInt("cluster_size")) clusterSize = static_cast<std::uint32_t>(*v);
  forcePredictor = kv.getOr("force_predictor", forcePredictor);

  // Telemetry keys.
  epochInstrs = static_cast<std::uint64_t>(
      kv.getOr("epoch_instrs", static_cast<std::int64_t>(epochInstrs)));
  if (auto p = kv.getString("trace_json")) traceJsonPath = *p;
  if (auto v = kv.getInt("trace_sample")) {
    traceSampleEvery = static_cast<std::uint32_t>(std::max<std::int64_t>(1, *v));
  }
  if (auto p = kv.getString("log_level")) {
    if (auto lvl = logLevelFromString(*p)) {
      setLogLevel(*lvl);
    } else {
      logMessage(LogLevel::Warn, "config", "unknown log_level '" + *p + "' ignored");
    }
  }
}

std::string SystemConfig::summary() const {
  std::ostringstream os;
  os << "cores=" << numCores << " rob=" << coreCfg.robEntries
     << " L1D=" << l1d.sizeBytes / 1024 << "KB/" << l1d.ways << "w/" << l1d.latency << "cy"
     << " L2=" << l2.sizeBytes / 1024 << "KB/" << l2.ways << "w/" << l2.latency << "cy"
     << " L3=" << l3.banks << "x" << l3.bankBytes / 1024 / 1024 << "MB/" << l3.ways
     << "w/" << l3.latency << "cy"
     << " mesh=" << nocCfg.width << "x" << nocCfg.height
     << " dram=" << dramCfg.channels << "ch policy=" << core::toString(policy)
     << " threshold=" << cpt.thresholdPct << "%"
     << " instr/core=" << instrPerCore << " warmup=" << warmupInstrPerCore;
  return os.str();
}

SystemConfig defaultConfig() { return SystemConfig{}; }

SystemConfig l2Small() {
  SystemConfig cfg;
  cfg.l2.sizeBytes = 128 * 1024;
  return cfg;
}

SystemConfig l3Small() {
  SystemConfig cfg;
  cfg.l3.bankBytes = 1024 * 1024;
  return cfg;
}

SystemConfig robLarge() {
  SystemConfig cfg;
  cfg.coreCfg.robEntries = 168;
  return cfg;
}

SystemConfig singleCore() {
  SystemConfig cfg;
  cfg.numCores = 1;
  // Single-app characterization can afford a long fast-forward, which the
  // low-traffic/high-hit-rate apps need to reach their steady state.
  cfg.prewarmInstrPerCore = 2500000;
  cfg.l3.banks = 1;
  cfg.nocCfg.width = 1;
  cfg.nocCfg.height = 1;
  cfg.policy = core::PolicyKind::SNuca;
  cfg.forcePredictor = true;
  return cfg;
}

}  // namespace renuca::sim
