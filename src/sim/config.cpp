#include "sim/config.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace renuca::sim {

SystemConfig::SystemConfig() {
  // Table I defaults.
  l1d.sizeBytes = 32 * 1024;
  l1d.ways = 4;
  l1d.latency = 2;
  l1d.occupancy = 1;

  l2.sizeBytes = 256 * 1024;
  l2.ways = 8;
  l2.latency = 5;
  l2.occupancy = 2;
}

namespace {
/// Parses a comma-separated list of "bank:set:way[:value]" fault specs.
void parseFaultList(const KvConfig& kv, const std::string& key,
                    rram::ScheduledFault::Trigger trigger,
                    std::vector<rram::ScheduledFault>& out) {
  auto s = kv.getString(key);
  if (!s) return;
  std::size_t pos = 0;
  while (pos <= s->size()) {
    std::size_t comma = s->find(',', pos);
    std::string spec = comma == std::string::npos ? s->substr(pos)
                                                  : s->substr(pos, comma - pos);
    if (!spec.empty()) {
      rram::ScheduledFault sf;
      if (rram::parseFaultSpec(spec, trigger, sf)) {
        out.push_back(sf);
      } else {
        logMessage(LogLevel::Warn, "config",
                   key + ": malformed fault spec '" + spec + "' ignored");
      }
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
}
}  // namespace

void SystemConfig::applyOverrides(const KvConfig& kv) {
  instrPerCore = static_cast<std::uint64_t>(kv.getOr("instr_per_core",
                                                     static_cast<std::int64_t>(instrPerCore)));
  warmupInstrPerCore = static_cast<std::uint64_t>(
      kv.getOr("warmup", static_cast<std::int64_t>(warmupInstrPerCore)));
  prewarmInstrPerCore = static_cast<std::uint64_t>(
      kv.getOr("prewarm", static_cast<std::int64_t>(prewarmInstrPerCore)));
  seed = static_cast<std::uint64_t>(kv.getOr("seed", static_cast<std::int64_t>(seed)));
  if (auto p = kv.getString("policy")) policy = core::policyFromString(*p);
  cpt.thresholdPct = kv.getOr("threshold_pct", cpt.thresholdPct);
  coreCfg.robEntries =
      static_cast<std::uint32_t>(kv.getOr("rob_entries", static_cast<std::int64_t>(coreCfg.robEntries)));
  if (auto v = kv.getInt("l2_kb")) l2.sizeBytes = static_cast<std::uint64_t>(*v) * 1024;
  if (auto v = kv.getInt("l3_bank_kb")) l3.bankBytes = static_cast<std::uint64_t>(*v) * 1024;
  if (auto m = kv.getString("mesh")) {
    std::uint32_t w = 0, h = 0;
    if (noc::parseMeshSpec(*m, w, h)) {
      nocCfg.width = w;
      nocCfg.height = h;
      l3.banks = w * h;  // one LLC bank per mesh node (the NUCA invariant)
    } else {
      logMessage(LogLevel::Warn, "config",
                 "malformed mesh '" + *m + "' ignored (expected WxH, e.g. mesh=8x8)");
    }
  }
  if (auto v = kv.getInt("cores")) numCores = static_cast<std::uint32_t>(*v);
  if (auto v = kv.getInt("mc")) placement.numMcs = static_cast<std::uint32_t>(*v);
  if (auto e = kv.getString("mc_edge")) {
    noc::McEdge edge;
    if (noc::mcEdgeFromString(*e, edge)) {
      placement.mcEdge = edge;
    } else {
      logMessage(LogLevel::Warn, "config",
                 "unknown mc_edge '" + *e + "' ignored (did you mean '" +
                     noc::closestMcEdgeName(*e) + "'?)");
    }
  }
  if (auto p = kv.getString("placement")) {
    noc::PlacementConfig parsed = placement;
    std::string err = noc::parsePlacementSpec(*p, parsed);
    if (err.empty()) {
      placement = parsed;
    } else {
      logMessage(LogLevel::Warn, "config", "placement ignored: " + err);
    }
  }
  if (auto v = kv.getInt("cluster_size")) clusterSize = static_cast<std::uint32_t>(*v);
  forcePredictor = kv.getOr("force_predictor", forcePredictor);

  // Telemetry keys.
  epochInstrs = static_cast<std::uint64_t>(
      kv.getOr("epoch_instrs", static_cast<std::int64_t>(epochInstrs)));
  if (auto p = kv.getString("trace_json")) traceJsonPath = *p;
  if (auto p = kv.getString("snapshot_save")) snapshotSavePath = *p;
  if (auto p = kv.getString("snapshot_load")) snapshotLoadPath = *p;
  if (auto v = kv.getInt("trace_sample")) {
    traceSampleEvery = static_cast<std::uint32_t>(std::max<std::int64_t>(1, *v));
  }
  profileEnabled = kv.getOr("profile", profileEnabled);
  bruteForceTick = kv.getOr("brute_force_tick", bruteForceTick);
  if (auto p = kv.getString("log_level")) {
    if (auto lvl = logLevelFromString(*p)) {
      setLogLevel(*lvl);
    } else {
      logMessage(LogLevel::Warn, "config", "unknown log_level '" + *p + "' ignored");
    }
  }

  // Wear-out fault model keys.
  fault.enabled = kv.getOr("fault_enabled", fault.enabled);
  fault.seed = static_cast<std::uint64_t>(
      kv.getOr("fault_seed", static_cast<std::int64_t>(fault.seed)));
  fault.budgetWrites = kv.getOr("fault_budget_writes", fault.budgetWrites);
  fault.sigma = kv.getOr("fault_sigma", fault.sigma);
  fault.deadFrac = kv.getOr("fault_dead_frac", fault.deadFrac);
  parseFaultList(kv, "fault_inject", rram::ScheduledFault::Trigger::Immediate,
                 fault.schedule);
  parseFaultList(kv, "fault_at_writes", rram::ScheduledFault::Trigger::AtWrites,
                 fault.schedule);
  parseFaultList(kv, "fault_at_cycle", rram::ScheduledFault::Trigger::AtCycle,
                 fault.schedule);
  // Any fault key implies the model is wanted.
  if (kv.has("fault_budget_writes") || kv.has("fault_inject") ||
      kv.has("fault_at_writes") || kv.has("fault_at_cycle")) {
    if (!kv.has("fault_enabled")) fault.enabled = true;
  }

  // Compression keys.
  if (auto c = kv.getString("compress")) {
    compress::Kind kind;
    if (compress::parseKind(*c, kind)) {
      compress = kind;
    } else {
      logMessage(LogLevel::Warn, "config",
                 "unknown compress '" + *c +
                     "' ignored (expected none|bdi|fpc|bdi+fpc)");
    }
  }
  compressLatency = static_cast<std::uint32_t>(
      kv.getOr("compress_latency", static_cast<std::int64_t>(compressLatency)));
}

const KeyRegistry& configKeyRegistry() {
  static const KeyRegistry reg = [] {
    KeyRegistry r;
    const std::int64_t b1 = 1ll << 40;  // generous upper bounds for budgets
    r.intKey("instr_per_core", 1, b1)
        .intKey("warmup", 0, b1)
        .intKey("prewarm", 0, b1)
        .intKey("seed", 0, std::numeric_limits<std::int64_t>::max())
        .stringKey("policy")
        .doubleKey("threshold_pct", 0.0, 100.0)
        .intKey("rob_entries", 1, 1 << 20)
        .intKey("l2_kb", 1, 1 << 20)
        .intKey("l3_bank_kb", 1, 1 << 22)
        .intKey("cores", 1, 1024)
        .stringKey("mesh")
        .intKey("mc", 1, 64)
        .stringKey("mc_edge")
        .stringKey("placement")
        .intKey("cluster_size", 1, 1024)
        .boolKey("force_predictor")
        .intKey("epoch_instrs", 0, b1)
        .stringKey("trace_json")
        .stringKey("snapshot_save")
        .stringKey("snapshot_load")
        .stringKey("snapshot_dir")
        .intKey("trace_sample", 1, 1 << 30)
        .boolKey("profile")
        .boolKey("brute_force_tick")
        .stringKey("log_level")
        .boolKey("fault_enabled")
        .intKey("fault_seed", 0, std::numeric_limits<std::int64_t>::max())
        .doubleKey("fault_budget_writes", 0.0, 1e15)
        .doubleKey("fault_sigma", 0.0, 5.0)
        .doubleKey("fault_dead_frac", 0.0, 1.0)
        .stringKey("fault_inject")
        .stringKey("fault_at_writes")
        .stringKey("fault_at_cycle")
        .stringKey("compress")
        .intKey("compress_latency", 0, 1000)
        // Standard bench/example plumbing.
        .stringKey("report_json")
        .intKey("mixes", 1, 1 << 10)
        // Sweep-engine worker threads: 0 = one per hardware thread,
        // 1 = serial, N = N workers.  Never affects results, only wall
        // time (see sim/sweep.hpp's determinism contract).
        .intKey("jobs", 0, 1024)
        .boolKey("strict");
    return r;
  }();
  return reg;
}

namespace {
/// Cross-field topology checks layered on the per-key registry rules.
/// Only keys actually present in `kv` participate — validation cannot know
/// which preset a binary starts from (the singleCore rig is a 1x1 mesh),
/// so geometry-relative checks fire only when mesh= itself is given.
void crossValidateTopology(const KvConfig& kv, std::vector<ConfigError>& errors) {
  std::uint32_t w = 0, h = 0;
  bool haveMesh = false;
  if (auto m = kv.getString("mesh")) {
    if (noc::parseMeshSpec(*m, w, h)) {
      haveMesh = true;
    } else {
      errors.push_back({"mesh", "'" + *m + "' is not a WxH mesh (e.g. mesh=8x8)"});
    }
  }
  if (auto v = kv.getInt("mc")) {
    if (*v >= 1 && !isPow2(static_cast<std::uint64_t>(*v)))
      errors.push_back({"mc", "value " + std::to_string(*v) +
                                  " is not a power of two (DRAM channels"
                                  " interleave as channel % mc)"});
  }

  noc::PlacementConfig place;
  if (auto v = kv.getInt("mc"))
    if (*v >= 1) place.numMcs = static_cast<std::uint32_t>(*v);
  if (auto e = kv.getString("mc_edge")) {
    if (!noc::mcEdgeFromString(*e, place.mcEdge))
      errors.push_back({"mc_edge", "unknown scheme '" + *e + "' (did you mean '" +
                                       noc::closestMcEdgeName(*e) + "'?)"});
  }
  if (auto p = kv.getString("placement")) {
    const std::uint32_t mcsBefore = place.numMcs;
    const bool edgeBefore = place.mcEdge != noc::McEdge::Custom;
    std::string err = noc::parsePlacementSpec(*p, place);
    if (!err.empty()) {
      errors.push_back({"placement", err});
      return;
    }
    if (place.mcEdge == noc::McEdge::Custom) {
      if (kv.has("mc") && place.numMcs != mcsBefore)
        errors.push_back({"mc", "mc=" + std::to_string(mcsBefore) +
                                    " conflicts with the " +
                                    std::to_string(place.numMcs) +
                                    "-entry placement mc: list"});
      if (kv.has("mc_edge") && edgeBefore)
        errors.push_back({"mc_edge", "'" + kv.getOr("mc_edge", std::string()) +
                                         "' conflicts with the explicit"
                                         " placement mc: list"});
    }
  }
  if (!haveMesh) return;

  noc::NocConfig geom;
  geom.width = w;
  geom.height = h;
  const std::uint32_t nodes = w * h;
  // The default core count when cores= is absent alongside an explicit
  // mesh= is the Table-I 16 (mesh= implies the defaultConfig family).
  const std::uint32_t cores =
      static_cast<std::uint32_t>(kv.getOr("cores", std::int64_t{16}));
  for (const std::string& msg : noc::Topology::check(geom, cores, place))
    errors.push_back({"mesh", msg});
  if (auto v = kv.getInt("cluster_size")) {
    if (*v >= 1 && static_cast<std::uint64_t>(*v) > nodes)
      errors.push_back({"cluster_size",
                        "value " + std::to_string(*v) + " exceeds the " +
                            std::to_string(nodes) + "-bank " + *kv.getString("mesh") +
                            " mesh"});
  }
}
}  // namespace

std::vector<ConfigError> validateConfigKeys(const KvConfig& kv,
                                            const std::vector<std::string>& extraKeys) {
  std::vector<ConfigError> errors;
  if (extraKeys.empty()) {
    errors = configKeyRegistry().validate(kv);
  } else {
    KeyRegistry r = configKeyRegistry();
    for (const std::string& k : extraKeys) r.stringKey(k);
    errors = r.validate(kv);
  }
  crossValidateTopology(kv, errors);
  if (auto c = kv.getString("compress")) {
    compress::Kind kind;
    if (!compress::parseKind(*c, kind))
      errors.push_back({"compress", "unknown scheme '" + *c +
                                        "' (expected none|bdi|fpc|bdi+fpc)"});
  }
  return errors;
}

std::string SystemConfig::summary() const {
  std::ostringstream os;
  os << "cores=" << numCores << " rob=" << coreCfg.robEntries
     << " L1D=" << l1d.sizeBytes / 1024 << "KB/" << l1d.ways << "w/" << l1d.latency << "cy"
     << " L2=" << l2.sizeBytes / 1024 << "KB/" << l2.ways << "w/" << l2.latency << "cy"
     << " L3=" << l3.banks << "x" << l3.bankBytes / 1024 / 1024 << "MB/" << l3.ways
     << "w/" << l3.latency << "cy"
     << " mesh=" << nocCfg.width << "x" << nocCfg.height;
  // Keep the default header byte-identical to pre-placement builds.
  if (!noc::isDefaultPlacement(placement)) {
    os << " mc=" << placement.numMcs;
    if (placement.mcEdge != noc::McEdge::Corners)
      os << " mc_edge=" << noc::toString(placement.mcEdge);
    if (!placement.bankNodes.empty() || !placement.coreNodes.empty() ||
        placement.mcEdge == noc::McEdge::Custom)
      os << " placement="
         << noc::Topology(nocCfg, numCores, placement).placementKey();
  }
  // Ditto for compression: the suffix appears only when the axis is on.
  if (compress != compress::Kind::None) {
    os << " compress=" << compress::toString(compress)
       << " compress_latency=" << compressLatency;
  }
  os << " dram=" << dramCfg.channels << "ch policy=" << core::toString(policy)
     << " threshold=" << cpt.thresholdPct << "%"
     << " instr/core=" << instrPerCore << " warmup=" << warmupInstrPerCore;
  return os.str();
}

SystemConfig defaultConfig() { return SystemConfig{}; }

SystemConfig l2Small() {
  SystemConfig cfg;
  cfg.l2.sizeBytes = 128 * 1024;
  return cfg;
}

SystemConfig l3Small() {
  SystemConfig cfg;
  cfg.l3.bankBytes = 1024 * 1024;
  return cfg;
}

SystemConfig robLarge() {
  SystemConfig cfg;
  cfg.coreCfg.robEntries = 168;
  return cfg;
}

SystemConfig singleCore() {
  SystemConfig cfg;
  cfg.numCores = 1;
  // Single-app characterization can afford a long fast-forward, which the
  // low-traffic/high-hit-rate apps need to reach their steady state.
  cfg.prewarmInstrPerCore = 2500000;
  cfg.l3.banks = 1;
  cfg.nocCfg.width = 1;
  cfg.nocCfg.height = 1;
  cfg.policy = core::PolicyKind::SNuca;
  cfg.forcePredictor = true;
  return cfg;
}

}  // namespace renuca::sim
