// Topology/placement layer: who sits where on the mesh.
//
// MeshNoc models *timing* on a W x H grid of anonymous nodes; this layer
// owns the *placement*: which node hosts core i, which node hosts LLC bank
// b, and which nodes carry the memory controllers that DRAM channels hang
// off.  Every consumer (mapping policies, the memory system's NoC
// traversals, the fingerprint) asks the Topology instead of assuming the
// historical identity layout (core i == bank i == node i, MCs on the four
// corners).  The default-constructed placement reproduces that historical
// layout exactly, so Table-I configurations keep byte-identical results.
//
// MC routing model: DRAM channel ch is attached to the controller at
// mcNodeOfChannel(ch) = mcNodes[ch % numMcs] — the address-interleaved
// multi-MC scheme of "Optimal Placement of Cores, Caches and Memory
// Controllers in NoC" (arXiv 1607.04298).  LLC misses and write-backs
// traverse the mesh to that node before paying DRAM latency, so MC
// placement is visible to the latency (but not the functional) model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "noc/mesh.hpp"

namespace renuca::noc {

/// Named memory-controller placement schemes, resolved against the mesh
/// geometry by defaultMcNodes().  Custom takes explicit node ids
/// (PlacementConfig::mcNodes, via the placement= key).
enum class McEdge : std::uint8_t {
  Corners,   ///< The four mesh corners, round-robin (the legacy layout).
  Top,       ///< Evenly spaced along row 0.
  Bottom,    ///< Evenly spaced along row H-1.
  Left,      ///< Evenly spaced along column 0.
  Right,     ///< Evenly spaced along column W-1.
  Ring,      ///< Evenly spaced around the perimeter.
  Diagonal,  ///< Evenly spaced along the main diagonal.
  Center,    ///< The nodes nearest the mesh centroid.
  Custom,    ///< Explicit node list (placement=mc:...).
};

const char* toString(McEdge edge);
/// Parses a lowercase scheme name ("corners", "top", ...).  Custom is not
/// nameable — it is implied by an explicit placement=mc: list.
bool mcEdgeFromString(const std::string& name, McEdge& out);
/// Nearest nameable scheme by edit distance, for did-you-mean errors.
std::string closestMcEdgeName(const std::string& name);

/// Placement knobs layered on top of NocConfig geometry.  Empty vectors
/// mean "the default": identity core/bank maps, edge-scheme MC nodes.
struct PlacementConfig {
  std::uint32_t numMcs = 4;        ///< Memory controllers (power of two).
  McEdge mcEdge = McEdge::Corners;
  std::vector<std::uint32_t> mcNodes;    ///< Custom MC nodes (mcEdge == Custom).
  std::vector<std::uint32_t> bankNodes;  ///< bank -> node; empty = identity.
  std::vector<std::uint32_t> coreNodes;  ///< core -> node; empty = identity.
};

/// True when `p` is structurally the legacy default (4 corner MCs, identity
/// maps).  Cheap struct-level test used by summary()/fingerprint to keep
/// default-configuration output byte-identical to pre-placement builds.
bool isDefaultPlacement(const PlacementConfig& p);

/// Parses a "mesh=WxH" value.  Returns false (leaving w/h untouched) on
/// anything but two positive integers around a single 'x'.
bool parseMeshSpec(const std::string& spec, std::uint32_t& w, std::uint32_t& h);

/// Parses a placement= spec: ';'-separated groups of "mc:<nodes>",
/// "banks:<nodes>", "cores:<nodes>", each a comma-separated node-id list
/// (e.g. "mc:0,7,56,63;banks:63,62,...").  An mc: group switches mcEdge to
/// Custom and sets numMcs from the list length.  Returns an empty string on
/// success, else a human-readable error.
std::string parsePlacementSpec(const std::string& spec, PlacementConfig& out);

/// The node list an edge scheme resolves to on a given geometry.
std::vector<std::uint32_t> defaultMcNodes(const NocConfig& geom,
                                          std::uint32_t numMcs, McEdge edge);

class Topology {
 public:
  /// Aborts (RENUCA_ASSERT) on an invalid placement; run check() first when
  /// the inputs are user-supplied.
  explicit Topology(const NocConfig& geometry, std::uint32_t numCores,
                    const PlacementConfig& placement = {});

  std::uint32_t width() const { return geom_.width; }
  std::uint32_t height() const { return geom_.height; }
  std::uint32_t numNodes() const { return geom_.width * geom_.height; }
  std::uint32_t numCores() const { return numCores_; }
  /// One LLC bank per mesh node (the NUCA invariant).
  std::uint32_t numBanks() const { return numNodes(); }
  std::uint32_t numMcs() const { return static_cast<std::uint32_t>(mcNodes_.size()); }

  std::uint32_t xOf(std::uint32_t node) const { return node % geom_.width; }
  std::uint32_t yOf(std::uint32_t node) const { return node / geom_.width; }
  std::uint32_t nodeAt(std::uint32_t x, std::uint32_t y) const {
    return y * geom_.width + x;
  }
  /// Manhattan hop count (matches MeshNoc::hopCount — XY routing).
  std::uint32_t hopCount(std::uint32_t a, std::uint32_t b) const;

  std::uint32_t coreNode(CoreId core) const { return coreNodes_[core]; }
  std::uint32_t bankNode(BankId bank) const { return bankNodes_[bank]; }
  std::uint32_t mcNode(std::uint32_t mc) const { return mcNodes_[mc]; }
  /// The MC serving a DRAM channel (address-interleaved: ch % numMcs).
  std::uint32_t mcNodeOfChannel(std::uint32_t channel) const {
    return mcNodes_[channel % mcNodes_.size()];
  }
  /// Host of centralized structures (the Naive oracle's line directory).
  std::uint32_t centerNode() const { return numNodes() / 2; }

  const PlacementConfig& placement() const { return place_; }
  /// True when this placement is behaviourally the legacy default.
  bool isDefault() const { return isDefault_; }
  /// Canonical placement description ("mc=corners:0,3,12,15;banks=id;
  /// cores=id") — stamped into the warm-state fingerprint (non-default
  /// placements only) so snapshot restore into a different topology is
  /// refused.
  std::string placementKey() const;

  /// Validates a placement against a geometry and core count without
  /// constructing.  Returns every problem found; empty = valid.
  static std::vector<std::string> check(const NocConfig& geom, std::uint32_t numCores,
                                        const PlacementConfig& placement);

 private:
  NocConfig geom_;
  std::uint32_t numCores_;
  PlacementConfig place_;
  std::vector<std::uint32_t> coreNodes_;  // materialized (identity when empty)
  std::vector<std::uint32_t> bankNodes_;
  std::vector<std::uint32_t> mcNodes_;
  bool isDefault_ = false;
};

}  // namespace renuca::noc
