#include "noc/mesh.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/log.hpp"
#include "serial/archive.hpp"

namespace renuca::noc {

MeshNoc::MeshNoc(const NocConfig& config) : cfg_(config), stats_("noc") {
  RENUCA_ASSERT(cfg_.width > 0 && cfg_.height > 0, "mesh must be non-empty");
  linkBusy_.assign(static_cast<std::size_t>(numNodes()) * 4, BusyCalendar{});
  linkFlits_.assign(static_cast<std::size_t>(numNodes()) * 4, 0);
  packetCount_ = stats_.counter("packets");
  flitHopCount_ = stats_.counter("flit_hops");
}

std::uint32_t MeshNoc::hopCount(std::uint32_t src, std::uint32_t dst) const {
  int dx = static_cast<int>(xOf(dst)) - static_cast<int>(xOf(src));
  int dy = static_cast<int>(yOf(dst)) - static_cast<int>(yOf(src));
  return static_cast<std::uint32_t>(std::abs(dx) + std::abs(dy));
}

Cycle MeshNoc::traverse(std::uint32_t src, std::uint32_t dst, Cycle departAt,
                        std::uint32_t flits) {
  RENUCA_ASSERT(src < numNodes() && dst < numNodes(), "node out of range");
  if (src == dst) return departAt;

  Cycle t = departAt;
  std::uint32_t x = xOf(src), y = yOf(src);
  const std::uint32_t dstX = xOf(dst), dstY = yOf(dst);
  std::uint32_t hops = 0;

  auto crossLink = [&](Dir dir, std::uint32_t nx, std::uint32_t ny) {
    std::size_t idx = linkIndex(nodeAt(x, y), dir);
    Cycle start = linkBusy_[idx].reserve(
        t, static_cast<Cycle>(flits) * cfg_.linkFlitCycles);
    linkFlits_[idx] += flits;
    t = start + cfg_.hopLatency;
    x = nx;
    y = ny;
    ++hops;
  };

  while (x != dstX) {
    if (x < dstX) {
      crossLink(Dir::East, x + 1, y);
    } else {
      crossLink(Dir::West, x - 1, y);
    }
  }
  while (y != dstY) {
    if (y < dstY) {
      crossLink(Dir::South, x, y + 1);
    } else {
      crossLink(Dir::North, x, y - 1);
    }
  }

  ++packets_;
  totalLatency_ += t - departAt;
  ++*packetCount_;
  *flitHopCount_ += static_cast<std::uint64_t>(flits) * hops;
  return t;
}

Cycle MeshNoc::roundTrip(std::uint32_t src, std::uint32_t dst, Cycle departAt) {
  Cycle there = traverse(src, dst, departAt, cfg_.controlFlits);
  return traverse(dst, src, there, cfg_.dataFlits);
}

std::uint64_t MeshNoc::linkTraffic(std::uint32_t node, Dir dir) const {
  return linkFlits_[linkIndex(node, dir)];
}

void MeshNoc::saveState(serial::ArchiveWriter& ar) const {
  ar.putU32(numNodes());
  ar.putU32(cfg_.width);
  ar.putU32(cfg_.height);
}

bool MeshNoc::loadState(serial::ArchiveReader& ar) {
  std::uint32_t nodes = ar.getU32();
  if (!ar.ok() || nodes != numNodes()) {
    logMessage(LogLevel::Warn, "serial", "noc: snapshot mesh size mismatch");
    return false;
  }
  // Pre-placement snapshots recorded only the node count; accept them as
  // long as the count matches (they were all 4x4 or 1x1, where the count
  // pins the shape).  Newer snapshots also carry the geometry, so an 8x4
  // snapshot cannot restore into a 4x8 run.
  if (ar.remaining() == 0) return true;
  std::uint32_t w = ar.getU32();
  std::uint32_t h = ar.getU32();
  if (!ar.ok() || w != cfg_.width || h != cfg_.height) {
    logMessage(LogLevel::Warn, "serial", "noc: snapshot mesh geometry mismatch");
    return false;
  }
  return ar.remaining() == 0;
}

double MeshNoc::avgPacketLatency() const {
  return packets_ ? static_cast<double>(totalLatency_) / static_cast<double>(packets_) : 0.0;
}

}  // namespace renuca::noc
