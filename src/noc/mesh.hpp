// 4x4 mesh network-on-chip with XY routing and link contention.
//
// Each LLC bank sits on one mesh node next to its core (paper Table I:
// 4x4 mesh).  Packets are routed X-then-Y; every hop crosses one link.
// Links are modelled with busy-until reservations: a packet of F flits
// holds a link for F cycles, so concurrent traffic through the same link
// queues up.  This is what lets placement policies *feel* distance and
// congestion — e.g. the Naive oracle funnels all fills to the current
// minimum-write bank and pays for the resulting hot links.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/busy_calendar.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "serial/checkpointable.hpp"

namespace renuca::noc {

struct NocConfig {
  std::uint32_t width = 4;
  std::uint32_t height = 4;
  std::uint32_t hopLatency = 8;      ///< Router pipeline + link traversal per hop.
  std::uint32_t linkFlitCycles = 1;  ///< Link occupancy per flit.
  std::uint32_t controlFlits = 1;    ///< Flits in a request (no data) packet.
  std::uint32_t dataFlits = 4;       ///< Flits in a 64 B data packet.
};

/// Identifies one directed link: from node `node` toward direction `dir`.
enum class Dir : std::uint8_t { East = 0, West = 1, North = 2, South = 3 };

class MeshNoc : public serial::Checkpointable {
 public:
  explicit MeshNoc(const NocConfig& config);

  std::uint32_t numNodes() const { return cfg_.width * cfg_.height; }
  std::uint32_t xOf(std::uint32_t node) const { return node % cfg_.width; }
  std::uint32_t yOf(std::uint32_t node) const { return node / cfg_.width; }
  std::uint32_t nodeAt(std::uint32_t x, std::uint32_t y) const { return y * cfg_.width + x; }

  /// Manhattan hop count between two nodes.
  std::uint32_t hopCount(std::uint32_t src, std::uint32_t dst) const;

  /// Sends a packet of `flits` flits from src to dst departing at `departAt`;
  /// returns the arrival cycle.  Reserves every traversed link, so later
  /// packets through the same links see the queueing.  src == dst returns
  /// departAt (local access, no network).
  Cycle traverse(std::uint32_t src, std::uint32_t dst, Cycle departAt,
                 std::uint32_t flits);

  /// Convenience: one control packet there + one data packet back.
  Cycle roundTrip(std::uint32_t src, std::uint32_t dst, Cycle departAt);

  const NocConfig& config() const { return cfg_; }
  const StatSet& stats() const { return stats_; }
  /// Flits carried by each directed link, indexed [node][dir].
  std::uint64_t linkTraffic(std::uint32_t node, Dir dir) const;
  double avgPacketLatency() const;

  // Checkpointing: the mesh holds only transient timing state (link
  // busy-until calendars) and statistics, both excluded by the
  // serialization contract.  The section carries just a geometry marker so
  // that loading a snapshot into a differently sized mesh is rejected.
  void saveState(serial::ArchiveWriter& ar) const override;
  bool loadState(serial::ArchiveReader& ar) override;

 private:
  std::size_t linkIndex(std::uint32_t node, Dir dir) const {
    return static_cast<std::size_t>(node) * 4 + static_cast<std::size_t>(dir);
  }

  NocConfig cfg_;
  std::vector<BusyCalendar> linkBusy_;   // [node*4+dir]
  std::vector<std::uint64_t> linkFlits_; // [node*4+dir]
  StatSet stats_;
  std::uint64_t* packetCount_ = nullptr;   ///< Handle into stats_ (hot path).
  std::uint64_t* flitHopCount_ = nullptr;  ///< Handle into stats_ (hot path).
  std::uint64_t packets_ = 0;
  std::uint64_t totalLatency_ = 0;
};

}  // namespace renuca::noc
