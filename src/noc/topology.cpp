#include "noc/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/log.hpp"

namespace renuca::noc {

namespace {

struct EdgeName {
  McEdge edge;
  const char* name;
};

// Custom is deliberately absent: it is implied by an explicit mc: list in
// placement=, never spelled as an mc_edge= value.
constexpr EdgeName kEdgeNames[] = {
    {McEdge::Corners, "corners"}, {McEdge::Top, "top"},
    {McEdge::Bottom, "bottom"},   {McEdge::Left, "left"},
    {McEdge::Right, "right"},     {McEdge::Ring, "ring"},
    {McEdge::Diagonal, "diagonal"}, {McEdge::Center, "center"},
};

std::size_t editDistance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      std::size_t next = std::min({row[j] + 1, row[j - 1] + 1,
                                   diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = row[j];
      row[j] = next;
    }
  }
  return row[b.size()];
}

/// Parses a non-negative integer occupying the whole of `s`.
bool parseU32(const std::string& s, std::uint32_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  if (v > 0xffffffffull) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

std::vector<std::string> splitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t end = s.find(sep, start);
    if (end == std::string::npos) end = s.size();
    parts.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

/// The i-th of n evenly spaced positions along a length-L edge (midpoint
/// rule, so four MCs on an 8-wide edge land at columns 1,3,5,7).
std::uint32_t spaced(std::uint32_t i, std::uint32_t n, std::uint32_t len) {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(2 * i + 1) * len) / (2ull * n));
}

/// Perimeter nodes clockwise from (0,0).  Degenerate 1-wide / 1-tall meshes
/// yield each node exactly once.
std::vector<std::uint32_t> perimeterNodes(const NocConfig& g) {
  const std::uint32_t w = g.width, h = g.height;
  auto at = [&](std::uint32_t x, std::uint32_t y) { return y * w + x; };
  std::vector<std::uint32_t> p;
  for (std::uint32_t x = 0; x < w; ++x) p.push_back(at(x, 0));
  for (std::uint32_t y = 1; y < h; ++y) p.push_back(at(w - 1, y));
  if (h > 1)
    for (std::uint32_t x = w - 1; x-- > 0;) p.push_back(at(x, h - 1));
  if (w > 1)
    for (std::uint32_t y = h - 1; y-- > 1;) p.push_back(at(0, y));
  return p;
}

void appendList(std::ostringstream& os, const std::vector<std::uint32_t>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ',';
    os << v[i];
  }
}

}  // namespace

const char* toString(McEdge edge) {
  for (const auto& e : kEdgeNames)
    if (e.edge == edge) return e.name;
  return "custom";
}

bool mcEdgeFromString(const std::string& name, McEdge& out) {
  for (const auto& e : kEdgeNames) {
    if (name == e.name) {
      out = e.edge;
      return true;
    }
  }
  return false;
}

std::string closestMcEdgeName(const std::string& name) {
  std::size_t best = std::string::npos;
  std::string bestName = kEdgeNames[0].name;
  for (const auto& e : kEdgeNames) {
    std::size_t d = editDistance(name, e.name);
    if (d < best) {
      best = d;
      bestName = e.name;
    }
  }
  return bestName;
}

bool isDefaultPlacement(const PlacementConfig& p) {
  return p.numMcs == 4 && p.mcEdge == McEdge::Corners && p.mcNodes.empty() &&
         p.bankNodes.empty() && p.coreNodes.empty();
}

bool parseMeshSpec(const std::string& spec, std::uint32_t& w, std::uint32_t& h) {
  std::size_t x = spec.find_first_of("xX");
  if (x == std::string::npos) return false;
  std::uint32_t pw = 0, ph = 0;
  if (!parseU32(spec.substr(0, x), pw)) return false;
  if (!parseU32(spec.substr(x + 1), ph)) return false;
  if (pw == 0 || ph == 0) return false;
  w = pw;
  h = ph;
  return true;
}

std::string parsePlacementSpec(const std::string& spec, PlacementConfig& out) {
  if (spec.empty()) return "empty placement spec";
  for (const std::string& group : splitOn(spec, ';')) {
    if (group.empty()) continue;  // tolerate trailing ';'
    std::size_t colon = group.find(':');
    if (colon == std::string::npos)
      return "group '" + group + "' has no ':' (expected mc:<ids>, banks:<ids>, or cores:<ids>)";
    std::string name = group.substr(0, colon);
    std::vector<std::uint32_t> ids;
    for (const std::string& tok : splitOn(group.substr(colon + 1), ',')) {
      std::uint32_t id = 0;
      if (!parseU32(tok, id))
        return "'" + tok + "' in the " + name + ": list is not a node id";
      ids.push_back(id);
    }
    if (name == "mc") {
      out.mcEdge = McEdge::Custom;
      out.mcNodes = ids;
      out.numMcs = static_cast<std::uint32_t>(ids.size());
    } else if (name == "banks") {
      out.bankNodes = ids;
    } else if (name == "cores") {
      out.coreNodes = ids;
    } else {
      return "unknown placement group '" + name + "' (expected mc, banks, or cores)";
    }
  }
  return {};
}

std::vector<std::uint32_t> defaultMcNodes(const NocConfig& geom,
                                          std::uint32_t numMcs, McEdge edge) {
  const std::uint32_t w = geom.width, h = geom.height, n = w * h;
  std::vector<std::uint32_t> mcs(numMcs);
  switch (edge) {
    case McEdge::Corners: {
      // The legacy layout: dramAccess historically routed channel ch to
      // corners[ch % 4]; keep that exact order so default fingerprints and
      // latencies are unchanged.
      const std::uint32_t corners[4] = {0, w - 1, w * (h - 1), w * h - 1};
      for (std::uint32_t i = 0; i < numMcs; ++i) mcs[i] = corners[i % 4];
      break;
    }
    case McEdge::Top:
      for (std::uint32_t i = 0; i < numMcs; ++i) mcs[i] = spaced(i, numMcs, w);
      break;
    case McEdge::Bottom:
      for (std::uint32_t i = 0; i < numMcs; ++i)
        mcs[i] = w * (h - 1) + spaced(i, numMcs, w);
      break;
    case McEdge::Left:
      for (std::uint32_t i = 0; i < numMcs; ++i)
        mcs[i] = w * spaced(i, numMcs, h);
      break;
    case McEdge::Right:
      for (std::uint32_t i = 0; i < numMcs; ++i)
        mcs[i] = w * spaced(i, numMcs, h) + (w - 1);
      break;
    case McEdge::Ring: {
      std::vector<std::uint32_t> perim = perimeterNodes(geom);
      const std::uint32_t p = static_cast<std::uint32_t>(perim.size());
      for (std::uint32_t i = 0; i < numMcs; ++i)
        mcs[i] = perim[spaced(i, numMcs, p) % p];
      break;
    }
    case McEdge::Diagonal:
      for (std::uint32_t i = 0; i < numMcs; ++i)
        mcs[i] = spaced(i, numMcs, h) * w + spaced(i, numMcs, w);
      break;
    case McEdge::Center: {
      // Rank every node by Manhattan distance from the mesh centroid
      // (doubled to stay integral), ties broken by node id.
      std::vector<std::uint32_t> order(n);
      for (std::uint32_t v = 0; v < n; ++v) order[v] = v;
      auto centrality = [&](std::uint32_t v) {
        std::int64_t dx = 2 * static_cast<std::int64_t>(v % w) - (w - 1);
        std::int64_t dy = 2 * static_cast<std::int64_t>(v / w) - (h - 1);
        return std::llabs(dx) + std::llabs(dy);
      };
      std::stable_sort(order.begin(), order.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return centrality(a) < centrality(b);
                       });
      for (std::uint32_t i = 0; i < numMcs; ++i) mcs[i] = order[i % n];
      break;
    }
    case McEdge::Custom:
      RENUCA_ASSERT(false, "Custom MC placement has no default node list");
      break;
  }
  return mcs;
}

Topology::Topology(const NocConfig& geometry, std::uint32_t numCores,
                   const PlacementConfig& placement)
    : geom_(geometry), numCores_(numCores), place_(placement) {
  std::vector<std::string> problems = check(geometry, numCores, placement);
  RENUCA_ASSERT(problems.empty(), problems.front());

  const std::uint32_t n = numNodes();
  if (place_.coreNodes.empty()) {
    coreNodes_.resize(numCores_);
    for (std::uint32_t c = 0; c < numCores_; ++c) coreNodes_[c] = c;
  } else {
    coreNodes_ = place_.coreNodes;
  }
  if (place_.bankNodes.empty()) {
    bankNodes_.resize(n);
    for (std::uint32_t b = 0; b < n; ++b) bankNodes_[b] = b;
  } else {
    bankNodes_ = place_.bankNodes;
  }
  mcNodes_ = place_.mcEdge == McEdge::Custom
                 ? place_.mcNodes
                 : defaultMcNodes(geom_, place_.numMcs, place_.mcEdge);
  isDefault_ = isDefaultPlacement(place_);
}

std::uint32_t Topology::hopCount(std::uint32_t a, std::uint32_t b) const {
  std::uint32_t ax = xOf(a), ay = yOf(a), bx = xOf(b), by = yOf(b);
  std::uint32_t dx = ax > bx ? ax - bx : bx - ax;
  std::uint32_t dy = ay > by ? ay - by : by - ay;
  return dx + dy;
}

std::string Topology::placementKey() const {
  std::ostringstream os;
  os << "mc=" << toString(place_.mcEdge) << ':';
  appendList(os, mcNodes_);
  os << ";banks=";
  if (place_.bankNodes.empty()) {
    os << "id";
  } else {
    appendList(os, bankNodes_);
  }
  os << ";cores=";
  if (place_.coreNodes.empty()) {
    os << "id";
  } else {
    appendList(os, coreNodes_);
  }
  return os.str();
}

std::vector<std::string> Topology::check(const NocConfig& geom,
                                         std::uint32_t numCores,
                                         const PlacementConfig& placement) {
  std::vector<std::string> problems;
  auto fail = [&](const std::string& msg) { problems.push_back(msg); };

  if (geom.width == 0 || geom.height == 0) {
    fail("mesh must be at least 1x1");
    return problems;  // everything below divides by the geometry
  }
  const std::uint32_t n = geom.width * geom.height;
  std::ostringstream dim;
  dim << geom.width << 'x' << geom.height;
  const std::string mesh = dim.str();

  if (numCores == 0) fail("at least one core is required");
  if (placement.coreNodes.empty()) {
    if (numCores > n)
      fail("cores=" + std::to_string(numCores) + " exceeds the " + mesh +
           " mesh's " + std::to_string(n) + " nodes");
  } else {
    if (placement.coreNodes.size() != numCores)
      fail("placement cores: list has " +
           std::to_string(placement.coreNodes.size()) + " entries but cores=" +
           std::to_string(numCores));
    std::vector<std::uint32_t> sorted = placement.coreNodes;
    std::sort(sorted.begin(), sorted.end());
    for (std::uint32_t v : placement.coreNodes)
      if (v >= n) {
        fail("placement cores: node " + std::to_string(v) +
             " is outside the " + mesh + " mesh");
        break;
      }
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
      fail("placement cores: list assigns two cores to the same node");
  }

  if (!placement.bankNodes.empty()) {
    // One bank per node is the NUCA invariant, so a custom bank map must be
    // a permutation of the node ids.
    if (placement.bankNodes.size() != n) {
      fail("placement banks: list has " +
           std::to_string(placement.bankNodes.size()) + " entries; the " +
           mesh + " mesh needs one bank per node (" + std::to_string(n) + ")");
    } else {
      std::vector<std::uint32_t> sorted = placement.bankNodes;
      std::sort(sorted.begin(), sorted.end());
      for (std::uint32_t b = 0; b < n; ++b)
        if (sorted[b] != b) {
          fail("placement banks: list is not a permutation of nodes 0.." +
               std::to_string(n - 1));
          break;
        }
    }
  }

  if (placement.mcEdge == McEdge::Custom) {
    if (placement.mcNodes.empty())
      fail("placement mc: list is empty");
    if (placement.numMcs != placement.mcNodes.size())
      fail("mc=" + std::to_string(placement.numMcs) + " conflicts with the " +
           std::to_string(placement.mcNodes.size()) +
           "-entry placement mc: list");
    for (std::uint32_t v : placement.mcNodes)
      if (v >= n) {
        fail("placement mc: node " + std::to_string(v) + " is outside the " +
             mesh + " mesh");
        break;
      }
  } else {
    if (placement.numMcs == 0) fail("at least one memory controller is required");
    if (!placement.mcNodes.empty())
      fail("mc_edge=" + std::string(toString(placement.mcEdge)) +
           " conflicts with an explicit placement mc: list");
  }

  return problems;
}

}  // namespace renuca::noc
