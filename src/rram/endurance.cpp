#include "rram/endurance.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/stats.hpp"

namespace renuca::rram {

namespace {
double lifetimeFromRate(double writes, Cycle measuredCycles, const EnduranceConfig& cfg) {
  if (measuredCycles == 0) return cfg.maxYears;
  double seconds = static_cast<double>(measuredCycles) / cfg.coreFreqHz;
  if (writes <= 0.0) return cfg.maxYears;
  double rate = writes / seconds;  // writes per second to the limiting cell(s)
  double years = cfg.writesPerCell / rate / kSecondsPerYear;
  return std::min(years, cfg.maxYears);
}
}  // namespace

double bankLifetimeYears(std::uint64_t maxFrameWrites, Cycle measuredCycles,
                         const EnduranceConfig& cfg) {
  return lifetimeFromRate(static_cast<double>(maxFrameWrites), measuredCycles, cfg);
}

double bankLifetimeYearsIdeal(std::uint64_t totalBankWrites, std::uint64_t numFrames,
                              Cycle measuredCycles, const EnduranceConfig& cfg) {
  RENUCA_ASSERT(numFrames > 0, "bank must have frames");
  double perFrame = static_cast<double>(totalBankWrites) / static_cast<double>(numFrames);
  return lifetimeFromRate(perFrame, measuredCycles, cfg);
}

double bankLifetimeYearsBits(std::uint64_t maxFrameBits, Cycle measuredCycles,
                             const EnduranceConfig& cfg) {
  return lifetimeFromRate(static_cast<double>(maxFrameBits) / kLineBitsPerFrame,
                          measuredCycles, cfg);
}

double bankLifetimeYearsBitsIdeal(std::uint64_t totalBankBits, std::uint64_t numFrames,
                                  Cycle measuredCycles, const EnduranceConfig& cfg) {
  RENUCA_ASSERT(numFrames > 0, "bank must have frames");
  double perFrame = static_cast<double>(totalBankBits) /
                    (kLineBitsPerFrame * static_cast<double>(numFrames));
  return lifetimeFromRate(perFrame, measuredCycles, cfg);
}

std::vector<double> lifetimeSeriesYears(const std::vector<double>& cumulativeWrites,
                                        const std::vector<Cycle>& cycles,
                                        std::uint64_t numFrames,
                                        const EnduranceConfig& cfg) {
  RENUCA_ASSERT(cumulativeWrites.size() == cycles.size(),
                "lifetime series inputs must align");
  RENUCA_ASSERT(numFrames > 0, "bank must have frames");
  std::vector<double> out;
  out.reserve(cumulativeWrites.size());
  for (std::size_t i = 0; i < cumulativeWrites.size(); ++i) {
    double perFrame = cumulativeWrites[i] / static_cast<double>(numFrames);
    out.push_back(lifetimeFromRate(perFrame, cycles[i], cfg));
  }
  return out;
}

LifetimeAggregator::LifetimeAggregator(std::uint32_t numBanks) : numBanks_(numBanks) {
  RENUCA_ASSERT(numBanks > 0, "aggregator needs at least one bank");
}

void LifetimeAggregator::addRun(const std::vector<double>& perBankYears) {
  RENUCA_ASSERT(perBankYears.size() == numBanks_, "per-bank lifetime vector size mismatch");
  runs_.push_back(perBankYears);
}

std::vector<double> LifetimeAggregator::harmonicPerBank() const {
  std::vector<double> out(numBanks_, 0.0);
  for (std::uint32_t b = 0; b < numBanks_; ++b) {
    std::vector<double> samples;
    samples.reserve(runs_.size());
    for (const auto& run : runs_) samples.push_back(run[b]);
    out[b] = harmonicMean(samples);
  }
  return out;
}

double LifetimeAggregator::harmonicOverall() const {
  std::vector<double> samples;
  samples.reserve(runs_.size() * numBanks_);
  for (const auto& run : runs_) {
    samples.insert(samples.end(), run.begin(), run.end());
  }
  return harmonicMean(samples);
}

double LifetimeAggregator::rawMinimum() const {
  double best = 0.0;
  bool first = true;
  for (const auto& run : runs_) {
    for (double y : run) {
      if (first || y < best) {
        best = y;
        first = false;
      }
    }
  }
  return first ? 0.0 : best;
}

double LifetimeAggregator::harmonicSpread() const {
  std::vector<double> h = harmonicPerBank();
  if (h.empty()) return 1.0;
  double lo = *std::min_element(h.begin(), h.end());
  double hi = *std::max_element(h.begin(), h.end());
  return lo > 0 ? hi / lo : 0.0;
}

}  // namespace renuca::rram
