// ReRAM endurance and lifetime model.
//
// The paper (§V.A) considers a ReRAM cache line worn out beyond 1e11
// writes.  Every LLC bank tracks per-frame (set,way) write counts during
// the measurement window; a bank's lifetime is bounded by its hottest
// frame:
//
//   lifetime_years = endurance / (maxFrameWrites / simulatedSeconds)
//
// where simulatedSeconds = measuredCycles / coreFrequency.  Because
// lifetimes are *rates* extrapolated from a steady-state window, they
// converge with short windows — which is what lets a laptop-scale run
// reproduce the paper's multi-week gem5 shape.
//
// Two aggregations from the paper:
//  * harmonic-mean lifetime per bank across workloads (Figs 3, 12, 13,
//    15, 17) — harmonic, so a workload that kills a bank dominates;
//  * raw minimum lifetime — the minimum over all banks and all workloads
//    (Table III).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace renuca::rram {

struct EnduranceConfig {
  double writesPerCell = 1e11;  ///< Cell endurance (paper: 1e11 writes).
  double coreFreqHz = 2.4e9;    ///< 2.4 GHz cores (Table I).
  /// Lifetimes are clamped here so that near-idle banks (whose write rate
  /// is ~0 in a finite window) do not produce unbounded numbers.
  double maxYears = 30.0;
};

inline constexpr double kSecondsPerYear = 365.25 * 24 * 3600;
/// Cells per frame for the bit-accurate accounting: a 64-byte line.
inline constexpr double kLineBitsPerFrame = 512.0;

/// Lifetime bound from the hottest frame of a bank.
double bankLifetimeYears(std::uint64_t maxFrameWrites, Cycle measuredCycles,
                         const EnduranceConfig& cfg);

/// Lifetime under *ideal intra-bank wear-leveling* (every frame absorbs an
/// equal share); used by the endurance-accounting ablation.
double bankLifetimeYearsIdeal(std::uint64_t totalBankWrites, std::uint64_t numFrames,
                              Cycle measuredCycles, const EnduranceConfig& cfg);

// Bit-accurate variants for compressed banks (DESIGN.md §18): wear is the
// number of cells actually flipped, so "effective writes" = bits / 512 —
// a compressed write that flips 128 cells spends a quarter of a full-line
// write.  The uncompressed figures keep the classic full-line accounting,
// which is exactly the writes-based functions above.

/// Hottest-frame lifetime from the frame's flipped-bit count.
double bankLifetimeYearsBits(std::uint64_t maxFrameBits, Cycle measuredCycles,
                             const EnduranceConfig& cfg);

/// Ideal wear-leveled lifetime from the bank's total flipped bits.
double bankLifetimeYearsBitsIdeal(std::uint64_t totalBankBits, std::uint64_t numFrames,
                                  Cycle measuredCycles, const EnduranceConfig& cfg);

/// Per-epoch lifetime projection from a cumulative-writes time series
/// (telemetry): element i is the bank-level (ideal wear-leveled) lifetime
/// extrapolated from the write rate observed up to cumulativeWrites[i] at
/// cycles[i].  Inputs must be the same length.
std::vector<double> lifetimeSeriesYears(const std::vector<double>& cumulativeWrites,
                                        const std::vector<Cycle>& cycles,
                                        std::uint64_t numFrames,
                                        const EnduranceConfig& cfg);

/// Accumulates per-bank lifetimes across workloads and produces the
/// paper's two aggregate metrics.
class LifetimeAggregator {
 public:
  explicit LifetimeAggregator(std::uint32_t numBanks);

  /// Records one workload's per-bank lifetimes (numBanks entries).
  void addRun(const std::vector<double>& perBankYears);

  std::uint32_t numBanks() const { return numBanks_; }
  std::uint32_t numRuns() const { return static_cast<std::uint32_t>(runs_.size()); }

  /// Harmonic mean across workloads, per bank (Fig 3 / Fig 12 bars).
  std::vector<double> harmonicPerBank() const;
  /// Harmonic mean over every (bank, workload) sample.
  double harmonicOverall() const;
  /// Minimum lifetime over all banks and workloads (Table III).
  double rawMinimum() const;
  /// Max-to-min spread of the harmonic per-bank means (wear-leveling
  /// quality; 1.0 = perfectly level).
  double harmonicSpread() const;

 private:
  std::uint32_t numBanks_;
  std::vector<std::vector<double>> runs_;  // [run][bank]
};

}  // namespace renuca::rram
