// ReRAM wear-out fault model: per-frame endurance budgets with seeded
// process variation, deterministic fault injection, and the
// degraded-capacity lifetime metric.
//
// The endurance module extrapolates lifetimes analytically from write
// rates; this module models what happens *after* a cell exceeds its write
// budget.  A worn-out frame becomes stuck-at (its data is unreliable, so
// the frame is disabled and its line discarded/relocated), the bank keeps
// serving the set's surviving ways, and capacity erodes frame by frame.
// That turns the paper's wear-spreading claim into a measurable quantity:
// *time until X% of the LLC's frames are dead* (degraded-capacity
// lifetime), not just the raw-minimum first-failure bound.
//
// Two operating scales:
//  * In-window wear-out: `budgetWrites` sets a simulation-scale mean
//    budget (hundreds/thousands of writes) so frames actually die inside
//    a short measurement window, exercising the degradation machinery.
//  * Analytic extrapolation: degradedCapacityLifetimeYears() projects each
//    frame's measured write rate against its full-scale budget
//    (writesPerCell x its process-variation multiplier) and reports the
//    time at which the dead fraction crosses the threshold.
//
// Determinism: all per-frame variation derives from (seed, bank, frame)
// through Pcg32, so the same fault_seed= reproduces the same fault
// schedule bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "rram/endurance.hpp"
#include "serial/checkpointable.hpp"

namespace renuca::rram {

/// One externally scheduled fault (deterministic injection API).
struct ScheduledFault {
  enum class Trigger : std::uint8_t {
    Immediate,  ///< Injected at the start of the measurement window.
    AtWrites,   ///< Fires when the frame's write count reaches `value`.
    AtCycle,    ///< Fires at measurement cycle `value`.
  };
  BankId bank = 0;
  std::uint32_t set = 0;
  std::uint32_t way = 0;
  Trigger trigger = Trigger::Immediate;
  std::uint64_t value = 0;  ///< Write count or cycle, per trigger.
};

struct FaultConfig {
  bool enabled = false;
  std::uint64_t seed = 1;
  /// Mean in-window per-frame write budget; frames die (stuck-at) once
  /// their write count reaches their individual budget.  0 = no natural
  /// in-window wear-out (scheduled faults still fire, and the analytic
  /// degraded-lifetime projection still applies process variation).
  double budgetWrites = 0.0;
  /// Lognormal process-variation spread: each frame's budget multiplier is
  /// exp(sigma * z), z ~ N(0,1) — median 1.  0 = identical cells.
  double sigma = 0.15;
  /// Dead-frame fraction defining the degraded-capacity lifetime ("time
  /// until >10% of frames dead" by default).
  double deadFrac = 0.10;
  std::vector<ScheduledFault> schedule;
};

/// Per-bank view of the fault model: frame budgets (process variation x
/// mean budget, tightened by any AtWrites-scheduled faults on this bank).
/// Frames are indexed set * ways + way, matching mem::CacheBank.
class BankFaultModel : public serial::Checkpointable {
 public:
  static constexpr std::uint64_t kNoLimit = std::numeric_limits<std::uint64_t>::max();

  BankFaultModel(const FaultConfig& cfg, BankId bank, std::uint32_t numSets,
                 std::uint32_t ways);

  std::uint32_t numFrames() const { return static_cast<std::uint32_t>(variation_.size()); }
  std::uint32_t ways() const { return ways_; }

  /// Process-variation multiplier of `frame` (median 1.0).
  double variation(std::uint32_t frame) const { return variation_[frame]; }
  const std::vector<double>& variations() const { return variation_; }

  /// In-window write limit for `frame`; kNoLimit when the frame never
  /// wears out inside the window.
  std::uint64_t writeLimit(std::uint32_t frame) const { return limit_[frame]; }

  // Serializes the per-frame variation multipliers and write limits so a
  // restored run reproduces the exact fault schedule of the run that saved
  // the snapshot (the budgets derive from the fault seed, which is part of
  // the warm-state fingerprint, but carrying them in the archive guards
  // against loading a snapshot into a differently configured model).
  void saveState(serial::ArchiveWriter& ar) const override;
  bool loadState(serial::ArchiveReader& ar) override;

 private:
  std::uint32_t ways_;
  std::vector<double> variation_;
  std::vector<std::uint64_t> limit_;
};

/// Time (years) until `deadFrac` of the frames have exceeded their
/// full-scale endurance budgets (cfg.writesPerCell x variation[i]),
/// extrapolating each frame's measured write rate from the window.
/// `variation` may be empty (ideal identical cells).  Clamped to
/// cfg.maxYears; frames with zero writes never die.
double degradedCapacityLifetimeYears(const std::vector<std::uint64_t>& frameWrites,
                                     const std::vector<double>& variation,
                                     Cycle measuredCycles, double deadFrac,
                                     const EnduranceConfig& cfg);

/// Parses one "bank:set:way[:value]" fault spec (value required for the
/// AtWrites/AtCycle triggers).  Returns false on malformed input.
bool parseFaultSpec(const std::string& spec, ScheduledFault::Trigger trigger,
                    ScheduledFault& out);

}  // namespace renuca::rram
