#include "rram/fault_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "serial/archive.hpp"

namespace renuca::rram {

namespace {
/// Standard-normal draw via Box-Muller; one Pcg32 stream per (seed, bank)
/// keeps frames independent and the whole schedule reproducible.
double nextGaussian(Pcg32& rng) {
  // Avoid log(0): nextDouble() is in [0, 1).
  double u1 = 1.0 - rng.nextDouble();
  double u2 = rng.nextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.141592653589793 * u2);
}
}  // namespace

BankFaultModel::BankFaultModel(const FaultConfig& cfg, BankId bank,
                               std::uint32_t numSets, std::uint32_t ways)
    : ways_(ways) {
  RENUCA_ASSERT(numSets > 0 && ways > 0, "fault model needs at least one frame");
  const std::uint32_t numFrames = numSets * ways;
  variation_.resize(numFrames, 1.0);
  limit_.resize(numFrames, kNoLimit);

  Pcg32 rng(cfg.seed * 0x9e3779b97f4a7c15ull + bank, 0xfa017ull ^ bank);
  for (std::uint32_t f = 0; f < numFrames; ++f) {
    double mult = cfg.sigma > 0.0 ? std::exp(cfg.sigma * nextGaussian(rng)) : 1.0;
    variation_[f] = mult;
    if (cfg.budgetWrites > 0.0) {
      limit_[f] = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::llround(cfg.budgetWrites * mult)));
    }
  }

  // AtWrites-scheduled faults tighten the frame's limit so the write path
  // needs exactly one comparison per write.
  for (const ScheduledFault& sf : cfg.schedule) {
    if (sf.trigger != ScheduledFault::Trigger::AtWrites || sf.bank != bank) continue;
    if (sf.set >= numSets || sf.way >= ways) {
      logMessage(LogLevel::Warn, "fault",
                 "scheduled fault outside bank geometry ignored (set " +
                     std::to_string(sf.set) + ", way " + std::to_string(sf.way) + ")");
      continue;
    }
    std::uint32_t idx = sf.set * ways + sf.way;
    limit_[idx] = std::min(limit_[idx], std::max<std::uint64_t>(1, sf.value));
  }
}

void BankFaultModel::saveState(serial::ArchiveWriter& ar) const {
  ar.putU32(ways_);
  ar.putU32(static_cast<std::uint32_t>(variation_.size()));
  for (double v : variation_) ar.putDouble(v);
  for (std::uint64_t lim : limit_) ar.putU64(lim);
}

bool BankFaultModel::loadState(serial::ArchiveReader& ar) {
  std::uint32_t ways = ar.getU32();
  std::uint32_t numFrames = ar.getU32();
  if (!ar.ok() || ways != ways_ || numFrames != variation_.size()) {
    logMessage(LogLevel::Warn, "serial", "fault model: snapshot geometry mismatch");
    return false;
  }
  for (double& v : variation_) v = ar.getDouble();
  for (std::uint64_t& lim : limit_) lim = ar.getU64();
  return ar.ok() && ar.remaining() == 0;
}

double degradedCapacityLifetimeYears(const std::vector<std::uint64_t>& frameWrites,
                                     const std::vector<double>& variation,
                                     Cycle measuredCycles, double deadFrac,
                                     const EnduranceConfig& cfg) {
  if (frameWrites.empty() || measuredCycles == 0) return cfg.maxYears;
  RENUCA_ASSERT(variation.empty() || variation.size() == frameWrites.size(),
                "variation vector must match frame count");
  const double seconds = static_cast<double>(measuredCycles) / cfg.coreFreqHz;

  // Per-frame time-to-death in years; frames that never see writes never die.
  std::vector<double> deathYears;
  deathYears.reserve(frameWrites.size());
  for (std::size_t f = 0; f < frameWrites.size(); ++f) {
    if (frameWrites[f] == 0) {
      deathYears.push_back(cfg.maxYears);
      continue;
    }
    double budget = cfg.writesPerCell * (variation.empty() ? 1.0 : variation[f]);
    double rate = static_cast<double>(frameWrites[f]) / seconds;
    deathYears.push_back(std::min(budget / rate / kSecondsPerYear, cfg.maxYears));
  }

  // The lifetime ends when the k-th frame dies, k = ceil(deadFrac * N):
  // from that instant more than deadFrac of capacity is gone.
  std::size_t k = static_cast<std::size_t>(
      std::ceil(deadFrac * static_cast<double>(deathYears.size())));
  k = std::clamp<std::size_t>(k, 1, deathYears.size());
  std::nth_element(deathYears.begin(), deathYears.begin() + (k - 1), deathYears.end());
  return deathYears[k - 1];
}

bool parseFaultSpec(const std::string& spec, ScheduledFault::Trigger trigger,
                    ScheduledFault& out) {
  // "bank:set:way" (Immediate) or "bank:set:way:value" (AtWrites/AtCycle).
  const bool wantValue = trigger != ScheduledFault::Trigger::Immediate;
  std::uint64_t parts[4] = {0, 0, 0, 0};
  std::size_t nparts = wantValue ? 4 : 3;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < nparts; ++i) {
    std::size_t colon = i + 1 < nparts ? spec.find(':', pos) : std::string::npos;
    std::string tok = colon == std::string::npos ? spec.substr(pos)
                                                 : spec.substr(pos, colon - pos);
    if (tok.empty()) return false;
    char* end = nullptr;
    unsigned long long v = std::strtoull(tok.c_str(), &end, 0);
    if (end == tok.c_str() || *end != '\0') return false;
    parts[i] = v;
    if (colon == std::string::npos) {
      if (i + 1 != nparts) return false;  // too few fields
      break;
    }
    pos = colon + 1;
  }
  out.bank = static_cast<BankId>(parts[0]);
  out.set = static_cast<std::uint32_t>(parts[1]);
  out.way = static_cast<std::uint32_t>(parts[2]);
  out.trigger = trigger;
  out.value = parts[3];
  return true;
}

}  // namespace renuca::rram
