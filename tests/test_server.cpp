// Simulation service tests: wire protocol round-trips and corruption
// handling, job-spec validation, and the renucad server driven entirely
// in-process over socketpair() connections — concurrent clients, queue-full
// admission, graceful drain, stats, and the determinism contract (a served
// report is byte-identical to a local runPlan report modulo provenance).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server/jobspec.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "telemetry/json.hpp"

namespace renuca {
namespace {

using server::Client;
using server::DecodeStatus;
using server::JobState;
using server::Message;
using server::Op;

// --- Protocol --------------------------------------------------------------

TEST(Protocol, EveryOpcodeRoundTrips) {
  const Op ops[] = {Op::Submit,   Op::Stats, Op::Shutdown,   Op::Ping,
                    Op::Metrics,  Op::Register, Op::Heartbeat,
                    Op::Accepted, Op::Busy,    Op::Error,
                    Op::Status,   Op::Report, Op::StatsReply, Op::Pong,
                    Op::MetricsReply, Op::Lease};
  for (Op op : ops) {
    Message in;
    in.op = op;
    in.requestId = 0x1122334455667788ull;
    in.jobId = 42;
    in.state = JobState::Running;
    in.errorCode = server::ErrCode::WorkerLost;
    in.text = "payload for " + std::string(server::toString(op));
    std::vector<std::uint8_t> buf = server::encodeFrame(in);
    Message out;
    std::string err;
    ASSERT_EQ(server::decodeFrame(buf, server::kDefaultMaxFrameBytes, out, err),
              DecodeStatus::Frame)
        << err;
    EXPECT_EQ(out.op, in.op);
    EXPECT_EQ(out.requestId, in.requestId);
    EXPECT_EQ(out.jobId, in.jobId);
    EXPECT_EQ(out.state, in.state);
    EXPECT_EQ(out.errorCode, in.errorCode);
    EXPECT_EQ(out.text, in.text);
    EXPECT_TRUE(buf.empty()) << "frame bytes not consumed";
  }
}

TEST(Protocol, EveryErrorCodeRoundTrips) {
  using server::ErrCode;
  for (ErrCode ec : {ErrCode::None, ErrCode::Sim, ErrCode::Io, ErrCode::Busy,
                     ErrCode::WorkerLost, ErrCode::Canceled}) {
    Message in;
    in.op = Op::Report;
    in.state = JobState::Failed;
    in.errorCode = ec;
    std::vector<std::uint8_t> buf = server::encodeFrame(in);
    Message out;
    std::string err;
    ASSERT_EQ(server::decodeFrame(buf, server::kDefaultMaxFrameBytes, out, err),
              DecodeStatus::Frame);
    EXPECT_EQ(out.errorCode, ec);
  }
  // Only I/O-ish conditions are worth a retry; a deterministic failure
  // would fail identically anywhere.
  EXPECT_FALSE(server::retryable(server::ErrCode::None));
  EXPECT_FALSE(server::retryable(server::ErrCode::Sim));
  EXPECT_FALSE(server::retryable(server::ErrCode::Canceled));
  EXPECT_TRUE(server::retryable(server::ErrCode::Io));
  EXPECT_TRUE(server::retryable(server::ErrCode::Busy));
  EXPECT_TRUE(server::retryable(server::ErrCode::WorkerLost));
}

TEST(Protocol, TruncatedFrameNeedsMore) {
  Message m;
  m.op = Op::Ping;
  m.text = "hello";
  const std::vector<std::uint8_t> full = server::encodeFrame(m);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> buf(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut));
    Message out;
    std::string err;
    EXPECT_EQ(server::decodeFrame(buf, server::kDefaultMaxFrameBytes, out, err),
              DecodeStatus::NeedMore)
        << "at cut " << cut;
    EXPECT_EQ(buf.size(), cut) << "partial frame must not be consumed";
  }
}

TEST(Protocol, CorruptPayloadIsBadPayloadAndConsumed) {
  Message m;
  m.op = Op::Submit;
  m.text = "app=mcf";
  // Flip one payload byte at every position; the checksum (or the magic)
  // must catch each, and the damaged frame must be consumed so the stream
  // can continue.
  const std::vector<std::uint8_t> full = server::encodeFrame(m);
  for (std::size_t i = 4; i < full.size(); ++i) {
    std::vector<std::uint8_t> buf = full;
    buf[i] ^= 0x5a;
    Message out;
    std::string err;
    const DecodeStatus st =
        server::decodeFrame(buf, server::kDefaultMaxFrameBytes, out, err);
    EXPECT_EQ(st, DecodeStatus::BadPayload) << "at byte " << i;
    EXPECT_TRUE(buf.empty()) << "corrupt frame must be consumed (byte " << i << ")";
    EXPECT_FALSE(err.empty());
  }
}

TEST(Protocol, ImplausibleLengthIsFatal) {
  Message out;
  std::string err;
  std::vector<std::uint8_t> zero = {0, 0, 0, 0};
  EXPECT_EQ(server::decodeFrame(zero, server::kDefaultMaxFrameBytes, out, err),
            DecodeStatus::Fatal);
  std::vector<std::uint8_t> huge = {0xff, 0xff, 0xff, 0xff};
  EXPECT_EQ(server::decodeFrame(huge, server::kDefaultMaxFrameBytes, out, err),
            DecodeStatus::Fatal);
  // A length just over the configured cap is fatal too.
  Message m;
  m.op = Op::Ping;
  m.text = std::string(256, 'x');
  std::vector<std::uint8_t> buf = server::encodeFrame(m);
  EXPECT_EQ(server::decodeFrame(buf, /*maxFrameBytes=*/16, out, err),
            DecodeStatus::Fatal);
}

TEST(Protocol, BackToBackFramesDecodeInOrder) {
  std::vector<std::uint8_t> buf;
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.op = Op::Status;
    m.requestId = static_cast<std::uint64_t>(i);
    m.state = JobState::Done;
    const std::vector<std::uint8_t> f = server::encodeFrame(m);
    buf.insert(buf.end(), f.begin(), f.end());
  }
  for (int i = 0; i < 5; ++i) {
    Message out;
    std::string err;
    ASSERT_EQ(server::decodeFrame(buf, server::kDefaultMaxFrameBytes, out, err),
              DecodeStatus::Frame);
    EXPECT_EQ(out.requestId, static_cast<std::uint64_t>(i));
  }
  EXPECT_TRUE(buf.empty());
}

// --- Job specs -------------------------------------------------------------

TEST(JobSpec, ValidAppSpecBuildsSingleCoreJob) {
  sim::Job job;
  std::string err;
  ASSERT_TRUE(server::parseJobSpec(
      "app=mcf\nthreshold_pct=25\ninstr_per_core=5000\nlabel=mcf/x25\n", job, err))
      << err;
  EXPECT_EQ(job.label, "mcf/x25");
  EXPECT_EQ(job.config.numCores, 1u);
  EXPECT_DOUBLE_EQ(job.config.cpt.thresholdPct, 25.0);
  EXPECT_EQ(job.config.instrPerCore, 5000u);
  ASSERT_EQ(job.mix.appNames.size(), 1u);
  EXPECT_EQ(job.mix.appNames[0], "mcf");
}

TEST(JobSpec, MixSpecUsesStandardMix) {
  sim::Job job;
  std::string err;
  ASSERT_TRUE(server::parseJobSpec("mix=WL3\ninstr_per_core=2000\n", job, err)) << err;
  EXPECT_EQ(job.mix.name, "WL3");
  EXPECT_EQ(job.config.numCores, job.mix.appNames.size());
  EXPECT_EQ(job.label, "WL3");
}

TEST(JobSpec, MeshOverrideResamplesMixAtTheConfigCoreCount) {
  sim::Job job;
  std::string err;
  ASSERT_TRUE(server::parseJobSpec(
      "mix=WL1\nmesh=8x8\ncores=64\nmc=4\ninstr_per_core=2000\n", job, err))
      << err;
  EXPECT_EQ(job.config.numCores, 64u);
  EXPECT_EQ(job.config.l3.banks, 64u);
  EXPECT_EQ(job.mix.name, "WL1@64");
  EXPECT_EQ(job.mix.appNames.size(), 64u);
  // Cross-field validation still applies through the daemon path.
  EXPECT_FALSE(server::parseJobSpec("mix=WL1\nmesh=4x4\ncores=32\n", job, err));
  EXPECT_FALSE(server::parseJobSpec("mix=WL1\nmc_edge=cornerz\n", job, err));
  EXPECT_NE(err.find("corners"), std::string::npos) << err;
}

TEST(JobSpec, ClientJobIdIsPureProvenance) {
  sim::Job withId, without;
  std::string err;
  ASSERT_TRUE(server::parseJobSpec("app=mcf\njob_id=c123-7\n", withId, err)) << err;
  EXPECT_EQ(withId.clientJobId, "c123-7");
  ASSERT_TRUE(server::parseJobSpec("app=mcf\n", without, err)) << err;
  EXPECT_TRUE(without.clientJobId.empty());
  // Provenance only: the simulation-relevant config is untouched.
  EXPECT_EQ(withId.config.seed, without.config.seed);
  EXPECT_EQ(withId.label, without.label);
}

TEST(JobSpec, RejectsServerOwnedUnknownAndConflictingKeys) {
  sim::Job job;
  std::string err;
  EXPECT_FALSE(server::parseJobSpec("app=mcf\nsnapshot_dir=/tmp/x\n", job, err));
  EXPECT_NE(err.find("server-managed"), std::string::npos) << err;
  EXPECT_FALSE(server::parseJobSpec("app=mcf\nthreshld_pct=25\n", job, err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(server::parseJobSpec("app=mcf\nmix=WL1\n", job, err));
  EXPECT_FALSE(server::parseJobSpec("app=no_such_app\n", job, err));
  EXPECT_FALSE(server::parseJobSpec("mix=WL99\n", job, err));
  EXPECT_FALSE(server::parseJobSpec("rig=no_such_rig\napp=mcf\n", job, err));
  EXPECT_FALSE(server::parseJobSpec("positional_token\n", job, err));
  // app= on a 16-core rig is a core-count mismatch.
  EXPECT_FALSE(server::parseJobSpec("rig=default\napp=mcf\n", job, err));
}

// --- Server harness --------------------------------------------------------

/// Runs a Server on a background thread; connections are socketpair ends
/// adopted in-process, so the tests exercise the real event loop without
/// touching the filesystem or the network.
struct TestServer {
  explicit TestServer(server::ServerConfig cfg) : srv(new server::Server(cfg)) {
    thread = std::thread([this] { rc.store(srv->run()); });
  }
  ~TestServer() {
    if (thread.joinable()) {
      srv->requestStop();
      thread.join();
    }
  }
  Client connect() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    srv->adoptConnection(fds[0]);
    Client c;
    c.adoptFd(fds[1]);
    return c;
  }
  /// Raw variant for injecting malformed bytes.
  int connectRaw() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    srv->adoptConnection(fds[0]);
    return fds[1];
  }
  int stop() {
    srv->requestStop();
    thread.join();
    return rc.load();
  }

  std::unique_ptr<server::Server> srv;
  std::thread thread;
  std::atomic<int> rc{-1};
};

server::ServerConfig smallServer(unsigned workers = 2, std::size_t queue = 64) {
  server::ServerConfig cfg;
  cfg.jobs = workers;
  cfg.maxQueue = queue;
  return cfg;
}

/// A quick single-core job spec (sub-second even in debug builds).
std::string quickSpec(const std::string& app, unsigned threshold) {
  return "app=" + app + "\nthreshold_pct=" + std::to_string(threshold) +
         "\nprewarm=50000\nwarmup=1000\ninstr_per_core=3000\nlabel=" + app +
         "/x" + std::to_string(threshold) + "\n";
}

/// Everything after the provenance fields (report.hpp documents that the
/// provenance all precedes the "config" key).
std::string stripProvenance(const std::string& report) {
  const std::size_t at = report.find("\"config\"");
  EXPECT_NE(at, std::string::npos);
  return at == std::string::npos ? report : report.substr(at);
}

/// Submits and returns the admission reply (Accepted/Busy/Error) for this
/// requestId, skipping any status/report traffic for earlier jobs that
/// multiplexes in between.
Message submit(Client& c, const std::string& spec, std::uint64_t requestId = 1) {
  Message req;
  req.op = Op::Submit;
  req.requestId = requestId;
  req.text = spec;
  EXPECT_TRUE(c.send(req));
  Message reply;
  std::string err;
  while (c.receive(reply, &err)) {
    if (reply.requestId == requestId &&
        (reply.op == Op::Accepted || reply.op == Op::Busy || reply.op == Op::Error))
      return reply;
  }
  ADD_FAILURE() << "connection dropped before admission reply: " << err;
  return reply;
}

/// Receives until the report frame for `requestId` arrives.
Message awaitReport(Client& c, std::uint64_t requestId) {
  Message m;
  std::string err;
  while (c.receive(m, &err)) {
    if (m.op == Op::Report && m.requestId == requestId) return m;
  }
  ADD_FAILURE() << "connection dropped before report: " << err;
  return m;
}

TEST(Server, PingPong) {
  TestServer ts(smallServer(1));
  Client c = ts.connect();
  Message req;
  req.op = Op::Ping;
  req.requestId = 77;
  req.text = "echo me";
  ASSERT_TRUE(c.send(req));
  Message reply;
  ASSERT_TRUE(c.receive(reply));
  EXPECT_EQ(reply.op, Op::Pong);
  EXPECT_EQ(reply.requestId, 77u);
  EXPECT_EQ(reply.text, "echo me");
}

TEST(Server, InvalidSpecGetsErrorAndSessionSurvives) {
  TestServer ts(smallServer(1));
  Client c = ts.connect();
  Message reply = submit(c, "app=mcf\nthreshld_pct=25\n");
  EXPECT_EQ(reply.op, Op::Error);
  EXPECT_FALSE(reply.text.empty());
  // The same session still works afterwards.
  Message req;
  req.op = Op::Ping;
  req.requestId = 2;
  ASSERT_TRUE(c.send(req));
  Message pong;
  ASSERT_TRUE(c.receive(pong));
  EXPECT_EQ(pong.op, Op::Pong);
}

TEST(Server, CorruptFrameGetsErrorReplyAndSessionSurvives) {
  TestServer ts(smallServer(1));
  const int fd = ts.connectRaw();
  Message m;
  m.op = Op::Ping;
  m.requestId = 9;
  std::vector<std::uint8_t> frame = server::encodeFrame(m);
  frame[frame.size() / 2] ^= 0xff;  // Damage the payload, keep the length.
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  Client c;
  c.adoptFd(fd);
  Message reply;
  ASSERT_TRUE(c.receive(reply));
  EXPECT_EQ(reply.op, Op::Error);
  EXPECT_FALSE(reply.text.empty());
  // Stream resynchronized: the next valid frame is answered normally.
  Message req;
  req.op = Op::Ping;
  req.requestId = 10;
  ASSERT_TRUE(c.send(req));
  Message pong;
  ASSERT_TRUE(c.receive(pong));
  EXPECT_EQ(pong.op, Op::Pong);
  EXPECT_EQ(pong.requestId, 10u);
}

TEST(Server, ImplausibleFrameLengthClosesConnection) {
  TestServer ts(smallServer(1));
  const int fd = ts.connectRaw();
  const std::uint8_t junk[] = {0xff, 0xff, 0xff, 0xff, 1, 2, 3};
  ASSERT_EQ(::send(fd, junk, sizeof(junk), 0), static_cast<ssize_t>(sizeof(junk)));
  Client c;
  c.adoptFd(fd);
  Message reply;
  std::string err;
  EXPECT_FALSE(c.receive(reply, &err));  // Server hangs up, no crash.
}

TEST(Server, SubmitStreamsStatusAndReport) {
  TestServer ts(smallServer(2));
  Client c = ts.connect();
  Message reply = submit(c, quickSpec("mcf", 25));
  ASSERT_EQ(reply.op, Op::Accepted) << reply.text;
  EXPECT_NE(reply.jobId, 0u);

  bool sawQueued = false, sawRunning = false, sawDone = false;
  Message m;
  for (;;) {
    ASSERT_TRUE(c.receive(m));
    if (m.op == Op::Status) {
      sawQueued |= m.state == JobState::Queued;
      sawRunning |= m.state == JobState::Running;
      sawDone |= m.state == JobState::Done;
      continue;
    }
    ASSERT_EQ(m.op, Op::Report);
    break;
  }
  EXPECT_TRUE(sawQueued);
  EXPECT_TRUE(sawRunning);
  EXPECT_TRUE(sawDone);
  EXPECT_EQ(m.state, JobState::Done);
  EXPECT_NE(m.text.find("renuca-run-report"), std::string::npos);
  EXPECT_NE(m.text.find("\"mcf/x25\""), std::string::npos);
}

TEST(Server, ValidSpecCompletesWithoutErrorField) {
  // Strict admission means a spec that clears validation should never come
  // back Failed; the Failed path itself is covered at the sweep level
  // (test_sweep's RunResult::error tests).
  TestServer ts(smallServer(1));
  Client c = ts.connect();
  Message reply = submit(c, quickSpec("lbm", 10));
  ASSERT_EQ(reply.op, Op::Accepted) << reply.text;
  Message report = awaitReport(c, 1);
  EXPECT_EQ(report.state, JobState::Done);
  EXPECT_EQ(report.text.find("\"error\""), std::string::npos);
}

TEST(Server, EightConcurrentClientsMatchLocalRunByteForByte) {
  TestServer ts(smallServer(4));
  const char* apps[] = {"mcf",  "GemsFDTD", "lbm",    "milc",
                        "astar", "bwaves",  "bzip2",  "leslie3d"};
  const unsigned thresholds[] = {3, 5, 10, 20, 25, 33, 50, 75};

  std::vector<std::string> served(8);
  std::vector<std::thread> clients;
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&ts, &served, &apps, &thresholds, i] {
      Client c = ts.connect();
      Message reply = submit(c, quickSpec(apps[i], thresholds[i]),
                             static_cast<std::uint64_t>(i + 1));
      ASSERT_EQ(reply.op, Op::Accepted) << reply.text;
      Message report = awaitReport(c, static_cast<std::uint64_t>(i + 1));
      EXPECT_EQ(report.state, JobState::Done);
      served[static_cast<std::size_t>(i)] = report.text;
    });
  }
  for (std::thread& t : clients) t.join();

  // The same jobs run locally, serially, through the plain sweep engine.
  sim::SweepPlan plan;
  for (int i = 0; i < 8; ++i) {
    sim::Job job;
    std::string err;
    ASSERT_TRUE(server::parseJobSpec(quickSpec(apps[i], thresholds[i]), job, err))
        << err;
    plan.add(std::move(job));
  }
  const std::vector<sim::RunResult> local = sim::runPlan(plan);
  for (int i = 0; i < 8; ++i) {
    ASSERT_FALSE(served[static_cast<std::size_t>(i)].empty()) << apps[i];
    const std::string localReport = sim::runReportJson(
        "renucad", plan.jobs()[static_cast<std::size_t>(i)].config,
        {{plan.jobs()[static_cast<std::size_t>(i)].label,
          local[static_cast<std::size_t>(i)]}},
        0.0, 1);
    EXPECT_EQ(stripProvenance(served[static_cast<std::size_t>(i)]),
              stripProvenance(localReport))
        << apps[i] << " served report diverged from the local run";
  }
}

TEST(Server, QueueFullAnswersBusy) {
  server::ServerConfig cfg = smallServer(/*workers=*/1, /*queue=*/1);
  TestServer ts(cfg);
  Client c = ts.connect();

  // Job A: long enough to still be running while we flood the queue.
  Message a = submit(c, "app=mcf\nprewarm=2000000\nwarmup=2000\n"
                        "instr_per_core=200000\nlabel=long\n", 1);
  ASSERT_EQ(a.op, Op::Accepted) << a.text;
  // Wait until A is actually running, i.e. the executor has taken its
  // batch and the pending queue is empty again.
  Message m;
  do {
    ASSERT_TRUE(c.receive(m));
  } while (!(m.op == Op::Status && m.state == JobState::Running));

  // B fills the 1-slot queue, C must bounce.
  Message b = submit(c, quickSpec("lbm", 10), 2);
  ASSERT_EQ(b.op, Op::Accepted) << b.text;
  Message cReply = submit(c, quickSpec("milc", 10), 3);
  EXPECT_EQ(cReply.op, Op::Busy);
  EXPECT_NE(cReply.text.find("full"), std::string::npos);

  // Both admitted jobs still complete and report.
  int reports = 0;
  while (reports < 2) {
    ASSERT_TRUE(c.receive(m));
    if (m.op == Op::Report) ++reports;
  }
}

TEST(Server, GracefulDrainDeliversEveryAdmittedReport) {
  TestServer ts(smallServer(2));
  Client c = ts.connect();
  Message r1 = submit(c, quickSpec("mcf", 25), 1);
  ASSERT_EQ(r1.op, Op::Accepted);
  Message r2 = submit(c, quickSpec("lbm", 10), 2);
  ASSERT_EQ(r2.op, Op::Accepted);

  Message req;
  req.op = Op::Shutdown;
  req.requestId = 99;
  ASSERT_TRUE(c.send(req));

  bool shutdownAcked = false;
  int reports = 0;
  Message m;
  while (c.receive(m)) {
    if (m.op == Op::Accepted && m.requestId == 99) shutdownAcked = true;
    if (m.op == Op::Report) ++reports;
    if (shutdownAcked && reports == 2) break;
  }
  EXPECT_TRUE(shutdownAcked);
  EXPECT_EQ(reports, 2);

  // Submissions after the drain began bounce with BUSY.
  Message late;
  late.op = Op::Submit;
  late.requestId = 100;
  late.text = quickSpec("milc", 10);
  if (c.send(late)) {
    Message reply;
    if (c.receive(reply)) EXPECT_EQ(reply.op, Op::Busy);
  }
  EXPECT_EQ(ts.stop(), 0) << "drain must exit cleanly";
}

TEST(Server, StatsReportHealthJson) {
  TestServer ts(smallServer(2));
  Client c = ts.connect();
  Message reply = submit(c, quickSpec("mcf", 25));
  ASSERT_EQ(reply.op, Op::Accepted);
  awaitReport(c, 1);

  Message req;
  req.op = Op::Stats;
  req.requestId = 5;
  ASSERT_TRUE(c.send(req));
  Message stats;
  ASSERT_TRUE(c.receive(stats));
  ASSERT_EQ(stats.op, Op::StatsReply);

  std::string err;
  auto doc = telemetry::parseJson(stats.text, &err);
  ASSERT_TRUE(doc) << err << "\n" << stats.text;
  const telemetry::JsonValue* srv = doc->find("server");
  ASSERT_TRUE(srv && srv->isObject());
  const telemetry::JsonValue* accepted = srv->find("server/accepted");
  ASSERT_TRUE(accepted && accepted->isNumber());
  EXPECT_GE(accepted->number, 1.0);
  const telemetry::JsonValue* completed = srv->find("server/completed");
  ASSERT_TRUE(completed && completed->isNumber());
  EXPECT_GE(completed->number, 1.0);
  const telemetry::JsonValue* lat = doc->find("job_latency_ms");
  ASSERT_TRUE(lat && lat->isObject());
  const telemetry::JsonValue* count = lat->find("count");
  ASSERT_TRUE(count && count->isNumber());
  EXPECT_GE(count->number, 1.0);
  EXPECT_TRUE(doc->find("queue_depth_hist"));
}

TEST(Server, StatsKeySetIsStable) {
  // Golden key-set: monitoring dashboards key on these names, so adding is
  // fine but renaming/dropping must be a conscious, test-breaking act.
  TestServer ts(smallServer(1));
  Client c = ts.connect();
  Message req;
  req.op = Op::Stats;
  req.requestId = 1;
  ASSERT_TRUE(c.send(req));
  Message stats;
  ASSERT_TRUE(c.receive(stats));
  ASSERT_EQ(stats.op, Op::StatsReply);

  std::string err;
  auto doc = telemetry::parseJson(stats.text, &err);
  ASSERT_TRUE(doc) << err;
  std::set<std::string> topKeys;
  for (const auto& [k, v] : doc->object) topKeys.insert(k);
  const std::set<std::string> expectedTop = {
      "server", "workers", "queue_depth_hist", "job_latency_ms",
      "queue_wait_ms", "exec_ms"};
  EXPECT_EQ(topKeys, expectedTop);

  std::set<std::string> serverKeys;
  for (const auto& [k, v] : doc->find("server")->object) serverKeys.insert(k);
  const std::set<std::string> expectedServer = {
      "server/accepted",  "server/rejected", "server/protocol_errors",
      "server/inflight",  "server/completed", "server/failed",
      "server/queue_depth", "server/sessions"};
  EXPECT_EQ(serverKeys, expectedServer);
}

TEST(Server, MetricsReplyIsStablePrometheusText) {
  TestServer ts(smallServer(1));
  Client c = ts.connect();
  Message reply = submit(c, quickSpec("mcf", 25));
  ASSERT_EQ(reply.op, Op::Accepted) << reply.text;
  awaitReport(c, 1);

  Message req;
  req.op = Op::Metrics;
  req.requestId = 7;
  ASSERT_TRUE(c.send(req));
  Message metrics;
  ASSERT_TRUE(c.receive(metrics));
  ASSERT_EQ(metrics.op, Op::MetricsReply);
  EXPECT_EQ(metrics.requestId, 7u);

  // Parse the exposition text: every family has a TYPE line, every sample
  // line is "name[{labels}] value" with a finite numeric value.
  std::map<std::string, std::string> families;  // name -> type
  std::istringstream is(metrics.text);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream ls(line.substr(7));
      std::string name, type;
      ls >> name >> type;
      families[name] = type;
      continue;
    }
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(sp + 1))) << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);

  // Golden family set (the scrape-config contract).
  const std::map<std::string, std::string> expected = {
      {"renucad_server_accepted", "counter"},
      {"renucad_server_rejected", "counter"},
      {"renucad_server_protocol_errors", "counter"},
      {"renucad_server_inflight", "gauge"},
      {"renucad_server_completed", "gauge"},
      {"renucad_server_failed", "gauge"},
      {"renucad_server_queue_depth", "gauge"},
      {"renucad_server_sessions", "gauge"},
      {"renucad_queue_depth", "histogram"},
      {"renucad_job_latency_ms", "histogram"},
      {"renucad_queue_wait_ms", "histogram"},
      {"renucad_exec_ms", "histogram"}};
  EXPECT_EQ(families, expected);

  // The completed job is visible to a scraper.
  EXPECT_NE(metrics.text.find("renucad_server_completed 1\n"),
            std::string::npos);
  EXPECT_NE(metrics.text.find("renucad_exec_ms_count 1\n"), std::string::npos);
}

TEST(Server, SubmittedJobIdEchoesInReportProvenance) {
  TestServer ts(smallServer(1));
  Client c = ts.connect();
  std::string err;
  const std::string jobId = c.submit(quickSpec("mcf", 25), /*requestId=*/1, &err);
  ASSERT_FALSE(jobId.empty()) << err;
  Message report = awaitReport(c, 1);
  ASSERT_EQ(report.state, JobState::Done);

  auto doc = telemetry::parseJson(report.text, &err);
  ASSERT_TRUE(doc) << err;
  const telemetry::JsonValue* echoed = doc->find("job_id");
  ASSERT_NE(echoed, nullptr);
  EXPECT_EQ(echoed->str, jobId);
  // job_id is provenance: it precedes "config", so the determinism
  // comparison (everything from "config" on) is unaffected by it.
  EXPECT_LT(report.text.find("\"job_id\""), report.text.find("\"config\""));
  EXPECT_EQ(stripProvenance(report.text).find("\"job_id\""), std::string::npos)
      << "job_id leaked past the provenance prefix";
}

TEST(Server, LifecycleTraceRecordsJobStages) {
  const std::string path =
      std::string(::testing::TempDir()) + "server.jobs.trace.json";
  server::ServerConfig cfg = smallServer(1);
  cfg.traceJsonPath = path;
  std::uint64_t jobId = 0;
  {
    TestServer ts(cfg);
    Client c = ts.connect();
    Message reply = submit(c, quickSpec("mcf", 25));
    ASSERT_EQ(reply.op, Op::Accepted) << reply.text;
    jobId = reply.jobId;
    awaitReport(c, 1);
    EXPECT_EQ(ts.stop(), 0);  // Drain closes (and footers) the trace.
  }

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::ostringstream buf;
  buf << is.rdbuf();
  std::string err;
  auto doc = telemetry::parseJson(buf.str(), &err);
  ASSERT_TRUE(doc) << err;
  const telemetry::JsonValue* events = doc->find("traceEvents");
  ASSERT_TRUE(events && events->isArray());

  std::set<std::string> stages;
  for (const telemetry::JsonValue& e : events->array) {
    const telemetry::JsonValue* name = e.find("name");
    const telemetry::JsonValue* cat = e.find("cat");
    if (!name || !cat || cat->str != "job") continue;
    stages.insert(name->str);
    // The span's thread lane is the server-assigned job id, and its args
    // carry the client-facing identifiers.
    EXPECT_EQ(e.find("tid")->number, static_cast<double>(jobId));
    if (name->str != "completed") {
      ASSERT_NE(e.find("args"), nullptr);
      EXPECT_NE(e.find("args")->find("request_id"), nullptr);
    }
  }
  const std::set<std::string> expected = {"queued", "admitted", "executing",
                                          "completed"};
  EXPECT_EQ(stages, expected);
  std::remove(path.c_str());
}

TEST(Server, ByteDrippedFrameDecodesOnceComplete) {
  // A slow writer trickling one byte at a time must not confuse the
  // framing: nothing happens until the frame completes, then it is
  // answered normally.
  TestServer ts(smallServer(1));
  const int fd = ts.connectRaw();
  Message m;
  m.op = Op::Ping;
  m.requestId = 41;
  m.text = "dripped";
  const std::vector<std::uint8_t> frame = server::encodeFrame(m);
  for (std::uint8_t byte : frame) {
    ASSERT_EQ(::send(fd, &byte, 1, 0), 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Client c;
  c.adoptFd(fd);
  Message pong;
  ASSERT_TRUE(c.receive(pong));
  EXPECT_EQ(pong.op, Op::Pong);
  EXPECT_EQ(pong.requestId, 41u);
  EXPECT_EQ(pong.text, "dripped");
}

TEST(Server, TruncatedFrameAtEofClosesWithoutDisturbingOthers) {
  TestServer ts(smallServer(1));
  const int fd = ts.connectRaw();
  Message m;
  m.op = Op::Ping;
  m.text = "never finished";
  const std::vector<std::uint8_t> frame = server::encodeFrame(m);
  // Half a frame, then EOF: the server just drops the session.
  ASSERT_EQ(::send(fd, frame.data(), frame.size() / 2, 0),
            static_cast<ssize_t>(frame.size() / 2));
  ::close(fd);
  // An unrelated session is unaffected.
  Client c = ts.connect();
  Message req;
  req.op = Op::Ping;
  req.requestId = 1;
  ASSERT_TRUE(c.send(req));
  Message pong;
  ASSERT_TRUE(c.receive(pong));
  EXPECT_EQ(pong.op, Op::Pong);
}

TEST(Server, SlowReaderGetsBackpressureNotDataLoss) {
  // A tiny soft write buffer forces the server to stop reading this
  // session while its replies sit unsent; once the client finally reads,
  // every reply arrives intact and in order.
  server::ServerConfig cfg = smallServer(1);
  cfg.softWriteBuffer = 1024;
  TestServer ts(cfg);
  Client c = ts.connect();
  const int kPings = 20;
  const std::string payload(4096, 'p');
  for (int i = 1; i <= kPings; ++i) {
    Message req;
    req.op = Op::Ping;
    req.requestId = static_cast<std::uint64_t>(i);
    req.text = payload;
    ASSERT_TRUE(c.send(req));
  }
  // Let the backlog build before draining anything.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  for (int i = 1; i <= kPings; ++i) {
    Message pong;
    ASSERT_TRUE(c.receive(pong)) << "lost reply " << i;
    EXPECT_EQ(pong.op, Op::Pong);
    EXPECT_EQ(pong.requestId, static_cast<std::uint64_t>(i));
    EXPECT_EQ(pong.text, payload);
  }
  // The session survived the squeeze.
  Message req;
  req.op = Op::Ping;
  req.requestId = 999;
  ASSERT_TRUE(c.send(req));
  Message pong;
  ASSERT_TRUE(c.receive(pong));
  EXPECT_EQ(pong.requestId, 999u);
}

TEST(Server, ReaderPastMaxWriteBufferIsDroppedOthersUnaffected) {
  server::ServerConfig cfg = smallServer(1);
  cfg.softWriteBuffer = 1024;
  cfg.maxWriteBuffer = 16 * 1024;
  TestServer ts(cfg);
  Client hog = ts.connect();
  Client bystander = ts.connect();

  // One reply bigger than the whole write budget: the hog is marked dead
  // the moment the reply is queued.  The close is best-effort-flushed, so
  // the client may still read already-buffered bytes — but the connection
  // must then be over (EOF, not a timeout, and no further service).
  Message req;
  req.op = Op::Ping;
  req.requestId = 1;
  req.text = std::string(64 * 1024, 'x');
  ASSERT_TRUE(hog.send(req));
  Message m;
  std::string err;
  hog.setIoTimeout(5000);
  bool closed = false;
  for (int i = 0; i < 3 && !closed; ++i) closed = !hog.receive(m, &err);
  EXPECT_TRUE(closed) << "oversized backlog was not dropped";
  EXPECT_EQ(err.find("timeout"), std::string::npos) << err;

  // The bystander never notices.
  Message ping;
  ping.op = Op::Ping;
  ping.requestId = 2;
  ASSERT_TRUE(bystander.send(ping));
  Message pong;
  ASSERT_TRUE(bystander.receive(pong));
  EXPECT_EQ(pong.op, Op::Pong);
  EXPECT_EQ(pong.requestId, 2u);
}

TEST(Server, StalledSessionPastIdleTimeoutIsReaped) {
  server::ServerConfig cfg = smallServer(1);
  cfg.idleTimeoutMs = 200;
  TestServer ts(cfg);
  Client stalled = ts.connect();
  Client active = ts.connect();

  // The active session keeps talking well past the idle window...
  for (int i = 0; i < 10; ++i) {
    Message req;
    req.op = Op::Ping;
    req.requestId = static_cast<std::uint64_t>(i + 1);
    ASSERT_TRUE(active.send(req));
    Message pong;
    ASSERT_TRUE(active.receive(pong));
    EXPECT_EQ(pong.op, Op::Pong);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // ...while the stalled one is closed by the server (EOF, not timeout).
  stalled.setIoTimeout(5000);
  Message m;
  std::string err;
  EXPECT_FALSE(stalled.receive(m, &err));
  EXPECT_EQ(err.find("timeout"), std::string::npos) << err;
}

TEST(Server, SessionDisconnectDuringJobDoesNotCrash) {
  TestServer ts(smallServer(1));
  {
    Client c = ts.connect();
    Message reply = submit(c, quickSpec("mcf", 25));
    ASSERT_EQ(reply.op, Op::Accepted);
    // Client leaves before the report arrives.
  }
  // The server finishes the orphaned job, drops its report, and keeps
  // serving.
  Client c2 = ts.connect();
  Message reply = submit(c2, quickSpec("lbm", 10));
  ASSERT_EQ(reply.op, Op::Accepted) << reply.text;
  Message report = awaitReport(c2, 1);
  EXPECT_EQ(report.state, JobState::Done);
  EXPECT_EQ(ts.stop(), 0);
}

}  // namespace
}  // namespace renuca
