// Serialization-layer tests: archive framing and corruption rejection,
// per-component save/load round trips with canonical-bytes checks
// (save -> load -> save is byte-identical), fingerprint inclusion/exclusion
// rules, and the end-to-end warm-state snapshot contract — a restored run's
// report is byte-identical (modulo provenance) to a cold run's, for a
// single System and for runPlan's shared-snapshot warm starts at jobs=1
// and jobs=4.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cpt.hpp"
#include "core/naive.hpp"
#include "mem/cache.hpp"
#include "noc/mesh.hpp"
#include "noc/topology.hpp"
#include "rram/fault_model.hpp"
#include "serial/archive.hpp"
#include "serial/checkpointable.hpp"
#include "sim/fingerprint.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "sim/system.hpp"
#include "tlb/tlb.hpp"
#include "workload/generator.hpp"
#include "workload/mixes.hpp"

namespace renuca {
namespace {

std::string tmpPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- Archive framing -------------------------------------------------------

TEST(Archive, RoundTripsEveryPrimitiveType) {
  const std::string p = tmpPath("prims.ckpt");
  {
    serial::ArchiveWriter w(p);
    w.beginSection("alpha");
    w.putU8(7);
    w.putU32(0xdeadbeefu);
    w.putU64(0x0123456789abcdefull);
    w.putBool(true);
    w.putDouble(3.25);
    w.putString("hello");
    w.endSection();
    w.beginSection("beta");
    w.putU64(42);
    w.endSection();
    ASSERT_TRUE(w.close());
  }
  serial::ArchiveReader r(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.version(), serial::kArchiveVersion);
  ASSERT_EQ(r.sections().size(), 2u);
  EXPECT_EQ(r.sections()[0].name, "alpha");
  EXPECT_TRUE(r.hasSection("beta"));
  EXPECT_FALSE(r.hasSection("gamma"));

  ASSERT_TRUE(r.openSection("alpha"));
  EXPECT_EQ(r.getU8(), 7);
  EXPECT_EQ(r.getU32(), 0xdeadbeefu);
  EXPECT_EQ(r.getU64(), 0x0123456789abcdefull);
  EXPECT_TRUE(r.getBool());
  EXPECT_EQ(r.getDouble(), 3.25);
  EXPECT_EQ(r.getString(), "hello");
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.ok());

  // Sections can be opened in any order and re-opened.
  ASSERT_TRUE(r.openSection("beta"));
  EXPECT_EQ(r.getU64(), 42u);
  ASSERT_TRUE(r.openSection("alpha"));
  EXPECT_EQ(r.getU8(), 7);
}

TEST(Archive, MissingFileIsOpenFailed) {
  serial::ArchiveReader r(tmpPath("no-such-file.ckpt"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), serial::ArchiveError::OpenFailed);
}

TEST(Archive, RejectsForeignBytes) {
  const std::string p = tmpPath("foreign.ckpt");
  spit(p, "this is not an archive at all, not even close");
  serial::ArchiveReader r(p);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), serial::ArchiveError::BadMagic);
}

std::string validArchiveBytes() {
  const std::string p = tmpPath("template.ckpt");
  serial::ArchiveWriter w(p);
  w.beginSection("state");
  for (std::uint64_t i = 0; i < 32; ++i) w.putU64(i * 17);
  w.endSection();
  EXPECT_TRUE(w.close());
  return slurp(p);
}

TEST(Archive, RejectsUnsupportedVersion) {
  std::string bytes = validArchiveBytes();
  bytes[8] = 99;  // version field, little-endian low byte
  const std::string p = tmpPath("badver.ckpt");
  spit(p, bytes);
  serial::ArchiveReader r(p);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), serial::ArchiveError::BadVersion);
}

TEST(Archive, RejectsTruncatedFile) {
  std::string bytes = validArchiveBytes();
  const std::string p = tmpPath("trunc.ckpt");
  spit(p, bytes.substr(0, bytes.size() - 10));
  serial::ArchiveReader r(p);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), serial::ArchiveError::TruncatedSection);
}

TEST(Archive, RejectsFlippedPayloadByte) {
  std::string bytes = validArchiveBytes();
  bytes[bytes.size() - 3] ^= 0x40;  // inside the last payload word
  const std::string p = tmpPath("flip.ckpt");
  spit(p, bytes);
  serial::ArchiveReader r(p);
  ASSERT_TRUE(r.ok());  // framing parses; damage surfaces at openSection
  EXPECT_FALSE(r.openSection("state"));
  EXPECT_EQ(r.error(), serial::ArchiveError::ChecksumMismatch);
}

TEST(Archive, OverReadSetsShortReadAndReturnsZero) {
  const std::string p = tmpPath("short.ckpt");
  {
    serial::ArchiveWriter w(p);
    w.beginSection("tiny");
    w.putU8(5);
    w.endSection();
    ASSERT_TRUE(w.close());
  }
  serial::ArchiveReader r(p);
  ASSERT_TRUE(r.openSection("tiny"));
  EXPECT_EQ(r.getU8(), 5);
  EXPECT_EQ(r.getU64(), 0u);  // past the payload
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), serial::ArchiveError::ShortRead);
}

TEST(Archive, MissingSectionIsReported) {
  const std::string p = tmpPath("missing.ckpt");
  spit(p, validArchiveBytes());
  serial::ArchiveReader r(p);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.openSection("absent"));
  EXPECT_EQ(r.error(), serial::ArchiveError::SectionMissing);
}

// --- Pcg32 state -----------------------------------------------------------

TEST(Serial, Pcg32StateRoundTrip) {
  Pcg32 a(123, 456);
  for (int i = 0; i < 100; ++i) a.next();
  Pcg32::State s = a.saveState();
  Pcg32 b;
  b.restoreState(s);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

// --- Component round trips -------------------------------------------------

// Saves one component to a fresh archive file and returns the file bytes.
std::string saveToFile(const std::string& path, const serial::Checkpointable& c) {
  serial::ArchiveWriter w(path);
  serial::saveComponent(w, "c", c);
  EXPECT_TRUE(w.close());
  return slurp(path);
}

bool loadFromFile(const std::string& path, serial::Checkpointable& c) {
  serial::ArchiveReader r(path);
  return serial::loadComponent(r, "c", c);
}

mem::CacheConfig smallBankConfig() {
  mem::CacheConfig cfg;
  cfg.sizeBytes = 8 * 1024;
  cfg.ways = 2;
  cfg.trackFrameWrites = true;
  return cfg;
}

TEST(Serial, CacheBankRoundTripIsCanonical) {
  mem::CacheConfig cfg = smallBankConfig();
  mem::CacheBank a(cfg, "bank-a", 7);
  for (BlockAddr b = 100; b < 400; b += 3) {
    a.insert(b, (b % 2) == 0, (b % 5) == 0);
    a.access(b, (b % 7) == 0 ? AccessType::Write : AccessType::Read);
  }
  const std::string p1 = tmpPath("bank1.ckpt");
  const std::string bytes1 = saveToFile(p1, a);

  mem::CacheBank b(cfg, "bank-b", 99);  // different seed: RNG state restored too
  ASSERT_TRUE(loadFromFile(p1, b));
  EXPECT_EQ(a.validLines(), b.validLines());
  EXPECT_EQ(a.totalWrites(), b.totalWrites());
  EXPECT_EQ(a.frameWrites(), b.frameWrites());
  for (BlockAddr blk = 100; blk < 400; ++blk) {
    EXPECT_EQ(a.contains(blk), b.contains(blk)) << blk;
    EXPECT_EQ(a.lineCritical(blk), b.lineCritical(blk)) << blk;
  }

  const std::string p2 = tmpPath("bank2.ckpt");
  EXPECT_EQ(saveToFile(p2, b), bytes1);  // save -> load -> save byte-identical
}

TEST(Serial, CacheBankRejectsGeometryMismatch) {
  mem::CacheBank a(smallBankConfig(), "bank-a");
  a.insert(1, false);
  const std::string p = tmpPath("bankgeom.ckpt");
  saveToFile(p, a);

  mem::CacheConfig other = smallBankConfig();
  other.ways = 4;  // same size, different shape
  mem::CacheBank b(other, "bank-b");
  EXPECT_FALSE(loadFromFile(p, b));
}

TEST(Serial, TlbAndPageTableRoundTrip) {
  tlb::TlbConfig cfg;
  cfg.entries = 16;
  cfg.ways = 4;
  tlb::PageTable ptA;
  tlb::EnhancedTlb tlbA(cfg, &ptA, 0, "tlb-a");
  for (Addr va = 0; va < 64 * kPageBytes; va += kPageBytes) {
    tlbA.translate(va);
    tlbA.setMappingBit(va + 64, (va / kPageBytes) % 3 == 0);
  }
  const std::string pPt = tmpPath("pt.ckpt");
  const std::string pTlb = tmpPath("tlb.ckpt");
  const std::string ptBytes = saveToFile(pPt, ptA);
  const std::string tlbBytes = saveToFile(pTlb, tlbA);

  tlb::PageTable ptB;
  tlb::EnhancedTlb tlbB(cfg, &ptB, 0, "tlb-b");
  ASSERT_TRUE(loadFromFile(pPt, ptB));
  ASSERT_TRUE(loadFromFile(pTlb, tlbB));

  // Canonical bytes, checked before any mutating lookups below.
  EXPECT_EQ(saveToFile(tmpPath("pt2.ckpt"), ptB), ptBytes);
  EXPECT_EQ(saveToFile(tmpPath("tlb2.ckpt"), tlbB), tlbBytes);

  EXPECT_EQ(ptA.allocatedPages(), ptB.allocatedPages());
  for (Addr va = 0; va < 64 * kPageBytes; va += kPageBytes) {
    std::uint64_t vpn = pageOf(va);
    EXPECT_EQ(ptA.loadMbv(0, vpn), ptB.loadMbv(0, vpn));
    // Translations resolve identically (and reuse the same PPNs).
    EXPECT_EQ(tlbA.translate(va).paddr, tlbB.translate(va).paddr);
  }
  // Reverse map was rebuilt correctly.
  auto owner = ptB.ownerOf(1);
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(owner->first, 0u);
}

TEST(Serial, TlbRejectsGeometryMismatch) {
  tlb::TlbConfig cfg;
  cfg.entries = 16;
  cfg.ways = 4;
  tlb::PageTable pt;
  tlb::EnhancedTlb a(cfg, &pt, 0, "tlb-a");
  a.translate(0);
  const std::string p = tmpPath("tlbgeom.ckpt");
  saveToFile(p, a);

  tlb::TlbConfig other = cfg;
  other.entries = 32;
  tlb::EnhancedTlb b(other, &pt, 0, "tlb-b");
  EXPECT_FALSE(loadFromFile(p, b));
}

TEST(Serial, CptRoundTripPreservesFifoOrder) {
  core::CptConfig cfg;
  cfg.capacity = 4;
  core::CriticalityPredictorTable a(cfg);
  for (std::uint64_t pc = 0x400; pc < 0x400 + 6; ++pc) {
    a.train(pc, pc % 2 == 0);  // 6 PCs through a 4-entry table: 2 evictions
    a.train(pc, true);
  }
  ASSERT_EQ(a.size(), 4u);
  const std::string p = tmpPath("cpt.ckpt");
  const std::string bytes = saveToFile(p, a);

  core::CriticalityPredictorTable b(cfg);
  ASSERT_TRUE(loadFromFile(p, b));
  EXPECT_EQ(a.size(), b.size());
  for (std::uint64_t pc = 0x400; pc < 0x400 + 6; ++pc) {
    EXPECT_EQ(a.hasEntry(pc), b.hasEntry(pc));
    EXPECT_EQ(a.countersFor(pc).numLoadsCount, b.countersFor(pc).numLoadsCount);
    EXPECT_EQ(a.countersFor(pc).robBlockCount, b.countersFor(pc).robBlockCount);
  }
  EXPECT_EQ(saveToFile(tmpPath("cpt2.ckpt"), b), bytes);

  // FIFO order survived: the next insertion evicts the same victim.
  a.train(0x999, true);
  b.train(0x999, true);
  for (std::uint64_t pc = 0x400; pc < 0x400 + 6; ++pc) {
    EXPECT_EQ(a.hasEntry(pc), b.hasEntry(pc)) << pc;
  }
}

TEST(Serial, CptRejectsOverCapacitySnapshot) {
  core::CptConfig big;
  big.capacity = 64;
  core::CriticalityPredictorTable a(big);
  for (std::uint64_t pc = 0; pc < 32; ++pc) a.train(0x400 + pc, true);
  const std::string p = tmpPath("cptbig.ckpt");
  saveToFile(p, a);

  core::CptConfig tiny;
  tiny.capacity = 8;
  core::CriticalityPredictorTable b(tiny);
  EXPECT_FALSE(loadFromFile(p, b));
}

TEST(Serial, NaiveDirectoryRoundTrip) {
  std::vector<std::uint64_t> writes(4, 0);
  auto oracle = [&writes](BankId b) { return writes[b]; };
  core::NaivePolicy a(4, oracle);
  for (BlockAddr blk = 0; blk < 100; ++blk) {
    a.onFill(blk, static_cast<BankId>(blk % 4));
  }
  a.onEvict(50, 2);
  const std::string p = tmpPath("naive.ckpt");
  const std::string bytes = saveToFile(p, a);

  core::NaivePolicy b(4, oracle);
  ASSERT_TRUE(loadFromFile(p, b));
  EXPECT_EQ(a.directorySize(), b.directorySize());
  for (BlockAddr blk = 0; blk < 100; ++blk) {
    EXPECT_EQ(a.locate(blk, 0, false), b.locate(blk, 0, false)) << blk;
  }
  EXPECT_EQ(saveToFile(tmpPath("naive2.ckpt"), b), bytes);
}

TEST(Serial, GeneratorRoundTripResumesIdenticalStream) {
  const workload::AppProfile& prof = workload::profileByName("mcf");
  workload::SyntheticGenerator a(prof, 42);
  for (int i = 0; i < 5000; ++i) a.next();
  const std::string p = tmpPath("gen.ckpt");
  const std::string bytes = saveToFile(p, a);

  workload::SyntheticGenerator b(prof, 42);
  ASSERT_TRUE(loadFromFile(p, b));
  EXPECT_EQ(a.emitted(), b.emitted());
  EXPECT_EQ(saveToFile(tmpPath("gen2.ckpt"), b), bytes);
  for (int i = 0; i < 5000; ++i) {
    workload::TraceRecord ra = a.next();
    workload::TraceRecord rb = b.next();
    EXPECT_EQ(ra.kind, rb.kind);
    EXPECT_EQ(ra.vaddr, rb.vaddr);
    EXPECT_EQ(ra.pc, rb.pc);
  }
}

TEST(Serial, FaultModelRoundTrip) {
  rram::FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 5;
  cfg.budgetWrites = 500.0;
  cfg.sigma = 0.2;
  rram::BankFaultModel a(cfg, 0, 16, 4);
  const std::string p = tmpPath("fault.ckpt");
  const std::string bytes = saveToFile(p, a);

  rram::FaultConfig other = cfg;
  other.seed = 77;  // different budgets, same geometry
  rram::BankFaultModel b(other, 0, 16, 4);
  ASSERT_TRUE(loadFromFile(p, b));
  EXPECT_EQ(a.variations(), b.variations());
  for (std::uint32_t f = 0; f < a.numFrames(); ++f) {
    EXPECT_EQ(a.writeLimit(f), b.writeLimit(f));
  }
  EXPECT_EQ(saveToFile(tmpPath("fault2.ckpt"), b), bytes);

  rram::BankFaultModel c(cfg, 0, 16, 8);  // different geometry
  EXPECT_FALSE(loadFromFile(p, c));
}

TEST(Serial, MeshNocRejectsGeometryMismatch) {
  // 4x4 and 8x2 have the same node count; the snapshot must still refuse
  // to cross geometries, because link indices mean different wires.
  noc::MeshNoc a{noc::NocConfig{}};
  const std::string p = tmpPath("mesh44.ckpt");
  saveToFile(p, a);

  noc::NocConfig wide;
  wide.width = 8;
  wide.height = 2;
  noc::MeshNoc b(wide);
  EXPECT_FALSE(loadFromFile(p, b));

  noc::MeshNoc c{noc::NocConfig{}};
  EXPECT_TRUE(loadFromFile(p, c));
}

TEST(Serial, MeshNocAcceptsLegacyNodesOnlySection) {
  // Pre-topology archives recorded only the node count.  They are accepted
  // as long as it matches (geometry then rides on the fingerprint).
  const std::string p = tmpPath("meshlegacy.ckpt");
  {
    serial::ArchiveWriter w(p);
    w.beginSection("c");
    w.putU32(16);
    w.endSection();
    ASSERT_TRUE(w.close());
  }
  noc::MeshNoc mesh{noc::NocConfig{}};
  EXPECT_TRUE(loadFromFile(p, mesh));

  noc::NocConfig small;
  small.width = 2;
  small.height = 2;
  noc::MeshNoc other(small);
  EXPECT_FALSE(loadFromFile(p, other));
}

// --- Fingerprint rules -----------------------------------------------------

sim::SystemConfig fastSingleCore() {
  sim::SystemConfig cfg = sim::singleCore();
  cfg.policy = core::PolicyKind::ReNuca;
  cfg.clusterSize = 1;  // the single-core rig has one LLC bank
  cfg.instrPerCore = 4000;
  cfg.warmupInstrPerCore = 1000;
  cfg.prewarmInstrPerCore = 40000;
  cfg.placementRefreshInstrPerCore = 15000;
  return cfg;
}

workload::WorkloadMix singleAppMix(const std::string& app) {
  workload::WorkloadMix mix;
  mix.name = app;
  mix.appNames = {app};
  return mix;
}

TEST(Fingerprint, ExcludesMeasurementOnlyKnobs) {
  sim::SystemConfig a = fastSingleCore();
  sim::SystemConfig b = a;
  workload::WorkloadMix mix = singleAppMix("mcf");
  // None of these affect what the untimed fast-forward does.
  b.cpt.thresholdPct = 75.0;
  b.cpt.capacity = 128;
  b.instrPerCore = 123456;
  b.warmupInstrPerCore = 777;
  b.placementRefreshInstrPerCore = 999;
  b.maxCycles = 1;
  b.epochInstrs = 50;
  b.coreCfg.robEntries = 168;
  b.l3.latency = 1;
  b.dramCfg.tCl = 5;
  EXPECT_EQ(sim::warmStateFingerprint(a, mix), sim::warmStateFingerprint(b, mix));
}

TEST(Fingerprint, IncludesWarmupRelevantKnobs) {
  sim::SystemConfig base = fastSingleCore();
  workload::WorkloadMix mix = singleAppMix("mcf");
  const std::uint64_t fp = sim::warmStateFingerprint(base, mix);

  sim::SystemConfig c1 = base;
  c1.seed = base.seed + 1;
  EXPECT_NE(sim::warmStateFingerprint(c1, mix), fp);

  sim::SystemConfig c2 = base;
  c2.policy = core::PolicyKind::SNuca;
  EXPECT_NE(sim::warmStateFingerprint(c2, mix), fp);

  sim::SystemConfig c3 = base;
  c3.prewarmInstrPerCore += 1;
  EXPECT_NE(sim::warmStateFingerprint(c3, mix), fp);

  sim::SystemConfig c4 = base;
  c4.l2.sizeBytes *= 2;
  EXPECT_NE(sim::warmStateFingerprint(c4, mix), fp);

  sim::SystemConfig c5 = base;
  c5.fault.enabled = true;
  EXPECT_NE(sim::warmStateFingerprint(c5, mix), fp);

  sim::SystemConfig c6 = base;
  c6.cpt.coldPredictsCritical = true;
  EXPECT_NE(sim::warmStateFingerprint(c6, mix), fp);

  EXPECT_NE(sim::warmStateFingerprint(base, singleAppMix("lbm")), fp);
}

// --- End-to-end snapshot contract ------------------------------------------

/// Strips report lines carrying provenance that is allowed to differ
/// between runs (timestamps, wall time, host, worker count).
std::string stripProvenance(const std::string& report) {
  std::istringstream is(report);
  std::ostringstream os;
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("\"generated_unix\"") != std::string::npos) continue;
    if (line.find("\"wall_seconds\"") != std::string::npos) continue;
    if (line.find("\"host\"") != std::string::npos) continue;
    if (line.find("\"jobs\"") != std::string::npos) continue;
    os << line << '\n';
  }
  return os.str();
}

std::string reportFor(const sim::SystemConfig& cfg, const sim::RunResult& r,
                      const char* tag) {
  const std::string p = tmpPath((std::string("rep-") + tag + ".json").c_str());
  EXPECT_TRUE(sim::writeRunReport(p, "snapshot-test", cfg, {{tag, r}}, 0.0));
  return stripProvenance(slurp(p));
}

TEST(Snapshot, RestoredRunIsByteIdenticalToColdRun) {
  const std::string ckpt = tmpPath("warm.ckpt");
  std::remove(ckpt.c_str());
  workload::WorkloadMix mix = singleAppMix("mcf");

  // Cold baseline (no snapshot involvement at all).
  sim::SystemConfig cold = fastSingleCore();
  sim::RunResult rCold = sim::System(cold, mix).run();

  // Saving a snapshot must not perturb the run that saves it.
  sim::SystemConfig saver = fastSingleCore();
  saver.snapshotSavePath = ckpt;
  sim::RunResult rSave = sim::System(saver, mix).run();
  EXPECT_EQ(reportFor(cold, rSave, "run"), reportFor(cold, rCold, "run"));

  // Restoring replaces the fast-forward and reproduces the report bytes.
  sim::SystemConfig loader = fastSingleCore();
  loader.snapshotLoadPath = ckpt;
  sim::RunResult rLoad = sim::System(loader, mix).run();
  EXPECT_EQ(reportFor(cold, rLoad, "run"), reportFor(cold, rCold, "run"));
}

TEST(Snapshot, PreRefactorCheckpointStillRestores) {
  // tests/data/prerefactor_singlecore_mcf.ckpt was written by the
  // pre-SoA-refactor simulator, whose archives interleave per-entry
  // records and carry whatever stale tag/VPN bytes invalid frames last
  // held.  The SoA cache/TLB must keep accepting that layout (normalizing
  // invalid entries to the in-memory sentinels) and reproduce the cold
  // run's report bytes exactly.
  const std::string ckpt =
      std::string(RENUCA_TEST_DATA_DIR) + "/prerefactor_singlecore_mcf.ckpt";
  workload::WorkloadMix mix = singleAppMix("mcf");

  sim::SystemConfig cold = fastSingleCore();
  sim::RunResult rCold = sim::System(cold, mix).run();

  // Explicit restore first: byte-identity alone would not distinguish a
  // successful restore from a silent fall-back to the cold fast-forward.
  sim::SystemConfig loader = fastSingleCore();
  {
    sim::System probe(loader, mix);
    ASSERT_TRUE(probe.restoreFrom(ckpt));
  }
  loader.snapshotLoadPath = ckpt;
  sim::RunResult rLoad = sim::System(loader, mix).run();
  EXPECT_EQ(reportFor(cold, rLoad, "run"), reportFor(cold, rCold, "run"));

  // Restore -> save canonicalizes the old bytes (stale invalid-entry tags
  // become sentinels); a second round trip must then be byte-stable.
  const std::string p1 = tmpPath("prerefactor-resave1.ckpt");
  const std::string p2 = tmpPath("prerefactor-resave2.ckpt");
  {
    sim::System sys(fastSingleCore(), mix);
    ASSERT_TRUE(sys.restoreFrom(ckpt));
    ASSERT_TRUE(sys.snapshot(p1));
  }
  {
    sim::System sys(fastSingleCore(), mix);
    ASSERT_TRUE(sys.restoreFrom(p1));
    ASSERT_TRUE(sys.snapshot(p2));
  }
  EXPECT_EQ(slurp(p1), slurp(p2));
}

TEST(Snapshot, SaveLoadSaveProducesIdenticalArchives) {
  const std::string p1 = tmpPath("ss1.ckpt");
  const std::string p2 = tmpPath("ss2.ckpt");
  workload::WorkloadMix mix = singleAppMix("mcf");
  sim::SystemConfig cfg = fastSingleCore();
  cfg.snapshotSavePath = p1;
  sim::System(cfg, mix).run();

  sim::SystemConfig cfg2 = fastSingleCore();
  sim::System sys(cfg2, mix);
  ASSERT_TRUE(sys.restoreFrom(p1));
  ASSERT_TRUE(sys.snapshot(p2));
  EXPECT_EQ(slurp(p1), slurp(p2));
}

TEST(Snapshot, CorruptSnapshotFallsBackToColdFastForward) {
  const std::string ckpt = tmpPath("corrupt.ckpt");
  workload::WorkloadMix mix = singleAppMix("mcf");
  sim::SystemConfig cfg = fastSingleCore();
  cfg.snapshotSavePath = ckpt;
  sim::RunResult rCold = sim::System(cfg, mix).run();

  // Flip one payload byte near the end: restore must refuse before
  // touching any state, and the run must match the cold result.
  std::string bytes = slurp(ckpt);
  ASSERT_GT(bytes.size(), 100u);
  bytes[bytes.size() - 5] ^= 0x10;
  spit(ckpt, bytes);

  sim::SystemConfig loader = fastSingleCore();
  loader.snapshotLoadPath = ckpt;
  sim::System sys(loader, mix);
  EXPECT_FALSE(sys.restoreFrom(ckpt));
  sim::RunResult rFall = sys.run();

  sim::SystemConfig base = fastSingleCore();
  EXPECT_EQ(reportFor(base, rFall, "run"), reportFor(base, rCold, "run"));
}

TEST(Snapshot, MismatchedConfigurationIsRejected) {
  const std::string ckpt = tmpPath("mismatch.ckpt");
  workload::WorkloadMix mix = singleAppMix("mcf");
  sim::SystemConfig cfg = fastSingleCore();
  cfg.snapshotSavePath = ckpt;
  sim::System(cfg, mix).run();

  sim::SystemConfig other = fastSingleCore();
  other.seed = cfg.seed + 13;
  sim::System sys(other, mix);
  EXPECT_FALSE(sys.restoreFrom(ckpt));
}

TEST(Snapshot, PlacementMismatchIsRejected) {
  // Same geometry, different placement: the fingerprint carries the
  // placement key for non-default placements, so a snapshot taken under
  // the default corner MCs must not restore into a ring-MC run.
  const std::string ckpt = tmpPath("placemismatch.ckpt");
  workload::WorkloadMix mix = singleAppMix("mcf");
  sim::SystemConfig cfg = fastSingleCore();
  cfg.snapshotSavePath = ckpt;
  sim::System(cfg, mix).run();

  sim::SystemConfig ring = fastSingleCore();
  ring.placement.mcEdge = noc::McEdge::Ring;
  sim::System sys(ring, mix);
  EXPECT_FALSE(sys.restoreFrom(ckpt));
}

TEST(Fingerprint, PlacementChangesFingerprint) {
  sim::SystemConfig base = fastSingleCore();
  workload::WorkloadMix mix = singleAppMix("mcf");
  const std::uint64_t fp = sim::warmStateFingerprint(base, mix);

  sim::SystemConfig ring = base;
  ring.placement.mcEdge = noc::McEdge::Ring;
  EXPECT_NE(sim::warmStateFingerprint(ring, mix), fp);

  sim::SystemConfig twoMcs = base;
  twoMcs.placement.numMcs = 2;
  EXPECT_NE(sim::warmStateFingerprint(twoMcs, mix), fp);
}

TEST(Fingerprint, CompressionChangesFingerprint) {
  // compress=none must keep the seed fingerprint (snapshots stay shareable
  // with uncompressed runs); any engine changes it, and different engines
  // differ from each other (their frame descriptors are not exchangeable).
  sim::SystemConfig base = fastSingleCore();
  workload::WorkloadMix mix = singleAppMix("mcf");
  const std::uint64_t fp = sim::warmStateFingerprint(base, mix);

  sim::SystemConfig off = base;
  off.compress = compress::Kind::None;
  EXPECT_EQ(sim::warmStateFingerprint(off, mix), fp);

  sim::SystemConfig bdi = base;
  bdi.compress = compress::Kind::Bdi;
  sim::SystemConfig both = base;
  both.compress = compress::Kind::BdiFpc;
  EXPECT_NE(sim::warmStateFingerprint(bdi, mix), fp);
  EXPECT_NE(sim::warmStateFingerprint(both, mix), fp);
  EXPECT_NE(sim::warmStateFingerprint(bdi, mix), sim::warmStateFingerprint(both, mix));
}

TEST(Snapshot, CompressedSaveLoadSaveIsByteStable) {
  const std::string p1 = tmpPath("cmp-ss1.ckpt");
  const std::string p2 = tmpPath("cmp-ss2.ckpt");
  workload::WorkloadMix mix = singleAppMix("mcf");
  sim::SystemConfig cfg = fastSingleCore();
  cfg.compress = compress::Kind::BdiFpc;
  cfg.snapshotSavePath = p1;
  sim::System(cfg, mix).run();

  // The archive must actually carry the compression state sections.
  {
    serial::ArchiveReader ar(p1);
    ASSERT_TRUE(ar.ok());
    EXPECT_TRUE(ar.hasSection("cmp0"));
    EXPECT_TRUE(ar.hasSection("cmpmeta"));
  }

  sim::SystemConfig cfg2 = fastSingleCore();
  cfg2.compress = compress::Kind::BdiFpc;
  sim::System sys(cfg2, mix);
  ASSERT_TRUE(sys.restoreFrom(p1));
  ASSERT_TRUE(sys.snapshot(p2));
  EXPECT_EQ(slurp(p1), slurp(p2));
}

TEST(Snapshot, CompressedRestoreReproducesRun) {
  const std::string ckpt = tmpPath("cmp-restore.ckpt");
  workload::WorkloadMix mix = singleAppMix("mcf");
  sim::SystemConfig cfg = fastSingleCore();
  cfg.compress = compress::Kind::BdiFpc;
  cfg.snapshotSavePath = ckpt;
  sim::RunResult rCold = sim::System(cfg, mix).run();

  sim::SystemConfig loader = fastSingleCore();
  loader.compress = compress::Kind::BdiFpc;
  loader.snapshotLoadPath = ckpt;
  sim::RunResult rWarm = sim::System(loader, mix).run();
  sim::SystemConfig base = fastSingleCore();
  base.compress = compress::Kind::BdiFpc;
  EXPECT_EQ(reportFor(base, rWarm, "run"), reportFor(base, rCold, "run"));
}

TEST(Snapshot, PreCompressionCheckpointRefusedUnderCompression) {
  // The committed pre-compression fixture restores fine into an
  // uncompressed run (Snapshot.PreRefactorCheckpointStillRestores) but
  // must be refused by a compressed config: it carries no frame content
  // descriptors, and silently restoring would fake virgin cells.  The
  // fingerprint's compress suffix is what rejects it.
  const std::string ckpt =
      std::string(RENUCA_TEST_DATA_DIR) + "/prerefactor_singlecore_mcf.ckpt";
  workload::WorkloadMix mix = singleAppMix("mcf");
  sim::SystemConfig cfg = fastSingleCore();
  cfg.compress = compress::Kind::BdiFpc;
  sim::System sys(cfg, mix);
  EXPECT_FALSE(sys.restoreFrom(ckpt));
}

TEST(Snapshot, SharingRunsRefuseToSnapshot) {
  workload::WorkloadMix mix = singleAppMix("mcf");
  sim::SystemConfig cfg = fastSingleCore();
  cfg.enableSharing = true;
  sim::System sys(cfg, mix);
  EXPECT_FALSE(sys.snapshot(tmpPath("sharing.ckpt")));
}

// --- Sweep warm-start reuse ------------------------------------------------

sim::SweepPlan thresholdPlan() {
  sim::SweepPlan plan;
  for (const char* app : {"mcf", "lbm"}) {
    for (double threshold : {3.0, 50.0}) {
      sim::SystemConfig cfg = fastSingleCore();
      cfg.cpt.thresholdPct = threshold;
      plan.addSingleApp(std::string(app) + "/t" + std::to_string(threshold), cfg,
                        app);
    }
  }
  return plan;
}

void expectSameResults(const std::vector<sim::RunResult>& a,
                       const std::vector<sim::RunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].measuredCycles, b[i].measuredCycles) << i;
    EXPECT_EQ(a[i].coreIpc, b[i].coreIpc) << i;
    EXPECT_EQ(a[i].bankWrites, b[i].bankWrites) << i;
    EXPECT_EQ(a[i].coreCommitted, b[i].coreCommitted) << i;
    EXPECT_DOUBLE_EQ(a[i].nonCriticalWriteFrac, b[i].nonCriticalWriteFrac) << i;
  }
}

TEST(SweepWarmStart, SerialWarmStartMatchesColdSweep) {
  sim::SweepPlan plan = thresholdPlan();
  sim::SweepOptions coldOpts;
  coldOpts.jobs = 1;
  std::vector<sim::RunResult> cold = sim::runPlan(plan, coldOpts);

  const std::string dir = tmpPath("warmdir-serial");
  std::filesystem::remove_all(dir);
  sim::SweepOptions warmOpts;
  warmOpts.jobs = 1;
  warmOpts.warmStartDir = dir;
  std::vector<sim::RunResult> warm = sim::runPlan(plan, warmOpts);
  expectSameResults(cold, warm);

  // One shared snapshot per app (the two thresholds share a fingerprint).
  std::size_t snapshots = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".ckpt") ++snapshots;
  }
  EXPECT_EQ(snapshots, 2u);
}

TEST(SweepWarmStart, ParallelWarmStartMatchesColdSweep) {
  sim::SweepPlan plan = thresholdPlan();
  sim::SweepOptions coldOpts;
  coldOpts.jobs = 1;
  std::vector<sim::RunResult> cold = sim::runPlan(plan, coldOpts);

  const std::string dir = tmpPath("warmdir-par");
  std::filesystem::remove_all(dir);
  sim::SweepOptions warmOpts;
  warmOpts.jobs = 4;
  warmOpts.warmStartDir = dir;
  std::vector<sim::RunResult> warm = sim::runPlan(plan, warmOpts);
  expectSameResults(cold, warm);

  // A second sweep over the same directory reuses the snapshots (every
  // matching job becomes a follower) and still matches.
  std::vector<sim::RunResult> again = sim::runPlan(plan, warmOpts);
  expectSameResults(cold, again);
}

}  // namespace
}  // namespace renuca
