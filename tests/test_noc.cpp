// Tests for the 4x4 mesh NoC: XY routing geometry, hop counts, latency
// composition, link contention, and traffic accounting.
#include <gtest/gtest.h>

#include "noc/mesh.hpp"

namespace renuca::noc {
namespace {

NocConfig defaultMesh() { return NocConfig{}; }

TEST(Mesh, Geometry) {
  MeshNoc mesh(defaultMesh());
  EXPECT_EQ(mesh.numNodes(), 16u);
  EXPECT_EQ(mesh.xOf(5), 1u);
  EXPECT_EQ(mesh.yOf(5), 1u);
  EXPECT_EQ(mesh.nodeAt(3, 2), 11u);
}

TEST(Mesh, HopCountsAreManhattan) {
  MeshNoc mesh(defaultMesh());
  EXPECT_EQ(mesh.hopCount(0, 0), 0u);
  EXPECT_EQ(mesh.hopCount(0, 1), 1u);
  EXPECT_EQ(mesh.hopCount(0, 15), 6u);   // (0,0) -> (3,3)
  EXPECT_EQ(mesh.hopCount(3, 12), 6u);   // (3,0) -> (0,3)
  EXPECT_EQ(mesh.hopCount(5, 6), 1u);
  EXPECT_EQ(mesh.hopCount(5, 10), 2u);
}

TEST(Mesh, HopCountSymmetric) {
  MeshNoc mesh(defaultMesh());
  for (std::uint32_t a = 0; a < 16; ++a) {
    for (std::uint32_t b = 0; b < 16; ++b) {
      EXPECT_EQ(mesh.hopCount(a, b), mesh.hopCount(b, a));
    }
  }
}

TEST(Mesh, LocalTraverseIsFree) {
  MeshNoc mesh(defaultMesh());
  EXPECT_EQ(mesh.traverse(7, 7, 100, 4), 100u);
  EXPECT_EQ(mesh.stats().get("packets"), 0u);
}

TEST(Mesh, UncontendedLatencyIsHopsTimesHopLatency) {
  MeshNoc mesh(defaultMesh());
  Cycle arrive = mesh.traverse(0, 15, 1000, 1);
  EXPECT_EQ(arrive, 1000u + 6 * mesh.config().hopLatency);
}

TEST(Mesh, ContentionDelaysSecondPacket) {
  NocConfig cfg;
  cfg.linkFlitCycles = 4;
  MeshNoc mesh(cfg);
  Cycle a = mesh.traverse(0, 1, 0, 4);  // 4 flits hold the link 16 cycles
  Cycle b = mesh.traverse(0, 1, 0, 4);  // queues behind
  EXPECT_GT(b, a);
}

TEST(Mesh, DisjointPathsDontInterfere) {
  MeshNoc mesh(defaultMesh());
  Cycle a = mesh.traverse(0, 1, 0, 4);
  Cycle b = mesh.traverse(14, 15, 0, 4);  // far corner, different links
  EXPECT_EQ(a, b);
}

TEST(Mesh, OppositeDirectionsAreSeparateLinks) {
  MeshNoc mesh(defaultMesh());
  Cycle a = mesh.traverse(0, 1, 0, 4);  // east
  Cycle b = mesh.traverse(1, 0, 0, 4);  // west (reverse)
  EXPECT_EQ(a, b);  // no shared link
}

TEST(Mesh, XyRoutingUsesExpectedLinks) {
  MeshNoc mesh(defaultMesh());
  mesh.traverse(0, 5, 0, 1);  // (0,0) -> (1,1): east from 0, south from 1
  EXPECT_EQ(mesh.linkTraffic(0, Dir::East), 1u);
  EXPECT_EQ(mesh.linkTraffic(1, Dir::South), 1u);
  EXPECT_EQ(mesh.linkTraffic(0, Dir::South), 0u);  // X before Y
}

TEST(Mesh, TrafficAccumulates) {
  MeshNoc mesh(defaultMesh());
  for (int i = 0; i < 10; ++i) mesh.traverse(0, 3, i * 100, 4);
  EXPECT_EQ(mesh.linkTraffic(0, Dir::East), 40u);
  EXPECT_EQ(mesh.linkTraffic(1, Dir::East), 40u);
  EXPECT_EQ(mesh.linkTraffic(2, Dir::East), 40u);
  EXPECT_EQ(mesh.stats().get("packets"), 10u);
}

TEST(Mesh, RoundTripAccountsBothDirections) {
  MeshNoc mesh(defaultMesh());
  Cycle done = mesh.roundTrip(0, 2, 0);
  // 2 hops there + 2 hops back, at least.
  EXPECT_GE(done, 4u * mesh.config().hopLatency);
  EXPECT_EQ(mesh.stats().get("packets"), 2u);
}

TEST(Mesh, AvgLatencyTracksCongestion) {
  NocConfig cfg;
  cfg.linkFlitCycles = 8;
  MeshNoc light(cfg), heavy(cfg);
  light.traverse(0, 1, 0, 4);
  double lightLat = light.avgPacketLatency();
  for (int i = 0; i < 50; ++i) heavy.traverse(0, 1, 0, 4);
  EXPECT_GT(heavy.avgPacketLatency(), lightLat);
}

TEST(Mesh, SingleNodeMeshWorks) {
  NocConfig cfg;
  cfg.width = 1;
  cfg.height = 1;
  MeshNoc mesh(cfg);
  EXPECT_EQ(mesh.numNodes(), 1u);
  EXPECT_EQ(mesh.traverse(0, 0, 55, 4), 55u);
}

TEST(Mesh, RectangularHopCountGoldens) {
  NocConfig cfg;
  cfg.width = 8;
  cfg.height = 4;
  MeshNoc mesh(cfg);
  EXPECT_EQ(mesh.numNodes(), 32u);
  EXPECT_EQ(mesh.nodeAt(7, 3), 31u);
  EXPECT_EQ(mesh.hopCount(0, 31), 10u);  // (0,0) -> (7,3)
  EXPECT_EQ(mesh.hopCount(7, 24), 10u);  // (7,0) -> (0,3)
  EXPECT_EQ(mesh.hopCount(9, 14), 5u);   // (1,1) -> (6,1)
  EXPECT_EQ(mesh.hopCount(8, 16), 1u);   // (0,1) -> (0,2)
}

TEST(Mesh, OneWideMeshIsALine) {
  NocConfig cfg;
  cfg.width = 1;
  cfg.height = 8;
  MeshNoc tall(cfg);
  EXPECT_EQ(tall.hopCount(0, 7), 7u);
  EXPECT_EQ(tall.hopCount(3, 5), 2u);
  EXPECT_EQ(tall.traverse(0, 7, 0, 1), 7u * cfg.hopLatency);
  cfg.width = 8;
  cfg.height = 1;
  MeshNoc wide(cfg);
  EXPECT_EQ(wide.hopCount(0, 7), 7u);
  EXPECT_EQ(wide.traverse(7, 0, 0, 1), 7u * cfg.hopLatency);
}

TEST(Mesh, LinkTrafficConservesFlitHops) {
  // Every flit crosses exactly hopCount links, so summed link traffic must
  // equal the flit-hop product over all packets — on any geometry.
  for (auto [w, h] : {std::pair{4, 4}, std::pair{8, 4}, std::pair{1, 8}}) {
    NocConfig cfg;
    cfg.width = static_cast<std::uint32_t>(w);
    cfg.height = static_cast<std::uint32_t>(h);
    MeshNoc mesh(cfg);
    std::uint64_t expected = 0;
    std::uint32_t n = mesh.numNodes();
    for (std::uint32_t s = 0; s < n; ++s) {
      std::uint32_t d = (s * 7 + 3) % n;
      std::uint32_t flits = 1 + s % 4;
      mesh.traverse(s, d, s * 10, flits);
      expected += static_cast<std::uint64_t>(flits) * mesh.hopCount(s, d);
    }
    std::uint64_t total = 0;
    for (std::uint32_t node = 0; node < n; ++node) {
      for (Dir dir : {Dir::East, Dir::West, Dir::North, Dir::South}) {
        total += mesh.linkTraffic(node, dir);
      }
    }
    EXPECT_EQ(total, expected) << w << "x" << h;
  }
}

TEST(Mesh, ContentionIsDeterministicOn8x8) {
  // Two identical 8x8 meshes fed the same packet sequence must produce the
  // same arrival times, and the first few arrivals match fixed goldens
  // (hopLatency=8, linkFlitCycles from the default config).
  NocConfig cfg;
  cfg.width = 8;
  cfg.height = 8;
  cfg.linkFlitCycles = 4;
  MeshNoc a(cfg), b(cfg);
  std::vector<Cycle> arriveA, arriveB;
  for (std::uint32_t i = 0; i < 64; ++i) {
    std::uint32_t src = i;
    std::uint32_t dst = 63 - i;
    arriveA.push_back(a.traverse(src, dst, i, 4));
    arriveB.push_back(b.traverse(src, dst, i, 4));
  }
  EXPECT_EQ(arriveA, arriveB);
  // Packet 0: 0 -> 63 is 14 hops uncontended from cycle 0.
  EXPECT_EQ(arriveA[0], 14u * cfg.hopLatency);
  // Packet 31: 31 -> 32 crosses the whole row then one column; it departs
  // at cycle 31 into a mesh already carrying 31 packets, so it can only be
  // slower than its uncontended time.
  EXPECT_GE(arriveA[31], 31u + 8u * cfg.hopLatency);
}

// Property sweep over mesh sizes: arrival time never precedes departure,
// and uncontended latency is monotone in distance.
class MeshSizeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MeshSizeTest, LatencyMonotoneInDistance) {
  auto [w, h] = GetParam();
  NocConfig cfg;
  cfg.width = static_cast<std::uint32_t>(w);
  cfg.height = static_cast<std::uint32_t>(h);
  MeshNoc mesh(cfg);
  Cycle prev = 0;
  for (std::uint32_t dst = 0; dst < mesh.numNodes(); ++dst) {
    MeshNoc fresh(cfg);
    Cycle arrive = fresh.traverse(0, dst, 0, 1);
    EXPECT_EQ(arrive, fresh.hopCount(0, dst) * cfg.hopLatency);
    (void)prev;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshSizeTest,
                         ::testing::Values(std::pair{2, 2}, std::pair{4, 4},
                                           std::pair{8, 2}, std::pair{1, 4}));

}  // namespace
}  // namespace renuca::noc
