// Tests for the 4x4 mesh NoC: XY routing geometry, hop counts, latency
// composition, link contention, and traffic accounting.
#include <gtest/gtest.h>

#include "noc/mesh.hpp"

namespace renuca::noc {
namespace {

NocConfig defaultMesh() { return NocConfig{}; }

TEST(Mesh, Geometry) {
  MeshNoc mesh(defaultMesh());
  EXPECT_EQ(mesh.numNodes(), 16u);
  EXPECT_EQ(mesh.xOf(5), 1u);
  EXPECT_EQ(mesh.yOf(5), 1u);
  EXPECT_EQ(mesh.nodeAt(3, 2), 11u);
}

TEST(Mesh, HopCountsAreManhattan) {
  MeshNoc mesh(defaultMesh());
  EXPECT_EQ(mesh.hopCount(0, 0), 0u);
  EXPECT_EQ(mesh.hopCount(0, 1), 1u);
  EXPECT_EQ(mesh.hopCount(0, 15), 6u);   // (0,0) -> (3,3)
  EXPECT_EQ(mesh.hopCount(3, 12), 6u);   // (3,0) -> (0,3)
  EXPECT_EQ(mesh.hopCount(5, 6), 1u);
  EXPECT_EQ(mesh.hopCount(5, 10), 2u);
}

TEST(Mesh, HopCountSymmetric) {
  MeshNoc mesh(defaultMesh());
  for (std::uint32_t a = 0; a < 16; ++a) {
    for (std::uint32_t b = 0; b < 16; ++b) {
      EXPECT_EQ(mesh.hopCount(a, b), mesh.hopCount(b, a));
    }
  }
}

TEST(Mesh, LocalTraverseIsFree) {
  MeshNoc mesh(defaultMesh());
  EXPECT_EQ(mesh.traverse(7, 7, 100, 4), 100u);
  EXPECT_EQ(mesh.stats().get("packets"), 0u);
}

TEST(Mesh, UncontendedLatencyIsHopsTimesHopLatency) {
  MeshNoc mesh(defaultMesh());
  Cycle arrive = mesh.traverse(0, 15, 1000, 1);
  EXPECT_EQ(arrive, 1000u + 6 * mesh.config().hopLatency);
}

TEST(Mesh, ContentionDelaysSecondPacket) {
  NocConfig cfg;
  cfg.linkFlitCycles = 4;
  MeshNoc mesh(cfg);
  Cycle a = mesh.traverse(0, 1, 0, 4);  // 4 flits hold the link 16 cycles
  Cycle b = mesh.traverse(0, 1, 0, 4);  // queues behind
  EXPECT_GT(b, a);
}

TEST(Mesh, DisjointPathsDontInterfere) {
  MeshNoc mesh(defaultMesh());
  Cycle a = mesh.traverse(0, 1, 0, 4);
  Cycle b = mesh.traverse(14, 15, 0, 4);  // far corner, different links
  EXPECT_EQ(a, b);
}

TEST(Mesh, OppositeDirectionsAreSeparateLinks) {
  MeshNoc mesh(defaultMesh());
  Cycle a = mesh.traverse(0, 1, 0, 4);  // east
  Cycle b = mesh.traverse(1, 0, 0, 4);  // west (reverse)
  EXPECT_EQ(a, b);  // no shared link
}

TEST(Mesh, XyRoutingUsesExpectedLinks) {
  MeshNoc mesh(defaultMesh());
  mesh.traverse(0, 5, 0, 1);  // (0,0) -> (1,1): east from 0, south from 1
  EXPECT_EQ(mesh.linkTraffic(0, Dir::East), 1u);
  EXPECT_EQ(mesh.linkTraffic(1, Dir::South), 1u);
  EXPECT_EQ(mesh.linkTraffic(0, Dir::South), 0u);  // X before Y
}

TEST(Mesh, TrafficAccumulates) {
  MeshNoc mesh(defaultMesh());
  for (int i = 0; i < 10; ++i) mesh.traverse(0, 3, i * 100, 4);
  EXPECT_EQ(mesh.linkTraffic(0, Dir::East), 40u);
  EXPECT_EQ(mesh.linkTraffic(1, Dir::East), 40u);
  EXPECT_EQ(mesh.linkTraffic(2, Dir::East), 40u);
  EXPECT_EQ(mesh.stats().get("packets"), 10u);
}

TEST(Mesh, RoundTripAccountsBothDirections) {
  MeshNoc mesh(defaultMesh());
  Cycle done = mesh.roundTrip(0, 2, 0);
  // 2 hops there + 2 hops back, at least.
  EXPECT_GE(done, 4u * mesh.config().hopLatency);
  EXPECT_EQ(mesh.stats().get("packets"), 2u);
}

TEST(Mesh, AvgLatencyTracksCongestion) {
  NocConfig cfg;
  cfg.linkFlitCycles = 8;
  MeshNoc light(cfg), heavy(cfg);
  light.traverse(0, 1, 0, 4);
  double lightLat = light.avgPacketLatency();
  for (int i = 0; i < 50; ++i) heavy.traverse(0, 1, 0, 4);
  EXPECT_GT(heavy.avgPacketLatency(), lightLat);
}

TEST(Mesh, SingleNodeMeshWorks) {
  NocConfig cfg;
  cfg.width = 1;
  cfg.height = 1;
  MeshNoc mesh(cfg);
  EXPECT_EQ(mesh.numNodes(), 1u);
  EXPECT_EQ(mesh.traverse(0, 0, 55, 4), 55u);
}

// Property sweep over mesh sizes: arrival time never precedes departure,
// and uncontended latency is monotone in distance.
class MeshSizeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MeshSizeTest, LatencyMonotoneInDistance) {
  auto [w, h] = GetParam();
  NocConfig cfg;
  cfg.width = static_cast<std::uint32_t>(w);
  cfg.height = static_cast<std::uint32_t>(h);
  MeshNoc mesh(cfg);
  Cycle prev = 0;
  for (std::uint32_t dst = 0; dst < mesh.numNodes(); ++dst) {
    MeshNoc fresh(cfg);
    Cycle arrive = fresh.traverse(0, dst, 0, 1);
    EXPECT_EQ(arrive, fresh.hopCount(0, dst) * cfg.hopLatency);
    (void)prev;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshSizeTest,
                         ::testing::Values(std::pair{2, 2}, std::pair{4, 4},
                                           std::pair{8, 2}, std::pair{1, 4}));

}  // namespace
}  // namespace renuca::noc
