// Tests for the directory MESI protocol: the full transition table plus a
// randomized property test that hammers the protocol with arbitrary
// read/write/evict sequences and checks the invariants after every step.
#include <gtest/gtest.h>

#include "coherence/mesi.hpp"
#include "common/rng.hpp"

namespace renuca::coherence {
namespace {

TEST(Mesi, FirstReadGetsExclusive) {
  DirectoryMesi dir(4);
  Outcome out = dir.read(0, 100);
  EXPECT_EQ(out.newState, MesiState::E);
  EXPECT_TRUE(out.invalidated.empty());
  EXPECT_FALSE(out.cacheToCache);
  EXPECT_EQ(dir.stateOf(0, 100), MesiState::E);
}

TEST(Mesi, SecondReadSharesAndDowngradesExclusive) {
  DirectoryMesi dir(4);
  dir.read(0, 100);
  Outcome out = dir.read(1, 100);
  EXPECT_EQ(out.newState, MesiState::S);
  EXPECT_TRUE(out.cacheToCache);
  EXPECT_FALSE(out.writebackToMemory);  // E was clean
  EXPECT_EQ(dir.stateOf(0, 100), MesiState::S);
  EXPECT_EQ(dir.stateOf(1, 100), MesiState::S);
}

TEST(Mesi, ReadOfModifiedFlushesOwner) {
  DirectoryMesi dir(4);
  dir.write(0, 100);
  ASSERT_EQ(dir.stateOf(0, 100), MesiState::M);
  Outcome out = dir.read(1, 100);
  EXPECT_TRUE(out.writebackToMemory);
  EXPECT_TRUE(out.cacheToCache);
  EXPECT_EQ(dir.stateOf(0, 100), MesiState::S);
  EXPECT_EQ(dir.stateOf(1, 100), MesiState::S);
}

TEST(Mesi, WriteInvalidatesSharers) {
  DirectoryMesi dir(4);
  dir.read(0, 100);
  dir.read(1, 100);
  dir.read(2, 100);
  Outcome out = dir.write(3, 100);
  EXPECT_EQ(out.newState, MesiState::M);
  EXPECT_EQ(out.invalidated.size(), 3u);
  for (std::uint32_t c : {0u, 1u, 2u}) {
    EXPECT_EQ(dir.stateOf(c, 100), MesiState::I);
  }
  EXPECT_EQ(dir.stateOf(3, 100), MesiState::M);
}

TEST(Mesi, SilentExclusiveUpgrade) {
  DirectoryMesi dir(4);
  dir.read(0, 100);  // E
  Outcome out = dir.write(0, 100);
  EXPECT_EQ(out.newState, MesiState::M);
  EXPECT_TRUE(out.invalidated.empty());
  EXPECT_EQ(dir.stats().get("silent_upgrades"), 1u);
}

TEST(Mesi, WriteStealsFromModifiedOwner) {
  DirectoryMesi dir(4);
  dir.write(0, 100);
  Outcome out = dir.write(1, 100);
  EXPECT_TRUE(out.writebackToMemory);
  EXPECT_EQ(out.invalidated.size(), 1u);
  EXPECT_EQ(out.invalidated[0], 0u);
  EXPECT_EQ(dir.stateOf(0, 100), MesiState::I);
  EXPECT_EQ(dir.stateOf(1, 100), MesiState::M);
}

TEST(Mesi, ReadHitNoTransition) {
  DirectoryMesi dir(4);
  dir.read(0, 100);
  Outcome out = dir.read(0, 100);
  EXPECT_EQ(out.newState, MesiState::E);
  EXPECT_EQ(dir.stats().get("read_hits"), 1u);
}

TEST(Mesi, EvictionOfModifiedWritesBack) {
  DirectoryMesi dir(4);
  dir.write(0, 100);
  EXPECT_TRUE(dir.evict(0, 100));
  EXPECT_EQ(dir.stateOf(0, 100), MesiState::I);
  // Line is now uncached: next reader gets E again.
  EXPECT_EQ(dir.read(1, 100).newState, MesiState::E);
}

TEST(Mesi, EvictionOfSharedIsClean) {
  DirectoryMesi dir(4);
  dir.read(0, 100);
  dir.read(1, 100);
  EXPECT_FALSE(dir.evict(0, 100));
  EXPECT_EQ(dir.stateOf(1, 100), MesiState::S);
}

TEST(Mesi, EvictionOfInvalidIsNoop) {
  DirectoryMesi dir(4);
  EXPECT_FALSE(dir.evict(2, 999));
}

TEST(Mesi, HoldersTracksValidCaches) {
  DirectoryMesi dir(4);
  dir.read(0, 7);
  dir.read(2, 7);
  auto holders = dir.holders(7);
  EXPECT_EQ(holders, (std::vector<std::uint32_t>{0, 2}));
}

TEST(Mesi, DistinctLinesIndependent) {
  DirectoryMesi dir(2);
  dir.write(0, 1);
  dir.write(1, 2);
  EXPECT_EQ(dir.stateOf(0, 1), MesiState::M);
  EXPECT_EQ(dir.stateOf(1, 2), MesiState::M);
  EXPECT_EQ(dir.stateOf(0, 2), MesiState::I);
  EXPECT_TRUE(dir.checkAll().empty());
}

TEST(Mesi, InvariantsAfterDirectedSequence) {
  DirectoryMesi dir(4);
  dir.read(0, 5);
  dir.read(1, 5);
  dir.write(2, 5);
  dir.read(3, 5);
  dir.evict(2, 5);
  dir.write(0, 5);
  EXPECT_TRUE(dir.checkAll().empty()) << dir.checkAll();
}

// Property test: random op soup over several caches/lines keeps all MESI
// invariants (single owner, no owner+sharer coexistence, directory
// consistency) at every step.
class MesiFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MesiFuzzTest, InvariantsHoldUnderRandomOps) {
  Pcg32 rng(GetParam());
  DirectoryMesi dir(8);
  const int kLines = 16;
  for (int step = 0; step < 5000; ++step) {
    std::uint32_t cache = rng.nextBelow(8);
    BlockAddr line = rng.nextBelow(kLines);
    switch (rng.nextBelow(3)) {
      case 0: dir.read(cache, line); break;
      case 1: dir.write(cache, line); break;
      case 2: dir.evict(cache, line); break;
    }
    std::string err = dir.checkLine(line);
    ASSERT_TRUE(err.empty()) << "step " << step << ": " << err;
  }
  EXPECT_TRUE(dir.checkAll().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MesiFuzzTest,
                         ::testing::Values(1, 2, 3, 42, 1234, 99999));

// The outcome data itself must be coherent: a write's invalidation list
// never contains the requester, and cache-to-cache implies a prior holder.
TEST(Mesi, OutcomeSanityUnderFuzz) {
  Pcg32 rng(777);
  DirectoryMesi dir(4);
  for (int step = 0; step < 2000; ++step) {
    std::uint32_t cache = rng.nextBelow(4);
    BlockAddr line = rng.nextBelow(8);
    bool write = rng.chance(0.5);
    bool hadHolders = !dir.holders(line).empty();
    Outcome out = write ? dir.write(cache, line) : dir.read(cache, line);
    for (std::uint32_t inv : out.invalidated) {
      EXPECT_NE(inv, cache);
    }
    if (out.cacheToCache) EXPECT_TRUE(hadHolders);
  }
}

}  // namespace
}  // namespace renuca::coherence
