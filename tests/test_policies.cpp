// Tests for the NUCA mapping policies — the paper's design space.
// Includes the key cross-policy property: a block placed by placeFill()
// must be found by locate() given the MBV bit placeFill reported.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "core/naive.hpp"
#include "core/policy_factory.hpp"
#include "core/private_policy.hpp"
#include "core/renuca_policy.hpp"
#include "core/rnuca.hpp"
#include "core/snuca.hpp"
#include "noc/topology.hpp"

namespace renuca::core {
namespace {

const noc::Topology& topo4x4() {
  static noc::Topology topo{noc::NocConfig{}, /*numCores=*/16};
  return topo;
}

noc::Topology makeTopo(std::uint32_t w, std::uint32_t h) {
  noc::NocConfig geom;
  geom.width = w;
  geom.height = h;
  return noc::Topology(geom, /*numCores=*/w * h);
}

TEST(SNuca, InterleavesUniformly) {
  SNucaPolicy p(16);
  std::map<BankId, int> counts;
  for (BlockAddr b = 0; b < 16000; ++b) {
    ++counts[p.locate(b, 0, false)];
  }
  EXPECT_EQ(counts.size(), 16u);
  for (const auto& [bank, n] : counts) {
    EXPECT_EQ(n, 1000) << "bank " << bank;
  }
}

TEST(SNuca, IgnoresRequesterAndBit) {
  SNucaPolicy p(16);
  for (BlockAddr b : {0ull, 17ull, 12345ull}) {
    BankId bank = p.locate(b, 0, false);
    EXPECT_EQ(p.locate(b, 7, true), bank);
    EXPECT_EQ(p.placeFill(b, 3, true).bank, bank);
  }
}

TEST(SNuca, FillNeverReportsRnuca) {
  SNucaPolicy p(16);
  EXPECT_FALSE(p.placeFill(99, 0, true).usedRnuca);
}

TEST(RNuca, ClustersHaveRightSizeAndContainSelf) {
  RNucaPolicy p(topo4x4(), 4);
  for (CoreId c = 0; c < 16; ++c) {
    const auto& cluster = p.clusterOf(c);
    EXPECT_EQ(cluster.size(), 4u);
    EXPECT_NE(std::find(cluster.begin(), cluster.end(), c), cluster.end())
        << "core " << c << " not in its own cluster";
    std::set<BankId> uniq(cluster.begin(), cluster.end());
    EXPECT_EQ(uniq.size(), 4u);
  }
}

TEST(RNuca, InteriorClustersAreOneHop) {
  RNucaPolicy p(topo4x4(), 4);
  // Interior cores (not on the mesh edge): 5, 6, 9, 10.
  for (CoreId c : {5u, 6u, 9u, 10u}) {
    for (BankId b : p.clusterOf(c)) {
      EXPECT_LE(topo4x4().hopCount(c, b), 1u) << "core " << c << " bank " << b;
    }
  }
}

TEST(RNuca, EdgeClustersStayClose) {
  RNucaPolicy p(topo4x4(), 4);
  for (CoreId c = 0; c < 16; ++c) {
    for (BankId b : p.clusterOf(c)) {
      EXPECT_LE(topo4x4().hopCount(c, b), 2u);
    }
  }
}

TEST(RNuca, MappingUsesPaperFunction) {
  RNucaPolicy p(topo4x4(), 4);
  for (CoreId c = 0; c < 16; ++c) {
    for (BlockAddr b = 0; b < 64; ++b) {
      BankId expected =
          p.clusterOf(c)[(b + p.rotationalId(c) + 1) & 3];
      EXPECT_EQ(p.locate(b, c, false), expected);
    }
  }
}

TEST(RNuca, SpreadsWithinClusterOnly) {
  RNucaPolicy p(topo4x4(), 4);
  for (CoreId c = 0; c < 16; ++c) {
    std::set<BankId> used;
    for (BlockAddr b = 0; b < 1000; ++b) {
      used.insert(p.locate(b, c, false));
    }
    std::set<BankId> cluster(p.clusterOf(c).begin(), p.clusterOf(c).end());
    EXPECT_EQ(used, cluster);
  }
}

TEST(RNuca, NeighbouringClustersOverlap) {
  RNucaPolicy p(topo4x4(), 4);
  // Cluster overlap is the wear mechanism the paper describes: adjacent
  // cores share banks.
  std::set<BankId> c5(p.clusterOf(5).begin(), p.clusterOf(5).end());
  std::set<BankId> c6(p.clusterOf(6).begin(), p.clusterOf(6).end());
  std::vector<BankId> common;
  std::set_intersection(c5.begin(), c5.end(), c6.begin(), c6.end(),
                        std::back_inserter(common));
  EXPECT_FALSE(common.empty());
}

TEST(RNuca, FillReportsRnuca) {
  RNucaPolicy p(topo4x4(), 4);
  EXPECT_TRUE(p.placeFill(5, 2, false).usedRnuca);
}

TEST(RNuca, ClusterSizeAblation) {
  for (std::uint32_t size : {2u, 4u, 8u}) {
    RNucaPolicy p(topo4x4(), size);
    for (CoreId c = 0; c < 16; ++c) {
      EXPECT_EQ(p.clusterOf(c).size(), size);
    }
  }
}

// Pin the exact 4x4 RIDs the paper's rotational function produces.  Any
// change to the RID derivation (e.g. the 1-wide-mesh special case growing)
// would silently perturb every R-NUCA/Re-NUCA result; this golden catches it.
TEST(RNuca, RotationalIdGolden4x4) {
  RNucaPolicy p(topo4x4(), 4);
  for (CoreId c = 0; c < 16; ++c) {
    std::uint32_t x = c % 4, y = c / 4;
    EXPECT_EQ(p.rotationalId(c), (x + 2 * y) % 4) << "core " << c;
  }
}

TEST(RNuca, RectangularMeshClustersStayClose) {
  noc::Topology topo = makeTopo(8, 2);
  RNucaPolicy p(topo, 4);
  for (CoreId c = 0; c < 16; ++c) {
    const auto& cluster = p.clusterOf(c);
    EXPECT_EQ(cluster.size(), 4u);
    EXPECT_NE(std::find(cluster.begin(), cluster.end(), c), cluster.end());
    for (BankId b : cluster) {
      EXPECT_LE(topo.hopCount(topo.coreNode(c), topo.bankNode(b)), 2u)
          << "core " << c << " bank " << b;
    }
  }
}

// Degenerate 1-wide meshes: x == 0 everywhere, so the paper's (x + 2y)
// formula would assign only even RIDs for even cluster sizes; the column
// index takes over so neighbours still rotate through all slots.
TEST(RNuca, OneWideMeshRotatesAllSlots) {
  for (auto [w, h] : {std::pair<std::uint32_t, std::uint32_t>{1, 8},
                      std::pair<std::uint32_t, std::uint32_t>{8, 1}}) {
    noc::Topology topo = makeTopo(w, h);
    RNucaPolicy p(topo, 4);
    std::set<std::uint32_t> rids;
    for (CoreId c = 0; c < 8; ++c) {
      rids.insert(p.rotationalId(c));
      EXPECT_EQ(p.rotationalId(c), c % 4) << w << "x" << h << " core " << c;
    }
    EXPECT_EQ(rids.size(), 4u) << w << "x" << h;
  }
}

TEST(RNuca, CustomCorePlacementBuildsClustersAroundNode) {
  // 16 banks on 4x4, but core 0 lives at the far corner node 15: its
  // cluster must form around node 15, not node 0.  The corner has exactly
  // three nodes within one hop (15, 14, 11); they must all be members, and
  // the fourth falls in the next ring.
  noc::PlacementConfig place;
  place.coreNodes = {15, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 0};
  noc::Topology topo(noc::NocConfig{}, 16, place);
  RNucaPolicy p(topo, 4);
  const auto& cluster = p.clusterOf(0);
  for (BankId near : {15u, 14u, 11u}) {
    EXPECT_NE(std::find(cluster.begin(), cluster.end(), near), cluster.end())
        << "bank " << near << " missing from the corner cluster";
  }
  for (BankId b : cluster) {
    EXPECT_LE(topo.hopCount(15, topo.bankNode(b)), 2u) << "bank " << b;
  }
}

TEST(Private, AlwaysLocalBank) {
  PrivatePolicy p(16);
  for (CoreId c = 0; c < 16; ++c) {
    for (BlockAddr b : {1ull, 999ull, 123456ull}) {
      EXPECT_EQ(p.locate(b, c, false), c);
      EXPECT_EQ(p.placeFill(b, c, true).bank, c);
    }
  }
}

TEST(Naive, FillsGoToColdestBank) {
  std::vector<std::uint64_t> writes(16, 100);
  writes[7] = 5;  // bank 7 is coldest
  NaivePolicy p(16, [&](BankId b) { return writes[b]; });
  EXPECT_EQ(p.placeFill(42, 3, false).bank, 7u);
  writes[7] = 200;
  writes[12] = 1;
  EXPECT_EQ(p.placeFill(43, 3, false).bank, 12u);
}

TEST(Naive, DirectoryTracksResidentLines) {
  std::vector<std::uint64_t> writes(16, 0);
  NaivePolicy p(16, [&](BankId b) { return writes[b]; });
  auto fill = p.placeFill(100, 0, false);
  p.onFill(100, fill.bank);
  writes[fill.bank] = 50;  // make another bank the coldest now
  // locate still finds the resident line where it was filled.
  EXPECT_EQ(p.locate(100, 5, false), fill.bank);
  EXPECT_EQ(p.directorySize(), 1u);
  p.onEvict(100, fill.bank);
  EXPECT_EQ(p.directorySize(), 0u);
}

TEST(Naive, EvictOfWrongBankIgnored) {
  std::vector<std::uint64_t> writes(16, 0);
  NaivePolicy p(16, [&](BankId b) { return writes[b]; });
  p.onFill(7, 3);
  p.onEvict(7, 9);  // stale notification for another bank
  EXPECT_EQ(p.directorySize(), 1u);
}

TEST(Naive, BalancesWritesInClosedLoop) {
  // Feed the oracle its own placements: per-bank fill counts converge to
  // near-equal (perfect wear-leveling).
  std::vector<std::uint64_t> writes(16, 0);
  NaivePolicy p(16, [&](BankId b) { return writes[b]; });
  Pcg32 rng(5);
  for (int i = 0; i < 16000; ++i) {
    auto fill = p.placeFill(rng.next(), 0, false);
    ++writes[fill.bank];
  }
  auto [lo, hi] = std::minmax_element(writes.begin(), writes.end());
  EXPECT_LE(*hi - *lo, 2u);
}

TEST(ReNuca, CriticalGoesToClusterNonCriticalSpreads) {
  ReNucaPolicy p(topo4x4(), 4);
  for (CoreId c = 0; c < 16; ++c) {
    std::set<BankId> cluster(p.rnuca().clusterOf(c).begin(),
                             p.rnuca().clusterOf(c).end());
    std::set<BankId> criticalBanks, nonCriticalBanks;
    for (BlockAddr b = 0; b < 2000; ++b) {
      auto critFill = p.placeFill(b, c, true);
      EXPECT_TRUE(critFill.usedRnuca);
      criticalBanks.insert(critFill.bank);
      auto ncFill = p.placeFill(b, c, false);
      EXPECT_FALSE(ncFill.usedRnuca);
      nonCriticalBanks.insert(ncFill.bank);
    }
    EXPECT_EQ(criticalBanks, cluster);
    EXPECT_EQ(nonCriticalBanks.size(), 16u);  // S-NUCA spread
  }
}

TEST(ReNuca, LocateHonoursMbvBit) {
  ReNucaPolicy p(topo4x4(), 4);
  for (BlockAddr b = 0; b < 200; ++b) {
    EXPECT_EQ(p.locate(b, 3, false), p.snuca().locate(b, 3, false));
    EXPECT_EQ(p.locate(b, 3, true), p.rnuca().locate(b, 3, false));
  }
}

TEST(ReNuca, NeedsMbvAndPredictor) {
  ReNucaPolicy p(topo4x4(), 4);
  EXPECT_TRUE(p.needsMbv());
  EXPECT_TRUE(p.needsPredictor());
  SNucaPolicy s(16);
  EXPECT_FALSE(s.needsMbv());
  EXPECT_FALSE(s.needsPredictor());
}

// THE cross-policy invariant: locate(placeFill(x).bank-bit) == fill bank.
class PlacementRoundTrip : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PlacementRoundTrip, LocateFindsWhatPlaceFillPlaced) {
  std::vector<std::uint64_t> writes(16, 0);
  PolicyOptions opts;
  opts.bankWrites = [&](BankId b) { return writes[b]; };
  auto policy = makePolicy(GetParam(), topo4x4(), opts);
  Pcg32 rng(321);
  for (int i = 0; i < 4000; ++i) {
    BlockAddr block = rng.next();
    CoreId core = rng.nextBelow(16);
    bool critical = rng.chance(0.3);
    auto fill = policy->placeFill(block, core, critical);
    policy->onFill(block, fill.bank);
    ++writes[fill.bank];
    EXPECT_EQ(policy->locate(block, core, fill.usedRnuca), fill.bank)
        << toString(GetParam()) << " block " << block << " core " << core;
    policy->onEvict(block, fill.bank);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PlacementRoundTrip,
                         ::testing::Values(PolicyKind::SNuca, PolicyKind::RNuca,
                                           PolicyKind::Private, PolicyKind::Naive,
                                           PolicyKind::ReNuca),
                         [](const ::testing::TestParamInfo<PolicyKind>& info) {
                           switch (info.param) {
                             case PolicyKind::SNuca: return "SNuca";
                             case PolicyKind::RNuca: return "RNuca";
                             case PolicyKind::Private: return "Private";
                             case PolicyKind::Naive: return "Naive";
                             case PolicyKind::ReNuca: return "ReNuca";
                           }
                           return "unknown";
                         });

TEST(PolicyFactory, BuildsEveryKind) {
  PolicyOptions opts;
  opts.bankWrites = [](BankId) { return 0ull; };
  for (PolicyKind kind : {PolicyKind::SNuca, PolicyKind::RNuca, PolicyKind::Private,
                          PolicyKind::Naive, PolicyKind::ReNuca}) {
    auto p = makePolicy(kind, topo4x4(), opts);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->kind(), kind);
  }
}

TEST(PolicyFactory, NaiveWithoutOracleDies) {
  EXPECT_DEATH(makePolicy(PolicyKind::Naive, topo4x4(), PolicyOptions{}), "oracle");
}

TEST(PolicyFactory, NamesRoundTrip) {
  for (PolicyKind kind : {PolicyKind::SNuca, PolicyKind::RNuca, PolicyKind::Private,
                          PolicyKind::Naive, PolicyKind::ReNuca}) {
    EXPECT_EQ(policyFromString(toString(kind)), kind);
  }
  EXPECT_EQ(policyFromString("renuca"), PolicyKind::ReNuca);
  EXPECT_DEATH(policyFromString("bogus"), "unknown policy");
}

}  // namespace
}  // namespace renuca::core
