// End-to-end integration tests: full System runs on small budgets, checking
// determinism, the paper's qualitative orderings (wear-leveling quality and
// policy behaviour), criticality statistics, and sensitivity directions.
// Budgets are kept small so the suite stays fast; the bench binaries run
// the full-scale experiments.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace renuca::sim {
namespace {

SystemConfig fastConfig(core::PolicyKind policy) {
  SystemConfig cfg = defaultConfig();
  cfg.policy = policy;
  cfg.instrPerCore = 6000;
  cfg.warmupInstrPerCore = 1500;
  cfg.prewarmInstrPerCore = 150000;
  cfg.placementRefreshInstrPerCore = 50000;
  return cfg;
}

workload::WorkloadMix mixedMix() { return workload::standardMixes()[0]; }

TEST(System, RunCompletesAndReportsAllCores) {
  RunResult r = runWorkload(fastConfig(core::PolicyKind::SNuca), mixedMix());
  EXPECT_FALSE(r.hitMaxCycles);
  EXPECT_EQ(r.coreIpc.size(), 16u);
  EXPECT_EQ(r.bankLifetimeYears.size(), 16u);
  EXPECT_GT(r.measuredCycles, 0u);
  for (double ipc : r.coreIpc) {
    EXPECT_GT(ipc, 0.0);
    EXPECT_LE(ipc, 4.0);
  }
  EXPECT_GT(r.systemIpc, 1.0);
}

TEST(System, DeterministicAcrossRuns) {
  RunResult a = runWorkload(fastConfig(core::PolicyKind::ReNuca), mixedMix());
  RunResult b = runWorkload(fastConfig(core::PolicyKind::ReNuca), mixedMix());
  EXPECT_EQ(a.measuredCycles, b.measuredCycles);
  EXPECT_EQ(a.bankWrites, b.bankWrites);
  EXPECT_EQ(a.coreIpc, b.coreIpc);
}

TEST(System, SeedChangesChangeOutcome) {
  SystemConfig cfg = fastConfig(core::PolicyKind::SNuca);
  RunResult a = runWorkload(cfg, mixedMix());
  cfg.seed = 777;
  RunResult b = runWorkload(cfg, mixedMix());
  EXPECT_NE(a.bankWrites, b.bankWrites);
}

TEST(System, SnucaWearLevelsBetterThanPrivate) {
  RunResult snuca = runWorkload(fastConfig(core::PolicyKind::SNuca), mixedMix());
  RunResult priv = runWorkload(fastConfig(core::PolicyKind::Private), mixedMix());
  auto spread = [](const RunResult& r) {
    double lo = *std::min_element(r.bankWrites.begin(), r.bankWrites.end()) + 1.0;
    double hi = *std::max_element(r.bankWrites.begin(), r.bankWrites.end()) + 1.0;
    return hi / lo;
  };
  EXPECT_LT(spread(snuca), spread(priv));
  EXPECT_GT(snuca.minBankLifetime(), priv.minBankLifetime());
}

TEST(System, NaiveWearLevelsBestAndSlowest) {
  RunResult naive = runWorkload(fastConfig(core::PolicyKind::Naive), mixedMix());
  RunResult snuca = runWorkload(fastConfig(core::PolicyKind::SNuca), mixedMix());
  EXPECT_GE(naive.minBankLifetime(), snuca.minBankLifetime() * 0.95);
  EXPECT_LT(naive.systemIpc, snuca.systemIpc);
}

TEST(System, ReNucaBetweenRnucaAndSnucaInWear) {
  RunResult snuca = runWorkload(fastConfig(core::PolicyKind::SNuca), mixedMix());
  RunResult rnuca = runWorkload(fastConfig(core::PolicyKind::RNuca), mixedMix());
  RunResult renuca = runWorkload(fastConfig(core::PolicyKind::ReNuca), mixedMix());
  EXPECT_GT(renuca.minBankLifetime(), rnuca.minBankLifetime());
  EXPECT_LE(renuca.minBankLifetime(), snuca.minBankLifetime() * 1.1);
}

TEST(System, MostLoadsAreNonCritical) {
  SystemConfig cfg = fastConfig(core::PolicyKind::SNuca);
  cfg.forcePredictor = true;
  RunResult r = runWorkload(cfg, mixedMix());
  // Paper Fig 5: >80 % on average; small budgets add noise, so be lenient.
  EXPECT_GT(r.nonCriticalLoadFrac, 0.6);
}

TEST(System, PredictorBeatsCoinFlip) {
  SystemConfig cfg = fastConfig(core::PolicyKind::ReNuca);
  RunResult r = runWorkload(cfg, mixedMix());
  EXPECT_GT(r.cptAccuracy, 0.5);
}

TEST(System, WpkiMpkiInPlausibleRange) {
  RunResult r = runWorkload(fastConfig(core::PolicyKind::SNuca), mixedMix());
  // The mix holds both streaming and compute apps.
  EXPECT_GT(r.avgWpki(), 1.0);
  EXPECT_LT(r.avgWpki(), 80.0);
  EXPECT_GT(r.avgMpki(), 1.0);
  EXPECT_LT(r.avgMpki(), 80.0);
}

TEST(System, SmallerL2RaisesWriteTraffic) {
  SystemConfig base = fastConfig(core::PolicyKind::SNuca);
  SystemConfig small = base;
  small.l2.sizeBytes = 64 * 1024;
  RunResult a = runWorkload(base, mixedMix());
  RunResult b = runWorkload(small, mixedMix());
  std::uint64_t wa = 0, wb = 0;
  for (std::uint64_t w : a.bankWrites) wa += w;
  for (std::uint64_t w : b.bankWrites) wb += w;
  double rateA = static_cast<double>(wa) / a.measuredCycles;
  double rateB = static_cast<double>(wb) / b.measuredCycles;
  EXPECT_GT(rateB, rateA * 1.02);
}

TEST(System, SingleCoreRigMatchesTableIIOrdering) {
  SystemConfig cfg = singleCore();
  cfg.instrPerCore = 8000;
  cfg.warmupInstrPerCore = 2000;
  cfg.prewarmInstrPerCore = 300000;
  cfg.placementRefreshInstrPerCore = 0;
  RunResult mcf = runSingleApp(cfg, "mcf");
  RunResult namd = runSingleApp(cfg, "namd");
  EXPECT_LT(mcf.coreIpc[0], namd.coreIpc[0]);
  EXPECT_GT(mcf.wpki[0], namd.wpki[0] + 10.0);
  EXPECT_GT(mcf.mpki[0], 20.0);
  EXPECT_LT(namd.mpki[0], 2.0);
}

TEST(Sweep, AggregatesAndNormalizes) {
  SystemConfig cfg = fastConfig(core::PolicyKind::SNuca);
  std::vector<workload::WorkloadMix> mixes(workload::standardMixes().begin(),
                                           workload::standardMixes().begin() + 2);
  PolicySweep sweep = sweepPolicies(
      cfg, {core::PolicyKind::SNuca, core::PolicyKind::RNuca}, mixes);
  EXPECT_EQ(sweep.results.size(), 2u);
  EXPECT_EQ(sweep.results[0].size(), 2u);
  auto h = sweep.harmonicLifetimesPerBank(0);
  EXPECT_EQ(h.size(), 16u);
  EXPECT_GT(sweep.rawMinLifetime(0), 0.0);
  // S-NUCA improvement over itself is identically zero.
  for (double v : sweep.ipcImprovementVsSnuca(0)) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
  EXPECT_EQ(sweep.indexOf(core::PolicyKind::RNuca), 1u);
}

TEST(Sweep, PolicyListsAreConsistent) {
  EXPECT_EQ(allPolicies().size(), 5u);
  EXPECT_EQ(baselinePolicies().size(), 4u);
}

TEST(System, ConfigPresetsDifferAsAdvertised) {
  EXPECT_EQ(defaultConfig().l2.sizeBytes, 256u * 1024);
  EXPECT_EQ(l2Small().l2.sizeBytes, 128u * 1024);
  EXPECT_EQ(l3Small().l3.bankBytes, 1024u * 1024);
  EXPECT_EQ(robLarge().coreCfg.robEntries, 168u);
  EXPECT_EQ(singleCore().numCores, 1u);
}

TEST(System, KvOverridesApply) {
  SystemConfig cfg = defaultConfig();
  KvConfig kv = KvConfig::fromString(
      "instr_per_core=1234\npolicy=renuca\nthreshold_pct=25\nrob_entries=168\n"
      "l2_kb=128\n");
  cfg.applyOverrides(kv);
  EXPECT_EQ(cfg.instrPerCore, 1234u);
  EXPECT_EQ(cfg.policy, core::PolicyKind::ReNuca);
  EXPECT_DOUBLE_EQ(cfg.cpt.thresholdPct, 25.0);
  EXPECT_EQ(cfg.coreCfg.robEntries, 168u);
  EXPECT_EQ(cfg.l2.sizeBytes, 128u * 1024);
  EXPECT_FALSE(cfg.summary().empty());
}

TEST(System, MeshOverridesResizeTheLlc) {
  SystemConfig cfg = defaultConfig();
  KvConfig kv = KvConfig::fromString("mesh=8x8\ncores=64\nmc=8\nmc_edge=ring\n");
  cfg.applyOverrides(kv);
  EXPECT_EQ(cfg.nocCfg.width, 8u);
  EXPECT_EQ(cfg.nocCfg.height, 8u);
  EXPECT_EQ(cfg.l3.banks, 64u);  // one LLC bank per mesh node
  EXPECT_EQ(cfg.numCores, 64u);
  EXPECT_EQ(cfg.placement.numMcs, 8u);
  EXPECT_EQ(cfg.placement.mcEdge, noc::McEdge::Ring);
  EXPECT_NE(cfg.summary().find("mc_edge=ring"), std::string::npos);
  // The default header must stay byte-identical to pre-placement builds:
  // no mc=/mc_edge=/placement= tokens unless the placement is non-default.
  EXPECT_EQ(defaultConfig().summary().find("mc="), std::string::npos);
}

TEST(System, TopologyValidationCatchesCrossFieldMistakes) {
  auto errsFor = [](const char* spec) {
    return validateConfigKeys(KvConfig::fromString(spec));
  };
  EXPECT_TRUE(errsFor("mesh=8x8\ncores=64\nmc=4\n").empty());
  EXPECT_TRUE(errsFor("mesh=8x4\ncores=32\nmc_edge=bottom\n").empty());
  EXPECT_FALSE(errsFor("mesh=9zz\n").empty());
  EXPECT_FALSE(errsFor("mesh=4x4\ncores=32\n").empty());  // cores > nodes
  EXPECT_FALSE(errsFor("mc=3\n").empty());                // not a power of two
  EXPECT_FALSE(errsFor("mesh=4x4\ncluster_size=32\n").empty());
  EXPECT_FALSE(errsFor("mc=2\nplacement=mc:0,1,2,3\n").empty());  // conflict
  EXPECT_FALSE(errsFor("placement=banana\n").empty());
  EXPECT_FALSE(errsFor("mesh=4x4\nplacement=banks:0,1\n").empty());

  // Misspelled schemes get a did-you-mean pointing at the nearest name.
  std::vector<ConfigError> errs = errsFor("mc_edge=cornerz\n");
  ASSERT_FALSE(errs.empty());
  EXPECT_NE(errs[0].toString().find("corners"), std::string::npos);
}

TEST(System, MesiSharedModeSmoke) {
  SystemConfig cfg = fastConfig(core::PolicyKind::SNuca);
  cfg.enableSharing = true;
  cfg.instrPerCore = 2000;
  cfg.warmupInstrPerCore = 500;
  cfg.prewarmInstrPerCore = 50000;
  RunResult r = runWorkload(cfg, mixedMix());
  EXPECT_FALSE(r.hitMaxCycles);
  EXPECT_GT(r.systemIpc, 0.5);
}

}  // namespace
}  // namespace renuca::sim
