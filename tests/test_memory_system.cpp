// Tests for the assembled memory hierarchy: walk correctness across
// levels, write-back accounting (the WPKI event), MBV lifecycle under
// Re-NUCA, Naive directory behaviour in-system, inclusion invariants, and
// warm-up mode semantics.
#include <gtest/gtest.h>

#include "sim/memory_system.hpp"

namespace renuca::sim {
namespace {

SystemConfig tinyConfig(core::PolicyKind policy = core::PolicyKind::SNuca) {
  SystemConfig cfg = defaultConfig();
  cfg.policy = policy;
  // Shrink the LLC so eviction paths are exercised quickly.
  cfg.l3.bankBytes = 64 * 1024;
  cfg.l2.sizeBytes = 16 * 1024;
  cfg.l1d.sizeBytes = 4 * 1024;
  return cfg;
}

Addr vaddrOfCore(std::uint64_t i) { return 0x100000 + i * kLineBytes; }

TEST(MemorySystem, L1HitAfterFirstTouch) {
  MemorySystem ms(tinyConfig());
  auto first = ms.load(0, 0x1000, 1, 0, false);
  EXPECT_TRUE(first.missedL1);
  auto second = ms.load(0, 0x1000, 1, first.completeAt, false);
  EXPECT_FALSE(second.missedL1);
  EXPECT_EQ(second.completeAt - first.completeAt,
            ms.config().l1d.latency);
}

TEST(MemorySystem, LatencyOrderingAcrossLevels) {
  MemorySystem ms(tinyConfig());
  // Cold miss -> DRAM; then L1 hit; evict from L1 but not L2 -> L2 hit.
  Cycle t0 = 0;
  auto miss = ms.load(0, 0x4000, 1, t0, false);
  Cycle missLat = miss.completeAt - t0;
  auto l1hit = ms.load(0, 0x4000, 1, 10000, false);
  Cycle l1Lat = l1hit.completeAt - 10000;
  // Push 0x4000's line out of the tiny L1 (64 sets * ... ) but keep in L2.
  for (std::uint64_t i = 0; i < 64; ++i) {
    ms.load(0, 0x40000 + i * 4096, 1, 20000 + i * 500, false);
  }
  auto l2hit = ms.load(0, 0x4000, 1, 200000, false);
  Cycle l2Lat = l2hit.completeAt - 200000;
  EXPECT_LT(l1Lat, l2Lat);
  EXPECT_LT(l2Lat, missLat);
}

TEST(MemorySystem, DemandCountersPerCore) {
  MemorySystem ms(tinyConfig());
  ms.load(0, 0x7000, 1, 0, false);
  ms.load(1, 0x7000, 1, 0, false);  // different ASID -> its own miss
  EXPECT_EQ(ms.coreCounters(0).llcDemandAccesses, 1u);
  EXPECT_EQ(ms.coreCounters(0).llcDemandMisses, 1u);
  EXPECT_EQ(ms.coreCounters(1).llcDemandMisses, 1u);
  EXPECT_EQ(ms.coreCounters(2).llcDemandAccesses, 0u);
}

TEST(MemorySystem, AddressSpacesAreDisjoint) {
  MemorySystem ms(tinyConfig());
  // Same vaddr from two cores maps to different physical lines: filling
  // one does not hit the other.
  ms.load(0, 0x9000, 1, 0, false);
  auto other = ms.load(1, 0x9000, 1, 1000, false);
  EXPECT_TRUE(other.missedL1);
  EXPECT_EQ(ms.coreCounters(1).llcDemandMisses, 1u);
}

TEST(MemorySystem, DirtyL2EvictionProducesWriteback) {
  SystemConfig cfg = tinyConfig();
  MemorySystem ms(cfg);
  // Store dirties a line; stream enough distinct lines through to evict it
  // from L1 and L2.
  ms.store(0, 0x100000, 1, 0);
  std::uint64_t lines = cfg.l2.sizeBytes / kLineBytes * 3;
  Cycle t = 1000;
  for (std::uint64_t i = 1; i <= lines; ++i) {
    ms.load(0, 0x100000 + i * kLineBytes, 1, t, false);
    t += 200;
  }
  EXPECT_GT(ms.coreCounters(0).llcWritebacks, 0u);
  EXPECT_GT(ms.stats().get("llc_writebacks"), 0u);
}

TEST(MemorySystem, WritebacksCountAsBankWrites) {
  SystemConfig cfg = tinyConfig();
  MemorySystem ms(cfg);
  std::uint64_t before = 0;
  for (BankId b = 0; b < ms.numBanks(); ++b) before += ms.bankWrites(b);
  ms.store(0, 0x200000, 1, 0);
  std::uint64_t after = 0;
  for (BankId b = 0; b < ms.numBanks(); ++b) after += ms.bankWrites(b);
  EXPECT_GT(after, before);  // at least the fill write
}

TEST(MemorySystem, SnucaSpreadsSequentialLines) {
  MemorySystem ms(tinyConfig(core::PolicyKind::SNuca));
  Cycle t = 0;
  for (std::uint64_t i = 0; i < 256; ++i) {
    ms.load(0, vaddrOfCore(i), 1, t, false);
    t += 300;
  }
  std::uint64_t nonZero = 0;
  for (BankId b = 0; b < ms.numBanks(); ++b) {
    if (ms.bankWrites(b) > 0) ++nonZero;
  }
  EXPECT_EQ(nonZero, 16u);
}

TEST(MemorySystem, PrivateLocalizesWrites) {
  MemorySystem ms(tinyConfig(core::PolicyKind::Private));
  Cycle t = 0;
  for (std::uint64_t i = 0; i < 256; ++i) {
    ms.load(3, vaddrOfCore(i), 1, t, false);
    t += 300;
  }
  for (BankId b = 0; b < ms.numBanks(); ++b) {
    if (b == 3) {
      EXPECT_GT(ms.bankWrites(b), 0u);
    } else {
      EXPECT_EQ(ms.bankWrites(b), 0u);
    }
  }
}

TEST(MemorySystem, RnucaStaysInCluster) {
  MemorySystem ms(tinyConfig(core::PolicyKind::RNuca));
  Cycle t = 0;
  for (std::uint64_t i = 0; i < 256; ++i) {
    ms.load(5, vaddrOfCore(i), 1, t, false);
    t += 300;
  }
  std::uint64_t banksUsed = 0;
  for (BankId b = 0; b < ms.numBanks(); ++b) {
    if (ms.bankWrites(b) > 0) ++banksUsed;
  }
  EXPECT_EQ(banksUsed, 4u);  // the cluster
}

TEST(MemorySystem, ReNucaSetsMbvOnCriticalFill) {
  SystemConfig cfg = tinyConfig(core::PolicyKind::ReNuca);
  MemorySystem ms(cfg);
  Addr va = 0x300000;
  ms.load(0, va, 1, 0, /*critical=*/true);
  EXPECT_TRUE(ms.tlbOf(0).mappingBit(va));
  Addr va2 = va + kLineBytes;
  ms.load(0, va2, 1, 1000, /*critical=*/false);
  EXPECT_FALSE(ms.tlbOf(0).mappingBit(va2));
}

TEST(MemorySystem, ReNucaCriticalLineFoundOnRelookup) {
  SystemConfig cfg = tinyConfig(core::PolicyKind::ReNuca);
  MemorySystem ms(cfg);
  Addr va = 0x400000;
  auto first = ms.load(0, va, 1, 0, true);
  EXPECT_TRUE(first.missedL1);
  // Push out of L1/L2 only: touch other lines mapping elsewhere.
  Cycle t = first.completeAt;
  for (std::uint64_t i = 1; i <= cfg.l2.sizeBytes / kLineBytes * 3; ++i) {
    ms.load(0, 0x500000 + i * kLineBytes, 1, t, false);
    t += 150;
  }
  std::uint64_t missesBefore = ms.coreCounters(0).llcDemandMisses;
  ms.load(0, va, 1, t + 1000, true);
  // Found in the LLC (R-NUCA bank): no new demand miss.
  EXPECT_EQ(ms.coreCounters(0).llcDemandMisses, missesBefore);
}

TEST(MemorySystem, MbvResetOnLlcEviction) {
  SystemConfig cfg = tinyConfig(core::PolicyKind::ReNuca);
  cfg.l3.bankBytes = 16 * 1024;  // tiny LLC: easy to evict
  MemorySystem ms(cfg);
  Addr va = 0x600000;
  ms.load(0, va, 1, 0, true);
  ASSERT_TRUE(ms.tlbOf(0).mappingBit(va));
  // Flood the R-NUCA cluster banks until the line is gone.
  Cycle t = 1000;
  for (std::uint64_t i = 1; i <= 4096; ++i) {
    ms.load(0, 0x700000 + i * kLineBytes, 1, t, true);
    t += 150;
  }
  // Re-translate: the flood may have evicted the page from the TLB; the
  // MBV bit must come back reset from the page-table backing store.
  ms.tlbOf(0).translate(va);
  EXPECT_FALSE(ms.tlbOf(0).mappingBit(va));
}

TEST(MemorySystem, NaiveDirectoryLookupsCounted) {
  MemorySystem ms(tinyConfig(core::PolicyKind::Naive));
  ms.load(0, 0x800000, 1, 0, false);
  EXPECT_GT(ms.stats().get("naive_directory_lookups"), 0u);
}

TEST(MemorySystem, NaiveSlowerThanSnucaPerAccess) {
  MemorySystem snuca(tinyConfig(core::PolicyKind::SNuca));
  MemorySystem naive(tinyConfig(core::PolicyKind::Naive));
  auto a = snuca.load(0, 0x900000, 1, 0, false);
  auto b = naive.load(0, 0x900000, 1, 0, false);
  EXPECT_GT(b.completeAt, a.completeAt);  // directory detour
}

TEST(MemorySystem, InclusionHoldsForL1InL2) {
  SystemConfig cfg = tinyConfig();
  MemorySystem ms(cfg);
  Cycle t = 0;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    if (i % 3 == 0) {
      ms.store(0, vaddrOfCore(i % 500), 1, t);
    } else {
      ms.load(0, vaddrOfCore((i * 7) % 500), 1, t, false);
    }
    t += 50;
  }
  EXPECT_EQ(ms.checkInclusion(), "");
}

TEST(MemorySystem, InclusiveModeKeepsL2InLlc) {
  SystemConfig cfg = tinyConfig(core::PolicyKind::ReNuca);
  cfg.inclusiveLlc = true;
  MemorySystem ms(cfg);
  Cycle t = 0;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    ms.load(i % 4, vaddrOfCore((i * 13) % 800), 1, t, i % 5 == 0);
    t += 40;
  }
  EXPECT_EQ(ms.checkInclusion(), "");
}

TEST(MemorySystem, WarmupModeSkipsTiming) {
  SystemConfig cfg = tinyConfig();
  MemorySystem ms(cfg);
  ms.setWarmupMode(true);
  auto r = ms.load(0, 0xA00000, 1, 0, false);
  // Functional fill happened...
  EXPECT_TRUE(r.missedL1);
  ms.setWarmupMode(false);
  // ...but no resources were reserved: a timed access immediately after
  // sees an idle hierarchy.
  auto timed = ms.load(0, 0xB00000, 1, 0, false);
  auto again = ms.load(0, 0xB00000, 1, timed.completeAt, false);
  EXPECT_EQ(again.completeAt - timed.completeAt, cfg.l1d.latency);
}

TEST(MemorySystem, ResetMeasurementZerosCountersKeepsContents) {
  SystemConfig cfg = tinyConfig();
  MemorySystem ms(cfg);
  ms.load(0, 0xC00000, 1, 0, false);
  ms.resetMeasurement();
  EXPECT_EQ(ms.coreCounters(0).llcDemandAccesses, 0u);
  std::uint64_t writes = 0;
  for (BankId b = 0; b < ms.numBanks(); ++b) writes += ms.bankWrites(b);
  EXPECT_EQ(writes, 0u);
  // The line is still cached: re-access is an L1 hit.
  auto r = ms.load(0, 0xC00000, 1, 5000, false);
  EXPECT_FALSE(r.missedL1);
}

TEST(MemorySystem, CriticalityTaggingFeedsFig9Fractions) {
  SystemConfig cfg = tinyConfig(core::PolicyKind::ReNuca);
  MemorySystem ms(cfg);
  Cycle t = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ms.load(0, 0xD00000 + i * kLineBytes, 1, t, i % 4 == 0);
    t += 300;
  }
  // 25 % critical fills -> ~75 % non-critical.
  EXPECT_NEAR(ms.nonCriticalFillFrac(), 0.75, 0.02);
}

TEST(MemorySystem, PrefetcherBringsNextLineIntoL2) {
  SystemConfig cfg = tinyConfig();
  cfg.l2PrefetchDegree = 1;
  MemorySystem ms(cfg);
  Addr va = 0xF00000;
  auto miss = ms.load(0, va, 1, 0, false);
  EXPECT_TRUE(miss.missedL1);
  EXPECT_GT(ms.stats().get("l2_prefetches"), 0u);
  // The next line is L2-resident: accessing it misses L1 but not the LLC.
  std::uint64_t missesBefore = ms.coreCounters(0).llcDemandMisses;
  ms.load(0, va + kLineBytes, 1, miss.completeAt + 100, false);
  EXPECT_EQ(ms.coreCounters(0).llcDemandMisses, missesBefore);
}

TEST(MemorySystem, PrefetchFillsCountAsReramWrites) {
  SystemConfig cfg = tinyConfig();
  SystemConfig pf = cfg;
  pf.l2PrefetchDegree = 2;
  MemorySystem plain(cfg), prefetching(pf);
  Cycle t = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    Addr va = 0xA00000 + i * 4096;  // page-stride: prefetches are wasted
    plain.load(0, va, 1, t, false);
    prefetching.load(0, va, 1, t, false);
    t += 400;
  }
  std::uint64_t wPlain = 0, wPf = 0;
  for (BankId b = 0; b < plain.numBanks(); ++b) {
    wPlain += plain.bankWrites(b);
    wPf += prefetching.bankWrites(b);
  }
  EXPECT_GT(wPf, wPlain);  // the wear cost of prefetching
}

TEST(MemorySystem, SharingModeRoutesThroughDirectory) {
  SystemConfig cfg = tinyConfig();
  cfg.enableSharing = true;
  MemorySystem ms(cfg);
  ASSERT_NE(ms.directory(), nullptr);
  ms.load(0, 0xE00000, 1, 0, false);
  // In multiprogrammed mode address spaces are disjoint, so this only
  // exercises E-state acquisition; the shared-memory example exercises
  // invalidations.
  EXPECT_TRUE(ms.directory()->checkAll().empty());
}

}  // namespace
}  // namespace renuca::sim
