// Tests for the out-of-order core: in-order commit, dependence-limited
// throughput, ALU chain CPI, MSHR/store-buffer structural limits, ROB-head
// stall detection (criticality ground truth), and predictor plumbing.
#include <gtest/gtest.h>

#include <vector>

#include "cpu/core.hpp"
#include "common/rng.hpp"

namespace renuca::cpu {
namespace {

/// Memory with fixed latencies: loads hit "L1" unless the address is
/// tagged, in which case they take `missLatency` and hold an MSHR.
struct FakeMem : MemorySystem {
  Cycle hitLatency = 2;
  Cycle missLatency = 200;
  Addr missTag = 0xF0000000;  ///< Addresses at or above this miss.
  std::uint64_t loads = 0, stores = 0;
  Cycle lastIssue = 0;
  std::vector<Cycle> issueTimes;

  LoadResult load(CoreId, Addr vaddr, std::uint64_t, Cycle issueAt, bool) override {
    ++loads;
    lastIssue = issueAt;
    issueTimes.push_back(issueAt);
    if (vaddr >= missTag) return {issueAt + missLatency, true};
    return {issueAt + hitLatency, false};
  }
  Cycle store(CoreId, Addr vaddr, std::uint64_t, Cycle issueAt) override {
    ++stores;
    return issueAt + (vaddr >= missTag ? missLatency : hitLatency);
  }
};

/// Scripted instruction source.
struct ScriptSource : workload::InstructionSource {
  std::vector<workload::TraceRecord> script;
  std::size_t i = 0;
  bool loop = true;
  workload::TraceRecord next() override {
    workload::TraceRecord r = script[i % script.size()];
    ++i;
    return r;
  }
};

workload::TraceRecord alu(std::uint8_t dep = 0) {
  workload::TraceRecord r;
  r.kind = InstrKind::Alu;
  r.pc = 0x100;
  r.depDist = dep;
  return r;
}

workload::TraceRecord load(Addr a, std::uint64_t pc = 0x200, std::uint8_t dep = 0) {
  workload::TraceRecord r;
  r.kind = InstrKind::Load;
  r.vaddr = a;
  r.pc = pc;
  r.depDist = dep;
  return r;
}

workload::TraceRecord store(Addr a, std::uint8_t dep = 0) {
  workload::TraceRecord r;
  r.kind = InstrKind::Store;
  r.vaddr = a;
  r.pc = 0x300;
  r.depDist = dep;
  return r;
}

Cycle runToCompletion(OooCore& core, Cycle maxCycles = 10'000'000) {
  Cycle now = 0;
  while (!core.done() && now < maxCycles) {
    core.tick(now);
    ++now;
  }
  EXPECT_TRUE(core.done()) << "core did not finish";
  return now;
}

TEST(OooCore, PureAluSustainsFetchWidth) {
  ScriptSource src;
  src.script = {alu()};
  FakeMem mem;
  CoreConfig cfg;
  OooCore core(cfg, 0, &src, &mem, nullptr, 40000);
  Cycle cycles = runToCompletion(core);
  double ipc = 40000.0 / cycles;
  EXPECT_NEAR(ipc, 4.0, 0.2);
}

TEST(OooCore, FullyChainedAluIsSerial) {
  ScriptSource src;
  src.script = {alu(1)};
  FakeMem mem;
  CoreConfig cfg;
  OooCore core(cfg, 0, &src, &mem, nullptr, 20000);
  Cycle cycles = runToCompletion(core);
  EXPECT_NEAR(20000.0 / cycles, 1.0, 0.05);
}

TEST(OooCore, RollingChainSetsCpiFloor) {
  // Chain member every 2nd instruction (depDist 2 back to the previous
  // member): CPI floor = 0.5 -> IPC ~2.
  ScriptSource src;
  src.script = {alu(2), alu(0)};
  FakeMem mem;
  CoreConfig cfg;
  OooCore core(cfg, 0, &src, &mem, nullptr, 20000);
  Cycle cycles = runToCompletion(core);
  EXPECT_NEAR(20000.0 / cycles, 2.0, 0.15);
}

TEST(OooCore, L1HitLoadsDoNotStallRob) {
  ScriptSource src;
  src.script = {load(0x1000), alu(), alu(), alu()};
  FakeMem mem;
  CoreConfig cfg;
  OooCore core(cfg, 0, &src, &mem, nullptr, 20000);
  runToCompletion(core);
  const CoreStats& s = core.stats();
  EXPECT_GT(s.loads, 4000u);
  EXPECT_EQ(s.loadsStalledHead, 0u);
  EXPECT_GT(s.nonCriticalLoadFrac(), 0.99);
}

TEST(OooCore, MissLoadsStallRobHead) {
  ScriptSource src;
  // A chained miss stream: every load depends on the previous one.
  src.script = {load(0xF0000000, 0x200, 0)};
  for (auto& r : src.script) (void)r;
  src.script[0].depDist = 1;
  FakeMem mem;
  CoreConfig cfg;
  OooCore core(cfg, 0, &src, &mem, nullptr, 2000);
  runToCompletion(core);
  const CoreStats& s = core.stats();
  EXPECT_GT(s.loadsStalledHead, s.loads / 2);
  EXPECT_GT(s.robHeadStallCycles, 1000u);
}

TEST(OooCore, IndependentMissesOverlapUpToMshr) {
  // Back-to-back independent misses to distinct lines: with M MSHRs and
  // latency L, throughput is ~M misses per L cycles.
  ScriptSource srcA, srcB;
  srcA.script.clear();
  for (int i = 0; i < 64; ++i) srcA.script.push_back(load(0xF0000000 + i * 64));
  srcB = srcA;
  FakeMem memA, memB;
  CoreConfig cfgA, cfgB;
  cfgA.mshrEntries = 16;
  cfgB.mshrEntries = 1;
  OooCore coreA(cfgA, 0, &srcA, &memA, nullptr, 4000);
  OooCore coreB(cfgB, 0, &srcB, &memB, nullptr, 4000);
  Cycle a = runToCompletion(coreA);
  Cycle b = runToCompletion(coreB);
  EXPECT_GT(b, a * 4);  // single MSHR serializes
}

TEST(OooCore, ChainedMissesSerialize) {
  ScriptSource indep, chained;
  for (int i = 0; i < 64; ++i) {
    indep.script.push_back(load(0xF0000000 + i * 64));
    chained.script.push_back(load(0xF0000000 + i * 64, 0x200, 1));
  }
  FakeMem m1, m2;
  CoreConfig cfg;
  OooCore c1(cfg, 0, &indep, &m1, nullptr, 3000);
  OooCore c2(cfg, 0, &chained, &m2, nullptr, 3000);
  Cycle a = runToCompletion(c1);
  Cycle b = runToCompletion(c2);
  EXPECT_GT(b, a * 3);
}

TEST(OooCore, MshrMergesSameBlock) {
  // Two loads to the same line back-to-back: the second must not start a
  // second miss.
  ScriptSource src;
  src.script = {load(0xF0000000), load(0xF0000000 + 8), alu(), alu()};
  FakeMem mem;
  CoreConfig cfg;
  OooCore core(cfg, 0, &src, &mem, nullptr, 400);
  runToCompletion(core);
  // Only the first of each pair reaches memory.
  EXPECT_LE(mem.loads, 110u);
  EXPECT_EQ(core.stats().loads, 200u);
}

TEST(OooCore, StoreBufferBackpressure) {
  // Store misses with a tiny store buffer throttle commit.
  ScriptSource small, big;
  for (int i = 0; i < 64; ++i) {
    small.script.push_back(store(0xF0000000 + i * 64));
    big.script.push_back(store(0xF0000000 + i * 64));
  }
  FakeMem m1, m2;
  CoreConfig cfgSmall, cfgBig;
  cfgSmall.storeBufferEntries = 1;
  cfgBig.storeBufferEntries = 32;
  OooCore c1(cfgSmall, 0, &small, &m1, nullptr, 2000);
  OooCore c2(cfgBig, 0, &big, &m2, nullptr, 2000);
  Cycle a = runToCompletion(c1);
  Cycle b = runToCompletion(c2);
  EXPECT_GT(a, b * 4);
}

TEST(OooCore, StoresAreCountedAndDoNotStall) {
  ScriptSource src;
  src.script = {store(0x1000), alu(), alu(), alu()};
  FakeMem mem;
  CoreConfig cfg;
  OooCore core(cfg, 0, &src, &mem, nullptr, 8000);
  Cycle cycles = runToCompletion(core);
  EXPECT_EQ(core.stats().stores, 2000u);
  EXPECT_NEAR(8000.0 / cycles, 4.0, 0.3);  // L1-hit stores are free
}

TEST(OooCore, RobCapacityLimitsWindow) {
  // Independent misses 200 instructions apart: a 400-entry ROB window
  // covers two at a time (MLP 2), a 16-entry one can never overlap them.
  auto makeScript = [](ScriptSource& src) {
    for (int m = 0; m < 8; ++m) {
      src.script.push_back(load(0xF0000000 + m * 64));
      for (int i = 0; i < 199; ++i) src.script.push_back(alu());
    }
  };
  ScriptSource srcA, srcB;
  makeScript(srcA);
  makeScript(srcB);
  FakeMem m1, m2;
  m1.missLatency = m2.missLatency = 2000;
  CoreConfig cfgSmall, cfgBig;
  cfgSmall.robEntries = 16;
  cfgBig.robEntries = 400;
  OooCore c1(cfgSmall, 0, &srcA, &m1, nullptr, 1600);
  OooCore c2(cfgBig, 0, &srcB, &m2, nullptr, 1600);
  Cycle a = runToCompletion(c1);
  Cycle b = runToCompletion(c2);
  // Small ROB: ~8 serialized misses (~16k cycles).  Big ROB: pairs
  // overlap (~8k).  Allow generous slack.
  EXPECT_GT(a, b + 3000);
}

TEST(OooCore, NextEventCycleSkipsDeadTime) {
  ScriptSource src;
  src.script = {load(0xF0000000, 0x200, 1)};
  FakeMem mem;
  mem.missLatency = 500;
  CoreConfig cfg;
  cfg.robEntries = 4;
  OooCore core(cfg, 0, &src, &mem, nullptr, 100);
  Cycle now = 0;
  int steps = 0;
  while (!core.done() && steps < 100000) {
    core.tick(now);
    Cycle next = core.nextEventCycle(now);
    ASSERT_NE(next, kNoCycle);
    ASSERT_GT(next, now);
    now = next;
    ++steps;
  }
  EXPECT_TRUE(core.done());
  // The skip must have jumped over most of the 500-cycle stalls.
  EXPECT_LT(steps, 5000);
}

TEST(OooCore, ResetStatsRestartsBudget) {
  ScriptSource src;
  src.script = {alu()};
  FakeMem mem;
  CoreConfig cfg;
  OooCore core(cfg, 0, &src, &mem, nullptr, 1000);
  core.setRunPastBudget(true);
  Cycle now = 0;
  while (core.stats().committed < 500) core.tick(now++);
  core.resetStats();
  EXPECT_EQ(core.stats().committed, 0u);
  EXPECT_FALSE(core.done());
  while (!core.done()) core.tick(now++);
  EXPECT_EQ(core.stats().committed, 1000u);
}

TEST(OooCore, RunPastBudgetKeepsExecuting) {
  ScriptSource src;
  src.script = {alu()};
  FakeMem mem;
  CoreConfig cfg;
  OooCore core(cfg, 0, &src, &mem, nullptr, 100);
  core.setRunPastBudget(true);
  Cycle now = 0;
  for (; now < 1000; ++now) core.tick(now);
  EXPECT_GT(core.stats().committed, 100u);
  EXPECT_GT(core.stats().doneCycle, 0u);
  EXPECT_LT(core.stats().doneCycle, 200u);  // budget hit early
}

/// Predictor stub that calls everything critical and records training.
struct RecordingPredictor : CriticalityPredictor {
  bool verdict = true;
  std::uint64_t trainCalls = 0, stalledTrue = 0;
  bool predict(std::uint64_t) override { return verdict; }
  bool hasEntry(std::uint64_t) const override { return true; }
  bool train(std::uint64_t, bool stalled) override {
    ++trainCalls;
    stalledTrue += stalled ? 1 : 0;
    return false;
  }
};

TEST(OooCore, PredictorTrainedOnEveryLoadCommit) {
  ScriptSource src;
  src.script = {load(0x1000), alu(), alu(), alu()};
  FakeMem mem;
  RecordingPredictor pred;
  CoreConfig cfg;
  OooCore core(cfg, 0, &src, &mem, &pred, 4000);
  runToCompletion(core);
  EXPECT_EQ(pred.trainCalls, core.stats().loads);
  EXPECT_EQ(pred.stalledTrue, core.stats().loadsStalledHead);
}

TEST(OooCore, AccuracyTracksPredictionVsOutcome) {
  // All-hit loads with an always-critical predictor: every prediction is
  // wrong (hits never stall).
  ScriptSource src;
  src.script = {load(0x1000), alu(), alu(), alu()};
  FakeMem mem;
  RecordingPredictor pred;
  CoreConfig cfg;
  OooCore core(cfg, 0, &src, &mem, &pred, 4000);
  runToCompletion(core);
  EXPECT_GT(core.stats().cptPredictions, 900u);
  EXPECT_LT(core.stats().cptAccuracy(), 0.05);
}

}  // namespace
}  // namespace renuca::cpu
