// Sweep engine tests: the work-stealing thread pool, SweepPlan/runPlan
// semantics (plan-order results, per-job trace paths), PolicySweep
// aggregation math against hand-computed fixtures, and the determinism
// contract — jobs=4 and jobs=1 produce identical RunResults and
// byte-identical run reports modulo the provenance fields.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"

namespace renuca {
namespace {

std::string tmpPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait();
    EXPECT_EQ(count.load(), (batch + 1) * 50);
  }
}

TEST(ThreadPool, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait();  // nothing submitted
  EXPECT_EQ(pool.threadCount(), 2u);
}

TEST(ThreadPool, TasksMaySubmitMoreTasks) {
  // wait() must cover work spawned by running tasks (stealing makes this
  // the common case for recursive fan-out).
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&pool, &count] {
      for (int j = 0; j < 8; ++j) {
        pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 16 * 8);
}

TEST(ThreadPool, SingleWorkerStillDrains) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DestructorDrainsPendingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // no wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPool, ThrowingTaskDoesNotKillWorkerOrWedgeWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([] { throw std::runtime_error("task boom"); });
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();  // Must return: every task, thrower or not, counts as done.
  EXPECT_EQ(count.load(), 100);
  // Both workers survived; a fresh batch still runs on all of them.
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 150);
}

TEST(ThreadPool, NonExceptionThrowIsAlsoContained) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.submit([] { throw 42; });
  pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
}

// A plan whose job throws mid-simulation must surface the error in that
// job's result slot and leave every other slot intact.
TEST(Sweep, RunPlanSurfacesPerJobErrorInResultSlot) {
  for (unsigned jobs : {1u, 3u}) {
    sim::SweepPlan plan;
    sim::SystemConfig good = sim::singleCore();
    good.prewarmInstrPerCore = 20000;
    good.warmupInstrPerCore = 500;
    good.instrPerCore = 1000;
    plan.addSingleApp("ok-before", good, "mcf");
    plan.addSingleApp("broken", good, "no_such_app");
    plan.addSingleApp("ok-after", good, "lbm");

    sim::SweepOptions opts;
    opts.jobs = jobs;
    const std::vector<sim::RunResult> results = sim::runPlan(plan, opts);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].error.empty()) << results[0].error;
    EXPECT_FALSE(results[1].error.empty()) << "jobs=" << jobs;
    EXPECT_NE(results[1].error.find("no_such_app"), std::string::npos)
        << results[1].error;
    EXPECT_TRUE(results[2].error.empty()) << results[2].error;
    EXPECT_GT(results[0].coreIpc.size(), 0u);
    EXPECT_TRUE(results[1].coreIpc.empty()) << "failed slot must stay default";
  }
}

TEST(Sweep, OnJobStartFiresOncePerJobBeforeItsDone) {
  for (unsigned jobs : {1u, 3u}) {
    sim::SweepPlan plan;
    sim::SystemConfig cfg = sim::singleCore();
    cfg.prewarmInstrPerCore = 20000;
    cfg.warmupInstrPerCore = 500;
    cfg.instrPerCore = 1000;
    plan.addSingleApp("a", cfg, "mcf");
    plan.addSingleApp("b", cfg, "lbm");
    plan.addSingleApp("c", cfg, "milc");

    std::vector<std::atomic<int>> started(3), done(3);
    sim::SweepOptions opts;
    opts.jobs = jobs;
    opts.onJobStart = [&](std::size_t i) {
      // start must precede done for the same job (any thread).
      EXPECT_EQ(done[i].load(), 0) << "jobs=" << jobs;
      started[i].fetch_add(1);
    };
    opts.onJobDone = [&](std::size_t i, const sim::RunResult& r) {
      EXPECT_EQ(started[i].load(), 1) << "jobs=" << jobs;
      EXPECT_TRUE(r.error.empty()) << r.error;
      done[i].fetch_add(1);
    };
    sim::runPlan(plan, opts);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(started[static_cast<std::size_t>(i)].load(), 1);
      EXPECT_EQ(done[static_cast<std::size_t>(i)].load(), 1);
    }
  }
}

TEST(Sweep, ResolveJobsMapsZeroToHardware) {
  EXPECT_EQ(sim::resolveJobs(0), ThreadPool::hardwareThreads());
  EXPECT_EQ(sim::resolveJobs(1), 1u);
  EXPECT_EQ(sim::resolveJobs(7), 7u);
}

// --- SweepPlan -------------------------------------------------------------

TEST(Sweep, AddSingleAppBuildsOneAppMix) {
  sim::SweepPlan plan;
  sim::SystemConfig cfg = sim::singleCore();
  std::size_t idx = plan.addSingleApp("mcf-label", cfg, "mcf");
  EXPECT_EQ(idx, 0u);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.jobs()[0].label, "mcf-label");
  EXPECT_EQ(plan.jobs()[0].mix.name, "mcf");
  ASSERT_EQ(plan.jobs()[0].mix.appNames.size(), 1u);
  EXPECT_EQ(plan.jobs()[0].mix.appNames[0], "mcf");
}

TEST(Sweep, RunPlanOnEmptyPlanReturnsEmpty) {
  sim::SweepPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(sim::runPlan(plan).empty());
}

TEST(Sweep, PolicySweepPlanOrderIsPolicyMajor) {
  std::vector<core::PolicyKind> policies = {core::PolicyKind::SNuca,
                                            core::PolicyKind::ReNuca};
  std::vector<workload::WorkloadMix> mixes = {workload::standardMixes()[0],
                                              workload::standardMixes()[1]};
  sim::SweepPlan plan = sim::policySweepPlan(sim::defaultConfig(), policies, mixes);
  ASSERT_EQ(plan.size(), 4u);
  // Job p*M+m is policies[p] on mixes[m]; labels are "Policy/mix".
  EXPECT_EQ(plan.jobs()[0].label, "S-NUCA/" + mixes[0].name);
  EXPECT_EQ(plan.jobs()[1].label, "S-NUCA/" + mixes[1].name);
  EXPECT_EQ(plan.jobs()[2].label, "Re-NUCA/" + mixes[0].name);
  EXPECT_EQ(plan.jobs()[3].label, "Re-NUCA/" + mixes[1].name);
  EXPECT_EQ(plan.jobs()[2].config.policy, core::PolicyKind::ReNuca);
  EXPECT_EQ(plan.jobs()[3].mix.name, mixes[1].name);
}

TEST(Sweep, AssembleReshapesPlanOrderedResults) {
  std::vector<core::PolicyKind> policies = {core::PolicyKind::SNuca,
                                            core::PolicyKind::RNuca};
  std::vector<workload::WorkloadMix> mixes = {workload::standardMixes()[0],
                                              workload::standardMixes()[1],
                                              workload::standardMixes()[2]};
  std::vector<sim::RunResult> flat(6);
  for (std::size_t i = 0; i < flat.size(); ++i) flat[i].measuredCycles = 100 + i;
  sim::PolicySweep sweep = sim::assemblePolicySweep(policies, mixes, std::move(flat));
  ASSERT_EQ(sweep.results.size(), 2u);
  ASSERT_EQ(sweep.results[0].size(), 3u);
  EXPECT_EQ(sweep.at(0, 0).measuredCycles, 100u);
  EXPECT_EQ(sweep.at(0, 2).measuredCycles, 102u);
  EXPECT_EQ(sweep.at(1, 0).measuredCycles, 103u);
  EXPECT_EQ(sweep.at(1, 2).measuredCycles, 105u);
}

// --- PolicySweep aggregation math (hand-computed fixtures) -----------------

/// Two policies x two mixes, two banks, lifetimes and IPCs chosen so
/// every aggregate works out to a closed-form value.
sim::PolicySweep fixtureSweep() {
  sim::PolicySweep s;
  s.policies = {core::PolicyKind::SNuca, core::PolicyKind::ReNuca};
  workload::WorkloadMix a, b;
  a.name = "A";
  b.name = "B";
  s.mixes = {a, b};
  s.results.resize(2, std::vector<sim::RunResult>(2));

  // S-NUCA: lifetimes {10, 10} on both mixes; IPC 2.0 and 4.0.
  for (int m = 0; m < 2; ++m) s.results[0][m].bankLifetimeYears = {10.0, 10.0};
  s.results[0][0].systemIpc = 2.0;
  s.results[0][1].systemIpc = 4.0;

  // Re-NUCA: bank0 {2, 4}, bank1 {8, 8}; IPC 2.5 and 4.4.
  s.results[1][0].bankLifetimeYears = {2.0, 8.0};
  s.results[1][1].bankLifetimeYears = {4.0, 8.0};
  s.results[1][0].systemIpc = 2.5;
  s.results[1][1].systemIpc = 4.4;
  return s;
}

TEST(PolicySweepMath, HarmonicLifetimesPerBank) {
  sim::PolicySweep s = fixtureSweep();
  std::vector<double> h = s.harmonicLifetimesPerBank(1);
  ASSERT_EQ(h.size(), 2u);
  // bank0: 2 / (1/2 + 1/4) = 8/3; bank1: 2 / (1/8 + 1/8) = 8.
  EXPECT_NEAR(h[0], 8.0 / 3.0, 1e-12);
  EXPECT_NEAR(h[1], 8.0, 1e-12);
  // The uniform policy's harmonic mean is the common value.
  std::vector<double> hs = s.harmonicLifetimesPerBank(0);
  EXPECT_NEAR(hs[0], 10.0, 1e-12);
  EXPECT_NEAR(hs[1], 10.0, 1e-12);
}

TEST(PolicySweepMath, RawMinLifetime) {
  sim::PolicySweep s = fixtureSweep();
  // Minimum over all (bank, mix) samples of each policy.
  EXPECT_NEAR(s.rawMinLifetime(0), 10.0, 1e-12);
  EXPECT_NEAR(s.rawMinLifetime(1), 2.0, 1e-12);
}

TEST(PolicySweepMath, IpcImprovementVsSnuca) {
  sim::PolicySweep s = fixtureSweep();
  // Per mix: (val/ref - 1) * 100 -> 2.5/2.0 = +25%, 4.4/4.0 = +10%.
  std::vector<double> imp = s.ipcImprovementVsSnuca(1);
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_NEAR(imp[0], 25.0, 1e-9);
  EXPECT_NEAR(imp[1], 10.0, 1e-9);
  EXPECT_NEAR(s.meanIpcImprovementVsSnuca(1), 17.5, 1e-9);
  // S-NUCA against itself is identically zero.
  for (double v : s.ipcImprovementVsSnuca(0)) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(PolicySweepMath, MeanSystemIpc) {
  sim::PolicySweep s = fixtureSweep();
  EXPECT_NEAR(s.meanSystemIpc(0), 3.0, 1e-12);
  EXPECT_NEAR(s.meanSystemIpc(1), 3.45, 1e-12);
}

// --- Determinism contract --------------------------------------------------

sim::SystemConfig fastConfig() {
  sim::SystemConfig cfg = sim::defaultConfig();
  cfg.instrPerCore = 6000;
  cfg.warmupInstrPerCore = 1500;
  cfg.prewarmInstrPerCore = 150000;
  cfg.placementRefreshInstrPerCore = 50000;
  return cfg;
}

/// Strips report lines carrying provenance that is allowed to differ
/// between runs (timestamps, wall time, host, worker count).
std::string stripProvenance(const std::string& report) {
  std::istringstream is(report);
  std::ostringstream os;
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("\"generated_unix\"") != std::string::npos) continue;
    if (line.find("\"wall_seconds\"") != std::string::npos) continue;
    if (line.find("\"host\"") != std::string::npos) continue;
    if (line.find("\"jobs\"") != std::string::npos) continue;
    os << line << '\n';
  }
  return os.str();
}

TEST(SweepDeterminism, ParallelMatchesSerialRunResults) {
  std::vector<core::PolicyKind> policies = {core::PolicyKind::SNuca,
                                            core::PolicyKind::ReNuca};
  std::vector<workload::WorkloadMix> mixes = {workload::standardMixes()[0],
                                              workload::standardMixes()[1]};
  sim::SweepOptions serial;
  serial.jobs = 1;
  sim::SweepOptions parallel;
  parallel.jobs = 4;
  sim::PolicySweep a = sim::sweepPolicies(fastConfig(), policies, mixes, serial);
  sim::PolicySweep b = sim::sweepPolicies(fastConfig(), policies, mixes, parallel);

  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    for (std::size_t m = 0; m < mixes.size(); ++m) {
      const sim::RunResult& ra = a.at(p, m);
      const sim::RunResult& rb = b.at(p, m);
      EXPECT_EQ(ra.measuredCycles, rb.measuredCycles);
      EXPECT_EQ(ra.bankWrites, rb.bankWrites);
      EXPECT_EQ(ra.coreIpc, rb.coreIpc);
      EXPECT_EQ(ra.mixName, rb.mixName);
      EXPECT_EQ(ra.policy, rb.policy);
      EXPECT_DOUBLE_EQ(ra.systemIpc, rb.systemIpc);
    }
  }

  // Run reports built from both sweeps are byte-identical once the
  // provenance lines (the only allowed difference) are dropped.
  auto entries = [&policies, &mixes](const sim::PolicySweep& s) {
    std::vector<sim::ReportEntry> out;
    for (std::size_t p = 0; p < policies.size(); ++p) {
      for (std::size_t m = 0; m < mixes.size(); ++m) {
        out.push_back({std::string(core::toString(policies[p])) + "/" +
                           mixes[m].name,
                       s.at(p, m)});
      }
    }
    return out;
  };
  std::string pa = tmpPath("sweep_serial.json");
  std::string pb = tmpPath("sweep_parallel.json");
  ASSERT_TRUE(sim::writeRunReport(pa, "determinism", fastConfig(), entries(a),
                                  1.25, 1));
  ASSERT_TRUE(sim::writeRunReport(pb, "determinism", fastConfig(), entries(b),
                                  0.75, 4));
  std::string da = slurp(pa);
  std::string db = slurp(pb);
  EXPECT_NE(da, db);  // wall_seconds and jobs differ...
  EXPECT_EQ(stripProvenance(da), stripProvenance(db));  // ...nothing else.
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(SweepDeterminism, OversubscribedPoolMatchesSerial) {
  // More workers than jobs must not change anything either.
  sim::SweepPlan plan;
  sim::SystemConfig cfg = fastConfig();
  plan.add(sim::Job{"one", cfg, workload::standardMixes()[0]});
  plan.add(sim::Job{"two", cfg, workload::standardMixes()[1]});
  sim::SweepOptions wide;
  wide.jobs = 16;
  std::vector<sim::RunResult> a = sim::runPlan(plan);
  std::vector<sim::RunResult> b = sim::runPlan(plan, wide);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].measuredCycles, b[i].measuredCycles);
    EXPECT_EQ(a[i].bankWrites, b[i].bankWrites);
  }
}

TEST(Sweep, TracedJobsGetDistinctFiles) {
  // Two jobs sharing one trace path: the plan splices the job index in
  // ("t.json" -> "t.j0.json"/"t.j1.json") regardless of jobs=, so the
  // file set does not depend on the worker count.
  sim::SystemConfig cfg = fastConfig();
  cfg.traceJsonPath = tmpPath("sweeptrace.json");
  sim::SweepPlan plan;
  plan.add(sim::Job{"one", cfg, workload::standardMixes()[0]});
  plan.add(sim::Job{"two", cfg, workload::standardMixes()[1]});
  sim::SweepOptions opts;
  opts.jobs = 2;
  sim::runPlan(plan, opts);
  std::string t0 = tmpPath("sweeptrace.j0.json");
  std::string t1 = tmpPath("sweeptrace.j1.json");
  EXPECT_FALSE(slurp(t0).empty());
  EXPECT_FALSE(slurp(t1).empty());
  std::remove(t0.c_str());
  std::remove(t1.c_str());
}

TEST(Sweep, RunSingleAppViaPlanMatchesDirectCall) {
  sim::SystemConfig cfg = sim::singleCore();
  cfg.instrPerCore = 6000;
  cfg.warmupInstrPerCore = 1500;
  sim::RunResult direct = sim::runSingleApp(cfg, "mcf");
  sim::SweepPlan plan;
  plan.addSingleApp("mcf", cfg, "mcf");
  sim::RunResult viaPlan = std::move(sim::runPlan(plan)[0]);
  EXPECT_EQ(direct.measuredCycles, viaPlan.measuredCycles);
  EXPECT_EQ(direct.bankWrites, viaPlan.bankWrites);
  EXPECT_EQ(direct.coreIpc, viaPlan.coreIpc);
}

}  // namespace
}  // namespace renuca
