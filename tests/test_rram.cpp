// Tests for the ReRAM endurance model: lifetime math, clamping, and the
// paper's two aggregations (harmonic mean per bank, raw minimum).
#include <gtest/gtest.h>

#include "rram/endurance.hpp"

namespace renuca::rram {
namespace {

EnduranceConfig cfg() { return EnduranceConfig{}; }

TEST(Endurance, LifetimeInverselyProportionalToWriteRate) {
  // Doubling writes in the same window halves the lifetime.
  Cycle cycles = 2'400'000'000ull;  // exactly 1 second at 2.4 GHz
  double once = bankLifetimeYears(1000, cycles, cfg());
  double twice = bankLifetimeYears(2000, cycles, cfg());
  EXPECT_NEAR(once / twice, 2.0, 1e-9);
}

TEST(Endurance, KnownValue) {
  // 1000 writes/s to the hottest frame: lifetime = 1e11/1000 seconds.
  Cycle oneSecond = 2'400'000'000ull;
  double years = bankLifetimeYears(1000, oneSecond, cfg());
  EXPECT_NEAR(years, 1e8 / kSecondsPerYear, 1.0);
}

TEST(Endurance, ZeroWritesClampsToMax) {
  EXPECT_DOUBLE_EQ(bankLifetimeYears(0, 1000000, cfg()), cfg().maxYears);
}

TEST(Endurance, ZeroWindowClampsToMax) {
  EXPECT_DOUBLE_EQ(bankLifetimeYears(100, 0, cfg()), cfg().maxYears);
}

TEST(Endurance, IdealAccountingSpreadsOverFrames) {
  Cycle oneSecond = 2'400'000'000ull;
  // 32768 frames absorbing 32768k writes -> 1000 writes/frame/s.
  double ideal = bankLifetimeYearsIdeal(32768ull * 1000, 32768, oneSecond, cfg());
  double hot = bankLifetimeYears(1000, oneSecond, cfg());
  EXPECT_NEAR(ideal, hot, 1e-9);
  // Concentrating the same total on one frame is 32768x worse.
  double concentrated = bankLifetimeYears(32768ull * 1000, oneSecond, cfg());
  EXPECT_NEAR(ideal / concentrated, 32768.0, 1.0);
}

TEST(Aggregator, HarmonicPerBank) {
  LifetimeAggregator agg(2);
  agg.addRun({2.0, 8.0});
  agg.addRun({2.0, 8.0});
  auto h = agg.harmonicPerBank();
  EXPECT_DOUBLE_EQ(h[0], 2.0);
  EXPECT_DOUBLE_EQ(h[1], 8.0);
  EXPECT_EQ(agg.numRuns(), 2u);
}

TEST(Aggregator, HarmonicDominatedByWorstRun) {
  LifetimeAggregator agg(1);
  agg.addRun({1.0});
  agg.addRun({100.0});
  // Harmonic mean of {1, 100} = 2/(1 + 0.01) ~= 1.98: near the bad run.
  EXPECT_NEAR(agg.harmonicPerBank()[0], 1.98, 0.01);
}

TEST(Aggregator, RawMinimumAcrossEverything) {
  LifetimeAggregator agg(3);
  agg.addRun({5.0, 3.0, 9.0});
  agg.addRun({4.0, 7.0, 2.5});
  EXPECT_DOUBLE_EQ(agg.rawMinimum(), 2.5);
}

TEST(Aggregator, HarmonicOverall) {
  LifetimeAggregator agg(2);
  agg.addRun({4.0, 4.0});
  EXPECT_DOUBLE_EQ(agg.harmonicOverall(), 4.0);
}

TEST(Aggregator, SpreadMeasuresWearLeveling) {
  LifetimeAggregator level(2), skewed(2);
  level.addRun({5.0, 5.0});
  skewed.addRun({2.0, 10.0});
  EXPECT_DOUBLE_EQ(level.harmonicSpread(), 1.0);
  EXPECT_DOUBLE_EQ(skewed.harmonicSpread(), 5.0);
}

TEST(Aggregator, RejectsWrongWidth) {
  LifetimeAggregator agg(4);
  EXPECT_DEATH(agg.addRun({1.0, 2.0}), "size mismatch");
}

TEST(Endurance, LifetimeSeriesMatchesScalarModel) {
  EnduranceConfig c = cfg();
  std::vector<double> writes = {0.0, 1e6, 2e6};
  std::vector<Cycle> cycles = {0, 1000000, 2000000};
  std::vector<double> series = lifetimeSeriesYears(writes, cycles, 32768, c);
  ASSERT_EQ(series.size(), 3u);
  // No writes yet -> clamped to maxYears.
  EXPECT_DOUBLE_EQ(series[0], c.maxYears);
  // Each later point must agree with the scalar ideal-wear-leveling model.
  EXPECT_DOUBLE_EQ(series[1], bankLifetimeYearsIdeal(1000000, 32768, 1000000, c));
  EXPECT_DOUBLE_EQ(series[2], bankLifetimeYearsIdeal(2000000, 32768, 2000000, c));
  // Constant write *rate* -> constant projected lifetime.
  EXPECT_DOUBLE_EQ(series[1], series[2]);
}

TEST(Aggregator, EmptyIsZero) {
  LifetimeAggregator agg(2);
  EXPECT_DOUBLE_EQ(agg.rawMinimum(), 0.0);
  EXPECT_DOUBLE_EQ(agg.harmonicPerBank()[0], 0.0);
}

}  // namespace
}  // namespace renuca::rram
