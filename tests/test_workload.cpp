// Tests for the workload substrate: Table II profiles, parameter
// derivation invariants, generator determinism and rate calibration, trace
// round-trips, and workload-mix construction.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>

#include "workload/app_profile.hpp"
#include "workload/generator.hpp"
#include "workload/mixes.hpp"
#include "workload/trace.hpp"

namespace renuca::workload {
namespace {

TEST(AppProfile, AllTableIIAppsPresent) {
  const auto& profiles = spec2006Profiles();
  EXPECT_EQ(profiles.size(), 22u);
  for (const char* name :
       {"mcf", "streamL", "lbm", "zeusmp", "bwaves", "libquantum", "milc",
        "omnetpp", "xalancbmk", "leslie3d", "bzip2", "gromacs", "hmmer",
        "soplex", "h264ref", "sjeng", "sphinx3", "dealII", "astar", "povray",
        "namd", "GemsFDTD"}) {
    EXPECT_NO_FATAL_FAILURE(profileByName(name)) << name;
  }
}

TEST(AppProfile, IntensityClassificationMatchesPaperRule) {
  // WPKI + MPKI > 10 -> High; [1, 10] -> Medium; < 1 -> Low (paper §V.A).
  EXPECT_EQ(profileByName("mcf").intensity(), WriteIntensity::High);
  EXPECT_EQ(profileByName("streamL").intensity(), WriteIntensity::High);
  EXPECT_EQ(profileByName("omnetpp").intensity(), WriteIntensity::High);
  EXPECT_EQ(profileByName("bzip2").intensity(), WriteIntensity::Medium);
  EXPECT_EQ(profileByName("hmmer").intensity(), WriteIntensity::Medium);
  EXPECT_EQ(profileByName("namd").intensity(), WriteIntensity::Low);
  EXPECT_EQ(profileByName("GemsFDTD").intensity(), WriteIntensity::Low);
}

TEST(AppProfile, AllIntensityClassesNonEmpty) {
  int high = 0, medium = 0, low = 0;
  for (const AppProfile& p : spec2006Profiles()) {
    switch (p.intensity()) {
      case WriteIntensity::High: ++high; break;
      case WriteIntensity::Medium: ++medium; break;
      case WriteIntensity::Low: ++low; break;
    }
  }
  EXPECT_GT(high, 0);
  EXPECT_GT(medium, 0);
  EXPECT_GT(low, 0);
}

// Property sweep: parameter derivation must be internally consistent for
// every Table II application.
class DeriveParamsTest : public ::testing::TestWithParam<AppProfile> {};

TEST_P(DeriveParamsTest, RatesNonNegativeAndWithinMix) {
  const DerivedParams& p = GetParam().params;
  for (double v : {p.loadStreamPki, p.storeStreamPki, p.loadLargePki,
                   p.storeLargePki, p.loadWarmPki, p.storeWarmPki,
                   p.loadHotPki, p.storeHotPki}) {
    EXPECT_GE(v, 0.0);
  }
  double loads = p.loadStreamPki + p.loadLargePki + p.loadWarmPki + p.loadHotPki;
  double stores = p.storeStreamPki + p.storeLargePki + p.storeWarmPki + p.storeHotPki +
                  p.rmwProb * p.loadStreamPki;
  EXPECT_LE(loads, kLoadsPerKi + 1.0);
  EXPECT_LE(stores, kStoresPerKi + 1.0);
  EXPECT_GE(p.rmwProb, 0.0);
  EXPECT_LE(p.rmwProb, 1.0);
  EXPECT_GE(p.depChainFrac, 0.0);
  EXPECT_LE(p.depChainFrac, 0.95);
  EXPECT_GE(p.aluDepShallowFrac, 0.0);
  EXPECT_LE(p.aluDepShallowFrac, 1.0);
}

TEST_P(DeriveParamsTest, MissDecompositionMatchesMpki) {
  const AppProfile& prof = GetParam();
  double missPki = prof.params.loadStreamPki + prof.params.storeStreamPki;
  EXPECT_NEAR(missPki, prof.ref.mpki, prof.ref.mpki * 0.05 + 0.1);
}

INSTANTIATE_TEST_SUITE_P(AllApps, DeriveParamsTest,
                         ::testing::ValuesIn(spec2006Profiles()),
                         [](const ::testing::TestParamInfo<AppProfile>& info) {
                           return info.param.name;
                         });

TEST(Generator, DeterministicForSameSeed) {
  const AppProfile& prof = profileByName("mcf");
  SyntheticGenerator a(prof, 42), b(prof, 42);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "diverged at " << i;
  }
}

TEST(Generator, DifferentSeedsDiverge) {
  const AppProfile& prof = profileByName("mcf");
  SyntheticGenerator a(prof, 1), b(prof, 2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 900);  // ALU records often match; addresses must not
}

TEST(Generator, LoopSummaryMatchesDerivedRates) {
  for (const char* name : {"mcf", "streamL", "omnetpp", "hmmer"}) {
    const AppProfile& prof = profileByName(name);
    SyntheticGenerator gen(prof, 7);
    auto s = gen.loopSummary();
    double scale = prof.loopLen / 1000.0;
    EXPECT_NEAR(s.streamLoads, prof.params.loadStreamPki * scale, 1.0) << name;
    EXPECT_NEAR(s.streamStores, prof.params.storeStreamPki * scale, 1.0) << name;
    EXPECT_NEAR(s.largeStores, prof.params.storeLargePki * scale, 1.0) << name;
  }
}

TEST(Generator, EmittedMixMatchesRates) {
  const AppProfile& prof = profileByName("zeusmp");
  SyntheticGenerator gen(prof, 11);
  std::uint64_t loads = 0, stores = 0, total = 200000;
  for (std::uint64_t i = 0; i < total; ++i) {
    TraceRecord r = gen.next();
    if (r.kind == InstrKind::Load) ++loads;
    if (r.kind == InstrKind::Store) ++stores;
  }
  // ~25 % loads; stores = base mix + RMW pairs.
  EXPECT_NEAR(loads / static_cast<double>(total), 0.25, 0.03);
  EXPECT_GT(stores, 0u);
}

TEST(Generator, PcStablePerSlot) {
  // The same PC must always be the same kind of instruction — the paper's
  // PC-indexed criticality predictor depends on it.
  const AppProfile& prof = profileByName("bwaves");
  SyntheticGenerator gen(prof, 3);
  std::map<std::uint64_t, InstrKind> kindOf;
  for (int i = 0; i < 50000; ++i) {
    TraceRecord r = gen.next();
    auto [it, inserted] = kindOf.emplace(r.pc, r.kind);
    if (!inserted) {
      ASSERT_EQ(it->second, r.kind) << "pc " << r.pc << " changed kind";
    }
  }
}

TEST(Generator, StreamAddressesAdvanceByLine) {
  const AppProfile& prof = profileByName("streamL");
  SyntheticGenerator gen(prof, 5);
  // Group stream-load addresses by their 16 MB window and check in-window
  // monotone +64 advance.
  std::map<std::uint64_t, std::uint64_t> lastInWindow;
  int checked = 0;
  for (int i = 0; i < 100000 && checked < 2000; ++i) {
    TraceRecord r = gen.next();
    if (r.kind != InstrKind::Load || r.vaddr < 0x40000000ull) continue;
    std::uint64_t window = r.vaddr >> 24;
    auto it = lastInWindow.find(window);
    if (it != lastInWindow.end() && r.vaddr > it->second) {
      // Streaming stores share the cursor, so consecutive *loads* advance
      // by a whole number of lines, never backwards or sub-line.
      EXPECT_EQ((r.vaddr - it->second) % kLineBytes, 0u);
      EXPECT_LE(r.vaddr - it->second, 8 * kLineBytes);
      ++checked;
    }
    lastInWindow[window] = r.vaddr;
  }
  EXPECT_GT(checked, 100);
}

TEST(Generator, DepDistancesBounded) {
  const AppProfile& prof = profileByName("mcf");
  SyntheticGenerator gen(prof, 9);
  for (int i = 0; i < 50000; ++i) {
    TraceRecord r = gen.next();
    EXPECT_LE(static_cast<int>(r.depDist), 255);
  }
}

TEST(Trace, RoundTripThroughFile) {
  std::string path = ::testing::TempDir() + "/renuca_trace_test.bin";
  const AppProfile& prof = profileByName("milc");
  SyntheticGenerator gen(prof, 13);
  std::vector<TraceRecord> recs;
  {
    TraceWriter writer(path);
    for (int i = 0; i < 1000; ++i) {
      recs.push_back(gen.next());
      writer.append(recs.back());
    }
    EXPECT_EQ(writer.written(), 1000u);
  }
  TraceReader reader(path, /*wrapAround=*/false);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(reader.next(), recs[i]) << "record " << i;
  }
  reader.next();
  EXPECT_TRUE(reader.exhausted());
  std::remove(path.c_str());
}

TEST(Trace, WrapAroundRepeats) {
  std::string path = ::testing::TempDir() + "/renuca_trace_wrap.bin";
  {
    TraceWriter writer(path);
    TraceRecord r;
    r.pc = 0x1234;
    r.kind = InstrKind::Load;
    r.vaddr = 0x1000;
    writer.append(r);
  }
  TraceReader reader(path, /*wrapAround=*/true);
  for (int i = 0; i < 5; ++i) {
    TraceRecord r = reader.next();
    EXPECT_EQ(r.pc, 0x1234u);
    EXPECT_FALSE(reader.exhausted());
  }
  std::remove(path.c_str());
}

TEST(Trace, HeaderCarriesVersionAndCount) {
  std::string path = ::testing::TempDir() + "/renuca_trace_header.bin";
  {
    TraceWriter writer(path);
    TraceRecord r;
    r.kind = InstrKind::Store;
    for (int i = 0; i < 3; ++i) writer.append(r);
    EXPECT_TRUE(writer.close());
  }
  // 24-byte header: magic, version, record size, record count (patched on
  // close).
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  unsigned char hdr[24];
  ASSERT_EQ(std::fread(hdr, 1, sizeof hdr, f), sizeof hdr);
  std::fclose(f);
  EXPECT_EQ(std::memcmp(hdr, "RENUCATR", 8), 0);
  std::uint32_t version, recordBytes;
  std::uint64_t count;
  std::memcpy(&version, hdr + 8, 4);
  std::memcpy(&recordBytes, hdr + 12, 4);
  std::memcpy(&count, hdr + 16, 8);
  EXPECT_EQ(version, 2u);
  EXPECT_EQ(recordBytes, 18u);
  EXPECT_EQ(count, 3u);

  TraceReader reader(path, /*wrapAround=*/false);
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.fileRecords(), 3u);
  std::remove(path.c_str());
}

TEST(Trace, MissingFileIsRecoverable) {
  TraceReader reader(::testing::TempDir() + "/renuca_no_such_trace.bin");
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.error(), TraceError::OpenFailed);
  EXPECT_TRUE(reader.exhausted());
  reader.next();  // must not abort
  EXPECT_TRUE(reader.exhausted());
}

TEST(Trace, TruncatedTailServesCompleteRecords) {
  std::string path = ::testing::TempDir() + "/renuca_trace_trunc.bin";
  TraceRecord r;
  r.pc = 0x42;
  r.kind = InstrKind::Load;
  r.vaddr = 0x1000;
  {
    TraceWriter writer(path);
    writer.append(r);
    writer.append(r);
    ASSERT_TRUE(writer.close());
  }
  // Chop the file mid-record: 24-byte header + 1 full record + 7 stray
  // bytes of the second.
  ASSERT_EQ(::truncate(path.c_str(), 24 + 18 + 7), 0);

  TraceReader reader(path, /*wrapAround=*/false);
  EXPECT_EQ(reader.error(), TraceError::TruncatedTail);
  EXPECT_EQ(reader.fileRecords(), 1u);
  EXPECT_EQ(reader.strayTailBytes(), 7u);
  EXPECT_EQ(reader.next(), r);  // the intact record still replays
  reader.next();
  EXPECT_TRUE(reader.exhausted());
  std::remove(path.c_str());
}

TEST(Trace, BadKindByteStopsReplayWithoutAbort) {
  std::string path = ::testing::TempDir() + "/renuca_trace_badkind.bin";
  TraceRecord r;
  r.kind = InstrKind::Alu;
  {
    TraceWriter writer(path);
    writer.append(r);
    writer.append(r);
    ASSERT_TRUE(writer.close());
  }
  // Corrupt the second record's kind byte (offset 16 inside the record).
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 24 + 18 + 16, SEEK_SET), 0);
  unsigned char bad = 0x7f;
  ASSERT_EQ(std::fwrite(&bad, 1, 1, f), 1u);
  std::fclose(f);

  TraceReader reader(path, /*wrapAround=*/false);
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.next(), r);
  reader.next();  // hits the corrupt record
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(reader.error(), TraceError::BadKind);
  std::remove(path.c_str());
}

TEST(Trace, HeaderCountMismatchIsFlagged) {
  std::string path = ::testing::TempDir() + "/renuca_trace_count.bin";
  TraceRecord r;
  {
    TraceWriter writer(path);
    writer.append(r);
    writer.append(r);
    ASSERT_TRUE(writer.close());
  }
  // Lie in the header: claim 5 records while the payload holds 2.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 16, SEEK_SET), 0);
  std::uint64_t wrong = 5;
  ASSERT_EQ(std::fwrite(&wrong, 1, sizeof wrong, f), sizeof wrong);
  std::fclose(f);

  TraceReader reader(path, /*wrapAround=*/false);
  EXPECT_EQ(reader.error(), TraceError::CountMismatch);
  EXPECT_EQ(reader.fileRecords(), 2u);  // payload wins over the header
  reader.next();
  reader.next();
  reader.next();
  EXPECT_TRUE(reader.exhausted());
  std::remove(path.c_str());
}

TEST(Trace, LegacyHeaderlessFileStillReplays) {
  std::string path = ::testing::TempDir() + "/renuca_trace_legacy.bin";
  // Hand-write a headerless v1 file: one raw 18-byte record.
  TraceRecord r;
  r.pc = 0xabcd;
  r.vaddr = 0x2000;
  r.kind = InstrKind::Store;
  r.depDist = 3;
  unsigned char buf[18];
  std::memcpy(buf, &r.pc, 8);
  std::memcpy(buf + 8, &r.vaddr, 8);
  buf[16] = static_cast<unsigned char>(r.kind);
  buf[17] = r.depDist;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(buf, 1, sizeof buf, f), sizeof buf);
  std::fclose(f);

  TraceReader reader(path, /*wrapAround=*/true);
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.fileRecords(), 1u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(reader.next(), r);  // wraps without re-reading a header
  }
  std::remove(path.c_str());
}

TEST(Mixes, TenStandardMixesOfSixteenApps) {
  const auto& mixes = standardMixes();
  ASSERT_EQ(mixes.size(), 10u);
  for (const WorkloadMix& mix : mixes) {
    EXPECT_EQ(mix.appNames.size(), 16u);
    for (const std::string& name : mix.appNames) {
      EXPECT_NO_FATAL_FAILURE(profileByName(name));
    }
  }
}

TEST(Mixes, EveryMixContainsHighAndLowIntensity) {
  for (const WorkloadMix& mix : standardMixes()) {
    int high = 0, low = 0;
    for (const std::string& name : mix.appNames) {
      WriteIntensity wi = profileByName(name).intensity();
      if (wi == WriteIntensity::High) ++high;
      if (wi == WriteIntensity::Low) ++low;
    }
    EXPECT_EQ(high, 5) << mix.name;
    EXPECT_EQ(low, 6) << mix.name;
  }
}

TEST(Mixes, MixesDifferFromEachOther) {
  const auto& mixes = standardMixes();
  std::set<std::vector<std::string>> unique;
  for (const WorkloadMix& mix : mixes) unique.insert(mix.appNames);
  EXPECT_EQ(unique.size(), mixes.size());
}

TEST(Mixes, MakeMixValidatesCounts) {
  WorkloadMix mix = makeMix("custom", 8, 2, 3, 3, 99);
  EXPECT_EQ(mix.appNames.size(), 8u);
  EXPECT_DEATH(makeMix("bad", 8, 4, 4, 4, 1), "sum");
}

TEST(Mixes, Deterministic) {
  WorkloadMix a = makeMix("a", 16, 5, 5, 6, 7);
  WorkloadMix b = makeMix("b", 16, 5, 5, 6, 7);
  EXPECT_EQ(a.appNames, b.appNames);
}

}  // namespace
}  // namespace renuca::workload
