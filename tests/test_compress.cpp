// Compression subsystem tests: encoder goldens per content class, the
// differential-write (bits-flipped) model and its edge cases, deterministic
// content synthesis and class draws, bank-level bit accounting (zero-delta
// rewrites, raw fallbacks, fractional wear against frame budgets), and
// jobs=N determinism of compressed sweeps.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>

#include "compress/compress.hpp"
#include "mem/cache.hpp"
#include "rram/fault_model.hpp"
#include "sim/experiment.hpp"

namespace renuca {
namespace {

using compress::CompressedLine;
using compress::Kind;
using compress::LineClass;
using compress::LineContent;
using compress::Scheme;

std::uint64_t payloadPopcount(const CompressedLine& line) {
  std::uint64_t bits = 0;
  for (std::uint32_t i = 0; i < line.sizeBytes(); ++i) {
    bits += static_cast<std::uint64_t>(std::popcount(line.bytes[i]));
  }
  return bits;
}

// --- Encoders ---------------------------------------------------------------

TEST(Compress, ZeroLineCompressesToEightBits) {
  CompressedLine out;
  compress::compressContent(Kind::BdiFpc, {LineClass::Zero, 42}, out);
  EXPECT_EQ(out.scheme, Scheme::BdiZero);
  EXPECT_EQ(out.sizeBits, 8u);
}

TEST(Compress, RepeatedValueLineCompressesToOneWord) {
  CompressedLine out;
  compress::compressContent(Kind::Bdi, {LineClass::Rep, 42}, out);
  EXPECT_EQ(out.scheme, Scheme::BdiRep);
  EXPECT_EQ(out.sizeBits, 64u);
}

TEST(Compress, NarrowLineCompressesWithBdi) {
  CompressedLine out;
  compress::compressContent(Kind::Bdi, {LineClass::Narrow, 42}, out);
  EXPECT_NE(out.scheme, Scheme::Raw);
  // Base + one-byte deltas: 8 + 8x1 bytes = 128 bits (or better).
  EXPECT_LE(out.sizeBits, 128u);
}

TEST(Compress, PatternLineCompressesWithFpc) {
  CompressedLine out;
  compress::compressContent(Kind::Fpc, {LineClass::Pattern, 42}, out);
  EXPECT_EQ(out.scheme, Scheme::Fpc);
  EXPECT_LT(out.sizeBits, compress::kLineBits);
}

TEST(Compress, RandomLineFallsBackToRaw) {
  CompressedLine out;
  compress::compressContent(Kind::BdiFpc, {LineClass::Random, 42}, out);
  EXPECT_EQ(out.scheme, Scheme::Raw);
  EXPECT_EQ(out.sizeBits, compress::kLineBits);
}

TEST(Compress, CombinedKindNeverLosesToEitherEncoder) {
  for (std::uint32_t c = 0; c < compress::kNumLineClasses; ++c) {
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
      LineContent content{static_cast<LineClass>(c), seed};
      CompressedLine bdi, fpc, both;
      compress::compressContent(Kind::Bdi, content, bdi);
      compress::compressContent(Kind::Fpc, content, fpc);
      compress::compressContent(Kind::BdiFpc, content, both);
      EXPECT_LE(both.sizeBits, bdi.sizeBits);
      EXPECT_LE(both.sizeBits, fpc.sizeBits);
      EXPECT_LE(both.sizeBits, compress::kLineBits);
      EXPECT_GT(both.sizeBits, 0u);
    }
  }
}

TEST(Compress, SynthesisAndEncodingAreDeterministic) {
  std::uint64_t a[compress::kLineWords], b[compress::kLineWords];
  compress::synthesizeLine({LineClass::Pattern, 99}, a);
  compress::synthesizeLine({LineClass::Pattern, 99}, b);
  for (std::uint32_t i = 0; i < compress::kLineWords; ++i) EXPECT_EQ(a[i], b[i]);
  compress::synthesizeLine({LineClass::Pattern, 100}, b);
  bool differs = false;
  for (std::uint32_t i = 0; i < compress::kLineWords; ++i) differs |= a[i] != b[i];
  EXPECT_TRUE(differs);

  CompressedLine x, y;
  compress::compressContent(Kind::BdiFpc, {LineClass::Narrow, 7}, x);
  compress::compressContent(Kind::BdiFpc, {LineClass::Narrow, 7}, y);
  EXPECT_EQ(x.sizeBits, y.sizeBits);
  EXPECT_EQ(x.scheme, y.scheme);
  EXPECT_EQ(0, std::memcmp(x.bytes, y.bytes, sizeof(x.bytes)));
}

// --- Differential-write model ------------------------------------------------

TEST(Compress, IdenticalPayloadFlipsZeroBits) {
  CompressedLine a;
  compress::compressContent(Kind::BdiFpc, {LineClass::Narrow, 5}, a);
  EXPECT_EQ(compress::bitsFlipped(a, a), 0u);
}

TEST(Compress, VirginWriteFlipsPayloadPopulation) {
  CompressedLine a;
  compress::compressContent(Kind::BdiFpc, {LineClass::Rep, 5}, a);
  EXPECT_EQ(compress::bitsFlipped(a), payloadPopcount(a));
}

TEST(Compress, FlipCountIsSymmetric) {
  CompressedLine a, b;
  compress::compressContent(Kind::BdiFpc, {LineClass::Narrow, 5}, a);
  compress::compressContent(Kind::BdiFpc, {LineClass::Random, 6}, b);
  EXPECT_EQ(compress::bitsFlipped(a, b), compress::bitsFlipped(b, a));
}

TEST(Compress, SizeChangePaysForTailBits) {
  // Growing writes the new tail's set bits; shrinking clears the old tail.
  CompressedLine small, big;
  small.bytes[0] = 0xFF;
  small.sizeBits = 8;
  big.bytes[0] = 0xFF;
  big.bytes[1] = 0xFF;
  big.sizeBits = 16;
  EXPECT_EQ(compress::bitsFlipped(small, big), 8u);
  EXPECT_EQ(compress::bitsFlipped(big, small), 8u);
}

// --- Profiles and parsing ----------------------------------------------------

TEST(Compress, DrawClassWalksCumulativeDistribution) {
  compress::Compressibility p;  // 0.10 / 0.10 / 0.25 / 0.25, rest Random
  EXPECT_EQ(compress::drawClass(p, 0.05), LineClass::Zero);
  EXPECT_EQ(compress::drawClass(p, 0.15), LineClass::Rep);
  EXPECT_EQ(compress::drawClass(p, 0.30), LineClass::Narrow);
  EXPECT_EQ(compress::drawClass(p, 0.60), LineClass::Pattern);
  EXPECT_EQ(compress::drawClass(p, 0.95), LineClass::Random);
}

TEST(Compress, ParseKindRoundTrips) {
  for (Kind k : {Kind::None, Kind::Bdi, Kind::Fpc, Kind::BdiFpc}) {
    Kind parsed;
    ASSERT_TRUE(compress::parseKind(compress::toString(k), parsed));
    EXPECT_EQ(parsed, k);
  }
  Kind parsed;
  EXPECT_FALSE(compress::parseKind("zstd", parsed));
  EXPECT_FALSE(compress::parseKind("", parsed));
}

// --- Bank-level bit accounting ----------------------------------------------

mem::CacheConfig compressedBank(Kind kind = Kind::BdiFpc) {
  mem::CacheConfig cfg;
  cfg.sizeBytes = 4 * 1024;  // 64 frames
  cfg.ways = 2;
  cfg.trackFrameWrites = true;
  cfg.compress = kind;
  return cfg;
}

TEST(CacheBankCompress, ZeroDeltaRewriteFlipsNothing) {
  mem::CacheBank bank(compressedBank(), "t");
  LineContent content{LineClass::Narrow, 11};
  bank.insert(100, /*dirty=*/false, /*critical=*/false, &content);
  const std::uint64_t afterFill = bank.compressionStats().bitsFlipped;
  EXPECT_GT(afterFill, 0u);
  ASSERT_TRUE(bank.writebackHit(100, &content));  // same payload again
  EXPECT_EQ(bank.compressionStats().bitsFlipped, afterFill);
  EXPECT_EQ(bank.compressionStats().zeroDeltaWrites, 1u);
}

TEST(CacheBankCompress, IncompressibleLineCountsRawFallback) {
  mem::CacheBank bank(compressedBank(), "t");
  LineContent content{LineClass::Random, 11};
  bank.insert(100, false, false, &content);
  EXPECT_EQ(bank.compressionStats().rawFallbacks, 1u);
  // Raw = 512 stored bits: top histogram bucket.
  EXPECT_EQ(bank.compressionStats().sizeHist[7], 1u);
}

TEST(CacheBankCompress, ContentSurvivesEvictionAsCellState) {
  // Cells keep their last value: refilling the frame with the same payload
  // after an eviction flips zero bits.
  mem::CacheBank bank(compressedBank(), "t");
  const std::uint32_t sets = bank.config().numSets();
  LineContent content{LineClass::Rep, 3};
  bank.insert(100, false, false, &content);
  // Fill both ways, then two more inserts evict the originals (LRU).
  LineContent other{LineClass::Rep, 4};
  bank.insert(100 + sets, false, false, &other);
  bank.insert(100 + 2 * sets, false, false, &other);
  EXPECT_FALSE(bank.contains(100));
  const std::uint64_t before = bank.compressionStats().bitsFlipped;
  // 100 + 2*sets landed in 100's frame with `other`; writing `other` back
  // into that frame is a zero-delta rewrite.
  ASSERT_TRUE(bank.writebackHit(100 + 2 * sets, &other));
  EXPECT_EQ(bank.compressionStats().bitsFlipped, before);
}

TEST(CacheBankCompress, ResetMeasurementKeepsCellsZerosWear) {
  mem::CacheBank bank(compressedBank(), "t");
  LineContent content{LineClass::Narrow, 11};
  bank.insert(100, false, false, &content);
  EXPECT_GT(bank.maxFrameBits(), 0u);
  bank.resetMeasurement();
  EXPECT_EQ(bank.maxFrameBits(), 0u);
  EXPECT_EQ(bank.compressionStats().writes, 0u);
  // The descriptor survived: rewriting the same payload is still free.
  ASSERT_TRUE(bank.writebackHit(100, &content));
  EXPECT_EQ(bank.compressionStats().bitsFlipped, 0u);
  EXPECT_EQ(bank.compressionStats().zeroDeltaWrites, 1u);
}

TEST(CacheBankCompress, CompressedFramesOutliveWriteBudget) {
  // Frame budgets count effective writes (bits/512): with ~quarter-size
  // payloads a compressed frame absorbs several times its nominal write
  // budget, while an uncompressed frame dies exactly at the budget.
  rram::FaultConfig fc;
  fc.enabled = true;
  fc.sigma = 0.0;  // identical cells: every frame's limit == budget
  fc.budgetWrites = 6.0;

  mem::CacheConfig plainCfg = compressedBank(Kind::None);
  mem::CacheBank plain(plainCfg, "plain");
  rram::BankFaultModel plainFm(fc, 0, plainCfg.numSets(), plainCfg.ways);
  plain.setFaultModel(&plainFm);
  plain.armFaultBudgets();

  mem::CacheConfig cmpCfg = compressedBank(Kind::BdiFpc);
  mem::CacheBank cmp(cmpCfg, "cmp");
  rram::BankFaultModel cmpFm(fc, 0, cmpCfg.numSets(), cmpCfg.ways);
  cmp.setFaultModel(&cmpFm);
  cmp.armFaultBudgets();

  auto writesUntilDeath = [](mem::CacheBank& bank, std::uint64_t cap) {
    LineContent first{LineClass::Narrow, 0};
    bank.insert(100, false, false, &first);
    std::uint64_t writes = 1;
    while (writes < cap) {
      LineContent content{LineClass::Narrow, writes};
      if (!bank.writebackHit(100, &content)) break;  // frame died
      ++writes;
      if (!bank.harvestFrameDeaths().empty()) break;
    }
    return writes;
  };

  const std::uint64_t plainWrites = writesUntilDeath(plain, 1000);
  const std::uint64_t cmpWrites = writesUntilDeath(cmp, 1000);
  EXPECT_EQ(plainWrites, 6u);  // classic accounting: dead at the budget
  // Narrow lines store ~128 of 512 bits and flip fewer still; at least 3x
  // the budget must land before the bit budget (6 * 512 cells) runs out.
  EXPECT_GE(cmpWrites, 3 * plainWrites);
}

// --- System-level ------------------------------------------------------------

sim::SystemConfig fastCompressedConfig(Kind kind) {
  sim::SystemConfig cfg = sim::defaultConfig();
  cfg.policy = core::PolicyKind::ReNuca;
  cfg.compress = kind;
  cfg.instrPerCore = 4000;
  cfg.warmupInstrPerCore = 1000;
  cfg.prewarmInstrPerCore = 60000;
  cfg.placementRefreshInstrPerCore = 20000;
  return cfg;
}

TEST(SystemCompress, CompressionOffLeavesResultFieldsEmpty) {
  sim::RunResult r = sim::runWorkload(fastCompressedConfig(Kind::None),
                                      workload::standardMixes()[0]);
  EXPECT_EQ(r.compressKind, Kind::None);
  EXPECT_TRUE(r.bankBitsFlipped.empty());
  EXPECT_TRUE(r.bankLifetimeYearsBits.empty());
  EXPECT_EQ(r.cmpWrites, 0u);
  EXPECT_EQ(r.minBankLifetimeBits(), 0.0);
}

TEST(SystemCompress, CompressionOnProducesBitAccurateWear) {
  sim::RunResult r = sim::runWorkload(fastCompressedConfig(Kind::BdiFpc),
                                      workload::standardMixes()[0]);
  EXPECT_EQ(r.compressKind, Kind::BdiFpc);
  ASSERT_EQ(r.bankBitsFlipped.size(), 16u);
  ASSERT_EQ(r.bankLifetimeYearsBits.size(), 16u);
  EXPECT_GT(r.cmpWrites, 0u);
  std::uint64_t hist = 0;
  for (std::uint64_t h : r.cmpSizeHist) hist += h;
  EXPECT_EQ(hist, r.cmpWrites);
  for (std::size_t b = 0; b < r.bankBitsFlipped.size(); ++b) {
    // A compressed write can never flip more than the full line, so the
    // bit-accurate lifetime dominates the classic full-line accounting.
    EXPECT_LE(r.bankBitsFlipped[b], r.bankWrites[b] * compress::kLineBits);
    EXPECT_GE(r.bankLifetimeYearsBits[b], r.bankLifetimeYears[b]);
  }
  EXPECT_GE(r.minBankLifetimeBits(), r.minBankLifetime());
}

TEST(SystemCompress, CompressedSweepDeterministicAcrossJobCounts) {
  sim::SystemConfig cfg = fastCompressedConfig(Kind::BdiFpc);
  const std::vector<core::PolicyKind> policies = {core::PolicyKind::SNuca,
                                                  core::PolicyKind::ReNuca};
  const std::vector<workload::WorkloadMix> mixes = {workload::standardMixes()[0]};
  sim::SweepOptions serial;
  serial.jobs = 1;
  sim::SweepOptions parallel;
  parallel.jobs = 4;
  sim::PolicySweep a = sim::sweepPolicies(cfg, policies, mixes, serial);
  sim::PolicySweep b = sim::sweepPolicies(cfg, policies, mixes, parallel);
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const sim::RunResult& ra = a.at(p, 0);
    const sim::RunResult& rb = b.at(p, 0);
    EXPECT_EQ(ra.measuredCycles, rb.measuredCycles);
    EXPECT_EQ(ra.coreIpc, rb.coreIpc);
    EXPECT_EQ(ra.bankWrites, rb.bankWrites);
    EXPECT_EQ(ra.bankBitsFlipped, rb.bankBitsFlipped);
    EXPECT_EQ(ra.cmpWrites, rb.cmpWrites);
    EXPECT_EQ(ra.cmpZeroDeltaWrites, rb.cmpZeroDeltaWrites);
  }
}

}  // namespace
}  // namespace renuca
