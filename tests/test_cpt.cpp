// Tests for the Criticality Predictor Table (paper §IV.B): threshold rule,
// cold-lookup default, counter bookkeeping, FIFO capacity eviction, and the
// monotone threshold property the paper's Fig 7 sweep rests on.
#include <gtest/gtest.h>

#include "core/cpt.hpp"

namespace renuca::core {
namespace {

TEST(Cpt, ColdLookupIsNonCritical) {
  CriticalityPredictorTable cpt(CptConfig{});
  EXPECT_FALSE(cpt.predict(0x1234));
  EXPECT_FALSE(cpt.hasEntry(0x1234));
}

TEST(Cpt, ColdDefaultFlippableForAblation) {
  CptConfig cfg;
  cfg.coldPredictsCritical = true;
  CriticalityPredictorTable cpt(cfg);
  EXPECT_TRUE(cpt.predict(0x1234));
}

TEST(Cpt, ThresholdRuleExactBoundary) {
  CptConfig cfg;
  cfg.thresholdPct = 50.0;
  CriticalityPredictorTable cpt(cfg);
  // 1 of 2 stalled = exactly 50 %: critical (>= threshold).
  cpt.train(0xA, true);
  cpt.train(0xA, false);
  EXPECT_TRUE(cpt.predict(0xA));
  // 1 of 3 < 50 %: non-critical.
  cpt.train(0xA, false);
  EXPECT_FALSE(cpt.predict(0xA));
}

TEST(Cpt, LowThresholdCatchesRareStalls) {
  CptConfig cfg;
  cfg.thresholdPct = 3.0;  // the paper's choice
  CriticalityPredictorTable cpt(cfg);
  cpt.train(0xB, true);
  for (int i = 0; i < 30; ++i) cpt.train(0xB, false);
  // 1/31 = 3.2 % >= 3 %: still critical.
  EXPECT_TRUE(cpt.predict(0xB));
  for (int i = 0; i < 10; ++i) cpt.train(0xB, false);
  // 1/41 = 2.4 % < 3 %.
  EXPECT_FALSE(cpt.predict(0xB));
}

TEST(Cpt, HundredPercentThresholdIsStringent) {
  CptConfig cfg;
  cfg.thresholdPct = 100.0;
  CriticalityPredictorTable cpt(cfg);
  cpt.train(0xC, true);
  EXPECT_TRUE(cpt.predict(0xC));  // 1/1
  cpt.train(0xC, false);
  EXPECT_FALSE(cpt.predict(0xC));  // 1/2 < 100 %
}

TEST(Cpt, MonotoneInThreshold) {
  // For any training history, critical(x1) implies critical(x2) when
  // x2 <= x1 — the property behind the paper's threshold sweep.
  std::vector<double> thresholds = {3, 5, 10, 20, 25, 33, 50, 75, 100};
  for (int stalls : {0, 1, 3, 7, 10}) {
    std::vector<bool> verdicts;
    for (double x : thresholds) {
      CptConfig cfg;
      cfg.thresholdPct = x;
      CriticalityPredictorTable cpt(cfg);
      for (int i = 0; i < stalls; ++i) cpt.train(0xD, true);
      for (int i = 0; i < 10 - stalls; ++i) cpt.train(0xD, false);
      verdicts.push_back(cpt.predict(0xD));
    }
    // Once false at some threshold, all higher thresholds are also false.
    for (std::size_t i = 1; i < verdicts.size(); ++i) {
      if (!verdicts[i - 1]) EXPECT_FALSE(verdicts[i]);
    }
  }
}

TEST(Cpt, CountersMatchTraining) {
  CriticalityPredictorTable cpt(CptConfig{});
  cpt.train(0xE, true);
  cpt.train(0xE, false);
  cpt.train(0xE, true);
  auto c = cpt.countersFor(0xE);
  EXPECT_EQ(c.numLoadsCount, 3u);
  EXPECT_EQ(c.robBlockCount, 2u);
  EXPECT_EQ(cpt.countersFor(0xF).numLoadsCount, 0u);
}

TEST(Cpt, FifoEvictionAtCapacity) {
  CptConfig cfg;
  cfg.capacity = 4;
  CriticalityPredictorTable cpt(cfg);
  for (std::uint64_t pc = 0; pc < 4; ++pc) cpt.train(pc, false);
  EXPECT_EQ(cpt.size(), 4u);
  cpt.train(100, false);  // evicts pc 0 (oldest)
  EXPECT_EQ(cpt.size(), 4u);
  EXPECT_FALSE(cpt.hasEntry(0));
  EXPECT_TRUE(cpt.hasEntry(1));
  EXPECT_TRUE(cpt.hasEntry(100));
}

TEST(Cpt, RetrainingAfterEvictionStartsFresh) {
  CptConfig cfg;
  cfg.capacity = 2;
  cfg.thresholdPct = 50.0;
  CriticalityPredictorTable cpt(cfg);
  for (int i = 0; i < 10; ++i) cpt.train(0x1, true);  // strongly critical
  cpt.train(0x2, false);
  cpt.train(0x3, false);  // evicts 0x1
  EXPECT_FALSE(cpt.hasEntry(0x1));
  cpt.train(0x1, false);  // re-inserted cold: 0/1
  EXPECT_FALSE(cpt.predict(0x1));
}

TEST(Cpt, PerPcIndependence) {
  CriticalityPredictorTable cpt(CptConfig{});
  for (int i = 0; i < 100; ++i) cpt.train(0xAA, true);
  for (int i = 0; i < 100; ++i) cpt.train(0xBB, false);
  EXPECT_TRUE(cpt.predict(0xAA));
  EXPECT_FALSE(cpt.predict(0xBB));
}

TEST(Cpt, RejectsBadConfig) {
  CptConfig bad;
  bad.thresholdPct = 0.0;
  EXPECT_DEATH(CriticalityPredictorTable{bad}, "threshold");
  CptConfig bad2;
  bad2.capacity = 0;
  EXPECT_DEATH(CriticalityPredictorTable{bad2}, "capacity");
}

// Parameterized: with stall probability p and threshold x%, a PC trained
// on many samples is predicted critical iff p >= x (law of large numbers).
class CptStatTest : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CptStatTest, ConvergesToExpectedVerdict) {
  auto [stallProb, thresholdPct] = GetParam();
  CptConfig cfg;
  cfg.thresholdPct = thresholdPct;
  CriticalityPredictorTable cpt(cfg);
  // Deterministic training stream with the exact ratio.
  int stalls = static_cast<int>(stallProb * 1000);
  for (int i = 0; i < 1000; ++i) cpt.train(0x77, i < stalls);
  bool expectCritical = stallProb * 100.0 >= thresholdPct;
  EXPECT_EQ(cpt.predict(0x77), expectCritical)
      << "p=" << stallProb << " x=" << thresholdPct;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CptStatTest,
    ::testing::Combine(::testing::Values(0.01, 0.05, 0.2, 0.6),
                       ::testing::Values(3.0, 10.0, 33.0, 75.0)));

}  // namespace
}  // namespace renuca::core
