// Event-calendar equivalence proof: the wake-list timed loop (the default)
// must produce *identical* results to the brute-force reference loop that
// ticks every core at every visited cycle (SystemConfig::bruteForceTick).
//
// The refactor's correctness argument (sim/system.hpp) is that a sleeping
// core's tick would be a no-op except for the per-cycle ROB-head stall
// counter, which the wake list reconstructs arithmetically.  These tests
// check that claim exhaustively: every RunResult field — cycle counts,
// per-core IPC, cache traffic, per-bank wear, criticality statistics, and
// the full per-epoch metric time series (which includes the compensated
// rob_stall_cycles counter) — is compared across many seeds, single- and
// multi-core, with and without scheduled fault injection.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/system.hpp"
#include "workload/mixes.hpp"

namespace renuca::sim {
namespace {

workload::WorkloadMix singleAppMix(const std::string& app) {
  workload::WorkloadMix mix;
  mix.name = app;
  mix.appNames = {app};
  return mix;
}

/// Single-core rig, small budgets, epoch sampling on so the time series
/// (and its settle-before-snapshot path) is part of the comparison.
SystemConfig smallSingleCore() {
  SystemConfig cfg = singleCore();
  cfg.policy = core::PolicyKind::ReNuca;
  cfg.clusterSize = 1;
  cfg.instrPerCore = 3000;
  cfg.warmupInstrPerCore = 800;
  cfg.prewarmInstrPerCore = 30000;
  cfg.placementRefreshInstrPerCore = 10000;
  cfg.epochInstrs = 1000;
  return cfg;
}

/// Full 16-core mesh with tiny budgets: cores genuinely sleep at different
/// cycles here, so the wake list actually skips ticks (the single-core rig
/// exercises mostly the no-skip path).
SystemConfig smallMultiCore() {
  SystemConfig cfg = defaultConfig();
  cfg.policy = core::PolicyKind::ReNuca;
  cfg.instrPerCore = 1500;
  cfg.warmupInstrPerCore = 500;
  cfg.prewarmInstrPerCore = 4000;
  cfg.placementRefreshInstrPerCore = 2000;
  cfg.epochInstrs = 500;
  return cfg;
}

void expectSameSeries(const telemetry::EpochSeries& a,
                      const telemetry::EpochSeries& b) {
  EXPECT_EQ(a.names, b.names);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instrs, b.instrs);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t e = 0; e < a.rows.size(); ++e) {
    EXPECT_EQ(a.rows[e], b.rows[e]) << "epoch " << e;
  }
}

void expectSameResult(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.measuredCycles, b.measuredCycles);
  EXPECT_EQ(a.hitMaxCycles, b.hitMaxCycles);
  EXPECT_EQ(a.coreIpc, b.coreIpc);
  EXPECT_EQ(a.coreCommitted, b.coreCommitted);
  EXPECT_EQ(a.systemIpc, b.systemIpc);
  EXPECT_EQ(a.wpki, b.wpki);
  EXPECT_EQ(a.mpki, b.mpki);
  EXPECT_EQ(a.llcHitRate, b.llcHitRate);
  EXPECT_EQ(a.bankWrites, b.bankWrites);
  EXPECT_EQ(a.bankMaxFrameWrites, b.bankMaxFrameWrites);
  EXPECT_EQ(a.bankLifetimeYears, b.bankLifetimeYears);
  EXPECT_EQ(a.bankLifetimeYearsHotFrame, b.bankLifetimeYearsHotFrame);
  EXPECT_EQ(a.bankDeadFrames, b.bankDeadFrames);
  EXPECT_EQ(a.liveCapacityFrac, b.liveCapacityFrac);
  EXPECT_EQ(a.bankDegradedLifetimeYears, b.bankDegradedLifetimeYears);
  EXPECT_EQ(a.degradedCapacityLifetimeYears, b.degradedCapacityLifetimeYears);
  ASSERT_EQ(a.faultEvents.size(), b.faultEvents.size());
  for (std::size_t i = 0; i < a.faultEvents.size(); ++i) {
    EXPECT_EQ(a.faultEvents[i].cycle, b.faultEvents[i].cycle);
    EXPECT_EQ(a.faultEvents[i].bank, b.faultEvents[i].bank);
  }
  EXPECT_EQ(a.nonCriticalLoadFrac, b.nonCriticalLoadFrac);
  EXPECT_EQ(a.cptAccuracy, b.cptAccuracy);
  EXPECT_EQ(a.cptCriticalRecall, b.cptCriticalRecall);
  EXPECT_EQ(a.nonCriticalFillFrac, b.nonCriticalFillFrac);
  EXPECT_EQ(a.nonCriticalWriteFrac, b.nonCriticalWriteFrac);
  EXPECT_EQ(a.avgNocLatencyCycles, b.avgNocLatencyCycles);
  EXPECT_EQ(a.dramRowHitRate, b.dramRowHitRate);
  expectSameSeries(a.epochs, b.epochs);
}

/// Runs cfg twice — brute-force reference vs wake list — and compares the
/// results plus the raw per-core stall counters (the one statistic the
/// wake list reconstructs arithmetically rather than observes).
void expectLoopsEquivalent(SystemConfig cfg, const workload::WorkloadMix& mix) {
  SystemConfig ref = cfg;
  ref.bruteForceTick = true;
  cfg.bruteForceTick = false;

  System sysRef(ref, mix);
  RunResult rRef = sysRef.run();
  System sysCal(cfg, mix);
  RunResult rCal = sysCal.run();

  expectSameResult(rRef, rCal);
  for (CoreId c = 0; c < cfg.numCores; ++c) {
    const cpu::CoreStats& sr = sysRef.core(c).stats();
    const cpu::CoreStats& sc = sysCal.core(c).stats();
    EXPECT_EQ(sr.committed, sc.committed) << "core " << c;
    EXPECT_EQ(sr.robHeadStallCycles, sc.robHeadStallCycles) << "core " << c;
    EXPECT_EQ(sr.loadsStalledHead, sc.loadsStalledHead) << "core " << c;
    EXPECT_EQ(sr.cptPredictions, sc.cptPredictions) << "core " << c;
    EXPECT_EQ(sr.cptCorrect, sc.cptCorrect) << "core " << c;
    EXPECT_EQ(sr.criticalLoadsCaught, sc.criticalLoadsCaught) << "core " << c;
    EXPECT_EQ(sr.doneCycle, sc.doneCycle) << "core " << c;
  }
}

TEST(CalendarEquivalence, SingleCoreManySeeds) {
  // Memory-bound (mcf) and compute-bound (namd) single-app runs: the first
  // sleeps on LLC misses constantly, the second almost never.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SystemConfig cfg = smallSingleCore();
    cfg.seed = seed;
    expectLoopsEquivalent(cfg, singleAppMix(seed % 2 ? "mcf" : "namd"));
  }
}

TEST(CalendarEquivalence, MultiCoreManySeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SystemConfig cfg = smallMultiCore();
    cfg.seed = seed;
    expectLoopsEquivalent(cfg, workload::standardMixes()[seed %
                                   workload::standardMixes().size()]);
  }
}

TEST(CalendarEquivalence, PolicyVariants) {
  // The loop interacts with every policy through the same MemorySystem
  // interface, but S-NUCA/Private skip the placement-refresh phase.
  for (core::PolicyKind p : {core::PolicyKind::SNuca, core::PolicyKind::Private,
                             core::PolicyKind::RNuca}) {
    SystemConfig cfg = smallSingleCore();
    cfg.policy = p;
    cfg.seed = 11;
    expectLoopsEquivalent(cfg, singleAppMix("lbm"));
  }
}

TEST(CalendarEquivalence, ScheduledAtCycleFaults) {
  // AtCycle fault injection happens between loop steps at a
  // window-relative cycle; the visited-cycle sequence (and so the
  // injection point) must not shift under the wake list.
  for (std::uint64_t seed : {3ull, 17ull}) {
    SystemConfig cfg = smallSingleCore();
    cfg.seed = seed;
    cfg.fault.enabled = true;
    cfg.fault.seed = 99;
    rram::ScheduledFault sf;
    sf.trigger = rram::ScheduledFault::Trigger::AtCycle;
    sf.bank = 0;
    sf.set = 3;
    sf.way = 1;
    sf.value = 2000;  // lands mid-measurement-window
    cfg.fault.schedule.push_back(sf);
    rram::ScheduledFault sf2 = sf;
    sf2.trigger = rram::ScheduledFault::Trigger::Immediate;
    sf2.set = 5;
    cfg.fault.schedule.push_back(sf2);
    expectLoopsEquivalent(cfg, singleAppMix("mcf"));
  }
}

TEST(CalendarEquivalence, BruteForceOverrideKeyParses) {
  SystemConfig cfg;
  cfg.applyOverrides(KvConfig::fromString("brute_force_tick=1\n"));
  EXPECT_TRUE(cfg.bruteForceTick);
}

}  // namespace
}  // namespace renuca::sim
