// Telemetry subsystem tests: JSON writer/parser roundtrip, metrics
// registry semantics, Chrome trace_event schema validation (both a
// hand-built trace and one emitted by a real simulation), epoch series
// from a real run, and run-report structure.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/stats.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"

namespace renuca {
namespace {

using telemetry::JsonValue;
using telemetry::JsonWriter;
using telemetry::parseJson;

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

std::string tmpPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

// --- JSON ------------------------------------------------------------------

TEST(Json, WriterProducesParseableDocument) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginObject();
  w.kv("name", "re\"nuca\n\t");
  w.kv("count", std::uint64_t{18446744073709551615ull});
  w.kv("signed", std::int64_t{-42});
  w.kv("pi", 3.25);
  w.kv("flag", true);
  w.key("null");
  w.nullValue();
  w.kvArray("xs", std::vector<double>{1.0, 2.5, -3.0});
  w.key("nested");
  w.beginObject();
  w.kv("inner", "v");
  w.endObject();
  w.endObject();
  EXPECT_EQ(w.depth(), 0u);

  std::string err;
  auto doc = parseJson(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->find("name")->str, "re\"nuca\n\t");
  EXPECT_DOUBLE_EQ(doc->find("signed")->number, -42.0);
  EXPECT_DOUBLE_EQ(doc->find("pi")->number, 3.25);
  EXPECT_TRUE(doc->find("flag")->boolean);
  EXPECT_TRUE(doc->find("null")->isNull());
  ASSERT_EQ(doc->find("xs")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(doc->find("xs")->array[1].number, 2.5);
  EXPECT_EQ(doc->find("nested")->find("inner")->str, "v");
}

TEST(Json, ParserRejectsMalformed) {
  EXPECT_FALSE(parseJson("{").has_value());
  EXPECT_FALSE(parseJson("{\"a\":1,}").has_value());
  EXPECT_FALSE(parseJson("[1 2]").has_value());
  EXPECT_FALSE(parseJson("\"unterminated").has_value());
  EXPECT_FALSE(parseJson("{} trailing").has_value());
  std::string err;
  EXPECT_FALSE(parseJson("{\"a\":tru}", &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(Json, RoundTripsEscapes) {
  EXPECT_EQ(telemetry::jsonEscape("a\"b\\c\x01"), "a\\\"b\\\\c\\u0001");
  auto doc = parseJson("\"\\u0041\\n\"");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->str, "A\n");
}

// --- Metrics registry ------------------------------------------------------

TEST(Metrics, CountersExposuresAndGauges) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter c = reg.counter("owned");
  std::uint64_t external = 7;
  reg.expose("external", &external);
  double g = 1.5;
  reg.gauge("gauge", [&g] { return g; });
  EXPECT_EQ(reg.numMetrics(), 3u);

  c.inc();
  c.inc(3);
  EXPECT_EQ(c.value(), 4u);

  reg.snapshot(100, 1000);
  external = 9;
  g = 2.5;
  reg.snapshot(200, 2000);

  const telemetry::EpochSeries& s = reg.series();
  ASSERT_EQ(s.numEpochs(), 2u);
  EXPECT_EQ(s.cycles[1], 200u);
  EXPECT_EQ(s.instrs[1], 2000u);
  EXPECT_EQ(s.column("owned").back(), 4.0);
  EXPECT_EQ(s.column("external").front(), 7.0);
  EXPECT_EQ(s.column("external").back(), 9.0);
  EXPECT_EQ(s.column("gauge").back(), 2.5);
  EXPECT_TRUE(s.column("absent").empty());
  EXPECT_EQ(s.indexOf("gauge"), 2u);

  reg.clearSeries();
  EXPECT_TRUE(reg.series().empty());
  EXPECT_EQ(reg.series().names.size(), 3u);  // names survive a clear
}

TEST(Metrics, DetachedCounterIsSafe) {
  telemetry::Counter c;
  c.inc();
  EXPECT_EQ(c.value(), 0u);
}

// --- Trace writer ----------------------------------------------------------

/// Asserts `doc` is a valid Chrome trace_event JSON Object Format document:
/// top-level traceEvents array where every event has name/cat/ph/pid/tid/ts,
/// "X" events carry dur, and "i" events carry the scope key.
void validateChromeTrace(const JsonValue& doc) {
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());
  for (const JsonValue& e : events->array) {
    ASSERT_TRUE(e.isObject());
    const JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->isString());
    ASSERT_EQ(ph->str.size(), 1u);
    for (const char* k : {"name", "ph", "pid", "tid", "ts"}) {
      ASSERT_NE(e.find(k), nullptr) << "event missing key " << k;
    }
    ASSERT_TRUE(e.find("ts")->isNumber());
    if (ph->str == "X") {
      ASSERT_NE(e.find("dur"), nullptr);
      ASSERT_GE(e.find("dur")->number, 0.0);
    }
    if (ph->str == "i") {
      ASSERT_NE(e.find("s"), nullptr);
    }
    if (ph->str != "M") {
      ASSERT_NE(e.find("cat"), nullptr);
    }
  }
}

TEST(Trace, EmitsValidChromeTraceDocument) {
  std::string path = tmpPath("unit.trace.json");
  {
    telemetry::TraceWriter tw(path, 1);
    ASSERT_TRUE(tw.ok());
    tw.nameProcess(1, "cores");
    tw.nameThread(1, 0, "core0");
    tw.span("load", "mem", 1, 0, 100, 180, {{"vaddr", 0x1000}, {"critical", 1}});
    tw.span("l1d", "mem", 1, 0, 100, 102);
    tw.instant("llc_evict", "llc", 2, 3, 150, {{"block", 77}});
    tw.counterEvent("bank_writes", 2, 160, "b0", 42.0);
    tw.close();
    EXPECT_EQ(tw.eventsWritten(), 6u);
  }
  std::string err;
  auto doc = parseJson(slurp(path), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  validateChromeTrace(*doc);
  EXPECT_EQ(doc->find("displayTimeUnit")->str, "ns");
  std::remove(path.c_str());
}

TEST(Trace, SamplingGateTraces1InN) {
  std::string path = tmpPath("sampling.trace.json");
  telemetry::TraceWriter tw(path, 4);
  int sampled = 0;
  for (int i = 0; i < 16; ++i) sampled += tw.sampleNext() ? 1 : 0;
  EXPECT_EQ(sampled, 4);
  tw.close();
  std::remove(path.c_str());
}

TEST(Trace, UnwritablePathIsNotOk) {
  telemetry::TraceWriter tw("/nonexistent-dir-xyz/trace.json", 1);
  EXPECT_FALSE(tw.ok());
}

// --- End-to-end: real simulation runs --------------------------------------

sim::SystemConfig fastConfig() {
  sim::SystemConfig cfg = sim::defaultConfig();
  cfg.policy = core::PolicyKind::ReNuca;
  cfg.instrPerCore = 6000;
  cfg.warmupInstrPerCore = 1500;
  cfg.prewarmInstrPerCore = 150000;
  cfg.placementRefreshInstrPerCore = 50000;
  return cfg;
}

TEST(Telemetry, RunProducesEpochSeries) {
  sim::SystemConfig cfg = fastConfig();
  cfg.epochInstrs = 1000;
  sim::RunResult r = sim::runWorkload(cfg, workload::standardMixes()[0]);

  const telemetry::EpochSeries& ep = r.epochs;
  // 6000 instr / 1000 per epoch = 6 boundaries + the terminal snapshot;
  // boundary and terminal can coincide, so >= 6.
  ASSERT_GE(ep.numEpochs(), 6u);
  ASSERT_EQ(ep.cycles.size(), ep.numEpochs());
  ASSERT_EQ(ep.instrs.size(), ep.numEpochs());

  // Per-bank write columns exist and are cumulative (non-decreasing),
  // ending at the RunResult's bank totals.
  for (std::uint32_t b = 0; b < cfg.l3.banks; ++b) {
    std::vector<double> col = ep.column("l3.b" + std::to_string(b) + ".writes");
    ASSERT_EQ(col.size(), ep.numEpochs());
    for (std::size_t i = 1; i < col.size(); ++i) EXPECT_GE(col[i], col[i - 1]);
    EXPECT_DOUBLE_EQ(col.back(), static_cast<double>(r.bankWrites[b]));
  }

  // Per-core progress reaches the budget; cycles strictly increase.
  std::vector<double> committed = ep.column("core0.committed");
  ASSERT_FALSE(committed.empty());
  EXPECT_GE(committed.back(), 6000.0);
  for (std::size_t i = 1; i < ep.cycles.size(); ++i) {
    EXPECT_GT(ep.cycles[i], ep.cycles[i - 1]);
  }

  // Substrate metrics are present.
  EXPECT_FALSE(ep.column("memsys.llc_fills").empty());
  EXPECT_FALSE(ep.column("dram.row_hit_rate").empty());
  EXPECT_FALSE(ep.column("core0.mshr_inflight").empty());
}

TEST(Telemetry, EpochSamplingOffByDefault) {
  sim::RunResult r = sim::runWorkload(fastConfig(), workload::standardMixes()[0]);
  EXPECT_TRUE(r.epochs.empty());
}

TEST(Telemetry, RunEmitsValidTrace) {
  std::string path = tmpPath("run.trace.json");
  sim::SystemConfig cfg = fastConfig();
  cfg.traceJsonPath = path;
  cfg.traceSampleEvery = 16;
  sim::runWorkload(cfg, workload::standardMixes()[0]);

  std::string err;
  auto doc = parseJson(slurp(path), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  validateChromeTrace(*doc);

  // The trace contains hierarchy-walk spans and nested stage spans.
  const JsonValue* events = doc->find("traceEvents");
  int walks = 0, stages = 0;
  for (const JsonValue& e : events->array) {
    const std::string& n = e.find("name")->str;
    if (n == "load" || n == "store") ++walks;
    if (n == "l1d" || n == "l2" || n == "l3" || n == "dram") ++stages;
  }
  EXPECT_GT(walks, 0);
  EXPECT_GT(stages, 0);
  std::remove(path.c_str());
}

TEST(Telemetry, RunReportIsValidJson) {
  std::string path = tmpPath("report.json");
  sim::SystemConfig cfg = fastConfig();
  cfg.epochInstrs = 2000;
  sim::RunResult r = sim::runWorkload(cfg, workload::standardMixes()[0]);
  ASSERT_TRUE(sim::writeRunReport(path, "unit_test", cfg, {{"WL1/ReNuca", r}}, 1.25));

  std::string err;
  auto doc = parseJson(slurp(path), &err);
  ASSERT_TRUE(doc.has_value()) << err;

  EXPECT_EQ(doc->find("schema")->str, "renuca-run-report-v4");
  EXPECT_EQ(doc->find("bench")->str, "unit_test");
  EXPECT_GT(doc->find("generated_unix")->number, 0.0);
  EXPECT_FALSE(doc->find("host")->str.empty());
  EXPECT_DOUBLE_EQ(doc->find("wall_seconds")->number, 1.25);
  ASSERT_NE(doc->find("config"), nullptr);
  EXPECT_EQ(doc->find("config")->find("cores")->number, 16.0);

  const JsonValue* runs = doc->find("runs");
  ASSERT_TRUE(runs->isArray());
  ASSERT_EQ(runs->array.size(), 1u);
  const JsonValue& run = runs->array[0];
  EXPECT_EQ(run.find("label")->str, "WL1/ReNuca");
  EXPECT_EQ(run.find("core_ipc")->array.size(), 16u);
  EXPECT_EQ(run.find("bank_writes")->array.size(), 16u);
  EXPECT_DOUBLE_EQ(run.find("system_ipc")->number, r.systemIpc);

  const JsonValue* epochs = run.find("epochs");
  ASSERT_NE(epochs, nullptr);
  EXPECT_GE(epochs->find("cycles")->array.size(), 3u);
  const JsonValue* lifeSeries = run.find("bank_lifetime_series");
  ASSERT_NE(lifeSeries, nullptr);
  EXPECT_EQ(lifeSeries->object.size(), 16u);
  std::remove(path.c_str());
}

TEST(Telemetry, ReportToUnwritablePathFailsGracefully) {
  sim::SystemConfig cfg = fastConfig();
  EXPECT_FALSE(
      sim::writeRunReport("/nonexistent-dir-xyz/r.json", "x", cfg, {}, 0.0));
}

// --- Self-profiler ---------------------------------------------------------

/// Busy-spins long enough for steady_clock to register progress.
void spinNs(std::uint64_t ns) {
  const std::uint64_t start = telemetry::Profiler::nowNs();
  while (telemetry::Profiler::nowNs() - start < ns) {
  }
}

TEST(Profiler, SelfTimeExcludesNestedChildren) {
  telemetry::Profiler prof;
  telemetry::ProfSection outer = prof.section("outer");
  telemetry::ProfSection inner = prof.section("inner");

  const std::uint64_t t0 = telemetry::Profiler::nowNs();
  {
    telemetry::ScopedProf o(outer);
    spinNs(200000);
    {
      telemetry::ScopedProf i(inner);
      spinNs(400000);
    }
    spinNs(200000);
  }
  const std::uint64_t total = telemetry::Profiler::nowNs() - t0;

  ASSERT_EQ(prof.numSections(), 2u);
  const std::uint64_t outerSelf = prof.sectionSelfNs(0);
  const std::uint64_t innerSelf = prof.sectionSelfNs(1);
  EXPECT_GT(outerSelf, 0u);
  EXPECT_GE(innerSelf, 400000u);
  // Disjoint attribution: the sections partition the wall time.
  EXPECT_LE(outerSelf + innerSelf, total);
  // The parent's self time excludes the child's whole duration.
  EXPECT_LT(outerSelf, total - innerSelf + 100000);
  EXPECT_EQ(prof.hookCount(), 2u);
}

TEST(Profiler, NestedSameSectionStaysDisjoint) {
  // llc-within-llc (writebackToLlc fires inside the walk's LLC region):
  // self-time bookkeeping must not double-count the inner scope.
  telemetry::Profiler prof;
  telemetry::ProfSection llc = prof.section("llc");
  const std::uint64_t t0 = telemetry::Profiler::nowNs();
  {
    telemetry::ScopedProf a(llc);
    {
      telemetry::ScopedProf b(llc);
      spinNs(300000);
    }
  }
  const std::uint64_t total = telemetry::Profiler::nowNs() - t0;
  EXPECT_LE(prof.sectionSelfNs(0), total);
  EXPECT_EQ(prof.sectionCount(0), 2u);
}

TEST(Profiler, SectionReFindsByName) {
  telemetry::Profiler prof;
  prof.section("a");
  prof.section("b");
  prof.section("a");
  EXPECT_EQ(prof.numSections(), 2u);
}

TEST(Profiler, DetachedScopeIsNoop) {
  telemetry::ProfSection detached;
  EXPECT_FALSE(detached.attached());
  for (int i = 0; i < 1000; ++i) {
    telemetry::ScopedProf sp(detached);
  }
  // Nothing to assert beyond "does not crash / touches no profiler".
}

TEST(Profiler, ReportSharesAndOverheadEstimate) {
  telemetry::Profiler prof;
  telemetry::ProfSection s = prof.section("work");
  {
    telemetry::ScopedProf sp(s);
    spinNs(500000);
  }
  telemetry::ProfileReport r = prof.report(/*totalSeconds=*/1.0);
  ASSERT_TRUE(r.enabled);
  ASSERT_EQ(r.sections.size(), 1u);
  EXPECT_EQ(r.sections[0].name, "work");
  EXPECT_GT(r.sections[0].seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.sections[0].share, r.sections[0].seconds / 1.0);
  EXPECT_GT(r.overheadEstSeconds, 0.0);
  EXPECT_LE(r.shareSum(), 1.0);
}

TEST(Profiler, ProfiledRunReportsDisjointSections) {
  sim::SystemConfig cfg = fastConfig();
  cfg.profileEnabled = true;
  sim::RunResult r = sim::runWorkload(cfg, workload::standardMixes()[0]);
  ASSERT_TRUE(r.profile.enabled);
  EXPECT_GT(r.profile.totalSeconds, 0.0);
  EXPECT_FALSE(r.profile.sections.empty());
  // Self-time sections are disjoint, so shares can never sum past 1.
  EXPECT_LE(r.profile.shareSum(), 1.0 + 1e-9);
  // The memory hierarchy did real, attributed work.
  double walkSeconds = 0.0;
  for (const auto& s : r.profile.sections) {
    if (s.name == "tlb" || s.name == "l1" || s.name == "llc") {
      EXPECT_GT(s.count, 0u) << s.name;
      walkSeconds += s.seconds;
    }
  }
  EXPECT_GT(walkSeconds, 0.0);
}

TEST(Profiler, ProfileOffByDefaultAndUnderTwoPercentOverhead) {
  // profile=0 run: no profile section in the result...
  sim::SystemConfig cfg = fastConfig();
  const std::uint64_t t0 = telemetry::Profiler::nowNs();
  sim::RunResult off = sim::runWorkload(cfg, workload::standardMixes()[0]);
  const double offWall =
      static_cast<double>(telemetry::Profiler::nowNs() - t0) * 1e-9;
  EXPECT_FALSE(off.profile.enabled);
  EXPECT_TRUE(off.profile.sections.empty());

  // ...and the compiled-in hooks cost under 2% of its wall time.  A
  // profiled run counts the hook pairs the same workload takes; each pair
  // costs one measured detached enter/exit when profiling is off.
  cfg.profileEnabled = true;
  sim::RunResult on = sim::runWorkload(cfg, workload::standardMixes()[0]);
  std::uint64_t hookPairs = 0;
  for (const auto& s : on.profile.sections) hookPairs += s.count;
  ASSERT_GT(hookPairs, 0u);
  const double costNs = telemetry::Profiler::measureDetachedScopeCostNs();
  const double overheadSec = costNs * static_cast<double>(hookPairs) * 1e-9;
  EXPECT_LT(overheadSec, 0.02 * offWall)
      << hookPairs << " hook pairs at " << costNs << " ns against "
      << offWall << " s wall";
}

// --- Prometheus exposition -------------------------------------------------

TEST(Prometheus, SanitizesMetricNames) {
  EXPECT_EQ(telemetry::prometheusName("server.queue depth"),
            "server_queue_depth");
  EXPECT_EQ(telemetry::prometheusName("l3.b0/writes"), "l3_b0_writes");
  EXPECT_EQ(telemetry::prometheusName("0abc"), "_0abc");
  EXPECT_EQ(telemetry::prometheusName("ok_name:x"), "ok_name:x");
}

TEST(Prometheus, RendersCountersGaugesAndHistograms) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter c = reg.counter("server.accepted");
  c.inc(4);
  double g = 2.5;
  reg.gauge("depth", [&g] { return g; });

  Histogram h(10.0, 3);
  h.add(5.0);   // bucket 0
  h.add(15.0);  // bucket 1
  h.add(999.0); // clamped into the last bucket

  const std::string text =
      telemetry::renderPrometheus(reg, {{"latency_ms", &h}}, "renucad_");
  EXPECT_NE(text.find("# TYPE renucad_server_accepted counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("renucad_server_accepted 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE renucad_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("renucad_depth 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE renucad_latency_ms histogram\n"),
            std::string::npos);
  // Buckets are cumulative; the clamped tail lives in +Inf.
  EXPECT_NE(text.find("renucad_latency_ms_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("renucad_latency_ms_bucket{le=\"20\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("renucad_latency_ms_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("renucad_latency_ms_sum 1019\n"), std::string::npos);
  EXPECT_NE(text.find("renucad_latency_ms_count 3\n"), std::string::npos);
}

TEST(Prometheus, EmptyHistogramStillWellFormed) {
  telemetry::MetricsRegistry reg;
  Histogram h(1.0, 0);
  const std::string text = telemetry::renderPrometheus(reg, {{"x", &h}}, "p_");
  EXPECT_NE(text.find("p_x_bucket{le=\"+Inf\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("p_x_count 0\n"), std::string::npos);
}

TEST(Telemetry, ProfiledRunReportCarriesProfileSection) {
  std::string path = tmpPath("profiled.report.json");
  sim::SystemConfig cfg = fastConfig();
  cfg.profileEnabled = true;
  sim::RunResult r = sim::runWorkload(cfg, workload::standardMixes()[0]);
  ASSERT_TRUE(sim::writeRunReport(path, "unit_test", cfg, {{"WL1", r}}, 1.0));

  std::string err;
  auto doc = parseJson(slurp(path), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const JsonValue* profile = doc->find("runs")->array[0].find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_GT(profile->find("total_seconds")->number, 0.0);
  EXPECT_LE(profile->find("share_sum")->number, 1.0 + 1e-9);
  const JsonValue* sections = profile->find("sections");
  ASSERT_TRUE(sections->isArray());
  EXPECT_FALSE(sections->array.empty());
  for (const JsonValue& s : sections->array) {
    EXPECT_TRUE(s.find("name")->isString());
    EXPECT_TRUE(s.find("seconds")->isNumber());
    EXPECT_TRUE(s.find("share")->isNumber());
    EXPECT_TRUE(s.find("count")->isNumber());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace renuca
