// Unit tests for the common substrate: RNG determinism and distribution,
// statistics, table formatting, config parsing, bit helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bitops.hpp"
#include "common/kvconfig.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace renuca {
namespace {

TEST(Types, LineAndPageHelpers) {
  EXPECT_EQ(lineOf(0), 0u);
  EXPECT_EQ(lineOf(63), 0u);
  EXPECT_EQ(lineOf(64), 1u);
  EXPECT_EQ(lineBase(lineOf(0x12345)), 0x12340ull & ~0x3Full);
  EXPECT_EQ(pageOf(4095), 0u);
  EXPECT_EQ(pageOf(4096), 1u);
  EXPECT_EQ(lineIndexInPage(0), 0u);
  EXPECT_EQ(lineIndexInPage(64), 1u);
  EXPECT_EQ(lineIndexInPage(4095), 63u);
  EXPECT_EQ(lineIndexInPage(4096), 0u);
  EXPECT_EQ(lineOffset(0x7F), 0x3Fu);
}

TEST(Bitops, Basics) {
  EXPECT_TRUE(isPow2(1));
  EXPECT_TRUE(isPow2(1024));
  EXPECT_FALSE(isPow2(0));
  EXPECT_FALSE(isPow2(6));
  EXPECT_EQ(log2Floor(1), 0u);
  EXPECT_EQ(log2Floor(1024), 10u);
  EXPECT_EQ(log2Floor(1023), 9u);
  EXPECT_EQ(bits(0xFF00, 8, 8), 0xFFull);
  EXPECT_NE(mix64(1), mix64(2));
}

TEST(Rng, DeterministicAcrossInstances) {
  Pcg32 a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, NextBelowInRange) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.nextBelow(17), 17u);
  }
  EXPECT_EQ(rng.nextBelow(1), 0u);
  EXPECT_EQ(rng.nextBelow(0), 0u);
}

TEST(Rng, RangeInclusive) {
  Pcg32 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values reachable
}

TEST(Rng, ChanceExtremes) {
  Pcg32 rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Pcg32 rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.02);
}

TEST(Rng, WeightedPickRespectsWeights) {
  Pcg32 rng(17);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weightedPick(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(counts[0]), 3.0, 0.3);
}

TEST(RunningStat, MeanMinMaxVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
}

TEST(Histogram, BucketsAndPercentiles) {
  Histogram h(10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i);  // uniform over [0,100)
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.bucketCount(0), 10u);
  EXPECT_NEAR(h.percentile(0.5), 50.0, 10.0);
  EXPECT_NEAR(h.percentile(0.9), 90.0, 10.0);
}

TEST(Histogram, ClampsOverflow) {
  Histogram h(1.0, 4);
  h.add(1000.0);
  EXPECT_EQ(h.bucketCount(3), 1u);
}

TEST(Histogram, PercentileEdgeCases) {
  Histogram empty(1.0, 4);
  EXPECT_EQ(empty.percentile(0.0), 0.0);
  EXPECT_EQ(empty.percentile(0.5), 0.0);
  EXPECT_EQ(empty.percentile(1.0), 0.0);

  Histogram h(10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(20.0 + (i % 30));  // mass in [20, 50)
  // q pinned to the occupied range: q=0 at the first non-empty bucket's
  // left edge, q=1 at the last non-empty bucket's right edge.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 20.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 50.0);
  // Out-of-range q clamps instead of reading out of bounds.
  EXPECT_DOUBLE_EQ(h.percentile(-1.0), h.percentile(0.0));
  EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));

  // Overflow mass interpolates inside the last bucket and never exceeds
  // the histogram's upper edge.
  Histogram o(1.0, 4);
  for (int i = 0; i < 10; ++i) o.add(1e9);
  EXPECT_LE(o.percentile(1.0), 4.0);
  EXPECT_GT(o.percentile(0.5), 3.0);
}

TEST(Stats, HarmonicMean) {
  EXPECT_DOUBLE_EQ(harmonicMean({2.0, 2.0}), 2.0);
  EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
  EXPECT_EQ(harmonicMean({}), 0.0);
  // A dead bank (0 lifetime) dominates: harmonic mean collapses to 0.
  EXPECT_EQ(harmonicMean({5.0, 0.0}), 0.0);
}

TEST(Stats, OtherMeans) {
  EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(geometricMean({4.0, 9.0}), 6.0);
  EXPECT_DOUBLE_EQ(minOf({3.0, 1.0, 2.0}), 1.0);
  EXPECT_EQ(minOf({}), 0.0);
}

TEST(StatSet, CountersAndToString) {
  StatSet s("bank0");
  s.inc("hits");
  s.inc("hits", 2);
  s.inc("misses");
  EXPECT_EQ(s.get("hits"), 3u);
  EXPECT_EQ(s.get("misses"), 1u);
  EXPECT_EQ(s.get("absent"), 0u);
  std::string out = s.toString();
  EXPECT_NE(out.find("bank0.hits=3"), std::string::npos);
}

TEST(StatSet, HandlesSurviveZeroButSeeFreshValues) {
  StatSet s("hot");
  std::uint64_t* hits = s.counter("hits");
  *hits += 5;
  EXPECT_EQ(s.get("hits"), 5u);

  // Later insertions must not move the handle (std::map node stability).
  for (int i = 0; i < 64; ++i) s.inc("other" + std::to_string(i));
  *hits += 1;
  EXPECT_EQ(s.get("hits"), 6u);

  // zero() keeps keys and handles; the handle observes the reset value.
  s.zero();
  EXPECT_EQ(s.get("hits"), 0u);
  *hits += 2;
  EXPECT_EQ(s.get("hits"), 2u);

  // Re-resolving after zero() yields the same slot.
  EXPECT_EQ(s.counter("hits"), hits);
}

TEST(Log, LevelParsing) {
  EXPECT_EQ(logLevelFromString("debug"), LogLevel::Debug);
  EXPECT_EQ(logLevelFromString("INFO"), LogLevel::Info);
  EXPECT_EQ(logLevelFromString("Warn"), LogLevel::Warn);
  EXPECT_EQ(logLevelFromString("error"), LogLevel::Error);
  EXPECT_EQ(logLevelFromString("2"), LogLevel::Warn);
  EXPECT_EQ(logLevelFromString("bogus"), std::nullopt);
  EXPECT_EQ(logLevelFromString(""), std::nullopt);
  EXPECT_STREQ(toString(LogLevel::Debug), "DEBUG");
  EXPECT_STREQ(toString(LogLevel::Error), "ERROR");
}

TEST(TextTable, FormatsAligned) {
  TextTable t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addSeparator();
  t.addRow({"b", "22"});
  std::string out = t.toString();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(std::uint64_t{42}), "42");
  EXPECT_EQ(TextTable::pct(0.123, 1), "12.3%");
}

TEST(KvConfig, ParsesArgs) {
  const char* argv[] = {"prog", "a=1", "pi=3.5", "flag=true", "pos", "name=hello"};
  KvConfig kv = KvConfig::fromArgs(6, argv);
  EXPECT_EQ(kv.getOr("a", std::int64_t{0}), 1);
  EXPECT_DOUBLE_EQ(kv.getOr("pi", 0.0), 3.5);
  EXPECT_TRUE(kv.getOr("flag", false));
  EXPECT_EQ(kv.getOr("name", std::string{}), "hello");
  ASSERT_EQ(kv.positional().size(), 1u);
  EXPECT_EQ(kv.positional()[0], "pos");
}

TEST(KvConfig, ParsesStringWithComments) {
  KvConfig kv = KvConfig::fromString("x = 7  # comment\n\n# full line\ny=off\n");
  EXPECT_EQ(kv.getOr("x", std::int64_t{0}), 7);
  EXPECT_FALSE(kv.getOr("y", true));
}

TEST(KvConfig, InvalidNumbersAreNullopt) {
  KvConfig kv = KvConfig::fromString("x=abc\n");
  EXPECT_FALSE(kv.getInt("x").has_value());
  EXPECT_FALSE(kv.getDouble("x").has_value());
  EXPECT_EQ(kv.getOr("x", std::int64_t{5}), 5);
}

TEST(KvConfig, RejectsNonFiniteAndOverflowingNumbers) {
  KvConfig kv = KvConfig::fromString(
      "a=inf\nb=-inf\nc=nan\nd=1e999\ne=99999999999999999999\nf=12x\ng=\n");
  EXPECT_FALSE(kv.getDouble("a").has_value());  // inf spelling
  EXPECT_FALSE(kv.getDouble("b").has_value());
  EXPECT_FALSE(kv.getDouble("c").has_value());  // nan spelling
  EXPECT_FALSE(kv.getDouble("d").has_value());  // overflow to +inf (ERANGE)
  EXPECT_FALSE(kv.getInt("e").has_value());     // ERANGE saturation
  EXPECT_FALSE(kv.getInt("f").has_value());     // trailing garbage
  EXPECT_FALSE(kv.getInt("g").has_value());     // empty value
  EXPECT_FALSE(kv.getDouble("g").has_value());
}

TEST(KeyRegistry, FlagsUnknownKeysWithSuggestion) {
  KeyRegistry reg;
  reg.intKey("instr_per_core", 1, 1 << 30).boolKey("strict");
  KvConfig kv = KvConfig::fromString("instr_per_cor=100\n");  // typo
  std::vector<ConfigError> errs = reg.validate(kv);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_EQ(errs[0].key, "instr_per_cor");
  // The near-miss is suggested by name.
  EXPECT_NE(errs[0].message.find("did you mean 'instr_per_core'"), std::string::npos);
}

TEST(KeyRegistry, EnforcesTypeAndRange) {
  KeyRegistry reg;
  reg.intKey("n", 1, 10).doubleKey("sigma", 0.0, 1.0).boolKey("flag");

  EXPECT_TRUE(reg.validate(KvConfig::fromString("n=5\nsigma=0.3\nflag=yes\n")).empty());

  // Out-of-range, unparsable, and non-finite values all surface.
  EXPECT_EQ(reg.validate(KvConfig::fromString("n=11\n")).size(), 1u);
  EXPECT_EQ(reg.validate(KvConfig::fromString("n=abc\n")).size(), 1u);
  EXPECT_EQ(reg.validate(KvConfig::fromString("sigma=-0.1\n")).size(), 1u);
  EXPECT_EQ(reg.validate(KvConfig::fromString("sigma=nan\n")).size(), 1u);
  EXPECT_EQ(reg.validate(KvConfig::fromString("flag=maybe\n")).size(), 1u);
}

}  // namespace
}  // namespace renuca
