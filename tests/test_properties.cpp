// Cross-module property tests: randomized invariants that tie the
// substrates together — reservation disjointness, generator rate
// calibration across all 22 applications, memory-system consistency under
// random traffic, and policy/TLB agreement for Re-NUCA.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/busy_calendar.hpp"
#include "common/rng.hpp"
#include "sim/memory_system.hpp"
#include "workload/app_profile.hpp"
#include "workload/generator.hpp"

namespace renuca {
namespace {

// ---------------------------------------------------------------------------
// BusyCalendar: booked intervals never overlap, regardless of the request
// pattern (including the adversarial far-future-then-near pattern).
class CalendarFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CalendarFuzz, ReservationsNeverOverlap) {
  Pcg32 rng(GetParam());
  BusyCalendar cal(/*pruneHorizon=*/1u << 30);  // keep everything, check all
  std::vector<std::pair<Cycle, Cycle>> booked;
  Cycle base = 0;
  for (int i = 0; i < 3000; ++i) {
    base += rng.nextBelow(10);
    Cycle arrive = base + rng.nextBelow(500);  // mixed near/far offsets
    Cycle dur = 1 + rng.nextBelow(8);
    Cycle start = cal.reserve(arrive, dur);
    ASSERT_GE(start, arrive);
    booked.emplace_back(start, start + dur);
  }
  std::sort(booked.begin(), booked.end());
  for (std::size_t i = 1; i < booked.size(); ++i) {
    ASSERT_LE(booked[i - 1].second, booked[i].first)
        << "overlap between [" << booked[i - 1].first << "," << booked[i - 1].second
        << ") and [" << booked[i].first << "," << booked[i].second << ")";
  }
  // Total booked time is conserved.
  Cycle total = 0;
  for (auto& [s, e] : booked) total += e - s;
  EXPECT_EQ(cal.bookedCycles(), total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalendarFuzz, ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Generator calibration: the emitted stream realizes the derived
// per-kilo-instruction rates for every Table II application.
class GeneratorRates : public ::testing::TestWithParam<workload::AppProfile> {};

TEST_P(GeneratorRates, EmittedRatesMatchDerived) {
  const workload::AppProfile& prof = GetParam();
  workload::SyntheticGenerator gen(prof, 77);
  const std::uint64_t n = 300000;
  std::uint64_t streamLoads = 0, streamStores = 0, largeLoads = 0, largeStores = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    workload::TraceRecord r = gen.next();
    bool stream = r.vaddr >= 0x40000000ull;
    bool large = r.vaddr >= 0x30000000ull && r.vaddr < 0x40000000ull;
    if (r.kind == InstrKind::Load) {
      streamLoads += stream;
      largeLoads += large;
    } else if (r.kind == InstrKind::Store) {
      streamStores += stream;
      largeStores += large;
    }
  }
  // Compare against the *realized* loop structure (sub-0.5-PKI rates round
  // to zero slots in the 1000-slot loop; raw-PKI fidelity is covered with
  // tolerance by bench_table2).
  auto s = gen.loopSummary();
  double perIter = static_cast<double>(prof.loopLen);
  double iters = n / perIter;  // approximate (RMW pairs stretch iterations)
  const workload::DerivedParams& p = prof.params;
  double expStreamStores = s.streamStores + p.rmwProb * s.streamLoads;
  EXPECT_NEAR(streamLoads / iters, s.streamLoads, s.streamLoads * 0.1 + 0.5) << prof.name;
  EXPECT_NEAR(streamStores / iters, expStreamStores, expStreamStores * 0.1 + 0.5)
      << prof.name;
  EXPECT_NEAR(largeLoads / iters, s.largeLoads, s.largeLoads * 0.1 + 0.5) << prof.name;
  EXPECT_NEAR(largeStores / iters, s.largeStores, s.largeStores * 0.1 + 0.5) << prof.name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, GeneratorRates,
                         ::testing::ValuesIn(workload::spec2006Profiles()),
                         [](const ::testing::TestParamInfo<workload::AppProfile>& info) {
                           return info.param.name;
                         });

// ---------------------------------------------------------------------------
// Memory system under random traffic: per-policy consistency invariants.
class MemSysFuzz : public ::testing::TestWithParam<core::PolicyKind> {};

TEST_P(MemSysFuzz, StaysConsistentUnderRandomTraffic) {
  sim::SystemConfig cfg = sim::defaultConfig();
  cfg.policy = GetParam();
  cfg.l3.bankBytes = 32 * 1024;  // tiny: lots of evictions
  cfg.l2.sizeBytes = 8 * 1024;
  cfg.l1d.sizeBytes = 2 * 1024;
  sim::MemorySystem ms(cfg);
  Pcg32 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 5);
  Cycle t = 0;
  for (int i = 0; i < 30000; ++i) {
    CoreId c = rng.nextBelow(16);
    Addr va = 0x100000 + static_cast<Addr>(rng.nextBelow(4096)) * kLineBytes;
    t += rng.nextBelow(30);
    if (rng.chance(0.3)) {
      ms.store(c, va, 0x400, t);
    } else {
      ms.load(c, va, 0x400, t, rng.chance(0.25));
    }
  }
  EXPECT_EQ(ms.checkInclusion(), "");
  // Counter sanity: misses never exceed accesses; every bank write counted.
  for (CoreId c = 0; c < 16; ++c) {
    const sim::CoreMemCounters& cc = ms.coreCounters(c);
    EXPECT_LE(cc.llcDemandMisses, cc.llcDemandAccesses);
  }
  std::uint64_t bankTotal = 0;
  for (BankId b = 0; b < ms.numBanks(); ++b) {
    EXPECT_EQ(ms.llcBank(b).totalWrites(),
              [&] {
                std::uint64_t s = 0;
                for (std::uint64_t w : ms.llcBank(b).frameWrites()) s += w;
                return s;
              }());
    bankTotal += ms.bankWrites(b);
  }
  EXPECT_GT(bankTotal, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, MemSysFuzz,
                         ::testing::Values(core::PolicyKind::SNuca,
                                           core::PolicyKind::RNuca,
                                           core::PolicyKind::Private,
                                           core::PolicyKind::Naive,
                                           core::PolicyKind::ReNuca),
                         [](const ::testing::TestParamInfo<core::PolicyKind>& info) {
                           return std::string(1, 'P') +
                                  std::to_string(static_cast<int>(info.param));
                         });

// ---------------------------------------------------------------------------
// Re-NUCA TLB/policy agreement: after arbitrary traffic, every resident
// LLC line tagged critical sits in an R-NUCA cluster bank of its owner,
// and the page-table MBV bit agrees with where the line actually is.
TEST(ReNucaConsistency, MbvAgreesWithResidency) {
  sim::SystemConfig cfg = sim::defaultConfig();
  cfg.policy = core::PolicyKind::ReNuca;
  cfg.l3.bankBytes = 32 * 1024;
  cfg.l2.sizeBytes = 8 * 1024;
  cfg.l1d.sizeBytes = 2 * 1024;
  sim::MemorySystem ms(cfg);
  Pcg32 rng(99);
  Cycle t = 0;
  for (int i = 0; i < 20000; ++i) {
    CoreId c = rng.nextBelow(16);
    Addr va = 0x100000 + static_cast<Addr>(rng.nextBelow(2048)) * kLineBytes;
    t += rng.nextBelow(40);
    ms.load(c, va, 0x400 + rng.nextBelow(64) * 4, t, rng.chance(0.3));
  }
  // Every resident LLC line must be locatable via its backed MBV bit.
  std::uint64_t checked = 0;
  for (BankId b = 0; b < ms.numBanks(); ++b) {
    ms.llcBank(b).forEachValidLine([&](BlockAddr block, bool) {
      Addr paddr = lineBase(block);
      auto owner = ms.pageTable().ownerOf(pageOf(paddr));
      ASSERT_TRUE(owner.has_value());
      std::uint64_t mbv = ms.pageTable().loadMbv(owner->first, owner->second);
      bool bit = (mbv >> lineIndexInPage(paddr)) & 1ull;
      BankId located = ms.policy().locate(block, owner->first, bit);
      EXPECT_EQ(located, b) << "block " << block << " resident in bank " << b
                            << " but locate() says " << located;
      ++checked;
    });
  }
  EXPECT_GT(checked, 100u);
}

// ---------------------------------------------------------------------------
// Lifetime monotonicity: strictly more writes in the same window never
// lengthen a bank's lifetime.
TEST(LifetimeProperty, MonotoneInWrites) {
  rram::EnduranceConfig cfg;
  Cycle window = 1'000'000;
  double prev = rram::bankLifetimeYears(1, window, cfg);
  for (std::uint64_t w = 2; w < 1000000; w *= 3) {
    double cur = rram::bankLifetimeYears(w, window, cfg);
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace renuca
