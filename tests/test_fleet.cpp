// Fleet tests: the coordinator, its leases, and the failure matrix —
// sharding across real in-process workers with ordered, byte-identical
// delivery; re-dispatch on worker death (EOF and heartbeat silence);
// at-most-once commit against zombie duplicates; BUSY bounces that do not
// burn attempts; fatal-vs-retryable failure classification; attempt
// exhaustion; client-disconnect cancellation; and fleet telemetry.
//
// Everything runs in-process over socketpair() ends: real workers are
// server::Server instances wired up via adoptCoordinator(), fault
// injection uses scripted "fake" workers that speak the worker half of
// the protocol by hand.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server/coordinator.hpp"
#include "server/jobspec.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "telemetry/json.hpp"

namespace renuca {
namespace {

using server::Client;
using server::ErrCode;
using server::JobState;
using server::Message;
using server::Op;

// --- Harness ---------------------------------------------------------------

/// Coordinator on a background thread; peers are adopted socketpair ends.
struct TestCoordinator {
  explicit TestCoordinator(server::CoordinatorConfig cfg)
      : coord(new server::Coordinator(cfg)) {
    thread = std::thread([this] { rc.store(coord->run()); });
  }
  ~TestCoordinator() {
    if (thread.joinable()) {
      coord->requestStop();
      thread.join();
    }
  }
  Client connect() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    coord->adoptConnection(fds[0]);
    Client c;
    c.adoptFd(fds[1]);
    return c;
  }
  int stop() {
    coord->requestStop();
    thread.join();
    return rc.load();
  }

  std::unique_ptr<server::Coordinator> coord;
  std::thread thread;
  std::atomic<int> rc{-1};
};

/// Fault-injection tests stage every failure explicitly, so the passive
/// timeouts are parked far away unless a test is specifically about them.
server::CoordinatorConfig coordConfig() {
  server::CoordinatorConfig cfg;
  cfg.leaseTimeoutMs = 60000;
  cfg.heartbeatTimeoutMs = 60000;
  return cfg;
}

/// A real renucad worker (server::Server) joined to the coordinator over
/// a socketpair — the same wiring `renucad coordinator=ADDR` produces.
struct TestWorker {
  TestWorker(TestCoordinator& tc, const std::string& name, unsigned jobs = 1) {
    server::ServerConfig cfg;
    cfg.jobs = jobs;
    cfg.workerName = name;
    cfg.heartbeatMs = 100;
    srv.reset(new server::Server(cfg));
    thread = std::thread([this] { rc.store(srv->run()); });
    int fds[2] = {-1, -1};
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    srv->adoptCoordinator(fds[0]);
    tc.coord->adoptConnection(fds[1]);
  }
  ~TestWorker() {
    if (thread.joinable()) {
      srv->requestStop();
      thread.join();
    }
  }

  std::unique_ptr<server::Server> srv;
  std::thread thread;
  std::atomic<int> rc{-1};
};

/// A scripted worker: registers like renucad, then does exactly what each
/// test tells it to — take leases and sit on them, answer BUSY, fail with
/// a chosen error code, vanish mid-lease, or report late as a zombie.
struct FakeWorker {
  FakeWorker(TestCoordinator& tc, const std::string& name,
             std::size_t capacity = 1) {
    int fds[2] = {-1, -1};
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    tc.coord->adoptConnection(fds[0]);
    c.adoptFd(fds[1]);
    Message reg;
    reg.op = Op::Register;
    reg.text = "name=" + name + "\nthreads=1\ncapacity=" +
               std::to_string(capacity) + "\n";
    EXPECT_TRUE(c.send(reg));
  }

  Message awaitLease(int timeoutMs = 10000) {
    c.setIoTimeout(timeoutMs);
    Message m;
    std::string err;
    while (c.receive(m, &err)) {
      if (m.op == Op::Lease) {
        c.setIoTimeout(0);
        return m;
      }
    }
    ADD_FAILURE() << "no lease arrived: " << err;
    c.setIoTimeout(0);
    m.op = Op::Error;
    return m;
  }

  /// True if a lease shows up within the window (used to assert it does
  /// NOT, e.g. after a fatal failure or a client cancellation).
  bool leaseArrives(int timeoutMs) {
    c.setIoTimeout(timeoutMs);
    Message m;
    bool saw = false;
    while (c.receive(m)) {
      if (m.op == Op::Lease) {
        saw = true;
        break;
      }
    }
    c.setIoTimeout(0);
    return saw;
  }

  void heartbeat() {
    Message hb;
    hb.op = Op::Heartbeat;
    hb.text = "queue_depth=0\ninflight=0\nqueue_wait_p50_ms=0\n";
    EXPECT_TRUE(c.send(hb));
  }

  void replyBusy(const Message& lease) {
    Message b;
    b.op = Op::Busy;
    b.requestId = lease.requestId;
    b.jobId = lease.jobId;
    b.errorCode = ErrCode::Busy;
    b.text = "queue full";
    EXPECT_TRUE(c.send(b));
  }

  void replyDone(const Message& lease, const std::string& report) {
    Message r;
    r.op = Op::Report;
    r.requestId = lease.requestId;
    r.jobId = lease.jobId;
    r.state = JobState::Done;
    r.text = report;
    EXPECT_TRUE(c.send(r));
  }

  void replyFailed(const Message& lease, ErrCode code,
                   const std::string& report) {
    Message r;
    r.op = Op::Report;
    r.requestId = lease.requestId;
    r.jobId = lease.jobId;
    r.state = JobState::Failed;
    r.errorCode = code;
    r.text = report;
    EXPECT_TRUE(c.send(r));
  }

  void disconnect() {
    const int fd = c.releaseFd();
    if (fd >= 0) ::close(fd);
  }

  Client c;
};

std::string quickSpec(const std::string& app, unsigned threshold) {
  return "app=" + app + "\nthreshold_pct=" + std::to_string(threshold) +
         "\nprewarm=50000\nwarmup=1000\ninstr_per_core=3000\nlabel=" + app +
         "/x" + std::to_string(threshold) + "\n";
}

std::string stripProvenance(const std::string& report) {
  const std::size_t at = report.find("\"config\"");
  EXPECT_NE(at, std::string::npos);
  return at == std::string::npos ? report : report.substr(at);
}

Message submit(Client& c, const std::string& spec, std::uint64_t requestId = 1) {
  Message req;
  req.op = Op::Submit;
  req.requestId = requestId;
  req.text = spec;
  EXPECT_TRUE(c.send(req));
  Message reply;
  std::string err;
  while (c.receive(reply, &err)) {
    if (reply.requestId == requestId &&
        (reply.op == Op::Accepted || reply.op == Op::Busy ||
         reply.op == Op::Error))
      return reply;
  }
  ADD_FAILURE() << "connection dropped before admission reply: " << err;
  return reply;
}

Message awaitReport(Client& c, std::uint64_t requestId) {
  Message m;
  std::string err;
  while (c.receive(m, &err)) {
    if (m.op == Op::Report && m.requestId == requestId) return m;
  }
  ADD_FAILURE() << "connection dropped before report: " << err;
  return m;
}

/// One counter/gauge out of the coordinator's STATS reply.
double coordStat(Client& c, const std::string& name,
                 std::uint64_t requestId = 9001) {
  Message req;
  req.op = Op::Stats;
  req.requestId = requestId;
  EXPECT_TRUE(c.send(req));
  Message reply;
  std::string err;
  while (c.receive(reply, &err)) {
    if (reply.op == Op::StatsReply && reply.requestId == requestId) break;
  }
  if (reply.op != Op::StatsReply) {
    ADD_FAILURE() << "no stats reply: " << err;
    return -1;
  }
  auto doc = telemetry::parseJson(reply.text, &err);
  if (!doc) {
    ADD_FAILURE() << err;
    return -1;
  }
  const telemetry::JsonValue* co = doc->find("coordinator");
  const telemetry::JsonValue* v = co ? co->find(name) : nullptr;
  return v && v->isNumber() ? v->number : -1;
}

/// Polls STATS until `name` reaches `want` (counters race the event that
/// produced them; commits are visible before the client's report frame
/// only most of the time).
bool awaitStatAtLeast(Client& c, const std::string& name, double want) {
  for (int i = 0; i < 100; ++i) {
    if (coordStat(c, name, 9100 + static_cast<std::uint64_t>(i)) >= want)
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

// --- Sharding and ordered delivery -----------------------------------------

TEST(Fleet, ShardsAcrossWorkersOrderedAndByteIdenticalToLocal) {
  TestCoordinator tc(coordConfig());
  TestWorker w1(tc, "w1");
  TestWorker w2(tc, "w2");
  Client cl = tc.connect();

  // Job 1 is deliberately the slowest: later jobs finish first on the
  // other worker, so in-order delivery is actually exercised.
  const std::vector<std::string> specs = {
      "app=mcf\nthreshold_pct=25\nprewarm=50000\nwarmup=1000\n"
      "instr_per_core=20000\nlabel=mcf/slow\n",
      quickSpec("lbm", 10), quickSpec("milc", 50), quickSpec("omnetpp", 25)};
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Message req;
    req.op = Op::Submit;
    req.requestId = i + 1;
    req.text = specs[i];
    ASSERT_TRUE(cl.send(req));
  }

  std::size_t accepted = 0;
  std::vector<std::string> served(specs.size());
  std::uint64_t expect = 1;
  Message m;
  while (expect <= specs.size()) {
    ASSERT_TRUE(cl.receive(m));
    if (m.op == Op::Accepted) {
      ++accepted;
      continue;
    }
    if (m.op != Op::Report) continue;
    EXPECT_EQ(m.requestId, expect) << "reports left submission order";
    EXPECT_EQ(m.state, JobState::Done) << m.text;
    served[expect - 1] = m.text;
    ++expect;
  }
  EXPECT_EQ(accepted, specs.size());

  // Both workers participated.
  EXPECT_TRUE(awaitStatAtLeast(cl, "coord/completed", 4.0));
  EXPECT_EQ(coordStat(cl, "coord/workers_live"), 2.0);

  // Identical to the same plan run locally, modulo provenance.
  sim::SweepPlan plan;
  for (const std::string& spec : specs) {
    sim::Job job;
    std::string err;
    ASSERT_TRUE(server::parseJobSpec(spec, job, err)) << err;
    plan.add(std::move(job));
  }
  const std::vector<sim::RunResult> local = sim::runPlan(plan);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::string localReport =
        sim::runReportJson("renucad", plan.jobs()[i].config,
                           {{plan.jobs()[i].label, local[i]}}, 0.0, 1);
    EXPECT_EQ(stripProvenance(served[i]), stripProvenance(localReport))
        << "job " << i + 1 << " diverged from the local run";
  }
}

// --- Worker loss -----------------------------------------------------------

TEST(Fleet, WorkerDeathRedispatchesItsLease) {
  TestCoordinator tc(coordConfig());
  FakeWorker flaky(tc, "flaky");
  Client cl = tc.connect();

  Message reply = submit(cl, quickSpec("mcf", 25));
  ASSERT_EQ(reply.op, Op::Accepted) << reply.text;
  Message lease = flaky.awaitLease();
  ASSERT_EQ(lease.op, Op::Lease);

  // The holder dies mid-lease; a healthy worker joins and the job lands
  // there instead of being lost.
  flaky.disconnect();
  TestWorker rescuer(tc, "rescuer");

  Message report = awaitReport(cl, 1);
  EXPECT_EQ(report.state, JobState::Done) << report.text;
  EXPECT_NE(report.text.find("renuca-run-report"), std::string::npos);
  EXPECT_TRUE(awaitStatAtLeast(cl, "coord/workers_lost", 1.0));
  EXPECT_TRUE(awaitStatAtLeast(cl, "coord/redispatched", 1.0));
}

TEST(Fleet, SilentWorkerIsDeclaredDeadAndItsLeaseMovesOn) {
  server::CoordinatorConfig cfg = coordConfig();
  cfg.heartbeatTimeoutMs = 400;  // Death by silence, not by EOF.
  TestCoordinator tc(cfg);
  FakeWorker mute(tc, "mute");
  Client cl = tc.connect();

  Message reply = submit(cl, quickSpec("lbm", 10));
  ASSERT_EQ(reply.op, Op::Accepted) << reply.text;
  Message lease = mute.awaitLease();
  ASSERT_EQ(lease.op, Op::Lease);

  // `mute` never heartbeats again; the rescuer heartbeats every 100 ms.
  TestWorker rescuer(tc, "rescuer");
  Message report = awaitReport(cl, 1);
  EXPECT_EQ(report.state, JobState::Done) << report.text;
  EXPECT_TRUE(awaitStatAtLeast(cl, "coord/workers_lost", 1.0));
}

TEST(Fleet, AttemptsExhaustedYieldSyntheticWorkerLostFailure) {
  server::CoordinatorConfig cfg = coordConfig();
  cfg.leaseTimeoutMs = 200;  // Unrenewed leases expire fast.
  cfg.busyBackoffMs = 50;
  cfg.maxAttempts = 2;
  TestCoordinator tc(cfg);
  FakeWorker hoarder(tc, "hoarder");
  Client cl = tc.connect();

  Message reply = submit(cl, quickSpec("mcf", 25));
  ASSERT_EQ(reply.op, Op::Accepted) << reply.text;
  // The hoarder takes every lease and never answers or heartbeats, so
  // each lease expires until the attempt budget is gone.
  ASSERT_EQ(hoarder.awaitLease().op, Op::Lease);
  ASSERT_EQ(hoarder.awaitLease().op, Op::Lease);

  Message report = awaitReport(cl, 1);
  EXPECT_EQ(report.state, JobState::Failed);
  EXPECT_EQ(report.errorCode, ErrCode::WorkerLost);
  EXPECT_NE(report.text.find("\"error_code\": \"worker_lost\""),
            std::string::npos)
      << report.text;
}

// --- At-most-once commit ---------------------------------------------------

TEST(Fleet, ZombieDuplicateReportIsDiscarded) {
  server::CoordinatorConfig cfg = coordConfig();
  cfg.leaseTimeoutMs = 300;
  cfg.busyBackoffMs = 200;
  TestCoordinator tc(cfg);
  FakeWorker zombie(tc, "zombie");
  Client cl = tc.connect();

  Message reply = submit(cl, quickSpec("milc", 10));
  ASSERT_EQ(reply.op, Op::Accepted) << reply.text;
  Message zLease = zombie.awaitLease();
  ASSERT_EQ(zLease.op, Op::Lease);

  // The zombie stalls (alive but not heartbeating — its lease expires and
  // the stall earns it a dispatch backoff) while a healthy worker joins
  // and takes the re-dispatch.
  FakeWorker good(tc, "good");
  good.heartbeat();
  Message gLease = good.awaitLease();
  ASSERT_EQ(gLease.op, Op::Lease);
  EXPECT_EQ(gLease.jobId, zLease.jobId) << "re-dispatch changed the job";
  good.replyDone(gLease, "GOOD-REPORT");

  Message report = awaitReport(cl, 1);
  EXPECT_EQ(report.state, JobState::Done);
  EXPECT_EQ(report.text, "GOOD-REPORT");

  // The zombie wakes up and reports late: discarded, counted, and the
  // client never sees a second report.
  zombie.replyDone(zLease, "ZOMBIE-REPORT");
  EXPECT_TRUE(awaitStatAtLeast(cl, "coord/duplicates_discarded", 1.0));
  cl.setIoTimeout(300);
  Message extra;
  std::string err;
  while (cl.receive(extra, &err)) {
    EXPECT_NE(extra.op, Op::Report) << "duplicate report leaked to the client";
  }
  EXPECT_NE(err.find("timeout"), std::string::npos) << err;
}

// --- Failure classification ------------------------------------------------

TEST(Fleet, BusyBounceRedispatchesWithoutBurningAttempts) {
  server::CoordinatorConfig cfg = coordConfig();
  cfg.busyBackoffMs = 50;
  cfg.maxAttempts = 2;  // Two BUSYs would exhaust this if they counted.
  TestCoordinator tc(cfg);
  FakeWorker w(tc, "saturated");
  Client cl = tc.connect();

  Message reply = submit(cl, quickSpec("mcf", 50));
  ASSERT_EQ(reply.op, Op::Accepted) << reply.text;
  Message l1 = w.awaitLease();
  w.replyBusy(l1);
  Message l2 = w.awaitLease();
  w.replyBusy(l2);
  Message l3 = w.awaitLease();
  w.replyDone(l3, "FINALLY");

  Message report = awaitReport(cl, 1);
  EXPECT_EQ(report.state, JobState::Done);
  EXPECT_EQ(report.text, "FINALLY");
}

TEST(Fleet, RetryableIoFailureIsRedispatched) {
  TestCoordinator tc(coordConfig());
  FakeWorker w(tc, "flappy");
  Client cl = tc.connect();

  Message reply = submit(cl, quickSpec("lbm", 25));
  ASSERT_EQ(reply.op, Op::Accepted) << reply.text;
  Message l1 = w.awaitLease();
  w.replyFailed(l1, ErrCode::Io,
                "{\"error\": \"disk hiccup\", \"error_code\": \"io\"}\n");
  Message l2 = w.awaitLease();  // I/O is transient: the job comes back.
  w.replyDone(l2, "RECOVERED");

  Message report = awaitReport(cl, 1);
  EXPECT_EQ(report.state, JobState::Done);
  EXPECT_EQ(report.text, "RECOVERED");
}

TEST(Fleet, FatalSimFailureCommitsWithoutRetry) {
  TestCoordinator tc(coordConfig());
  FakeWorker w(tc, "honest");
  Client cl = tc.connect();

  Message reply = submit(cl, quickSpec("omnetpp", 10));
  ASSERT_EQ(reply.op, Op::Accepted) << reply.text;
  Message l1 = w.awaitLease();
  w.replyFailed(l1, ErrCode::Sim,
                "{\"error\": \"boom\", \"error_code\": \"sim\"}\n");

  // Deterministic failure: committed as-is, never re-dispatched.
  Message report = awaitReport(cl, 1);
  EXPECT_EQ(report.state, JobState::Failed);
  EXPECT_EQ(report.errorCode, ErrCode::Sim);
  EXPECT_FALSE(w.leaseArrives(400)) << "fatal failure was retried";
  EXPECT_EQ(coordStat(cl, "coord/redispatched"), 0.0);
  EXPECT_TRUE(awaitStatAtLeast(cl, "coord/failed", 1.0));
}

// --- Cancellation and drain ------------------------------------------------

TEST(Fleet, ClientDisconnectCancelsItsPendingJobs) {
  TestCoordinator tc(coordConfig());
  {
    Client cl = tc.connect();
    ASSERT_EQ(submit(cl, quickSpec("mcf", 25), 1).op, Op::Accepted);
    ASSERT_EQ(submit(cl, quickSpec("lbm", 10), 2).op, Op::Accepted);
    // No worker has registered yet, so both jobs are still Pending when
    // the client walks away.
  }
  Client probe = tc.connect();
  EXPECT_TRUE(awaitStatAtLeast(probe, "coord/canceled", 2.0));
  // A worker that joins later gets nothing: the work died with the client.
  FakeWorker w(tc, "late");
  EXPECT_FALSE(w.leaseArrives(400));
  EXPECT_EQ(coordStat(probe, "coord/pending"), 0.0);
}

TEST(Fleet, DrainWithNoWorkersFailsQueuedJobsInsteadOfHanging) {
  TestCoordinator tc(coordConfig());
  Client cl = tc.connect();
  ASSERT_EQ(submit(cl, quickSpec("mcf", 25), 1).op, Op::Accepted);

  Message req;
  req.op = Op::Shutdown;
  req.requestId = 99;
  ASSERT_TRUE(cl.send(req));

  bool acked = false;
  Message report;
  Message m;
  while (cl.receive(m)) {
    if (m.op == Op::Accepted && m.requestId == 99) acked = true;
    if (m.op == Op::Report && m.requestId == 1) report = m;
    if (acked && report.op == Op::Report) break;
  }
  EXPECT_TRUE(acked);
  ASSERT_EQ(report.op, Op::Report);
  EXPECT_EQ(report.state, JobState::Failed);
  EXPECT_EQ(report.errorCode, ErrCode::Canceled);
  EXPECT_EQ(tc.stop(), 0) << "drain must exit cleanly";
}

// --- Telemetry -------------------------------------------------------------

TEST(Fleet, StatsAndMetricsExposeFleetState) {
  TestCoordinator tc(coordConfig());
  TestWorker w(tc, "scraped");
  Client cl = tc.connect();
  ASSERT_EQ(submit(cl, quickSpec("mcf", 25)).op, Op::Accepted);
  awaitReport(cl, 1);
  ASSERT_TRUE(awaitStatAtLeast(cl, "coord/completed", 1.0));

  Message req;
  req.op = Op::Stats;
  req.requestId = 5;
  ASSERT_TRUE(cl.send(req));
  Message stats;
  ASSERT_TRUE(cl.receive(stats));
  ASSERT_EQ(stats.op, Op::StatsReply);
  std::string err;
  auto doc = telemetry::parseJson(stats.text, &err);
  ASSERT_TRUE(doc) << err << "\n" << stats.text;
  for (const char* key :
       {"coord/submitted", "coord/rejected", "coord/protocol_errors",
        "coord/redispatched", "coord/duplicates_discarded",
        "coord/workers_lost", "coord/canceled", "coord/pending",
        "coord/leased", "coord/completed", "coord/failed",
        "coord/workers_live", "coord/sessions"}) {
    const telemetry::JsonValue* v = doc->find("coordinator")->find(key);
    ASSERT_TRUE(v && v->isNumber()) << key << " missing from stats";
  }
  const telemetry::JsonValue* worker = doc->find("workers")->find("scraped");
  ASSERT_TRUE(worker && worker->isObject()) << stats.text;
  EXPECT_EQ(worker->find("live")->number, 1.0);
  const telemetry::JsonValue* leaseWait = doc->find("lease_wait_ms");
  ASSERT_TRUE(leaseWait && leaseWait->isObject());
  EXPECT_GE(leaseWait->find("count")->number, 1.0);
  ASSERT_TRUE(doc->find("job_latency_ms"));

  req.op = Op::Metrics;
  req.requestId = 6;
  ASSERT_TRUE(cl.send(req));
  Message metrics;
  ASSERT_TRUE(cl.receive(metrics));
  ASSERT_EQ(metrics.op, Op::MetricsReply);
  for (const char* needle :
       {"# TYPE renuca_coord_submitted counter",
        "# TYPE renuca_coord_redispatched counter",
        "# TYPE renuca_coord_duplicates_discarded counter",
        "# TYPE renuca_coord_workers_live gauge",
        "# TYPE renuca_coord_lease_wait_ms histogram",
        "# TYPE renuca_coord_job_latency_ms histogram",
        "renuca_coord_worker_scraped_live"}) {
    EXPECT_NE(metrics.text.find(needle), std::string::npos)
        << "missing: " << needle;
  }
}

}  // namespace
}  // namespace renuca
