// Tests for the DDR3 model: address mapping (bijectivity, bank hashing),
// row-buffer timing, bus serialization, and the reference FR-FCFS queue
// (row hits outrank older row misses).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "dram/dram.hpp"
#include "dram/frfcfs.hpp"

namespace renuca::dram {
namespace {

TEST(DramMap, CoversAllChannels) {
  DramConfig cfg;
  std::set<std::uint32_t> channels;
  for (Addr a = 0; a < 64 * 64; a += 64) {
    channels.insert(mapAddress(a, cfg).channel);
  }
  EXPECT_EQ(channels.size(), cfg.channels);
}

TEST(DramMap, SequentialLinesShareRowsWithinChannel) {
  DramConfig cfg;
  // Lines 0,4,8,... go to channel 0; the first 32 of them share a row+bank.
  DramAddr first = mapAddress(0, cfg);
  int sameRow = 0;
  for (int i = 1; i < 32; ++i) {
    DramAddr a = mapAddress(static_cast<Addr>(i) * 4 * 64, cfg);
    if (a.row == first.row && a.flatBank(cfg) == first.flatBank(cfg)) ++sameRow;
  }
  EXPECT_GT(sameRow, 25);
}

TEST(DramMap, BankHashBreaksPowerOfTwoStrides) {
  DramConfig cfg;
  // Two lines one LLC-capacity apart (the fill/evict pairing) must not
  // systematically share a bank.
  int sameBank = 0;
  const std::uint64_t strideLines = 32768;  // 2 MB of lines
  for (int i = 0; i < 64; ++i) {
    Addr a = static_cast<Addr>(i) * 13 * 64;
    DramAddr x = mapAddress(a, cfg);
    DramAddr y = mapAddress(a + strideLines * 64, cfg);
    if (x.channel == y.channel && x.flatBank(cfg) == y.flatBank(cfg)) ++sameBank;
  }
  EXPECT_LT(sameBank, 32);
}

TEST(DramMap, InjectiveOverWindow) {
  DramConfig cfg;
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t, std::uint64_t>> seen;
  for (Addr a = 0; a < 4096 * 64; a += 64) {
    DramAddr d = mapAddress(a, cfg);
    // (channel, flatBank, row, column-within-row) must be unique; recover
    // the column from the line address.
    std::uint64_t b = a / 64;
    std::uint64_t col = (b / cfg.channels) % ((cfg.rowBytes / 64) / 4);
    auto key = std::make_tuple(d.channel, d.flatBank(cfg), d.row, col);
    EXPECT_TRUE(seen.insert(key).second) << "collision at " << a;
  }
}

TEST(DramController, RowHitFasterThanMiss) {
  DramConfig cfg;
  DramController dram(cfg);
  Cycle first = dram.access(0, AccessType::Read, 0);          // row miss
  Cycle second = dram.access(4 * 64, AccessType::Read, first); // same row
  EXPECT_EQ(dram.stats().get("row_misses"), 1u);
  EXPECT_EQ(dram.stats().get("row_hits"), 1u);
  EXPECT_LT(second - first, first - 0);
}

TEST(DramController, RowConflictSlowest) {
  DramConfig cfg;
  DramController dram(cfg);
  dram.access(0, AccessType::Read, 0);
  // Same bank, different row: need an address whose mapping differs only
  // in row.  Search for one.
  DramAddr base = mapAddress(0, cfg);
  Addr conflictAddr = 0;
  for (Addr a = 64; a < 64 * 1024 * 1024; a += 64) {
    DramAddr d = mapAddress(a, cfg);
    if (d.channel == base.channel && d.flatBank(cfg) == base.flatBank(cfg) &&
        d.row != base.row) {
      conflictAddr = a;
      break;
    }
  }
  ASSERT_NE(conflictAddr, 0u);
  dram.access(conflictAddr, AccessType::Read, 10000);
  EXPECT_EQ(dram.stats().get("row_conflicts"), 1u);
}

TEST(DramController, BusSerializesSameChannel) {
  DramConfig cfg;
  DramController dram(cfg);
  // Two row-sharing accesses at the same instant: the bus forces the
  // second's burst after the first.
  Cycle a = dram.access(0, AccessType::Read, 0);
  Cycle b = dram.access(4 * 64, AccessType::Read, 0);
  EXPECT_GE(b, a + cfg.tBurst);
}

TEST(DramController, DifferentChannelsParallel) {
  DramConfig cfg;
  DramController dram(cfg);
  Cycle a = dram.access(0, AccessType::Read, 0);
  Cycle b = dram.access(64, AccessType::Read, 0);  // next line -> next channel
  EXPECT_EQ(a, b);
}

TEST(DramController, CountsReadsAndWrites) {
  DramConfig cfg;
  DramController dram(cfg);
  dram.access(0, AccessType::Read, 0);
  dram.access(64, AccessType::Write, 0);
  EXPECT_EQ(dram.stats().get("reads"), 1u);
  EXPECT_EQ(dram.stats().get("writes"), 1u);
}

TEST(FrFcfs, ServicesEverythingOnce) {
  DramConfig cfg;
  FrFcfsQueue q(cfg);
  for (std::uint64_t i = 0; i < 20; ++i) {
    q.push(MemRequest{i * 64, AccessType::Read, i, i});
  }
  auto out = q.drainAll();
  ASSERT_EQ(out.size(), 20u);
  std::set<std::uint64_t> ids;
  for (const auto& s : out) ids.insert(s.request.id);
  EXPECT_EQ(ids.size(), 20u);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(FrFcfs, RowHitOutranksOlderMiss) {
  DramConfig cfg;
  FrFcfsQueue q(cfg);
  // Request 0 opens row R in bank B.  Request 1 (older) conflicts in B;
  // request 2 (younger) hits R.  FR-FCFS must service 2 before 1.
  Addr base = 0;
  DramAddr baseMap = mapAddress(base, cfg);
  // Find a same-bank different-row address.
  Addr conflict = 0;
  for (Addr a = 64; a < 64 * 1024 * 1024; a += 64) {
    DramAddr d = mapAddress(a, cfg);
    if (d.channel == baseMap.channel && d.flatBank(cfg) == baseMap.flatBank(cfg) &&
        d.row != baseMap.row) {
      conflict = a;
      break;
    }
  }
  ASSERT_NE(conflict, 0u);
  Addr rowHit = base + 4 * 64;  // same row as base
  ASSERT_EQ(mapAddress(rowHit, cfg).row, baseMap.row);

  q.push(MemRequest{base, AccessType::Read, 0, 100});
  q.push(MemRequest{conflict, AccessType::Read, 1, 101});
  q.push(MemRequest{rowHit, AccessType::Read, 2, 102});
  auto out = q.drainAll();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].request.id, 100u);
  EXPECT_EQ(out[1].request.id, 102u);  // row hit jumps the queue
  EXPECT_EQ(out[2].request.id, 101u);
  EXPECT_TRUE(out[1].rowHit);
  EXPECT_FALSE(out[2].rowHit);
}

TEST(FrFcfs, RespectsArrivalTimes) {
  DramConfig cfg;
  FrFcfsQueue q(cfg);
  q.push(MemRequest{0, AccessType::Read, 1000, 1});
  auto out = q.drainAll();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_GE(out[0].serviceStart, 1000u);
}

TEST(FrFcfs, FcfsAmongMisses) {
  DramConfig cfg;
  FrFcfsQueue q(cfg);
  // Three conflicting rows in one bank, arriving in order: serviced FCFS.
  DramAddr base = mapAddress(0, cfg);
  std::vector<Addr> addrs{0};
  for (Addr a = 64; a < 256 * 1024 * 1024 && addrs.size() < 3; a += 64) {
    DramAddr d = mapAddress(a, cfg);
    if (d.channel == base.channel && d.flatBank(cfg) == base.flatBank(cfg) &&
        d.row != base.row) {
      bool newRow = true;
      for (Addr prev : addrs) {
        if (mapAddress(prev, cfg).row == d.row) newRow = false;
      }
      if (newRow) addrs.push_back(a);
    }
  }
  ASSERT_EQ(addrs.size(), 3u);
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    q.push(MemRequest{addrs[i], AccessType::Read, i, i});
  }
  auto out = q.drainAll();
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].request.id, i);
  }
}

}  // namespace
}  // namespace renuca::dram

namespace renuca::dram {
namespace {

TEST(DramController, ClosedPageUniformLatency) {
  DramConfig cfg;
  cfg.pagePolicy = PagePolicy::Closed;
  DramController dram(cfg);
  Cycle a = dram.access(0, AccessType::Read, 0);
  Cycle prev = a;
  // Same row back-to-back: no row hits under auto-precharge.
  Cycle b = dram.access(4 * 64, AccessType::Read, prev + 1000);
  EXPECT_EQ(b - (prev + 1000), a - 0);
  EXPECT_EQ(dram.stats().get("row_hits"), 0u);
  EXPECT_EQ(dram.stats().get("row_misses"), 2u);
}

TEST(DramController, OpenBeatsClosedOnStreams) {
  DramConfig open, closed;
  closed.pagePolicy = PagePolicy::Closed;
  DramController a(open), b(closed);
  Cycle ta = 0, tb = 0;
  for (int i = 0; i < 16; ++i) {
    ta = a.access(static_cast<Addr>(i) * 4 * 64, AccessType::Read, ta);
    tb = b.access(static_cast<Addr>(i) * 4 * 64, AccessType::Read, tb);
  }
  EXPECT_LT(ta, tb);
}

TEST(DramController, RefreshWindowDelaysRequests) {
  DramConfig cfg;
  cfg.tRefi = 10000;
  cfg.tRfc = 600;
  DramController dram(cfg);
  // Request at the start of a refresh window gets pushed past it.
  Cycle inWindow = dram.access(0, AccessType::Read, 10000 + 10);
  DramConfig noRef;
  DramController clean(noRef);
  Cycle free = clean.access(0, AccessType::Read, 10000 + 10);
  EXPECT_GE(inWindow, free + 500);
  EXPECT_EQ(dram.stats().get("refresh_stalls"), 1u);
}

TEST(DramController, RequestOutsideRefreshWindowUnaffected) {
  DramConfig cfg;
  cfg.tRefi = 10000;
  cfg.tRfc = 600;
  DramController dram(cfg);
  DramController clean{DramConfig{}};
  Cycle a = dram.access(0, AccessType::Read, 5000);
  Cycle b = clean.access(0, AccessType::Read, 5000);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace renuca::dram
