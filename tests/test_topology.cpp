// Tests for the topology/placement layer: mesh-spec and placement-spec
// parsing, the named MC-edge schemes, placement validation, and the
// placement fingerprint key.
#include <gtest/gtest.h>

#include "noc/topology.hpp"

namespace renuca::noc {
namespace {

NocConfig geom(std::uint32_t w, std::uint32_t h) {
  NocConfig g;
  g.width = w;
  g.height = h;
  return g;
}

TEST(MeshSpec, ParsesWellFormed) {
  std::uint32_t w = 0, h = 0;
  EXPECT_TRUE(parseMeshSpec("8x8", w, h));
  EXPECT_EQ(w, 8u);
  EXPECT_EQ(h, 8u);
  EXPECT_TRUE(parseMeshSpec("16x2", w, h));
  EXPECT_EQ(w, 16u);
  EXPECT_EQ(h, 2u);
  EXPECT_TRUE(parseMeshSpec("1X4", w, h));  // capital X accepted
  EXPECT_EQ(w, 1u);
  EXPECT_EQ(h, 4u);
}

TEST(MeshSpec, RejectsMalformedAndLeavesOutputUntouched) {
  std::uint32_t w = 7, h = 9;
  for (const char* bad : {"8", "x8", "8x", "0x4", "4x0", "axb", "8x8x8", ""}) {
    EXPECT_FALSE(parseMeshSpec(bad, w, h)) << bad;
  }
  EXPECT_EQ(w, 7u);
  EXPECT_EQ(h, 9u);
}

TEST(McEdgeNames, RoundTripAndDidYouMean) {
  for (const char* name : {"corners", "top", "bottom", "left", "right",
                           "ring", "diagonal", "center"}) {
    McEdge e;
    ASSERT_TRUE(mcEdgeFromString(name, e)) << name;
    EXPECT_STREQ(toString(e), name);
  }
  McEdge e;
  EXPECT_FALSE(mcEdgeFromString("custom", e));  // only via placement=mc:
  EXPECT_FALSE(mcEdgeFromString("Corners", e));
  EXPECT_EQ(closestMcEdgeName("cornerz"), "corners");
  EXPECT_EQ(closestMcEdgeName("rin"), "ring");
}

TEST(McEdgeSchemes, CornersMatchesLegacyLayout) {
  // The legacy dramAccess routing: channel ch -> corners[ch % 4] in exactly
  // this order.  This golden guards default-config byte identity.
  EXPECT_EQ(defaultMcNodes(geom(4, 4), 4, McEdge::Corners),
            (std::vector<std::uint32_t>{0, 3, 12, 15}));
  EXPECT_EQ(defaultMcNodes(geom(8, 8), 4, McEdge::Corners),
            (std::vector<std::uint32_t>{0, 7, 56, 63}));
  EXPECT_EQ(defaultMcNodes(geom(8, 8), 2, McEdge::Corners),
            (std::vector<std::uint32_t>{0, 7}));
  // More MCs than corners: wrap around.
  EXPECT_EQ(defaultMcNodes(geom(4, 4), 8, McEdge::Corners),
            (std::vector<std::uint32_t>{0, 3, 12, 15, 0, 3, 12, 15}));
}

TEST(McEdgeSchemes, EdgesAreEvenlySpaced) {
  EXPECT_EQ(defaultMcNodes(geom(8, 8), 4, McEdge::Top),
            (std::vector<std::uint32_t>{1, 3, 5, 7}));
  EXPECT_EQ(defaultMcNodes(geom(8, 8), 4, McEdge::Bottom),
            (std::vector<std::uint32_t>{57, 59, 61, 63}));
  EXPECT_EQ(defaultMcNodes(geom(8, 8), 4, McEdge::Left),
            (std::vector<std::uint32_t>{8, 24, 40, 56}));
  EXPECT_EQ(defaultMcNodes(geom(8, 8), 4, McEdge::Right),
            (std::vector<std::uint32_t>{15, 31, 47, 63}));
  EXPECT_EQ(defaultMcNodes(geom(4, 4), 4, McEdge::Diagonal),
            (std::vector<std::uint32_t>{0, 5, 10, 15}));
}

TEST(McEdgeSchemes, RingWalksThePerimeter) {
  // 4x4 perimeter clockwise from (0,0): 0 1 2 3 7 11 15 14 13 12 8 4.
  EXPECT_EQ(defaultMcNodes(geom(4, 4), 4, McEdge::Ring),
            (std::vector<std::uint32_t>{1, 7, 14, 8}));
}

TEST(McEdgeSchemes, CenterPicksTheCentroidNeighborhood) {
  // All four 4x4 center nodes tie on centroid distance; stable order wins.
  EXPECT_EQ(defaultMcNodes(geom(4, 4), 4, McEdge::Center),
            (std::vector<std::uint32_t>{5, 6, 9, 10}));
  // Odd mesh: the exact center node first.
  EXPECT_EQ(defaultMcNodes(geom(3, 3), 1, McEdge::Center),
            (std::vector<std::uint32_t>{4}));
}

TEST(PlacementSpec, ParsesGroups) {
  PlacementConfig p;
  EXPECT_EQ(parsePlacementSpec("mc:0,7,56,63;banks:1,0;cores:2,3;", p), "");
  EXPECT_EQ(p.mcEdge, McEdge::Custom);
  EXPECT_EQ(p.numMcs, 4u);
  EXPECT_EQ(p.mcNodes, (std::vector<std::uint32_t>{0, 7, 56, 63}));
  EXPECT_EQ(p.bankNodes, (std::vector<std::uint32_t>{1, 0}));
  EXPECT_EQ(p.coreNodes, (std::vector<std::uint32_t>{2, 3}));
}

TEST(PlacementSpec, ReportsReadableErrors) {
  PlacementConfig p;
  EXPECT_NE(parsePlacementSpec("", p), "");
  EXPECT_NE(parsePlacementSpec("mc0,1", p), "");          // no ':'
  EXPECT_NE(parsePlacementSpec("mc:0,zebra", p), "");     // bad node id
  EXPECT_NE(parsePlacementSpec("spindles:1", p), "");     // unknown group
}

TEST(Placement, DefaultDetection) {
  PlacementConfig p;
  EXPECT_TRUE(isDefaultPlacement(p));
  p.numMcs = 2;
  EXPECT_FALSE(isDefaultPlacement(p));
  p = PlacementConfig{};
  p.mcEdge = McEdge::Ring;
  EXPECT_FALSE(isDefaultPlacement(p));
  p = PlacementConfig{};
  p.bankNodes = {0, 1, 2, 3};  // explicit identity is still non-default
  EXPECT_FALSE(isDefaultPlacement(p));
}

TEST(Topology, DefaultIdentityMaps) {
  Topology t(geom(4, 4), 16);
  EXPECT_TRUE(t.isDefault());
  EXPECT_EQ(t.numNodes(), 16u);
  EXPECT_EQ(t.numBanks(), 16u);
  EXPECT_EQ(t.numMcs(), 4u);
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(t.coreNode(i), i);
    EXPECT_EQ(t.bankNode(i), i);
  }
  EXPECT_EQ(t.centerNode(), 8u);
  EXPECT_EQ(t.placementKey(), "mc=corners:0,3,12,15;banks=id;cores=id");
}

TEST(Topology, ChannelsInterleaveAcrossMcs) {
  PlacementConfig p;
  p.numMcs = 2;
  Topology t(geom(4, 4), 16, p);
  EXPECT_FALSE(t.isDefault());
  EXPECT_EQ(t.mcNodeOfChannel(0), 0u);
  EXPECT_EQ(t.mcNodeOfChannel(1), 3u);
  EXPECT_EQ(t.mcNodeOfChannel(2), 0u);   // ch % numMcs wraps
  EXPECT_EQ(t.mcNodeOfChannel(5), 3u);
}

TEST(Topology, CustomMapsAreHonored) {
  PlacementConfig p;
  p.mcEdge = McEdge::Custom;
  p.numMcs = 1;
  p.mcNodes = {2};
  p.bankNodes = {3, 2, 1, 0};
  p.coreNodes = {1, 3};
  Topology t(geom(2, 2), 2, p);
  EXPECT_EQ(t.coreNode(0), 1u);
  EXPECT_EQ(t.coreNode(1), 3u);
  EXPECT_EQ(t.bankNode(0), 3u);
  EXPECT_EQ(t.bankNode(3), 0u);
  EXPECT_EQ(t.mcNodeOfChannel(7), 2u);
  EXPECT_EQ(t.placementKey(), "mc=custom:2;banks=3,2,1,0;cores=1,3");
}

TEST(Topology, HopCountsOnRectangularMeshes) {
  Topology wide(geom(8, 4), 32);
  EXPECT_EQ(wide.hopCount(0, 31), 10u);  // (0,0) -> (7,3)
  EXPECT_EQ(wide.hopCount(7, 24), 10u);  // (7,0) -> (0,3)
  EXPECT_EQ(wide.hopCount(9, 19), 3u);   // (1,1) -> (3,2)
  Topology tall(geom(1, 8), 8);
  EXPECT_EQ(tall.hopCount(0, 7), 7u);
  EXPECT_EQ(tall.hopCount(3, 5), 2u);
}

TEST(Topology, SingleNodeMeshAcceptsDefaultPlacement) {
  // The single_core rig: a 1x1 mesh with the default 4-corner scheme — all
  // four "corners" are node 0, and that must validate.
  Topology t(geom(1, 1), 1);
  EXPECT_EQ(t.numMcs(), 4u);
  for (std::uint32_t ch = 0; ch < 4; ++ch) EXPECT_EQ(t.mcNodeOfChannel(ch), 0u);
  EXPECT_EQ(t.centerNode(), 0u);
}

TEST(TopologyCheck, CatchesBadGeometryAndPlacement) {
  EXPECT_FALSE(Topology::check(geom(0, 4), 1, {}).empty());
  EXPECT_FALSE(Topology::check(geom(4, 4), 0, {}).empty());
  // More cores than nodes with the identity map.
  EXPECT_FALSE(Topology::check(geom(4, 4), 17, {}).empty());
  EXPECT_TRUE(Topology::check(geom(4, 4), 16, {}).empty());

  PlacementConfig p;
  p.bankNodes = {0, 0, 1, 2};  // not a permutation
  NocConfig g2 = geom(2, 2);
  EXPECT_FALSE(Topology::check(g2, 4, p).empty());
  p.bankNodes = {0, 1, 2};  // wrong length
  EXPECT_FALSE(Topology::check(g2, 4, p).empty());

  p = PlacementConfig{};
  p.coreNodes = {0, 0};  // two cores on one node
  EXPECT_FALSE(Topology::check(g2, 2, p).empty());
  p.coreNodes = {0, 9};  // off the mesh
  EXPECT_FALSE(Topology::check(g2, 2, p).empty());
  p.coreNodes = {0, 1, 2};  // size != numCores
  EXPECT_FALSE(Topology::check(g2, 2, p).empty());

  p = PlacementConfig{};
  p.mcEdge = McEdge::Custom;
  p.numMcs = 2;
  p.mcNodes = {0, 9};  // off the mesh
  EXPECT_FALSE(Topology::check(g2, 4, p).empty());
  p.mcNodes = {0};  // numMcs disagrees with the list
  EXPECT_FALSE(Topology::check(g2, 4, p).empty());

  p = PlacementConfig{};
  p.numMcs = 0;
  EXPECT_FALSE(Topology::check(g2, 4, p).empty());
  p = PlacementConfig{};
  p.mcNodes = {0};  // explicit list without mcEdge=Custom
  EXPECT_FALSE(Topology::check(g2, 4, p).empty());
}

}  // namespace
}  // namespace renuca::noc
