// Tests for the set-associative cache bank: hit/miss behaviour, LRU and
// PLRU replacement, dirty tracking, frame write counters, set-index
// shifting, and the BusyCalendar reservation semantics.
#include <gtest/gtest.h>

#include <set>

#include "common/busy_calendar.hpp"
#include "mem/cache.hpp"
#include "mem/mshr.hpp"

namespace renuca::mem {
namespace {

CacheConfig smallCache(std::uint32_t ways = 2, ReplacementKind repl = ReplacementKind::Lru) {
  CacheConfig cfg;
  cfg.sizeBytes = 4 * 1024;  // 64 lines
  cfg.ways = ways;
  cfg.latency = 2;
  cfg.occupancy = 1;
  cfg.replacement = repl;
  return cfg;
}

TEST(CacheBank, MissThenHit) {
  CacheBank c(smallCache(), "t");
  EXPECT_FALSE(c.access(100, AccessType::Read));
  c.insert(100, false);
  EXPECT_TRUE(c.access(100, AccessType::Read));
  EXPECT_TRUE(c.contains(100));
  EXPECT_EQ(c.stats().get("read_hits"), 1u);
  EXPECT_EQ(c.stats().get("read_misses"), 1u);
}

TEST(CacheBank, LruEvictsLeastRecentlyUsed) {
  CacheBank c(smallCache(2), "t");
  // Two-way set: blocks mapping to the same set are 32 apart (32 sets).
  std::uint32_t sets = c.config().numSets();
  BlockAddr a = 5, b = 5 + sets, d = 5 + 2 * sets;
  c.insert(a, false);
  c.insert(b, false);
  c.access(a, AccessType::Read);  // a is now MRU
  Eviction ev = c.insert(d, false);
  ASSERT_TRUE(ev.valid);
  EXPECT_EQ(ev.block, b);  // b was LRU
  EXPECT_TRUE(c.contains(a));
  EXPECT_FALSE(c.contains(b));
}

TEST(CacheBank, DirtyEvictionReported) {
  CacheBank c(smallCache(1), "t");
  std::uint32_t sets = c.config().numSets();
  c.insert(7, false);
  c.access(7, AccessType::Write);  // dirty it
  Eviction ev = c.insert(7 + sets, false);
  ASSERT_TRUE(ev.valid);
  EXPECT_EQ(ev.block, 7u);
  EXPECT_TRUE(ev.dirty);
}

TEST(CacheBank, InsertDirtyFlag) {
  CacheBank c(smallCache(1), "t");
  std::uint32_t sets = c.config().numSets();
  c.insert(9, true);
  Eviction ev = c.insert(9 + sets, false);
  EXPECT_TRUE(ev.dirty);
}

TEST(CacheBank, InvalidateRemovesAndReportsDirty) {
  CacheBank c(smallCache(), "t");
  c.insert(3, true);
  auto dirty = c.invalidate(3);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_TRUE(*dirty);
  EXPECT_FALSE(c.contains(3));
  EXPECT_FALSE(c.invalidate(3).has_value());
}

TEST(CacheBank, WritebackHitMarksDirtyAndCountsWrite) {
  CacheConfig cfg = smallCache();
  cfg.trackFrameWrites = true;
  CacheBank c(cfg, "t");
  c.insert(4, false);
  std::uint64_t before = c.totalWrites();
  EXPECT_TRUE(c.writebackHit(4));
  EXPECT_EQ(c.totalWrites(), before + 1);
  EXPECT_FALSE(c.writebackHit(999));
}

TEST(CacheBank, FrameWriteCountersTrackFillsAndWrites) {
  CacheConfig cfg = smallCache(1);
  cfg.trackFrameWrites = true;
  CacheBank c(cfg, "t");
  c.insert(1, false);              // fill: 1 write
  c.access(1, AccessType::Write);  // store hit: 1 write
  c.access(1, AccessType::Read);   // read: no write
  EXPECT_EQ(c.totalWrites(), 2u);
  EXPECT_EQ(c.maxFrameWrites(), 2u);
  c.resetMeasurement();
  EXPECT_EQ(c.totalWrites(), 0u);
  EXPECT_EQ(c.maxFrameWrites(), 0u);
  EXPECT_TRUE(c.contains(1));  // contents survive the reset
}

TEST(CacheBank, SetIndexShiftUsesHighBits) {
  // With shift 4, blocks differing only in their low 4 bits land in the
  // SAME set — the NUCA bank-select bits must not partition the sets.
  CacheConfig cfg = smallCache(16);
  cfg.setIndexShift = 4;
  CacheBank c(cfg, "t");
  // 16 blocks with identical high bits and varying low 4 bits all fit in
  // one 16-way set.
  for (BlockAddr b = 0; b < 16; ++b) {
    EXPECT_FALSE(c.insert((7 << 4) | b, false).valid);
  }
  for (BlockAddr b = 0; b < 16; ++b) {
    EXPECT_TRUE(c.contains((7 << 4) | b));
  }
  // The 17th conflicts.
  EXPECT_TRUE(c.insert((7 << 4) | (1ull << 40), false).valid);
}

TEST(CacheBank, FullCapacityReachableWithShift) {
  // Every set must be reachable when the block space is striped by 16
  // (the S-NUCA resident pattern that originally collapsed capacity).
  CacheConfig cfg = smallCache(2);
  cfg.setIndexShift = 4;
  CacheBank c(cfg, "bank");
  std::uint64_t lines = cfg.sizeBytes / cfg.lineBytes;
  std::uint64_t inserted = 0;
  for (BlockAddr b = 0; b < lines; ++b) {
    if (!c.insert(b * 16 + 3, false).valid) ++inserted;  // stride 16, bank 3
  }
  EXPECT_EQ(inserted, lines);  // no evictions: full capacity usable
}

class ReplacementTest : public ::testing::TestWithParam<ReplacementKind> {};

TEST_P(ReplacementTest, VictimIsAlwaysFromTheRightSet) {
  CacheConfig cfg = smallCache(4, GetParam());
  CacheBank c(cfg, "t", 99);
  std::uint32_t sets = c.config().numSets();
  // Overfill one set and verify victims come from it.
  for (int i = 0; i < 20; ++i) {
    Eviction ev = c.insert(3 + static_cast<BlockAddr>(i) * sets, false);
    if (ev.valid) {
      EXPECT_EQ(ev.block % sets, 3u);
    }
  }
}

TEST_P(ReplacementTest, HitsAfterSequentialFill) {
  CacheConfig cfg = smallCache(4, GetParam());
  CacheBank c(cfg, "t", 7);
  std::uint64_t lines = cfg.sizeBytes / cfg.lineBytes;
  for (BlockAddr b = 0; b < lines; ++b) c.insert(b, false);
  std::uint64_t hits = 0;
  for (BlockAddr b = 0; b < lines; ++b) {
    if (c.access(b, AccessType::Read)) ++hits;
  }
  EXPECT_EQ(hits, lines);  // exactly capacity-sized working set fits
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReplacementTest,
                         ::testing::Values(ReplacementKind::Lru,
                                           ReplacementKind::TreePlru,
                                           ReplacementKind::Random),
                         [](const ::testing::TestParamInfo<ReplacementKind>& info) {
                           switch (info.param) {
                             case ReplacementKind::Lru: return "Lru";
                             case ReplacementKind::TreePlru: return "TreePlru";
                             case ReplacementKind::Random: return "Random";
                           }
                           return "unknown";
                         });

TEST(CacheBank, ValidLinesAndFlush) {
  CacheBank c(smallCache(), "t");
  c.insert(1, false);
  c.insert(2, false);
  EXPECT_EQ(c.validLines(), 2u);
  c.flushAll();
  EXPECT_EQ(c.validLines(), 0u);
  EXPECT_FALSE(c.contains(1));
}

TEST(CacheBank, ForEachValidLine) {
  CacheBank c(smallCache(), "t");
  c.insert(10, true);
  c.insert(20, false);
  std::set<BlockAddr> seen;
  int dirtyCount = 0;
  c.forEachValidLine([&](BlockAddr b, bool dirty) {
    seen.insert(b);
    dirtyCount += dirty ? 1 : 0;
  });
  EXPECT_EQ(seen, (std::set<BlockAddr>{10, 20}));
  EXPECT_EQ(dirtyCount, 1);
}

TEST(CacheBank, EqualChanceSpreadsFrameWrites) {
  // One hot set refilled continuously: plain LRU funnels fills through a
  // rotation, but a skewed access pattern (one way re-touched constantly)
  // concentrates fills in the remaining ways; EqualChance redirects every
  // Nth fill to the coldest frame, flattening the per-frame write counts.
  // Pattern: three read-hot stable lines protect their ways under LRU, so
  // a stream of transient fills hammers the one remaining frame.
  auto run = [](std::uint32_t equalChance) {
    CacheConfig cfg = smallCache(4);
    cfg.trackFrameWrites = true;
    cfg.equalChanceEvery = equalChance;
    CacheBank c(cfg, "t");
    std::uint32_t sets = cfg.numSets();
    BlockAddr s1 = 0, s2 = sets, s3 = 2 * sets;
    c.insert(s1, false);
    c.insert(s2, false);
    c.insert(s3, false);
    for (int i = 1; i <= 3000; ++i) {
      // Keep the stable lines most-recently-used (re-inserting on the rare
      // EqualChance eviction of one of them).
      for (BlockAddr s : {s1, s2, s3}) {
        if (!c.access(s, AccessType::Read)) c.insert(s, false);
      }
      c.insert(static_cast<BlockAddr>(i + 10) * sets, /*dirty=*/true);
    }
    std::uint64_t mx = 0;
    for (std::uint32_t w = 0; w < 4; ++w) {
      mx = std::max(mx, c.frameWrites()[w]);
    }
    return mx;
  };
  std::uint64_t plain = run(0);
  std::uint64_t leveled = run(4);
  EXPECT_LT(leveled, plain * 9 / 10);
}

TEST(CacheBank, EqualChanceRequiresCounters) {
  CacheConfig cfg = smallCache();
  cfg.equalChanceEvery = 4;
  cfg.trackFrameWrites = false;
  EXPECT_DEATH(CacheBank(cfg, "t"), "frame write counters");
}

TEST(BusyCalendar, SequentialReservations) {
  BusyCalendar cal;
  EXPECT_EQ(cal.reserve(10, 4), 10u);
  EXPECT_EQ(cal.reserve(10, 4), 14u);  // queued behind the first
  EXPECT_EQ(cal.reserve(100, 4), 100u);
}

TEST(BusyCalendar, FutureReservationDoesNotBlockEarlier) {
  // The waterline bug this class exists to fix: a +150 reservation must
  // not delay a +10 one.
  BusyCalendar cal;
  EXPECT_EQ(cal.reserve(150, 4), 150u);
  EXPECT_EQ(cal.reserve(10, 4), 10u);
  EXPECT_EQ(cal.reserve(148, 4), 154u);  // gap before 150 too small
}

TEST(BusyCalendar, FillsGapsExactly) {
  BusyCalendar cal;
  cal.reserve(0, 10);    // [0,10)
  cal.reserve(20, 10);   // [20,30)
  EXPECT_EQ(cal.reserve(0, 10), 10u);  // fits [10,20)
  EXPECT_EQ(cal.reserve(0, 1), 30u);   // everything below 30 now solid
}

TEST(BusyCalendar, MergesAdjacentIntervals) {
  BusyCalendar cal;
  cal.reserve(0, 5);
  cal.reserve(5, 5);
  cal.reserve(10, 5);
  EXPECT_EQ(cal.intervalCount(), 1u);
  EXPECT_EQ(cal.bookedCycles(), 15u);
}

TEST(BusyCalendar, ZeroDurationIsFree) {
  BusyCalendar cal;
  cal.reserve(5, 10);
  EXPECT_EQ(cal.reserve(7, 0), 7u);
}

TEST(BusyCalendar, PrunesOldIntervals) {
  BusyCalendar cal(/*pruneHorizon=*/100);
  for (Cycle t = 0; t < 100; ++t) cal.reserve(t * 50, 10);
  EXPECT_LT(cal.intervalCount(), 10u);
}

TEST(Mshr, MergesAndBounds) {
  MshrFile m(2);
  EXPECT_EQ(m.earliestFree(0), 0u);
  m.add(100, 0, 50);
  auto pending = m.pendingCompletion(100, 10);
  ASSERT_TRUE(pending.has_value());
  EXPECT_EQ(*pending, 50u);
  m.add(200, 0, 80);
  EXPECT_EQ(m.inFlight(10), 2u);
  EXPECT_EQ(m.earliestFree(10), 50u);  // full: earliest completion
  EXPECT_EQ(m.earliestFree(60), 60u);  // one entry expired
  EXPECT_EQ(m.inFlight(90), 0u);
}

TEST(Mshr, PendingExpires) {
  MshrFile m(4);
  m.add(7, 0, 30);
  EXPECT_TRUE(m.pendingCompletion(7, 29).has_value());
  EXPECT_FALSE(m.pendingCompletion(7, 30).has_value());
}

}  // namespace
}  // namespace renuca::mem
