// Tests for the enhanced TLB: translation, first-touch page allocation,
// Mapping Bit Vector semantics (set/read/reset, page-table backing across
// TLB evictions), and associativity behaviour.
#include <gtest/gtest.h>

#include <set>

#include "tlb/tlb.hpp"

namespace renuca::tlb {
namespace {

TEST(PageTable, FirstTouchAllocatesUniquePpns) {
  PageTable pt;
  std::set<std::uint64_t> ppns;
  for (Asid a = 0; a < 4; ++a) {
    for (std::uint64_t vpn = 0; vpn < 100; ++vpn) {
      ppns.insert(pt.translate(a, vpn));
    }
  }
  EXPECT_EQ(ppns.size(), 400u);  // injective
  EXPECT_EQ(pt.allocatedPages(), 401u);  // ppn 0 reserved
}

TEST(PageTable, TranslationIsStable) {
  PageTable pt;
  std::uint64_t p1 = pt.translate(1, 42);
  std::uint64_t p2 = pt.translate(1, 42);
  EXPECT_EQ(p1, p2);
}

TEST(PageTable, ReverseLookup) {
  PageTable pt;
  std::uint64_t ppn = pt.translate(3, 99);
  auto owner = pt.ownerOf(ppn);
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(owner->first, 3u);
  EXPECT_EQ(owner->second, 99u);
  EXPECT_FALSE(pt.ownerOf(123456789).has_value());
}

TEST(PageTable, MbvBackingStore) {
  PageTable pt;
  EXPECT_EQ(pt.loadMbv(1, 5), 0u);
  pt.storeMbv(1, 5, 0xDEADBEEF);
  EXPECT_EQ(pt.loadMbv(1, 5), 0xDEADBEEFu);
  EXPECT_EQ(pt.loadMbv(2, 5), 0u);  // per-ASID
}

class TlbTest : public ::testing::Test {
 protected:
  TlbConfig cfg_;
  PageTable pt_;
};

TEST_F(TlbTest, MissThenHit) {
  EnhancedTlb tlb(cfg_, &pt_, 0, "t");
  Translation t1 = tlb.translate(0x12345678);
  EXPECT_FALSE(t1.tlbHit);
  EXPECT_EQ(t1.latency, cfg_.missLatency);
  Translation t2 = tlb.translate(0x12345000);
  EXPECT_TRUE(t2.tlbHit);
  EXPECT_EQ(t2.latency, 0u);
  // Same page -> same PPN, offset preserved.
  EXPECT_EQ(pageOf(t1.paddr), pageOf(t2.paddr));
  EXPECT_EQ(t1.paddr & 0xFFF, 0x678u);
}

TEST_F(TlbTest, DistinctPagesDistinctFrames) {
  EnhancedTlb tlb(cfg_, &pt_, 0, "t");
  Translation a = tlb.translate(0x1000);
  Translation b = tlb.translate(0x2000);
  EXPECT_NE(pageOf(a.paddr), pageOf(b.paddr));
}

TEST_F(TlbTest, MappingBitSetAndRead) {
  EnhancedTlb tlb(cfg_, &pt_, 0, "t");
  Addr va = 0x4000 + 5 * kLineBytes;  // line 5 of its page
  tlb.translate(va);
  EXPECT_FALSE(tlb.mappingBit(va));
  tlb.setMappingBit(va, true);
  EXPECT_TRUE(tlb.mappingBit(va));
  // Neighbouring line unaffected.
  EXPECT_FALSE(tlb.mappingBit(va + kLineBytes));
  tlb.setMappingBit(va, false);
  EXPECT_FALSE(tlb.mappingBit(va));
}

TEST_F(TlbTest, MbvSurvivesEvictionWithBacking) {
  cfg_.backMbvInPageTable = true;
  EnhancedTlb tlb(cfg_, &pt_, 0, "t");
  Addr va = 0x8000;
  tlb.translate(va);
  tlb.setMappingBit(va, true);
  // Flood one TLB set to evict the page: pages mapping to the same set
  // are numSets apart in VPN space.
  std::uint32_t sets = cfg_.entries / cfg_.ways;
  std::uint64_t vpn = pageOf(va);
  for (std::uint32_t i = 1; i <= cfg_.ways + 1; ++i) {
    tlb.translate((vpn + static_cast<std::uint64_t>(i) * sets) << kPageShift);
  }
  // Re-translate: the MBV bit must come back from the page table.
  tlb.translate(va);
  EXPECT_TRUE(tlb.mappingBit(va));
}

TEST_F(TlbTest, MbvLostWithoutBacking) {
  cfg_.backMbvInPageTable = false;
  EnhancedTlb tlb(cfg_, &pt_, 0, "t");
  Addr va = 0x8000;
  tlb.translate(va);
  tlb.setMappingBit(va, true);
  std::uint32_t sets = cfg_.entries / cfg_.ways;
  std::uint64_t vpn = pageOf(va);
  for (std::uint32_t i = 1; i <= cfg_.ways + 1; ++i) {
    tlb.translate((vpn + static_cast<std::uint64_t>(i) * sets) << kPageShift);
  }
  tlb.translate(va);
  EXPECT_FALSE(tlb.mappingBit(va));  // reset on refill
}

TEST_F(TlbTest, ResetMappingBitByPhysicalAddress) {
  EnhancedTlb tlb(cfg_, &pt_, 0, "t");
  Addr va = 0xA000 + 7 * kLineBytes;
  Translation tr = tlb.translate(va);
  tlb.setMappingBit(va, true);
  ASSERT_TRUE(tlb.mappingBit(va));
  tlb.resetMappingBitPhys(tr.paddr);
  EXPECT_FALSE(tlb.mappingBit(va));
  // Backing store also cleared.
  EXPECT_EQ(pt_.loadMbv(0, pageOf(va)) & (1ull << 7), 0u);
}

TEST_F(TlbTest, ResetIgnoresForeignAsid) {
  EnhancedTlb tlb0(cfg_, &pt_, 0, "t0");
  EnhancedTlb tlb1(cfg_, &pt_, 1, "t1");
  Addr va = 0xB000;
  Translation tr = tlb0.translate(va);
  tlb0.setMappingBit(va, true);
  // Core 1's TLB gets the reset request for core 0's physical line: no-op.
  tlb1.resetMappingBitPhys(tr.paddr);
  EXPECT_TRUE(tlb0.mappingBit(va));
}

TEST_F(TlbTest, CapacityEvictionsCounted) {
  EnhancedTlb tlb(cfg_, &pt_, 0, "t");
  for (std::uint64_t i = 0; i < cfg_.entries * 3; ++i) {
    tlb.translate(i << kPageShift);
  }
  EXPECT_GT(tlb.stats().get("evictions"), 0u);
  EXPECT_EQ(tlb.stats().get("misses"), cfg_.entries * 3);
}

TEST_F(TlbTest, LruWithinSet) {
  cfg_.entries = 4;
  cfg_.ways = 2;  // 2 sets
  EnhancedTlb tlb(cfg_, &pt_, 0, "t");
  // Two pages in set 0 (even VPNs).
  tlb.translate(0 << kPageShift);
  tlb.translate(2 << kPageShift);
  tlb.translate(0 << kPageShift);  // touch page 0 -> page 2 is LRU
  tlb.translate(4 << kPageShift);  // evicts page 2
  EXPECT_TRUE(tlb.translate(0 << kPageShift).tlbHit);
  EXPECT_FALSE(tlb.translate(2 << kPageShift).tlbHit);
}

}  // namespace
}  // namespace renuca::tlb
