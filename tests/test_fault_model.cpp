// Wear-out fault model tests: deterministic per-frame budgets, the
// degraded-capacity lifetime metric, graceful degradation inside
// mem::CacheBank, and system-level fault reproducibility (same fault_seed=
// gives the identical fault schedule and an identical run report modulo
// timestamps).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mem/cache.hpp"
#include "rram/fault_model.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "workload/mixes.hpp"

namespace renuca {
namespace {

using rram::BankFaultModel;
using rram::FaultConfig;
using rram::ScheduledFault;

FaultConfig baseFaultCfg() {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 42;
  cfg.budgetWrites = 100.0;
  cfg.sigma = 0.15;
  return cfg;
}

TEST(BankFaultModel, DeterministicForSameSeed) {
  FaultConfig cfg = baseFaultCfg();
  BankFaultModel a(cfg, /*bank=*/3, /*numSets=*/8, /*ways=*/4);
  BankFaultModel b(cfg, /*bank=*/3, /*numSets=*/8, /*ways=*/4);
  ASSERT_EQ(a.numFrames(), 32u);
  EXPECT_EQ(a.variations(), b.variations());
  for (std::uint32_t f = 0; f < a.numFrames(); ++f) {
    EXPECT_EQ(a.writeLimit(f), b.writeLimit(f)) << "frame " << f;
  }
}

TEST(BankFaultModel, DifferentSeedsAndBanksDiverge) {
  FaultConfig cfg = baseFaultCfg();
  BankFaultModel a(cfg, 0, 8, 4);
  cfg.seed = 43;
  BankFaultModel b(cfg, 0, 8, 4);
  EXPECT_NE(a.variations(), b.variations());

  cfg.seed = 42;
  BankFaultModel c(cfg, 1, 8, 4);
  EXPECT_NE(a.variations(), c.variations());
}

TEST(BankFaultModel, SigmaZeroMeansIdenticalCells) {
  FaultConfig cfg = baseFaultCfg();
  cfg.sigma = 0.0;
  BankFaultModel m(cfg, 0, 4, 2);
  for (std::uint32_t f = 0; f < m.numFrames(); ++f) {
    EXPECT_DOUBLE_EQ(m.variation(f), 1.0);
    EXPECT_EQ(m.writeLimit(f), 100u);
  }
}

TEST(BankFaultModel, ZeroBudgetNeverWearsOutInWindow) {
  FaultConfig cfg = baseFaultCfg();
  cfg.budgetWrites = 0.0;
  BankFaultModel m(cfg, 0, 4, 2);
  for (std::uint32_t f = 0; f < m.numFrames(); ++f) {
    EXPECT_EQ(m.writeLimit(f), BankFaultModel::kNoLimit);
    EXPECT_GT(m.variation(f), 0.0);  // variation still drawn for the projection
  }
}

TEST(BankFaultModel, AtWritesScheduleTightensLimit) {
  FaultConfig cfg = baseFaultCfg();
  cfg.sigma = 0.0;
  ScheduledFault sf;
  sf.bank = 2;
  sf.set = 1;
  sf.way = 3;
  sf.trigger = ScheduledFault::Trigger::AtWrites;
  sf.value = 7;
  cfg.schedule.push_back(sf);

  BankFaultModel hit(cfg, 2, 4, 4);
  EXPECT_EQ(hit.writeLimit(1 * 4 + 3), 7u);
  EXPECT_EQ(hit.writeLimit(0), 100u);  // other frames untouched

  BankFaultModel miss(cfg, 1, 4, 4);  // schedule targets bank 2, not 1
  EXPECT_EQ(miss.writeLimit(1 * 4 + 3), 100u);
}

TEST(FaultSpec, ParsesImmediateAndValuedTriggers) {
  ScheduledFault out;
  ASSERT_TRUE(rram::parseFaultSpec("3:12:7", ScheduledFault::Trigger::Immediate, out));
  EXPECT_EQ(out.bank, 3u);
  EXPECT_EQ(out.set, 12u);
  EXPECT_EQ(out.way, 7u);

  ASSERT_TRUE(rram::parseFaultSpec("0:5:1:900", ScheduledFault::Trigger::AtCycle, out));
  EXPECT_EQ(out.trigger, ScheduledFault::Trigger::AtCycle);
  EXPECT_EQ(out.value, 900u);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  ScheduledFault out;
  // Missing value for a valued trigger.
  EXPECT_FALSE(rram::parseFaultSpec("0:1:2", ScheduledFault::Trigger::AtWrites, out));
  // Too many fields for Immediate.
  EXPECT_FALSE(rram::parseFaultSpec("0:1:2:3", ScheduledFault::Trigger::Immediate, out));
  EXPECT_FALSE(rram::parseFaultSpec("", ScheduledFault::Trigger::Immediate, out));
  EXPECT_FALSE(rram::parseFaultSpec("a:b:c", ScheduledFault::Trigger::Immediate, out));
  EXPECT_FALSE(rram::parseFaultSpec("1:2:", ScheduledFault::Trigger::Immediate, out));
  EXPECT_FALSE(rram::parseFaultSpec("1:2:3x", ScheduledFault::Trigger::Immediate, out));
}

TEST(DegradedLifetime, MatchesHandComputedValue) {
  rram::EnduranceConfig e;
  e.writesPerCell = 1e6;
  e.coreFreqHz = 1e9;
  e.maxYears = 30.0;
  const Cycle measured = 1'000'000'000;  // exactly one simulated second

  // Frame 0 writes at 100/s: death at 1e6/100 = 1e4 seconds.  The other
  // three frames never see writes, so they never die (maxYears).
  std::vector<std::uint64_t> writes = {100, 0, 0, 0};

  // deadFrac 0.1 -> k = 1: lifetime ends when the hot frame dies.
  double y = rram::degradedCapacityLifetimeYears(writes, {}, measured, 0.1, e);
  EXPECT_NEAR(y, 1e4 / rram::kSecondsPerYear, 1e-12);

  // deadFrac 0.5 -> k = 2: the second death never happens.
  y = rram::degradedCapacityLifetimeYears(writes, {}, measured, 0.5, e);
  EXPECT_DOUBLE_EQ(y, e.maxYears);

  // Process variation scales the budget of the hot frame.
  std::vector<double> var = {2.0, 1.0, 1.0, 1.0};
  y = rram::degradedCapacityLifetimeYears(writes, var, measured, 0.1, e);
  EXPECT_NEAR(y, 2e4 / rram::kSecondsPerYear, 1e-12);
}

// --- CacheBank graceful degradation ---------------------------------------

mem::CacheBank faultBank(const BankFaultModel& model, std::uint32_t ways = 2) {
  mem::CacheConfig cc;
  cc.sizeBytes = 64 * 16 * ways;  // 16 sets
  cc.ways = ways;
  cc.trackFrameWrites = true;
  mem::CacheBank bank(cc, "faulty");
  bank.setFaultModel(&model);
  return bank;
}

TEST(CacheBankFaults, NaturalWearRequiresArming) {
  FaultConfig cfg = baseFaultCfg();
  cfg.sigma = 0.0;
  cfg.budgetWrites = 3.0;
  BankFaultModel model(cfg, 0, 16, 2);
  mem::CacheBank bank = faultBank(model);

  // Warm-up phase: budgets are not armed, so writes never kill frames.
  ASSERT_FALSE(bank.faultArmed());
  bank.insert(0x10, /*dirty=*/false);
  for (int i = 0; i < 10; ++i) bank.access(0x10, AccessType::Write);
  EXPECT_TRUE(bank.harvestFrameDeaths().empty());
  EXPECT_EQ(bank.deadFrames(), 0u);

  // resetMeasurement() arms the budgets against the zeroed counters.
  bank.resetMeasurement();
  ASSERT_TRUE(bank.faultArmed());
  EXPECT_TRUE(bank.contains(0x10));  // contents survive the reset
  for (int i = 0; i < 3; ++i) bank.access(0x10, AccessType::Write);
  std::vector<mem::CacheBank::FrameDeath> deaths = bank.harvestFrameDeaths();
  ASSERT_EQ(deaths.size(), 1u);
  EXPECT_TRUE(deaths[0].hadLine);
  EXPECT_EQ(deaths[0].block, 0x10u);
  EXPECT_TRUE(deaths[0].dirty);
  EXPECT_EQ(deaths[0].writes, 3u);
  EXPECT_EQ(bank.deadFrames(), 1u);
  EXPECT_FALSE(bank.contains(0x10));  // the dead frame's line is discarded
}

TEST(CacheBankFaults, InjectionWorksUnarmedAndIsPermanent) {
  FaultConfig cfg = baseFaultCfg();
  cfg.budgetWrites = 0.0;
  BankFaultModel model(cfg, 0, 16, 2);
  mem::CacheBank bank = faultBank(model);

  // Block 0x20 maps to set 0 and fills way 0 of the empty bank.
  bank.insert(0x20, /*dirty=*/true);
  const std::uint32_t set = 0, way = 0;
  auto death = bank.injectFault(set, way);
  ASSERT_TRUE(death.has_value());
  EXPECT_TRUE(death->hadLine);
  EXPECT_EQ(death->block, 0x20u);
  EXPECT_TRUE(death->dirty);
  EXPECT_TRUE(bank.frameDead(set, way));
  EXPECT_EQ(bank.deadFrames(), 1u);

  // Re-injecting the same frame is a no-op.
  EXPECT_FALSE(bank.injectFault(set, way).has_value());

  // Wear-out is permanent: measurement resets keep the frame dead.
  bank.resetMeasurement();
  EXPECT_TRUE(bank.frameDead(set, way));
  EXPECT_EQ(bank.deadFrames(), 1u);
}

TEST(CacheBankFaults, VictimSelectionSkipsDeadFrames) {
  FaultConfig cfg = baseFaultCfg();
  cfg.budgetWrites = 0.0;
  BankFaultModel model(cfg, 0, 16, 2);
  mem::CacheBank bank = faultBank(model);

  // Kill way 0 of set 0, then stream blocks mapping to set 0: every fill
  // must land in (and evict from) the surviving way.
  ASSERT_TRUE(bank.injectFault(0, 0).has_value());
  EXPECT_EQ(bank.liveWaysFor(0), 1u);
  for (std::uint64_t i = 0; i < 6; ++i) {
    BlockAddr block = i * 16;  // 16 sets -> all map to set 0
    bank.insert(block, false);
    EXPECT_TRUE(bank.contains(block));
    EXPECT_TRUE(bank.frameDead(0, 0));
  }
  // Only the live way holds a line.
  EXPECT_EQ(bank.validLines(), 1u);
}

TEST(CacheBankFaults, FullyDeadSetBlocksAllocation) {
  FaultConfig cfg = baseFaultCfg();
  cfg.budgetWrites = 0.0;
  BankFaultModel model(cfg, 0, 16, 2);
  mem::CacheBank bank = faultBank(model);

  ASSERT_TRUE(bank.injectFault(5, 0).has_value());
  ASSERT_TRUE(bank.injectFault(5, 1).has_value());
  BlockAddr inSet5 = 5;  // set = block % 16
  EXPECT_EQ(bank.liveWaysFor(inSet5), 0u);
  EXPECT_FALSE(bank.canAllocate(inSet5));
  EXPECT_TRUE(bank.canAllocate(inSet5 + 1));  // neighbouring set unaffected
  EXPECT_DOUBLE_EQ(bank.liveFrameFrac(), 1.0 - 2.0 / 32.0);
}

// --- System-level determinism ----------------------------------------------

sim::SystemConfig smallFaultyConfig() {
  sim::SystemConfig cfg = sim::defaultConfig();
  cfg.instrPerCore = 4000;
  cfg.warmupInstrPerCore = 1500;
  cfg.prewarmInstrPerCore = 30000;
  cfg.placementRefreshInstrPerCore = 0;
  cfg.l3.bankBytes = 32 * 1024;  // tiny banks so in-window wear-out happens
  cfg.fault.enabled = true;
  cfg.fault.seed = 7;
  cfg.fault.budgetWrites = 3.0;
  cfg.fault.sigma = 0.15;
  cfg.fault.deadFrac = 0.10;
  return cfg;
}

std::string reportWithoutTimestamps(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream kept;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"generated_unix\"") != std::string::npos) continue;
    if (line.find("\"host\"") != std::string::npos) continue;
    if (line.find("\"wall_seconds\"") != std::string::npos) continue;
    kept << line << '\n';
  }
  return kept.str();
}

TEST(FaultDeterminism, SameSeedSameScheduleAndReport) {
  sim::SystemConfig cfg = smallFaultyConfig();
  const workload::WorkloadMix& mix = workload::standardMixes()[0];

  sim::RunResult r1 = sim::runWorkload(cfg, mix);
  sim::RunResult r2 = sim::runWorkload(cfg, mix);

  // The fault schedule itself must reproduce bit-for-bit.
  ASSERT_FALSE(r1.faultEvents.empty());
  ASSERT_EQ(r1.faultEvents.size(), r2.faultEvents.size());
  for (std::size_t i = 0; i < r1.faultEvents.size(); ++i) {
    EXPECT_EQ(r1.faultEvents[i].cycle, r2.faultEvents[i].cycle) << i;
    EXPECT_EQ(r1.faultEvents[i].bank, r2.faultEvents[i].bank) << i;
    EXPECT_EQ(r1.faultEvents[i].set, r2.faultEvents[i].set) << i;
    EXPECT_EQ(r1.faultEvents[i].way, r2.faultEvents[i].way) << i;
    EXPECT_EQ(r1.faultEvents[i].writes, r2.faultEvents[i].writes) << i;
    EXPECT_EQ(r1.faultEvents[i].injected, r2.faultEvents[i].injected) << i;
  }
  EXPECT_EQ(r1.bankDeadFrames, r2.bankDeadFrames);
  EXPECT_DOUBLE_EQ(r1.liveCapacityFrac, r2.liveCapacityFrac);
  EXPECT_DOUBLE_EQ(r1.degradedCapacityLifetimeYears, r2.degradedCapacityLifetimeYears);

  // And the full run report must be identical modulo timestamps/host.
  std::string p1 = ::testing::TempDir() + "/renuca_fault_det_1.json";
  std::string p2 = ::testing::TempDir() + "/renuca_fault_det_2.json";
  ASSERT_TRUE(sim::writeRunReport(p1, "fault_det", cfg, {{"run", r1}}, 0.0));
  ASSERT_TRUE(sim::writeRunReport(p2, "fault_det", cfg, {{"run", r2}}, 0.0));
  EXPECT_EQ(reportWithoutTimestamps(p1), reportWithoutTimestamps(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(FaultDeterminism, DifferentSeedChangesSchedule) {
  sim::SystemConfig cfg = smallFaultyConfig();
  const workload::WorkloadMix& mix = workload::standardMixes()[0];
  sim::RunResult r1 = sim::runWorkload(cfg, mix);
  cfg.fault.seed = 8;
  sim::RunResult r2 = sim::runWorkload(cfg, mix);

  ASSERT_FALSE(r1.faultEvents.empty());
  bool differ = r1.faultEvents.size() != r2.faultEvents.size();
  for (std::size_t i = 0; !differ && i < r1.faultEvents.size(); ++i) {
    differ = r1.faultEvents[i].cycle != r2.faultEvents[i].cycle ||
             r1.faultEvents[i].set != r2.faultEvents[i].set ||
             r1.faultEvents[i].way != r2.faultEvents[i].way;
  }
  EXPECT_TRUE(differ);
}

TEST(FaultInjection, ScheduledImmediateFaultShowsUpInResult) {
  sim::SystemConfig cfg = smallFaultyConfig();
  cfg.fault.budgetWrites = 0.0;  // only the scheduled fault fires
  ScheduledFault sf;
  sf.bank = 4;
  sf.set = 2;
  sf.way = 1;
  sf.trigger = ScheduledFault::Trigger::Immediate;
  cfg.fault.schedule.push_back(sf);

  sim::RunResult r = sim::runWorkload(cfg, workload::standardMixes()[0]);
  ASSERT_EQ(r.faultEvents.size(), 1u);
  EXPECT_TRUE(r.faultEvents[0].injected);
  EXPECT_EQ(r.faultEvents[0].bank, 4u);
  EXPECT_EQ(r.faultEvents[0].set, 2u);
  EXPECT_EQ(r.faultEvents[0].way, 1u);
  EXPECT_EQ(r.faultEvents[0].cycle, 0u);  // measurement-relative
  ASSERT_EQ(r.bankDeadFrames.size(), 16u);
  EXPECT_EQ(r.bankDeadFrames[4], 1u);
  EXPECT_LT(r.liveCapacityFrac, 1.0);
}

}  // namespace
}  // namespace renuca
