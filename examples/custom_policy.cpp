// Custom policy: plugging a user-defined placement policy into the
// simulator.
//
// Implements "Checkerboard" — a toy hybrid that places every line in the
// requesting core's mesh quadrant, interleaved by address — and compares
// it against the paper's schemes on one workload.  Shows the full
// MappingPolicy contract: locate() must find what placeFill() placed.
//
// Note: MemorySystem builds its policy from SystemConfig::policy, so the
// demo drives the policy objects directly through the same interface the
// simulator uses, then runs the built-in schemes for context.
#include <cstdio>
#include <map>

#include "core/mapping_policy.hpp"
#include "core/policy_factory.hpp"
#include "noc/mesh.hpp"
#include "sim/experiment.hpp"

using namespace renuca;

namespace {

/// Every core maps blocks into its own 2x2 mesh quadrant (4 banks),
/// interleaved by address — a middle ground between Private (1 bank) and
/// S-NUCA (16 banks).
class CheckerboardPolicy final : public core::MappingPolicy {
 public:
  explicit CheckerboardPolicy(const noc::MeshNoc& mesh) : mesh_(mesh) {}

  core::PolicyKind kind() const override { return core::PolicyKind::SNuca; }

  BankId quadBank(BlockAddr block, CoreId core) const {
    std::uint32_t qx = (mesh_.xOf(core) / 2) * 2;
    std::uint32_t qy = (mesh_.yOf(core) / 2) * 2;
    std::uint32_t slot = static_cast<std::uint32_t>(block & 3);
    return mesh_.nodeAt(qx + (slot & 1), qy + (slot >> 1));
  }

  BankId locate(BlockAddr block, CoreId requester, bool) const override {
    return quadBank(block, requester);
  }
  Fill placeFill(BlockAddr block, CoreId requester, bool) override {
    return Fill{quadBank(block, requester), false};
  }

 private:
  const noc::MeshNoc& mesh_;
};

}  // namespace

int main(int argc, char** argv) {
  noc::MeshNoc mesh{noc::NocConfig{}};
  CheckerboardPolicy checker(mesh);

  // Demonstrate the placement contract on synthetic traffic.
  std::printf("Checkerboard placement (core 5 = mesh (1,1)):\n");
  std::map<BankId, int> histogram;
  for (BlockAddr b = 0; b < 4000; ++b) {
    auto fill = checker.placeFill(b, /*requester=*/5, false);
    // The invariant every policy must satisfy:
    if (checker.locate(b, 5, fill.usedRnuca) != fill.bank) {
      std::printf("BROKEN CONTRACT at block %llu\n",
                  static_cast<unsigned long long>(b));
      return 1;
    }
    ++histogram[fill.bank];
  }
  for (const auto& [bank, count] : histogram) {
    std::printf("  bank %-2u <- %d fills (%u hops from core 5)\n", bank, count,
                mesh.hopCount(5, bank));
  }

  // Context: the built-in schemes on one real workload.
  sim::SystemConfig cfg = sim::defaultConfig();
  cfg.instrPerCore = 20000;
  cfg.warmupInstrPerCore = 5000;
  cfg.applyOverrides(KvConfig::fromArgs(argc, argv));
  const workload::WorkloadMix mix = workload::mixForCores("WL2", cfg.numCores);
  std::printf("\nbuilt-in schemes on %s for comparison:\n", mix.name.c_str());
  for (core::PolicyKind policy : sim::allPolicies()) {
    sim::SystemConfig c = cfg;
    c.policy = policy;
    sim::RunResult r = sim::runWorkload(c, mix);
    std::printf("  %-8s sysIPC %.2f  minLife %.2fy\n", core::toString(policy),
                r.systemIpc, r.minBankLifetime());
  }
  std::printf("\nto add a policy to the simulator proper: implement MappingPolicy,\n"
              "extend PolicyKind + makePolicy(), and every bench gains it.\n");
  return 0;
}
