// Criticality analysis: watch the Criticality Predictor Table learn.
//
// Runs one application on the single-core rig and reports, per load PC,
// the CPT counters (numLoadsCount / robBlockCount) and the resulting
// verdict under several thresholds — the paper's Fig 6/7 machinery made
// inspectable.
//
//   ./criticality_analysis [app] [threshold_pct=3]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "sim/system.hpp"
#include "workload/app_profile.hpp"
#include "workload/generator.hpp"

using namespace renuca;

int main(int argc, char** argv) {
  KvConfig kv = KvConfig::fromArgs(argc, argv);
  std::string app = kv.positional().empty() ? "mcf" : kv.positional()[0];

  sim::SystemConfig cfg = sim::singleCore();
  cfg.instrPerCore = 30000;
  cfg.warmupInstrPerCore = 8000;
  cfg.applyOverrides(kv);

  workload::WorkloadMix mix;
  mix.name = app;
  mix.appNames = {app};
  sim::System system(cfg, mix);
  sim::RunResult r = system.run();

  const workload::AppProfile& prof = workload::profileByName(app);
  std::printf("app %s: IPC %.2f (ref %.2f), non-critical loads %.1f%%, "
              "CPT accuracy %.1f%%\n\n",
              app.c_str(), r.coreIpc[0], prof.ref.ipc,
              r.nonCriticalLoadFrac * 100.0, r.cptAccuracy * 100.0);

  // Walk the app's load PCs (the generator lays the loop body at 0x400000)
  // and show the hottest entries.
  core::CriticalityPredictorTable* cpt = system.predictor(0);
  struct Row {
    std::uint64_t pc;
    core::CriticalityPredictorTable::Counters c;
  };
  std::vector<Row> rows;
  for (std::uint64_t slot = 0; slot < 2 * prof.loopLen; ++slot) {
    std::uint64_t pc = 0x400000 + slot * 4;
    auto c = cpt->countersFor(pc);
    if (c.numLoadsCount > 0) rows.push_back({pc, c});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.c.robBlockCount > b.c.robBlockCount;
  });

  std::printf("top load PCs by ROB-block count (of %zu tracked):\n", rows.size());
  std::printf("%-10s %10s %10s %8s | verdict at 3%% / 25%% / 100%%\n", "pc",
              "loads", "robBlocks", "ratio");
  for (std::size_t i = 0; i < std::min<std::size_t>(rows.size(), 15); ++i) {
    const Row& row = rows[i];
    double ratio = 100.0 * row.c.robBlockCount / row.c.numLoadsCount;
    auto verdict = [&](double pct) {
      return 100.0 * row.c.robBlockCount >= pct * row.c.numLoadsCount ? "CRIT"
                                                                      : "non ";
    };
    std::printf("0x%-8llx %10llu %10llu %7.1f%% |   %s   /  %s  /  %s\n",
                static_cast<unsigned long long>(row.pc),
                static_cast<unsigned long long>(row.c.numLoadsCount),
                static_cast<unsigned long long>(row.c.robBlockCount), ratio,
                verdict(3), verdict(25), verdict(100));
  }
  std::printf("\nthe paper's 3%% threshold flags any PC whose loads block the ROB\n"
              "head even occasionally; 100%% flags almost nothing (Fig 7).\n");
  return 0;
}
