// Shared-memory MESI demo: exercises the directory coherence protocol
// in-system.
//
// The paper's workloads are multi-programmed (disjoint address spaces), so
// its runs never generate coherence traffic; this example drives the
// DirectoryMesi engine directly with a producer-consumer sharing pattern
// and reports the protocol activity, then runs a sharing-enabled System to
// show the integration path.
#include <cstdio>

#include "coherence/mesi.hpp"
#include "common/rng.hpp"
#include "sim/experiment.hpp"

using namespace renuca;

int main() {
  // --- Protocol-level: 4 caches ping-ponging 8 shared lines. -------------
  coherence::DirectoryMesi dir(4);
  Pcg32 rng(2024);
  int invalidations = 0, flushes = 0, c2c = 0;
  for (int step = 0; step < 20000; ++step) {
    std::uint32_t cache = rng.nextBelow(4);
    BlockAddr line = rng.nextBelow(8);
    coherence::Outcome out = rng.chance(0.3) ? dir.write(cache, line)
                                             : dir.read(cache, line);
    invalidations += static_cast<int>(out.invalidated.size());
    flushes += out.writebackToMemory ? 1 : 0;
    c2c += out.cacheToCache ? 1 : 0;
    if (rng.chance(0.05)) dir.evict(cache, line);
  }
  std::string err = dir.checkAll();
  std::printf("producer-consumer soup over 8 shared lines, 20000 ops:\n");
  std::printf("  invalidations/downgrades : %d\n", invalidations);
  std::printf("  dirty owner flushes      : %d\n", flushes);
  std::printf("  cache-to-cache transfers : %d\n", c2c);
  std::printf("  invariants               : %s\n\n",
              err.empty() ? "all hold" : err.c_str());
  std::printf("%s\n", dir.stats().toString().c_str());

  // --- System-level: the same protocol wired into the full simulator. ----
  sim::SystemConfig cfg = sim::defaultConfig();
  cfg.enableSharing = true;
  cfg.instrPerCore = 8000;
  cfg.warmupInstrPerCore = 2000;
  cfg.prewarmInstrPerCore = 100000;
  sim::RunResult r = sim::runWorkload(cfg, workload::standardMixes()[2]);
  std::printf("sharing-enabled system run (%s): sysIPC %.2f, %llu cycles\n",
              "WL3", r.systemIpc,
              static_cast<unsigned long long>(r.measuredCycles));
  std::printf("(multi-programmed apps share nothing, so the directory only\n"
              "grants Exclusive states here — the protocol soup above is the\n"
              "part that exercises invalidations.)\n");
  return 0;
}
