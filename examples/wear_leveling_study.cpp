// Wear-leveling study: how does each NUCA placement policy distribute
// ReRAM writes when one corner of the chip runs write-heavy applications?
//
// Builds a deliberately skewed workload — four mcf/streamL-class apps
// pinned next to each other, the rest low-intensity — and compares the
// per-bank write histograms and lifetimes of all five policies.  This is
// the wear-imbalance scenario from the paper's §III motivation, isolated.
#include <cstdio>

#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

using namespace renuca;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::defaultConfig();
  cfg.instrPerCore = 25000;
  cfg.warmupInstrPerCore = 6000;
  KvConfig kv = KvConfig::fromArgs(argc, argv);
  for (const ConfigError& e : sim::validateConfigKeys(kv)) {
    std::fprintf(stderr, "config: %s\n", e.toString().c_str());
    if (kv.getOr("strict", false)) return 2;
  }
  cfg.applyOverrides(kv);

  // Hand-built skewed mix: heavy writers on cores 0, 1, 4, 5 (the top-left
  // 2x2 quad of the mesh), quiet apps everywhere else.
  workload::WorkloadMix mix;
  mix.name = "corner-heavy";
  mix.appNames = {"mcf",    "streamL", "namd",  "povray",
                  "lbm",    "milc",    "namd",  "dealII",
                  "astar",  "povray",  "namd",  "dealII",
                  "sjeng",  "astar",   "namd",  "povray"};

  std::printf("workload: heavy writers on cores 0,1,4,5 (top-left quad)\n\n");
  std::printf("%-8s | per-bank write share (row-major 4x4 mesh, %% of total)\n",
              "policy");

  // One job per policy on the sweep engine; jobs=N parallelizes the five
  // runs without changing any number printed below.
  sim::SweepPlan plan;
  for (core::PolicyKind policy : sim::allPolicies()) {
    sim::SystemConfig c = cfg;
    c.policy = policy;
    plan.add(sim::Job{std::string(core::toString(policy)), c, mix});
  }
  sim::SweepOptions opts;
  opts.jobs = static_cast<unsigned>(kv.getOr("jobs", static_cast<std::int64_t>(1)));
  std::vector<sim::RunResult> results = sim::runPlan(plan, opts);

  for (std::size_t p = 0; p < sim::allPolicies().size(); ++p) {
    core::PolicyKind policy = sim::allPolicies()[p];
    const sim::RunResult& r = results[p];
    std::uint64_t total = 0;
    for (std::uint64_t w : r.bankWrites) total += w;
    std::printf("%-8s |", core::toString(policy));
    for (std::size_t b = 0; b < r.bankWrites.size(); ++b) {
      if (b % 4 == 0 && b > 0) std::printf(" /");
      std::printf(" %4.1f", 100.0 * r.bankWrites[b] / static_cast<double>(total));
    }
    std::printf("  | minLife %.2fy  sysIPC %.2f\n", r.minBankLifetime(), r.systemIpc);
  }

  std::printf(
      "\nreading the rows: S-NUCA and Naive spread the corner's writes over all\n"
      "16 banks; R-NUCA concentrates them in the top-left cluster (short\n"
      "lifetimes there); Private pins each app's writes to its own bank;\n"
      "Re-NUCA keeps only the critical fraction near the corner and spreads\n"
      "the rest.\n");
  return 0;
}
