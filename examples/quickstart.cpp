// Quickstart: build the paper's 16-core system, run one multi-programmed
// workload under Re-NUCA, and print the headline numbers.
//
//   ./quickstart [policy=renuca] [instr_per_core=30000]
//
// Telemetry keys ride along like any other override:
//   ./quickstart report_json=run.json epoch_instrs=3000 trace_json=run.trace
//
// Keys are validated against the config registry: unknown or out-of-range
// keys warn, and with strict=1 they abort (exit 2) instead of silently
// falling back to defaults.
//
// This is the smallest complete use of the public API:
//   SystemConfig -> workload mix -> System::run() -> RunResult.
#include <cstdio>
#include <cstdlib>

#include "sim/experiment.hpp"
#include "sim/report.hpp"

using namespace renuca;

int main(int argc, char** argv) {
  // 1. Configure the machine (defaults = the paper's Table I).
  sim::SystemConfig cfg = sim::defaultConfig();
  cfg.policy = core::PolicyKind::ReNuca;
  cfg.instrPerCore = 30000;
  cfg.warmupInstrPerCore = 8000;
  KvConfig kv = KvConfig::fromArgs(argc, argv);
  for (const ConfigError& e : sim::validateConfigKeys(kv)) {
    std::fprintf(stderr, "config: %s\n", e.toString().c_str());
    if (kv.getOr("strict", false)) {
      std::fprintf(stderr, "strict=1: refusing to run\n");
      return 2;
    }
  }
  cfg.applyOverrides(kv);
  std::printf("machine: %s\n\n", cfg.summary().c_str());

  // 2. Pick a workload: WL1 is one of the paper-style mixes of 16 SPEC-like
  //    applications with varied write intensity.  When mesh=/cores= scaled
  //    the machine, the recipe is resampled at the configured core count.
  const workload::WorkloadMix mix = workload::mixForCores("WL1", cfg.numCores);
  std::printf("workload %s:\n ", mix.name.c_str());
  for (const std::string& app : mix.appNames) std::printf(" %s", app.c_str());
  std::printf("\n\n");

  // 3. Run: fast-forward warm-up, then a measured window.
  sim::RunResult r = sim::runWorkload(cfg, mix);

  // 4. Read out the results.
  std::printf("measured cycles : %llu\n",
              static_cast<unsigned long long>(r.measuredCycles));
  std::printf("system IPC      : %.2f (sum of %zu cores)\n", r.systemIpc,
              r.coreIpc.size());
  std::printf("avg WPKI / MPKI : %.1f / %.1f\n", r.avgWpki(), r.avgMpki());
  std::printf("CPT accuracy    : %.1f%%\n", r.cptAccuracy * 100.0);
  std::printf("\nper-bank ReRAM lifetime (years):\n");
  for (std::size_t b = 0; b < r.bankLifetimeYears.size(); ++b) {
    std::printf("  CB-%-2zu %6.2f  (writes %llu)\n", b, r.bankLifetimeYears[b],
                static_cast<unsigned long long>(r.bankWrites[b]));
  }
  std::printf("\nminimum bank lifetime: %.2f years\n", r.minBankLifetime());

  // 5. Optional machine-readable report (epoch series included when
  //    epoch_instrs= was given; trace_json= already wrote its own file).
  if (auto path = kv.getString("report_json")) {
    if (sim::writeRunReport(*path, "quickstart", cfg, {{mix.name, r}}, 0.0)) {
      std::printf("report written to %s\n", path->c_str());
    }
  }
  return 0;
}
