// Fault-tolerance study: how gracefully does each NUCA placement policy
// degrade as ReRAM frames wear out?
//
// Enables the wear-out fault model with a small in-window write budget so
// frames actually die during the run, then compares, per policy:
//   * dead frames and surviving LLC capacity at the end of the window,
//   * the capacity-loss series (fault events over time),
//   * the degraded-capacity lifetime — the extrapolated time until
//     fault_dead_frac of the frames exceed their process-varied full-scale
//     budgets (the paper's wear-spreading claim as a failure-time metric).
//
// Expectation: R-NUCA concentrates writes in each core's cluster, so its
// hottest frames exhaust their budgets first and capacity collapses early;
// Re-NUCA keeps only critical lines clustered and spreads the rest, so at
// matched write volume it retains capacity longer.
//
//   ./fault_tolerance_study [fault_budget_writes=5] [report_json=ft.json] [jobs=N]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"

using namespace renuca;

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::defaultConfig();
  cfg.instrPerCore = 25000;
  cfg.warmupInstrPerCore = 6000;
  // Small banks concentrate writes on few frames so in-window wear-out is
  // visible at example-sized instruction budgets.
  cfg.l3.bankBytes = 64 * 1024;
  // Fault model on for every run: lognormal budget variation around a
  // deliberately tiny in-window budget, 10% dead = end of life.
  cfg.fault.enabled = true;
  cfg.fault.budgetWrites = 5.0;
  cfg.fault.sigma = 0.15;
  cfg.fault.deadFrac = 0.10;

  KvConfig kv = KvConfig::fromArgs(argc, argv);
  for (const ConfigError& e : sim::validateConfigKeys(kv)) {
    std::fprintf(stderr, "config: %s\n", e.toString().c_str());
    if (kv.getOr("strict", false)) return 2;
  }
  cfg.applyOverrides(kv);
  cfg.fault.enabled = true;  // the study is about faults; keep them on

  // The wear-imbalance scenario from the paper's §III motivation: heavy
  // writers pinned to the top-left 2x2 quad.  R-NUCA funnels their traffic
  // into that corner's clusters; Re-NUCA spreads the non-critical share.
  workload::WorkloadMix mix;
  mix.name = "corner-heavy";
  mix.appNames = {"mcf",    "streamL", "namd",  "povray",
                  "lbm",    "milc",    "namd",  "dealII",
                  "astar",  "povray",  "namd",  "dealII",
                  "sjeng",  "astar",   "namd",  "povray"};
  const std::vector<core::PolicyKind> policies = {
      core::PolicyKind::SNuca, core::PolicyKind::RNuca, core::PolicyKind::ReNuca};

  std::printf("== fault tolerance study ==\n");
  std::printf("config: %s\n", cfg.summary().c_str());
  std::printf("fault model: budget~%.0f writes/frame (sigma %.2f), "
              "life ends at %.0f%% frames dead\n\n",
              cfg.fault.budgetWrites, cfg.fault.sigma, cfg.fault.deadFrac * 100.0);

  std::printf("%-8s | %10s %9s %10s | %9s %9s | %s\n", "policy", "LLCwrites",
              "deadFrames", "liveCap", "degLife(y)", "sysIPC",
              "capacity-loss epochs (cycle:liveFrac)");

  // One job per policy, run on the sweep engine (jobs= worker threads);
  // results come back in policy order regardless of scheduling.
  sim::SweepPlan plan;
  for (core::PolicyKind policy : policies) {
    sim::SystemConfig c = cfg;
    c.policy = policy;
    plan.add(sim::Job{std::string(core::toString(policy)), c, mix});
  }
  sim::SweepOptions opts;
  opts.jobs = static_cast<unsigned>(kv.getOr("jobs", static_cast<std::int64_t>(1)));
  std::vector<sim::RunResult> results = sim::runPlan(plan, opts);

  std::vector<sim::ReportEntry> entries;
  std::vector<double> degLife(policies.size(), 0.0);
  for (std::size_t p = 0; p < policies.size(); ++p) {
    sim::SystemConfig c = cfg;
    c.policy = policies[p];
    sim::RunResult r = std::move(results[p]);

    std::uint64_t writes = 0;
    for (std::uint64_t w : r.bankWrites) writes += w;
    std::uint32_t dead = 0;
    for (std::uint32_t d : r.bankDeadFrames) dead += d;
    degLife[p] = r.degradedCapacityLifetimeYears;

    std::printf("%-8s | %10llu %9u %9.1f%% | %9.2f %9.2f |",
                core::toString(policies[p]),
                static_cast<unsigned long long>(writes), dead,
                r.liveCapacityFrac * 100.0, r.degradedCapacityLifetimeYears,
                r.systemIpc);

    // Capacity-loss epochs: walk the fault events and print the live
    // fraction after every ~quarter of the deaths.
    const std::uint64_t frames = 16ull * c.l3.bankBytes / kLineBytes;
    std::size_t n = r.faultEvents.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (n < 4 || (i + 1) % ((n + 3) / 4) == 0 || i + 1 == n) {
        std::printf(" %llu:%.3f",
                    static_cast<unsigned long long>(r.faultEvents[i].cycle),
                    1.0 - static_cast<double>(i + 1) / static_cast<double>(frames));
      }
    }
    std::printf("\n");
    entries.push_back({std::string(core::toString(policies[p])), std::move(r)});
  }

  std::printf(
      "\nreading the table: all policies see the same demand stream, but\n"
      "R-NUCA funnels every fill into the core's 4-bank cluster, so its hot\n"
      "frames burn through their budgets first (short degraded-capacity\n"
      "lifetime, early capacity loss).  Re-NUCA spreads the non-critical\n"
      "majority of writes across all 16 banks and retains capacity longer.\n");

  const std::size_t rn = 1, ren = 2;  // indices into `policies`
  bool ok = degLife[ren] > degLife[rn];
  std::printf("\nRe-NUCA degraded-capacity lifetime %.2fy %s R-NUCA %.2fy %s\n",
              degLife[ren], ok ? ">" : "<=", degLife[rn],
              ok ? "(wear spreading preserves capacity)" : "(UNEXPECTED)");

  if (auto path = kv.getString("report_json")) {
    if (sim::writeRunReport(*path, "fault_tolerance_study", cfg, entries, 0.0,
                            sim::resolveJobs(opts.jobs))) {
      std::printf("report written to %s\n", path->c_str());
    }
  }
  return ok ? 0 : 1;
}
