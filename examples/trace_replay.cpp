// Trace replay: drive a core from a trace file instead of the synthetic
// generator — the hook for plugging in real program traces.
//
// Captures a short mcf trace, replays it through an OooCore against the
// full memory hierarchy, and verifies the replayed run is bit-identical to
// the generator-driven one.
#include <cstdio>
#include <string>

#include "cpu/core.hpp"
#include "sim/memory_system.hpp"
#include "workload/app_profile.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

using namespace renuca;

namespace {

struct RunStats {
  Cycle cycles = 0;
  std::uint64_t loads = 0, stalled = 0;
};

RunStats drive(workload::InstructionSource& src, std::uint64_t budget) {
  sim::SystemConfig cfg = sim::singleCore();
  sim::MemorySystem ms(cfg);
  cpu::CoreConfig cc;
  cpu::OooCore core(cc, 0, &src, &ms, nullptr, budget);
  Cycle now = 0;
  while (!core.done() && now < 100'000'000) {
    core.tick(now);
    now = core.nextEventCycle(now);
  }
  return {now, core.stats().loads, core.stats().loadsStalledHead};
}

}  // namespace

int main() {
  const std::string path = "/tmp/renuca_mcf.trace";
  const std::uint64_t budget = 20000;

  // 1. Capture: 2x the budget so the replay never wraps.
  {
    workload::SyntheticGenerator gen(workload::profileByName("mcf"), 42);
    workload::TraceWriter writer(path);
    for (std::uint64_t i = 0; i < 2 * budget; ++i) writer.append(gen.next());
    std::uint64_t written = writer.written();
    if (!writer.close()) {
      std::fprintf(stderr, "trace capture failed: %s\n",
                   workload::toString(writer.error()).c_str());
      return 1;
    }
    std::printf("captured %llu records to %s\n",
                static_cast<unsigned long long>(written), path.c_str());
  }

  // 2. Run live from the generator...
  workload::SyntheticGenerator live(workload::profileByName("mcf"), 42);
  RunStats a = drive(live, budget);

  // 3. ...and replay the file.
  workload::TraceReader replay(path, /*wrapAround=*/true);
  if (!replay.ok()) {
    std::fprintf(stderr, "trace open failed: %s\n",
                 workload::toString(replay.error()).c_str());
    return 1;
  }
  RunStats b = drive(replay, budget);

  std::printf("generator run : %llu cycles, %llu loads (%llu stalled ROB)\n",
              static_cast<unsigned long long>(a.cycles),
              static_cast<unsigned long long>(a.loads),
              static_cast<unsigned long long>(a.stalled));
  std::printf("trace replay  : %llu cycles, %llu loads (%llu stalled ROB)\n",
              static_cast<unsigned long long>(b.cycles),
              static_cast<unsigned long long>(b.loads),
              static_cast<unsigned long long>(b.stalled));
  if (a.cycles != b.cycles || a.loads != b.loads) {
    std::printf("MISMATCH: replay diverged from the live run\n");
    return 1;
  }
  std::printf("bit-identical: a trace file fully determines a run.\n");
  std::printf("\nto use real traces: write the 24-byte header plus 18-byte\n"
              "records (pc, vaddr, kind, depDist — see workload/trace.hpp)\n"
              "and hand a TraceReader to cpu::OooCore exactly as above.\n");
  std::remove(path.c_str());
  return 0;
}
