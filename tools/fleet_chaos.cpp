// fleet_chaos: soak / chaos harness for the sharded simulation fleet.
//
// Spawns a real renuca-coord plus N real renucad workers (the binaries
// next to this one), floods the coordinator with a grid of quick jobs,
// and — while the fleet is busy — SIGKILLs a worker mid-job, throws junk
// clients at the socket (garbage frames, a byte-dripped frame, a silent
// staller), and then proves the reliability contract:
//
//   * every submitted job produced exactly one report (zero lost, zero
//     duplicated), even though a lease holder was killed;
//   * every report is byte-identical — modulo the provenance fields,
//     i.e. from the "config" key onward — to the same spec run locally
//     through runPlan();
//   * when a worker was killed, the coordinator's stats actually show
//     re-dispatched leases (the fault path fired, not just the happy one).
//
// Exit 0 = contract held.  Used by the CI chaos smoke step and for manual
// soak runs (jobs=2000 workers=5 ...).
//
//   ./fleet_chaos [jobs=60] [workers=3] [kill_after=5] [junk=1] ...
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cli_util.hpp"
#include "common/kvconfig.hpp"
#include "server/client.hpp"
#include "server/jobspec.hpp"
#include "server/protocol.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"

using namespace renuca;

namespace {

const char kUsage[] =
    "usage: fleet_chaos [key=value ...]\n"
    "\n"
    "Spawns renuca-coord + N renucad workers, floods them with quick jobs,\n"
    "kills a worker mid-run, injects protocol junk, and verifies zero job\n"
    "loss and byte-identical merged results vs a local run.\n"
    "\n"
    "options:\n"
    "  jobs=N          jobs to submit (default 60)\n"
    "  workers=N       renucad workers to spawn (default 3)\n"
    "  kill_after=N    SIGKILL one worker after N reports (0 = no chaos;\n"
    "                  default 5).  The worker is respawned 1s later.\n"
    "  junk=0|1        also run junk clients: garbage frames, a byte-dripped\n"
    "                  PING, a silent staller (default 1)\n"
    "  verify=N        verify at most N reports against local runs\n"
    "                  (default 0 = all)\n"
    "  timeout_s=N     overall watchdog (default 300)\n"
    "  log_level=LEVEL passed to the spawned daemons (default warn)\n";

struct Child {
  pid_t pid = -1;
  std::string name;
};

std::string exeDir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  std::string path(buf);
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

pid_t spawn(const std::vector<std::string>& argv) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    std::fprintf(stderr, "fleet_chaos: execv %s: %s\n", cargv[0],
                 std::strerror(errno));
    _exit(127);
  }
  return pid;
}

bool waitForSocket(const std::string& path, int timeoutMs) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeoutMs);
  struct stat st{};
  while (std::chrono::steady_clock::now() < deadline) {
    if (::stat(path.c_str(), &st) == 0 && S_ISSOCK(st.st_mode)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// The stable tail of a run report: everything from the "config" key on.
/// Provenance (timestamps, host, job ids, wall time) all precedes it.
std::string stripProvenance(const std::string& json) {
  const std::size_t pos = json.find("\"config\"");
  return pos == std::string::npos ? json : json.substr(pos);
}

/// Quick deterministic job grid: cycles app x threshold points small
/// enough that a job takes well under a second.
std::vector<std::string> makeGrid(std::size_t jobs) {
  const char* apps[] = {"mcf", "lbm", "milc", "omnetpp"};
  const unsigned thresholds[] = {10, 25, 50};
  std::vector<std::string> specs;
  specs.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    const char* app = apps[i % 4];
    const unsigned t = thresholds[(i / 4) % 3];
    specs.push_back("app=" + std::string(app) + "\nthreshold_pct=" +
                    std::to_string(t) +
                    "\nprewarm=50000\nwarmup=1000\ninstr_per_core=3000\nlabel=" +
                    app + "/t" + std::to_string(t) + "\n");
  }
  return specs;
}

/// Junk client 1: a sound frame boundary around a corrupted payload — the
/// coordinator must answer Error (BadPayload) and keep the session usable
/// for the valid PING that follows; it must never crash.
bool junkGarbage(const std::string& sock) {
  server::Client probe;
  if (!probe.connectUnix(sock)) return false;
  const int fd = probe.releaseFd();
  server::Message ping;
  ping.op = server::Op::Ping;
  std::vector<std::uint8_t> frame = server::encodeFrame(ping);
  for (std::size_t i = 4; i < frame.size(); ++i) frame[i] ^= 0x5a;  // Corrupt payload.
  if (::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL) < 0) {
    ::close(fd);
    return false;
  }
  server::Client c;
  c.adoptFd(fd);
  c.setIoTimeout(5000);
  server::Message reply;
  std::string err;
  if (!c.receive(reply, &err) || reply.op != server::Op::Error) return false;
  server::Message m;
  m.op = server::Op::Ping;
  m.requestId = 78;
  if (!c.send(m, &err) || !c.receive(reply, &err)) return false;
  return reply.op == server::Op::Pong && reply.requestId == 78;
}

/// Junk client 2: byte-drips a valid PING, one byte per write with pauses,
/// and expects a PONG — slow writers must not be dropped or misparsed.
bool junkByteDrip(const std::string& sock) {
  server::Client probe;
  if (!probe.connectUnix(sock)) return false;
  const int fd = probe.releaseFd();
  server::Message ping;
  ping.op = server::Op::Ping;
  ping.requestId = 77;
  ping.text = "drip";
  const std::vector<std::uint8_t> frame = server::encodeFrame(ping);
  for (std::uint8_t b : frame) {
    if (::send(fd, &b, 1, MSG_NOSIGNAL) != 1) {
      ::close(fd);
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  server::Client c;
  c.adoptFd(fd);
  c.setIoTimeout(5000);
  server::Message reply;
  std::string err;
  if (!c.receive(reply, &err)) {
    std::fprintf(stderr, "fleet_chaos: byte-drip got no PONG: %s\n", err.c_str());
    return false;
  }
  return reply.op == server::Op::Pong && reply.requestId == 77;
}

double statValue(const std::string& json, const std::string& key) {
  const std::size_t pos = json.find("\"" + key + "\": ");
  if (pos == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + pos + key.size() + 4, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  if (tools::wantsHelp(argc, argv)) return tools::usage(kUsage, false);
  KvConfig kv = KvConfig::fromArgs(argc, argv);
  if (!kv.positional().empty()) {
    std::fprintf(stderr, "fleet_chaos: unexpected argument '%s'\n",
                 kv.positional()[0].c_str());
    return tools::usage(kUsage, true);
  }
  std::string badKey;
  if (!tools::checkKeys(kv,
                        {"jobs", "workers", "kill_after", "junk", "verify",
                         "timeout_s", "log_level"},
                        badKey)) {
    std::fprintf(stderr, "fleet_chaos: unknown option '%s='\n", badKey.c_str());
    return tools::usage(kUsage, true);
  }
  const std::size_t jobs =
      static_cast<std::size_t>(kv.getOr("jobs", std::int64_t{60}));
  const int workers = static_cast<int>(kv.getOr("workers", std::int64_t{3}));
  const std::size_t killAfter =
      static_cast<std::size_t>(kv.getOr("kill_after", std::int64_t{5}));
  const bool junk = kv.getOr("junk", std::int64_t{1}) != 0;
  std::size_t verifyMax =
      static_cast<std::size_t>(kv.getOr("verify", std::int64_t{0}));
  if (verifyMax == 0) verifyMax = jobs;
  const int timeoutS = static_cast<int>(kv.getOr("timeout_s", std::int64_t{300}));
  const std::string logLevel = kv.getOr("log_level", std::string("warn"));
  if (jobs == 0 || workers < 1) {
    std::fprintf(stderr, "fleet_chaos: jobs= and workers= must be positive\n");
    return 1;
  }

  char dirTemplate[] = "/tmp/fleet-chaos-XXXXXX";
  const char* dir = ::mkdtemp(dirTemplate);
  if (!dir) {
    std::fprintf(stderr, "fleet_chaos: mkdtemp: %s\n", std::strerror(errno));
    return 1;
  }
  const std::string coordSock = std::string(dir) + "/coord.sock";
  const std::string bin = exeDir();

  std::vector<Child> children;
  const auto killAll = [&children] {
    for (Child& c : children) {
      if (c.pid > 0) ::kill(c.pid, SIGKILL);
    }
    for (Child& c : children) {
      if (c.pid > 0) ::waitpid(c.pid, nullptr, 0);
    }
    children.clear();
  };
  const auto fail = [&](const std::string& why) {
    std::fprintf(stderr, "fleet_chaos: FAIL: %s\n", why.c_str());
    killAll();
    return 1;
  };

  // Tight fault-detection windows so killed workers are noticed in
  // hundreds of milliseconds, not tens of seconds.
  children.push_back({spawn({bin + "/renuca-coord", "socket=" + coordSock,
                             "lease_timeout_ms=2000", "heartbeat_timeout_ms=1500",
                             "idle_timeout_ms=3000", "log_level=" + logLevel}),
                      "coord"});
  if (!waitForSocket(coordSock, 5000)) {
    return fail("coordinator socket never appeared");
  }
  const auto spawnWorker = [&](int i) {
    return Child{spawn({bin + "/renucad", "coordinator=" + coordSock,
                        "worker_name=w" + std::to_string(i), "jobs=2",
                        "heartbeat_ms=300", "log_level=" + logLevel}),
                 "w" + std::to_string(i)};
  };
  for (int i = 0; i < workers; ++i) children.push_back(spawnWorker(i));

  ::signal(SIGPIPE, SIG_IGN);
  const std::vector<std::string> specs = makeGrid(jobs);

  server::Client client;
  std::string err;
  server::RetryPolicy policy;
  policy.retries = 5;
  if (!client.connectAny({coordSock}, policy, &err)) {
    return fail("client connect: " + err);
  }

  std::printf("fleet_chaos: %zu jobs -> %d workers (kill_after=%zu junk=%d)\n",
              jobs, workers, killAfter, junk ? 1 : 0);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (client.submit(specs[i], i + 1, &err).empty()) {
      return fail("submit " + std::to_string(i + 1) + ": " + err);
    }
  }

  if (junk) {
    if (!junkGarbage(coordSock)) {
      return fail("session did not survive a corrupt frame");
    }
    if (!junkByteDrip(coordSock)) return fail("byte-dripped PING got no PONG");
    // The staller: connects, says nothing, and must be idle-reaped without
    // disturbing anyone.  Deliberately leaked until the end of the run.
    server::Client staller;
    staller.connectUnix(coordSock);
    staller.releaseFd();  // Keep the fd open but stop touching it.
  }

  // Collect: one report per request id, in submission order per client.
  std::map<std::uint64_t, std::string> reports;
  std::uint64_t lastReportRequest = 0;
  bool orderViolated = false;
  std::size_t accepted = 0, rejectedCount = 0;
  bool killed = false, respawned = false;
  int killedIdx = -1;
  client.setIoTimeout(2000);  // Bounded reads; the watchdog decides below.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(timeoutS);
  auto respawnAt = std::chrono::steady_clock::time_point{};
  while (reports.size() + rejectedCount < jobs) {
    if (std::chrono::steady_clock::now() > deadline) {
      return fail("watchdog expired with " + std::to_string(reports.size()) +
                  "/" + std::to_string(jobs) + " reports");
    }
    if (killed && !respawned &&
        std::chrono::steady_clock::now() >= respawnAt) {
      children.push_back(spawnWorker(killedIdx));
      respawned = true;
      std::printf("fleet_chaos: respawned worker w%d\n", killedIdx);
    }
    server::Message m;
    if (!client.receive(m, &err)) {
      if (err.rfind("timeout", 0) == 0) continue;  // Watchdog loop decides.
      return fail("receive: " + err);
    }
    switch (m.op) {
      case server::Op::Accepted:
        ++accepted;
        break;
      case server::Op::Busy:
      case server::Op::Error:
        ++rejectedCount;
        std::fprintf(stderr, "fleet_chaos: request %llu rejected: %s\n",
                     static_cast<unsigned long long>(m.requestId),
                     m.text.c_str());
        break;
      case server::Op::Status:
        break;
      case server::Op::Report: {
        if (reports.count(m.requestId)) {
          return fail("duplicate report for request " +
                      std::to_string(m.requestId));
        }
        if (m.requestId <= lastReportRequest) orderViolated = true;
        lastReportRequest = m.requestId;
        reports[m.requestId] = m.text;
        if (m.state == server::JobState::Failed) {
          return fail("job for request " + std::to_string(m.requestId) +
                      " failed: " + m.text);
        }
        if (killAfter > 0 && !killed && reports.size() >= killAfter) {
          killedIdx = 0;
          ::kill(children[1].pid, SIGKILL);  // children[0] is the coordinator.
          ::waitpid(children[1].pid, nullptr, 0);
          children[1].pid = -1;
          killed = true;
          respawnAt = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(1000);
          std::printf("fleet_chaos: SIGKILLed worker w0 after %zu reports\n",
                      reports.size());
        }
        break;
      }
      default:
        break;
    }
  }
  if (rejectedCount > 0) {
    return fail(std::to_string(rejectedCount) + " submissions rejected");
  }
  if (orderViolated) {
    return fail("reports arrived out of submission order");
  }
  if (killAfter > 0 && !killed) {
    return fail("run finished before the kill point; raise jobs= or lower "
                "kill_after=");
  }

  // The fault path must actually have fired when we killed a worker.
  if (killed) {
    server::Message statsReq;
    statsReq.op = server::Op::Stats;
    statsReq.requestId = 9999;
    server::Message statsReply;
    if (!client.send(statsReq, &err) || !client.receive(statsReply, &err)) {
      return fail("stats after chaos: " + err);
    }
    const double redispatched =
        statValue(statsReply.text, "coord/redispatched");
    const double lost = statValue(statsReply.text, "coord/workers_lost");
    if (lost < 1.0) {
      return fail("coordinator never noticed the killed worker");
    }
    std::printf("fleet_chaos: coordinator saw %g lost worker(s), %g "
                "re-dispatch(es)\n",
                lost, redispatched);
  }

  // Byte-exactness: every report's stable tail must match the same spec
  // run locally.  The grid cycles few unique specs, so one local run per
  // unique spec covers every report.
  std::map<std::string, std::string> localBySpec;
  std::size_t verified = 0;
  for (std::size_t i = 0; i < specs.size() && verified < verifyMax; ++i) {
    auto rit = reports.find(i + 1);
    if (rit == reports.end()) {
      return fail("missing report for request " + std::to_string(i + 1));
    }
    auto lit = localBySpec.find(specs[i]);
    if (lit == localBySpec.end()) {
      sim::Job job;
      std::string perr;
      if (!server::parseJobSpec(specs[i], job, perr)) {
        return fail("local parse: " + perr);
      }
      sim::SweepPlan plan;
      const std::string label = job.label;
      const sim::SystemConfig cfg = job.config;
      plan.add(std::move(job));
      sim::SweepOptions opts;
      opts.jobs = 1;
      const std::vector<sim::RunResult> results = sim::runPlan(plan, opts);
      const std::string local = sim::runReportJson(
          "renucad", cfg, {{label, results[0]}}, /*wallSeconds=*/0.0, 1);
      lit = localBySpec.emplace(specs[i], stripProvenance(local)).first;
    }
    if (stripProvenance(rit->second) != lit->second) {
      return fail("report for request " + std::to_string(i + 1) +
                  " differs from the local run");
    }
    ++verified;
  }
  std::printf("fleet_chaos: %zu/%zu reports verified byte-identical to local "
              "runs\n",
              verified, jobs);

  // Graceful fleet teardown: drain the coordinator, then stop workers.
  server::Message shutdown;
  shutdown.op = server::Op::Shutdown;
  shutdown.requestId = 10000;
  client.send(shutdown, &err);
  client.close();
  if (children[0].pid > 0) {
    int status = 0;
    ::waitpid(children[0].pid, &status, 0);
    children[0].pid = -1;
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      return fail("coordinator exited uncleanly");
    }
  }
  for (Child& c : children) {
    if (c.pid > 0) ::kill(c.pid, SIGTERM);
  }
  for (Child& c : children) {
    if (c.pid > 0) {
      ::waitpid(c.pid, nullptr, 0);
      c.pid = -1;
    }
  }
  ::unlink(coordSock.c_str());
  ::rmdir(dir);
  std::printf("fleet_chaos: PASS (%zu jobs, zero lost, zero duplicated)\n",
              jobs);
  return 0;
}
